file(REMOVE_RECURSE
  "CMakeFiles/iph_primitives.dir/bitonic_sort.cpp.o"
  "CMakeFiles/iph_primitives.dir/bitonic_sort.cpp.o.d"
  "CMakeFiles/iph_primitives.dir/brute_force_hull.cpp.o"
  "CMakeFiles/iph_primitives.dir/brute_force_hull.cpp.o.d"
  "CMakeFiles/iph_primitives.dir/brute_force_lp.cpp.o"
  "CMakeFiles/iph_primitives.dir/brute_force_lp.cpp.o.d"
  "CMakeFiles/iph_primitives.dir/failure_sweep.cpp.o"
  "CMakeFiles/iph_primitives.dir/failure_sweep.cpp.o.d"
  "CMakeFiles/iph_primitives.dir/first_nonzero.cpp.o"
  "CMakeFiles/iph_primitives.dir/first_nonzero.cpp.o.d"
  "CMakeFiles/iph_primitives.dir/inplace_bridge.cpp.o"
  "CMakeFiles/iph_primitives.dir/inplace_bridge.cpp.o.d"
  "CMakeFiles/iph_primitives.dir/inplace_compaction.cpp.o"
  "CMakeFiles/iph_primitives.dir/inplace_compaction.cpp.o.d"
  "CMakeFiles/iph_primitives.dir/lockstep_search.cpp.o"
  "CMakeFiles/iph_primitives.dir/lockstep_search.cpp.o.d"
  "CMakeFiles/iph_primitives.dir/prefix_sum.cpp.o"
  "CMakeFiles/iph_primitives.dir/prefix_sum.cpp.o.d"
  "CMakeFiles/iph_primitives.dir/primes.cpp.o"
  "CMakeFiles/iph_primitives.dir/primes.cpp.o.d"
  "CMakeFiles/iph_primitives.dir/ragde.cpp.o"
  "CMakeFiles/iph_primitives.dir/ragde.cpp.o.d"
  "CMakeFiles/iph_primitives.dir/random_sample.cpp.o"
  "CMakeFiles/iph_primitives.dir/random_sample.cpp.o.d"
  "libiph_primitives.a"
  "libiph_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iph_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
