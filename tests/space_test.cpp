// The space-axis ledger (pram/metrics.h, pram/allocation.h):
//   * watermarks are bit-identical across host thread counts — the
//     ledger is driven by the program, never by the schedule,
//   * instrumentation is observer-independent: attaching a recorder
//     changes nothing, and with no observer the ledger still runs and
//     charges zero PRAM steps/work,
//   * exact watermarks on a crafted Ragde input, predicted from the
//     candidate prime set (Lemma 2.1's scratch is knowable in advance),
//   * release saturates instead of underflowing on a double free,
//   * SpaceLease resize() is one release+alloc event pair,
//   * PhaseDelta peaks and max_active are PHASE-LOCAL (the metrics.h
//     regression: peaks are not differencable, so a quiet inner phase
//     must not inherit the busy outer run's maxima), and child maxima
//     fold into the parent on close.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <thread>
#include <vector>

#include "core/unsorted2d.h"
#include "geom/workloads.h"
#include "pram/allocation.h"
#include "pram/machine.h"
#include "pram/metrics.h"
#include "primitives/primes.h"
#include "primitives/ragde.h"
#include "trace/recorder.h"

namespace iph {
namespace {

using pram::Machine;
using pram::Metrics;
using pram::SpaceKind;
using pram::SpaceLease;

// --- determinism across the host schedule -------------------------------

struct SpaceFingerprint {
  std::uint64_t peak_live, peak_aux, peak_input, allocs, releases;
  bool operator==(const SpaceFingerprint&) const = default;
};

SpaceFingerprint space_fp(const Metrics& m) {
  return {m.peak_live, m.peak_aux, m.peak_input, m.space_allocs,
          m.space_releases};
}

TEST(SpaceLedger, WatermarksBitIdenticalAcrossThreadCounts) {
  const auto pts = geom::in_disk(3000, 5);
  auto run = [&](unsigned threads) {
    Machine m(threads, 99);
    (void)core::unsorted_hull_2d(m, pts);
    return space_fp(m.metrics());
  };
  const auto base = run(1);
  EXPECT_GT(base.peak_aux, 0u);
  EXPECT_GT(base.allocs, 0u);
  EXPECT_EQ(base.allocs, base.releases);  // every lease closed
  std::vector<unsigned> sweep{2u, 4u, 8u};
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  if (std::find(sweep.begin(), sweep.end(), hw) == sweep.end() && hw != 1) {
    sweep.push_back(hw);
  }
  for (unsigned threads : sweep) {
    EXPECT_EQ(run(threads), base) << "threads=" << threads;
  }
}

// --- instrumentation does not perturb the run --------------------------

TEST(SpaceLedger, ObserverIndependentAndChargesNoSteps) {
  const auto pts = geom::in_disk(2000, 11);
  auto run = [&](bool observed) {
    Machine m(4, 42);
    trace::Recorder rec;
    if (observed) rec.attach(m);
    (void)core::unsorted_hull_2d(m, pts);
    m.set_observer(nullptr);
    return m.metrics();
  };
  const auto bare = run(false);
  const auto traced = run(true);
  // The ledger runs identically with no observer attached...
  EXPECT_EQ(space_fp(bare), space_fp(traced));
  // ...and space events never charge PRAM time or work.
  EXPECT_EQ(bare.steps, traced.steps);
  EXPECT_EQ(bare.work, traced.work);
  Machine m(1, 7);
  {
    SpaceLease lease(m, SpaceKind::kAux, 1 << 20);
    SpaceLease regs(m, SpaceKind::kInput, 1 << 10);
  }
  EXPECT_EQ(m.metrics().steps, 0u);
  EXPECT_EQ(m.metrics().work, 0u);
  EXPECT_EQ(m.metrics().peak_live, (1u << 20) + (1u << 10));
}

// --- exact watermarks on a crafted input -------------------------------

TEST(SpaceLedger, RagdeWatermarksMatchPrediction) {
  // One flagged element: no candidate modulus collides, so the primary
  // scheme picks the first prime and the scratch is fully predictable:
  // the kCandidates scatter regions (one cell per residue, so the sum of
  // the candidate primes) + the kCandidates bad[] flags, overlapped by
  // the compacted output of size primes[0] while it is filled.
  constexpr std::uint64_t kBound = 2;
  constexpr std::size_t kCandidates = 8;  // ragde.cpp's constant
  const auto primes =
      primitives::primes_at_least(kBound * kBound, kCandidates);
  const std::uint64_t regions =
      std::accumulate(primes.begin(), primes.end(), std::uint64_t{0});
  std::vector<std::uint8_t> flags(64, 0);
  flags[13] = 1;
  Machine m(1, 3);
  const auto r = primitives::ragde_compact(m, flags, kBound);
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.used_fallback);
  EXPECT_EQ(r.slots.size(), primes[0]);
  const auto& mt = m.metrics();
  EXPECT_EQ(mt.peak_aux, regions + kCandidates + primes[0]);
  // The primary path registers no per-element input registers, so the
  // live peak IS the aux peak on a fresh machine.
  EXPECT_EQ(mt.peak_live, mt.peak_aux);
  EXPECT_EQ(mt.peak_input, 0u);
  // All leases closed: the gauges drain back to zero.
  EXPECT_EQ(mt.aux_cells, 0u);
  EXPECT_EQ(mt.input_cells, 0u);
  EXPECT_EQ(mt.space_allocs, 2u);
  EXPECT_EQ(mt.space_releases, 2u);
}

// --- ledger edge cases -------------------------------------------------

TEST(SpaceLedger, ReleaseSaturatesOnDoubleFree) {
  Metrics mt;
  mt.record_space_alloc(100, SpaceKind::kAux);
  mt.record_space_release(100, SpaceKind::kAux);
  mt.record_space_release(100, SpaceKind::kAux);  // ledger bug, not UB
  EXPECT_EQ(mt.aux_cells, 0u);
  mt.record_space_alloc(50, SpaceKind::kAux);
  EXPECT_EQ(mt.aux_cells, 50u);
  EXPECT_EQ(mt.peak_aux, 100u);
}

TEST(SpaceLedger, LeaseResizeIsReleaseAllocPair) {
  Machine m(1, 1);
  SpaceLease lease(m, SpaceKind::kAux, 10);
  lease.resize(25);
  EXPECT_EQ(lease.cells(), 25u);
  EXPECT_EQ(m.metrics().aux_cells, 25u);
  EXPECT_EQ(m.metrics().peak_aux, 25u);
  EXPECT_EQ(m.metrics().space_allocs, 2u);
  EXPECT_EQ(m.metrics().space_releases, 1u);
  lease.resize(5);  // shrink: watermark keeps the old high water
  EXPECT_EQ(m.metrics().aux_cells, 5u);
  EXPECT_EQ(m.metrics().peak_aux, 25u);
}

// --- PhaseDelta: the "peaks are not differencable" regression -----------

TEST(PhaseDelta, MaxActiveIsPhaseLocal) {
  // The old scheme differenced Metrics snapshots, so an inner phase
  // opened after a wide step inherited the run's global max_active. The
  // phase-peak stack must report the inner phase's OWN maximum.
  Machine m(1, 1);
  {
    Machine::Phase outer(m, "outer");
    m.step(64, [](std::uint64_t) {});
    {
      Machine::Phase inner(m, "inner");
      m.step(4, [](std::uint64_t) {});
    }
    m.step(32, [](std::uint64_t) {});
  }
  EXPECT_EQ(m.phases().at("inner").max_active, 4u);
  EXPECT_EQ(m.phases().at("outer").max_active, 64u);
  EXPECT_EQ(m.metrics().max_active, 64u);
  // Counters are still clean deltas.
  EXPECT_EQ(m.phases().at("inner").steps, 1u);
  EXPECT_EQ(m.phases().at("outer").steps, 3u);
  EXPECT_EQ(m.phases().at("outer").work, 64u + 4u + 32u);
}

TEST(PhaseDelta, PeaksArePhaseLocalAndFoldIntoParent) {
  Machine m(1, 1);
  {
    Machine::Phase outer(m, "outer");
    SpaceLease big(m, SpaceKind::kAux, 1000);
    {
      // Quiet inner phase: opens while 1000 aux cells are live, allocates
      // 20 more. Its peak is the gauge it SAW (1020), not a delta of 20
      // and not the run's later maximum.
      Machine::Phase inner(m, "inner");
      SpaceLease small(m, SpaceKind::kAux, 20);
      m.step(1, [](std::uint64_t) {});
    }
    SpaceLease bigger(m, SpaceKind::kAux, 5000);
    m.step(1, [](std::uint64_t) {});
  }
  EXPECT_EQ(m.phases().at("inner").peak_aux, 1020u);
  // The child's maximum folds into the parent, which then tops it.
  EXPECT_EQ(m.phases().at("outer").peak_aux, 6000u);
  EXPECT_EQ(m.metrics().peak_aux, 6000u);
}

TEST(PhaseDelta, ReentryAccumulatesCountersAndMaxesPeaks) {
  Machine m(1, 1);
  for (int round = 0; round < 3; ++round) {
    Machine::Phase p(m, "loop");
    SpaceLease lease(m, SpaceKind::kAux,
                     static_cast<std::uint64_t>(100 * (round + 1)));
    m.step(8, [](std::uint64_t) {});
  }
  const auto& d = m.phases().at("loop");
  EXPECT_EQ(d.invocations, 3u);
  EXPECT_EQ(d.steps, 3u);
  EXPECT_EQ(d.work, 24u);
  EXPECT_EQ(d.peak_aux, 300u);  // max over re-entries, not a sum
  EXPECT_EQ(d.max_active, 8u);
}

}  // namespace
}  // namespace iph
