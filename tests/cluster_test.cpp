// iph::cluster unit + integration tests.
//
// Three layers, mirroring the subsystem's own layering:
//   * HashRing — determinism, coverage, and the consistent-hashing
//     contract (marking a shard down moves ONLY that shard's keys).
//   * merge_snapshots — fleet roll-ups add counters/gauges/le-buckets
//     and reject bounds mismatches; round trips through the strict
//     stats JSON codec.
//   * Router — driven end to end over in-process FakeShard TCP
//     backends that speak just enough of the serve_wire.h NDJSON
//     protocol: routing by id, session affinity with sid rewriting,
//     reject retries, io/admin/probe mark-down semantics, and the
//     exactly-reconciled fleet statz answer.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cluster/endpoint.h"
#include "cluster/merge.h"
#include "cluster/protocol.h"
#include "cluster/ring.h"
#include "cluster/router.h"
#include "cluster/stats.h"
#include "stats/export.h"
#include "stats/stats.h"
#include "support/rng.h"
#include "support/linechan.h"
#include "trace/json.h"

namespace iph::cluster {
namespace {

using trace::Json;

// ---------------------------------------------------------------------------
// HashRing

std::uint64_t test_key(std::uint64_t i) { return support::mix3(11, 7, i); }

TEST(HashRing, DeterministicAcrossInstancesAndCoversAllShards) {
  HashRing a(4, 64, /*seed=*/123);
  HashRing b(4, 64, /*seed=*/123);
  std::vector<std::size_t> hits(4, 0);
  for (std::uint64_t i = 0; i < 2048; ++i) {
    std::size_t sa = 0;
    std::size_t sb = 0;
    ASSERT_TRUE(a.shard_for(test_key(i), &sa));
    ASSERT_TRUE(b.shard_for(test_key(i), &sb));
    EXPECT_EQ(sa, sb);
    ++hits[sa];
  }
  for (std::size_t s = 0; s < 4; ++s) {
    EXPECT_GT(hits[s], 0u) << "shard " << s << " owns no keys";
  }
}

TEST(HashRing, MarkdownMovesOnlyTheDownedShardsKeys) {
  HashRing ring(4, 64, /*seed=*/99);
  std::vector<std::size_t> before(2048);
  for (std::uint64_t i = 0; i < before.size(); ++i) {
    ASSERT_TRUE(ring.shard_for(test_key(i), &before[i]));
  }
  ring.set_up(2, false);
  EXPECT_EQ(ring.rebuilds(), 1u);
  EXPECT_EQ(ring.up_count(), 3u);
  for (std::uint64_t i = 0; i < before.size(); ++i) {
    std::size_t now = 0;
    ASSERT_TRUE(ring.shard_for(test_key(i), &now));
    if (before[i] != 2) {
      EXPECT_EQ(now, before[i]) << "key " << i << " moved although its "
                                << "home shard stayed up";
    } else {
      EXPECT_NE(now, 2u);
    }
  }
  ring.set_up(2, true);  // mark-up restores the original mapping exactly
  EXPECT_EQ(ring.rebuilds(), 2u);
  for (std::uint64_t i = 0; i < before.size(); ++i) {
    std::size_t now = 0;
    ASSERT_TRUE(ring.shard_for(test_key(i), &now));
    EXPECT_EQ(now, before[i]);
  }
  ring.set_up(2, true);  // no-op: already up, no rebuild
  EXPECT_EQ(ring.rebuilds(), 2u);
}

TEST(HashRing, AttemptWalkYieldsDistinctUpShards) {
  HashRing ring(4, 64, /*seed=*/7);
  for (std::uint64_t i = 0; i < 32; ++i) {
    std::vector<bool> seen(4, false);
    for (std::size_t a = 0; a < 4; ++a) {
      std::size_t s = 0;
      ASSERT_TRUE(ring.shard_for_attempt(test_key(i), a, &s));
      EXPECT_FALSE(seen[s]) << "attempt " << a << " repeated shard " << s;
      seen[s] = true;
    }
    std::size_t s = 0;
    EXPECT_FALSE(ring.shard_for_attempt(test_key(i), 4, &s));
  }
  ring.set_up(1, false);
  for (std::uint64_t i = 0; i < 32; ++i) {
    for (std::size_t a = 0; a < 3; ++a) {
      std::size_t s = 0;
      ASSERT_TRUE(ring.shard_for_attempt(test_key(i), a, &s));
      EXPECT_NE(s, 1u);
    }
    std::size_t s = 0;
    EXPECT_FALSE(ring.shard_for_attempt(test_key(i), 3, &s));
  }
  ring.set_up(0, false);
  ring.set_up(2, false);
  ring.set_up(3, false);
  std::size_t s = 0;
  EXPECT_FALSE(ring.shard_for(1, &s));
  EXPECT_EQ(ring.up_count(), 0u);
}

// ---------------------------------------------------------------------------
// merge_snapshots

TEST(MergeSnapshots, AddsCountersGaugesAndLeBuckets) {
  stats::Registry r1;
  r1.counter("c").inc(3);
  r1.gauge("g").set(5);
  stats::Histogram& h1 = r1.histogram("h", stats::latency_bounds_ms());
  h1.record(1.0);
  h1.record(2.0);

  stats::Registry r2;
  r2.counter("c").inc(4);
  r2.counter("only2").inc(7);
  r2.gauge("g").set(-2);
  r2.histogram("h", stats::latency_bounds_ms()).record(1.0);

  stats::RegistrySnapshot fleet;
  std::string err;
  ASSERT_TRUE(merge_snapshots({r1.snapshot(), r2.snapshot()}, &fleet, &err))
      << err;
  EXPECT_EQ(fleet.counter_or0("c"), 7u);
  EXPECT_EQ(fleet.counter_or0("only2"), 7u);
  ASSERT_NE(fleet.gauge("g"), nullptr);
  EXPECT_EQ(*fleet.gauge("g"), 3);  // gauges are extensive: they sum
  // First-seen order: the first part's instruments lead the export.
  ASSERT_FALSE(fleet.counters.empty());
  EXPECT_EQ(fleet.counters.front().first, "c");

  const stats::HistogramSnapshot* h = fleet.histogram("h");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 3u);
  EXPECT_DOUBLE_EQ(h->sum, 4.0);
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : h->buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, 3u);
  // The merged quantile answers for the whole fleet: all three samples
  // are <= 2ms, so the p99 estimate cannot exceed the 2ms sample's
  // bucket upper bound by more than one ladder step.
  EXPECT_GT(h->quantile(0.5), 0.0);
  EXPECT_LE(h->quantile(0.99), 4.0);
}

TEST(MergeSnapshots, RoundTripsThroughStrictJsonCodec) {
  stats::Registry r1;
  r1.counter("iph_serve_submitted_total").inc(10);
  r1.histogram("lat", stats::latency_bounds_ms()).record(0.5);
  stats::Registry r2;
  r2.counter("iph_serve_submitted_total").inc(32);
  r2.histogram("lat", stats::latency_bounds_ms()).record(8.0);

  // The router's fleet_statz path: each backend's snapshot travels as
  // statz JSON, is re-parsed, then merged.
  std::vector<stats::RegistrySnapshot> parts(2);
  std::string err;
  ASSERT_TRUE(stats::from_json(stats::to_json(r1.snapshot()), parts[0], &err))
      << err;
  ASSERT_TRUE(stats::from_json(stats::to_json(r2.snapshot()), parts[1], &err))
      << err;
  stats::RegistrySnapshot fleet;
  ASSERT_TRUE(merge_snapshots(parts, &fleet, &err)) << err;
  EXPECT_EQ(fleet.counter_or0("iph_serve_submitted_total"), 42u);
  const stats::HistogramSnapshot* h = fleet.histogram("lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 2u);
  EXPECT_DOUBLE_EQ(h->sum, 8.5);
}

TEST(MergeSnapshots, RejectsHistogramBoundsMismatchNamingTheInstrument) {
  stats::Registry r1;
  r1.histogram("iph_forward_ms", {1.0, 2.0, 4.0}).record(1.0);
  stats::Registry r2;
  r2.histogram("iph_forward_ms", {1.0, 2.0}).record(1.0);
  stats::RegistrySnapshot fleet;
  std::string err;
  EXPECT_FALSE(merge_snapshots({r1.snapshot(), r2.snapshot()}, &fleet, &err));
  EXPECT_NE(err.find("iph_forward_ms"), std::string::npos)
      << "error must name the mismatched instrument: " << err;
}

TEST(MergeSnapshots, MalformedSnapshotJsonIsRejectedByTheCodec) {
  stats::Registry r;
  r.counter("c").inc();
  Json good = stats::to_json(r.snapshot());

  Json bad_schema = good;
  bad_schema["schema"] = Json("iph-stats-v0");
  stats::RegistrySnapshot out;
  std::string err;
  EXPECT_FALSE(stats::from_json(bad_schema, out, &err));
  EXPECT_FALSE(err.empty());

  Json bad_counters = good;
  bad_counters["counters"] = Json("not-an-object");
  err.clear();
  EXPECT_FALSE(stats::from_json(bad_counters, out, &err));
  EXPECT_FALSE(err.empty());
}

// ---------------------------------------------------------------------------
// protocol.h

TEST(Protocol, VersionGateAcceptsAbsentAndCurrentRejectsNewer) {
  Json none = Json::object();
  EXPECT_TRUE(version_ok(none));
  Json current = Json::object();
  current["v"] = Json(kProtocolVersion);
  EXPECT_TRUE(version_ok(current));
  Json newer = Json::object();
  newer["v"] = Json(kProtocolVersion + 1);
  EXPECT_FALSE(version_ok(newer));
  EXPECT_TRUE(version_ok(Json(3.0)));  // non-object: no pin to honor
}

TEST(Protocol, StructuredErrorsCarryReasonAndVersion) {
  const Json e = make_error(reject::kUnknownCmd, "no such cmd");
  EXPECT_EQ(e.get_str("error"), "no such cmd");
  EXPECT_EQ(e.get_str("reject"), reject::kUnknownCmd);
  EXPECT_EQ(static_cast<int>(e.get_num("v")), kProtocolVersion);
  EXPECT_EQ(error_reject_reason(e), reject::kUnknownCmd);

  Json ok = Json::object();
  ok["status"] = Json("ok");
  EXPECT_EQ(error_reject_reason(ok), "");
  Json legacy = Json::object();  // pre-versioning server: prose only
  legacy["error"] = Json("something");
  EXPECT_EQ(error_reject_reason(legacy), "");
}

// ---------------------------------------------------------------------------
// Router over FakeShard backends

/// A minimal hullserved stand-in: a TCP listener answering the NDJSON
/// subset the router exercises. Hull requests bump the serve counters
/// (submitted always, completed when accepted) so fleet reconciliation
/// is testable; every reply is tagged {"shard": tag} so tests can see
/// where a line landed. reject_mode switches the shard to answering
/// rejected_full / rejected_shutdown, modeling backpressure.
class FakeShard {
 public:
  explicit FakeShard(std::size_t tag)
      : tag_(tag),
        submitted_(registry_.counter("iph_serve_submitted_total")),
        completed_(registry_.counter("iph_serve_completed_total")) {
    start(0);
  }
  ~FakeShard() { stop(); }

  int port() const { return port_; }
  std::uint64_t submitted() const { return submitted_.value(); }

  /// 0 = accept, 1 = rejected_full, 2 = rejected_shutdown.
  std::atomic<int> reject_mode{0};

  void start(int port) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(listen_fd_, 0);
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ASSERT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof addr),
              0);
    ASSERT_EQ(::listen(listen_fd_, 16), 0);
    socklen_t alen = sizeof addr;
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &alen);
    port_ = ntohs(addr.sin_port);
    stopped_.store(false);
    accept_thread_ = std::thread([this] { accept_loop(); });
  }

  void stop() {
    if (stopped_.exchange(true)) return;
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    accept_thread_.join();
    std::vector<std::thread> conns;
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
      conns.swap(conn_threads_);
    }
    for (auto& t : conns) t.join();
    {
      std::lock_guard<std::mutex> lk(mu_);
      for (int fd : conn_fds_) ::close(fd);
      conn_fds_.clear();
    }
  }

 private:
  void accept_loop() {
    for (;;) {
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) return;
      std::lock_guard<std::mutex> lk(mu_);
      conn_fds_.push_back(fd);
      conn_threads_.emplace_back([this, fd] { serve(fd); });
    }
  }

  void serve(int fd) {
    support::LineChannel ch(fd, fd);
    std::string line;
    std::uint64_t next_sid = 1;
    while (ch.read_line(&line)) {
      Json j;
      std::string err;
      if (!Json::parse(line, &j, &err) || !j.is_object()) {
        if (!ch.write_line(make_error(reject::kBadJson, "bad json").dump()))
          return;
        continue;
      }
      Json r = Json::object();
      if (const Json* c = j.find("cmd")) {
        const std::string cmd = c->as_string();
        if (cmd == "statz") {
          r["statz"] = stats::to_json(registry_.snapshot());
        } else if (cmd == "session_open") {
          r["sid"] = Json(next_sid++);
          r["status"] = Json("ok");
          r["shard"] = Json(static_cast<std::uint64_t>(tag_));
        } else if (cmd == "session_append" || cmd == "session_close") {
          r["sid"] = Json(j.get_num("sid"));
          r["status"] = Json("ok");
          r["shard"] = Json(static_cast<std::uint64_t>(tag_));
        } else {
          if (!ch.write_line(make_error(reject::kUnknownCmd, cmd).dump()))
            return;
          continue;
        }
      } else {
        submitted_.inc();  // rejects count as submitted, like hullserved
        const int mode = reject_mode.load();
        if (mode == 0) {
          completed_.inc();
          r["status"] = Json("ok");
        } else {
          r["status"] = Json(mode == 1 ? "rejected_full" : "rejected_shutdown");
        }
        if (const Json* id = j.find("id")) r["id"] = Json(id->as_double());
        r["shard"] = Json(static_cast<std::uint64_t>(tag_));
      }
      stamp_version(&r);
      if (!ch.write_line(r.dump())) return;
    }
  }

  const std::size_t tag_;
  stats::Registry registry_;
  stats::Counter& submitted_;
  stats::Counter& completed_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopped_{true};
  std::thread accept_thread_;
  std::mutex mu_;
  std::vector<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

RouterConfig fleet_config(const std::vector<std::unique_ptr<FakeShard>>& fleet,
                          int retries, int probe_ms) {
  RouterConfig cfg;
  for (const auto& f : fleet) {
    cfg.endpoints.push_back(Endpoint{"127.0.0.1", f->port()});
  }
  cfg.retry_limit = retries;
  cfg.probe_period_ms = probe_ms;
  return cfg;
}

std::vector<std::unique_ptr<FakeShard>> make_fleet(std::size_t n) {
  std::vector<std::unique_ptr<FakeShard>> fleet;
  for (std::size_t i = 0; i < n; ++i) {
    fleet.push_back(std::make_unique<FakeShard>(i));
  }
  return fleet;
}

Json send(Router::Conn& conn, const Json& j) {
  Json reply;
  std::string err;
  EXPECT_TRUE(Json::parse(conn.handle_line(j.dump()), &reply, &err)) << err;
  return reply;
}

Json request_line(std::uint64_t id) {
  Json j = Json::object();
  j["id"] = Json(id);
  j["n"] = Json(16);
  return j;
}

TEST(Router, RoutesByIdDeterministicallyAndCountsEverything) {
  auto fleet = make_fleet(3);
  Router router(fleet_config(fleet, /*retries=*/2, /*probe_ms=*/0));
  std::map<std::uint64_t, std::uint64_t> homed;
  {
    Router::Conn conn(router);
    for (std::uint64_t id = 1; id <= 30; ++id) {
      const Json r = send(conn, request_line(id));
      EXPECT_EQ(r.get_str("status"), "ok");
      EXPECT_EQ(static_cast<int>(r.get_num("v")), kProtocolVersion);
      homed[id] = static_cast<std::uint64_t>(r.get_num("shard"));
    }
  }
  {
    // Same ids on a fresh connection land on the same shards: routing
    // keys on the request id, not on connection state.
    Router::Conn conn(router);
    for (std::uint64_t id = 1; id <= 30; ++id) {
      const Json r = send(conn, request_line(id));
      EXPECT_EQ(static_cast<std::uint64_t>(r.get_num("shard")), homed[id]);
    }
  }
  const stats::RegistrySnapshot s = router.registry().snapshot();
  EXPECT_EQ(s.counter_or0(statnames::kForwards), 60u);
  std::uint64_t routed = 0;
  std::uint64_t backend_submitted = 0;
  for (std::size_t k = 0; k < fleet.size(); ++k) {
    routed += s.counter_or0(
        stats::labeled(statnames::kRoutesBase, "shard", std::to_string(k)));
    backend_submitted += fleet[k]->submitted();
  }
  EXPECT_EQ(routed, 60u);
  EXPECT_EQ(backend_submitted, 60u);  // forwards == fleet submitted
  ASSERT_NE(s.gauge(statnames::kBackendsUp), nullptr);
  EXPECT_EQ(*s.gauge(statnames::kBackendsUp), 3);
}

TEST(Router, RejectedRequestsRetryOnSiblingsThenSurfaceVerbatim) {
  auto fleet = make_fleet(2);
  fleet[0]->reject_mode.store(1);  // shard 0 sheds all hull requests
  Router router(fleet_config(fleet, /*retries=*/2, /*probe_ms=*/0));
  Router::Conn conn(router);
  for (std::uint64_t id = 1; id <= 40; ++id) {
    const Json r = send(conn, request_line(id));
    // Every request succeeds: those homed on shard 0 retried to 1.
    EXPECT_EQ(r.get_str("status"), "ok");
    EXPECT_EQ(static_cast<std::uint64_t>(r.get_num("shard")), 1u);
  }
  const stats::RegistrySnapshot s = router.registry().snapshot();
  const std::uint64_t retried = s.counter_or0(
      stats::labeled(statnames::kRetriesBase, "reason", "rejected_full"));
  EXPECT_GT(retried, 0u) << "no request homed on the rejecting shard";
  EXPECT_EQ(s.counter_or0(statnames::kForwards), 40u + retried);
  EXPECT_EQ(fleet[0]->submitted() + fleet[1]->submitted(), 40u + retried);

  // Whole fleet shedding: the budget runs out and the backend's own
  // reject reaches the client verbatim (backpressure propagates).
  fleet[1]->reject_mode.store(2);
  fleet[0]->reject_mode.store(2);
  const Json r = send(conn, request_line(1000));
  EXPECT_EQ(r.get_str("status"), "rejected_shutdown");
}

TEST(Router, SessionsPinRewriteSidsAndNeverRetry) {
  auto fleet = make_fleet(2);
  Router router(fleet_config(fleet, /*retries=*/2, /*probe_ms=*/0));
  Router::Conn conn(router);

  Json open = Json::object();
  open["cmd"] = Json("session_open");
  open["n"] = Json(8);
  const Json r1 = send(conn, open);
  ASSERT_EQ(r1.get_str("status"), "ok");
  const auto sid1 = static_cast<std::uint64_t>(r1.get_num("sid"));
  const auto pinned = static_cast<std::uint64_t>(r1.get_num("shard"));
  const Json r2 = send(conn, open);
  const auto sid2 = static_cast<std::uint64_t>(r2.get_num("sid"));
  EXPECT_NE(sid1, sid2) << "router sids must be distinct across sessions";

  Json append = Json::object();
  append["cmd"] = Json("session_append");
  append["sid"] = Json(sid1);
  for (int i = 0; i < 5; ++i) {
    const Json a = send(conn, append);
    EXPECT_EQ(a.get_str("status"), "ok");
    // Affinity: every append answers from the opening shard, and the
    // client keeps seeing its router sid, not the backend's.
    EXPECT_EQ(static_cast<std::uint64_t>(a.get_num("shard")), pinned);
    EXPECT_EQ(static_cast<std::uint64_t>(a.get_num("sid")), sid1);
  }
  {
    const stats::RegistrySnapshot s = router.registry().snapshot();
    ASSERT_NE(s.gauge(statnames::kSessionsOpen), nullptr);
    EXPECT_EQ(*s.gauge(statnames::kSessionsOpen), 2);
    // Session traffic reconciles in routes{}, never in forwards.
    EXPECT_EQ(s.counter_or0(statnames::kForwards), 0u);
  }

  // Down the pinned shard: appends are never re-routed — a structured
  // shard_down reject comes back and the sibling sees no traffic.
  const std::uint64_t before_other = fleet[1 - pinned]->submitted();
  fleet[pinned]->stop();
  const Json down = send(conn, append);
  EXPECT_EQ(down.get_str("reject"), reject::kShardDown);
  EXPECT_EQ(fleet[1 - pinned]->submitted(), before_other);

  Json close = Json::object();
  close["cmd"] = Json("session_close");
  close["sid"] = Json(sid2);
  if (static_cast<std::uint64_t>(r2.get_num("shard")) != pinned) {
    // sid2 lives on the surviving shard: close it and check teardown.
    const Json c = send(conn, close);
    EXPECT_EQ(c.get_str("status"), "ok");
    const Json again = send(conn, close);
    EXPECT_EQ(again.get_str("status"), "closed");
  }
  Json unknown = Json::object();
  unknown["cmd"] = Json("session_append");
  unknown["sid"] = Json(std::uint64_t{999999});
  EXPECT_EQ(send(conn, unknown).get_str("status"), "unknown");

  const stats::RegistrySnapshot s = router.registry().snapshot();
  EXPECT_GE(s.counter_or0(stats::labeled(statnames::kRejectedBase, "reason",
                                         "shard_down")),
            1u);
  EXPECT_GE(s.counter_or0(stats::labeled(statnames::kMarkdownsBase, "cause",
                                         "io")),
            1u);
}

TEST(Router, IoFailureMarksDownRetriesAndAdminMarkupRestores) {
  auto fleet = make_fleet(3);
  Router router(fleet_config(fleet, /*retries=*/2, /*probe_ms=*/0));
  Router::Conn probe_conn(router);
  // Learn the id -> shard map while every backend is healthy.
  std::uint64_t id_on_0 = 0;
  for (std::uint64_t id = 1; id <= 64 && id_on_0 == 0; ++id) {
    const Json r = send(probe_conn, request_line(id));
    if (static_cast<std::uint64_t>(r.get_num("shard")) == 0) id_on_0 = id;
  }
  ASSERT_NE(id_on_0, 0u);

  const int port0 = fleet[0]->port();
  fleet[0]->stop();
  // A fresh connection dials the dead shard, fails, marks it down and
  // retries a sibling — the client still gets its answer.
  Router::Conn conn(router);
  const Json r = send(conn, request_line(id_on_0));
  EXPECT_EQ(r.get_str("status"), "ok");
  EXPECT_NE(static_cast<std::uint64_t>(r.get_num("shard")), 0u);
  EXPECT_FALSE(router.shard_up(0));
  {
    const stats::RegistrySnapshot s = router.registry().snapshot();
    EXPECT_EQ(s.counter_or0(
                  stats::labeled(statnames::kRetriesBase, "reason", "io")),
              1u);
    EXPECT_EQ(s.counter_or0(
                  stats::labeled(statnames::kMarkdownsBase, "cause", "io")),
              1u);
    ASSERT_NE(s.gauge(statnames::kBackendsUp), nullptr);
    EXPECT_EQ(*s.gauge(statnames::kBackendsUp), 2);
  }

  // Once marked down the ring routes around it with no further retries.
  const Json r2 = send(conn, request_line(id_on_0));
  EXPECT_NE(static_cast<std::uint64_t>(r2.get_num("shard")), 0u);
  {
    const stats::RegistrySnapshot s = router.registry().snapshot();
    EXPECT_EQ(s.counter_or0(
                  stats::labeled(statnames::kRetriesBase, "reason", "io")),
              1u);
  }

  // Bring the backend back on its old port and undrain: the id homes
  // on shard 0 again (consistent-hash mapping restored exactly).
  fleet[0]->start(port0);
  ASSERT_TRUE(router.mark_up_admin(0));
  EXPECT_TRUE(router.shard_up(0));
  const Json r3 = send(conn, request_line(id_on_0));
  EXPECT_EQ(r3.get_str("status"), "ok");
  EXPECT_EQ(static_cast<std::uint64_t>(r3.get_num("shard")), 0u);
}

TEST(Router, WireProtocolAdminDrainRejectsAndVersionGate) {
  auto fleet = make_fleet(2);
  Router router(fleet_config(fleet, /*retries=*/1, /*probe_ms=*/0));
  Router::Conn conn(router);

  Json markdown = Json::object();
  markdown["cmd"] = Json("markdown");
  markdown["shard"] = Json(0);
  const Json md = send(conn, markdown);
  EXPECT_EQ(md.get_str("status"), "ok");
  EXPECT_FALSE(md.find("up")->as_bool());
  const std::uint64_t drained_before = fleet[0]->submitted();
  for (std::uint64_t id = 1; id <= 20; ++id) {
    const Json r = send(conn, request_line(id));
    EXPECT_EQ(r.get_str("status"), "ok");
    EXPECT_EQ(static_cast<std::uint64_t>(r.get_num("shard")), 1u);
  }
  EXPECT_EQ(fleet[0]->submitted(), drained_before)
      << "admin-drained shard must see no new traffic";

  // Malformed / unknown / cross-version lines all answer structurally.
  Json parsed;
  std::string err;
  ASSERT_TRUE(Json::parse(conn.handle_line("{oops"), &parsed, &err));
  EXPECT_EQ(parsed.get_str("reject"), reject::kBadJson);
  ASSERT_TRUE(Json::parse(conn.handle_line("[1,2]"), &parsed, &err));
  EXPECT_EQ(parsed.get_str("reject"), reject::kBadRequest);
  Json unknown = Json::object();
  unknown["cmd"] = Json("frobnicate");
  EXPECT_EQ(send(conn, unknown).get_str("reject"), reject::kUnknownCmd);
  Json pinned = request_line(5);
  pinned["v"] = Json(kProtocolVersion + 7);
  EXPECT_EQ(send(conn, pinned).get_str("reject"), reject::kVersion);
  Json bad_shard = Json::object();
  bad_shard["cmd"] = Json("markdown");
  bad_shard["shard"] = Json(42);
  EXPECT_EQ(send(conn, bad_shard).get_str("reject"), reject::kBadRequest);

  // Drain the whole fleet: requests answer no_backend, router-minted.
  markdown["shard"] = Json(1);
  EXPECT_EQ(send(conn, markdown).get_str("status"), "ok");
  EXPECT_EQ(send(conn, request_line(9)).get_str("reject"),
            reject::kNoBackend);

  Json markup = Json::object();
  markup["cmd"] = Json("markup");
  markup["shard"] = Json(0);
  const Json mu = send(conn, markup);
  EXPECT_EQ(mu.get_str("status"), "ok");
  EXPECT_TRUE(mu.find("up")->as_bool());

  const stats::RegistrySnapshot s = router.registry().snapshot();
  EXPECT_EQ(s.counter_or0(stats::labeled(statnames::kMarkdownsBase, "cause",
                                         "admin")),
            2u);
  EXPECT_EQ(s.counter_or0(stats::labeled(statnames::kMarkupsBase, "cause",
                                         "admin")),
            1u);
  EXPECT_EQ(s.counter_or0(stats::labeled(statnames::kRejectedBase, "reason",
                                         "no_backend")),
            1u);
  EXPECT_EQ(s.counter_or0(statnames::kRingRebuilds), 3u);
}

TEST(Router, FleetStatzMergesLiveBackendsAndFallsBackToCache) {
  auto fleet = make_fleet(2);
  Router router(fleet_config(fleet, /*retries=*/2, /*probe_ms=*/0));
  Router::Conn conn(router);
  for (std::uint64_t id = 1; id <= 10; ++id) {
    EXPECT_EQ(send(conn, request_line(id)).get_str("status"), "ok");
  }

  const Json live = router.fleet_statz(/*prometheus=*/false);
  ASSERT_NE(live.find("statz"), nullptr);
  EXPECT_EQ(static_cast<int>(live.get_num("v")), kProtocolVersion);
  const Json* f = live.find("fleet");
  ASSERT_NE(f, nullptr);
  EXPECT_EQ(static_cast<int>(f->get_num("backends")), 2);
  EXPECT_EQ(static_cast<int>(f->get_num("up")), 2);
  EXPECT_EQ(static_cast<int>(f->get_num("scraped_live")), 2);
  EXPECT_EQ(static_cast<int>(f->get_num("scraped_cached")), 0);
  stats::RegistrySnapshot merged;
  std::string err;
  ASSERT_TRUE(stats::from_json(*live.find("statz"), merged, &err)) << err;
  // The roll-up reconciles exactly: router forwards == fleet submitted
  // == fleet completed == the 10 client requests, in ONE scrape.
  EXPECT_EQ(merged.counter_or0("iph_serve_submitted_total"), 10u);
  EXPECT_EQ(merged.counter_or0("iph_serve_completed_total"), 10u);
  EXPECT_EQ(merged.counter_or0(statnames::kForwards), 10u);

  // Kill one backend: its last good snapshot keeps contributing, so
  // the fleet totals don't dip mid-outage.
  fleet[1]->stop();
  const Json after = router.fleet_statz(/*prometheus=*/false);
  const Json* f2 = after.find("fleet");
  ASSERT_NE(f2, nullptr);
  EXPECT_EQ(static_cast<int>(f2->get_num("scraped_live")), 1);
  EXPECT_EQ(static_cast<int>(f2->get_num("scraped_cached")), 1);
  stats::RegistrySnapshot merged2;
  ASSERT_TRUE(stats::from_json(*after.find("statz"), merged2, &err)) << err;
  EXPECT_EQ(merged2.counter_or0("iph_serve_submitted_total"), 10u);
}

TEST(Router, ProberMarksCrashedShardsDownAndRecoveredShardsUp) {
  auto fleet = make_fleet(2);
  Router router(fleet_config(fleet, /*retries=*/2, /*probe_ms=*/25));
  const int port1 = fleet[1]->port();

  auto wait_for = [&](bool want_up, std::size_t shard) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (router.shard_up(shard) != want_up &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    return router.shard_up(shard) == want_up;
  };

  fleet[1]->stop();
  EXPECT_TRUE(wait_for(false, 1)) << "prober never marked the dead shard down";
  fleet[1]->start(port1);
  EXPECT_TRUE(wait_for(true, 1)) << "prober never marked the shard back up";

  // Administrative drain is sticky: the prober sees a healthy backend
  // but must not undrain it — only mark_up_admin may.
  ASSERT_TRUE(router.mark_down_admin(0));
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  EXPECT_FALSE(router.shard_up(0));
  ASSERT_TRUE(router.mark_up_admin(0));
  EXPECT_TRUE(router.shard_up(0));

  const stats::RegistrySnapshot s = router.registry().snapshot();
  EXPECT_GE(s.counter_or0(stats::labeled(statnames::kMarkdownsBase, "cause",
                                         "probe")),
            1u);
  EXPECT_GE(s.counter_or0(stats::labeled(statnames::kMarkupsBase, "cause",
                                         "probe")),
            1u);
}

TEST(Router, ConnTeardownClosesItsSessionsGlobally) {
  auto fleet = make_fleet(2);
  Router router(fleet_config(fleet, /*retries=*/2, /*probe_ms=*/0));
  std::uint64_t sid = 0;
  {
    Router::Conn conn(router);
    Json open = Json::object();
    open["cmd"] = Json("session_open");
    const Json r = send(conn, open);
    ASSERT_EQ(r.get_str("status"), "ok");
    sid = static_cast<std::uint64_t>(r.get_num("sid"));
    const stats::RegistrySnapshot s = router.registry().snapshot();
    ASSERT_NE(s.gauge(statnames::kSessionsOpen), nullptr);
    EXPECT_EQ(*s.gauge(statnames::kSessionsOpen), 1);
  }  // conn gone: its sessions close, mirroring backend conn-EOF
  Router::Conn other(router);
  Json append = Json::object();
  append["cmd"] = Json("session_append");
  append["sid"] = Json(sid);
  EXPECT_EQ(send(other, append).get_str("status"), "closed");
  const stats::RegistrySnapshot s = router.registry().snapshot();
  ASSERT_NE(s.gauge(statnames::kSessionsOpen), nullptr);
  EXPECT_EQ(*s.gauge(statnames::kSessionsOpen), 0);
}

TEST(Endpoint, ParsesListsAndRejectsGarbage) {
  std::vector<Endpoint> eps;
  ASSERT_TRUE(parse_endpoint_list("127.0.0.1:7070,localhost:80", &eps));
  ASSERT_EQ(eps.size(), 2u);
  EXPECT_EQ(eps[0].host, "127.0.0.1");
  EXPECT_EQ(eps[0].port, 7070);
  EXPECT_EQ(eps[1].host, "localhost");
  EXPECT_EQ(eps[1].port, 80);
  EXPECT_FALSE(parse_endpoint_list("", &eps));
  EXPECT_FALSE(parse_endpoint_list("noport", &eps));
  EXPECT_FALSE(parse_endpoint_list("h:0,", &eps));
  EXPECT_FALSE(parse_endpoint_list("h:99999", &eps));
}

}  // namespace
}  // namespace iph::cluster
