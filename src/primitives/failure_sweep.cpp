#include "primitives/failure_sweep.h"

#include "primitives/ragde.h"

namespace iph::primitives {

SweepResult sweep_failures(pram::Machine& m,
                           std::span<const std::uint8_t> failed_flags,
                           std::uint64_t bound) {
  SweepResult r;
  const RagdeResult rr = ragde_compact(m, failed_flags, bound);
  r.used_fallback = rr.used_fallback;
  if (!rr.ok) {
    r.ok = false;
    return r;
  }
  // Dense order = slot order (deterministic).
  for (const std::uint32_t v : rr.slots) {
    if (v != kRagdeEmpty) r.failed.push_back(v);
  }
  return r;
}

}  // namespace iph::primitives
