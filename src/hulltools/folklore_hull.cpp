#include "hulltools/folklore_hull.h"

#include <algorithm>
#include <numeric>

#include "hulltools/chain_ops.h"
#include "primitives/brute_force_hull.h"
#include "support/check.h"
#include "support/mathutil.h"

namespace iph::hulltools {

using geom::Index;
using geom::Point2;

geom::HullResult2D folklore_hull_presorted(pram::Machine& m,
                                           std::span<const Point2> pts,
                                           std::size_t lo, std::size_t hi,
                                           unsigned k_levels) {
  IPH_CHECK(k_levels >= 1);
  IPH_CHECK(lo <= hi && hi <= pts.size());
  const std::size_t q = hi - lo;
  if (q <= 32) return primitives::brute_hull_presorted(m, pts, lo, hi);
  pram::Machine::Phase phase(m, "ht/folklore");

  const std::uint64_t radix = std::max<std::uint64_t>(
      2, support::ipow_frac(q, 1.0 / (2.0 * k_levels)));

  // Bottom: brute-force hull of each block. The per-block calls run in
  // the same logical PRAM steps; the simulator executes them serially,
  // so rebase the step counter to the deepest block (work adds, as it
  // should).
  std::vector<Chain> chains;
  {
    const std::uint64_t steps_before = m.metrics().steps;
    std::uint64_t max_steps = 0;
    for (std::size_t blo = lo; blo < hi; blo += radix) {
      const std::size_t bhi = std::min(hi, blo + radix);
      const std::uint64_t at = m.metrics().steps;
      auto hr = primitives::brute_hull_presorted(m, pts, blo, bhi);
      max_steps = std::max(max_steps, m.metrics().steps - at);
      chains.push_back(std::move(hr.upper.vertices));
    }
    m.metrics().steps = steps_before + max_steps;
  }

  // 2k merge rounds of radix-way grouping.
  while (chains.size() > 1) {
    const std::size_t groups = (chains.size() + radix - 1) / radix;
    std::vector<std::uint32_t> group_of(chains.size());
    for (std::size_t c = 0; c < chains.size(); ++c) {
      group_of[c] = static_cast<std::uint32_t>(c / radix);
    }
    chains = merge_chain_groups(m, pts, chains, group_of, groups, radix);
  }

  geom::HullResult2D r;
  r.upper.vertices = std::move(chains.front());
  std::vector<Index> queries(q);
  std::iota(queries.begin(), queries.end(), static_cast<Index>(lo));
  r.edge_above =
      edges_above_chain(m, pts, queries, r.upper.vertices, radix);
  return r;
}

}  // namespace iph::hulltools
