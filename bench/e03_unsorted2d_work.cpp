// E3 — Theorem 5: unsorted 2-d hull in O(log n) time and O(n log h)
// work w.h.p. Reproduction target: across h-controlled workloads
// (convex_k: h = k exactly; square: h ~ log n; disk: h ~ n^(1/3)),
// work/(n log h) stays within one constant band and steps/log n stays
// flat. Circle input (h ~ n/2) exceeds the fallback threshold and rides
// the O(n log n) envelope instead — the paper's own switch.
#include <benchmark/benchmark.h>

#include <string>

#include "report.h"
#include "core/unsorted2d.h"
#include "geom/workloads.h"
#include "pram/machine.h"
#include "seq/upper_hull.h"

namespace {

std::vector<iph::geom::Point2> workload(int kind, std::size_t n) {
  switch (kind) {
    case 0:
      return iph::geom::convex_k(n, 16, 4242);  // h = 16 exactly
    case 1:
      return iph::geom::in_square(n, 4242);     // h ~ log n
    case 2:
      return iph::geom::in_disk(n, 4242);       // h ~ n^(1/3)
    default:
      return iph::geom::on_circle(n, 4242);     // h ~ n/2
  }
}

const char* workload_name(int kind) {
  switch (kind) {
    case 0:
      return "convex16";
    case 1:
      return "square";
    case 2:
      return "disk";
    default:
      return "circle";
  }
}

void e03(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int kind = static_cast<int>(state.range(1));
  const auto pts = workload(kind, n);
  const std::size_t h = iph::seq::upper_hull(pts).vertices.size();
  iph::pram::Metrics last;
  iph::core::Unsorted2DStats stats;
  const std::string tag =
      std::string(workload_name(kind)) + "/" + std::to_string(n);
  for (auto _ : state) {
    iph::pram::Machine m(1, 11);
    iph::bench::instrument(m, tag);
    stats = {};
    benchmark::DoNotOptimize(
        iph::core::unsorted_hull_2d(m, pts, &stats));
    last = m.metrics();
  }
  iph::bench::report_metrics(state, last);
  const double nn = static_cast<double>(n);
  state.counters["h"] = static_cast<double>(h);
  state.counters["work/nlogh"] =
      static_cast<double>(last.work) /
      (nn * iph::bench::log2d(static_cast<double>(h)));
  state.counters["work/nlogn"] =
      static_cast<double>(last.work) / (nn * iph::bench::log2d(nn));
  state.counters["steps/logn"] =
      static_cast<double>(last.steps) / iph::bench::log2d(nn);
  state.counters["fallback"] = stats.used_fallback ? 1 : 0;
  state.SetLabel(workload_name(kind));
}

}  // namespace

BENCHMARK(e03)
    ->ArgsProduct(
        {iph::bench::n_sweep({1 << 12, 1 << 14, 1 << 16, 1 << 18}),
         {0, 1, 2, 3}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Theorem 5: work/(n log h) stays in one constant band per workload
// (measured <= 1.75x per family, EXPERIMENTS.md E3; circle rides the
// fallback but n log n ~ n log h there) and steps/log n stays flat
// (measured band <= 2.8x within a family).
IPH_BENCH_MAIN("e03",
               {"work-nlogh", "work", "n_log_h", 3.5, "h"},
               {"steps-logn", "steps", "log_n", 4.0})
