#include "exec/pool.h"

#include <algorithm>
#include <latch>
#include <utility>

#include "support/env.h"

namespace iph::exec {

ThreadPool::ThreadPool(unsigned threads)
    : threads_(std::max(1u, threads == 0 ? support::env_threads() : threads)) {
  workers_.reserve(threads_ - 1);
  for (unsigned i = 1; i < threads_; ++i) {
    workers_.emplace_back([this] { worker(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_.wait(lk, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ && drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

std::size_t ThreadPool::slice_count(std::size_t n,
                                    std::size_t grain) const noexcept {
  if (n == 0) return 0;
  const std::size_t g = std::max<std::size_t>(grain, 1);
  return std::min<std::size_t>(threads_, (n + g - 1) / g);
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  const std::size_t slices = slice_count(n, grain);
  if (slices == 0) return;
  const std::size_t chunk = (n + slices - 1) / slices;
  if (slices == 1) {
    fn(0, n, 0);
    return;
  }
  std::latch done(static_cast<std::ptrdiff_t>(slices - 1));
  {
    std::lock_guard<std::mutex> lk(mu_);
    for (std::size_t s = 1; s < slices; ++s) {
      const std::size_t begin = s * chunk;
      const std::size_t end = std::min(n, begin + chunk);
      tasks_.emplace_back([&fn, &done, begin, end, s] {
        fn(begin, end, s);
        done.count_down();
      });
    }
  }
  cv_.notify_all();
  fn(0, std::min(n, chunk), 0);
  done.wait();
}

}  // namespace iph::exec
