#include <gtest/gtest.h>

#include "geom/validate.h"
#include "geom/workloads.h"
#include "seq/giftwrap3d.h"
#include "seq/upper_hull.h"

namespace iph::geom {
namespace {

TEST(ValidateUpperHull, AcceptsOracleHull) {
  auto pts = in_square(500, 1);
  const auto hull = seq::upper_hull(pts);
  std::string err;
  EXPECT_TRUE(validate_upper_hull(pts, hull, &err)) << err;
}

TEST(ValidateUpperHull, EmptyAndSingleton) {
  std::vector<Point2> none;
  EXPECT_TRUE(validate_upper_hull(none, UpperHull2D{}));
  UpperHull2D bogus;
  bogus.vertices.push_back(0);
  EXPECT_FALSE(validate_upper_hull(none, bogus));

  std::vector<Point2> one{{1, 2}};
  UpperHull2D h;
  h.vertices.push_back(0);
  EXPECT_TRUE(validate_upper_hull(one, h));
  EXPECT_FALSE(validate_upper_hull(one, UpperHull2D{}));
}

TEST(ValidateUpperHull, RejectsMissingVertex) {
  // A square: dropping a top corner leaves a point above the chain.
  std::vector<Point2> pts{{0, 0}, {0, 10}, {10, 10}, {10, 0}, {5, 20}};
  UpperHull2D wrong;
  wrong.vertices = {1, 2};  // skips the peak at (5,20)
  std::string err;
  EXPECT_FALSE(validate_upper_hull(pts, wrong, &err));
}

TEST(ValidateUpperHull, RejectsCollinearVertexKept) {
  std::vector<Point2> pts{{0, 0}, {5, 5}, {10, 10}, {10, 0}, {0, -5}};
  UpperHull2D nonstrict;
  nonstrict.vertices = {0, 1, 2};  // (5,5) is collinear on the chain
  EXPECT_FALSE(validate_upper_hull(pts, nonstrict));
}

TEST(ValidateUpperHull, RejectsNonMonotone) {
  std::vector<Point2> pts{{0, 0}, {10, 5}, {5, 10}};
  UpperHull2D h;
  h.vertices = {0, 1, 2};  // x not increasing
  EXPECT_FALSE(validate_upper_hull(pts, h));
}

TEST(ValidateUpperHull, EqualXColumnDegenerate) {
  std::vector<Point2> pts{{3, 0}, {3, 7}, {3, 4}};
  UpperHull2D h;
  h.vertices = {1};
  EXPECT_TRUE(validate_upper_hull(pts, h));
  h.vertices = {0};  // not the topmost
  EXPECT_FALSE(validate_upper_hull(pts, h));
}

TEST(ValidateEdgeAbove, AcceptsOracleAssignment) {
  auto pts = in_disk(300, 5);
  const auto r = seq::hull_result_2d(pts);
  std::string err;
  EXPECT_TRUE(validate_edge_above(pts, r, &err)) << err;
}

TEST(ValidateEdgeAbove, RejectsWrongEdge) {
  std::vector<Point2> pts{{0, 10}, {10, 12}, {20, 10}, {5, 0}, {15, 0}};
  auto r = seq::hull_result_2d(pts);
  ASSERT_EQ(r.upper.edge_count(), 2u);
  // Point (15,0) belongs under edge 1; claim edge 0 (x-range violation).
  r.edge_above[4] = 0;
  EXPECT_FALSE(validate_edge_above(pts, r));
}

TEST(ValidateEdgeAbove, RejectsMissingPointer) {
  std::vector<Point2> pts{{0, 10}, {10, 12}, {20, 10}};
  auto r = seq::hull_result_2d(pts);
  r.edge_above[1] = kNone;
  EXPECT_FALSE(validate_edge_above(pts, r));
}

TEST(FullHullFromUpper, Square) {
  std::vector<Point2> pts{{0, 0}, {10, 0}, {10, 10}, {0, 10}, {5, 5}};
  const auto upper = seq::upper_hull(pts);
  std::vector<Point2> neg(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) neg[i] = {pts[i].x, -pts[i].y};
  const auto lower = seq::upper_hull(neg);
  const auto full = full_hull_from_upper(upper, lower);
  EXPECT_EQ(full.size(), 4u);  // interior point excluded
}

TEST(ValidateHull3D, AcceptsOracle) {
  auto pts = in_ball(120, 3);
  const auto r = seq::giftwrap_upper_hull3(pts);
  std::string err;
  EXPECT_TRUE(validate_hull3d(pts, r, true, &err)) << err;
}

TEST(ValidateHull3D, RejectsPointAbovePlane) {
  auto pts = in_ball(60, 4);
  auto r = seq::giftwrap_upper_hull3(pts);
  ASSERT_FALSE(r.facets.empty());
  // Raise one point far above everything: plane checks must now fail.
  pts[0].z += 1e9;
  EXPECT_FALSE(validate_hull3d(pts, r));
}

TEST(ValidateHull3D, RejectsUnassignedWhenRequired) {
  auto pts = in_ball(60, 5);
  auto r = seq::giftwrap_upper_hull3(pts);
  r.facet_above[10] = kNone;
  EXPECT_FALSE(validate_hull3d(pts, r, true));
  EXPECT_TRUE(validate_hull3d(pts, r, false));
}

TEST(Hull3DVertexSet, SortedUnique) {
  HullResult3D r;
  r.facets.push_back({5, 2, 9});
  r.facets.push_back({2, 9, 7});
  const auto v = hull3d_vertex_set(r);
  EXPECT_EQ(v, (std::vector<Index>{2, 5, 7, 9}));
}

}  // namespace
}  // namespace iph::geom
