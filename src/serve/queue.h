// Bounded MPMC request queue with admission control.
//
// The queue is the service's only backpressure point: push() never
// blocks — a full queue rejects immediately (Admit::kFull) so callers
// get a loaded-shed answer instead of unbounded latency, and a closed
// queue rejects with Admit::kClosed. Consumers block in pop()/
// pop_batch(); close() wakes them all, after which pops DRAIN the
// backlog (graceful shutdown: every admitted request is still handed to
// a worker) and then return empty.
//
// pop_batch implements the batching window: it blocks for the first
// item, then keeps taking already-queued items — waiting up to `window`
// for stragglers — until the request or point budget is reached. The
// window prices latency against coalescing; the budgets bound the
// arena one PRAM run touches.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <vector>

#include "serve/request.h"
#include "stats/stats.h"

namespace iph::serve {

/// Why pop_batch stopped growing a (non-empty) batch — the batcher's
/// window-close reason counters key on this.
enum class BatchClose : std::uint8_t {
  kWindow,    ///< Straggler window elapsed.
  kRequests,  ///< Request budget reached.
  kPoints,    ///< Point (arena) budget reached.
  kClosed,    ///< Queue closed while the batch was collecting.
};

constexpr const char* batch_close_name(BatchClose c) noexcept {
  switch (c) {
    case BatchClose::kWindow:
      return "window";
    case BatchClose::kRequests:
      return "requests";
    case BatchClose::kPoints:
      return "points";
    case BatchClose::kClosed:
      return "closed";
  }
  return "?";
}

/// A queued request plus its completion channel and arrival stamp.
struct Pending {
  Request request;
  std::promise<Response> promise;
  Clock::time_point enqueued_at{};
};

class BoundedQueue {
 public:
  enum class Admit : std::uint8_t { kOk, kFull, kClosed };

  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}
  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking admission: kFull at capacity, kClosed after close().
  /// On kOk the queue owns `p`; otherwise `p` is untouched (the caller
  /// still holds the promise to answer the rejection on).
  Admit push(Pending& p);

  /// One item, blocking until something arrives or the queue closes.
  /// Empty optional = closed and fully drained.
  std::optional<Pending> pop();

  /// Up to max_requests items totalling at most max_points input points
  /// (the first item is taken regardless of its size, so oversized
  /// requests cannot wedge the queue). Blocks for the first item; then
  /// waits up to `window` past the first take for stragglers. Empty
  /// vector = closed and fully drained. When `close_reason` is non-null
  /// and the batch is non-empty, it reports why collection stopped.
  std::vector<Pending> pop_batch(std::size_t max_requests,
                                 std::size_t max_points,
                                 std::chrono::microseconds window,
                                 BatchClose* close_reason = nullptr);

  /// No further admissions; blocked consumers wake and drain.
  void close();

  /// Optional live-depth instrument: once bound, the gauge tracks
  /// q_.size() after every mutation (under the queue mutex, so the
  /// level is never stale relative to the queue's own state). Bind
  /// before concurrent use; the gauge must outlive the queue.
  void bind_depth_gauge(stats::Gauge* g);

  std::size_t size() const;
  bool closed() const;

 private:
  void update_depth_locked() noexcept {
    if (depth_ != nullptr) depth_->set(static_cast<std::int64_t>(q_.size()));
  }

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> q_;
  bool closed_ = false;
  stats::Gauge* depth_ = nullptr;
};

}  // namespace iph::serve
