// E10 — Section 5 / Lemma 7 (Matias-Vishkin): an algorithm with PRAM
// time t and work w runs on p processors in T <= t + w/p + t_c log t.
//
// The simulator tracks the REALIZED simulated time T(p) = sum over steps
// of ceil(active/p) online; this bench prints it for the processor
// ladder next to the Lemma 7 bound for a Theorem 5 run. Reproduction
// target: realized T(p) <= bound for every p, with T(p) ~ w/p in the
// work-dominated range and ~t once p exceeds the parallelism.
#include <benchmark/benchmark.h>

#include "report.h"
#include "core/unsorted2d.h"
#include "geom/workloads.h"
#include "pram/allocation.h"
#include "pram/machine.h"

namespace {

void e10(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pts = iph::geom::in_disk(n, 3);
  iph::pram::Metrics last;
  for (auto _ : state) {
    iph::pram::Machine m(1, 7);
    benchmark::DoNotOptimize(iph::core::unsorted_hull_2d(m, pts));
    last = m.metrics();
  }
  const auto rep = iph::pram::allocation_report(last);
  state.counters["t_ideal"] = static_cast<double>(rep.ideal_time);
  state.counters["work"] = static_cast<double>(rep.work);
  state.counters["peak_aux"] = static_cast<double>(last.peak_aux);
  state.counters["peak_input"] = static_cast<double>(last.peak_input);
  for (const auto& [p, tp] : rep.realized) {
    if (p > 4096) continue;
    state.counters["T(" + std::to_string(p) + ")"] =
        static_cast<double>(tp);
    state.counters["MVbound(" + std::to_string(p) + ")"] =
        iph::pram::matias_vishkin_time(rep.ideal_time, rep.work, p);
  }
}

}  // namespace

BENCHMARK(e10)
    ->ArgsProduct({iph::bench::n_sweep({1 << 14, 1 << 16})})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Lemma 7 (Matias-Vishkin): realized T(p) tracks the t + w/p + t_c log t
// bound through the work-dominated range (within 1.3% at p = 64) and
// exceeds it by a bounded factor at large p where the bound's free
// redistribution assumption breaks (measured 4.5x at p = 4096,
// EXPERIMENTS.md E10). t_ideal itself grows like log n.
// Space: the disk workload has h ~ n^(1/3), which crosses the n^(1/4)
// threshold and fires the Section 4.1 step-3 fallback, whose sorted
// copy / chain scratch is Theta(n) auxiliary cells — so peak_aux is
// gated as a linear band in n (and would flag a switch to a
// super-linear-scratch implementation).
IPH_BENCH_MAIN("e10",
               {"t64-near-bound", "T(64)", "below_aux", 1.5,
                "MVbound(64)"},
               {"t4096-envelope", "T(4096)", "below_aux", 8.0,
                "MVbound(4096)"},
               {"t-ideal-logn", "t_ideal", "log_n", 3.0},
               {"work-nlogn", "work", "n_log_n", 3.0},
               {"aux-linear", "peak_aux", "linear", 2.0})
