// hullserved — the iph::serve subsystem behind an NDJSON endpoint.
//
//   hullserved [options]              serve stdin -> stdout, exit at EOF
//   hullserved --port P [options]     serve TCP on 127.0.0.1:P,
//                                     one thread per connection
//
// --port 0 binds a kernel-picked free port; TCP mode always prints a
// machine-readable "listening <port>" line to stdout so launchers
// (serve_smoke, bench/e16_cluster, hullrouter wrappers) can start
// backends without racing for fixed ports.
//
// Wire protocol: serve_wire.h (one JSON object per line, both ways).
// Plain POSIX sockets, no dependencies beyond the repo's own libraries.
//
// Responses on a connection are written in submission order: a reader
// loop parses + submits while a per-connection responder thread drains
// the futures FIFO — submission keeps flowing while earlier hulls are
// still computing, which is what lets the service's batcher coalesce a
// pipelined client's burst. (FIFO also pairs with hullload's open-loop
// reader, which matches responses to send times positionally.)
//
// SIGINT/SIGTERM stop accepting, drain in-flight connections, and
// print the service stats to stderr. Exit codes: 0 clean, 2 usage
// error, 3 socket setup failure.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/request.h"
#include "serve/service.h"
#include "serve_wire.h"
#include "session/manager.h"
#include "trace/json.h"

namespace {

using iph::serve::HullService;
using iph::serve::Response;
using iph::serve::ServiceConfig;
using iph::serve::StatsSnapshot;
using iph::session::SessionManager;
using iph::tools::LineChannel;
using iph::trace::Json;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--port P] [--shards N] [--workers N] [--threads N]\n"
      "          [--capacity N] [--window-us U] [--max-batch N]\n"
      "          [--small-threshold N] [--no-large] [--seed S] [--quiet]\n"
      "          [--stats-every-ms M] [--backend pram|native]\n"
      "          [--max-sessions N] [--max-append-points N]\n"
      "          [--session-pending N] [--session-staleness N]\n"
      "          [--trace] [--obs-capacity N] [--repro-dir D]\n"
      "          [--trace-out FILE] [--tracez-out FILE]\n"
      "Serves NDJSON hull requests (see tools/serve_wire.h) from stdin\n"
      "(default) or TCP connections on 127.0.0.1:P. A {\"cmd\":\"statz\"}\n"
      "line returns the service metrics registry; --stats-every-ms logs\n"
      "a periodic snapshot-diff line to stderr. --backend picks the\n"
      "engine for requests that don't name one (default: pram, the\n"
      "metered simulator; native is the thread-parallel fast path).\n"
      "Streaming sessions (session_open/append/close command lines)\n"
      "share every stream; --max-sessions caps concurrently live ones,\n"
      "--max-append-points caps one append's batch, --session-pending /\n"
      "--session-staleness set the per-session rebuild thresholds.\n"
      "Tracing: the flight recorder is on by default (a {\"cmd\":\n"
      "\"tracez\"} line returns recent/slowest span trees); --obs-capacity\n"
      "sizes its ring (0 disables tracing), --repro-dir overrides\n"
      "$IPH_EXEC_REPRO_DIR for tail-exemplar repro files, --trace arms\n"
      "per-shard PRAM phase recorders (linked as child spans), and\n"
      "--trace-out / --tracez-out dump a Chrome trace / tracez JSON\n"
      "snapshot of the recorder at shutdown.\n",
      argv0);
  return 2;
}

/// One NDJSON stream: reader parses + submits on this thread, a
/// responder thread writes answers in submission order. `conn_id`
/// namespaces server-stamped trace ids: a request that brings no
/// {"trace":{"id":...}} gets (conn_id << 32 | sequence), unique across
/// connections and strictly monotonic within one (stdin is connection
/// 1, so its stamped ids are deterministic — serve_smoke asserts them).
void serve_stream(HullService& svc, SessionManager& mgr, int in_fd,
                  int out_fd, std::uint64_t conn_id) {
  LineChannel chan(in_fd, out_fd);

  // Either a pending future, an immediate parse-error message, a
  // statz/tracez command (answered with a snapshot taken at WRITE time,
  // so such a line's counters/traces include every request answered
  // before it on this stream), or a session answer already rendered at
  // READ time (`ready` — SessionManager calls are synchronous, and
  // rendering before enqueue keeps the one-response-per-line FIFO
  // exact).
  struct Outgoing {
    std::future<Response> fut;
    bool edge_above = false;
    bool statz = false;
    bool statz_prometheus = false;
    bool tracez = false;
    std::size_t tracez_limit = 16;
    bool tracez_slowest = false;
    std::string error;
    std::string error_reject = iph::cluster::reject::kBadRequest;
    std::string ready;
  };
  std::deque<Outgoing> queue;
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;

  std::thread responder([&] {
    for (;;) {
      Outgoing out;
      {
        std::unique_lock<std::mutex> lk(mu);
        cv.wait(lk, [&] { return done || !queue.empty(); });
        if (queue.empty()) return;  // done && drained
        out = std::move(queue.front());
        queue.pop_front();
      }
      if (!out.error.empty()) {
        const Json err =
            iph::cluster::make_error(out.error_reject, out.error);
        if (!chan.write_line(err.dump())) return;
        continue;
      }
      if (!out.ready.empty()) {
        if (!chan.write_line(out.ready)) return;
        continue;
      }
      if (out.statz) {
        const Json line = iph::tools::statz_response(
            svc.stats_registry().snapshot(), out.statz_prometheus);
        if (!chan.write_line(line.dump())) return;
        continue;
      }
      if (out.tracez) {
        const Json line = iph::tools::tracez_response(
            *svc.flight_recorder(), out.tracez_limit, out.tracez_slowest);
        if (!chan.write_line(line.dump())) return;
        continue;
      }
      const Response resp = out.fut.get();
      const Json line = iph::tools::response_to_json(resp, out.edge_above);
      if (!chan.write_line(line.dump())) return;
    }
  });

  // Sessions this connection opened and has not yet closed — closed
  // server-side when the stream ends, so an abandoned connection can't
  // pin live-session slots (or their aux-cell footprint) forever.
  std::vector<std::uint64_t> open_sids;
  const auto forget_sid = [&open_sids](std::uint64_t sid) {
    for (auto it = open_sids.begin(); it != open_sids.end(); ++it) {
      if (*it == sid) {
        open_sids.erase(it);
        return;
      }
    }
  };

  std::string line;
  std::uint64_t trace_seq = 0;  // server-stamped ids on this stream
  while (chan.read_line(&line)) {
    if (line.empty()) continue;
    Outgoing out;
    Json j;
    std::string err;
    std::string cmd;
    iph::serve::Request req;
    if (!Json::parse(line, &j, &err)) {
      out.error = "bad JSON: " + err;
      out.error_reject = iph::cluster::reject::kBadJson;
    } else if (!iph::cluster::version_ok(j)) {
      out.error = "request pins protocol version " +
                  std::to_string(static_cast<long long>(j.get_num("v", 0))) +
                  "; this server speaks " +
                  std::to_string(iph::cluster::kProtocolVersion);
      out.error_reject = iph::cluster::reject::kVersion;
    } else if (iph::tools::wire_command(j, &cmd)) {
      if (cmd == "statz") {
        out.statz = true;
        out.statz_prometheus = j.get_str("format") == "prometheus";
      } else if (cmd == "tracez") {
        if (svc.flight_recorder() == nullptr) {
          out.error = "tracing disabled (--obs-capacity 0)";
        } else if (!iph::tools::tracez_args_from_json(
                       j, &out.tracez_limit, &out.tracez_slowest, &err)) {
          out.error = err;
        } else {
          out.tracez = true;
        }
      } else if (cmd == "session_open") {
        iph::exec::BackendKind want;
        if (!iph::tools::session_open_from_json(j, &want, &err)) {
          out.error = err;
        } else {
          iph::session::OpenInfo info;
          const auto st = mgr.open(want, &info);
          if (st == iph::session::SessionStatus::kOk) {
            open_sids.push_back(info.sid);
          }
          out.ready = iph::tools::session_open_response(st, info).dump();
        }
      } else if (cmd == "session_append") {
        std::uint64_t sid = 0;
        std::vector<iph::geom::Point2> pts;
        if (!iph::tools::session_append_from_json(j, &sid, &pts, &err)) {
          out.error = err;
        } else {
          iph::session::AppendResult res;
          const auto st = mgr.append(sid, pts, &res);
          out.ready =
              iph::tools::session_append_response(sid, st, res).dump();
        }
      } else if (cmd == "session_close") {
        std::uint64_t sid = 0;
        if (!iph::tools::session_sid_from_json(j, &sid, &err)) {
          out.error = err;
        } else {
          iph::session::CloseSummary sum;
          const auto st = mgr.close(sid, &sum);
          if (st == iph::session::SessionStatus::kOk) forget_sid(sid);
          out.ready =
              iph::tools::session_close_response(sid, st, sum).dump();
        }
      } else {
        out.error = "unknown cmd \"" + cmd + "\"";
        out.error_reject = iph::cluster::reject::kUnknownCmd;
      }
    } else if (!iph::tools::request_from_json(j, &req, &out.edge_above,
                                              &err)) {
      out.error = err;
    } else {
      // Client-supplied ids are adopted verbatim (already parsed into
      // req.trace); everything else is stamped here, per connection —
      // unless tracing is off (--obs-capacity 0), in which case
      // responses stay id-free like the recorder-less service itself.
      if (!req.trace.has_id() && svc.flight_recorder() != nullptr) {
        req.trace.trace_id = (conn_id << 32) | ++trace_seq;
      }
      out.fut = svc.submit(std::move(req));
    }
    {
      std::lock_guard<std::mutex> lk(mu);
      queue.push_back(std::move(out));
    }
    cv.notify_one();
  }
  {
    std::lock_guard<std::mutex> lk(mu);
    done = true;
  }
  cv.notify_one();
  responder.join();
  for (const std::uint64_t sid : open_sids) {
    iph::session::CloseSummary sum;
    (void)mgr.close(sid, &sum);
  }
}

void print_stats(const StatsSnapshot& s) {
  std::fprintf(stderr,
               "hullserved: submitted %llu  ok %llu  rejected_full %llu  "
               "rejected_shutdown %llu  expired %llu\n"
               "hullserved: batches %llu  mean batch %.2f  max batch %llu  "
               "large %llu\n",
               static_cast<unsigned long long>(s.submitted),
               static_cast<unsigned long long>(s.completed),
               static_cast<unsigned long long>(s.rejected_full),
               static_cast<unsigned long long>(s.rejected_shutdown),
               static_cast<unsigned long long>(s.expired),
               static_cast<unsigned long long>(s.batches), s.mean_batch(),
               static_cast<unsigned long long>(s.max_batch),
               static_cast<unsigned long long>(s.large_requests));
}

/// Background snapshot-diff logger (--stats-every-ms): every period,
/// one stderr line with what changed since the previous tick plus the
/// live occupancy gauges — flight-recorder output for long-running
/// servers, cheap enough to leave on (two snapshots per period, no
/// per-request cost).
class StatsLogger {
 public:
  StatsLogger(HullService& svc, int every_ms)
      : svc_(svc), every_ms_(every_ms), thread_([this] { run(); }) {}

  ~StatsLogger() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_one();
    thread_.join();
  }

 private:
  void run() {
    namespace sn = iph::serve::statnames;
    iph::stats::RegistrySnapshot prev = svc_.stats_registry().snapshot();
    std::unique_lock<std::mutex> lk(mu_);
    while (!cv_.wait_for(lk, std::chrono::milliseconds(every_ms_),
                         [this] { return stop_; })) {
      lk.unlock();
      const iph::stats::RegistrySnapshot now = svc_.stats_registry().snapshot();
      const iph::stats::RegistrySnapshot d = now.diff(prev);
      const std::uint64_t rejected =
          d.counter_or0(iph::stats::labeled(sn::kRejectedBase, "reason",
                                            "full")) +
          d.counter_or0(iph::stats::labeled(sn::kRejectedBase, "reason",
                                            "shutdown"));
      const iph::stats::HistogramSnapshot* e2e = d.histogram(sn::kE2eMs);
      const std::int64_t* small_d = d.gauge(
          iph::stats::labeled(sn::kQueueDepthBase, "queue", "small"));
      const std::int64_t* large_d = d.gauge(
          iph::stats::labeled(sn::kQueueDepthBase, "queue", "large"));
      const std::int64_t* leased = d.gauge(sn::kShardsLeased);
      std::fprintf(
          stderr,
          "hullserved statz: +submitted %llu +completed %llu +rejected "
          "%llu +expired %llu | depth small %lld large %lld leased %lld "
          "| e2e_p99 %.3fms\n",
          static_cast<unsigned long long>(d.counter_or0(sn::kSubmitted)),
          static_cast<unsigned long long>(d.counter_or0(sn::kCompleted)),
          static_cast<unsigned long long>(rejected),
          static_cast<unsigned long long>(d.counter_or0(sn::kExpired)),
          static_cast<long long>(small_d != nullptr ? *small_d : 0),
          static_cast<long long>(large_d != nullptr ? *large_d : 0),
          static_cast<long long>(leased != nullptr ? *leased : 0),
          e2e != nullptr ? e2e->quantile(0.99) : 0.0);
      prev = now;
      lk.lock();
    }
  }

  HullService& svc_;
  const int every_ms_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

// Signal handling: flip a flag and close the listening socket so the
// blocking accept() returns (both are async-signal-safe).
std::atomic<bool> g_stop{false};
int g_listen_fd = -1;

void on_signal(int) {
  g_stop.store(true);
  if (g_listen_fd >= 0) ::close(g_listen_fd);
}

int serve_tcp(HullService& svc, SessionManager& mgr, int port, bool quiet) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("hullserved: socket");
    return 3;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 64) < 0) {
    std::perror("hullserved: bind/listen");
    ::close(fd);
    return 3;
  }
  socklen_t alen = sizeof addr;  // report the real port when P was 0
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &alen);
  // Machine-readable (always, even under --quiet): with --port 0 this
  // line is how a launcher learns the kernel-picked port.
  std::printf("listening %d\n", ntohs(addr.sin_port));
  std::fflush(stdout);
  if (!quiet) {
    std::fprintf(stderr, "hullserved: listening on 127.0.0.1:%d\n",
                 ntohs(addr.sin_port));
  }
  g_listen_fd = fd;
  struct sigaction sa {};
  sa.sa_handler = on_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  std::vector<std::thread> sessions;
  std::mutex sessions_mu;
  // Connection ids start at 2: stdin mode is connection 1, so a TCP
  // connection's stamped trace ids never collide with a stdin run's.
  std::uint64_t next_conn = 2;
  while (!g_stop.load()) {
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (g_stop.load()) break;
      if (errno == EINTR) continue;
      std::perror("hullserved: accept");
      break;
    }
    const std::uint64_t conn_id = next_conn++;
    std::lock_guard<std::mutex> lk(sessions_mu);
    sessions.emplace_back([&svc, &mgr, conn, conn_id] {
      serve_stream(svc, mgr, conn, conn, conn_id);
      ::close(conn);
    });
  }
  if (!g_stop.load()) ::close(fd);
  for (auto& t : sessions) t.join();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int port = -1;
  bool quiet = false;
  int stats_every_ms = 0;
  std::string trace_out;
  std::string tracez_out;
  ServiceConfig cfg;
  iph::session::ManagerConfig mgr_cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (a == "--port" && (v = next())) {
      port = std::atoi(v);
    } else if (a == "--shards" && (v = next())) {
      cfg.shards = static_cast<std::size_t>(std::atoll(v));
    } else if (a == "--workers" && (v = next())) {
      cfg.workers = static_cast<std::size_t>(std::atoll(v));
    } else if (a == "--threads" && (v = next())) {
      cfg.threads_per_shard = static_cast<unsigned>(std::atoi(v));
    } else if (a == "--capacity" && (v = next())) {
      cfg.queue_capacity = static_cast<std::size_t>(std::atoll(v));
    } else if (a == "--window-us" && (v = next())) {
      cfg.batch.window = std::chrono::microseconds(std::atoll(v));
    } else if (a == "--max-batch" && (v = next())) {
      cfg.batch.max_batch_requests = static_cast<std::size_t>(std::atoll(v));
    } else if (a == "--small-threshold" && (v = next())) {
      cfg.batch.small_threshold = static_cast<std::size_t>(std::atoll(v));
    } else if (a == "--seed" && (v = next())) {
      cfg.master_seed = std::strtoull(v, nullptr, 0);
    } else if (a == "--backend" && (v = next())) {
      if (!iph::exec::parse_backend(v, &cfg.backend)) return usage(argv[0]);
    } else if (a == "--stats-every-ms" && (v = next())) {
      stats_every_ms = std::atoi(v);
    } else if (a == "--max-sessions" && (v = next())) {
      mgr_cfg.max_sessions = static_cast<std::size_t>(std::atoll(v));
    } else if (a == "--max-append-points" && (v = next())) {
      mgr_cfg.max_append_points = static_cast<std::size_t>(std::atoll(v));
    } else if (a == "--session-pending" && (v = next())) {
      mgr_cfg.session.pending_limit = static_cast<std::size_t>(std::atoll(v));
    } else if (a == "--session-staleness" && (v = next())) {
      mgr_cfg.session.staleness_limit =
          static_cast<std::uint64_t>(std::atoll(v));
    } else if (a == "--trace") {
      cfg.trace = true;
    } else if (a == "--obs-capacity" && (v = next())) {
      const long long n = std::atoll(v);
      if (n <= 0) {
        cfg.obs.enabled = false;
      } else {
        cfg.obs.capacity = static_cast<std::size_t>(n);
      }
    } else if (a == "--repro-dir" && (v = next())) {
      cfg.obs.repro_dir = v;
    } else if (a == "--trace-out" && (v = next())) {
      trace_out = v;
    } else if (a == "--tracez-out" && (v = next())) {
      tracez_out = v;
    } else if (a == "--no-large") {
      cfg.large_shard = false;
    } else if (a == "--quiet") {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (port > 65535) return usage(argv[0]);

  HullService svc(cfg);
  // Sessions register in the service's registry so one statz scrape
  // covers batch and streaming traffic. Session rebuilds default to
  // the same engine batch requests default to (--backend).
  mgr_cfg.default_backend = cfg.backend;
  mgr_cfg.master_seed = cfg.master_seed;
  // Session traces share the service's flight recorder, so one tracez
  // ring covers batch and streaming traffic alike.
  SessionManager mgr(mgr_cfg, svc.stats_registry(), svc.flight_recorder());
  std::unique_ptr<StatsLogger> logger;
  if (stats_every_ms > 0) {
    logger = std::make_unique<StatsLogger>(svc, stats_every_ms);
  }
  int rc = 0;
  if (port < 0) {
    serve_stream(svc, mgr, STDIN_FILENO, STDOUT_FILENO, /*conn_id=*/1);
  } else {
    rc = serve_tcp(svc, mgr, port, quiet);
  }
  logger.reset();  // final tick joins before the summary prints
  svc.shutdown(/*drain=*/true);
  // Flight-recorder dumps at shutdown (after the drain, so every
  // answered request's trace is eligible): --trace-out gets the Chrome
  // timeline of everything retained, --tracez-out the tracez JSON
  // (same shape as the wire command; benchreport renders its exemplar
  // table from this file, and CI uploads both as artifacts).
  if (const auto* fr = svc.flight_recorder();
      fr != nullptr && (!trace_out.empty() || !tracez_out.empty())) {
    const auto write_doc = [&](const std::string& path, const Json& doc) {
      std::FILE* f = std::fopen(path.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "hullserved: cannot write %s\n", path.c_str());
        return;
      }
      const std::string text = doc.dump(1);
      std::fwrite(text.data(), 1, text.size(), f);
      std::fputc('\n', f);
      std::fclose(f);
    };
    if (!trace_out.empty()) {
      write_doc(trace_out, iph::obs::chrome_trace_json(fr->snapshot()));
    }
    if (!tracez_out.empty()) {
      write_doc(tracez_out,
                iph::obs::tracez_json(*fr, /*limit=*/0, /*slowest=*/true));
    }
  }
  if (!quiet) print_stats(svc.stats());
  return rc;
}
