// Sequential monotone-chain upper hull (Andrew's algorithm) — the O(n)
// presorted / O(n log n) unsorted baseline, and the oracle every parallel
// algorithm is validated against.
#pragma once

#include <span>

#include "geom/hull_types.h"
#include "geom/point.h"

namespace iph::seq {

/// Upper hull of lexicographically sorted points, O(n). Indices refer to
/// the input array. Strict hull: no collinear interior vertices.
geom::UpperHull2D upper_hull_presorted(std::span<const geom::Point2> pts);

/// Upper hull of arbitrary-order points, O(n log n): sorts an index
/// permutation internally; returned indices refer to the ORIGINAL array.
geom::UpperHull2D upper_hull(std::span<const geom::Point2> pts);

/// Assign to each point the hull edge at or above it (binary search per
/// point, O(n log h)). Matches the paper's output convention.
std::vector<geom::Index> assign_edges_above(std::span<const geom::Point2> pts,
                                            const geom::UpperHull2D& hull);

/// Convenience oracle: hull + per-point edge pointers.
geom::HullResult2D hull_result_2d(std::span<const geom::Point2> pts);

}  // namespace iph::seq
