#include "session/session.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "geom/predicates.h"
#include "support/rng.h"

namespace iph::session {

namespace {

using geom::Point2;

/// Cells per stored point in the session ledger (x, y).
constexpr std::uint64_t kCellsPerPoint = 2;

Point2 flip(Point2 p) noexcept { return {p.x, -p.y}; }

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

HullSession::HullSession(const SessionConfig& cfg) : cfg_(cfg) {
  if (cfg_.pending_limit == 0) cfg_.pending_limit = 1;
  if (cfg_.staleness_limit == 0) cfg_.staleness_limit = 1;
}

std::vector<Point2> HullSession::lower() const {
  std::vector<Point2> out;
  out.reserve(lower_flip_.size());
  for (const Point2& p : lower_flip_) out.push_back(flip(p));
  return out;
}

bool HullSession::chain_insert(std::vector<Point2>& v, Point2 p,
                               std::uint32_t* pos, std::uint32_t* removed) {
  const std::size_t m = v.size();
  // First vertex with x >= p.x; chains are strictly x-ascending.
  const std::size_t lo =
      static_cast<std::size_t>(
          std::lower_bound(v.begin(), v.end(), p.x,
                           [](const Point2& q, double x) { return q.x < x; }) -
          v.begin());
  std::size_t l = lo;  // removal window [l, r)
  std::size_t r = lo;
  if (lo < m && v[lo].x == p.x) {
    // Same column: the chain keeps only the topmost point per x.
    if (p.y <= v[lo].y) return false;
    r = lo + 1;
  } else if (lo > 0 && lo < m) {
    // Interior column: covered iff on/below the spanning edge (strict
    // hull — a point exactly on the edge is not a vertex).
    if (geom::orient2d(v[lo - 1], v[lo], p) <= 0) return false;
  }
  // p joins the chain. Prune neighbors that stop being strict right
  // turns; prunes on a monotone chain are contiguous around p.
  while (l >= 2 && geom::orient2d(v[l - 2], v[l - 1], p) >= 0) --l;
  while (r + 1 < m && geom::orient2d(p, v[r], v[r + 1]) >= 0) ++r;
  v.erase(v.begin() + static_cast<std::ptrdiff_t>(l),
          v.begin() + static_cast<std::ptrdiff_t>(r));
  v.insert(v.begin() + static_cast<std::ptrdiff_t>(l), p);
  *pos = static_cast<std::uint32_t>(l);
  *removed = static_cast<std::uint32_t>(r - l);
  return true;
}

AppendResult HullSession::append(std::span<const Point2> pts,
                                 exec::Backend& backend) {
  AppendResult res;
  for (const Point2& p : pts) {
    ++points_seen_;
    std::uint32_t pos = 0;
    std::uint32_t removed = 0;
    if (chain_insert(upper_, p, &pos, &removed)) {
      // Net chain growth: +1 vertex, -removed vertices.
      ledger_.record_space_alloc(kCellsPerPoint, pram::SpaceKind::kAux);
      if (removed > 0) {
        ledger_.record_space_release(kCellsPerPoint * removed,
                                     pram::SpaceKind::kAux);
      }
      res.ops.push_back({Side::kUpper, pos, removed, p});
    }
    if (chain_insert(lower_flip_, flip(p), &pos, &removed)) {
      ledger_.record_space_alloc(kCellsPerPoint, pram::SpaceKind::kAux);
      if (removed > 0) {
        ledger_.record_space_release(kCellsPerPoint * removed,
                                     pram::SpaceKind::kAux);
      }
      res.ops.push_back({Side::kLower, pos, removed, p});
    }
    pending_.push_back(p);
    ledger_.record_space_alloc(kCellsPerPoint, pram::SpaceKind::kAux);
  }
  ++appends_;
  ++appends_since_rebuild_;
  if (pending_.size() >= cfg_.pending_limit ||
      appends_since_rebuild_ >= cfg_.staleness_limit) {
    rebuild(backend, &res);
  }
  return res;
}

bool HullSession::rebuild_side(exec::Backend& backend, Side side,
                               AppendResult* res) {
  const std::vector<Point2>& chain =
      side == Side::kUpper ? upper_ : lower_flip_;
  // Merge chain (strictly x-ascending, hence lex-sorted) with the
  // lex-sorted pending batch; the lower side audits in flipped space so
  // the one presorted upper-hull entry point serves both chains.
  std::vector<Point2> batch;
  batch.reserve(pending_.size());
  for (const Point2& p : pending_) {
    batch.push_back(side == Side::kUpper ? p : flip(p));
  }
  std::sort(batch.begin(), batch.end(),
            [](const Point2& a, const Point2& b) {
              return geom::lex_less(a, b);
            });
  std::vector<Point2> merged;
  merged.reserve(chain.size() + batch.size());
  std::merge(chain.begin(), chain.end(), batch.begin(), batch.end(),
             std::back_inserter(merged),
             [](const Point2& a, const Point2& b) {
               return geom::lex_less(a, b);
             });
  const std::uint64_t transient =
      kCellsPerPoint * static_cast<std::uint64_t>(merged.size());
  ledger_.record_space_alloc(transient, pram::SpaceKind::kAux);

  const std::uint64_t rb_seed = support::mix3(
      cfg_.seed, 0x7265626c64ULL /* "rebld" */,
      (rebuilds_ << 1) | static_cast<std::uint64_t>(side));
  exec::HullRun run =
      backend.upper_hull_presorted(merged, rb_seed, cfg_.alpha);
  res->rebuild_metrics.add_counters(run.metrics);
  ledger_.record_space_release(transient, pram::SpaceKind::kAux);

  // Coordinate-equality audit: the rebuilt hull of everything the
  // session retains must BE the maintained chain. (The pending points
  // were all inserted incrementally, so they are either chain vertices
  // already or covered.)
  const std::vector<geom::Index>& hv = run.hull.upper.vertices;
  if (hv.size() != chain.size()) return false;
  for (std::size_t i = 0; i < hv.size(); ++i) {
    if (merged[hv[i]] != chain[i]) return false;
  }
  return true;
}

void HullSession::rebuild(exec::Backend& backend, AppendResult* res) {
  const auto t0 = std::chrono::steady_clock::now();
  res->rebuilt = true;
  bool ok = rebuild_side(backend, Side::kUpper, res);
  ok = rebuild_side(backend, Side::kLower, res) && ok;
  if (!ok) {
    res->rebuild_mismatch = true;
    ++mismatches_;
  }
  ledger_.record_space_release(
      kCellsPerPoint * static_cast<std::uint64_t>(pending_.size()),
      pram::SpaceKind::kAux);
  pending_.clear();
  pending_.shrink_to_fit();
  ++rebuilds_;
  appends_since_rebuild_ = 0;
  res->rebuild_ms = ms_since(t0);
}

}  // namespace iph::session
