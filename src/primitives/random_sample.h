// In-place random sample and random vote (Section 3.1, Lemma 3.1 and
// Corollary 3.1).
//
// Given m active elements scattered through an array of n (no reordering,
// no contiguity assumption — each element has a virtual processor
// "standing by"), draw a uniformly random sample of size Theta(k) into a
// workspace of 16k cells:
//   1. each active processor decides to attempt a write w.p. 2k/m,
//   2. attempters pick a uniformly random workspace cell and try to claim
//      it,
//   3. claimers detect collisions (other attempts on their cell),
//   4. collision victims retry, up to d rounds.
// All steps are O(1) PRAM time. The sample is uniform and of size in
// [k/2, 4k] with probability >= 1 - 2(e/2)^{-k} (Lemma 3.1).
//
// The random vote picks ONE uniformly random active element: draw a
// sample, then take the first occupied workspace cell (Observation 2.1 /
// Eppstein-Galil) — cell choices being uniform, the first occupied cell
// is occupied by a uniformly random attempter.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "pram/machine.h"

namespace iph::primitives {

/// Active-element predicate: invoked as active(i) for i in [0, n).
/// Must be safe to call concurrently (read-only state).
using ActiveFn = std::function<bool(std::uint64_t)>;

struct SampleResult {
  /// Input indices sampled, in workspace-cell order (deterministic given
  /// the machine seed and step index).
  std::vector<std::uint32_t> members;
  /// True iff |members| landed in [k/2, 4k] (the Lemma 3.1 event).
  bool ok = false;
};

inline constexpr int kSampleRounds = 4;  // the paper's constant d

/// Draw a Theta(k) sample of the active elements. m_est estimates the
/// number of active elements (sets the write probability 2k/m). O(1)
/// PRAM steps; workspace 16k cells.
SampleResult random_sample(pram::Machine& m, std::uint64_t n,
                           const ActiveFn& active, std::uint64_t m_est,
                           std::uint64_t k);

inline constexpr std::uint64_t kNoVote = ~std::uint64_t{0};

/// Pick one active element uniformly at random (Corollary 3.1), or
/// kNoVote if the sample came back empty (retry with larger k or smaller
/// m_est; happens w.p. <= 2(e/2)^{-k} when m_est is within 2x of m).
std::uint64_t random_vote(pram::Machine& m, std::uint64_t n,
                          const ActiveFn& active, std::uint64_t m_est,
                          std::uint64_t k);

}  // namespace iph::primitives
