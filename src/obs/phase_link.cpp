#include "obs/phase_link.h"

#include <algorithm>

namespace iph::obs {

std::vector<Span> phase_spans_from_events(
    const trace::Recorder* rec, std::pair<std::size_t, std::size_t> range,
    std::uint32_t parent_id, bool* truncated) {
  std::vector<Span> out;
  if (rec == nullptr) return out;
  const auto& events = rec->events();
  const std::size_t begin = range.first;
  const std::size_t end = std::min(range.second, events.size());
  if (begin >= end) return out;
  const std::uint64_t epoch = rec->epoch_ns();
  const auto abs_ns = [epoch](double wall_us) {
    return wall_us <= 0 ? epoch
                        : epoch + static_cast<std::uint64_t>(wall_us * 1e3);
  };

  // Stack of indices into `out` for phases still open; parent of a new
  // span is the innermost open phase, or the caller's exec span.
  std::vector<std::size_t> open;
  std::uint32_t next_id = kFirstPhaseSpanId;
  std::uint64_t last_ns = epoch;
  for (std::size_t i = begin; i < end; ++i) {
    const trace::TraceEvent& e = events[i];
    last_ns = abs_ns(e.wall_us);
    if (e.kind == trace::TraceEvent::Kind::kOpen) {
      if (out.size() >= kMaxPhaseSpans) {
        if (truncated != nullptr) *truncated = true;
        break;
      }
      Span s;
      s.name = intern_name(e.name);
      s.span_id = next_id++;
      s.parent_id = open.empty()
                        ? parent_id
                        : out[open.back()].span_id;
      s.start_ns = last_ns;
      s.end_ns = last_ns;  // patched at close
      open.push_back(out.size());
      out.push_back(s);
    } else {
      if (open.empty()) continue;  // unmatched close (sliced log)
      out[open.back()].end_ns = last_ns;
      open.pop_back();
    }
  }
  // Phases still open when the slice ended (cap hit mid-tree): close at
  // the last stamp so durations stay sane.
  while (!open.empty()) {
    out[open.back()].end_ns = last_ns;
    open.pop_back();
  }
  // The recorder itself drops events past its cap; a dropped tail means
  // the tree is incomplete even if we never hit kMaxPhaseSpans.
  if (truncated != nullptr && rec->dropped_events() > 0) *truncated = true;
  return out;
}

}  // namespace iph::obs
