// Buffered line-at-a-time IO over a file descriptor. The NDJSON wire
// protocol (tools/serve_wire.h) speaks through this on both sides —
// stdin/stdout streams and connected TCP sockets alike — and the
// cluster router (src/cluster) reuses it for its backend channels, so
// it lives here rather than in tools/.
#pragma once

#include <unistd.h>

#include <cerrno>
#include <string>
#include <string_view>

namespace iph::support {

class LineChannel {
 public:
  explicit LineChannel(int in_fd, int out_fd) : in_(in_fd), out_(out_fd) {}

  /// Next '\n'-terminated line (terminator stripped). At EOF a final
  /// unterminated line is yielded once. False on EOF/error.
  bool read_line(std::string* line) {
    for (;;) {
      if (const auto nl = buf_.find('\n'); nl != std::string::npos) {
        line->assign(buf_, 0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      ssize_t got;
      do {
        got = ::read(in_, chunk, sizeof chunk);
      } while (got < 0 && errno == EINTR);
      if (got <= 0) {
        if (buf_.empty()) return false;
        line->swap(buf_);
        buf_.clear();
        return true;
      }
      buf_.append(chunk, static_cast<std::size_t>(got));
    }
  }

  /// Write `s` plus '\n', riding out partial writes. False on error.
  bool write_line(std::string_view s) {
    std::string msg(s);
    msg.push_back('\n');
    std::size_t off = 0;
    while (off < msg.size()) {
      ssize_t put;
      do {
        put = ::write(out_, msg.data() + off, msg.size() - off);
      } while (put < 0 && errno == EINTR);
      if (put <= 0) return false;
      off += static_cast<std::size_t>(put);
    }
    return true;
  }

 private:
  int in_;
  int out_;
  std::string buf_;
};

}  // namespace iph::support
