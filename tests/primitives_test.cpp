#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "geom/workloads.h"
#include "pram/machine.h"
#include "primitives/bitonic_sort.h"
#include "primitives/first_nonzero.h"
#include "primitives/prefix_sum.h"
#include "primitives/primes.h"
#include "primitives/ragde.h"
#include "support/rng.h"

namespace iph::primitives {
namespace {

TEST(PrefixSum, MatchesSerialScan) {
  pram::Machine m(1);
  for (std::size_t n : {1u, 2u, 3u, 7u, 64u, 100u, 1000u, 4097u}) {
    std::vector<std::uint64_t> data(n);
    support::Rng rng(n, 1);
    for (auto& v : data) v = rng.next_below(100);
    std::vector<std::uint64_t> want(n);
    std::uint64_t acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      want[i] = acc;
      acc += data[i];
    }
    const std::uint64_t total = prefix_sum_exclusive(m, data);
    EXPECT_EQ(total, acc) << "n=" << n;
    EXPECT_EQ(data, want) << "n=" << n;
  }
}

TEST(PrefixSum, EmptyInput) {
  pram::Machine m(1);
  std::vector<std::uint64_t> data;
  EXPECT_EQ(prefix_sum_exclusive(m, data), 0u);
}

TEST(PrefixSum, LogarithmicSteps) {
  pram::Machine m(1);
  std::vector<std::uint64_t> data(1 << 12, 1);
  const auto before = m.metrics().steps;
  prefix_sum_exclusive(m, data);
  const auto steps = m.metrics().steps - before;
  EXPECT_LE(steps, 2u * 12 + 4);
}

TEST(CompactIndices, KeepsOrderedSubset) {
  pram::Machine m(2);
  std::vector<std::uint8_t> keep(1000, 0);
  std::vector<std::uint32_t> want;
  for (std::size_t i = 0; i < keep.size(); i += 7) {
    keep[i] = 1;
    want.push_back(static_cast<std::uint32_t>(i));
  }
  std::vector<std::uint32_t> out(want.size());
  const auto count = compact_indices(m, keep, out);
  EXPECT_EQ(count, want.size());
  EXPECT_EQ(out, want);
}

TEST(FirstNonzero, FindsFirst) {
  pram::Machine m(2);
  for (std::size_t n : {1u, 2u, 50u, 1024u, 1025u}) {
    for (std::size_t target : {std::size_t{0}, n / 3, n - 1}) {
      std::vector<std::uint8_t> flags(n, 0);
      flags[target] = 1;
      if (target + 3 < n) flags[target + 3] = 1;  // later flags ignored
      EXPECT_EQ(first_nonzero(m, flags), target) << n << " " << target;
    }
  }
}

TEST(FirstNonzero, EmptyAndAllZero) {
  pram::Machine m(1);
  std::vector<std::uint8_t> none;
  EXPECT_EQ(first_nonzero(m, none), kNotFound);
  std::vector<std::uint8_t> zeros(777, 0);
  EXPECT_EQ(first_nonzero(m, zeros), kNotFound);
}

TEST(FirstNonzero, ConstantSteps) {
  pram::Machine m(1);
  std::vector<std::uint8_t> flags(1 << 14, 0);
  flags[9999] = 1;
  const auto before = m.metrics().steps;
  first_nonzero(m, flags);
  EXPECT_LE(m.metrics().steps - before, 8u);
}

TEST(Primes, FirstFew) {
  EXPECT_EQ(primes_at_least(2, 5),
            (std::vector<std::uint64_t>{2, 3, 5, 7, 11}));
  EXPECT_EQ(primes_at_least(10, 2), (std::vector<std::uint64_t>{11, 13}));
  EXPECT_EQ(primes_at_least(0, 1), (std::vector<std::uint64_t>{2}));
}

TEST(Ragde, CompactsSparseSet) {
  pram::Machine m(2);
  std::vector<std::uint8_t> flags(10000, 0);
  std::vector<std::uint32_t> expect;
  for (std::uint32_t i : {3u, 500u, 501u, 7777u, 9999u}) {
    flags[i] = 1;
    expect.push_back(i);
  }
  const auto r = ragde_compact(m, flags, 8);
  ASSERT_TRUE(r.ok);
  EXPECT_FALSE(r.used_fallback);
  EXPECT_LE(r.slots.size(), 2 * 8 * 8 + 32);  // area < ~2*bound^2
  std::vector<std::uint32_t> got;
  for (auto v : r.slots) {
    if (v != kRagdeEmpty) got.push_back(v);
  }
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expect);
}

TEST(Ragde, EmptySet) {
  pram::Machine m(1);
  std::vector<std::uint8_t> flags(100, 0);
  const auto r = ragde_compact(m, flags, 4);
  EXPECT_TRUE(r.ok);
  for (auto v : r.slots) EXPECT_EQ(v, kRagdeEmpty);
}

TEST(Ragde, ConstantSteps) {
  pram::Machine m(1);
  std::vector<std::uint8_t> flags(1 << 15, 0);
  for (int i = 0; i < 20; ++i) flags[i * 997] = 1;
  const auto before = m.metrics().steps;
  const auto r = ragde_compact(m, flags, 32);
  ASSERT_TRUE(r.ok);
  EXPECT_LE(m.metrics().steps - before, 4u);
}

TEST(Ragde, DetectsOverfullSet) {
  pram::Machine m(1);
  // More flagged elements than any candidate modulus can hold: every
  // modulus collides and even the fallback exceeds bound^2.
  std::vector<std::uint8_t> flags(4096, 1);
  const auto r = ragde_compact(m, flags, 2);
  EXPECT_FALSE(r.ok);
}

TEST(Ragde, DeterministicAcrossThreadCounts) {
  std::vector<std::uint8_t> flags(5000, 0);
  for (int i = 0; i < 12; ++i) flags[i * 401 + 7] = 1;
  auto run = [&](unsigned threads) {
    pram::Machine m(threads, 99);
    return ragde_compact(m, flags, 16).slots;
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(BitonicSort, SortsKeys) {
  pram::Machine m(2);
  for (std::size_t n : {1u, 2u, 5u, 128u, 1000u}) {
    std::vector<std::uint64_t> keys(n);
    support::Rng rng(n, 7);
    for (auto& k : keys) k = rng.next_u64();
    auto want = keys;
    std::sort(want.begin(), want.end());
    bitonic_sort_keys(m, keys);
    EXPECT_EQ(keys, want) << "n=" << n;
  }
}

TEST(BitonicSort, SortsPointsLex) {
  pram::Machine m(2);
  auto pts = geom::in_square(777, 5);
  // Add duplicate columns to exercise tie-breaks.
  pts[10] = pts[20];
  pts[30].x = pts[40].x;
  std::vector<geom::Index> idx(pts.size());
  std::iota(idx.begin(), idx.end(), geom::Index{0});
  bitonic_sort_points(m, pts, idx);
  for (std::size_t i = 1; i < idx.size(); ++i) {
    const auto &a = pts[idx[i - 1]], &b = pts[idx[i]];
    EXPECT_TRUE(geom::lex_less(a, b) || (a == b && idx[i - 1] < idx[i]));
  }
}

TEST(BitonicSort, StepCountIsLogSquared) {
  pram::Machine m(1);
  std::vector<std::uint64_t> keys(1 << 10);
  support::Rng rng(1, 2);
  for (auto& k : keys) k = rng.next_u64();
  const auto before = m.metrics().steps;
  bitonic_sort_keys(m, keys);
  const auto steps = m.metrics().steps - before;
  EXPECT_LE(steps, 10u * 11u / 2u + 4u);
}

}  // namespace
}  // namespace iph::primitives
