# ctest script: end-to-end smoke of the serving tools.
#   1. hullserved in stdin mode must answer every NDJSON line — good
#      requests with "ok" hulls, malformed lines with "error" — and
#      exit 0 at EOF. A trailing {"cmd":"statz"} line must be answered
#      with the service registry, whose counters (answered in stream
#      order, after every earlier response) reconcile exactly with the
#      session: 3 valid submissions out of 5 lines.
#   2. hullload driving an in-process service must complete a small
#      closed-loop burst with every request ok (exit 0 under
#      --expect-all-ok) and emit a parseable --json summary; with
#      --scrape it must reconcile the server registry against its own
#      tally and write the diffed snapshot to --scrape-out.
#
# Invoked as:
#   cmake -DHULLSERVED=<bin> -DHULLLOAD=<bin> -DWORK_DIR=<scratch>
#         -P serve_smoke_test.cmake
if(NOT HULLSERVED OR NOT HULLLOAD OR NOT WORK_DIR)
  message(FATAL_ERROR "need -DHULLSERVED=... -DHULLLOAD=... -DWORK_DIR=...")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# --- Case 1: stdin session with good, inline, and broken lines --------
file(WRITE "${WORK_DIR}/requests.ndjson"
"{\"id\":1,\"n\":64,\"workload\":\"disk\",\"seed\":7}
{\"id\":2,\"points\":[[0,0],[1,2],[2,0],[3,3]]}
this is not json
{\"id\":4,\"n\":0}
{\"id\":5,\"n\":128,\"workload\":\"circle\",\"seed\":3,\"edge_above\":true}
{\"cmd\":\"statz\"}
")
execute_process(
  COMMAND "${HULLSERVED}" --quiet --shards 1 --workers 1 --threads 2
  INPUT_FILE "${WORK_DIR}/requests.ndjson"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "hullserved: expected exit 0, got ${rc}\n${err}")
endif()
string(REGEX MATCHALL "\"status\":\"ok\"" oks "${out}")
list(LENGTH oks n_ok)
if(NOT n_ok EQUAL 3)
  message(FATAL_ERROR "hullserved: expected 3 ok responses, got ${n_ok}:\n${out}")
endif()
string(REGEX MATCHALL "\"error\":" errs "${out}")
list(LENGTH errs n_err)
if(NOT n_err EQUAL 2)
  message(FATAL_ERROR "hullserved: expected 2 error lines, got ${n_err}:\n${out}")
endif()
# The circle request asked for the per-point edge-above array; the full
# n=64 disk request did not (response stays small by default).
if(NOT out MATCHES "\"edge_above\":\\[")
  message(FATAL_ERROR "hullserved: edge_above array missing:\n${out}")
endif()
# The statz line is answered in stream order, so its counters include
# exactly this session: 3 valid submissions (the 2 broken lines never
# reach the service).
if(NOT out MATCHES "\"statz\":")
  message(FATAL_ERROR "hullserved: statz answer missing:\n${out}")
endif()
if(NOT out MATCHES "\"iph_serve_submitted_total\":3")
  message(FATAL_ERROR
          "hullserved: statz submitted counter should be exactly 3:\n${out}")
endif()
if(NOT out MATCHES "\"iph_serve_completed_total\":3")
  message(FATAL_ERROR
          "hullserved: statz completed counter should be exactly 3:\n${out}")
endif()

# --- Case 2: hullload closed-loop burst, in-process -------------------
execute_process(
  COMMAND "${HULLLOAD}" --clients 2 --requests 8 --n 64
          --shards 1 --workers 1 --threads 2
          --expect-all-ok --json
          --scrape --scrape-out "${WORK_DIR}/statz.json"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "hullload: expected exit 0, got ${rc}\n${err}")
endif()
if(NOT out MATCHES "\"ok\":16")
  message(FATAL_ERROR "hullload: json summary lacks ok:16\n${out}")
endif()
if(NOT err MATCHES "e2e ms")
  message(FATAL_ERROR "hullload: human summary missing\n${err}")
endif()
# --scrape reconciled (exit 0 already proves it) and recorded the
# server-side view in the summary and the snapshot file.
if(NOT out MATCHES "\"scrape_ok\":true")
  message(FATAL_ERROR "hullload: json summary lacks scrape_ok:true\n${out}")
endif()
if(NOT EXISTS "${WORK_DIR}/statz.json")
  message(FATAL_ERROR "hullload: --scrape-out wrote no snapshot file")
endif()
file(READ "${WORK_DIR}/statz.json" statz)
if(NOT statz MATCHES "iph-stats-v1")
  message(FATAL_ERROR "hullload: snapshot lacks iph-stats-v1 schema:\n${statz}")
endif()

# --- Case 3: stdin streaming session: open -> append -> delta -> close
# Good appends (inline and generated), an unknown sid, and a malformed
# session line must all be answered in stream order without killing the
# stream; the trailing statz must carry fully-settled session counters.
file(WRITE "${WORK_DIR}/session.ndjson"
"{\"cmd\":\"session_open\",\"backend\":\"native\"}
{\"cmd\":\"session_append\",\"sid\":1,\"points\":[[0,0],[1,2],[2,0]]}
{\"cmd\":\"session_append\",\"sid\":1,\"n\":16,\"workload\":\"disk\",\"seed\":5}
{\"cmd\":\"session_append\",\"sid\":99,\"points\":[[0,0]]}
{\"cmd\":\"session_append\",\"points\":[[0,0]]}
{\"cmd\":\"session_close\",\"sid\":1}
{\"cmd\":\"statz\"}
")
execute_process(
  COMMAND "${HULLSERVED}" --quiet --shards 1 --workers 1 --threads 2
  INPUT_FILE "${WORK_DIR}/session.ndjson"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "session smoke: expected exit 0, got ${rc}\n${err}")
endif()
# open + two appends + close answer ok; the deltas carry inserted
# vertices; the close answer carries the end-of-life summary.
string(REGEX MATCHALL "\"status\":\"ok\"" oks "${out}")
list(LENGTH oks n_ok)
if(NOT n_ok EQUAL 4)
  message(FATAL_ERROR
          "session smoke: expected 4 ok responses, got ${n_ok}:\n${out}")
endif()
if(NOT out MATCHES "\"sid\":1")
  message(FATAL_ERROR "session smoke: open did not issue sid 1:\n${out}")
endif()
if(NOT out MATCHES "\"delta\":\\[\\[")
  message(FATAL_ERROR "session smoke: no non-empty delta:\n${out}")
endif()
if(NOT out MATCHES "\"status\":\"unknown\"")
  message(FATAL_ERROR
          "session smoke: unknown-sid append not flagged:\n${out}")
endif()
string(REGEX MATCHALL "\"error\":" errs "${out}")
list(LENGTH errs n_err)
if(NOT n_err EQUAL 1)
  message(FATAL_ERROR
          "session smoke: expected 1 error line (missing sid), got "
          "${n_err}:\n${out}")
endif()
if(NOT out MATCHES "\"summary\":")
  message(FATAL_ERROR "session smoke: close summary missing:\n${out}")
endif()
# statz answers in stream order: exactly this session's counters.
if(NOT out MATCHES "\"iph_session_opened_total\":1")
  message(FATAL_ERROR "session smoke: statz opened != 1:\n${out}")
endif()
if(NOT out MATCHES "\"iph_session_closed_total\":1")
  message(FATAL_ERROR "session smoke: statz closed != 1:\n${out}")
endif()
if(NOT out MATCHES "\"iph_session_appends_total\":2")
  message(FATAL_ERROR "session smoke: statz appends != 2:\n${out}")
endif()
if(NOT out MATCHES "\"iph_session_live_sessions\":0")
  message(FATAL_ERROR "session smoke: live-sessions gauge not 0:\n${out}")
endif()
if(NOT out MATCHES "\"iph_session_aux_cells\":0")
  message(FATAL_ERROR "session smoke: aux-cells gauge not 0:\n${out}")
endif()

# --- Case 4: hullload --stream in-process with scrape reconciliation --
execute_process(
  COMMAND "${HULLLOAD}" --stream --clients 2 --requests 6
          --append-points 8 --n 64
          --expect-all-ok --json
          --scrape --scrape-out "${WORK_DIR}/stream_statz.json"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "hullload --stream: expected exit 0, got ${rc}\n${err}")
endif()
if(NOT out MATCHES "\"stream\":true")
  message(FATAL_ERROR "hullload --stream: json lacks stream:true\n${out}")
endif()
if(NOT out MATCHES "\"ok\":12")
  message(FATAL_ERROR "hullload --stream: json lacks ok:12\n${out}")
endif()
if(NOT out MATCHES "\"scrape_ok\":true")
  message(FATAL_ERROR
          "hullload --stream: json lacks scrape_ok:true\n${out}")
endif()
if(NOT err MATCHES "delta ms")
  message(FATAL_ERROR
          "hullload --stream: human summary missing delta latency\n${err}")
endif()
if(NOT EXISTS "${WORK_DIR}/stream_statz.json")
  message(FATAL_ERROR "hullload --stream: --scrape-out wrote no snapshot")
endif()
file(READ "${WORK_DIR}/stream_statz.json" statz)
if(NOT statz MATCHES "iph_session_appends_total")
  message(FATAL_ERROR
          "hullload --stream: snapshot lacks session counters:\n${statz}")
endif()

message(STATUS "serve tools smoke ok")
