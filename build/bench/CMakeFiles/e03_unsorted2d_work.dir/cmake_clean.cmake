file(REMOVE_RECURSE
  "CMakeFiles/e03_unsorted2d_work.dir/e03_unsorted2d_work.cpp.o"
  "CMakeFiles/e03_unsorted2d_work.dir/e03_unsorted2d_work.cpp.o.d"
  "e03_unsorted2d_work"
  "e03_unsorted2d_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e03_unsorted2d_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
