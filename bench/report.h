// Shared harness for the experiment benches (e01..e13), replacing
// BENCHMARK_MAIN() with IPH_BENCH_MAIN(id, ...claims). On top of plain
// google-benchmark console output every bench now
//
//   * captures each benchmark row (args, label, user counters, wall
//     time) through a reporter shim,
//   * writes a machine-readable run report BENCH_<id>.json — schema
//     "iph-bench-report-v1": provenance (git sha, build type, sanitizer
//     spec, seed, threads, timestamp), the row table, the claim-fit
//     results, and any phase traces captured via instrument(),
//   * regresses each declared CLAIM against its predicted shape
//     (trace/fit.h) and exits nonzero on a misfit,
//   * optionally compares deterministic counters (steps, work,
//     max_active, cw_conflicts, t_ideal, peak_live, peak_aux,
//     peak_input) against a committed baseline report, exiting nonzero
//     on drift.
//
// Knobs (all environment variables; see also support/env.h):
//   IPH_BENCH_OUT_DIR      where BENCH_<id>.json goes (default ".").
//   IPH_BENCH_MAX_N        cap applied by n_sweep(); CI's short sweep
//                          sets e.g. 16384 so every bench finishes in
//                          seconds. Rows keep their full names, so the
//                          subset still matches the committed baseline.
//   IPH_BENCH_BASELINE_DIR directory holding baseline BENCH_<id>.json
//                          files (bench/baselines in the repo); unset =
//                          no comparison.
//   IPH_BENCH_TOL          relative tolerance for the baseline compare
//                          (default 0 = bit-exact; the compared counters
//                          are deterministic given the seed).
//   IPH_BENCH_SKIP_CLAIMS  "1" records claim results without failing.
//   IPH_TRACE_DIR          if set, every instrument()ed machine's phase
//                          timeline is exported there as a Chrome
//                          trace-event file <id>.<tag>.trace.json
//                          (load in chrome://tracing or Perfetto).
#pragma once

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "pram/machine.h"
#include "pram/metrics.h"
#include "trace/json.h"
#include "trace/recorder.h"

namespace iph::bench {

/// One paper claim checked against the measured rows. Rows are grouped
/// into series by (benchmark name minus its first argument, label); the
/// first benchmark argument is the sweep variable x. Each series must
/// fit `shape` within `tol` independently (see trace/fit.h for the
/// band/bound semantics per shape).
struct Claim {
  const char* name;     ///< Short id, e.g. "steps-flat".
  const char* counter;  ///< User counter supplying y.
  const char* shape;    ///< trace::shape_from_name: "flat", "log_n", ...
  double tol;           ///< Band width or bound factor (see fit.h).
  const char* aux_counter = "";  ///< Counter supplying aux (h / bound).
  const char* labels = "";  ///< Comma-separated label filter; "" = all.
  const char* function = "";  ///< Benchmark function filter; "" = all.
};

inline double log2d(double x) { return x > 1 ? std::log2(x) : 1.0; }

/// Attach the core PRAM metrics to a benchmark state. The space-ledger
/// watermarks ride along whenever the bench registered any cells
/// (pram::SpaceLease); an uninstrumented machine reports all-zero space
/// and the counters are omitted to keep its rows unchanged.
inline void report_metrics(benchmark::State& state, const pram::Metrics& m) {
  state.counters["steps"] = static_cast<double>(m.steps);
  state.counters["work"] = static_cast<double>(m.work);
  state.counters["max_procs"] = static_cast<double>(m.max_active);
  state.counters["cw_conflicts"] = static_cast<double>(m.cw_conflicts);
  if (m.space_allocs > 0) {
    state.counters["peak_live"] = static_cast<double>(m.peak_live);
    state.counters["peak_aux"] = static_cast<double>(m.peak_aux);
    state.counters["peak_input"] = static_cast<double>(m.peak_input);
  }
}

/// The bench's n sweep, capped at IPH_BENCH_MAX_N when set. Never
/// returns empty: the smallest value always survives the cap.
std::vector<std::int64_t> n_sweep(std::initializer_list<std::int64_t> full);

/// Attach a fresh trace::Recorder to `m` (enabling phase tracing and
/// conflict counting for this machine) and register it under `tag`.
/// After the benchmarks finish the harness folds the recorder's phase
/// tree into the report's "traces" section and, with IPH_TRACE_DIR set,
/// exports its Chrome trace. One recorder is kept per tag (last wins),
/// so call it with a tag naming the row, e.g. "disk/65536". Recorders
/// outlive the machines they observe.
///
/// Tracing is OPT-IN: unless IPH_TRACE_DIR or IPH_BENCH_TRACE is set,
/// this is a no-op (returns a detached recorder, the machine runs bare)
/// so default runs — including the committed baselines — stay free of
/// trace sections and their wall-clock noise.
trace::Recorder& instrument(pram::Machine& m, const std::string& tag);

/// Attach a stats-registry snapshot (stats::to_json shape, schema
/// "iph-stats-v1") to the run report under "stats"[tag]; benchreport
/// renders a serving-stats table from it. One snapshot is kept per tag
/// (last wins). The harness itself only stores the Json — producing it
/// (stats::to_json over a RegistrySnapshot) is the bench's job.
void attach_stats(const std::string& tag, trace::Json stats_json);

/// The main() body behind IPH_BENCH_MAIN. Returns the process exit
/// code: 0, or nonzero on claim misfit / baseline drift / no rows.
int run_bench_main(int argc, char** argv, const char* bench_id,
                   std::vector<Claim> claims);

}  // namespace iph::bench

#define IPH_BENCH_MAIN(id, ...)                                        \
  int main(int argc, char** argv) {                                    \
    return iph::bench::run_bench_main(argc, argv, id, {__VA_ARGS__});  \
  }
