// iph::stats — a low-overhead service-metrics registry.
//
// The serving stack (serve/, tools/hullserved, tools/hullload) needs an
// aggregate, exportable view of what the server actually did — rejects
// by reason, queue depth, batch shaping, latency distributions — so
// perf claims can be cross-checked against *server-side* counters
// instead of trusting the client's echo (bench/e14, CI serve-smoke).
//
// Three instrument kinds, all safe to record from any thread:
//   Counter    monotonic u64; relaxed fetch_add.
//   Gauge      signed level (queue depth, leased shards); relaxed.
//   Histogram  fixed upper-bound buckets (Prometheus `le` semantics:
//              bucket i counts values <= bounds[i], plus an implicit
//              +Inf overflow bucket), with exact total count and sum.
//
// Recording is lock-free (one relaxed RMW per event; a histogram adds a
// small binary search). Registration and snapshotting take the registry
// mutex — both are off the hot path. Relaxed ordering is deliberate:
// counters are statistically consistent, not sequenced against each
// other; the one cross-counter invariant the serving layer needs
// (counters include a request before its response is visible) is
// provided by the release/acquire edge of the promise fulfillment, not
// by the registry.
//
// Snapshot/diff: snapshot() captures every instrument by value;
// RegistrySnapshot::diff(earlier) subtracts counters and histogram
// buckets (a shrinking counter means the source was reset — the diff
// then takes the current value wholesale) and keeps gauges at their
// current level. Two exporters live in stats/export.h: Prometheus text
// exposition and the repo's trace::Json shape (ingested by
// tools/benchreport and served by hullserved's `statz` command).
//
// Compile-out knob: configure with -DIPH_STATS_COMPILED_OUT=ON (defines
// IPH_STATS_DISABLED) and every record call becomes an empty inline —
// the knob exists to measure recording overhead (EXPERIMENTS.md E14),
// not for production builds; registries, names and snapshots keep
// working and read all-zero.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace iph::stats {

#if defined(IPH_STATS_DISABLED)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept {
    if constexpr (kEnabled) v_.fetch_add(n, std::memory_order_relaxed);
    (void)n;
  }
  std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    if constexpr (kEnabled) v_.store(v, std::memory_order_relaxed);
    (void)v;
  }
  void add(std::int64_t d) noexcept {
    if constexpr (kEnabled) v_.fetch_add(d, std::memory_order_relaxed);
    (void)d;
  }
  std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Value-type capture of one histogram. `buckets` has bounds.size() + 1
/// entries; the last is the +Inf overflow bucket.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;
  double sum = 0;

  /// Quantile estimate by linear interpolation inside the selected
  /// bucket (lower edge of bucket 0 is 0). Values landing in the +Inf
  /// bucket report the largest finite bound — the estimate saturates
  /// rather than invents. 0 when empty.
  double quantile(double q) const noexcept;

  /// Bucket-wise subtraction (see RegistrySnapshot::diff for the
  /// reset rule).
  HistogramSnapshot diff(const HistogramSnapshot& earlier) const;
};

class Histogram {
 public:
  /// `bounds` are strictly increasing finite upper bounds; an +Inf
  /// overflow bucket is implicit. An empty/unsorted spec is sanitized
  /// (sorted, deduplicated; empty means everything lands in +Inf).
  explicit Histogram(std::vector<double> bounds);

  void record(double v) noexcept;
  std::size_t bucket_count() const noexcept { return bounds_.size() + 1; }
  const std::vector<double>& bounds() const noexcept { return bounds_; }

  HistogramSnapshot snapshot() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0};
};

/// Point-in-time capture of a whole registry, in registration order.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  const std::uint64_t* counter(std::string_view name) const noexcept;
  const std::int64_t* gauge(std::string_view name) const noexcept;
  const HistogramSnapshot* histogram(std::string_view name) const noexcept;
  /// counter(name) or 0 when absent — for reconciliation arithmetic.
  std::uint64_t counter_or0(std::string_view name) const noexcept {
    const std::uint64_t* c = counter(name);
    return c != nullptr ? *c : 0;
  }

  /// What happened between `earlier` and this snapshot: counters and
  /// histogram buckets subtract; a counter that went *backwards* means
  /// the source registry was reset between the snapshots, and the diff
  /// takes the current value wholesale (everything since the reset).
  /// Gauges are levels, not rates — they stay at their current value.
  /// Instruments absent from `earlier` diff against zero.
  RegistrySnapshot diff(const RegistrySnapshot& earlier) const;
};

/// Named instrument registry. Instruments are created on first use and
/// live as long as the registry; returned references are stable.
/// Calling counter()/gauge() again with the same name returns the same
/// instrument (histogram() too — the bounds of the first registration
/// win). Label convention: labels are baked into the name with
/// labeled(), e.g. `iph_serve_rejected_total{reason="full"}` — the
/// exporters understand that shape.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name, std::vector<double> bounds);

  RegistrySnapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  // deques: push_back never relocates, so instrument references handed
  // out stay valid across later registrations.
  std::deque<std::pair<std::string, Counter>> counters_;
  std::deque<std::pair<std::string, Gauge>> gauges_;
  std::deque<std::pair<std::string, Histogram>> histograms_;
};

/// `base{label="value"}` — the one label shape the exporters know.
std::string labeled(std::string_view base, std::string_view label,
                    std::string_view value);

/// Fixed boundary ladders shared by the serving instrumentation (one
/// place, so server, client scrape, and benchreport agree on buckets).
std::vector<double> latency_bounds_ms();
std::vector<double> batch_size_bounds();

}  // namespace iph::stats
