file(REMOVE_RECURSE
  "CMakeFiles/e02_presorted_logstar.dir/e02_presorted_logstar.cpp.o"
  "CMakeFiles/e02_presorted_logstar.dir/e02_presorted_logstar.cpp.o.d"
  "e02_presorted_logstar"
  "e02_presorted_logstar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e02_presorted_logstar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
