// QuickHull in 3-d — the scalable sequential baseline (expected
// O(n log n) on the workload families) used as:
//   * the substitute for the Reif-Sen fallback of Theorem 6 (DESIGN.md),
//   * the e05 comparator,
//   * a cross-check oracle for sizes where gift wrapping is too slow.
//
// The upper hull is extracted with the "deep point" trick: the full hull
// of P + {(cx, cy, -M)} has exactly the upper-hull facets of P among the
// facets that do not touch the deep point.
#pragma once

#include <span>

#include "geom/hull_types.h"
#include "geom/point.h"

namespace iph::seq {

/// Facets of the full convex hull of pts (triangulated, outward CCW).
/// General-position oriented: coplanar facets get an arbitrary
/// triangulation; exact predicates keep every output facet valid.
std::vector<geom::Facet3> quickhull3(std::span<const geom::Point3> pts);

/// Upper hull in the paper's output convention (facets + per-point facet
/// pointers). Point location uses an xy-grid over facet bounding boxes
/// (expected O(1) candidates per point on the workload families).
geom::HullResult3D quickhull_upper_hull3(std::span<const geom::Point3> pts);

}  // namespace iph::seq
