// Claim-fit checking: regress a measured series against the shape a
// paper claim predicts for it.
//
// Every experiment in EXPERIMENTS.md pairs a measured counter series
// (steps, work, conflicts, …) against an analytic bound from Ghouse &
// Goodrich. The fit test is deliberately crude and deliberately robust:
// divide each sample by the predicted shape and require the resulting
// ratio band to stay narrow,
//
//     r_i = y_i / shape(x_i, aux_i),   ok  <=>  max r / min r <= tol.
//
// A series that tracks the claimed shape has near-constant r (the hidden
// constant of the bound); a series a log-factor off drifts by ~log(range)
// and blows the band on any reasonable sweep. The tolerance is the band
// WIDTH (a ratio, e.g. 3.0 = "within 3x"), not a percentage — lower-order
// terms make narrow sweeps legitimately wobbly, and the committed
// tolerances are calibrated from the measured tables in EXPERIMENTS.md
// with headroom.
//
// Three upper-bound pseudo-shapes complete the set: kBelowAux checks
// y_i <= tol * aux_i (aux carries a per-point analytic bound), kBelowConst
// checks y_i <= tol, and kM4EpsDelta checks the Lemma 3.2 compaction
// workspace bound y_i <= tol * aux_i^4 * x_i^(1/4) (x = m, aux = the
// compaction parameter m^eps, delta fixed at 1/4 to match
// primitives/inplace_compaction's default). These express "never exceeds
// the bound" claims, e.g. failure-sweep decay envelopes, where a band fit
// is the wrong question.
//
// Space-axis band shapes: kThetaAux regresses y against aux itself
// (r_i = y_i / aux_i), stating y = Theta(aux) — used for the Lemma 3.1
// "Theta(k) auxiliary cells" claim with aux = k.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace iph::trace {

enum class Shape {
  kFlat,      ///< O(1): shape = 1.
  kLogStar,   ///< O(log* n): iterated log of x.
  kLogN,      ///< O(log n).
  kLog2N,     ///< O(log^2 n).
  kLinear,    ///< O(n).
  kNLogN,     ///< O(n log n).
  kNLogH,     ///< O(n log h): aux = h (output size).
  kThetaAux,  ///< Theta(aux): band on y_i / aux_i (space: Theta(k)).
  kBelowAux,  ///< y_i <= tol * aux_i (per-point analytic bound in aux).
  kBelowConst,///< y_i <= tol.
  kM4EpsDelta ///< y_i <= tol * aux_i^4 * x_i^(1/4) (Lemma 3.2 workspace).
};

/// Canonical name, as written in claim specs and BENCH_*.json.
std::string_view shape_name(Shape s) noexcept;

/// Inverse of shape_name; false on unknown name.
bool shape_from_name(std::string_view name, Shape* out) noexcept;

/// Evaluate the predicted shape at (x, aux). Clamped below at 1 so
/// ratios stay finite on tiny inputs.
double shape_value(Shape s, double x, double aux) noexcept;

/// One sample: x is the sweep variable (usually n), y the measured
/// counter, aux the claim-specific second input (h, or a bound).
struct SeriesPoint {
  double x = 0;
  double y = 0;
  double aux = 0;
};

struct FitResult {
  bool ok = false;
  double stat = 0;    ///< Band ratio (band shapes) or max excess (kBelow*).
  double tol = 0;     ///< The tolerance the stat was compared against.
  std::string detail; ///< Human-readable explanation, always set.
};

/// Fit `pts` against `shape` with tolerance `tol` (see file comment for
/// semantics per shape family). An empty series fails; a single point
/// trivially passes band shapes.
FitResult fit_series(Shape shape, const std::vector<SeriesPoint>& pts,
                     double tol);

}  // namespace iph::trace
