// Output representations for 2-d and 3-d upper hulls.
//
// The paper's output convention (Sections 2 and 4): every input point ends
// up with a pointer to the hull edge (2-d) or facet (3-d) vertically above
// it — one edge may be referenced by many points. We keep that convention:
// results carry the hull itself plus the per-point "above" pointer array.
//
// An upper hull is a convex chain, monotone in x, that "curves to the
// right" as one traverses it by increasing x (footnote 3 of the paper).
// We store it as indices into the caller's point array, x-increasing.
// The full convex hull is obtained from the upper hulls of the points and
// of the y-negated points (helper below).
#pragma once

#include <cstdint>
#include <vector>

#include "geom/point.h"

namespace iph::geom {

using Index = std::uint32_t;

/// Sentinel for "no edge/facet" (e.g. hull vertices themselves, or the
/// single-point degenerate hull which has no edges).
inline constexpr Index kNone = 0xffffffffu;

/// Upper hull of a 2-d point set: vertex indices with strictly increasing
/// x (except the fully-degenerate equal-x input, which yields one vertex).
/// Edge j joins vertices[j] and vertices[j+1]; there are vertices.size()-1
/// edges.
struct UpperHull2D {
  std::vector<Index> vertices;

  std::size_t edge_count() const noexcept {
    return vertices.empty() ? 0 : vertices.size() - 1;
  }
};

/// Result of a 2-d upper hull computation in the paper's convention.
struct HullResult2D {
  UpperHull2D upper;
  /// For each input point, the index of the upper-hull edge at or above
  /// it (kNone if the hull has no edges). Hull vertices point at an
  /// incident edge.
  std::vector<Index> edge_above;
};

/// A triangular upper-hull facet (indices into the caller's point array).
struct Facet3 {
  Index a = kNone;
  Index b = kNone;
  Index c = kNone;
};

/// Result of a 3-d upper hull computation in the paper's convention.
struct HullResult3D {
  std::vector<Facet3> facets;
  /// For each input point, an index into facets for the facet whose
  /// xy-projection contains the point and whose plane is at or above it.
  std::vector<Index> facet_above;
};

/// Vertex indices of the full 2-d convex hull, counterclockwise, given the
/// upper hulls of the points and of the y-negated points ("lower hull").
std::vector<Index> full_hull_from_upper(const UpperHull2D& upper,
                                        const UpperHull2D& lower_as_upper);

}  // namespace iph::geom
