// iph::serve — queue admission, deadline expiry, shard leasing, batching
// and shutdown-drain semantics. The concurrency tests here are the ones
// CI runs under TSan with the step-race checker armed (IPH_PRAM_CHECK=1)
// — they hammer submit/shutdown races on purpose.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "core/api.h"
#include "exec/backend.h"
#include "exec/native_backend.h"
#include "exec/pram_backend.h"
#include "geom/validate.h"
#include "geom/workloads.h"
#include "pram/machine.h"
#include "serve/batcher.h"
#include "serve/machine_pool.h"
#include "serve/queue.h"
#include "serve/request.h"
#include "serve/service.h"
#include "serve/stats.h"
#include "obs/flight_recorder.h"
#include "obs/span.h"
#include "stats/stats.h"
#include "../tools/serve_wire.h"

namespace iph::serve {
namespace {

using namespace std::chrono_literals;

Request make_request(RequestId id, std::size_t n, std::uint64_t seed) {
  Request r;
  r.id = id;
  r.points = geom::in_disk(n, seed);
  return r;
}

// --- Timestamp arithmetic ---------------------------------------------

TEST(MsBetween, IsTheOneTimestampDiffHelper) {
  const Clock::time_point t0 = Clock::now();
  EXPECT_DOUBLE_EQ(ms_between(t0, t0), 0.0);
  EXPECT_DOUBLE_EQ(ms_between(t0, t0 + 1500us), 1.5);
  EXPECT_DOUBLE_EQ(ms_between(t0, t0 + 2s), 2000.0);
  // Signed: an earlier `to` reads negative, never wraps.
  EXPECT_DOUBLE_EQ(ms_between(t0 + 1ms, t0), -1.0);
}

// --- BoundedQueue admission control -----------------------------------

TEST(BoundedQueue, RejectsWhenFullAndAfterClose) {
  BoundedQueue q(2);
  Pending a, b, c;
  EXPECT_EQ(q.push(a), BoundedQueue::Admit::kOk);
  EXPECT_EQ(q.push(b), BoundedQueue::Admit::kOk);
  EXPECT_EQ(q.push(c), BoundedQueue::Admit::kFull);
  // The rejected Pending is untouched: the caller still owns its promise.
  c.promise.set_value(Response{});
  q.close();
  Pending d;
  EXPECT_EQ(q.push(d), BoundedQueue::Admit::kClosed);
  // close() drains: both admitted items still come out, then empty.
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_TRUE(q.pop().has_value());
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, PopBatchRespectsBudgetsAndTakesOversizedFirst) {
  BoundedQueue q(16);
  auto push_n_points = [&](std::size_t n) {
    Pending p;
    p.request.points.resize(n);
    ASSERT_EQ(q.push(p), BoundedQueue::Admit::kOk);
  };
  push_n_points(1000);  // oversized vs the 500-point budget below
  push_n_points(100);
  push_n_points(100);
  push_n_points(100);
  // First item is taken unconditionally (an oversized request must not
  // wedge the queue); it already exceeds the point budget, so the batch
  // is exactly one.
  auto batch = q.pop_batch(8, 500, 0us);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].request.points.size(), 1000u);
  // Budgets bound the rest: 3 x 100 points fit under 500.
  batch = q.pop_batch(2, 500, 0us);
  EXPECT_EQ(batch.size(), 2u);  // request budget
  batch = q.pop_batch(8, 500, 0us);
  EXPECT_EQ(batch.size(), 1u);
  q.close();
  EXPECT_TRUE(q.pop_batch(8, 500, 0us).empty());
}

TEST(BoundedQueue, PopBatchReportsCloseReasonAndDepth) {
  BoundedQueue q(16);
  stats::Gauge depth;
  q.bind_depth_gauge(&depth);
  auto push_n_points = [&](std::size_t n) {
    Pending p;
    p.request.points.resize(n);
    ASSERT_EQ(q.push(p), BoundedQueue::Admit::kOk);
  };
  push_n_points(1000);
  push_n_points(100);
  push_n_points(100);
  push_n_points(100);
  EXPECT_EQ(depth.value(), 4);

  BatchClose reason = BatchClose::kWindow;
  // Oversized head blows the point budget immediately.
  auto batch = q.pop_batch(8, 500, 0us, &reason);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(reason, BatchClose::kPoints);
  // Request budget closes the next one.
  batch = q.pop_batch(2, 500, 0us, &reason);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(reason, BatchClose::kRequests);
  EXPECT_EQ(depth.value(), 1);
  // Window elapses with one straggler collected.
  batch = q.pop_batch(8, 500, 0us, &reason);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(reason, BatchClose::kWindow);
  EXPECT_EQ(depth.value(), 0);
  // A closed queue hands out its backlog under the kClosed reason.
  push_n_points(100);
  q.close();
  batch = q.pop_batch(8, 500, 0us, &reason);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(reason, BatchClose::kClosed);
}

// --- MachinePool shard leasing ----------------------------------------

TEST(MachinePool, TryAcquireReportsExhaustion) {
  MachinePool pool(2, 1, 7);
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.available(), 2u);
  auto a = pool.try_acquire();
  auto b = pool.try_acquire();
  ASSERT_TRUE(a && b);
  EXPECT_NE(a->shard(), b->shard());
  EXPECT_EQ(pool.available(), 0u);
  EXPECT_FALSE(pool.try_acquire().has_value());  // exhausted
  a->release();
  EXPECT_EQ(pool.available(), 1u);
  auto c = pool.try_acquire();
  ASSERT_TRUE(c);
  EXPECT_EQ(c->shard(), a->shard());  // the freed shard came back
}

TEST(MachinePool, AcquireBlocksUntilAShardFrees) {
  MachinePool pool(1, 1, 7);
  MachinePool::Lease held = pool.acquire();
  std::atomic<bool> acquired{false};
  std::thread waiter([&] {
    MachinePool::Lease l = pool.acquire();
    acquired.store(true);
    l.release();
  });
  std::this_thread::sleep_for(10ms);
  EXPECT_FALSE(acquired.load());  // still blocked on the held lease
  held.release();
  waiter.join();
  EXPECT_TRUE(acquired.load());
}

// --- HullService ------------------------------------------------------

ServiceConfig small_config() {
  ServiceConfig cfg;
  cfg.shards = 2;
  cfg.workers = 2;
  cfg.threads_per_shard = 2;
  cfg.queue_capacity = 256;
  cfg.batch.window = 200us;
  return cfg;
}

TEST(HullService, ServedHullMatchesDirectApiCall) {
  ServiceConfig cfg = small_config();
  HullService svc(cfg);
  const auto pts = geom::in_disk(600, 42);
  Request r;
  r.id = 17;
  r.points = pts;
  Response resp = svc.submit(std::move(r)).get();
  ASSERT_EQ(resp.status, Status::kOk);

  // Solo reference run under the request's derived seed.
  Options opts;
  opts.seed = derive_request_seed(cfg.master_seed, 17);
  opts.threads = cfg.threads_per_shard;
  const Hull2D solo = upper_hull_2d(pts, opts);
  EXPECT_EQ(resp.hull.upper.vertices, solo.result.upper.vertices);
  EXPECT_EQ(resp.hull.edge_above, solo.result.edge_above);
  EXPECT_EQ(resp.metrics.steps, solo.metrics.steps);
  EXPECT_EQ(resp.metrics.work, solo.metrics.work);
  EXPECT_EQ(resp.metrics.seed, opts.seed);
  EXPECT_GE(resp.metrics.batch_size, 1u);
}

TEST(HullService, DeadlineExpiryMidQueueAnswersExpired) {
  HullService svc(small_config());
  Request r = make_request(5, 200, 1);
  r.deadline = Clock::now() - 1ms;  // already past when dequeued
  Response resp = svc.submit(std::move(r)).get();
  EXPECT_EQ(resp.status, Status::kExpired);
  EXPECT_EQ(svc.stats().expired, 1u);
  // A generous deadline is met normally.
  Request ok = make_request(6, 200, 1);
  ok.deadline = Clock::now() + 10min;
  EXPECT_EQ(svc.submit(std::move(ok)).get().status, Status::kOk);
}

TEST(HullService, QueueFullRejectsWithReason) {
  // One worker consuming one request per batch, capacity-1 queue:
  // submitting is orders of magnitude cheaper than executing a
  // 512-point hull, so a tight burst must overflow the queue and the
  // overflow must come back as an immediate kRejectedFull answer.
  ServiceConfig cfg = small_config();
  cfg.workers = 1;
  cfg.shards = 1;
  cfg.queue_capacity = 1;
  cfg.batch.max_batch_requests = 1;
  HullService svc(cfg);
  std::vector<std::future<Response>> futs;
  futs.reserve(64);
  for (int i = 0; i < 64; ++i) {
    futs.push_back(svc.submit(make_request(0, 512, 3)));
  }
  std::uint64_t ok = 0, full = 0;
  for (auto& f : futs) {
    const Response r = f.get();
    (r.status == Status::kOk ? ok : full) += 1;
    if (r.status != Status::kOk) {
      EXPECT_EQ(r.status, Status::kRejectedFull);
    }
  }
  EXPECT_GT(full, 0u) << "capacity-1 queue never overflowed";
  EXPECT_GT(ok, 0u);
  const StatsSnapshot s = svc.stats();
  EXPECT_EQ(s.rejected_full, full);
  EXPECT_EQ(s.submitted, futs.size());
}

TEST(HullService, LargeRequestsRouteToTheDedicatedShard) {
  ServiceConfig cfg = small_config();
  cfg.batch.small_threshold = 256;
  HullService svc(cfg);
  Response big = svc.submit(make_request(0, 1000, 9)).get();
  Response small = svc.submit(make_request(0, 100, 9)).get();
  ASSERT_EQ(big.status, Status::kOk);
  ASSERT_EQ(small.status, Status::kOk);
  EXPECT_EQ(big.metrics.shard, svc.shard_count());  // large shard index
  EXPECT_LT(small.metrics.shard, svc.shard_count());
  EXPECT_EQ(svc.stats().large_requests, 1u);
}

TEST(HullService, SubmitAfterShutdownIsRejected) {
  HullService svc(small_config());
  svc.shutdown();
  Response r = svc.submit(make_request(0, 100, 2)).get();
  EXPECT_EQ(r.status, Status::kRejectedShutdown);
  svc.shutdown();  // idempotent
}

TEST(HullService, ConcurrentSubmitAndShutdownDrainAnswersEverything) {
  ServiceConfig cfg = small_config();
  cfg.queue_capacity = 64;
  HullService svc(cfg);
  constexpr int kClients = 4;
  constexpr int kPerClient = 30;
  std::vector<std::vector<std::future<Response>>> futs(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int i = 0; i < kPerClient; ++i) {
        futs[c].push_back(svc.submit(make_request(0, 128, c + 1)));
      }
    });
  }
  std::this_thread::sleep_for(2ms);
  svc.shutdown(/*drain=*/true);  // races the submitting clients
  for (auto& t : clients) t.join();

  std::uint64_t ok = 0, rejected = 0, full = 0;
  for (auto& per_client : futs) {
    ASSERT_EQ(per_client.size(), static_cast<std::size_t>(kPerClient));
    for (auto& f : per_client) {
      ASSERT_EQ(f.wait_for(0s), std::future_status::ready)
          << "a submitted request was never answered";
      switch (f.get().status) {
        case Status::kOk:
          ++ok;
          break;
        case Status::kRejectedShutdown:
          ++rejected;
          break;
        case Status::kRejectedFull:
          ++full;
          break;
        default:
          FAIL() << "unexpected status";
      }
    }
  }
  const StatsSnapshot s = svc.stats();
  EXPECT_EQ(s.submitted, kClients * kPerClient);
  EXPECT_EQ(ok + rejected + full, kClients * kPerClient);
  // Drain semantics: everything admitted before close executed.
  EXPECT_EQ(s.completed, ok);
  EXPECT_EQ(s.rejected_shutdown, rejected);
  EXPECT_EQ(s.rejected_full, full);
}

TEST(HullService, ShutdownWithoutDrainAbandonsTheBacklog) {
  ServiceConfig cfg = small_config();
  cfg.workers = 1;
  cfg.shards = 1;
  cfg.batch.window = 50ms;  // keep the backlog queued long enough
  cfg.batch.max_batch_requests = 1;
  HullService svc(cfg);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 16; ++i) {
    futs.push_back(svc.submit(make_request(0, 64, 4)));
  }
  svc.shutdown(/*drain=*/false);
  std::uint64_t answered = 0;
  for (auto& f : futs) {
    ASSERT_EQ(f.wait_for(0s), std::future_status::ready);
    ++answered;
  }
  EXPECT_EQ(answered, futs.size());  // abandoned, never silent
}

// Regression: shutdown must settle the occupancy gauges no matter how
// it exits. Drain executes the backlog; abandon answers it without
// executing — either way no queue slot or shard lease may stay
// "occupied" in the registry once shutdown() returns (hullload --scrape
// and the session smoke both assert the gauges at zero afterwards).
TEST(HullService, ShutdownSettlesGaugesAfterDrainAndAbandon) {
  namespace sn = statnames;
  for (const bool drain : {true, false}) {
    ServiceConfig cfg = small_config();
    cfg.workers = 1;
    cfg.shards = 1;
    cfg.batch.window = 50ms;  // keep a real backlog queued at shutdown
    cfg.batch.max_batch_requests = 1;
    HullService svc(cfg);
    std::vector<std::future<Response>> futs;
    for (int i = 0; i < 24; ++i) {
      futs.push_back(svc.submit(make_request(0, 64, 4)));
    }
    svc.shutdown(drain);
    for (auto& f : futs) {
      ASSERT_EQ(f.wait_for(0s), std::future_status::ready);
      f.get();
    }
    const stats::RegistrySnapshot snap = svc.stats_registry().snapshot();
    const std::int64_t* small_depth = snap.gauge(
        stats::labeled(sn::kQueueDepthBase, "queue", "small"));
    const std::int64_t* large_depth = snap.gauge(
        stats::labeled(sn::kQueueDepthBase, "queue", "large"));
    const std::int64_t* leased = snap.gauge(sn::kShardsLeased);
    ASSERT_NE(small_depth, nullptr);
    ASSERT_NE(large_depth, nullptr);
    ASSERT_NE(leased, nullptr);
    EXPECT_EQ(*small_depth, 0) << "drain=" << drain;
    EXPECT_EQ(*large_depth, 0) << "drain=" << drain;
    EXPECT_EQ(*leased, 0) << "drain=" << drain;
  }
}

TEST(HullService, BatchingCoalescesABurst) {
  ServiceConfig cfg = small_config();
  cfg.workers = 1;
  cfg.shards = 1;
  cfg.batch.window = 20ms;
  HullService svc(cfg);
  std::vector<std::future<Response>> futs;
  futs.reserve(32);
  for (int i = 0; i < 32; ++i) {
    futs.push_back(svc.submit(make_request(0, 64, 8)));
  }
  for (auto& f : futs) {
    EXPECT_EQ(f.get().status, Status::kOk);
  }
  const StatsSnapshot s = svc.stats();
  EXPECT_EQ(s.completed, 32u);
  // One worker + a 20ms window: the burst cannot have run one-per-batch.
  EXPECT_LT(s.batches, 32u);
  EXPECT_GT(s.max_batch, 1u);
  EXPECT_GT(s.mean_batch(), 1.0);
}

TEST(ExecuteBatch, ReportsPerRequestCompletionAndPramTotals) {
  pram::Machine m(2, 99);
  std::vector<Request> reqs;
  for (int i = 0; i < 4; ++i) {
    reqs.push_back(make_request(static_cast<RequestId>(i + 1), 128, 11));
  }
  BatchExecInfo info;
  const std::vector<Response> rs =
      execute_batch(m, reqs, /*master_seed=*/7, &info);
  ASSERT_EQ(rs.size(), reqs.size());
  ASSERT_EQ(info.completed_at.size(), reqs.size());
  // Requests execute back-to-back inside the lease: completion stamps
  // strictly increase along the batch.
  for (std::size_t i = 1; i < info.completed_at.size(); ++i) {
    EXPECT_GT(info.completed_at[i].time_since_epoch().count(),
              info.completed_at[i - 1].time_since_epoch().count());
  }
  // The machine is reset per request, so its own metrics end up as the
  // last request's; pram_total is the whole batch.
  std::uint64_t steps = 0, work = 0;
  for (const Response& r : rs) {
    steps += r.metrics.steps;
    work += r.metrics.work;
  }
  EXPECT_EQ(info.pram_total.steps, steps);
  EXPECT_EQ(info.pram_total.work, work);
}

// Regression for the batch-metrics overwrite: every batch-mate used to
// be stamped with the batch tail's end time, so queue/e2e timings were
// the LAST request's for the whole batch. Now each request's e2e is
// submit -> its own completion, which strictly increases along a
// sequentially-executed batch.
TEST(HullService, BatchMatesReportPerRequestTimings) {
  ServiceConfig cfg = small_config();
  cfg.workers = 1;
  cfg.shards = 1;
  cfg.batch.window = 500ms;        // far wider than the submit burst...
  cfg.batch.max_batch_requests = 8;  // ...so the count closes the batch
  HullService svc(cfg);
  std::vector<std::future<Response>> futs;
  futs.reserve(8);
  for (int i = 0; i < 8; ++i) {
    futs.push_back(svc.submit(make_request(0, 256, 8)));
  }
  std::vector<Response> rs;
  rs.reserve(futs.size());
  for (auto& f : futs) rs.push_back(f.get());
  for (const Response& r : rs) {
    ASSERT_EQ(r.status, Status::kOk);
    ASSERT_EQ(r.metrics.batch_size, 8u) << "burst did not coalesce";
    // Each request's e2e covers at least its own execution...
    EXPECT_GE(r.metrics.e2e_ms, r.metrics.exec_ms);
  }
  // ...and along the (FIFO) batch, e2e - queue_wait (= time from the
  // shared dequeue stamp to THIS request's completion) strictly
  // increases. Under the old overwrite bug it was one shared batch-end
  // value for every mate.
  for (std::size_t i = 1; i < rs.size(); ++i) {
    EXPECT_GT(rs[i].metrics.e2e_ms - rs[i].metrics.queue_wait_ms,
              rs[i - 1].metrics.e2e_ms - rs[i - 1].metrics.queue_wait_ms);
  }
}

TEST(HullService, StatsRegistryReconcilesAfterMixedTraffic) {
  ServiceConfig cfg = small_config();
  cfg.workers = 1;
  cfg.shards = 1;
  cfg.queue_capacity = 1;
  cfg.batch.max_batch_requests = 1;
  HullService svc(cfg);
  std::vector<std::future<Response>> futs;
  futs.reserve(34);
  for (int i = 0; i < 32; ++i) {
    futs.push_back(svc.submit(make_request(0, 512, 3)));  // some overflow
  }
  Request late = make_request(0, 128, 3);
  late.deadline = Clock::now() - 1ms;  // expires in queue
  futs.push_back(svc.submit(std::move(late)));
  for (auto& f : futs) f.wait();
  svc.shutdown();
  futs.push_back(svc.submit(make_request(0, 128, 3)));  // rejected: shutdown

  std::uint64_t ok = 0, full = 0, expired = 0, shutdown = 0;
  for (auto& f : futs) {
    switch (f.get().status) {
      case Status::kOk: ++ok; break;
      case Status::kRejectedFull: ++full; break;
      case Status::kExpired: ++expired; break;
      case Status::kRejectedShutdown: ++shutdown; break;
    }
  }
  EXPECT_GT(full, 0u) << "capacity-1 queue never overflowed";
  ASSERT_EQ(shutdown, 1u);

  // The registry must agree with the legacy StatsSnapshot AND with the
  // per-future tally — the invariants hullload --scrape asserts live.
  namespace sn = statnames;
  const stats::RegistrySnapshot snap = svc.stats_registry().snapshot();
  const StatsSnapshot legacy = svc.stats();
  EXPECT_EQ(snap.counter_or0(sn::kSubmitted), legacy.submitted);
  EXPECT_EQ(snap.counter_or0(sn::kCompleted), legacy.completed);
  EXPECT_EQ(snap.counter_or0(sn::kExpired), legacy.expired);
  EXPECT_EQ(snap.counter_or0(
                stats::labeled(sn::kRejectedBase, "reason", "full")),
            legacy.rejected_full);
  EXPECT_EQ(snap.counter_or0(
                stats::labeled(sn::kRejectedBase, "reason", "shutdown")),
            legacy.rejected_shutdown);
  EXPECT_EQ(snap.counter_or0(sn::kCompleted), ok);
  EXPECT_EQ(snap.counter_or0(sn::kExpired), expired);
  EXPECT_EQ(snap.counter_or0(sn::kSubmitted), futs.size());
  // Conservation: submitted == every terminal state, exactly once.
  EXPECT_EQ(snap.counter_or0(sn::kSubmitted),
            ok + full + expired + shutdown);
  // Latency histograms record kOk requests only.
  const stats::HistogramSnapshot* e2e = snap.histogram(sn::kE2eMs);
  ASSERT_NE(e2e, nullptr);
  EXPECT_EQ(e2e->count, ok);
  const stats::HistogramSnapshot* qw = snap.histogram(sn::kQueueWaitMs);
  ASSERT_NE(qw, nullptr);
  EXPECT_EQ(qw->count, ok);
  // Every popped batch closed for some reason. `batches` counts only
  // executed batches; with max_batch_requests=1 the expired request is
  // a whole (all-expired, never executed) batch of its own, so the
  // close-reason total exceeds `batches` by exactly `expired`.
  const std::uint64_t closes =
      snap.counter_or0(
          stats::labeled(sn::kBatchCloseBase, "reason", "window")) +
      snap.counter_or0(
          stats::labeled(sn::kBatchCloseBase, "reason", "requests")) +
      snap.counter_or0(
          stats::labeled(sn::kBatchCloseBase, "reason", "points")) +
      snap.counter_or0(
          stats::labeled(sn::kBatchCloseBase, "reason", "closed"));
  EXPECT_EQ(closes, snap.counter_or0(sn::kBatches) + expired);
  const stats::HistogramSnapshot* bs = snap.histogram(sn::kBatchSize);
  ASSERT_NE(bs, nullptr);
  EXPECT_DOUBLE_EQ(bs->sum, static_cast<double>(ok));
}

TEST(HullService, TracingRecordsServePhases) {
  ServiceConfig cfg = small_config();
  cfg.trace = true;
  HullService svc(cfg);
  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 8; ++i) {
    futs.push_back(svc.submit(make_request(0, 128, 5)));
  }
  for (auto& f : futs) EXPECT_EQ(f.get().status, Status::kOk);
  svc.shutdown();
  std::uint64_t invocations = 0;
  for (std::size_t i = 0; i <= svc.shard_count(); ++i) {
    const trace::Recorder* rec = svc.recorder(i);
    ASSERT_NE(rec, nullptr) << i;
    if (const auto* node = rec->root().child("serve/request")) {
      invocations += node->invocations;
      EXPECT_GT(node->steps, 0u);
    }
  }
  EXPECT_EQ(invocations, 8u);  // every request traced exactly once
}

// --- execution-backend selection (iph::exec) --------------------------

// A request pinned to the native engine is served by it: ok status, a
// validate-passing hull, metrics.backend == native with zero PRAM
// counters, and exactly the backend-labeled counter bumped.
TEST(HullService, NativeBackendRoundTripBumpsLabeledCounter) {
  ServiceConfig cfg = small_config();
  HullService svc(cfg);  // service default stays pram
  Request r = make_request(5, 600, 13);
  r.backend = exec::BackendKind::kNative;
  const Response resp = svc.submit(std::move(r)).get();
  ASSERT_EQ(resp.status, Status::kOk);
  EXPECT_EQ(resp.metrics.backend, exec::BackendKind::kNative);
  EXPECT_EQ(resp.metrics.steps, 0u);  // native reports zero PRAM cost
  EXPECT_EQ(resp.metrics.work, 0u);
  std::string err;
  const auto pts = geom::in_disk(600, 13);
  EXPECT_TRUE(geom::validate_upper_hull(pts, resp.hull.upper, &err)) << err;
  EXPECT_TRUE(geom::validate_edge_above(pts, resp.hull, &err)) << err;

  svc.shutdown();
  namespace sn = statnames;
  const stats::RegistrySnapshot snap = svc.stats_registry().snapshot();
  EXPECT_EQ(snap.counter_or0(
                stats::labeled(sn::kBackendBase, "backend", "native")),
            1u);
  EXPECT_EQ(snap.counter_or0(
                stats::labeled(sn::kBackendBase, "backend", "pram")),
            0u);
  // No PRAM run happened, so the folded simulator counters stayed flat.
  EXPECT_EQ(snap.counter_or0("iph_serve_pram_steps_total"), 0u);
}

// ServiceConfig::backend routes kDefault requests; an explicit request
// kind always wins over the service default.
TEST(HullService, ServiceDefaultBackendRoutesAndExplicitWins) {
  ServiceConfig cfg = small_config();
  cfg.backend = exec::BackendKind::kNative;
  HullService svc(cfg);
  Request by_default = make_request(1, 300, 2);  // kDefault -> native
  Request pinned = make_request(2, 300, 2);
  pinned.backend = exec::BackendKind::kPram;
  const Response a = svc.submit(std::move(by_default)).get();
  const Response b = svc.submit(std::move(pinned)).get();
  ASSERT_EQ(a.status, Status::kOk);
  ASSERT_EQ(b.status, Status::kOk);
  EXPECT_EQ(a.metrics.backend, exec::BackendKind::kNative);
  EXPECT_EQ(b.metrics.backend, exec::BackendKind::kPram);
  EXPECT_GT(b.metrics.steps, 0u);  // the simulator meters its runs

  svc.shutdown();
  namespace sn = statnames;
  const stats::RegistrySnapshot snap = svc.stats_registry().snapshot();
  EXPECT_EQ(snap.counter_or0(
                stats::labeled(sn::kBackendBase, "backend", "native")),
            1u);
  EXPECT_EQ(snap.counter_or0(
                stats::labeled(sn::kBackendBase, "backend", "pram")),
            1u);
}

// A mixed batch dispatches per request: both engines serve out of ONE
// coalesced run, the two per-backend counters split the batch exactly,
// and pram + native == completed (the invariant hullload --scrape
// asserts).
TEST(HullService, MixedBatchSplitsBackendCounters) {
  ServiceConfig cfg = small_config();
  cfg.workers = 1;
  cfg.shards = 1;
  cfg.batch.window = 500ms;
  cfg.batch.max_batch_requests = 8;
  HullService svc(cfg);
  std::vector<std::future<Response>> futs;
  futs.reserve(8);
  for (int i = 0; i < 8; ++i) {
    Request r = make_request(0, 200, 4);
    r.backend = i % 2 == 0 ? exec::BackendKind::kNative
                           : exec::BackendKind::kPram;
    futs.push_back(svc.submit(std::move(r)));
  }
  std::uint64_t native = 0, pram = 0;
  for (auto& f : futs) {
    const Response r = f.get();
    ASSERT_EQ(r.status, Status::kOk);
    ASSERT_EQ(r.metrics.batch_size, 8u) << "burst did not coalesce";
    (r.metrics.backend == exec::BackendKind::kNative ? native : pram)++;
  }
  EXPECT_EQ(native, 4u);
  EXPECT_EQ(pram, 4u);
  svc.shutdown();
  namespace sn = statnames;
  const stats::RegistrySnapshot snap = svc.stats_registry().snapshot();
  const std::uint64_t c_native = snap.counter_or0(
      stats::labeled(sn::kBackendBase, "backend", "native"));
  const std::uint64_t c_pram = snap.counter_or0(
      stats::labeled(sn::kBackendBase, "backend", "pram"));
  EXPECT_EQ(c_native, 4u);
  EXPECT_EQ(c_pram, 4u);
  EXPECT_EQ(c_native + c_pram, snap.counter_or0(sn::kCompleted));
}

// The same request served by either engine produces an identical
// default wire response once the legitimately-differing metrics are
// masked: same hull indices, byte-identical serve_wire JSON. The
// points here are duplicate-free, so the backends' chains agree down
// to the indices, not just coordinates (exec_diff_test covers the
// duplicate-divergence case). The opt-in edge_above array is NOT
// byte-stable across engines: a point whose x equals a hull vertex's
// may cite either incident edge (both valid covers — the randomized
// PRAM algorithm records whichever bridge discovered the point), so
// each engine's array is held to the validator instead.
TEST(HullService, WireResponseIdenticalAcrossBackends) {
  Response by[2];
  for (int which = 0; which < 2; ++which) {
    ServiceConfig cfg = small_config();
    cfg.backend = which == 0 ? exec::BackendKind::kPram
                             : exec::BackendKind::kNative;
    HullService svc(cfg);
    Request r = make_request(77, 400, 6);  // same id -> same derived seed
    by[which] = svc.submit(std::move(r)).get();
    ASSERT_EQ(by[which].status, Status::kOk);
  }
  EXPECT_EQ(by[0].metrics.seed, by[1].metrics.seed);
  EXPECT_EQ(by[0].hull.upper.vertices, by[1].hull.upper.vertices);
  const auto pts = geom::in_disk(400, 6);
  for (const Response& r : by) {
    std::string err;
    EXPECT_TRUE(geom::validate_edge_above(pts, r.hull, &err)) << err;
  }
  // Wall-clock and engine-specific metrics legitimately differ; the
  // default wire payload must not once they are masked out.
  for (Response& r : by) r.metrics = RequestMetrics{};
  EXPECT_EQ(tools::response_to_json(by[0], /*edge_above=*/false).dump(),
            tools::response_to_json(by[1], /*edge_above=*/false).dump());
}

// The BackendSet seam itself: per-request dispatch, the pram fallback
// when no native engine is wired, and the legacy machine-only overload.
TEST(ExecuteBatch, BackendSetDispatchesAndFallsBack) {
  pram::Machine m(2, 99);
  exec::PramBackend pram_backend(m);
  exec::NativeBackend native_backend(2);
  std::vector<Request> reqs;
  for (int i = 0; i < 3; ++i) {
    reqs.push_back(make_request(static_cast<RequestId>(i + 1), 100, 5));
  }
  reqs[0].backend = exec::BackendKind::kNative;
  reqs[1].backend = exec::BackendKind::kPram;
  // reqs[2] stays kDefault -> BackendSet::service_default (pram here).

  BackendSet both;
  both.pram = &pram_backend;
  both.native = &native_backend;
  BatchExecInfo info;
  std::vector<Response> rs = execute_batch(both, reqs, 7, &info);
  ASSERT_EQ(rs.size(), 3u);
  EXPECT_EQ(rs[0].metrics.backend, exec::BackendKind::kNative);
  EXPECT_EQ(rs[1].metrics.backend, exec::BackendKind::kPram);
  EXPECT_EQ(rs[2].metrics.backend, exec::BackendKind::kPram);
  EXPECT_EQ(info.native_requests, 1u);
  EXPECT_EQ(info.pram_requests, 2u);

  // Without a native engine, a kNative request falls back to pram
  // rather than failing — the resolved kind records what actually ran.
  BackendSet pram_only;
  pram_only.pram = &pram_backend;
  rs = execute_batch(pram_only, reqs, 7, &info);
  EXPECT_EQ(rs[0].metrics.backend, exec::BackendKind::kPram);
  EXPECT_EQ(info.native_requests, 0u);
  EXPECT_EQ(info.pram_requests, 3u);

  // The legacy overload is the pram-only set in disguise.
  rs = execute_batch(m, reqs, 7, &info);
  for (const Response& r : rs) {
    EXPECT_EQ(r.metrics.backend, exec::BackendKind::kPram);
  }
}

// --- request-scoped tracing (iph::obs) --------------------------------

// Extends the PR 5 batch-metrics fix down to spans: execute_batch now
// also reports each request's own START stamp and its slice of the
// shard recorder's phase-event log, so batch-mates get disjoint,
// per-request exec spans instead of sharing the batch's.
TEST(ExecuteBatch, ReportsPerRequestStartStampsAndEventRanges) {
  pram::Machine m(2, 99);
  trace::Recorder rec;
  rec.attach(m);
  exec::PramBackend pram_backend(m);
  std::vector<Request> reqs;
  for (int i = 0; i < 4; ++i) {
    reqs.push_back(make_request(static_cast<RequestId>(i + 1), 128, 11));
  }
  BackendSet backends;
  backends.pram = &pram_backend;
  backends.recorder = &rec;
  BatchExecInfo info;
  const std::vector<Response> rs = execute_batch(backends, reqs, 7, &info);
  ASSERT_EQ(rs.size(), reqs.size());
  ASSERT_EQ(info.started_at.size(), reqs.size());
  ASSERT_EQ(info.completed_at.size(), reqs.size());
  ASSERT_EQ(info.pram_events.size(), reqs.size());
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    // Each request's exec interval is well-formed and disjoint from its
    // predecessor's (back-to-back in the arena, never shared stamps).
    EXPECT_LT(info.started_at[i].time_since_epoch().count(),
              info.completed_at[i].time_since_epoch().count());
    if (i > 0) {
      EXPECT_GE(info.started_at[i].time_since_epoch().count(),
                info.completed_at[i - 1].time_since_epoch().count());
    }
    // PRAM-resolved requests own consecutive, non-empty event slices.
    EXPECT_LT(info.pram_events[i].first, info.pram_events[i].second);
    if (i > 0) {
      EXPECT_EQ(info.pram_events[i].first, info.pram_events[i - 1].second);
    }
  }
  EXPECT_EQ(info.pram_events.back().second, rec.events().size());

  // Native-resolved requests bypass the simulator: their slice is empty.
  exec::NativeBackend native_backend(2);
  backends.native = &native_backend;
  for (auto& r : reqs) r.backend = exec::BackendKind::kNative;
  execute_batch(backends, reqs, 7, &info);
  for (const auto& range : info.pram_events) {
    EXPECT_EQ(range.first, range.second);
  }
}

// The service stamps a fresh trace id on requests that arrive without
// one and adopts a caller-supplied context verbatim; every completed
// request publishes one 4-span tree whose counters reconcile EXACTLY
// against the serve counters (the identity hullload --scrape checks).
TEST(HullService, TraceStampingAdoptionAndExactSpanReconciliation) {
  ServiceConfig cfg = small_config();
  cfg.workers = 1;
  cfg.shards = 1;
  HullService svc(cfg);
  ASSERT_NE(svc.flight_recorder(), nullptr);

  std::vector<std::future<Response>> futs;
  for (int i = 0; i < 6; ++i) {
    futs.push_back(svc.submit(make_request(0, 128, 5)));
  }
  Request tagged = make_request(0, 128, 5);
  tagged.trace.trace_id = 0xabc123;
  tagged.trace.parent_span = 0x7;
  futs.push_back(svc.submit(std::move(tagged)));

  std::vector<std::uint64_t> ids;
  for (auto& f : futs) {
    const Response r = f.get();
    ASSERT_EQ(r.status, Status::kOk);
    ASSERT_TRUE(r.trace.has_id()) << "service must stamp missing ids";
    ids.push_back(r.trace.trace_id);
  }
  // The adopted context came back verbatim on its own response...
  EXPECT_EQ(ids.back(), 0xabc123u);
  // ...and stamped ids are unique.
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(std::adjacent_find(ids.begin(), ids.end()), ids.end());

  svc.shutdown();
  namespace on = obs::statnames;
  const stats::RegistrySnapshot s = svc.stats_registry().snapshot();
  const std::uint64_t completed = s.counter_or0(statnames::kCompleted);
  ASSERT_EQ(completed, futs.size());
  EXPECT_EQ(s.counter_or0(
                stats::labeled(on::kTracesPublishedBase, "kind", "request")),
            completed);
  EXPECT_EQ(s.counter_or0(
                stats::labeled(on::kSpansRecordedBase, "kind", "request")),
            completed * obs::kSpansPerRequest);

  // The retained span trees carry the adopted client span as the root's
  // wire-level parent.
  bool saw_tagged = false;
  for (const obs::CompletedTrace& t : svc.flight_recorder()->snapshot()) {
    ASSERT_EQ(t.spans.size(),
              static_cast<std::size_t>(obs::kSpansPerRequest));
    if (t.trace_id == 0xabc123u) {
      saw_tagged = true;
      EXPECT_EQ(t.parent_span, 0x7u);
    }
  }
  EXPECT_TRUE(saw_tagged);
}

// Batch-mates get per-request exec spans: along a coalesced batch the
// exec spans are disjoint and strictly ordered, matching the PR 5
// per-request completion stamps (under the old shared-stamp bug every
// mate's exec span would have been the batch tail's interval).
TEST(HullService, BatchMatesGetDisjointExecSpans) {
  ServiceConfig cfg = small_config();
  cfg.workers = 1;
  cfg.shards = 1;
  cfg.batch.window = 500ms;
  cfg.batch.max_batch_requests = 8;
  HullService svc(cfg);
  std::vector<std::future<Response>> futs;
  futs.reserve(8);
  for (int i = 0; i < 8; ++i) {
    futs.push_back(svc.submit(make_request(0, 256, 8)));
  }
  for (auto& f : futs) ASSERT_EQ(f.get().status, Status::kOk);
  svc.shutdown();

  std::vector<obs::CompletedTrace> traces = svc.flight_recorder()->snapshot();
  ASSERT_EQ(traces.size(), 8u);
  // All one batch...
  for (const obs::CompletedTrace& t : traces) {
    ASSERT_EQ(t.batch_size, 8u) << "burst did not coalesce";
  }
  // ...so ordered by request id, the exec spans tile the lease without
  // overlap or shared stamps.
  std::sort(traces.begin(), traces.end(),
            [](const obs::CompletedTrace& a, const obs::CompletedTrace& b) {
              return a.trace_id < b.trace_id;
            });
  const obs::Span* prev = nullptr;
  for (const obs::CompletedTrace& t : traces) {
    const obs::Span& exec = t.spans[obs::kExecSpanId - 1];
    ASSERT_STREQ(exec.name, "exec");
    EXPECT_LT(exec.start_ns, exec.end_ns);
    if (prev != nullptr) {
      EXPECT_GE(exec.start_ns, prev->end_ns)
          << "batch-mates shared exec stamps";
    }
    prev = &t.spans[obs::kExecSpanId - 1];
  }
}

// With --trace on the PRAM path, each request's trace links its own
// slice of the simulator phase tree as child spans of its exec span.
TEST(HullService, PramTracesLinkPhaseSpansUnderExec) {
  ServiceConfig cfg = small_config();
  cfg.trace = true;
  cfg.workers = 1;
  cfg.shards = 1;
  HullService svc(cfg);
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(svc.submit(make_request(0, 128, 5)).get().status, Status::kOk);
  }
  svc.shutdown();
  const std::vector<obs::CompletedTrace> traces =
      svc.flight_recorder()->snapshot();
  ASSERT_EQ(traces.size(), 3u);
  for (const obs::CompletedTrace& t : traces) {
    ASSERT_FALSE(t.phase_spans.empty()) << "pram trace lost its phases";
    // Root of each phase slice hangs off the exec span; nested phases
    // hang off other phase spans.
    for (const obs::Span& s : t.phase_spans) {
      EXPECT_TRUE(s.parent_id == obs::kExecSpanId ||
                  s.parent_id >= obs::kFirstPhaseSpanId)
          << s.name;
      EXPECT_GE(s.start_ns, t.root_start_ns());
    }
    EXPECT_EQ(t.phase_spans[0].parent_id, obs::kExecSpanId);
  }
  // Phase spans are counted under their own kind — request span counts
  // stay exactly 4 per completed request.
  const stats::RegistrySnapshot s = svc.stats_registry().snapshot();
  namespace on = obs::statnames;
  EXPECT_EQ(s.counter_or0(
                stats::labeled(on::kSpansRecordedBase, "kind", "request")),
            3u * obs::kSpansPerRequest);
  EXPECT_GT(s.counter_or0(
                stats::labeled(on::kSpansRecordedBase, "kind", "phase")),
            0u);
}

// Disabling obs removes the recorder and its counters entirely — the
// zero-cost off switch (and the config hullload's presence-gated
// reconciliation must tolerate).
TEST(HullService, ObsDisabledServesWithoutRecorderOrCounters) {
  ServiceConfig cfg = small_config();
  cfg.obs.enabled = false;
  HullService svc(cfg);
  EXPECT_EQ(svc.flight_recorder(), nullptr);
  const Response r = svc.submit(make_request(0, 128, 5)).get();
  ASSERT_EQ(r.status, Status::kOk);
  EXPECT_FALSE(r.trace.has_id()) << "no recorder, no stamping";
  svc.shutdown();
  const stats::RegistrySnapshot s = svc.stats_registry().snapshot();
  EXPECT_EQ(s.counter(stats::labeled(obs::statnames::kTracesPublishedBase,
                                     "kind", "request")),
            nullptr);
}

}  // namespace
}  // namespace iph::serve
