#include "serve/machine_pool.h"

#include "support/check.h"

namespace iph::serve {

MachinePool::MachinePool(std::size_t shards, unsigned threads_per_shard,
                         std::uint64_t seed) {
  IPH_CHECK(shards > 0);
  machines_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    machines_.push_back(
        std::make_unique<pram::Machine>(threads_per_shard, seed));
  }
  leased_.assign(shards, false);
}

MachinePool::Lease MachinePool::acquire() {
  std::unique_lock<std::mutex> lk(mu_);
  std::size_t idx = 0;
  cv_.wait(lk, [&] {
    for (std::size_t i = 0; i < leased_.size(); ++i) {
      if (!leased_[i]) {
        idx = i;
        return true;
      }
    }
    return false;
  });
  leased_[idx] = true;
  return Lease(this, idx);
}

std::optional<MachinePool::Lease> MachinePool::try_acquire() {
  std::lock_guard<std::mutex> lk(mu_);
  for (std::size_t i = 0; i < leased_.size(); ++i) {
    if (!leased_[i]) {
      leased_[i] = true;
      return Lease(this, i);
    }
  }
  return std::nullopt;
}

std::size_t MachinePool::available() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t n = 0;
  for (const bool b : leased_) n += b ? 0 : 1;
  return n;
}

void MachinePool::Lease::release() {
  if (pool_ == nullptr) return;
  pool_->release_shard(index_);
  pool_ = nullptr;
}

void MachinePool::release_shard(std::size_t index) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    leased_[index] = false;
  }
  cv_.notify_one();
}

}  // namespace iph::serve
