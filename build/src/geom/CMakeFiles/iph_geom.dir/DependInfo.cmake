
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geom/predicates.cpp" "src/geom/CMakeFiles/iph_geom.dir/predicates.cpp.o" "gcc" "src/geom/CMakeFiles/iph_geom.dir/predicates.cpp.o.d"
  "/root/repo/src/geom/validate.cpp" "src/geom/CMakeFiles/iph_geom.dir/validate.cpp.o" "gcc" "src/geom/CMakeFiles/iph_geom.dir/validate.cpp.o.d"
  "/root/repo/src/geom/workloads.cpp" "src/geom/CMakeFiles/iph_geom.dir/workloads.cpp.o" "gcc" "src/geom/CMakeFiles/iph_geom.dir/workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/iph_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
