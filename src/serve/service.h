// HullService — the in-process hull-serving front end.
//
//   submit(Request) -> std::future<Response>
//
// Architecture (DESIGN.md "Serving layer"):
//
//   submit ──admission──> small queue ──batch workers──> MachinePool
//          │                                              (leased shard,
//          │                                               batched run)
//          └─(points >= small_threshold)─> large queue ──> dedicated
//                                          large worker    large shard
//
// * Admission control happens on the caller's thread: a full queue or a
//   shut-down service answers immediately with a ready rejected future
//   — no request is ever silently dropped.
// * Batch workers pop batches from the small queue (BoundedQueue::
//   pop_batch with the policy window), lease a shard, expire any
//   request whose deadline passed while queued, and run the rest
//   through serve::execute_batch.
// * The large worker runs oversized requests one at a time on its own
//   dedicated shard so a big query never sits behind a batch (and a
//   batch never waits on a big query).
// * shutdown(drain=true) closes admissions and drains: every admitted
//   request still executes. drain=false answers the backlog with
//   kRejectedShutdown instead. The destructor drains.
//
// Tracing: with ServiceConfig::trace set, every shard gets a
// trace::Recorder for its whole lifetime ("serve/request" phases, step
// timeline, space gauges — the same recorder the bench harness uses).
// A shard's recorder is only ever driven by the worker currently
// holding that shard's lease, so the recorder's no-locking contract
// holds; read them after shutdown().
#pragma once

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "exec/backend.h"
#include "exec/native_backend.h"
#include "obs/flight_recorder.h"
#include "serve/batcher.h"
#include "serve/machine_pool.h"
#include "serve/queue.h"
#include "serve/request.h"
#include "serve/stats.h"
#include "stats/stats.h"
#include "trace/recorder.h"

namespace iph::serve {

struct ServiceConfig {
  std::size_t queue_capacity = 1024;  ///< per queue (small and large).
  std::size_t shards = 2;             ///< MachinePool size (batch path).
  unsigned threads_per_shard = 0;     ///< 0 = support::env_threads().
  std::size_t workers = 2;            ///< batch worker threads.
  bool large_shard = true;  ///< dedicated shard+worker for big queries;
                            ///< off = everything rides the batch path.
  BatchPolicy batch;
  std::uint64_t master_seed = 0x19910722ULL;
  bool trace = false;  ///< attach a trace::Recorder per shard.
  /// Flight-recorder shape (obs/flight_recorder.h). Enabled by default:
  /// the recorder is designed to ride the hot path at near-zero cost
  /// (e14's obs-overhead claim gates that). With trace ALSO set, PRAM
  /// phase trees are linked into each request's span tree as child
  /// spans of its exec span.
  obs::ObsConfig obs;
  /// Engine that serves requests whose Request::backend is kDefault
  /// (exec/backend.h). kPram keeps the metered-simulator behavior this
  /// service shipped with; kNative routes defaulted requests to the
  /// thread-parallel fast path. A request naming a kind explicitly
  /// always wins over this. kDefault here is sanitized to kPram.
  exec::BackendKind backend = exec::BackendKind::kPram;
};

/// Monotonic service counters (all since construction).
struct StatsSnapshot {
  std::uint64_t submitted = 0;
  std::uint64_t rejected_full = 0;
  std::uint64_t rejected_shutdown = 0;
  std::uint64_t expired = 0;
  std::uint64_t completed = 0;       ///< Answered kOk.
  std::uint64_t batches = 0;         ///< PRAM batch runs (small path).
  std::uint64_t batched_requests = 0;///< Requests summed over batches.
  std::uint64_t max_batch = 0;       ///< Largest batch coalesced.
  std::uint64_t large_requests = 0;  ///< Requests routed large.

  double mean_batch() const noexcept {
    return batches == 0 ? 0.0
                        : static_cast<double>(batched_requests) /
                              static_cast<double>(batches);
  }
};

class HullService {
 public:
  explicit HullService(const ServiceConfig& cfg = {});
  ~HullService();  ///< shutdown(/*drain=*/true).

  HullService(const HullService&) = delete;
  HullService& operator=(const HullService&) = delete;

  /// Submit one request. Always yields exactly one Response through the
  /// future; rejections/expiries are ready immediately or answered by
  /// the draining worker. Requests without an id get a unique one
  /// (ids only seed the derived RNG stream; see request.h).
  std::future<Response> submit(Request req);

  /// Close admissions and join the workers. Idempotent, thread-safe
  /// against concurrent submit(): late submissions get
  /// kRejectedShutdown. drain=true executes the backlog; drain=false
  /// rejects it.
  void shutdown(bool drain = true);

  StatsSnapshot stats() const;

  /// The service-level metrics registry (serve/stats.h documents the
  /// instruments and the reconciliation invariants). Snapshot it any
  /// time; hullserved serves it as the `statz` wire command and
  /// hullload --scrape diffs it around a run. Counters are bumped
  /// strictly before the corresponding promise is fulfilled, so a
  /// client holding all its responses reads settled counters. The
  /// latency histograms record kOk requests only — server-side p99 is
  /// comparable to a client's ok-only percentile.
  stats::Registry& stats_registry() noexcept { return stats_registry_; }
  const stats::Registry& stats_registry() const noexcept {
    return stats_registry_;
  }

  std::size_t shard_count() const noexcept { return pool_.size(); }
  /// Shard `i`'s recorder (the large shard is index shard_count()), or
  /// nullptr unless ServiceConfig::trace. Read after shutdown().
  const trace::Recorder* recorder(std::size_t i) const;

  /// The flight recorder (obs/flight_recorder.h), or nullptr when
  /// ServiceConfig::obs.enabled is false. Snapshot any time — the
  /// `tracez` wire command and --trace-out export read it live.
  obs::FlightRecorder* flight_recorder() noexcept { return flight_.get(); }
  const obs::FlightRecorder* flight_recorder() const noexcept {
    return flight_.get();
  }

 private:
  void batch_worker();
  void large_worker();
  void answer_rejection(Pending& p, Status status);
  void finish_batch(std::vector<Pending> batch, MachinePool::Lease lease,
                    Clock::time_point popped, const char* close_tag);
  static std::future<Response> ready_response(Response r);
  /// Assemble + publish one completed request's span tree (no-op
  /// without a flight recorder). `phase_spans` were extracted from the
  /// shard recorder while the lease was still held (obs/phase_link.h).
  void publish_request_trace(const Request& req, const Response& resp,
                             const char* close_tag,
                             Clock::time_point enqueued,
                             Clock::time_point popped,
                             Clock::time_point leased,
                             Clock::time_point started,
                             Clock::time_point completed,
                             std::uint64_t batch_size,
                             std::vector<obs::Span> phase_spans,
                             bool phase_truncated);

  ServiceConfig cfg_;
  // Registry before queues/pool: both hold bound instrument pointers
  // into it and touch them until the workers join, so the registry must
  // be destroyed after them (reverse declaration order).
  stats::Registry stats_registry_;
  ServeStats sstats_;
  // Flight recorder after the registry (it binds instruments into it)
  // and before the workers (they publish into it until they join).
  std::unique_ptr<obs::FlightRecorder> flight_;
  // Recorders before machines: machines are detached from observers by
  // destruction order (pool after recorders would dangle — so pool_
  // and large_machine_ are declared after recorders_ and destroyed
  // first).
  std::vector<std::unique_ptr<trace::Recorder>> recorders_;
  // The native engine is shared by every worker: NativeBackend::
  // upper_hull is safe to call concurrently (each call owns its own
  // buffers; the pool serializes fork-join rounds), so one engine
  // serves all shards. PRAM execution, by contrast, is per-lease — the
  // workers wrap their leased machine in a stack PramBackend per batch.
  exec::NativeBackend native_;
  MachinePool pool_;
  std::unique_ptr<pram::Machine> large_machine_;
  BoundedQueue small_queue_;
  BoundedQueue large_queue_;

  struct Stats {
    std::atomic<std::uint64_t> submitted{0}, rejected_full{0},
        rejected_shutdown{0}, expired{0}, completed{0}, batches{0},
        batched_requests{0}, max_batch{0}, large_requests{0};
  };
  mutable Stats stats_;
  std::atomic<std::uint64_t> next_id_{1};
  std::atomic<bool> closed_{false};
  std::atomic<bool> abandon_{false};  ///< drain=false shutdown.
  std::vector<std::thread> workers_;
  std::mutex shutdown_mu_;
  bool joined_ = false;
};

}  // namespace iph::serve
