// 3-d upper hull by gift wrapping (Chand-Kapur style pivoting restricted
// to upward-facing facets) — the exact O(n·h) oracle the parallel 3-d
// algorithm is validated against, and the paper's O(n h)-work brute
// comparator in e05.
//
// General-position expectations: no two points share an xy-projection
// among hull candidates, no 4 hull points coplanar, no 3 projected hull
// points collinear. The random 3-d workload families satisfy these with
// probability 1; degenerate inputs degrade gracefully (facets remain
// valid upper-hull facets; some points may stay unassigned).
#pragma once

#include <span>

#include "geom/hull_types.h"
#include "geom/point.h"

namespace iph::seq {

/// Upper hull facets + per-point facet pointers of pts.
geom::HullResult3D giftwrap_upper_hull3(std::span<const geom::Point3> pts);

}  // namespace iph::seq
