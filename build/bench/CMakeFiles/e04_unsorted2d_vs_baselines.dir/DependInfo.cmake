
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/e04_unsorted2d_vs_baselines.cpp" "bench/CMakeFiles/e04_unsorted2d_vs_baselines.dir/e04_unsorted2d_vs_baselines.cpp.o" "gcc" "bench/CMakeFiles/e04_unsorted2d_vs_baselines.dir/e04_unsorted2d_vs_baselines.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/iph_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hulltools/CMakeFiles/iph_hulltools.dir/DependInfo.cmake"
  "/root/repo/build/src/seq/CMakeFiles/iph_seq.dir/DependInfo.cmake"
  "/root/repo/build/src/primitives/CMakeFiles/iph_primitives.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/iph_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/pram/CMakeFiles/iph_pram.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/iph_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
