#include "trace/chrome_trace.h"

#include <string>
#include <vector>

namespace iph::trace {

namespace {

constexpr int kPid = 1;
constexpr int kTidWall = 1;
constexpr int kTidPram = 2;

Json meta_event(const char* name, int tid, const char* value) {
  Json e = Json::object();
  e["ph"] = "M";
  e["pid"] = kPid;
  e["tid"] = tid;
  e["name"] = name;
  Json args = Json::object();
  args["name"] = value;
  e["args"] = std::move(args);
  return e;
}

Json span_event(const std::string& name, int tid, double ts_us,
                double dur_us, std::uint64_t open_step,
                std::uint64_t close_step) {
  Json e = Json::object();
  e["ph"] = "X";
  e["pid"] = kPid;
  e["tid"] = tid;
  e["name"] = name;
  e["ts"] = ts_us;
  e["dur"] = dur_us;
  Json args = Json::object();
  args["pram_step_open"] = open_step;
  args["pram_step_close"] = close_step;
  args["pram_steps"] = close_step - open_step;
  e["args"] = std::move(args);
  return e;
}

struct OpenSpan {
  std::string name;
  double wall_us;
  std::uint64_t step;
};

}  // namespace

Json chrome_trace_json(const Recorder& rec) {
  Json events = Json::array();
  events.push_back(meta_event("process_name", kTidWall, "iph pram::Machine"));
  events.push_back(meta_event("thread_name", kTidWall, "wall clock"));
  events.push_back(
      meta_event("thread_name", kTidPram, "PRAM virtual time (1us = 1 step)"));

  std::vector<OpenSpan> stack;
  double last_wall = 0;
  std::uint64_t last_step = 0;
  for (const TraceEvent& e : rec.events()) {
    last_wall = e.wall_us;
    last_step = e.step;
    if (e.kind == TraceEvent::Kind::kOpen) {
      stack.push_back(OpenSpan{e.name, e.wall_us, e.step});
      continue;
    }
    if (stack.empty()) continue;  // unmatched close (truncated log)
    const OpenSpan s = stack.back();
    stack.pop_back();
    events.push_back(span_event(s.name, kTidWall, s.wall_us,
                                e.wall_us - s.wall_us, s.step, e.step));
    events.push_back(span_event(s.name, kTidPram,
                                static_cast<double>(s.step),
                                static_cast<double>(e.step - s.step), s.step,
                                e.step));
  }
  // Phases still open when the log ended (cap hit mid-phase): close them
  // at the last observed stamp so the export stays loadable.
  while (!stack.empty()) {
    const OpenSpan s = stack.back();
    stack.pop_back();
    events.push_back(span_event(s.name, kTidWall, s.wall_us,
                                last_wall - s.wall_us, s.step, last_step));
    events.push_back(span_event(s.name, kTidPram,
                                static_cast<double>(s.step),
                                static_cast<double>(last_step - s.step),
                                s.step, last_step));
  }

  Json doc = Json::object();
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  if (rec.dropped_events() > 0) doc["dropped_events"] = rec.dropped_events();
  return doc;
}

void write_chrome_trace(const Recorder& rec, std::ostream& os) {
  os << chrome_trace_json(rec).dump(1) << '\n';
}

}  // namespace iph::trace
