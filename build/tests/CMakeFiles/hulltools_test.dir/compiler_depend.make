# Empty compiler generated dependencies file for hulltools_test.
# This may be replaced when dependencies are built.
