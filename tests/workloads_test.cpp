#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "geom/validate.h"
#include "geom/workloads.h"
#include "seq/upper_hull.h"

namespace iph::geom {
namespace {

TEST(Workloads2D, DeterministicInSeed) {
  for (Family2D f : kAllFamilies2D) {
    const auto a = make2d(f, 200, 42);
    const auto b = make2d(f, 200, 42);
    const auto c = make2d(f, 200, 43);
    EXPECT_EQ(a.size(), 200u) << family_name(f);
    EXPECT_EQ(a, b) << family_name(f);
    if (f != Family2D::kCollinear) {  // collinear ignores the seed's values
      EXPECT_NE(a, c) << family_name(f);
    }
  }
}

TEST(Workloads2D, ConvexKHasExactUpperHullSize) {
  for (std::size_t k : {2u, 3u, 8u, 50u}) {
    const auto pts = convex_k(400, k, 7);
    const auto hull = seq::upper_hull(pts);
    EXPECT_EQ(hull.vertices.size(), k) << "k=" << k;
    std::string err;
    EXPECT_TRUE(validate_upper_hull(pts, hull, &err)) << err;
  }
}

TEST(Workloads2D, ConvexKLargeKStillExact) {
  const auto pts = convex_k(5000, 1000, 3);
  EXPECT_EQ(seq::upper_hull(pts).vertices.size(), 1000u);
}

TEST(Workloads2D, CollinearHasTwoVertexUpperHull) {
  const auto pts = collinear2(100, 9);
  const auto hull = seq::upper_hull(pts);
  EXPECT_EQ(hull.vertices.size(), 2u);
}

TEST(Workloads2D, CircleMostPointsExtreme) {
  const auto pts = on_circle(1000, 11);
  const auto hull = seq::upper_hull(pts);
  // Roughly half the circle points are on the upper hull.
  EXPECT_GT(hull.vertices.size(), 350u);
}

TEST(Workloads2D, SquareHullIsLogarithmic) {
  const auto pts = in_square(1 << 14, 13);
  const auto hull = seq::upper_hull(pts);
  EXPECT_LT(hull.vertices.size(), 60u);
  EXPECT_GE(hull.vertices.size(), 3u);
}

TEST(Workloads2D, DuplicatesHaveFewSites) {
  const auto pts = with_duplicates(900, 17);
  std::set<std::pair<double, double>> distinct;
  for (const auto& p : pts) distinct.insert({p.x, p.y});
  EXPECT_LE(distinct.size(), 30u);  // ~sqrt(900)
}

TEST(Workloads2D, LatticeIsIntegerValued) {
  const auto pts = lattice2(500, 19);
  for (const auto& p : pts) {
    EXPECT_EQ(p.x, std::floor(p.x));
    EXPECT_EQ(p.y, std::floor(p.y));
  }
}

TEST(Workloads3D, DeterministicInSeed) {
  for (Family3D f : kAllFamilies3D) {
    const auto a = make3d(f, 150, 21);
    const auto b = make3d(f, 150, 21);
    EXPECT_EQ(a, b) << family_name(f);
    EXPECT_EQ(a.size(), 150u) << family_name(f);
  }
}

TEST(Workloads3D, BallInsideRadius) {
  const auto pts = in_ball(500, 23);
  for (const auto& p : pts) {
    EXPECT_LE(p.x * p.x + p.y * p.y + p.z * p.z, 1.0e12 * 1.0001);
  }
}

TEST(Workloads3D, SphereOnRadius) {
  const auto pts = on_sphere(500, 29);
  for (const auto& p : pts) {
    const double r2 = p.x * p.x + p.y * p.y + p.z * p.z;
    EXPECT_NEAR(r2, 1.0e12, 1e7);
  }
}

TEST(Workloads3D, ParaboloidLiesOnSurface) {
  const auto pts = on_paraboloid(300, 31);
  for (const auto& p : pts) {
    EXPECT_NEAR(p.z, -(p.x * p.x + p.y * p.y) / 1.0e6, 1e-3);
  }
}

TEST(SortLex, SortsAndKeepsMultiset) {
  auto pts = in_square(400, 37);
  auto copy = pts;
  sort_lex(pts);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_FALSE(lex_less(pts[i], pts[i - 1]));
  }
  std::sort(copy.begin(), copy.end(),
            [](const Point2& a, const Point2& b) { return lex_less(a, b); });
  EXPECT_EQ(pts, copy);
}

TEST(FamilyNames, Distinct) {
  std::set<std::string> names;
  for (Family2D f : kAllFamilies2D) names.insert(family_name(f));
  EXPECT_EQ(names.size(), std::size(kAllFamilies2D));
  std::set<std::string> names3;
  for (Family3D f : kAllFamilies3D) names3.insert(family_name(f));
  EXPECT_EQ(names3.size(), std::size(kAllFamilies3D));
}

}  // namespace
}  // namespace iph::geom
