# ctest script: end-to-end smoke of the serving tools.
#   1. hullserved in stdin mode must answer every NDJSON line — good
#      requests with "ok" hulls, malformed lines with "error" — and
#      exit 0 at EOF. A trailing {"cmd":"statz"} line must be answered
#      with the service registry, whose counters (answered in stream
#      order, after every earlier response) reconcile exactly with the
#      session: 3 valid submissions out of 5 lines.
#   2. hullload driving an in-process service must complete a small
#      closed-loop burst with every request ok (exit 0 under
#      --expect-all-ok) and emit a parseable --json summary; with
#      --scrape it must reconcile the server registry against its own
#      tally and write the diffed snapshot to --scrape-out.
#
# Invoked as:
#   cmake -DHULLSERVED=<bin> -DHULLLOAD=<bin> -DWORK_DIR=<scratch>
#         -P serve_smoke_test.cmake
if(NOT HULLSERVED OR NOT HULLLOAD OR NOT WORK_DIR)
  message(FATAL_ERROR "need -DHULLSERVED=... -DHULLLOAD=... -DWORK_DIR=...")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# --- Case 1: stdin session with good, inline, and broken lines --------
file(WRITE "${WORK_DIR}/requests.ndjson"
"{\"id\":1,\"n\":64,\"workload\":\"disk\",\"seed\":7}
{\"id\":2,\"points\":[[0,0],[1,2],[2,0],[3,3]]}
this is not json
{\"id\":4,\"n\":0}
{\"id\":5,\"n\":128,\"workload\":\"circle\",\"seed\":3,\"edge_above\":true}
{\"cmd\":\"statz\"}
")
execute_process(
  COMMAND "${HULLSERVED}" --quiet --shards 1 --workers 1 --threads 2
  INPUT_FILE "${WORK_DIR}/requests.ndjson"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "hullserved: expected exit 0, got ${rc}\n${err}")
endif()
string(REGEX MATCHALL "\"status\":\"ok\"" oks "${out}")
list(LENGTH oks n_ok)
if(NOT n_ok EQUAL 3)
  message(FATAL_ERROR "hullserved: expected 3 ok responses, got ${n_ok}:\n${out}")
endif()
string(REGEX MATCHALL "\"error\":" errs "${out}")
list(LENGTH errs n_err)
if(NOT n_err EQUAL 2)
  message(FATAL_ERROR "hullserved: expected 2 error lines, got ${n_err}:\n${out}")
endif()
# The circle request asked for the per-point edge-above array; the full
# n=64 disk request did not (response stays small by default).
if(NOT out MATCHES "\"edge_above\":\\[")
  message(FATAL_ERROR "hullserved: edge_above array missing:\n${out}")
endif()
# The statz line is answered in stream order, so its counters include
# exactly this session: 3 valid submissions (the 2 broken lines never
# reach the service).
if(NOT out MATCHES "\"statz\":")
  message(FATAL_ERROR "hullserved: statz answer missing:\n${out}")
endif()
if(NOT out MATCHES "\"iph_serve_submitted_total\":3")
  message(FATAL_ERROR
          "hullserved: statz submitted counter should be exactly 3:\n${out}")
endif()
if(NOT out MATCHES "\"iph_serve_completed_total\":3")
  message(FATAL_ERROR
          "hullserved: statz completed counter should be exactly 3:\n${out}")
endif()

# --- Case 2: hullload closed-loop burst, in-process -------------------
execute_process(
  COMMAND "${HULLLOAD}" --clients 2 --requests 8 --n 64
          --shards 1 --workers 1 --threads 2
          --expect-all-ok --json
          --scrape --scrape-out "${WORK_DIR}/statz.json"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "hullload: expected exit 0, got ${rc}\n${err}")
endif()
if(NOT out MATCHES "\"ok\":16")
  message(FATAL_ERROR "hullload: json summary lacks ok:16\n${out}")
endif()
if(NOT err MATCHES "e2e ms")
  message(FATAL_ERROR "hullload: human summary missing\n${err}")
endif()
# --scrape reconciled (exit 0 already proves it) and recorded the
# server-side view in the summary and the snapshot file.
if(NOT out MATCHES "\"scrape_ok\":true")
  message(FATAL_ERROR "hullload: json summary lacks scrape_ok:true\n${out}")
endif()
if(NOT EXISTS "${WORK_DIR}/statz.json")
  message(FATAL_ERROR "hullload: --scrape-out wrote no snapshot file")
endif()
file(READ "${WORK_DIR}/statz.json" statz)
if(NOT statz MATCHES "iph-stats-v1")
  message(FATAL_ERROR "hullload: snapshot lacks iph-stats-v1 schema:\n${statz}")
endif()

message(STATUS "serve tools smoke ok")
