#include "core/hull_assemble.h"

#include <algorithm>

#include "support/check.h"

namespace iph::core {

using geom::Index;
using geom::Point2;

geom::HullResult2D assemble_from_pairs(std::span<const Point2> pts,
                                       std::span<const Index> pair_a,
                                       std::span<const Index> pair_b) {

  geom::HullResult2D r;
  const std::size_t n = pts.size();
  std::vector<Index> verts;
  for (std::size_t i = 0; i < n; ++i) {
    if (pair_a[i] != geom::kNone) {
      verts.push_back(pair_a[i]);
      verts.push_back(pair_b[i]);
    }
  }
  // Different tree nodes may name the same geometric vertex by different
  // duplicate input indices: canonicalize by coordinates (keep the
  // smallest index per coordinate pair).
  std::sort(verts.begin(), verts.end(), [&](Index u, Index v) {
    if (pts[u].x != pts[v].x) return pts[u].x < pts[v].x;
    if (pts[u].y != pts[v].y) return pts[u].y < pts[v].y;
    return u < v;
  });
  verts.erase(std::unique(verts.begin(), verts.end(),
                          [&](Index u, Index v) { return pts[u] == pts[v]; }),
              verts.end());
  r.upper.vertices = verts;
  const auto rank_of = [&](Index v) -> std::uint32_t {
    const auto it = std::lower_bound(
        verts.begin(), verts.end(), v, [&](Index u, Index w) {
          if (pts[u].x != pts[w].x) return pts[u].x < pts[w].x;
          return pts[u].y < pts[w].y;
        });
    IPH_DCHECK(it != verts.end() && pts[*it] == pts[v]);
    return static_cast<std::uint32_t>(it - verts.begin());
  };
  r.edge_above.assign(n, geom::kNone);
  for (std::size_t i = 0; i < n; ++i) {
    if (pair_a[i] != geom::kNone) {
      r.edge_above[i] = rank_of(pair_a[i]);
      IPH_DCHECK(rank_of(pair_b[i]) == r.edge_above[i] + 1);
    }
  }
  return r;
}


}  // namespace iph::core
