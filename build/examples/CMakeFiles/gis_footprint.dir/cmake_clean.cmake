file(REMOVE_RECURSE
  "CMakeFiles/gis_footprint.dir/gis_footprint.cpp.o"
  "CMakeFiles/gis_footprint.dir/gis_footprint.cpp.o.d"
  "gis_footprint"
  "gis_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gis_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
