# Empty compiler generated dependencies file for iph_core.
# This may be replaced when dependencies are built.
