// benchreport — aggregate BENCH_*.json run reports into the
// EXPERIMENTS.md-style summary table, and (optionally) gate on them.
//
//   benchreport out/                       # render summary markdown
//   benchreport out/BENCH_e03.json ...     # explicit file list
//   benchreport --check out/               # exit 1 on any claim misfit
//   benchreport --check --baseline bench/baselines out/
//                                          # ... or deterministic-counter
//                                          # drift beyond --tol
//
// Arguments that name directories are scanned (non-recursively) for
// BENCH_*.json. The markdown goes to stdout (or --out FILE); diagnostics
// go to stderr so the summary stays pipeable.
//
// Reports carrying a "stats" block (service-registry snapshots attached
// via bench::attach_stats — e14) additionally get a serving-stats
// table: rejects by reason, batch-size p50/p99, server-side e2e p99.
// A malformed stats block is broken input (exit 3), same as a truncated
// report.
//
// Directory arguments are also scanned for tracez*.json — flight
// recorder dumps written by `hullserved --tracez-out` (iph::obs). Each
// dump contributes rows to a "Trace exemplars" table: the slowest
// request pinned per e2e latency bucket, with its span count and repro
// file, so a CI artifact page answers "what did the p99 outlier look
// like" without replaying the run. A malformed tracez dump is broken
// input (exit 3) like any other truncated artifact.
//
// Exit codes: 0 ok; 1 claim misfit or baseline drift under --check;
// 2 usage error; 3 an input file was unreadable, truncated, or not a
// bench report (returned even without --check, so CI can tell "the
// numbers regressed" from "the artifact is broken").
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cluster/stats.h"
#include "serve/stats.h"
#include "session/stats.h"
#include "stats/export.h"
#include "stats/stats.h"
#include "trace/json.h"
#include "trace/report.h"

namespace {

using iph::trace::Json;

struct Options {
  bool check = false;
  std::string baseline_dir;
  double tol = 0.0;
  std::string out_path;
  std::vector<std::string> inputs;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--check] [--baseline DIR] [--tol X] [--out FILE] "
               "<BENCH_*.json | tracez*.json | dir>...\n",
               argv0);
  return 2;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool is_bench_report_name(const std::string& fname) {
  return fname.rfind("BENCH_", 0) == 0 && fname.size() > 11 &&
         fname.compare(fname.size() - 5, 5, ".json") == 0;
}

/// Flight-recorder dumps (`hullserved --tracez-out`) conventionally
/// start with "tracez" — e.g. tracez.json, tracez_19911.json.
bool is_tracez_name(const std::string& fname) {
  return fname.rfind("tracez", 0) == 0 && fname.size() >= 11 &&
         fname.compare(fname.size() - 5, 5, ".json") == 0;
}

/// One parsed report plus the verdicts benchreport derives from it.
struct Loaded {
  std::string path;
  Json doc;
  std::string bench;
  std::size_t rows = 0;
  std::size_t claims_total = 0;
  std::size_t claims_ok = 0;
  bool claims_enforced = true;
  bool baseline_checked = false;
  iph::trace::CompareResult baseline;
  double peak_aux = -1;  // max over rows; -1 = not instrumented
  /// Parsed "stats" block: (tag, registry snapshot) per entry, in the
  /// report's order. Written by bench::attach_stats (e14).
  std::vector<std::pair<std::string, iph::stats::RegistrySnapshot>> stats;
};

/// Parse a report's optional "stats" block (tag -> iph-stats-v1
/// snapshot). Returns false — with a diagnostic — when the block is
/// present but malformed; that is broken input, not a missing feature.
bool load_stats_block(const Json& doc, const std::string& path,
                      std::vector<std::pair<std::string,
                                            iph::stats::RegistrySnapshot>>*
                          out) {
  const Json* stats = doc.find("stats");
  if (stats == nullptr) return true;
  if (!stats->is_object()) {
    std::fprintf(stderr,
                 "benchreport: %s: \"stats\" block is not an object\n",
                 path.c_str());
    return false;
  }
  for (const auto& [tag, j] : stats->members()) {
    iph::stats::RegistrySnapshot snap;
    std::string err;
    if (!iph::stats::from_json(j, snap, &err)) {
      std::fprintf(stderr,
                   "benchreport: %s: stats[\"%s\"] is not an "
                   "iph-stats-v1 snapshot: %s\n",
                   path.c_str(), tag.c_str(), err.c_str());
      return false;
    }
    out->emplace_back(tag, std::move(snap));
  }
  return true;
}

/// One parsed flight-recorder dump (tracez*.json).
struct LoadedTracez {
  std::string path;
  Json doc;
};

/// Parse a flight-recorder dump written by `hullserved --tracez-out`.
/// The shape contract (src/obs/chrome_export.cpp) is an object with
/// "traces" and "exemplars" arrays; anything else is a truncated or
/// foreign file — broken input, not a missing feature.
bool load_tracez_file(const std::string& path, LoadedTracez* out) {
  out->path = path;
  std::string text, err;
  if (!read_file(path, &text)) {
    std::fprintf(stderr, "benchreport: cannot read %s\n", path.c_str());
    return false;
  }
  if (!Json::parse(text, &out->doc, &err)) {
    std::fprintf(stderr,
                 "benchreport: %s is not a valid tracez dump: %s "
                 "(truncated upload or interrupted shutdown?)\n",
                 path.c_str(), err.c_str());
    return false;
  }
  const Json* traces = out->doc.find("traces");
  const Json* exemplars = out->doc.find("exemplars");
  if (!out->doc.is_object() || traces == nullptr || !traces->is_array() ||
      exemplars == nullptr || !exemplars->is_array()) {
    std::fprintf(stderr,
                 "benchreport: %s is not a tracez dump: expected an "
                 "object with \"traces\" and \"exemplars\" arrays\n",
                 path.c_str());
    return false;
  }
  return true;
}

/// The histogram bucket bound an exemplar is pinned under: a number in
/// ms, or the literal string "+Inf" for the overflow slot.
std::string exemplar_bucket(const Json& exemplar) {
  const Json* b = exemplar.find("bucket_le_ms");
  if (b == nullptr) return "?";
  if (b->is_string()) return b->as_string();
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", b->as_double());
  return buf;
}

/// Tail-latency exemplars preserved from the server's flight recorder:
/// the slowest request pinned per e2e latency bucket, across all dumps
/// fed to this run. The repro column is the replayable request file
/// `hullserved --repro-dir` captured for that exact outlier.
void render_tracez_section(const std::vector<LoadedTracez>& dumps,
                           std::FILE* out) {
  std::fprintf(out, "\n## Trace exemplars (flight recorder)\n\n");
  for (const LoadedTracez& d : dumps) {
    std::fprintf(out, "`%s`: %llu trace%s retained, %llu published, "
                 "%llu span%s dropped.\n",
                 std::filesystem::path(d.path).filename().string().c_str(),
                 static_cast<unsigned long long>(d.doc.get_num("retained")),
                 d.doc.get_num("retained") == 1 ? "" : "s",
                 static_cast<unsigned long long>(d.doc.get_num("published")),
                 static_cast<unsigned long long>(
                     d.doc.get_num("dropped_spans")),
                 d.doc.get_num("dropped_spans") == 1 ? "" : "s");
  }
  std::fprintf(out,
               "\n| dump | bucket ≤ ms | e2e ms | kind | status | "
               "backend | batch | trace | spans | repro |\n");
  std::fprintf(out, "|---|---|---|---|---|---|---|---|---|---|\n");
  std::size_t pinned = 0;
  for (const LoadedTracez& d : dumps) {
    const std::string fname =
        std::filesystem::path(d.path).filename().string();
    const Json* exemplars = d.doc.find("exemplars");
    if (exemplars == nullptr) continue;
    for (const Json& e : exemplars->items()) {
      const Json* t = e.find("trace");
      if (t == nullptr) continue;
      ++pinned;
      const Json* spans = t->find("spans");
      const std::string repro = t->get_str("repro");
      const std::string repro_cell =
          repro.empty() ? "-" : "`" + repro + "`";
      std::fprintf(out,
                   "| %s | %s | %.3f | %s | %s | %s | %.0f | %s | %zu "
                   "| %s |\n",
                   fname.c_str(), exemplar_bucket(e).c_str(),
                   t->get_num("e2e_ms"), t->get_str("kind", "?").c_str(),
                   t->get_str("status", "?").c_str(),
                   t->get_str("backend", "-").c_str(), t->get_num("batch"),
                   t->get_str("trace", "?").c_str(),
                   spans != nullptr ? spans->size() : 0,
                   repro_cell.c_str());
    }
  }
  if (pinned == 0) {
    std::fprintf(out,
                 "\nNo exemplars pinned (no completed requests crossed "
                 "a bucket's record, or tracing was disabled).\n");
  }
}

/// Largest peak_aux counter across a report's rows, or -1 if no row
/// carries one (bench not yet space-instrumented).
double max_peak_aux(const Json& doc) {
  double peak = -1;
  if (const Json* rows = doc.find("rows")) {
    for (const Json& row : rows->items()) {
      if (const Json* counters = row.find("counters")) {
        if (const Json* pa = counters->find("peak_aux")) {
          peak = std::max(peak, pa->as_double());
        }
      }
    }
  }
  return peak;
}

std::string format_cells(double v) {
  char buf[32];
  if (v < 0) return "-";
  if (v >= 1e6) {
    std::snprintf(buf, sizeof buf, "%.3gM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof buf, "%.3gk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  }
  return buf;
}

/// A row is a cluster row iff it carries a `backends` counter (the
/// e16-style fleet benches); such rows get the scaling table below
/// instead of the single-server serving columns.
const Json* cluster_counters(const Json& row) {
  const Json* counters = row.find("counters");
  if (counters != nullptr && counters->find("backends") != nullptr) {
    return counters;
  }
  return nullptr;
}

bool has_cluster_rows(const Json& doc) {
  if (const Json* rows = doc.find("rows")) {
    for (const Json& row : rows->items()) {
      if (cluster_counters(row) != nullptr) return true;
    }
  }
  return false;
}

/// Fleet scaling detail for cluster benches: aggregate throughput vs
/// fleet size with the ideal-normalized inefficiency the e16 claim
/// gates, plus the skew/churn documentation columns.
void render_cluster_table(const Json& doc, std::FILE* out) {
  std::fprintf(out, "\nCluster scaling (router + N backends):\n\n");
  std::fprintf(out,
               "| row | label | backends | qps | speedup | ideal | "
               "inefficiency | p99 ms | hot share |\n");
  std::fprintf(out, "|---|---|---|---|---|---|---|---|---|\n");
  const Json* rows = doc.find("rows");
  if (rows == nullptr) return;
  for (const Json& row : rows->items()) {
    const Json* c = cluster_counters(row);
    if (c == nullptr) continue;
    const Json* hot = c->find("hot_shard_share");
    char hot_cell[32] = "-";
    if (hot != nullptr) {
      std::snprintf(hot_cell, sizeof hot_cell, "%.2f", hot->as_double());
    }
    std::fprintf(out,
                 "| %s | %s | %.0f | %.0f | %.2fx | %.0f | %.2f | %.2f "
                 "| %s |\n",
                 row.get_str("name").c_str(), row.get_str("label").c_str(),
                 c->get_num("backends"), c->get_num("qps"),
                 c->get_num("speedup"), c->get_num("ideal"),
                 c->get_num("scaling_inefficiency"), c->get_num("p99_ms"),
                 hot_cell);
  }
}

/// A row is a serving row iff it carries a `qps` counter (the e14-style
/// latency/throughput benches) and is not a cluster row; such rows get
/// the serving table below.
const Json* serving_counters(const Json& row) {
  if (cluster_counters(row) != nullptr) return nullptr;
  const Json* counters = row.find("counters");
  if (counters != nullptr && counters->find("qps") != nullptr) {
    return counters;
  }
  return nullptr;
}

bool has_serving_rows(const Json& doc) {
  if (const Json* rows = doc.find("rows")) {
    for (const Json& row : rows->items()) {
      if (serving_counters(row) != nullptr) return true;
    }
  }
  return false;
}

/// Latency/throughput detail for serving benches: one line per row with
/// qps, solo-vs-served speedup, the e2e latency tail, and the mean
/// coalesced batch size.
void render_serving_table(const Json& doc, std::FILE* out) {
  std::fprintf(out, "\nServing latency/throughput:\n\n");
  std::fprintf(out,
               "| row | label | qps | qps solo | speedup | p50 ms | "
               "p95 ms | p99 ms | mean batch |\n");
  std::fprintf(out, "|---|---|---|---|---|---|---|---|---|\n");
  const Json* rows = doc.find("rows");
  if (rows == nullptr) return;
  for (const Json& row : rows->items()) {
    const Json* c = serving_counters(row);
    if (c == nullptr) continue;
    const double qps = c->get_num("qps");
    const double solo = c->get_num("qps_solo");
    std::fprintf(out,
                 "| %s | %s | %.0f | %.0f | %.2fx | %.2f | %.2f | %.2f "
                 "| %.1f |\n",
                 row.get_str("name").c_str(), row.get_str("label").c_str(),
                 qps, solo, solo > 0 ? qps / solo : 0,
                 c->get_num("p50_ms"), c->get_num("p95_ms"),
                 c->get_num("p99_ms"), c->get_num("mean_batch"));
  }
}

/// A row is a streaming row iff it carries the `delta_vs_scratch`
/// counter (the e15-style session benches).
const Json* streaming_counters(const Json& row) {
  const Json* counters = row.find("counters");
  if (counters != nullptr && counters->find("delta_vs_scratch") != nullptr) {
    return counters;
  }
  return nullptr;
}

bool has_streaming_rows(const Json& doc) {
  if (const Json* rows = doc.find("rows")) {
    for (const Json& row : rows->items()) {
      if (streaming_counters(row) != nullptr) return true;
    }
  }
  return false;
}

/// Streaming detail for session benches: amortized delta-append cost vs
/// the from-scratch rebuild it replaces, plus the delta/rebuild volume
/// and the per-session workspace watermark.
void render_streaming_table(const Json& doc, std::FILE* out) {
  std::fprintf(out, "\nStreaming appends (delta vs from-scratch):\n\n");
  std::fprintf(out,
               "| row | append ms | scratch ms | ratio | delta ops | "
               "rebuilds | peak aux |\n");
  std::fprintf(out, "|---|---|---|---|---|---|---|\n");
  const Json* rows = doc.find("rows");
  if (rows == nullptr) return;
  for (const Json& row : rows->items()) {
    const Json* c = streaming_counters(row);
    if (c == nullptr) continue;
    std::fprintf(out,
                 "| %s | %.4f | %.3f | %.4f | %.0f | %.0f | %s |\n",
                 row.get_str("name").c_str(), c->get_num("append_ms"),
                 c->get_num("scratch_ms"), c->get_num("delta_vs_scratch"),
                 c->get_num("delta_ops"), c->get_num("rebuilds"),
                 format_cells(c->get_num("peak_aux", -1)).c_str());
  }
}

/// A stats snapshot is a session snapshot iff any session instrument
/// was ever touched (sessions opened — the open counter moves first).
bool is_session_snapshot(const iph::stats::RegistrySnapshot& snap) {
  return snap.counter_or0(iph::session::statnames::kOpened) > 0;
}

/// A stats snapshot is a FLEET snapshot iff the router's forward
/// counter is present — only the cluster router registers it, and a
/// fleet_statz roll-up always merges the router's registry first.
/// Checked before the session classification: a merged fleet snapshot
/// may carry backend session counters too, and the fleet columns are
/// the ones that tell the router story.
bool is_fleet_snapshot(const iph::stats::RegistrySnapshot& snap) {
  return snap.counter(iph::cluster::statnames::kForwards) != nullptr;
}

/// Router roll-up detail: the routing/retry/markdown counters the
/// cluster smoke and hullload's router-aware scrape reconcile, next to
/// the merged backend serving totals they must reconcile AGAINST.
void render_fleet_stats_table(
    const std::vector<std::pair<std::string, iph::stats::RegistrySnapshot>>&
        stats,
    std::FILE* out) {
  namespace rn = iph::cluster::statnames;
  namespace sn = iph::serve::statnames;
  std::fprintf(out, "\nFleet stats (router roll-up):\n\n");
  std::fprintf(out,
               "| tag | forwards | fleet submitted | fleet completed | "
               "retries | rejected | markdowns | markups | rebuilds | "
               "forward p99 ms |\n");
  std::fprintf(out, "|---|---|---|---|---|---|---|---|---|---|\n");
  for (const auto& [tag, snap] : stats) {
    std::uint64_t retries = 0, rejected = 0, markdowns = 0, markups = 0;
    for (const auto& [name, v] : snap.counters) {
      if (name.rfind(rn::kRetriesBase, 0) == 0) retries += v;
      if (name.rfind(rn::kRejectedBase, 0) == 0) rejected += v;
      if (name.rfind(rn::kMarkdownsBase, 0) == 0) markdowns += v;
      if (name.rfind(rn::kMarkupsBase, 0) == 0) markups += v;
    }
    double fwd_p99 = 0;
    if (const iph::stats::HistogramSnapshot* h =
            snap.histogram(rn::kForwardMs)) {
      fwd_p99 = h->quantile(0.99);
    }
    std::fprintf(
        out,
        "| %s | %llu | %llu | %llu | %llu | %llu | %llu | %llu | %llu "
        "| %.2f |\n",
        tag.c_str(),
        static_cast<unsigned long long>(snap.counter_or0(rn::kForwards)),
        static_cast<unsigned long long>(snap.counter_or0(sn::kSubmitted)),
        static_cast<unsigned long long>(snap.counter_or0(sn::kCompleted)),
        static_cast<unsigned long long>(retries),
        static_cast<unsigned long long>(rejected),
        static_cast<unsigned long long>(markdowns),
        static_cast<unsigned long long>(markups),
        static_cast<unsigned long long>(snap.counter_or0(rn::kRingRebuilds)),
        fwd_p99);
  }
}

/// Session-registry detail: the counters hullload --stream reconciles
/// live, preserved in the run report.
void render_session_stats_table(
    const std::vector<std::pair<std::string, iph::stats::RegistrySnapshot>>&
        stats,
    std::FILE* out) {
  namespace sn = iph::session::statnames;
  std::fprintf(out, "\nStreaming stats (server-side session registry):\n\n");
  std::fprintf(out,
               "| tag | opened | closed | appends | points | rebuilds | "
               "mismatches | delta ops p99 | append p99 ms |\n");
  std::fprintf(out, "|---|---|---|---|---|---|---|---|---|\n");
  for (const auto& [tag, snap] : stats) {
    if (!is_session_snapshot(snap)) continue;
    double ops_p99 = 0, append_p99 = 0;
    if (const iph::stats::HistogramSnapshot* h =
            snap.histogram(sn::kDeltaOps)) {
      ops_p99 = h->quantile(0.99);
    }
    if (const iph::stats::HistogramSnapshot* h =
            snap.histogram(sn::kAppendMs)) {
      append_p99 = h->quantile(0.99);
    }
    std::fprintf(
        out, "| %s | %llu | %llu | %llu | %llu | %llu | %llu | %.1f | %.2f |\n",
        tag.c_str(),
        static_cast<unsigned long long>(snap.counter_or0(sn::kOpened)),
        static_cast<unsigned long long>(snap.counter_or0(sn::kClosed)),
        static_cast<unsigned long long>(snap.counter_or0(sn::kAppends)),
        static_cast<unsigned long long>(snap.counter_or0(sn::kAppendPoints)),
        static_cast<unsigned long long>(snap.counter_or0(sn::kRebuilds)),
        static_cast<unsigned long long>(
            snap.counter_or0(sn::kRebuildMismatch)),
        ops_p99, append_p99);
  }
}

/// Server-side registry detail: one line per attached stats snapshot
/// (bench::attach_stats tag), with the reject counters by reason, the
/// batch-size distribution, and the server-recorded e2e latency tail —
/// the numbers hullload --scrape reconciles live, here preserved in the
/// run report.
void render_stats_table(
    const std::vector<std::pair<std::string, iph::stats::RegistrySnapshot>>&
        stats,
    std::FILE* out) {
  namespace sn = iph::serve::statnames;
  std::fprintf(out, "\nServing stats (server-side registry):\n\n");
  std::fprintf(out,
               "| tag | submitted | completed | rej full | rej shutdown | "
               "expired | batch p50 | batch p99 | server e2e p99 ms |\n");
  std::fprintf(out, "|---|---|---|---|---|---|---|---|---|\n");
  for (const auto& [tag, snap] : stats) {
    double batch_p50 = 0, batch_p99 = 0, e2e_p99 = 0;
    if (const iph::stats::HistogramSnapshot* h =
            snap.histogram(sn::kBatchSize)) {
      batch_p50 = h->quantile(0.50);
      batch_p99 = h->quantile(0.99);
    }
    if (const iph::stats::HistogramSnapshot* h = snap.histogram(sn::kE2eMs)) {
      e2e_p99 = h->quantile(0.99);
    }
    std::fprintf(
        out,
        "| %s | %llu | %llu | %llu | %llu | %llu | %.1f | %.1f | %.2f |\n",
        tag.c_str(),
        static_cast<unsigned long long>(snap.counter_or0(sn::kSubmitted)),
        static_cast<unsigned long long>(snap.counter_or0(sn::kCompleted)),
        static_cast<unsigned long long>(snap.counter_or0(
            iph::stats::labeled(sn::kRejectedBase, "reason", "full"))),
        static_cast<unsigned long long>(snap.counter_or0(
            iph::stats::labeled(sn::kRejectedBase, "reason", "shutdown"))),
        static_cast<unsigned long long>(snap.counter_or0(sn::kExpired)),
        batch_p50, batch_p99, e2e_p99);
  }
}

std::string provenance_line(const Json& doc) {
  const Json* p = doc.find("provenance");
  if (p == nullptr) return "?";
  std::string s = p->get_str("git_sha", "?");
  s += ", " + p->get_str("build_type", "?");
  const Json* san = p->find("sanitize");
  if (san != nullptr && san->as_string() != "none") {
    s += "+" + san->as_string();
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, ", seed %llu, %llu thread%s",
                static_cast<unsigned long long>(p->get_num("seed")),
                static_cast<unsigned long long>(p->get_num("threads")),
                p->get_num("threads") == 1 ? "" : "s");
  return s + buf;
}

/// Worst (largest) band statistic across a claim's series, for the table.
double worst_stat(const Json& claim) {
  double worst = 0;
  if (const Json* series = claim.find("series")) {
    for (const Json& f : series->items()) {
      worst = std::max(worst, f.get_num("stat"));
    }
  }
  return worst;
}

void render_markdown(const std::vector<Loaded>& reports, std::FILE* out) {
  std::fprintf(out, "# Bench report summary\n\n");
  std::fprintf(out,
               "Generated by `tools/benchreport` from %zu report file%s.\n\n",
               reports.size(), reports.size() == 1 ? "" : "s");
  std::fprintf(out,
               "| bench | rows | claims | peak aux | status | provenance |\n");
  std::fprintf(out, "|---|---|---|---|---|---|\n");
  for (const Loaded& r : reports) {
    std::string status;
    if (!r.claims_enforced) {
      status = "claims skipped";
    } else {
      status = r.claims_ok == r.claims_total ? "ok" : "**MISFIT**";
    }
    if (r.baseline_checked) {
      status += r.baseline.ok ? ", baseline ok" : ", **baseline drift**";
    }
    std::fprintf(out, "| %s | %zu | %zu/%zu ok | %s | %s | %s |\n",
                 r.bench.c_str(), r.rows, r.claims_ok, r.claims_total,
                 format_cells(r.peak_aux).c_str(), status.c_str(),
                 provenance_line(r.doc).c_str());
  }
  std::fprintf(out,
               "\n\"peak aux\" is the largest `peak_aux` counter over the\n"
               "report's rows — the high-water auxiliary workspace (cells)\n"
               "the space ledger recorded; `-` means the bench is not\n"
               "space-instrumented.\n");
  for (const Loaded& r : reports) {
    std::fprintf(out, "\n## %s\n\n", r.bench.c_str());
    const Json* claims = r.doc.find("claims");
    if (claims == nullptr || claims->size() == 0) {
      std::fprintf(out, "No claims declared.\n");
    } else {
      std::fprintf(out,
                   "| claim | counter | shape | tol | band stat | status |\n");
      std::fprintf(out, "|---|---|---|---|---|---|\n");
      for (const Json& c : claims->items()) {
        const Json* ok = c.find("ok");
        std::fprintf(out, "| %s | %s | %s | %.3g | %.3g | %s |\n",
                     c.get_str("name").c_str(), c.get_str("counter").c_str(),
                     c.get_str("shape").c_str(), c.get_num("tol"),
                     worst_stat(c),
                     ok != nullptr && ok->as_bool() ? "ok" : "**MISFIT**");
      }
      // Per-series detail only where it matters.
      for (const Json& c : claims->items()) {
        const Json* ok = c.find("ok");
        if (ok != nullptr && ok->as_bool()) continue;
        std::fprintf(out, "\nMisfit detail for `%s`:\n\n",
                     c.get_str("name").c_str());
        if (const Json* err = c.find("error")) {
          std::fprintf(out, "- %s\n", err->as_string().c_str());
        }
        if (const Json* series = c.find("series")) {
          for (const Json& f : series->items()) {
            if (const Json* sok = f.find("ok"); sok && sok->as_bool()) {
              continue;
            }
            std::fprintf(out, "- `%s`: %s\n", f.get_str("series").c_str(),
                         f.get_str("detail").c_str());
          }
        }
      }
    }
    if (has_cluster_rows(r.doc)) render_cluster_table(r.doc, out);
    if (has_serving_rows(r.doc)) render_serving_table(r.doc, out);
    if (has_streaming_rows(r.doc)) render_streaming_table(r.doc, out);
    if (!r.stats.empty()) {
      // Fleet roll-ups (e16) are classified FIRST — a merged fleet
      // snapshot carries backend session counters too, but the router
      // columns are its story. Session snapshots (e15) then get the
      // streaming columns; everything else renders with the
      // batch-serving columns (e14).
      std::vector<std::pair<std::string, iph::stats::RegistrySnapshot>>
          serve_stats, session_stats, fleet_stats;
      for (const auto& entry : r.stats) {
        (is_fleet_snapshot(entry.second)       ? fleet_stats
         : is_session_snapshot(entry.second)   ? session_stats
                                               : serve_stats)
            .push_back(entry);
      }
      if (!fleet_stats.empty()) render_fleet_stats_table(fleet_stats, out);
      if (!serve_stats.empty()) render_stats_table(serve_stats, out);
      if (!session_stats.empty()) {
        render_session_stats_table(session_stats, out);
      }
    }
    if (r.baseline_checked) {
      std::fprintf(out, "\nBaseline: %zu rows compared, %zu diff%s%s\n",
                   r.baseline.rows_compared, r.baseline.diffs.size(),
                   r.baseline.diffs.size() == 1 ? "" : "s",
                   r.baseline.ok ? "." : ":");
      for (const std::string& d : r.baseline.diffs) {
        std::fprintf(out, "- %s\n", d.c_str());
      }
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--check") {
      opt.check = true;
    } else if (a == "--baseline" && i + 1 < argc) {
      opt.baseline_dir = argv[++i];
    } else if (a == "--tol" && i + 1 < argc) {
      opt.tol = std::strtod(argv[++i], nullptr);
    } else if (a == "--out" && i + 1 < argc) {
      opt.out_path = argv[++i];
    } else if (a == "--help" || a == "-h" || a.rfind("--", 0) == 0) {
      return usage(argv[0]);
    } else {
      opt.inputs.push_back(a);
    }
  }
  if (opt.inputs.empty()) return usage(argv[0]);

  // Expand directories, then load. Explicit file arguments are
  // classified by the same naming convention as the directory scan.
  std::vector<std::string> files;
  std::vector<std::string> tracez_files;
  for (const std::string& in : opt.inputs) {
    std::error_code ec;
    if (std::filesystem::is_directory(in, ec)) {
      for (const auto& e : std::filesystem::directory_iterator(in, ec)) {
        const std::string fname = e.path().filename().string();
        if (is_bench_report_name(fname)) {
          files.push_back(e.path().string());
        } else if (is_tracez_name(fname)) {
          tracez_files.push_back(e.path().string());
        }
      }
    } else if (is_tracez_name(
                   std::filesystem::path(in).filename().string())) {
      tracez_files.push_back(in);
    } else {
      files.push_back(in);
    }
  }
  std::sort(files.begin(), files.end());
  std::sort(tracez_files.begin(), tracez_files.end());
  if (files.empty() && tracez_files.empty()) {
    std::fprintf(stderr, "benchreport: no BENCH_*.json found\n");
    return 2;
  }

  bool failed = false;
  bool input_error = false;
  std::vector<Loaded> reports;
  for (const std::string& path : files) {
    Loaded r;
    r.path = path;
    std::string text, err;
    if (!read_file(path, &text)) {
      std::fprintf(stderr, "benchreport: cannot read %s\n", path.c_str());
      input_error = true;
      continue;
    }
    if (!Json::parse(text, &r.doc, &err)) {
      std::fprintf(stderr,
                   "benchreport: %s is not a valid bench report: %s "
                   "(truncated upload or interrupted bench run?)\n",
                   path.c_str(), err.c_str());
      input_error = true;
      continue;
    }
    if (r.doc.get_str("schema") != "iph-bench-report-v1") {
      std::fprintf(stderr,
                   "benchreport: %s is not a bench report: expected "
                   "schema \"iph-bench-report-v1\", found \"%s\"\n",
                   path.c_str(), r.doc.get_str("schema").c_str());
      input_error = true;
      continue;
    }
    r.bench = r.doc.get_str("bench", "?");
    if (const Json* rows = r.doc.find("rows")) r.rows = rows->size();
    if (const Json* enforced = r.doc.find("claims_enforced")) {
      r.claims_enforced = enforced->as_bool();
    }
    if (const Json* claims = r.doc.find("claims")) {
      for (const Json& c : claims->items()) {
        ++r.claims_total;
        const Json* ok = c.find("ok");
        if (ok != nullptr && ok->as_bool()) ++r.claims_ok;
      }
    }
    r.peak_aux = max_peak_aux(r.doc);
    if (!load_stats_block(r.doc, path, &r.stats)) input_error = true;
    if (r.claims_enforced && r.claims_ok != r.claims_total) failed = true;

    if (!opt.baseline_dir.empty()) {
      const std::string bpath =
          opt.baseline_dir + "/BENCH_" + r.bench + ".json";
      std::string btext, berr;
      Json bdoc;
      if (!read_file(bpath, &btext)) {
        std::fprintf(stderr, "benchreport: no baseline %s (skipping)\n",
                     bpath.c_str());
      } else if (!Json::parse(btext, &bdoc, &berr)) {
        std::fprintf(stderr,
                     "benchreport: baseline %s is not valid JSON: %s\n",
                     bpath.c_str(), berr.c_str());
        input_error = true;
      } else {
        r.baseline_checked = true;
        r.baseline =
            iph::trace::compare_counter_rows(r.doc, bdoc, opt.tol);
        if (!r.baseline.ok) failed = true;
      }
    }
    reports.push_back(std::move(r));
  }

  std::vector<LoadedTracez> tracez;
  for (const std::string& path : tracez_files) {
    LoadedTracez t;
    if (!load_tracez_file(path, &t)) {
      input_error = true;
      continue;
    }
    tracez.push_back(std::move(t));
  }

  std::FILE* out = stdout;
  if (!opt.out_path.empty()) {
    out = std::fopen(opt.out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "benchreport: cannot write %s\n",
                   opt.out_path.c_str());
      return 2;
    }
  }
  render_markdown(reports, out);
  if (!tracez.empty()) render_tracez_section(tracez, out);
  if (out != stdout) std::fclose(out);

  // Broken input is its own exit code (even without --check): a CI job
  // that fed us a truncated artifact should not read as "claims ok".
  if (input_error) return 3;
  return opt.check && failed ? 1 : 0;
}
