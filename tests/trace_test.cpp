// The iph::trace observability layer:
//   * claim-fit shapes and band semantics (trace/fit.h),
//   * JSON round-tripping (trace/json.h),
//   * recorder phase-tree aggregation and its determinism contract —
//     everything but wall-clock is a pure function of (input, seed),
//     bit-identical across hardware thread counts,
//   * combining-write conflict counts (writers - 1 per cell per step),
//   * attaching an observer never perturbs the PRAM metrics,
//   * chrome-trace export well-formedness,
//   * baseline row comparison (trace/report.h),
//   * phase coverage: no core algorithm issues anonymous steps.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "core/fallback2d.h"
#include "core/presorted_constant.h"
#include "core/presorted_logstar.h"
#include "core/unsorted2d.h"
#include "core/unsorted3d.h"
#include "geom/workloads.h"
#include "pram/cells.h"
#include "pram/machine.h"
#include "trace/chrome_trace.h"
#include "trace/fit.h"
#include "trace/json.h"
#include "trace/recorder.h"
#include "trace/report.h"

namespace iph {
namespace {

using trace::FitResult;
using trace::Json;
using trace::PhaseStats;
using trace::Recorder;
using trace::SeriesPoint;
using trace::Shape;

// --- claim-fit ---------------------------------------------------------

std::vector<SeriesPoint> series(std::initializer_list<double> xs,
                                std::initializer_list<double> ys) {
  std::vector<SeriesPoint> out;
  auto y = ys.begin();
  for (double x : xs) out.push_back({x, *y++, 0});
  return out;
}

TEST(Fit, ShapeNamesRoundTrip) {
  for (Shape s : {Shape::kFlat, Shape::kLogStar, Shape::kLogN, Shape::kLog2N,
                  Shape::kLinear, Shape::kNLogN, Shape::kNLogH,
                  Shape::kThetaAux, Shape::kBelowAux, Shape::kBelowConst,
                  Shape::kM4EpsDelta}) {
    Shape back{};
    ASSERT_TRUE(trace::shape_from_name(trace::shape_name(s), &back));
    EXPECT_EQ(back, s);
  }
  Shape ignored{};
  EXPECT_FALSE(trace::shape_from_name("quadratic", &ignored));
}

TEST(Fit, FlatBandPassesAndFails) {
  const auto ok = trace::fit_series(
      Shape::kFlat, series({1e3, 1e4, 1e5}, {20, 25, 30}), 2.0);
  EXPECT_TRUE(ok.ok) << ok.detail;
  EXPECT_NEAR(ok.stat, 1.5, 1e-9);
  // A linear counter sold as flat blows any sane band.
  const auto bad = trace::fit_series(
      Shape::kFlat, series({1e3, 1e4, 1e5}, {1e3, 1e4, 1e5}), 3.0);
  EXPECT_FALSE(bad.ok);
  EXPECT_NEAR(bad.stat, 100.0, 1e-9);
}

TEST(Fit, LogBandDistinguishesLogFromLinear) {
  // y = 7 log2 x: ratio band is exactly 1.
  std::vector<SeriesPoint> pts;
  for (double x : {1024.0, 16384.0, 262144.0}) {
    pts.push_back({x, 7 * std::log2(x), 0});
  }
  EXPECT_TRUE(trace::fit_series(Shape::kLogN, pts, 1.5).ok);
  // y = x against log n: band ~ x/log x range, far outside tol.
  EXPECT_FALSE(trace::fit_series(
                   Shape::kLogN, series({1024, 262144}, {1024, 262144}), 3.0)
                   .ok);
}

TEST(Fit, NLogHUsesAux) {
  // work ~ 60 * n log2 h with h in aux.
  std::vector<SeriesPoint> pts;
  for (double n : {4096.0, 65536.0}) {
    const double h = 2 * std::sqrt(n);
    pts.push_back({n, 60 * n * std::log2(h), h});
  }
  const auto f = trace::fit_series(Shape::kNLogH, pts, 1.5);
  EXPECT_TRUE(f.ok) << f.detail;
}

TEST(Fit, BelowShapesAreOneSided) {
  // kBelowAux: y <= tol * aux.
  std::vector<SeriesPoint> pts{{64, 50, 100}, {4096, 120, 100}};
  EXPECT_TRUE(trace::fit_series(Shape::kBelowAux, pts, 1.25).ok);
  EXPECT_FALSE(trace::fit_series(Shape::kBelowAux, pts, 1.1).ok);
  // kBelowConst: y <= tol.
  EXPECT_TRUE(
      trace::fit_series(Shape::kBelowConst, series({1, 2}, {3, 4}), 4.0).ok);
  EXPECT_FALSE(
      trace::fit_series(Shape::kBelowConst, series({1, 2}, {3, 5}), 4.0).ok);
}

TEST(Fit, EmptySeriesFails) {
  EXPECT_FALSE(trace::fit_series(Shape::kFlat, {}, 10.0).ok);
}

// --- JSON --------------------------------------------------------------

TEST(Json, RoundTrip) {
  Json doc = Json::object();
  doc["name"] = "e03";
  doc["count"] = std::uint64_t{123456789};
  doc["ratio"] = 2.5;
  doc["flag"] = true;
  Json arr = Json::array();
  arr.push_back(1);
  arr.push_back("two\n\"quoted\"");
  doc["list"] = std::move(arr);

  const std::string text = doc.dump(2);
  Json back;
  std::string err;
  ASSERT_TRUE(Json::parse(text, &back, &err)) << err;
  EXPECT_EQ(back.get_str("name"), "e03");
  EXPECT_EQ(back.find("count")->as_u64(), 123456789u);
  EXPECT_DOUBLE_EQ(back.get_num("ratio"), 2.5);
  EXPECT_TRUE(back.find("flag")->as_bool());
  ASSERT_EQ(back.find("list")->size(), 2u);
  EXPECT_EQ(back.find("list")->at(1).as_string(), "two\n\"quoted\"");
  // Integral numbers survive as integers (no 1.23457e+08 in reports).
  EXPECT_NE(text.find("123456789"), std::string::npos);
}

TEST(Json, ParseRejectsGarbage) {
  Json out;
  std::string err;
  EXPECT_FALSE(Json::parse("{\"a\": }", &out, &err));
  EXPECT_FALSE(err.empty());
  EXPECT_FALSE(Json::parse("[1, 2", &out, &err));
  EXPECT_FALSE(Json::parse("", &out, &err));
}

// --- recorder ----------------------------------------------------------

TEST(Recorder, AggregatesPhaseTree) {
  pram::Machine m(2, 7);
  Recorder rec;
  rec.attach(m);
  for (int round = 0; round < 3; ++round) {
    pram::Machine::Phase outer(m, "outer");
    m.step(100, [](std::uint64_t) {});
    {
      pram::Machine::Phase inner(m, "inner");
      m.step(10, [](std::uint64_t) {});
      m.step(10, [](std::uint64_t) {});
    }
  }
  m.step(5, [](std::uint64_t) {});  // anonymous
  m.set_observer(nullptr);

  EXPECT_TRUE(rec.quiescent());
  EXPECT_EQ(rec.max_depth(), 2u);
  EXPECT_EQ(rec.anonymous_steps(), 1u);
  const PhaseStats& root = rec.root();
  EXPECT_EQ(root.steps, 10u);  // 3 * (1 + 2) + 1
  EXPECT_EQ(root.work, 3 * (100 + 20) + 5u);

  const PhaseStats* outer = root.child("outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->invocations, 3u);
  EXPECT_EQ(outer->steps, 9u);
  EXPECT_EQ(outer->direct_steps, 3u);
  EXPECT_EQ(outer->work, 3 * (100 + 20u));
  EXPECT_EQ(outer->max_active, 100u);

  const PhaseStats* inner = outer->child("inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->invocations, 3u);
  EXPECT_EQ(inner->steps, 6u);
  EXPECT_EQ(inner->direct_steps, 6u);
  EXPECT_EQ(inner->work, 60u);
  // Sibling re-entries merged: exactly one child either level.
  EXPECT_EQ(root.children.size(), 1u);
  EXPECT_EQ(outer->children.size(), 1u);
}

TEST(Recorder, ChargeCountsLikeSteps) {
  pram::Machine m(1, 7);
  Recorder rec;
  rec.attach(m);
  {
    pram::Machine::Phase p(m, "analytic");
    m.charge(12, 1000);
  }
  m.set_observer(nullptr);
  const PhaseStats* node = rec.root().child("analytic");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->steps, 12u);
  EXPECT_EQ(node->work, 12000u);
}

TEST(Recorder, ConflictsAreWritersMinusOne) {
  pram::Machine m(4, 7);
  Recorder rec;
  rec.attach(m);  // turns conflict counting on
  pram::TallyCell tally;
  pram::MinCell mins[2];
  {
    pram::Machine::Phase p(m, "conflicts");
    // 8 writers on one tally cell: 7 conflicts.
    m.step(8, [&](std::uint64_t) { tally.write(); });
    // 6 writers split 3+3 over two min cells: 2+2 conflicts.
    m.step(6, [&](std::uint64_t pid) { mins[pid % 2].write(pid); });
    // Reads and owned writes: no conflicts.
    std::vector<std::uint64_t> own(16);
    m.step(16, [&](std::uint64_t pid) { own[pid] = tally.read(); });
  }
  m.set_observer(nullptr);
  const PhaseStats* node = rec.root().child("conflicts");
  ASSERT_NE(node, nullptr);
  EXPECT_EQ(node->cw_conflicts, 7u + 4u);
  EXPECT_EQ(m.metrics().cw_conflicts, 7u + 4u);
}

TEST(Recorder, ObserverDoesNotPerturbMetrics) {
  const auto pts = geom::in_disk(2000, 11);
  auto run = [&](bool observed) {
    pram::Machine m(4, 42);
    Recorder rec;
    if (observed) rec.attach(m);
    (void)core::unsorted_hull_2d(m, pts);
    m.set_observer(nullptr);
    return m.metrics();
  };
  const auto bare = run(false);
  const auto traced = run(true);
  EXPECT_EQ(bare.steps, traced.steps);
  EXPECT_EQ(bare.work, traced.work);
  EXPECT_EQ(bare.max_active, traced.max_active);
  EXPECT_EQ(bare.time_at_p, traced.time_at_p);
  // Only cw_conflicts may differ (counting is off in the bare run).
  EXPECT_EQ(bare.cw_conflicts, 0u);
}

/// Deterministic flattening of a phase tree: every field except wall
/// clock, in depth-first order.
void fingerprint(const PhaseStats& node, const std::string& path,
                 std::string* out) {
  char buf[256];
  std::snprintf(buf, sizeof buf, "%s inv=%llu steps=%llu work=%llu "
                "max=%llu cw=%llu direct=%llu\n",
                path.c_str(),
                static_cast<unsigned long long>(node.invocations),
                static_cast<unsigned long long>(node.steps),
                static_cast<unsigned long long>(node.work),
                static_cast<unsigned long long>(node.max_active),
                static_cast<unsigned long long>(node.cw_conflicts),
                static_cast<unsigned long long>(node.direct_steps));
  *out += buf;
  for (const auto& c : node.children) {
    fingerprint(*c, path + "/" + c->name, out);
  }
}

TEST(Recorder, TreeBitIdenticalAcrossThreadCounts) {
  const auto pts = geom::in_disk(3000, 5);
  auto run = [&](unsigned threads) {
    pram::Machine m(threads, 99);
    Recorder rec;
    rec.attach(m);
    (void)core::unsorted_hull_2d(m, pts);
    m.set_observer(nullptr);
    std::string fp;
    fingerprint(rec.root(), "", &fp);
    return fp;
  };
  const std::string base = run(1);
  std::vector<unsigned> sweep{2u, 4u, 8u};
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  if (std::find(sweep.begin(), sweep.end(), hw) == sweep.end() && hw != 1) {
    sweep.push_back(hw);
  }
  for (unsigned threads : sweep) {
    EXPECT_EQ(run(threads), base) << "threads=" << threads;
  }
}

// --- phase coverage: no anonymous steps in the core algorithms ----------

TEST(PhaseCoverage, CoreAlgorithmsNameEveryStep) {
  struct Case {
    const char* name;
    void (*run)(pram::Machine&);
  };
  const Case cases[] = {
      {"unsorted2d",
       [](pram::Machine& m) {
         const auto pts = geom::in_disk(1500, 3);
         (void)core::unsorted_hull_2d(m, pts);
       }},
      {"presorted_constant",
       [](pram::Machine& m) {
         auto pts = geom::gaussian2(2000, 3);
         geom::sort_lex(pts);
         (void)core::presorted_constant_hull(m, pts);
       }},
      {"presorted_logstar",
       [](pram::Machine& m) {
         auto pts = geom::in_square(6000, 3);
         geom::sort_lex(pts);
         (void)core::presorted_logstar_hull(m, pts);
       }},
      {"fallback2d",
       [](pram::Machine& m) {
         const auto pts = geom::with_duplicates(1200, 3);
         (void)core::fallback_hull_2d(m, pts);
       }},
      {"unsorted3d",
       [](pram::Machine& m) {
         const auto pts = geom::in_cube(700, 3);
         (void)core::unsorted_hull_3d(m, pts);
       }},
  };
  for (const Case& c : cases) {
    pram::Machine m(4, 17);
    Recorder rec;
    rec.attach(m);
    c.run(m);
    m.set_observer(nullptr);
    EXPECT_EQ(rec.anonymous_steps(), 0u)
        << c.name << " issued steps outside any named Machine::Phase";
    EXPECT_TRUE(rec.quiescent()) << c.name;
    EXPECT_GT(rec.root().steps, 0u) << c.name;
  }
}

// --- chrome trace export ------------------------------------------------

TEST(ChromeTrace, ExportIsWellFormed) {
  pram::Machine m(2, 7);
  Recorder rec;
  rec.attach(m);
  {
    pram::Machine::Phase a(m, "alpha");
    m.step(10, [](std::uint64_t) {});
    pram::Machine::Phase b(m, "beta");
    m.step(20, [](std::uint64_t) {});
  }
  m.set_observer(nullptr);

  const Json doc = trace::chrome_trace_json(rec);
  const Json* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  std::size_t spans = 0, pram_spans = 0;
  for (const Json& e : events->items()) {
    const std::string ph = e.get_str("ph");
    if (ph != "X") continue;
    ++spans;
    EXPECT_GE(e.get_num("dur"), 0.0);
    ASSERT_NE(e.find("ts"), nullptr);
    ASSERT_NE(e.find("name"), nullptr);
    if (e.get_num("tid") == 2) {
      ++pram_spans;
      const Json* args = e.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_GE(args->get_num("pram_step_close"),
                args->get_num("pram_step_open"));
    }
  }
  // Two phases => two wall spans + two PRAM-virtual-time spans.
  EXPECT_EQ(spans, 4u);
  EXPECT_EQ(pram_spans, 2u);
  // Round-trips through the parser.
  Json back;
  std::string err;
  EXPECT_TRUE(Json::parse(doc.dump(1), &back, &err)) << err;
}

// --- report / baseline compare ------------------------------------------

Json make_report(double steps, double wall) {
  Json row = Json::object();
  row["name"] = "e03/4096";
  Json counters = Json::object();
  counters["steps"] = steps;
  counters["wall_ms"] = wall;
  row["counters"] = std::move(counters);
  Json rows = Json::array();
  rows.push_back(std::move(row));
  Json doc = Json::object();
  doc["rows"] = std::move(rows);
  return doc;
}

TEST(Report, CompareCountersIgnoresWallClock) {
  const Json a = make_report(150, 10.0);
  const Json b = make_report(150, 99.0);  // wall differs wildly: fine
  const auto same = trace::compare_counter_rows(a, b, 0.0);
  EXPECT_TRUE(same.ok);
  EXPECT_EQ(same.rows_compared, 1u);

  const Json c = make_report(151, 10.0);  // deterministic counter drifted
  const auto diff = trace::compare_counter_rows(a, c, 0.0);
  EXPECT_FALSE(diff.ok);
  ASSERT_EQ(diff.diffs.size(), 1u);
  // Within tolerance passes.
  EXPECT_TRUE(trace::compare_counter_rows(a, c, 0.05).ok);
}

TEST(Report, ProvenanceIsSelfDescribing) {
  const Json p = trace::collect_provenance();
  EXPECT_FALSE(p.get_str("git_sha").empty());
  EXPECT_FALSE(p.get_str("build_type").empty());
  EXPECT_GE(p.get_num("threads"), 1.0);
}

TEST(Report, PhaseTableListsEveryNode) {
  pram::Machine m(1, 7);
  Recorder rec;
  rec.attach(m);
  {
    pram::Machine::Phase a(m, "a");
    m.step(4, [](std::uint64_t) {});
    pram::Machine::Phase b(m, "b");
    m.step(2, [](std::uint64_t) {});
  }
  m.set_observer(nullptr);
  const Json rows = trace::phase_table_json(rec.root());
  ASSERT_EQ(rows.size(), 3u);  // <root>, a, a/b
  EXPECT_EQ(rows.at(0).get_str("phase"), "<root>");
  EXPECT_EQ(rows.at(1).get_str("phase"), "a");
  EXPECT_EQ(rows.at(2).get_str("phase"), "a/b");
  EXPECT_EQ(rows.at(2).find("steps")->as_u64(), 1u);
}

}  // namespace
}  // namespace iph
