// Per-phase trace recorder for the PRAM simulator.
//
// A Recorder implements pram::PhaseObserver: attach one to a Machine
// (attach(), or Machine::set_observer) and every Machine::Phase
// open/close, every synchronous step, and every analytic charge() is
// folded into
//
//   * an AGGREGATED PHASE TREE — nodes keyed by (parent, name), merged
//     across re-entries, carrying PRAM steps, work, peak active
//     processors, combining-write conflicts, direct (own, non-child)
//     steps, invocation counts, and accumulated wall-clock; and
//   * a BOUNDED EVENT LOG — the first kMaxEvents raw open/close events
//     with wall and PRAM-step stamps, from which chrome_trace.h renders
//     a timeline (events past the cap are counted, not stored).
//
// All callbacks run on the host thread between steps, so the recorder
// needs no locking, and everything it records except the wall_ns /
// wall_us fields is a pure function of (input, seed) — bit-identical
// across hardware thread counts (trace_test locks this in).
//
// The implicit root node aggregates the whole run; steps issued while no
// phase is open land in root.direct_steps — `anonymous_steps()` — which
// the phase-coverage audit asserts to be zero for the core algorithms.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "pram/machine.h"

namespace iph::trace {

/// One node of the aggregated phase tree.
struct PhaseStats {
  std::string name;               ///< "" for the root.
  std::uint64_t invocations = 0;  ///< Times this (parent, name) opened.
  std::uint64_t steps = 0;        ///< PRAM steps, children included.
  std::uint64_t work = 0;         ///< PRAM work, children included.
  std::uint64_t max_active = 0;   ///< Peak active processors in any step.
  std::uint64_t cw_conflicts = 0; ///< Combining-write conflicts.
  std::uint64_t direct_steps = 0; ///< Steps while this node was innermost.
  std::uint64_t first_open_step = 0;  ///< Machine step index at first open.
  double wall_ns = 0;             ///< Accumulated host wall-clock.
  std::vector<std::unique_ptr<PhaseStats>> children;  // insertion order

  /// Child by name, or nullptr. Path lookup: child("a")->child("b").
  const PhaseStats* child(std::string_view child_name) const noexcept;
};

/// One raw phase event, for timeline export.
struct TraceEvent {
  enum class Kind : std::uint8_t { kOpen, kClose };
  Kind kind = Kind::kOpen;
  std::string name;        ///< Set for kOpen only.
  std::uint64_t step = 0;  ///< Machine step index at the event.
  double wall_us = 0;      ///< Microseconds since the recorder's epoch.
};

class Recorder final : public pram::PhaseObserver {
 public:
  /// Event-log cap; the aggregated tree is never truncated.
  static constexpr std::size_t kMaxEvents = 1u << 16;

  Recorder();
  ~Recorder() override;
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Attach to a machine: set_observer(this) + conflict counting on.
  void attach(pram::Machine& m) { m.set_observer(this); }

  // pram::PhaseObserver
  void on_phase_open(const std::string& name,
                     std::uint64_t step_index) override;
  void on_phase_close(std::uint64_t step_index) override;
  void on_step(std::uint64_t active, std::uint64_t conflicts) override;
  void on_charge(std::uint64_t steps, std::uint64_t work_per_step) override;

  const PhaseStats& root() const noexcept { return root_; }
  /// Steps (incl. charges) recorded while no named phase was open.
  std::uint64_t anonymous_steps() const noexcept {
    return root_.direct_steps;
  }
  /// Deepest phase nesting seen.
  std::size_t max_depth() const noexcept { return max_depth_; }

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  /// Events beyond kMaxEvents that were counted but not stored.
  std::uint64_t dropped_events() const noexcept { return dropped_events_; }
  /// True iff every open has been matched by a close (i.e. between runs).
  bool quiescent() const noexcept { return open_.size() == 1; }

 private:
  struct Frame {
    PhaseStats* node;
    double wall_open_ns;
  };

  void push_event(TraceEvent::Kind kind, const std::string& name,
                  std::uint64_t step);
  double now_ns() const;

  PhaseStats root_;
  std::vector<Frame> open_;  ///< Innermost last; [0] is the root.
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_events_ = 0;
  std::size_t max_depth_ = 0;
  std::uint64_t epoch_ns_ = 0;  ///< steady_clock at construction.
};

}  // namespace iph::trace
