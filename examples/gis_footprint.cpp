// gis_footprint — convex footprints of clustered spatial data.
//
//   build/examples/gis_footprint [clusters] [points_per_cluster]
//
// A GIS-flavoured scenario: sensor readings arrive grouped into
// geographic clusters; each cluster's convex footprint (full hull) is
// computed with the output-sensitive algorithm — exactly the regime the
// paper targets (h is tiny compared to n, so Theorem 5's O(n log h) work
// beats the O(n log n) baseline). The example prints per-cluster
// footprint sizes, the aggregate PRAM cost, and the comparison against
// running the non-output-sensitive fallback instead.
#include <cstdio>
#include <cstdlib>

#include "core/api.h"
#include "geom/workloads.h"
#include "support/rng.h"

int main(int argc, char** argv) {
  using namespace iph;
  const std::size_t clusters = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 12;
  const std::size_t per = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 20000;

  support::Rng rng(2026, 0xF00);
  std::uint64_t sensitive_work = 0, baseline_work = 0;
  std::printf("cluster |      n | footprint | T5 work  | fallback work\n");
  std::printf("--------+--------+-----------+----------+--------------\n");
  for (std::size_t c = 0; c < clusters; ++c) {
    // A dense Gaussian cluster, offset to its own map location.
    auto pts = geom::gaussian2(per, 9000 + c);
    const double ox = (rng.next_double() - 0.5) * 4.0e7;
    const double oy = (rng.next_double() - 0.5) * 4.0e7;
    for (auto& p : pts) {
      p.x = p.x * 0.02 + ox;  // tight cluster: tiny hull
      p.y = p.y * 0.02 + oy;
    }
    const FullHull2D foot = convex_hull_2d(pts);
    Options fb;
    fb.algo = Algo2D::kFallback;
    const Hull2D base = upper_hull_2d(pts, fb);
    sensitive_work += foot.metrics.work;
    baseline_work += base.metrics.work;
    std::printf("%7zu | %6zu | %9zu | %8llu | %llu\n", c, pts.size(),
                foot.vertices.size(),
                static_cast<unsigned long long>(foot.metrics.work),
                static_cast<unsigned long long>(base.metrics.work));
  }
  std::printf("\ntotal output-sensitive work : %llu\n",
              static_cast<unsigned long long>(sensitive_work));
  std::printf("total fallback work (upper hulls only): %llu\n",
              static_cast<unsigned long long>(baseline_work));
  std::printf("(Theorem 5 computes BOTH chains of each footprint; the\n"
              " fallback column is a single upper hull, so compare\n"
              " sensitive/2 against it. At this scale the asymptotic\n"
              " n log h vs n log n gap is offset by Theorem 5's larger\n"
              " constants — bench e04 sweeps the crossover, n = %zu.)\n",
              per);
  return 0;
}
