# Empty compiler generated dependencies file for onion_layers.
# This may be replaced when dependencies are built.
