// The presorted constant-time hull (Section 2.2-2.3, Lemma 2.5):
// upper hull of n presorted points, O(1) PRAM time, O(n log n)
// processors, failure probability <= 2^{-n^(1/16)}.
//
// Structure (the paper's):
//   * a complete binary tree "on top" of the points; the bridge at every
//     node whose range crosses a block boundary is found simultaneously —
//     every point stands by one virtual processor PER ANCESTOR (that is
//     the n log n processors) running in-place bridge finding;
//   * nodes smaller than the block threshold (the paper's log^3 n) are
//     resolved wholesale by the deterministic folklore hull (Lemma 2.4,
//     k = 3) on each block;
//   * failures are swept: compacted by Ragde's algorithm and re-solved
//     by brute force with n^(3/4) processors each (Section 2.3);
//   * each point then finds the highest ancestor whose bridge covers its
//     x (a batched Eppstein-Galil first-one over its ancestor list) —
//     that bridge is the hull edge above it.
#pragma once

#include <span>

#include "geom/hull_types.h"
#include "geom/point.h"
#include "pram/machine.h"

namespace iph::core {

struct PresortedConstantStats {
  std::uint64_t tree_problems = 0;   ///< bridge problems attempted
  std::uint64_t failures_swept = 0;  ///< problems fixed by failure sweep
  std::uint64_t retries = 0;         ///< oversized-problem retries
  bool sweep_ok = true;              ///< Ragde sweep stayed in budget
};

/// Upper hull + per-point edge pointers of lexicographically sorted pts.
/// alpha: the in-place-bridge iteration budget (the paper's constant).
geom::HullResult2D presorted_constant_hull(
    pram::Machine& m, std::span<const geom::Point2> pts,
    PresortedConstantStats* stats = nullptr, int alpha = 8);

}  // namespace iph::core
