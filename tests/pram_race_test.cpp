// Tests for the step-race discipline checker (pram/shadow.h), in both
// directions required of a checker:
//   1. injected violations ARE caught, with the right diagnostic payload
//      (step index, both pids, cell address, phase name);
//   2. the real algorithms are NOT flagged — every core hull algorithm
//      runs end-to-end under the checker with zero violations, which is
//      the mechanical proof of the concurrency discipline machine.h
//      documents.
// Tests assert on recorded violations rather than death: the tracker is
// switched to record-only via set_abort_on_race(false).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <tuple>
#include <vector>

#include "core/fallback2d.h"
#include "core/presorted_constant.h"
#include "core/presorted_logstar.h"
#include "core/unsorted2d.h"
#include "core/unsorted3d.h"
#include "geom/validate.h"
#include "geom/workloads.h"
#include "pram/cells.h"
#include "pram/machine.h"
#include "pram/shadow.h"
#include "support/env.h"

namespace iph::pram {
namespace {

struct CheckedMachine {
  Machine m;
  CheckedMachine(unsigned threads, std::uint64_t seed) : m(threads, seed) {
    m.enable_check();
    m.shadow()->set_abort_on_race(false);
  }
};

// --- direction 1: injected races are caught -------------------------------

TEST(RaceDetection, SameStepPlainWritesAreCaughtWithFullContext) {
  // One hardware thread: the injected *logical* race must not also be a
  // hardware data race, so this test stays clean under TSan — and it
  // doubles as proof the checker needs no real interleaving to fire.
  CheckedMachine cm(1, 1);
  Machine& m = cm.m;
  std::uint64_t victim = 0;
  const std::uint64_t racy_step = m.step_index();
  {
    Machine::Phase phase(m, "test/racy");
    m.step(64, [&](std::uint64_t pid) { tracked_write(pid, victim, pid); });
  }
  const auto vios = m.shadow()->violations();
  ASSERT_FALSE(vios.empty()) << "64 pids plain-wrote one cell";
  const ShadowViolation& v = vios.front();
  EXPECT_EQ(v.step, racy_step);
  EXPECT_EQ(v.addr, reinterpret_cast<std::uintptr_t>(&victim));
  EXPECT_NE(v.pid_first, v.pid_second);
  EXPECT_LT(v.pid_first, 64u);
  EXPECT_LT(v.pid_second, 64u);
  EXPECT_EQ(v.phase, "test/racy");
  EXPECT_FALSE(v.first_sanctioned);
  EXPECT_FALSE(v.second_sanctioned);
}

TEST(RaceDetection, PlainWriteRacingACombiningCellIsCaught) {
  CheckedMachine cm(2, 2);
  Machine& m = cm.m;
  std::uint64_t victim = 0;
  m.step(16, [&](std::uint64_t pid) {
    if (pid == 3) {
      tracked_write(pid, victim, std::uint64_t{7});
    } else {
      // What every cells.h write op does before its atomic op, aimed at
      // the same location the plain write claims to own.
      shadow_sanctioned_write(&victim);
    }
  });
  const auto vios = m.shadow()->violations();
  ASSERT_FALSE(vios.empty());
  EXPECT_TRUE(vios.front().first_sanctioned || vios.front().second_sanctioned);
  EXPECT_FALSE(vios.front().first_sanctioned &&
               vios.front().second_sanctioned);
}

TEST(RaceDetection, CaughtEvenOnOneHardwareThread) {
  // The checker is logical, not a data-race detector: a discipline
  // violation is found even when the simulator is single-threaded and
  // no hardware race can occur.
  CheckedMachine cm(1, 3);
  Machine& m = cm.m;
  std::uint64_t victim = 0;
  m.step(8, [&](std::uint64_t pid) { tracked_write(pid, victim, pid); });
  EXPECT_FALSE(cm.m.shadow()->violations().empty());
}

// --- the discipline rules, unit-level on a bare tracker -------------------

TEST(ShadowTracker, RulesMatrix) {
  int x = 0, y = 0;
  ShadowTracker t;
  t.set_abort_on_race(false);

  t.begin_step(10, "unit");
  t.on_plain_write(&x, 1);
  t.on_plain_write(&x, 1);  // same pid may rewrite: legal
  t.on_sanctioned_write(&y, 1);
  t.on_sanctioned_write(&y, 2);  // combining writes never race each other
  t.end_step();
  EXPECT_TRUE(t.violations().empty());

  t.begin_step(11, "unit");
  t.on_plain_write(&x, 2);  // new step: the step-10 claim by pid 1 is stale
  t.end_step();
  EXPECT_TRUE(t.violations().empty());

  t.begin_step(12, "unit");
  t.on_sanctioned_write(&x, 1);
  t.on_plain_write(&x, 2);  // plain racing sanctioned: violation
  t.end_step();
  ASSERT_EQ(t.violations().size(), 1u);
  EXPECT_TRUE(t.violations()[0].first_sanctioned);
  EXPECT_FALSE(t.violations()[0].second_sanctioned);
  t.clear_violations();

  t.begin_step(13, "unit");
  t.on_plain_write(&x, 1);
  t.on_sanctioned_write(&x, 2);  // and in the other order
  t.end_step();
  ASSERT_EQ(t.violations().size(), 1u);
  EXPECT_FALSE(t.violations()[0].first_sanctioned);
  EXPECT_TRUE(t.violations()[0].second_sanctioned);
}

TEST(ShadowTracker, CountsTrackedWrites) {
  ShadowTracker t;
  int x = 0;
  t.begin_step(0, "");
  for (int i = 0; i < 5; ++i) t.on_plain_write(&x, 0);
  t.on_sanctioned_write(&x, 0);
  t.end_step();
  EXPECT_EQ(t.tracked_writes(), 6u);
}

// --- direction 2: the real algorithms are clean ---------------------------

void expect_clean(Machine& m, const char* what) {
  ASSERT_NE(m.shadow(), nullptr);
  const auto vios = m.shadow()->violations();
  EXPECT_TRUE(vios.empty())
      << what << ": " << vios.size() << " violation(s); first at step "
      << (vios.empty() ? 0 : vios.front().step) << " phase \""
      << (vios.empty() ? "" : vios.front().phase) << "\"";
  EXPECT_GT(m.shadow()->tracked_writes(), 0u)
      << what << ": checker saw no writes — instrumentation missing?";
}

TEST(RaceDiscipline, Unsorted2DIsClean) {
  CheckedMachine cm(4, 42);
  const auto pts = geom::in_disk(1500, 7);
  const auto r = core::unsorted_hull_2d(cm.m, pts);
  std::string err;
  ASSERT_TRUE(geom::validate_upper_hull(pts, r.upper, &err)) << err;
  expect_clean(cm.m, "unsorted2d");
}

TEST(RaceDiscipline, PresortedConstantIsClean) {
  CheckedMachine cm(4, 43);
  auto pts = geom::gaussian2(2000, 11);
  geom::sort_lex(pts);
  const auto r = core::presorted_constant_hull(cm.m, pts);
  std::string err;
  ASSERT_TRUE(geom::validate_upper_hull(pts, r.upper, &err)) << err;
  expect_clean(cm.m, "presorted_constant");
}

TEST(RaceDiscipline, PresortedLogstarIsClean) {
  CheckedMachine cm(4, 44);
  auto pts = geom::in_square(4000, 13);
  geom::sort_lex(pts);
  const auto r = core::presorted_logstar_hull(cm.m, pts);
  std::string err;
  ASSERT_TRUE(geom::validate_upper_hull(pts, r.upper, &err)) << err;
  expect_clean(cm.m, "presorted_logstar");
}

TEST(RaceDiscipline, Unsorted3DIsClean) {
  CheckedMachine cm(4, 45);
  const auto pts = geom::in_cube(700, 17);
  const auto r = core::unsorted_hull_3d(cm.m, pts);
  std::string err;
  ASSERT_TRUE(geom::validate_hull3d(pts, r, true, &err)) << err;
  expect_clean(cm.m, "unsorted3d");
}

TEST(RaceDiscipline, Fallback2DIsClean) {
  CheckedMachine cm(4, 46);
  const auto pts = geom::with_duplicates(1200, 19);
  const auto r = core::fallback_hull_2d(cm.m, pts);
  std::string err;
  ASSERT_TRUE(geom::validate_upper_hull(pts, r.upper, &err)) << err;
  expect_clean(cm.m, "fallback2d");
}

// --- the checker must only observe ----------------------------------------

TEST(RaceDiscipline, CheckerDoesNotPerturbMetricsOrOutput) {
  const auto pts = geom::in_disk(1000, 23);
  auto run = [&](bool checked) {
    Machine m(2, 99);
    if (checked) {
      m.enable_check();
      m.shadow()->set_abort_on_race(false);
    }
    const auto r = core::unsorted_hull_2d(m, pts);
    return std::tuple{r.upper.vertices, m.metrics().steps, m.metrics().work,
                      m.step_index()};
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(RaceDiscipline, DisabledByDefaultAndTogglable) {
  Machine m(1, 0);
#if !defined(IPH_PRAM_CHECK_DEFAULT_ON)
  // (Unless the env knob or build option is on for this run.)
  if (!support::env_flag("IPH_PRAM_CHECK", false)) {
    EXPECT_FALSE(m.check_enabled());
  }
#endif
  m.enable_check();
  EXPECT_TRUE(m.check_enabled());
  m.disable_check();
  EXPECT_FALSE(m.check_enabled());
  // With the checker off, tracked_write is a plain store.
  std::uint64_t v = 0;
  m.step(1, [&](std::uint64_t pid) { tracked_write(pid, v, pid + 5); });
  EXPECT_EQ(v, 5u);
}

}  // namespace
}  // namespace iph::pram
