// iph::stats unit tests: instrument semantics (Prometheus `le`
// bucketing, quantile interpolation), snapshot/diff across resets, the
// labeled-name convention, both exporters (including from_json's strict
// rejection — benchreport's exit-3 contract depends on it), and a
// multi-threaded hammering test that demands EXACT final counts: the
// relaxed-atomic recording path must lose nothing. Run under TSan in CI
// (tsan-race-check builds the whole suite), where the same test also
// proves the recording path is data-race-free.
#include "stats/stats.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "stats/export.h"
#include "trace/json.h"

namespace iph::stats {
namespace {

#if defined(IPH_STATS_DISABLED)

// Under -DIPH_STATS_COMPILED_OUT=ON (the overhead-measurement knob)
// recording is an empty inline by contract: registries and snapshots
// keep working and read all-zero. That contract is the only thing to
// test in this configuration.
TEST(Stats, CompiledOutRecordingIsANoOp) {
  EXPECT_FALSE(kEnabled);
  Registry reg;
  Counter& c = reg.counter("c_total");
  Histogram& h = reg.histogram("h", {1.0});
  c.inc(5);
  h.record(0.5);
  EXPECT_EQ(c.value(), 0u);
  const RegistrySnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or0("c_total"), 0u);
  ASSERT_NE(snap.histogram("h"), nullptr);
  EXPECT_EQ(snap.histogram("h")->count, 0u);
}

#else

TEST(Counter, MonotonicAndDefaultStep) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetAndAddAreLevels) {
  Gauge g;
  g.set(7);
  g.add(-10);
  EXPECT_EQ(g.value(), -3);
}

TEST(Histogram, LeBucketSemantics) {
  // Prometheus `le`: a value equal to a bound lands in that bound's
  // bucket; past the last finite bound is the +Inf overflow slot.
  Histogram h({1.0, 2.0, 4.0});
  h.record(0.5);
  h.record(1.0);
  h.record(1.5);
  h.record(4.0);
  h.record(9.0);
  const HistogramSnapshot s = h.snapshot();
  ASSERT_EQ(s.buckets.size(), 4u);
  EXPECT_EQ(s.buckets[0], 2u);  // 0.5, 1.0
  EXPECT_EQ(s.buckets[1], 1u);  // 1.5
  EXPECT_EQ(s.buckets[2], 1u);  // 4.0
  EXPECT_EQ(s.buckets[3], 1u);  // 9.0 -> +Inf
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.sum, 16.0);
}

TEST(Histogram, BoundsAreSanitized) {
  Histogram h({4.0, 1.0, 1.0, 2.0});
  EXPECT_EQ(h.bounds(), (std::vector<double>{1.0, 2.0, 4.0}));
  EXPECT_EQ(h.bucket_count(), 4u);
}

TEST(Histogram, QuantileInterpolatesInsideBucket) {
  Histogram h({10.0, 20.0});
  for (int i = 0; i < 10; ++i) h.record(5.0);
  const HistogramSnapshot s = h.snapshot();
  // All mass in bucket (0, 10]: the median interpolates to its middle.
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 10.0);
}

TEST(Histogram, QuantileSaturatesAtLastFiniteBound) {
  Histogram h({10.0, 20.0});
  for (int i = 0; i < 4; ++i) h.record(30.0);  // all in +Inf
  const HistogramSnapshot s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.quantile(0.9), 20.0);
}

TEST(Histogram, QuantileOfEmptyIsZero) {
  Histogram h({1.0});
  EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.99), 0.0);
}

// Satellite acceptance test: N threads hammer one histogram (and one
// counter) concurrently; every record must land — final count, per-
// bucket tallies and the double sum are asserted EXACTLY. Values are
// small integers so the CAS-added sum is order-independent (integer
// adds in double are associative well below 2^53). TSan watches the
// interleavings when the suite runs under tsan-race-check.
TEST(Stats, ConcurrentRecordingLosesNothing) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  Registry reg;
  Counter& c = reg.counter("hits_total");
  Histogram& h = reg.histogram("val", {0.0, 1.0, 2.0, 3.0});
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h] {
      for (int j = 0; j < kPerThread; ++j) {
        c.inc();
        h.record(static_cast<double>(j % 5));  // 0..4, 4 -> +Inf
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const RegistrySnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.counter_or0("hits_total"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  const HistogramSnapshot* hs = snap.histogram("val");
  ASSERT_NE(hs, nullptr);
  constexpr std::uint64_t kPerBucket =
      static_cast<std::uint64_t>(kThreads) * (kPerThread / 5);
  ASSERT_EQ(hs->buckets.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(hs->buckets[i], kPerBucket);
  EXPECT_EQ(hs->count, static_cast<std::uint64_t>(kThreads) * kPerThread);
  // sum = threads * (count/5) * (0+1+2+3+4), exactly representable.
  EXPECT_DOUBLE_EQ(hs->sum, static_cast<double>(kPerBucket) * 10.0);
}

TEST(Registry, SameNameReturnsSameInstrument) {
  Registry reg;
  Counter& a = reg.counter("x_total");
  Counter& b = reg.counter("x_total");
  EXPECT_EQ(&a, &b);
  a.inc(3);
  EXPECT_EQ(b.value(), 3u);
  // Histogram bounds: first registration wins.
  Histogram& h1 = reg.histogram("h", {1.0, 2.0});
  Histogram& h2 = reg.histogram("h", {99.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(Snapshot, DiffSubtractsCountersAndBuckets) {
  Registry reg;
  Counter& c = reg.counter("c_total");
  Gauge& g = reg.gauge("depth");
  Histogram& h = reg.histogram("lat", {1.0, 2.0});
  c.inc(5);
  g.set(3);
  h.record(0.5);
  const RegistrySnapshot before = reg.snapshot();
  c.inc(2);
  g.set(9);
  h.record(1.5);
  h.record(1.5);
  const RegistrySnapshot d = reg.snapshot().diff(before);
  EXPECT_EQ(d.counter_or0("c_total"), 2u);
  // Gauges are levels, not rates: the diff keeps the current value.
  ASSERT_NE(d.gauge("depth"), nullptr);
  EXPECT_EQ(*d.gauge("depth"), 9);
  const HistogramSnapshot* hd = d.histogram("lat");
  ASSERT_NE(hd, nullptr);
  EXPECT_EQ(hd->buckets[0], 0u);
  EXPECT_EQ(hd->buckets[1], 2u);
  EXPECT_EQ(hd->count, 2u);
  EXPECT_DOUBLE_EQ(hd->sum, 3.0);
}

TEST(Snapshot, DiffAcrossResetTakesCurrentWholesale) {
  // A counter that went backwards means the source registry was
  // restarted between the snapshots; the diff is everything since.
  RegistrySnapshot earlier, later;
  earlier.counters.emplace_back("c_total", 10u);
  later.counters.emplace_back("c_total", 4u);
  HistogramSnapshot eh;
  eh.bounds = {1.0};
  eh.buckets = {7, 0};
  eh.count = 7;
  eh.sum = 3.5;
  HistogramSnapshot lh;
  lh.bounds = {1.0};
  lh.buckets = {2, 0};
  lh.count = 2;
  lh.sum = 1.0;
  earlier.histograms.emplace_back("h", eh);
  later.histograms.emplace_back("h", lh);
  const RegistrySnapshot d = later.diff(earlier);
  EXPECT_EQ(d.counter_or0("c_total"), 4u);
  const HistogramSnapshot* hd = d.histogram("h");
  ASSERT_NE(hd, nullptr);
  EXPECT_EQ(hd->count, 2u);
  EXPECT_EQ(hd->buckets[0], 2u);
}

TEST(Snapshot, DiffAgainstMismatchedShapeTakesCurrent) {
  HistogramSnapshot earlier, later;
  earlier.bounds = {1.0, 2.0};
  earlier.buckets = {1, 1, 0};
  earlier.count = 2;
  later.bounds = {5.0};
  later.buckets = {3, 1};
  later.count = 4;
  const HistogramSnapshot d = later.diff(earlier);
  EXPECT_EQ(d.count, 4u);
  EXPECT_EQ(d.bounds, later.bounds);
}

TEST(Labeled, BakesLabelIntoName) {
  EXPECT_EQ(labeled("iph_serve_rejected_total", "reason", "full"),
            "iph_serve_rejected_total{reason=\"full\"}");
}

TEST(Export, JsonRoundTrips) {
  Registry reg;
  reg.counter(labeled("rej_total", "reason", "full")).inc(3);
  reg.gauge("depth").set(-2);
  Histogram& h = reg.histogram("lat", {1.0, 2.0});
  h.record(0.5);
  h.record(5.0);
  const RegistrySnapshot snap = reg.snapshot();
  RegistrySnapshot back;
  std::string err;
  ASSERT_TRUE(from_json(to_json(snap), back, &err)) << err;
  EXPECT_EQ(back.counters, snap.counters);
  EXPECT_EQ(back.gauges, snap.gauges);
  ASSERT_EQ(back.histograms.size(), 1u);
  EXPECT_EQ(back.histograms[0].first, "lat");
  EXPECT_EQ(back.histograms[0].second.buckets, snap.histograms[0].second.buckets);
  EXPECT_EQ(back.histograms[0].second.count, snap.histograms[0].second.count);
  EXPECT_DOUBLE_EQ(back.histograms[0].second.sum, snap.histograms[0].second.sum);
}

TEST(Export, FromJsonRejectsMalformedInput) {
  RegistrySnapshot out;
  std::string err;
  trace::Json j;
  ASSERT_TRUE(trace::Json::parse("{\"schema\":\"wrong\"}", &j, &err));
  EXPECT_FALSE(from_json(j, out, &err));
  EXPECT_NE(err.find("schema"), std::string::npos);

  ASSERT_TRUE(trace::Json::parse(
      "{\"schema\":\"iph-stats-v1\",\"counters\":12,"
      "\"gauges\":{},\"histograms\":{}}",
      &j, &err));
  EXPECT_FALSE(from_json(j, out, &err));

  // Histogram whose buckets are not bounds+1 (a truncated upload).
  ASSERT_TRUE(trace::Json::parse(
      "{\"schema\":\"iph-stats-v1\",\"counters\":{},\"gauges\":{},"
      "\"histograms\":{\"h\":{\"bounds\":[1,2],\"buckets\":[0,1],"
      "\"count\":1,\"sum\":0.5}}}",
      &j, &err));
  EXPECT_FALSE(from_json(j, out, &err));
  EXPECT_NE(err.find("bounds+1"), std::string::npos);
}

TEST(Export, PrometheusShape) {
  Registry reg;
  reg.counter(labeled("rej_total", "reason", "full")).inc(3);
  reg.counter(labeled("rej_total", "reason", "shutdown")).inc(1);
  Histogram& h = reg.histogram(labeled("lat", "queue", "small"), {1.0});
  h.record(0.5);
  h.record(9.0);
  const std::string text = to_prometheus(reg.snapshot());
  // Labeled siblings share one TYPE line.
  EXPECT_EQ(text.find("# TYPE rej_total counter"),
            text.rfind("# TYPE rej_total counter"));
  EXPECT_NE(text.find("rej_total{reason=\"full\"} 3"), std::string::npos);
  // `le` is spliced into the existing label set; buckets are cumulative.
  EXPECT_NE(text.find("lat_bucket{queue=\"small\",le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("lat_bucket{queue=\"small\",le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("lat_count{queue=\"small\"} 2"), std::string::npos);
}

#endif  // IPH_STATS_DISABLED

}  // namespace
}  // namespace iph::stats
