// The O(log* n) presorted hull (Sections 2.4-2.6, Theorem 2).
//
// The paper's recursion: split the presorted input into groups of
// log^b n points, solve each group recursively (depth log* n), failure-
// sweep stragglers, then run the constant-time algorithm of Lemma 2.5 on
// the group hulls "acting like points" — legal because that algorithm is
// point-hull invariant (Observation 2.5): every primitive it performs on
// points has an O(1)-time counterpart on upper hulls (Atallah-Goodrich,
// chain_ops.h).
//
// Realization notes (DESIGN.md §8): the recursion bottoms out in the
// Lemma 2.5 constant-time hull once groups fit log^3 of the original
// size; the hull-of-hulls combine uses the lockstep tangent-merge
// tournament with radix sqrt(#groups) (two rounds, O(1) lockstep steps)
// — same time shape as Lemma 2.6, with the processor overshoot reported
// by bench e02. At laptop scales log*(n) <= 2 recursion levels.
#pragma once

#include <span>

#include "geom/hull_types.h"
#include "geom/point.h"
#include "pram/machine.h"

namespace iph::core {

struct LogstarStats {
  unsigned recursion_depth = 0;  ///< the log* levels actually taken
  std::uint64_t groups = 0;      ///< total groups across levels
};

/// Upper hull + per-point edge pointers of lexicographically sorted pts.
geom::HullResult2D presorted_logstar_hull(pram::Machine& m,
                                          std::span<const geom::Point2> pts,
                                          LogstarStats* stats = nullptr);

}  // namespace iph::core
