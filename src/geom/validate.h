// Validators: structural and semantic checks for hull results.
//
// These are the oracles the test suite and the failure-injection benches
// lean on. They are deliberately independent of the algorithms under test
// (no code shared with src/seq or src/core hull construction) and favour
// clarity over speed: validation is O(n log h) / O(n * f).
#pragma once

#include <span>
#include <string>

#include "geom/hull_types.h"
#include "geom/point.h"

namespace iph::geom {

/// Checks that `hull` is THE upper hull of `pts`:
///  * vertex x strictly increasing, first/last are the lex-min/max points,
///  * consecutive turns are strictly right (no collinear vertices kept),
///  * every input point lies on or below the chain.
/// On failure returns false and, if err != nullptr, a diagnostic.
bool validate_upper_hull(std::span<const Point2> pts, const UpperHull2D& hull,
                         std::string* err = nullptr);

/// Checks the per-point pointers of a HullResult2D: each point's edge
/// covers the point's x and has the point on or below its line.
bool validate_edge_above(std::span<const Point2> pts, const HullResult2D& r,
                         std::string* err = nullptr);

/// Checks a 3-d result: every facet has all points on or below its plane;
/// every point's facet pointer covers it in xy and dominates it in z.
/// `require_all_assigned` additionally demands facet_above[i] != kNone for
/// every point (degenerate inputs may legitimately leave points
/// unassigned when the upper hull is a point/segment).
bool validate_hull3d(std::span<const Point3> pts, const HullResult3D& r,
                     bool require_all_assigned = true,
                     std::string* err = nullptr);

/// The set of distinct vertex indices appearing in the facets of r,
/// sorted — used to compare against an oracle's upper-hull vertex set.
std::vector<Index> hull3d_vertex_set(const HullResult3D& r);

}  // namespace iph::geom
