// Exporters for stats::RegistrySnapshot.
//
// Two formats, one source of truth:
//   to_prometheus  text exposition (`# TYPE` lines, `_bucket{le=...}`
//                  cumulative histogram rows, `_sum`/`_count`) for
//                  eyeballs and standard scrapers.
//   to_json        the repo's trace::Json shape (schema
//                  "iph-stats-v1") — what hullserved's `statz` command
//                  returns, what hullload --scrape parses, and what
//                  bench reports embed for tools/benchreport.
//
// from_json is the strict inverse of to_json: it validates the schema
// tag and every field shape, because benchreport's bad-input contract
// (exit 3) depends on malformed stats blocks being *detected*, not
// skipped.
#pragma once

#include <string>

#include "stats/stats.h"
#include "trace/json.h"

namespace iph::stats {

/// Prometheus text exposition. Histogram buckets are cumulative and
/// carry `le` labels; a name that already has a `{label="v"}` suffix
/// (see labeled()) gets `le` spliced into the existing brace set.
std::string to_prometheus(const RegistrySnapshot& snap);

/// JSON shape:
///   {"schema":"iph-stats-v1",
///    "counters":{name: value, ...},
///    "gauges":{name: value, ...},
///    "histograms":{name: {"bounds":[...],"buckets":[...],
///                         "count":N,"sum":S}, ...}}
/// Counter values are exact as doubles up to 2^53 — far beyond any
/// realistic serving run.
trace::Json to_json(const RegistrySnapshot& snap);

/// Strict parse of the to_json shape. Returns false (and sets `err`
/// when non-null) on any schema/type/shape violation; `out` is left
/// unspecified on failure.
bool from_json(const trace::Json& j, RegistrySnapshot& out,
               std::string* err = nullptr);

}  // namespace iph::stats
