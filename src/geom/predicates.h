// Orientation predicates with static floating-point filters.
//
// All branching in the hull algorithms reduces to the sign of a small
// determinant. We evaluate in double with a forward error bound; if the
// result is not certain we re-evaluate in long double (64-bit mantissa on
// x86); for orient2d an exact fallback via error-free transformations
// (two-product / two-sum expansions, Shewchuk-style) settles every case.
// orient3d falls back to __float128 (113-bit mantissa), which is exact for
// the integer-valued coordinate ranges our degenerate-geometry tests use
// (|coord| < 2^26) and far below the noise floor for the random workloads.
//
// Sign conventions:
//   orient2d(a,b,c)  > 0  iff c lies to the LEFT of the directed line a->b
//                          (counterclockwise turn).
//   orient3d(a,b,c,d) > 0 iff d lies BELOW the plane through a,b,c when
//                          a,b,c appear counterclockwise seen from above
//                          (i.e. the signed volume of the tetrahedron
//                          (a,b,c,d) is positive).
#pragma once

#include "geom/point.h"

namespace iph::geom {

/// Sign of the 2x2 orientation determinant. Returns -1, 0 or +1.
int orient2d(const Point2& a, const Point2& b, const Point2& c) noexcept;

/// Exact sign of (b.x-a.x)(d.y-c.y) - (b.y-a.y)(d.x-c.x), i.e. the cross
/// product of vectors (a->b) and (c->d). orient2d(a,b,c) equals
/// cross_diff_sign(a,b,a,c). Used for exact slope comparisons in
/// Kirkpatrick-Seidel: sign(slope(ab) - slope(cd)) =
/// -cross_diff_sign(a,b,c,d) when b.x > a.x and d.x > c.x.
int cross_diff_sign(const Point2& a, const Point2& b, const Point2& c,
                    const Point2& d) noexcept;

/// Sign of the 3x3 orientation determinant. Returns -1, 0 or +1.
int orient3d(const Point3& a, const Point3& b, const Point3& c,
             const Point3& d) noexcept;

/// True iff p lies strictly below the line through a and b (a.x != b.x
/// is required; the line is interpreted as a graph over x).
/// For an upper-hull edge a->b with a.x < b.x, "below" is the inside.
inline bool strictly_below(const Point2& a, const Point2& b,
                           const Point2& p) noexcept {
  // With a.x < b.x, p below line ab <=> clockwise turn a->b->p.
  return orient2d(a, b, p) < 0;
}

/// True iff p lies on or below the line through a and b (a.x < b.x).
inline bool on_or_below(const Point2& a, const Point2& b,
                        const Point2& p) noexcept {
  return orient2d(a, b, p) <= 0;
}

/// True iff d lies strictly below the (non-vertical) plane through a,b,c.
/// Orientation-insensitive: works for either winding of (a,b,c).
bool strictly_below_plane(const Point3& a, const Point3& b, const Point3& c,
                          const Point3& d) noexcept;

/// True iff d lies on or below the (non-vertical) plane through a,b,c.
bool on_or_below_plane(const Point3& a, const Point3& b, const Point3& c,
                       const Point3& d) noexcept;

/// Sign of the xy-projected orientation of (a,b,c) — used for "does the
/// vertical line through q pierce triangle abc" tests in 3-d bridge
/// finding. Returns -1, 0, +1.
int orient2d_xy(const Point3& a, const Point3& b, const Point3& c) noexcept;

/// True iff the vertical line through q (its xy-projection) lies inside or
/// on the boundary of the xy-projection of triangle (a,b,c).
bool xy_in_triangle(const Point3& a, const Point3& b, const Point3& c,
                    const Point3& q) noexcept;

}  // namespace iph::geom
