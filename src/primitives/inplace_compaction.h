// In-place approximate compaction (Section 3.2, Lemma 3.2).
//
// Ragde's compaction (ragde.h) is not in-place: it addresses elements by
// their global index, which after compaction is lost. The paper's
// in-place variant keeps elements where they are and compacts a *group
// id* bit-array instead, iteratively refining groups:
//
//   split the m-array into m^(4e+d) groups; mark the groups holding a
//   non-zero; Ragde-compact those marks; split every surviving group
//   into m^d subgroups and repeat, (1-4e-d)/d = O(1) times, until groups
//   are singletons.
//
// Each iteration is O(1) PRAM steps and touches only the element's own
// cell plus O(m^(4e+d)) workspace, so the input array is never reordered.
// The caller's non-zero elements end up addressable through a compact
// slot table of size < 2*bound^2 <= bound^4.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pram/machine.h"

namespace iph::primitives {

struct InplaceCompactionResult {
  /// True iff every flagged element received a compact slot.
  bool ok = false;
  /// slots[j] = input index, or kRagdeEmpty (0xffffffff) for free slots.
  /// Size < 2*bound^2.
  std::vector<std::uint32_t> slots;
  /// Number of group-refinement iterations executed (the lemma's 1/delta).
  int iterations = 0;
  /// True iff any internal Ragde call used its tally fallback.
  bool used_fallback = false;
};

/// Compact the (at most `bound`) flagged elements of an array of size
/// flags.size() into a slot table of size O(bound^2), in O(1) PRAM steps,
/// without moving any input element. `delta` is the lemma's group-split
/// exponent (0 < delta < 1).
InplaceCompactionResult inplace_compact(pram::Machine& m,
                                        std::span<const std::uint8_t> flags,
                                        std::uint64_t bound,
                                        double delta = 0.25);

}  // namespace iph::primitives
