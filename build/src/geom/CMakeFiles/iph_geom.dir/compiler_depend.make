# Empty compiler generated dependencies file for iph_geom.
# This may be replaced when dependencies are built.
