# Empty dependencies file for iph_primitives.
# This may be replaced when dependencies are built.
