#include "primitives/primes.h"

#include "support/check.h"

namespace iph::primitives {

namespace {

bool is_prime(std::uint64_t x) {
  if (x < 2) return false;
  for (std::uint64_t d = 2; d * d <= x; ++d) {
    if (x % d == 0) return false;
  }
  return true;
}

}  // namespace

std::vector<std::uint64_t> primes_at_least(std::uint64_t lo,
                                           std::size_t count) {
  std::vector<std::uint64_t> out;
  out.reserve(count);
  std::uint64_t x = lo < 2 ? 2 : lo;
  while (out.size() < count) {
    if (is_prime(x)) out.push_back(x);
    ++x;
    IPH_CHECK(x < (std::uint64_t{1} << 40));  // runaway guard
  }
  return out;
}

}  // namespace iph::primitives
