#include "exec/radix.h"

#include <array>
#include <cstring>
#include <numeric>

namespace iph::exec {

namespace {

constexpr std::size_t kBuckets = 256;
constexpr std::size_t kPasses = 8;
/// Below this, parallel counting/scatter costs more than it saves.
constexpr std::size_t kParCutoff = std::size_t{1} << 15;
/// Slice grain for the parallel passes.
constexpr std::size_t kGrain = std::size_t{1} << 13;

using Hist = std::array<std::uint32_t, kBuckets>;

/// One stable counting-sort pass of `order` by digit `pass` of
/// keys[order[i]], global offsets precomputed in `hist`.
void scatter_seq(const std::vector<std::uint64_t>& keys, const Hist& hist,
                 std::size_t pass, std::vector<std::uint32_t>& order,
                 std::vector<std::uint32_t>& tmp) {
  Hist ofs;
  std::uint32_t run = 0;
  for (std::size_t d = 0; d < kBuckets; ++d) {
    ofs[d] = run;
    run += hist[d];
  }
  const unsigned shift = static_cast<unsigned>(pass * 8);
  for (const std::uint32_t idx : order) {
    const auto d = static_cast<std::size_t>((keys[idx] >> shift) & 0xff);
    tmp[ofs[d]++] = idx;
  }
  order.swap(tmp);
}

/// The same pass with per-slice counts + per-slice stable scatter; the
/// (digit, slice)-order prefix makes the result identical to
/// scatter_seq.
void scatter_par(const std::vector<std::uint64_t>& keys, std::size_t pass,
                 std::vector<std::uint32_t>& order,
                 std::vector<std::uint32_t>& tmp, ThreadPool& pool) {
  const std::size_t n = order.size();
  const std::size_t slices = pool.slice_count(n, kGrain);
  const unsigned shift = static_cast<unsigned>(pass * 8);
  std::vector<Hist> cnt(slices);
  pool.parallel_for(n, kGrain, [&](std::size_t b, std::size_t e,
                                   std::size_t s) {
    Hist h{};
    for (std::size_t i = b; i < e; ++i) {
      ++h[(keys[order[i]] >> shift) & 0xff];
    }
    cnt[s] = h;
  });
  std::uint32_t run = 0;
  for (std::size_t d = 0; d < kBuckets; ++d) {
    for (std::size_t s = 0; s < slices; ++s) {
      const std::uint32_t c = cnt[s][d];
      cnt[s][d] = run;
      run += c;
    }
  }
  pool.parallel_for(n, kGrain, [&](std::size_t b, std::size_t e,
                                   std::size_t s) {
    Hist ofs = cnt[s];
    for (std::size_t i = b; i < e; ++i) {
      const std::uint32_t idx = order[i];
      tmp[ofs[(keys[idx] >> shift) & 0xff]++] = idx;
    }
  });
  order.swap(tmp);
}

/// Stable LSD radix sort of `order` by keys[idx], skipping passes whose
/// digit is constant (the up-front histograms are permutation-
/// independent, so one counting sweep prices all 8 passes).
void sort_by_key(const std::vector<std::uint64_t>& keys,
                 std::vector<std::uint32_t>& order,
                 std::vector<std::uint32_t>& tmp, ThreadPool* pool) {
  const std::size_t n = order.size();
  std::array<Hist, kPasses> hist{};
  if (pool != nullptr && n >= kParCutoff) {
    const std::size_t slices = pool->slice_count(n, kGrain);
    std::vector<std::array<Hist, kPasses>> part(slices);
    pool->parallel_for(n, kGrain, [&](std::size_t b, std::size_t e,
                                      std::size_t s) {
      auto& h = part[s];
      for (std::size_t i = b; i < e; ++i) {
        std::uint64_t k = keys[i];
        for (std::size_t p = 0; p < kPasses; ++p, k >>= 8) {
          ++h[p][k & 0xff];
        }
      }
    });
    for (const auto& h : part) {
      for (std::size_t p = 0; p < kPasses; ++p) {
        for (std::size_t d = 0; d < kBuckets; ++d) hist[p][d] += h[p][d];
      }
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      std::uint64_t k = keys[i];
      for (std::size_t p = 0; p < kPasses; ++p, k >>= 8) {
        ++hist[p][k & 0xff];
      }
    }
  }
  for (std::size_t p = 0; p < kPasses; ++p) {
    bool constant = false;
    for (std::size_t d = 0; d < kBuckets; ++d) {
      if (hist[p][d] == n) {
        constant = true;
        break;
      }
    }
    if (constant) continue;
    if (pool != nullptr && n >= kParCutoff) {
      scatter_par(keys, p, order, tmp, *pool);
    } else {
      scatter_seq(keys, hist[p], p, order, tmp);
    }
  }
}

}  // namespace

std::uint64_t double_key(double d) noexcept {
  d += 0.0;  // -0.0 -> +0.0: lex_less cannot tell them apart
  std::uint64_t b;
  std::memcpy(&b, &d, sizeof b);
  return (b & (std::uint64_t{1} << 63)) ? ~b : (b | (std::uint64_t{1} << 63));
}

std::vector<std::uint32_t> lex_sort_indices(
    std::span<const geom::Point2> pts, ThreadPool* pool) {
  const std::size_t n = pts.size();
  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  if (n < 2) return order;
  std::vector<std::uint32_t> tmp(n);
  std::vector<std::uint64_t> keys(n);
  const bool par = pool != nullptr && n >= kParCutoff;
  // Stable LSD: secondary key (y) first, primary key (x) last.
  auto fill = [&](bool use_y) {
    auto body = [&](std::size_t b, std::size_t e, std::size_t) {
      for (std::size_t i = b; i < e; ++i) {
        keys[i] = double_key(use_y ? pts[i].y : pts[i].x);
      }
    };
    if (par) {
      pool->parallel_for(n, kGrain, body);
    } else {
      body(0, n, 0);
    }
  };
  fill(/*use_y=*/true);
  sort_by_key(keys, order, tmp, pool);
  fill(/*use_y=*/false);
  sort_by_key(keys, order, tmp, pool);
  return order;
}

}  // namespace iph::exec
