file(REMOVE_RECURSE
  "CMakeFiles/iph_seq.dir/chan2d.cpp.o"
  "CMakeFiles/iph_seq.dir/chan2d.cpp.o.d"
  "CMakeFiles/iph_seq.dir/giftwrap3d.cpp.o"
  "CMakeFiles/iph_seq.dir/giftwrap3d.cpp.o.d"
  "CMakeFiles/iph_seq.dir/graham.cpp.o"
  "CMakeFiles/iph_seq.dir/graham.cpp.o.d"
  "CMakeFiles/iph_seq.dir/kirkpatrick_seidel.cpp.o"
  "CMakeFiles/iph_seq.dir/kirkpatrick_seidel.cpp.o.d"
  "CMakeFiles/iph_seq.dir/quickhull2d.cpp.o"
  "CMakeFiles/iph_seq.dir/quickhull2d.cpp.o.d"
  "CMakeFiles/iph_seq.dir/quickhull3d.cpp.o"
  "CMakeFiles/iph_seq.dir/quickhull3d.cpp.o.d"
  "CMakeFiles/iph_seq.dir/upper_hull.cpp.o"
  "CMakeFiles/iph_seq.dir/upper_hull.cpp.o.d"
  "libiph_seq.a"
  "libiph_seq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iph_seq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
