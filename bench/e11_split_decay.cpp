// E11 — Lemmas 5.1 / 6.1: random-splitter recursion depth. The paper
// proves each subproblem shrinks below (15/16)^i n by level i w.h.p.,
// so the recursion depth is O(log n) (2-d) and the 3-d division takes
// O(log n) levels too.
//
// Reproduction target: measured levels / log_{16/15}(n) well below 1
// across sizes and seeds (the paper's bound is loose); the distribution
// of levels over seeds is tight.
#include <benchmark/benchmark.h>

#include <cmath>

#include "report.h"
#include "core/unsorted2d.h"
#include "core/unsorted3d.h"
#include "geom/workloads.h"
#include "pram/machine.h"

namespace {

void e11_2d(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr int kTrials = 10;
  std::uint64_t max_levels = 0, sum_levels = 0;
  for (auto _ : state) {
    max_levels = sum_levels = 0;
    for (int t = 0; t < kTrials; ++t) {
      const auto pts = iph::geom::in_disk(n, 600 + t);
      iph::pram::Machine m(1, t);
      iph::core::Unsorted2DStats stats;
      benchmark::DoNotOptimize(
          iph::core::unsorted_hull_2d(m, pts, &stats));
      max_levels = std::max(max_levels, stats.levels);
      sum_levels += stats.levels;
    }
  }
  const double bound =
      std::log(static_cast<double>(n)) / std::log(16.0 / 15.0);
  state.counters["mean_levels"] =
      static_cast<double>(sum_levels) / kTrials;
  state.counters["max_levels"] = static_cast<double>(max_levels);
  state.counters["paper_bound_15_16"] = bound;
  state.counters["max/bound"] = static_cast<double>(max_levels) / bound;
}

void e11_3d(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  constexpr int kTrials = 5;
  std::uint64_t max_levels = 0;
  for (auto _ : state) {
    max_levels = 0;
    for (int t = 0; t < kTrials; ++t) {
      const auto pts = iph::geom::extreme_k3(n, 12, 600 + t);
      iph::pram::Machine m(1, t);
      iph::core::Unsorted3DStats stats;
      benchmark::DoNotOptimize(
          iph::core::unsorted_hull_3d(m, pts, &stats));
      max_levels = std::max(max_levels, stats.levels);
    }
  }
  state.counters["max_levels"] = static_cast<double>(max_levels);
  state.counters["log2n"] = iph::bench::log2d(static_cast<double>(n));
}

}  // namespace

BENCHMARK(e11_2d)
    ->ArgsProduct({iph::bench::n_sweep({1 << 12, 1 << 15, 1 << 18})})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(e11_3d)
    ->ArgsProduct({iph::bench::n_sweep({1 << 10, 1 << 13})})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Lemmas 5.1 / 6.1: recursion depth stays far below the conservative
// log_{16/15} n bound in 2-d (measured 2-5% of it) and below log2 n in
// 3-d (EXPERIMENTS.md E11).
IPH_BENCH_MAIN("e11",
               {"2d-levels-below-bound", "max_levels", "below_aux", 1.0,
                "paper_bound_15_16", "", "e11_2d"},
               {"3d-levels-below-log2n", "max_levels", "below_aux", 1.0,
                "log2n", "", "e11_3d"})
