// NDJSON wire protocol shared by hullserved (server) and hullload
// (load generator). One JSON object per line, in both directions.
//
// Request line — either inline points or a named workload:
//   {"id": 7, "points": [[x0,y0],[x1,y1],...]}
//   {"id": 7, "n": 512, "workload": "disk", "seed": 42}
// Optional fields: "alpha" (in-place-bridge round budget, default 8),
// "deadline_ms" (relative deadline from receipt; expired-in-queue
// requests are answered "expired"), "edge_above" (bool; include the
// per-point edge-above array in the response — it is n entries, so off
// by default), "backend" ("pram" | "native" | "default"; which
// execution engine runs the request — "default", the default, defers
// to the server's --backend; unknown names are a parse error).
//
// Response line:
//   {"id": 7, "status": "ok", "hull": [3,17,...], "edge_count": 5,
//    "metrics": {"queue_wait_ms": ..., "exec_ms": ..., "e2e_ms": ...,
//                "batch_size": ..., "shard": ..., "steps": ...,
//                "work": ..., "max_active": ..., "seed": "<u64>",
//                "backend": "pram" | "native"}}
// The metrics "backend" is the engine that actually ran the request
// (always resolved — never "default"); native runs report zero PRAM
// steps/work/max_active (exec/backend.h cost-metric contract).
// Non-ok statuses ("rejected_full", "rejected_shutdown", "expired")
// omit "hull"/"edge_count". A line the server cannot parse is answered
// {"error": "..."} and the stream continues — the protocol never goes
// silent mid-stream.
//
// The metrics "seed" is serialized as a decimal string: it is a full
// 64-bit splitmix value and Json numbers are doubles.
//
// Tracing: a request may carry {"trace": {"id": "<hex>", "span":
// "<hex>"?}} — the trace id (1-16 hex digits, no 0x; hex because Json
// numbers are doubles and cannot hold a u64) is adopted verbatim as the
// request's server-side identity, and the optional "span" names the
// client's enclosing span (becomes the conceptual parent of the
// server-side root span). Requests without one get a server-stamped id
// (hullserved: connection << 32 | sequence, so ids are unique and
// monotonic per connection). Every response echoes the identity back as
// {"trace": {"id": "...", "span"?}}. A malformed "trace" field is a
// per-message {"error": ...} like any bad line — the stream continues.
//
// {"cmd": "tracez", "limit": N?, "order": "recent" | "slowest"?}
//   -> {"tracez": {"retained": .., "published": .., "dropped_spans": ..,
//       "exemplars": [{"bucket_le_ms": .., "trace": {...}}, ...],
//       "traces": [{"trace": "<hex>", "id": .., "kind": "request",
//         "status": "ok", "backend": .., "e2e_ms": ..,
//         "spans": [{"name": .., "span": .., "parent": ..,
//                    "start_us": .., "dur_us": ..}, ...]}, ...]}}
// answers from the server's flight recorder (obs/flight_recorder.h);
// "limit" defaults to 16 (0 = everything retained), "order" defaults to
// "recent". With tracing disabled (--obs-capacity 0) tracez is an
// {"error": ...}.
//
// Introspection: a line carrying {"cmd": "statz"} is not a hull request
// — the server answers it with a snapshot of its service-level metrics
// registry (src/serve/stats.h), in stream order (the statz answer is
// written after every previously submitted request's response):
//   {"cmd": "statz"}                         -> {"statz": <iph-stats-v1>}
//   {"cmd": "statz", "format": "prometheus"} -> {"statz_text": "<text>"}
// An unknown "cmd" is answered {"error": ...} like any bad line.
//
// Streaming sessions (src/session) share the stream with batch
// requests; all three are command lines:
//   {"cmd": "session_open", "backend": "native"?}
//     -> {"sid": 7, "status": "ok", "backend": "native"}
//     -> {"sid": 0, "status": "cap"}          (admission cap)
//   {"cmd": "session_append", "sid": 7, "points": [[x,y],...]}
//   {"cmd": "session_append", "sid": 7, "n": 64, "workload": "disk",
//    "seed": 3}                               (named batch, like requests)
//     -> {"sid": 7, "status": "ok",
//         "delta": [[side,pos,removed,x,y],...],   side: 0=upper 1=lower
//         "rebuilt": false, "rebuild_ms": 0.0}
//     -> {"sid": 7, "status": "unknown" | "closed" | "oversized"}
//   {"cmd": "session_close", "sid": 7}
//     -> {"sid": 7, "status": "ok", "summary": {"points": ..,
//         "appends": .., "rebuilds": .., "mismatches": ..,
//         "peak_aux_cells": .., "upper": .., "lower": ..}}
//     -> {"sid": 7, "status": "unknown" | "closed"}
// A delta entry [side, pos, removed, x, y] means: in chain `side`,
// at position `pos`, remove `removed` vertices and insert (x, y)
// there; replaying entries in array order reconstructs the chains
// exactly (session/session.h DeltaOp). "unknown" = the sid was never
// issued; "closed" = issued and already closed — the distinction is
// real because sids are monotonic. Malformed session lines (missing
// sid, bad points) get {"error": ...} and the stream continues.
//
// Versioning (src/cluster/protocol.h): every response line carries
// {"v": 1}. Requests may pin a "v"; a request pinning a version newer
// than this build speaks is answered with a structured reject. Error
// lines carry a machine-readable {"reject": "<reason>"} alongside the
// prose — bad_json / bad_request / unknown_cmd / version from a
// backend, plus the router-minted reasons listed in protocol.h.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/protocol.h"
#include "exec/backend.h"
#include "geom/workloads.h"
#include "obs/chrome_export.h"
#include "obs/context.h"
#include "serve/request.h"
#include "session/manager.h"
#include "stats/export.h"
#include "support/linechan.h"
#include "trace/json.h"

namespace iph::tools {

/// Both sides of the protocol speak through this (stdin/stdout or a
/// connected socket); shared with the cluster router via support/.
using LineChannel = support::LineChannel;

/// Generate a named 2-d workload (geom/workloads.h family names:
/// "circle", "disk", "square", ...). Returns false for unknown names.
inline bool make_workload(const std::string& name, std::size_t n,
                          std::uint64_t seed,
                          std::vector<geom::Point2>* out) {
  for (const geom::Family2D f : geom::kAllFamilies2D) {
    if (geom::family_name(f) == name) {
      *out = geom::make2d(f, n, seed);
      return true;
    }
  }
  return false;
}

/// Decode one request line. On success fills `out` (deadline resolved
/// against Clock::now()) and `want_edge_above`; on failure returns
/// false with a message in *err.
inline bool request_from_json(const trace::Json& j, serve::Request* out,
                              bool* want_edge_above, std::string* err) {
  if (!j.is_object()) {
    *err = "request is not a JSON object";
    return false;
  }
  *out = serve::Request{};
  out->id = static_cast<serve::RequestId>(j.get_num("id", 0));
  out->alpha = static_cast<int>(j.get_num("alpha", 8));
  if (const trace::Json* pts = j.find("points"); pts && pts->is_array()) {
    out->points.reserve(pts->size());
    for (const trace::Json& p : pts->items()) {
      if (!p.is_array() || p.size() != 2 || !p.at(0).is_number() ||
          !p.at(1).is_number()) {
        *err = "\"points\" entries must be [x, y] number pairs";
        return false;
      }
      out->points.push_back({p.at(0).as_double(), p.at(1).as_double()});
    }
  } else {
    const auto n = static_cast<std::size_t>(j.get_num("n", 0));
    const std::string workload = j.get_str("workload", "disk");
    const auto seed = static_cast<std::uint64_t>(j.get_num("seed", 0));
    if (n == 0) {
      *err = "request needs \"points\" or a positive \"n\"";
      return false;
    }
    if (!make_workload(workload, n, seed, &out->points)) {
      *err = "unknown workload \"" + workload + "\"";
      return false;
    }
  }
  if (const trace::Json* b = j.find("backend"); b != nullptr) {
    if (!b->is_string() ||
        !exec::parse_backend(b->as_string(), &out->backend)) {
      *err = "\"backend\" must be \"pram\", \"native\" or \"default\"";
      return false;
    }
  }
  if (const trace::Json* tr = j.find("trace"); tr != nullptr) {
    if (!tr->is_object()) {
      *err = "\"trace\" must be an object";
      return false;
    }
    const trace::Json* tid = tr->find("id");
    if (tid == nullptr || !tid->is_string() ||
        !obs::from_hex(tid->as_string(), &out->trace.trace_id)) {
      *err = "\"trace\".\"id\" must be a 1-16 digit hex string";
      return false;
    }
    if (const trace::Json* sp = tr->find("span"); sp != nullptr) {
      if (!sp->is_string() ||
          !obs::from_hex(sp->as_string(), &out->trace.parent_span)) {
        *err = "\"trace\".\"span\" must be a 1-16 digit hex string";
        return false;
      }
    }
  }
  if (const double ms = j.get_num("deadline_ms", 0); ms > 0) {
    out->deadline = serve::Clock::now() +
                    std::chrono::microseconds(
                        static_cast<std::int64_t>(ms * 1000.0));
  }
  const trace::Json* ea = j.find("edge_above");
  *want_edge_above = ea != nullptr && ea->as_bool();
  return true;
}

/// Encode one response line (see file comment for the shape).
inline trace::Json response_to_json(const serve::Response& r,
                                    bool edge_above) {
  trace::Json o = trace::Json::object();
  o["id"] = trace::Json(r.id);
  o["status"] = trace::Json(serve::status_name(r.status));
  if (r.status == serve::Status::kOk) {
    trace::Json hull = trace::Json::array();
    for (const geom::Index v : r.hull.upper.vertices) {
      hull.push_back(trace::Json(static_cast<std::uint64_t>(v)));
    }
    o["hull"] = std::move(hull);
    o["edge_count"] =
        trace::Json(static_cast<std::uint64_t>(r.hull.upper.edge_count()));
    if (edge_above) {
      trace::Json above = trace::Json::array();
      for (const geom::Index e : r.hull.edge_above) {
        above.push_back(trace::Json(static_cast<std::uint64_t>(e)));
      }
      o["edge_above"] = std::move(above);
    }
  }
  trace::Json m = trace::Json::object();
  m["queue_wait_ms"] = trace::Json(r.metrics.queue_wait_ms);
  m["exec_ms"] = trace::Json(r.metrics.exec_ms);
  m["e2e_ms"] = trace::Json(r.metrics.e2e_ms);
  m["batch_size"] = trace::Json(r.metrics.batch_size);
  m["shard"] = trace::Json(r.metrics.shard);
  m["steps"] = trace::Json(r.metrics.steps);
  m["work"] = trace::Json(r.metrics.work);
  m["max_active"] = trace::Json(r.metrics.max_active);
  m["seed"] = trace::Json(std::to_string(r.metrics.seed));
  m["backend"] = trace::Json(exec::backend_name(r.metrics.backend));
  o["metrics"] = std::move(m);
  if (r.trace.has_id()) {
    trace::Json t = trace::Json::object();
    t["id"] = trace::Json(obs::to_hex(r.trace.trace_id));
    if (r.trace.parent_span != 0) {
      t["span"] = trace::Json(obs::to_hex(r.trace.parent_span));
    }
    o["trace"] = std::move(t);
  }
  cluster::stamp_version(&o);
  return o;
}

/// True when `j` is a command line rather than a hull request; the
/// command name (e.g. "statz") is left in *cmd.
inline bool wire_command(const trace::Json& j, std::string* cmd) {
  if (!j.is_object()) return false;
  const trace::Json* c = j.find("cmd");
  if (c == nullptr || !c->is_string()) return false;
  *cmd = c->as_string();
  return true;
}

/// Encode a statz answer (see file comment for both shapes).
inline trace::Json statz_response(const stats::RegistrySnapshot& snap,
                                  bool prometheus) {
  trace::Json o = trace::Json::object();
  if (prometheus) {
    o["statz_text"] = trace::Json(stats::to_prometheus(snap));
  } else {
    o["statz"] = stats::to_json(snap);
  }
  cluster::stamp_version(&o);
  return o;
}

/// Decode a tracez command's arguments (after wire_command said
/// cmd == "tracez"). Absent "limit" means 16; absent "order" means
/// most-recent-first.
inline bool tracez_args_from_json(const trace::Json& j, std::size_t* limit,
                                  bool* slowest, std::string* err) {
  *limit = 16;
  *slowest = false;
  if (const trace::Json* l = j.find("limit"); l != nullptr) {
    if (!l->is_number() || l->as_double() < 0) {
      *err = "\"limit\" must be a non-negative number";
      return false;
    }
    *limit = static_cast<std::size_t>(l->as_double());
  }
  if (const trace::Json* o = j.find("order"); o != nullptr) {
    if (!o->is_string() || (o->as_string() != "recent" &&
                            o->as_string() != "slowest")) {
      *err = "\"order\" must be \"recent\" or \"slowest\"";
      return false;
    }
    *slowest = o->as_string() == "slowest";
  }
  return true;
}

/// Encode a tracez answer from the server's flight recorder.
inline trace::Json tracez_response(const obs::FlightRecorder& rec,
                                   std::size_t limit, bool slowest) {
  trace::Json o = trace::Json::object();
  o["tracez"] = obs::tracez_json(rec, limit, slowest);
  cluster::stamp_version(&o);
  return o;
}

/// Decode a session_open command line (after wire_command said
/// cmd == "session_open"). Absent "backend" means kDefault.
inline bool session_open_from_json(const trace::Json& j,
                                   exec::BackendKind* want,
                                   std::string* err) {
  *want = exec::BackendKind::kDefault;
  if (const trace::Json* b = j.find("backend"); b != nullptr) {
    if (!b->is_string() || !exec::parse_backend(b->as_string(), want)) {
      *err = "\"backend\" must be \"pram\", \"native\" or \"default\"";
      return false;
    }
  }
  return true;
}

/// Decode the sid of a session_append / session_close line. A missing
/// or non-positive "sid" is malformed (-> {"error": ...}), not
/// "unknown": unknown is reserved for well-formed ids never issued.
inline bool session_sid_from_json(const trace::Json& j, std::uint64_t* sid,
                                  std::string* err) {
  const trace::Json* s = j.find("sid");
  if (s == nullptr || !s->is_number() || s->as_double() < 1) {
    *err = "session command needs a positive \"sid\"";
    return false;
  }
  *sid = static_cast<std::uint64_t>(s->as_double());
  return true;
}

/// Decode a session_append line: sid plus inline "points" or a named
/// "n"/"workload"/"seed" batch (same generation as batch requests).
inline bool session_append_from_json(const trace::Json& j,
                                     std::uint64_t* sid,
                                     std::vector<geom::Point2>* pts,
                                     std::string* err) {
  if (!session_sid_from_json(j, sid, err)) return false;
  pts->clear();
  if (const trace::Json* p = j.find("points"); p && p->is_array()) {
    pts->reserve(p->size());
    for (const trace::Json& e : p->items()) {
      if (!e.is_array() || e.size() != 2 || !e.at(0).is_number() ||
          !e.at(1).is_number()) {
        *err = "\"points\" entries must be [x, y] number pairs";
        return false;
      }
      pts->push_back({e.at(0).as_double(), e.at(1).as_double()});
    }
    return true;
  }
  const auto n = static_cast<std::size_t>(j.get_num("n", 0));
  if (n == 0) {
    *err = "session_append needs \"points\" or a positive \"n\"";
    return false;
  }
  const std::string workload = j.get_str("workload", "disk");
  const auto seed = static_cast<std::uint64_t>(j.get_num("seed", 0));
  if (!make_workload(workload, n, seed, pts)) {
    *err = "unknown workload \"" + workload + "\"";
    return false;
  }
  return true;
}

/// Encode a session_open answer.
inline trace::Json session_open_response(session::SessionStatus st,
                                         const session::OpenInfo& info) {
  trace::Json o = trace::Json::object();
  o["sid"] = trace::Json(info.sid);
  o["status"] = trace::Json(session::session_status_name(st));
  if (st == session::SessionStatus::kOk) {
    o["backend"] = trace::Json(exec::backend_name(info.backend));
  }
  cluster::stamp_version(&o);
  return o;
}

/// Encode a session_append answer ("delta" only on ok — see the file
/// comment for the [side, pos, removed, x, y] entry shape).
inline trace::Json session_append_response(std::uint64_t sid,
                                           session::SessionStatus st,
                                           const session::AppendResult& res) {
  trace::Json o = trace::Json::object();
  o["sid"] = trace::Json(sid);
  o["status"] = trace::Json(session::session_status_name(st));
  if (st != session::SessionStatus::kOk) {
    cluster::stamp_version(&o);
    return o;
  }
  trace::Json delta = trace::Json::array();
  for (const session::DeltaOp& op : res.ops) {
    trace::Json e = trace::Json::array();
    e.push_back(trace::Json(static_cast<std::uint64_t>(op.side)));
    e.push_back(trace::Json(static_cast<std::uint64_t>(op.pos)));
    e.push_back(trace::Json(static_cast<std::uint64_t>(op.removed)));
    e.push_back(trace::Json(op.point.x));
    e.push_back(trace::Json(op.point.y));
    delta.push_back(std::move(e));
  }
  o["delta"] = std::move(delta);
  o["rebuilt"] = trace::Json(res.rebuilt);
  o["rebuild_ms"] = trace::Json(res.rebuild_ms);
  cluster::stamp_version(&o);
  return o;
}

/// Decode the delta array of a session_append answer back into ops
/// (the client-side replay path — hullload and session smoke use it).
inline bool delta_from_json(const trace::Json& reply,
                            std::vector<session::DeltaOp>* ops,
                            std::string* err) {
  ops->clear();
  const trace::Json* d = reply.is_object() ? reply.find("delta") : nullptr;
  if (d == nullptr || !d->is_array()) {
    *err = "no \"delta\" array in session_append reply";
    return false;
  }
  ops->reserve(d->size());
  for (const trace::Json& e : d->items()) {
    if (!e.is_array() || e.size() != 5) {
      *err = "delta entries must be [side, pos, removed, x, y]";
      return false;
    }
    session::DeltaOp op;
    op.side = e.at(0).as_double() == 0 ? session::Side::kUpper
                                       : session::Side::kLower;
    op.pos = static_cast<std::uint32_t>(e.at(1).as_double());
    op.removed = static_cast<std::uint32_t>(e.at(2).as_double());
    op.point = {e.at(3).as_double(), e.at(4).as_double()};
    ops->push_back(op);
  }
  return true;
}

/// Encode a session_close answer ("summary" only on ok).
inline trace::Json session_close_response(std::uint64_t sid,
                                          session::SessionStatus st,
                                          const session::CloseSummary& sum) {
  trace::Json o = trace::Json::object();
  o["sid"] = trace::Json(sid);
  o["status"] = trace::Json(session::session_status_name(st));
  if (st != session::SessionStatus::kOk) {
    cluster::stamp_version(&o);
    return o;
  }
  trace::Json s = trace::Json::object();
  s["points"] = trace::Json(sum.points_seen);
  s["appends"] = trace::Json(sum.appends);
  s["rebuilds"] = trace::Json(sum.rebuilds);
  s["mismatches"] = trace::Json(sum.rebuild_mismatches);
  s["peak_aux_cells"] = trace::Json(sum.peak_aux_cells);
  s["upper"] = trace::Json(sum.upper_size);
  s["lower"] = trace::Json(sum.lower_size);
  o["summary"] = std::move(s);
  cluster::stamp_version(&o);
  return o;
}

/// Decode a statz answer produced by statz_response (JSON format only —
/// the prometheus text shape is for humans/scrapers, not this parser).
inline bool statz_from_json(const trace::Json& j,
                            stats::RegistrySnapshot* out, std::string* err) {
  const trace::Json* s = j.is_object() ? j.find("statz") : nullptr;
  if (s == nullptr) {
    if (err != nullptr) *err = "no \"statz\" member in reply";
    return false;
  }
  return stats::from_json(*s, *out, err);
}

}  // namespace iph::tools
