#include "pram/allocation.h"

#include <cmath>

namespace iph::pram {

AllocationReport allocation_report(const Metrics& m) {
  AllocationReport r;
  r.ideal_time = m.steps;
  r.work = m.work;
  r.max_procs = m.max_active;
  for (std::size_t i = 0; i < kTrackedProcCounts.size(); ++i) {
    r.realized.emplace_back(kTrackedProcCounts[i], m.time_at_p[i]);
  }
  return r;
}

double matias_vishkin_time(std::uint64_t t, std::uint64_t w, std::uint64_t p,
                           double t_c) {
  if (p == 0) p = 1;
  const double log_t = t > 1 ? std::log2(static_cast<double>(t)) : 0.0;
  return static_cast<double>(t) + static_cast<double>(w) / p + t_c * log_t;
}

double matias_vishkin_work(std::uint64_t t, std::uint64_t w, std::uint64_t p,
                           double t_c) {
  if (p == 0) p = 1;
  const double log_t = t > 1 ? std::log2(static_cast<double>(t)) : 0.0;
  return static_cast<double>(p) * static_cast<double>(t) +
         static_cast<double>(w) + static_cast<double>(p) * t_c * log_t;
}

}  // namespace iph::pram
