# Empty dependencies file for e07_inplace_compaction.
# This may be replaced when dependencies are built.
