// Small prime utilities for the Ragde-style modulus-search compaction.
#pragma once

#include <cstdint>
#include <vector>

namespace iph::primitives {

/// The first `count` primes that are >= lo (simple segmented trial sieve;
/// results are memoized per (lo, count) call site pattern via an internal
/// growing sieve). Thread-compatible: callers invoke from host code only.
std::vector<std::uint64_t> primes_at_least(std::uint64_t lo,
                                           std::size_t count);

}  // namespace iph::primitives
