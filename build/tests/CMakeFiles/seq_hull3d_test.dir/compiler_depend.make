# Empty compiler generated dependencies file for seq_hull3d_test.
# This may be replaced when dependencies are built.
