// iph::exec — pluggable hull-execution backends.
//
// The repo has two ways to compute an upper hull: the metered CRCW PRAM
// simulator (the paper's machinery, every step synchronized and
// accounted) and — since this layer exists — a direct thread-parallel
// native engine that pays none of the simulator's per-step tax. Backend
// is the seam between them: the serving stack (src/serve) executes
// every request through a Backend*, selected per service or per
// request, and the differential-test harness (tests/exec_diff_test)
// runs the same inputs through both and holds the native engine to the
// simulator's answers.
//
// Semantics contract: all backends compute THE strict upper hull in the
// paper's output convention (geom/hull_types.h) — vertex x strictly
// increasing, no collinear interior vertices, per-point edge-above
// pointers — and must pass geom/validate's oracle verifiers on any
// input. Vertex *indices* may legitimately differ between backends when
// the input contains duplicate points (either duplicate is a correct
// hull vertex); vertex *coordinates* may not. The edge_above entry of a
// point whose x equals a hull vertex's may cite either incident edge
// (both are valid covers; the validator accepts either, and the
// backends' choices differ there). Each backend is individually
// deterministic: same points + seed -> same result.
//
// Cost-metric contract: HullRun carries pram::Metrics. The PRAM backend
// fills it with the simulator's real step/work/processor accounting;
// the native engine reports zeros — PRAM counters are properties of the
// simulation, and inventing pseudo-steps for native runs would poison
// the serving stack's exact PRAM reconciliation (serve/stats.h).
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "geom/hull_types.h"
#include "geom/point.h"
#include "pram/metrics.h"

namespace iph::exec {

/// Which engine a request runs on. kDefault defers to the service's
/// configured default (requests carry this; a resolved run never does).
enum class BackendKind : std::uint8_t { kDefault, kPram, kNative };

constexpr const char* backend_name(BackendKind k) noexcept {
  switch (k) {
    case BackendKind::kDefault:
      return "default";
    case BackendKind::kPram:
      return "pram";
    case BackendKind::kNative:
      return "native";
  }
  return "?";
}

/// Parse "pram" / "native" / "default". False on anything else.
bool parse_backend(std::string_view name, BackendKind* out) noexcept;

/// One finished hull computation: the result in the paper's output
/// convention plus the engine's cost counters (all-zero for engines
/// that do not simulate a PRAM; see file comment).
struct HullRun {
  geom::HullResult2D hull;
  pram::Metrics metrics;
};

class Backend {
 public:
  virtual ~Backend();

  virtual BackendKind kind() const noexcept = 0;
  const char* name() const noexcept { return backend_name(kind()); }

  /// Compute the upper hull of `pts`. `seed` is the request's derived
  /// randomized-CRCW seed and `alpha` the paper's in-place-bridge round
  /// budget — simulator knobs; deterministic engines may ignore both.
  /// Thread-safety is per-implementation: PramBackend requires external
  /// exclusivity over its machine (the serving layer's lease), the
  /// native engine accepts concurrent calls.
  virtual HullRun upper_hull(std::span<const geom::Point2> pts,
                             std::uint64_t seed, int alpha) = 0;

  /// Compute the upper hull of LEXICOGRAPHICALLY SORTED `pts`
  /// (duplicates allowed; geom::lex_less non-decreasing). Engines skip
  /// their sort stage: the native backend scans the span directly
  /// instead of radix-sorting a permutation, the PRAM backend runs the
  /// presorted algorithms (Lemma 2.5 / Theorem 2) instead of Theorem 5.
  /// The session layer's periodic rebuilds call this — a maintained
  /// hull chain is already sorted, so paying a sort to re-derive it
  /// would double the rebuild's work for nothing. Output and
  /// determinism contracts are identical to upper_hull. The default
  /// implementation defers to upper_hull (correct, no fast path).
  virtual HullRun upper_hull_presorted(std::span<const geom::Point2> pts,
                                       std::uint64_t seed, int alpha);
};

}  // namespace iph::exec
