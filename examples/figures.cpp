// figures — regenerate the paper's three illustrative figures as SVG.
//
//   build/examples/figures [output_dir]
//
//   figure1.svg  "The Use of Point-Hull Invariance": a set of small
//                upper hulls treated as points, with their common
//                tangent (the hull analogue of a line through 2 points).
//   figure2.svg  "2D convex hull by bridge-finding": a point set, a
//                splitter, and the bridge edge found above it.
//   figure3.svg  "Division of the point set" (3-d): the xy-projection of
//                a point set, the facet above a splitter, and the two
//                ridge chains dividing the plane into 4 regions.
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/unsorted2d.h"
#include "core/unsorted3d.h"
#include "geom/workloads.h"
#include "hulltools/chain_ops.h"
#include "pram/machine.h"
#include "primitives/brute_force_lp.h"
#include "seq/upper_hull.h"

namespace {

using iph::geom::Index;
using iph::geom::Point2;

struct Svg {
  std::string body;
  double minx = 1e30, miny = 1e30, maxx = -1e30, maxy = -1e30;

  void grow(double x, double y) {
    minx = std::min(minx, x);
    maxx = std::max(maxx, x);
    miny = std::min(miny, y);
    maxy = std::max(maxy, y);
  }
  void dot(double x, double y, const char* color, double r = 4) {
    grow(x, y);
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "<circle cx='%.1f' cy='%.1f' r='%.1f' fill='%s'/>\n", x,
                  -y, r, color);
    body += buf;
  }
  void line(double x1, double y1, double x2, double y2, const char* color,
            double w = 2) {
    grow(x1, y1);
    grow(x2, y2);
    char buf[200];
    std::snprintf(buf, sizeof buf,
                  "<line x1='%.1f' y1='%.1f' x2='%.1f' y2='%.1f' "
                  "stroke='%s' stroke-width='%.1f'/>\n",
                  x1, -y1, x2, -y2, color, w);
    body += buf;
  }
  void save(const std::string& path) {
    const double pad = 40;
    std::ofstream out(path);
    out << "<svg xmlns='http://www.w3.org/2000/svg' viewBox='"
        << (minx - pad) << " " << (-maxy - pad) << " "
        << (maxx - minx + 2 * pad) << " " << (maxy - miny + 2 * pad)
        << "'>\n<rect x='" << (minx - pad) << "' y='" << (-maxy - pad)
        << "' width='" << (maxx - minx + 2 * pad) << "' height='"
        << (maxy - miny + 2 * pad) << "' fill='white'/>\n"
        << body << "</svg>\n";
    std::printf("wrote %s\n", path.c_str());
  }
};

void draw_chain(Svg& svg, std::span<const Point2> pts,
                std::span<const Index> chain, const char* color) {
  for (std::size_t i = 0; i + 1 < chain.size(); ++i) {
    svg.line(pts[chain[i]].x, pts[chain[i]].y, pts[chain[i + 1]].x,
             pts[chain[i + 1]].y, color);
  }
}

void figure1(const std::string& dir) {
  // Three small hulls + the common tangent of the outer two.
  Svg svg;
  std::vector<Point2> pts;
  std::vector<iph::hulltools::Chain> chains;
  for (int g = 0; g < 3; ++g) {
    auto blob = iph::geom::in_disk(60, 7 + g);
    const std::size_t base = pts.size();
    for (auto& p : blob) {
      pts.push_back({p.x * 0.25e-3 + g * 700.0, p.y * 0.25e-3});
    }
    std::span<const Point2> sub(pts.data() + base, blob.size());
    auto h = iph::seq::upper_hull(sub);
    iph::hulltools::Chain c;
    for (Index v : h.vertices) c.push_back(static_cast<Index>(v + base));
    chains.push_back(std::move(c));
  }
  for (const auto& p : pts) svg.dot(p.x, p.y, "#bbbbbb", 2);
  for (const auto& c : chains) draw_chain(svg, pts, c, "#2266cc");
  iph::pram::Machine m(1);
  const auto [a, b] =
      iph::hulltools::common_tangent(m, pts, chains[0], chains[2], 4);
  svg.line(pts[a].x, pts[a].y, pts[b].x, pts[b].y, "#cc3322", 3);
  svg.dot(pts[a].x, pts[a].y, "#cc3322", 5);
  svg.dot(pts[b].x, pts[b].y, "#cc3322", 5);
  svg.save(dir + "/figure1.svg");
}

void figure2(const std::string& dir) {
  Svg svg;
  auto pts = iph::geom::in_disk(120, 5);
  for (auto& p : pts) {
    p.x *= 1e-3;
    p.y *= 1e-3;
  }
  for (const auto& p : pts) svg.dot(p.x, p.y, "#888888", 3);
  const Index splitter = 17;
  svg.dot(pts[splitter].x, pts[splitter].y, "#22aa44", 6);
  svg.line(pts[splitter].x, -1200, pts[splitter].x, 1200, "#22aa44", 1);
  iph::pram::Machine m(1);
  std::vector<Index> idx(pts.size());
  for (std::size_t i = 0; i < pts.size(); ++i) idx[i] = static_cast<Index>(i);
  const auto e = iph::primitives::brute_bridge_2d(m, pts, idx, splitter);
  svg.line(pts[e.first].x, pts[e.first].y, pts[e.second].x, pts[e.second].y,
           "#cc3322", 3);
  const auto hull = iph::seq::upper_hull(pts);
  draw_chain(svg, pts, hull.vertices, "#2266cc");
  svg.save(dir + "/figure2.svg");
}

void figure3(const std::string& dir) {
  Svg svg;
  auto pts3 = iph::geom::in_ball(400, 9);
  // xy-projection of the points.
  for (const auto& p : pts3) svg.dot(p.x * 1e-3, p.y * 1e-3, "#999999", 2);
  // Facet above a splitter + the two ridge chains from the 3-d run.
  iph::pram::Machine m(1);
  iph::core::Unsorted3DStats stats;
  const auto r = iph::core::unsorted_hull_3d(m, pts3, &stats);
  if (!r.facets.empty()) {
    const auto& f = r.facets[0];
    const double sx = 1e-3;
    svg.line(pts3[f.a].x * sx, pts3[f.a].y * sx, pts3[f.b].x * sx,
             pts3[f.b].y * sx, "#cc3322", 3);
    svg.line(pts3[f.b].x * sx, pts3[f.b].y * sx, pts3[f.c].x * sx,
             pts3[f.c].y * sx, "#cc3322", 3);
    svg.line(pts3[f.c].x * sx, pts3[f.c].y * sx, pts3[f.a].x * sx,
             pts3[f.a].y * sx, "#cc3322", 3);
  }
  // Ridges: xy-projections of the 3-d hull's silhouette edges (computed
  // from the facet adjacency: boundary edges of the facet tiling).
  for (const auto& f : r.facets) {
    svg.line(pts3[f.a].x * 1e-3, pts3[f.a].y * 1e-3, pts3[f.b].x * 1e-3,
             pts3[f.b].y * 1e-3, "#2266cc", 1);
  }
  svg.save(dir + "/figure3.svg");
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : ".";
  figure1(dir);
  figure2(dir);
  figure3(dir);
  return 0;
}
