// iph::serve — request/response vocabulary of the hull service.
//
// A Request is one 2-d upper-hull query: a point set, the paper's alpha
// knob, and an optional deadline. The service answers with a Response
// carrying the hull in the paper's output convention plus the
// per-request serving metrics (queue wait, batch size, PRAM steps/work,
// end-to-end latency) that feed the latency/throughput harness.
//
// Determinism contract: the randomized-CRCW seed a request executes
// under is derive_request_seed(master, id) — a splitmix of the service's
// master seed and the request id — so a request's result is a pure
// function of (points, id, alpha, master seed). In particular it does
// NOT depend on arrival order, on which shard ran it, or on which other
// requests were coalesced into the same batch: a batched run is
// bit-identical to a solo run of the same request (determinism_test
// locks this in).
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "exec/backend.h"
#include "geom/hull_types.h"
#include "geom/point.h"
#include "obs/context.h"
#include "support/rng.h"

namespace iph::serve {

using Clock = std::chrono::steady_clock;
using RequestId = std::uint64_t;

/// Milliseconds from `from` to `to` — THE timestamp-diff helper for the
/// serving stack. service.cpp, batcher.cpp and tools/hullload all used
/// to hand-roll this cast; keep new sites pointed here so every latency
/// number in the stack is computed the same way.
inline double ms_between(Clock::time_point from, Clock::time_point to) noexcept {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Terminal state of a request. Every submitted request gets exactly one
/// Response; rejections and expiries are Responses too, never silence.
enum class Status : std::uint8_t {
  kOk,                ///< Executed; hull and metrics are valid.
  kRejectedFull,      ///< Admission control: queue at capacity.
  kRejectedShutdown,  ///< Submitted after (or abandoned by) shutdown.
  kExpired,           ///< Deadline passed while waiting in the queue.
};

constexpr const char* status_name(Status s) noexcept {
  switch (s) {
    case Status::kOk:
      return "ok";
    case Status::kRejectedFull:
      return "rejected_full";
    case Status::kRejectedShutdown:
      return "rejected_shutdown";
    case Status::kExpired:
      return "expired";
  }
  return "?";
}

/// The randomized-CRCW seed request `id` executes under, given the
/// service's master seed (splitmix mixing, support/rng.h).
constexpr std::uint64_t derive_request_seed(std::uint64_t master_seed,
                                            RequestId id) noexcept {
  return support::mix3(master_seed, 0x73657276ULL /* "serv" */, id);
}

struct Request {
  RequestId id = 0;
  std::vector<geom::Point2> points;
  int alpha = 8;  ///< in-place-bridge round budget (core/api Options).
  /// Which execution engine runs this request (exec/backend.h):
  /// kDefault defers to ServiceConfig::backend. The determinism
  /// contract above is per-backend — each backend is deterministic in
  /// (points, id, alpha, master seed), but the two engines' hulls agree
  /// only up to duplicate-point index choice (backend.h semantics
  /// contract; the differential suite holds them to it).
  exec::BackendKind backend = exec::BackendKind::kDefault;
  /// Absolute deadline; default-constructed = none. A request found
  /// past its deadline at dequeue time is answered kExpired without
  /// executing (expiry is detected at dequeue, not by a timer).
  Clock::time_point deadline{};

  /// Tracing identity (obs/context.h). Unset (trace_id == 0) means the
  /// service stamps one at submit; a caller-supplied id is adopted
  /// verbatim and its parent_span becomes the root span's parent.
  obs::TraceContext trace;

  bool has_deadline() const noexcept {
    return deadline != Clock::time_point{};
  }
};

/// Per-request serving metrics. The PRAM counters (steps/work/
/// max_active, seed) are pure functions of the request; the wall-clock
/// fields are not.
struct RequestMetrics {
  double queue_wait_ms = 0;  ///< submit -> dequeued by a worker.
  double exec_ms = 0;        ///< PRAM run wall-clock.
  /// submit -> THIS request's result computed. Per-request, not
  /// batch-end: batch-mates that executed earlier in the arena report
  /// smaller e2e, so (e2e - queue_wait) is this request's own service
  /// time plus its wait for earlier batch-mates.
  double e2e_ms = 0;
  std::uint64_t batch_size = 0;  ///< Requests coalesced into the run.
  std::uint64_t shard = 0;       ///< MachinePool shard that ran it.
  std::uint64_t seed = 0;        ///< derive_request_seed(master, id).
  std::uint64_t steps = 0;       ///< PRAM time of this request alone.
  std::uint64_t work = 0;        ///< PRAM work of this request alone.
  std::uint64_t max_active = 0;  ///< Peak processors of this request.
  /// The engine that actually ran it — always resolved (kPram or
  /// kNative, never kDefault). Native runs report zero PRAM counters
  /// above (exec/backend.h cost-metric contract).
  exec::BackendKind backend = exec::BackendKind::kPram;
};

struct Response {
  RequestId id = 0;
  Status status = Status::kOk;
  geom::HullResult2D hull;  ///< Valid iff status == kOk.
  RequestMetrics metrics;
  /// The trace identity the request ran under (caller's id adopted
  /// verbatim, or the one the service stamped). Echoed on the wire so
  /// clients can join their latency tallies to server-side tracez.
  obs::TraceContext trace;
};

}  // namespace iph::serve
