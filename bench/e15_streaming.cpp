// E15 — streaming: amortized delta-append latency vs rebuilding from
// scratch. A streaming client holds a session open and appends points
// in small batches; the session maintains both hull chains in place
// (binary-search insert + neighborhood prune, src/session/session.h)
// and only rarely runs a full presorted rebuild as an audit. The
// alternative a sessionless deployment offers the same client is a
// batch request over ALL points seen so far on every append — so the
// claim prices exactly that: the mean wall-clock cost of one streaming
// append (delta + its amortized share of rebuild audits) divided by
// the cost of one from-scratch both-chain hull build over the full
// point set. Incremental work per append is O(K log h) amortized
// against O(n log n) for the scratch build, so the ratio must sit
// below 0.5 on every row and fall as n grows (EXPERIMENTS.md E15).
//
// The run goes through a real SessionManager (admission, per-session
// mutex, stats registry) rather than a bare HullSession, so the
// measured path is the one hullserved executes; the manager's registry
// snapshot is attached to the report under "stats"["n=<n>"] and the
// session counters must reconcile with the client tally exactly
// (appends, zero rejects, zero rebuild mismatches, gauges at zero
// after close) — any disagreement fails the row.
//
// Deterministic counters for the committed baseline: peak_aux is the
// per-session workspace watermark in ledger cells (2 cells per live
// chain vertex / pending point, plus the transient merge buffer of the
// largest rebuild audit) straight from the session's SpaceLease-style
// ledger — a pure function of the point sequence and the append
// chunking, pinned bit-exactly by bench/baselines/BENCH_e15.json.
// delta_ops and rebuilds ride along for the streaming table.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "report.h"
#include "exec/native_backend.h"
#include "geom/workloads.h"
#include "session/manager.h"
#include "session/stats.h"
#include "stats/export.h"
#include "stats/stats.h"

namespace {

constexpr std::uint64_t kMasterSeed = 0x19910722ULL;
constexpr std::size_t kAppendPoints = 64;  ///< client batch per append

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void e15(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<iph::geom::Point2> pts = iph::geom::in_disk(n, 2025);
  const std::size_t appends = (n + kAppendPoints - 1) / kAppendPoints;

  double append_ms = 0, scratch_ms = 0, ratio = 0;
  std::uint64_t delta_ops = 0, rebuilds = 0, peak_aux = 0, hull_vertices = 0;
  for (auto _ : state) {
    // Streaming: one session, the whole point set in kAppendPoints
    // batches, through the manager path hullserved uses.
    iph::stats::Registry registry;
    iph::session::ManagerConfig mc;
    mc.default_backend = iph::exec::BackendKind::kNative;
    mc.master_seed = kMasterSeed;
    iph::session::SessionManager mgr(mc, registry);
    iph::session::OpenInfo info;
    if (mgr.open(iph::exec::BackendKind::kNative, &info) !=
        iph::session::SessionStatus::kOk) {
      state.SkipWithError("session open rejected");
      return;
    }
    delta_ops = rebuilds = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < pts.size(); i += kAppendPoints) {
      const std::size_t take = std::min(kAppendPoints, pts.size() - i);
      iph::session::AppendResult res;
      if (mgr.append(info.sid,
                     std::span<const iph::geom::Point2>(pts.data() + i, take),
                     &res) != iph::session::SessionStatus::kOk ||
          res.rebuild_mismatch) {
        state.SkipWithError("append failed or rebuild audit mismatched");
        return;
      }
      delta_ops += res.ops.size();
      if (res.rebuilt) ++rebuilds;
    }
    append_ms = seconds_since(t0) * 1e3 / static_cast<double>(appends);
    iph::session::CloseSummary sum;
    if (mgr.close(info.sid, &sum) != iph::session::SessionStatus::kOk ||
        sum.rebuild_mismatches != 0 || sum.points_seen != pts.size()) {
      state.SkipWithError("close summary does not reconcile");
      return;
    }
    peak_aux = sum.peak_aux_cells;
    hull_vertices = sum.upper_size + sum.lower_size;

    // Scratch: what each append would cost without the session — a
    // full both-chain hull over every point seen. Both chains to match
    // what the session maintains; min over reps to price the
    // comparator favorably (any noise tightens the claim).
    iph::exec::NativeBackend scratch;
    std::vector<iph::geom::Point2> flipped;
    flipped.reserve(pts.size());
    for (const iph::geom::Point2& p : pts) flipped.push_back({p.x, -p.y});
    scratch_ms = 0;
    for (int rep = 0; rep < 3; ++rep) {
      const auto s0 = std::chrono::steady_clock::now();
      const iph::exec::HullRun up =
          scratch.upper_hull(pts, kMasterSeed, /*alpha=*/8);
      const iph::exec::HullRun lo =
          scratch.upper_hull(flipped, kMasterSeed, /*alpha=*/8);
      benchmark::DoNotOptimize(up.hull.upper.vertices.data());
      benchmark::DoNotOptimize(lo.hull.upper.vertices.data());
      const double ms = seconds_since(s0) * 1e3;
      if (rep == 0 || ms < scratch_ms) scratch_ms = ms;
    }
    ratio = append_ms / scratch_ms;

    // Server-side reconciliation (skipped in compiled-out stats builds,
    // where every instrument reads zero by design).
    if constexpr (!iph::stats::kEnabled) continue;
    namespace sn = iph::session::statnames;
    const iph::stats::RegistrySnapshot snap = registry.snapshot();
    const std::uint64_t rejects =
        snap.counter_or0(
            iph::stats::labeled(sn::kRejectedBase, "reason", "cap")) +
        snap.counter_or0(
            iph::stats::labeled(sn::kRejectedBase, "reason", "unknown")) +
        snap.counter_or0(
            iph::stats::labeled(sn::kRejectedBase, "reason", "closed")) +
        snap.counter_or0(
            iph::stats::labeled(sn::kRejectedBase, "reason", "oversized"));
    const std::int64_t* live = snap.gauge(sn::kLiveSessions);
    const std::int64_t* aux = snap.gauge(sn::kAuxCells);
    if (snap.counter_or0(sn::kAppends) != appends ||
        snap.counter_or0(sn::kAppendPoints) != pts.size() ||
        snap.counter_or0(sn::kRebuilds) != rebuilds ||
        snap.counter_or0(sn::kRebuildMismatch) != 0 || rejects != 0 ||
        live == nullptr || *live != 0 || aux == nullptr || *aux != 0) {
      state.SkipWithError("session stats registry does not reconcile");
      return;
    }
    iph::bench::attach_stats("n=" + std::to_string(n),
                             iph::stats::to_json(snap));
  }

  state.counters["append_ms"] = append_ms;
  state.counters["scratch_ms"] = scratch_ms;
  state.counters["delta_vs_scratch"] = ratio;
  state.counters["delta_ops"] = static_cast<double>(delta_ops);
  state.counters["rebuilds"] = static_cast<double>(rebuilds);
  state.counters["hull_vertices"] = static_cast<double>(hull_vertices);
  state.counters["peak_aux"] = static_cast<double>(peak_aux);
}

}  // namespace

BENCHMARK(e15)
    ->ArgsProduct({iph::bench::n_sweep({4096, 16384, 65536})})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// The streaming claim: the amortized cost of one delta append (chain
// insert + its share of rebuild audits) stays below half the cost of
// the from-scratch both-chain build a sessionless client would rerun
// per append — and the committed baseline pins the session's workspace
// watermark (peak_aux, in ledger cells) bit-exactly.
IPH_BENCH_MAIN("e15",
               {"delta-vs-scratch", "delta_vs_scratch", "below_const", 0.5,
                "", ""})
