#include "cluster/merge.h"

#include <cstddef>
#include <unordered_map>

namespace iph::cluster {

bool merge_snapshots(const std::vector<stats::RegistrySnapshot>& parts,
                     stats::RegistrySnapshot* out, std::string* err) {
  *out = stats::RegistrySnapshot{};
  std::unordered_map<std::string, std::size_t> counter_at;
  std::unordered_map<std::string, std::size_t> gauge_at;
  std::unordered_map<std::string, std::size_t> hist_at;
  for (const stats::RegistrySnapshot& part : parts) {
    for (const auto& [name, value] : part.counters) {
      const auto [it, fresh] =
          counter_at.emplace(name, out->counters.size());
      if (fresh) {
        out->counters.emplace_back(name, value);
      } else {
        out->counters[it->second].second += value;
      }
    }
    for (const auto& [name, value] : part.gauges) {
      const auto [it, fresh] = gauge_at.emplace(name, out->gauges.size());
      if (fresh) {
        out->gauges.emplace_back(name, value);
      } else {
        out->gauges[it->second].second += value;
      }
    }
    for (const auto& [name, hist] : part.histograms) {
      const auto [it, fresh] = hist_at.emplace(name, out->histograms.size());
      if (fresh) {
        out->histograms.emplace_back(name, hist);
        continue;
      }
      stats::HistogramSnapshot& acc = out->histograms[it->second].second;
      if (acc.bounds != hist.bounds ||
          acc.buckets.size() != hist.buckets.size()) {
        if (err != nullptr) {
          *err = "histogram \"" + name +
                 "\": bucket bounds differ across snapshots";
        }
        return false;
      }
      for (std::size_t b = 0; b < acc.buckets.size(); ++b) {
        acc.buckets[b] += hist.buckets[b];
      }
      acc.count += hist.count;
      acc.sum += hist.sum;
    }
  }
  return true;
}

}  // namespace iph::cluster
