# Empty dependencies file for seq_hull2d_test.
# This may be replaced when dependencies are built.
