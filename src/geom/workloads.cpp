#include "geom/workloads.h"

#include <algorithm>
#include <cmath>

#include "support/check.h"
#include "support/rng.h"

namespace iph::geom {

namespace {

using support::Rng;

constexpr double kPi = 3.14159265358979323846;
constexpr double kScale = 1.0e6;  // base coordinate magnitude

double gauss(Rng& rng) {
  // Box-Muller (one value; wastes the pair partner for simplicity).
  double u1 = rng.next_double();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = rng.next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * kPi * u2);
}

}  // namespace

std::vector<Point2> on_circle(std::size_t n, std::uint64_t seed) {
  Rng rng(seed, 0xC19C1E);
  std::vector<Point2> pts(n);
  for (auto& p : pts) {
    const double t = rng.next_double() * 2.0 * kPi;
    p = {kScale * std::cos(t), kScale * std::sin(t)};
  }
  return pts;
}

std::vector<Point2> in_disk(std::size_t n, std::uint64_t seed) {
  Rng rng(seed, 0xD15C);
  std::vector<Point2> pts(n);
  for (auto& p : pts) {
    const double t = rng.next_double() * 2.0 * kPi;
    const double r = kScale * std::sqrt(rng.next_double());
    p = {r * std::cos(t), r * std::sin(t)};
  }
  return pts;
}

std::vector<Point2> in_square(std::size_t n, std::uint64_t seed) {
  Rng rng(seed, 0x5CAAE);
  std::vector<Point2> pts(n);
  for (auto& p : pts) {
    p = {(rng.next_double() * 2.0 - 1.0) * kScale,
         (rng.next_double() * 2.0 - 1.0) * kScale};
  }
  return pts;
}

std::vector<Point2> gaussian2(std::size_t n, std::uint64_t seed) {
  Rng rng(seed, 0x6A55);
  std::vector<Point2> pts(n);
  for (auto& p : pts) {
    p = {kScale * gauss(rng), kScale * gauss(rng)};
  }
  return pts;
}

std::vector<Point2> convex_k(std::size_t n, std::size_t k,
                             std::uint64_t seed) {
  IPH_CHECK(k >= 2 && k <= n);
  Rng rng(seed, 0xC0EF);
  std::vector<Point2> pts;
  pts.reserve(n);
  // k extreme points on a concave-down arc (angles in (0.1*pi, 0.9*pi),
  // increasing): they are in strictly convex position and form exactly the
  // upper hull of the final set.
  std::vector<Point2> arc(k);
  for (std::size_t i = 0; i < k; ++i) {
    const double jitter = k > 2 ? (rng.next_double() - 0.5) * 0.5 : 0.0;
    const double frac =
        k == 1 ? 0.5
               : (static_cast<double>(i) + 0.5 + jitter) / static_cast<double>(k);
    const double t = kPi * (0.1 + 0.8 * frac);
    // x = -cos(t) increases with i; y = sin(t) > 0: a concave-down arc.
    arc[i] = {-kScale * std::cos(t), kScale * std::sin(t)};
  }
  for (const auto& p : arc) pts.push_back(p);
  // Interior points: strictly-interior convex combinations of 3 distinct
  // non-collinear arc points. Minimum weight 0.15 keeps them well below
  // the chain relative to double rounding at this coordinate scale.
  for (std::size_t i = k; i < n; ++i) {
    std::size_t a = 0, b = 0, c = 0;
    if (k == 2) {
      // Degenerate family: put extras strictly below the segment.
      const double w = 0.15 + 0.7 * rng.next_double();
      const Point2 m{arc[0].x + w * (arc[1].x - arc[0].x),
                     arc[0].y + w * (arc[1].y - arc[0].y)};
      pts.push_back({m.x, m.y - kScale * (0.05 + rng.next_double())});
      continue;
    }
    a = rng.next_below(k);
    do {
      b = rng.next_below(k);
    } while (b == a);
    do {
      c = rng.next_below(k);
    } while (c == a || c == b);
    double wa = 0.15 + rng.next_double();
    double wb = 0.15 + rng.next_double();
    double wc = 0.15 + rng.next_double();
    const double s = wa + wb + wc;
    wa /= s;
    wb /= s;
    wc /= s;
    pts.push_back({wa * arc[a].x + wb * arc[b].x + wc * arc[c].x,
                   wa * arc[a].y + wb * arc[b].y + wc * arc[c].y});
  }
  // Shuffle so "unsorted input" really is unsorted.
  for (std::size_t i = n; i > 1; --i) {
    std::swap(pts[i - 1], pts[rng.next_below(i)]);
  }
  return pts;
}

std::vector<Point2> collinear2(std::size_t n, std::uint64_t seed) {
  Rng rng(seed, 0xC011);
  std::vector<Point2> pts(n);
  // Integer-valued doubles on the line y = x/2 (x even): orientation zero
  // is exact.
  for (std::size_t i = 0; i < n; ++i) {
    const auto t = static_cast<double>(i);
    pts[i] = {2.0 * t, t};
  }
  for (std::size_t i = n; i > 1; --i) {
    std::swap(pts[i - 1], pts[rng.next_below(i)]);
  }
  return pts;
}

std::vector<Point2> with_duplicates(std::size_t n, std::uint64_t seed) {
  Rng rng(seed, 0xD0B5);
  const std::size_t d =
      std::max<std::size_t>(1, static_cast<std::size_t>(std::sqrt(
                                   static_cast<double>(n))));
  std::vector<Point2> sites(d);
  for (auto& p : sites) {
    p = {static_cast<double>(rng.next_below(1 << 20)),
         static_cast<double>(rng.next_below(1 << 20))};
  }
  std::vector<Point2> pts(n);
  for (auto& p : pts) p = sites[rng.next_below(d)];
  return pts;
}

std::vector<Point2> lattice2(std::size_t n, std::uint64_t seed) {
  Rng rng(seed, 0x1A77);
  const auto side = static_cast<std::uint64_t>(
      2.0 * std::sqrt(static_cast<double>(n)) + 2.0);
  std::vector<Point2> pts(n);
  for (auto& p : pts) {
    p = {static_cast<double>(rng.next_below(side)),
         static_cast<double>(rng.next_below(side))};
  }
  return pts;
}

std::vector<Point3> on_sphere(std::size_t n, std::uint64_t seed) {
  Rng rng(seed, 0x5EEE);
  std::vector<Point3> pts(n);
  for (auto& p : pts) {
    double x = gauss(rng), y = gauss(rng), z = gauss(rng);
    double norm = std::sqrt(x * x + y * y + z * z);
    if (norm < 1e-12) {
      x = 1.0;
      norm = 1.0;
    }
    p = {kScale * x / norm, kScale * y / norm, kScale * z / norm};
  }
  return pts;
}

std::vector<Point3> in_ball(std::size_t n, std::uint64_t seed) {
  Rng rng(seed, 0xBA11);
  std::vector<Point3> pts(n);
  for (auto& p : pts) {
    double x = gauss(rng), y = gauss(rng), z = gauss(rng);
    double norm = std::sqrt(x * x + y * y + z * z);
    if (norm < 1e-12) {
      x = 1.0;
      norm = 1.0;
    }
    const double r = kScale * std::cbrt(rng.next_double());
    p = {r * x / norm, r * y / norm, r * z / norm};
  }
  return pts;
}

std::vector<Point3> in_cube(std::size_t n, std::uint64_t seed) {
  Rng rng(seed, 0xC0BE);
  std::vector<Point3> pts(n);
  for (auto& p : pts) {
    p = {(rng.next_double() * 2.0 - 1.0) * kScale,
         (rng.next_double() * 2.0 - 1.0) * kScale,
         (rng.next_double() * 2.0 - 1.0) * kScale};
  }
  return pts;
}

std::vector<Point3> extreme_k3(std::size_t n, std::size_t k,
                               std::uint64_t seed) {
  IPH_CHECK(k >= 4 && k <= n);
  Rng rng(seed, 0xE37E);
  std::vector<Point3> pts = on_sphere(k, seed ^ 0x333);
  pts.reserve(n);
  // Interior points: strictly-interior combinations of 4 sphere points.
  for (std::size_t i = k; i < n; ++i) {
    std::size_t idx[4];
    for (auto& v : idx) v = rng.next_below(k);
    double w[4];
    double s = 0;
    for (auto& v : w) {
      v = 0.15 + rng.next_double();
      s += v;
    }
    Point3 p{0, 0, 0};
    for (int j = 0; j < 4; ++j) {
      p.x += w[j] / s * pts[idx[j]].x;
      p.y += w[j] / s * pts[idx[j]].y;
      p.z += w[j] / s * pts[idx[j]].z;
    }
    // Pull toward the centroid so the point is strictly interior even if
    // the 4 chosen sphere points coincide or are coplanar.
    pts.push_back({p.x * 0.8, p.y * 0.8, p.z * 0.8});
  }
  for (std::size_t i = n; i > 1; --i) {
    std::swap(pts[i - 1], pts[rng.next_below(i)]);
  }
  return pts;
}

std::vector<Point3> on_paraboloid(std::size_t n, std::uint64_t seed) {
  Rng rng(seed, 0xBABA);
  std::vector<Point3> pts(n);
  for (auto& p : pts) {
    const double t = rng.next_double() * 2.0 * kPi;
    const double r = kScale * std::sqrt(rng.next_double());
    const double x = r * std::cos(t), y = r * std::sin(t);
    p = {x, y, -(x * x + y * y) / kScale};
  }
  return pts;
}

std::vector<Point2> make2d(Family2D f, std::size_t n, std::uint64_t seed) {
  switch (f) {
    case Family2D::kCircle:
      return on_circle(n, seed);
    case Family2D::kDisk:
      return in_disk(n, seed);
    case Family2D::kSquare:
      return in_square(n, seed);
    case Family2D::kGaussian:
      return gaussian2(n, seed);
    case Family2D::kConvexK:
      if (n < 2) return in_disk(n, seed);  // k-extreme needs >= 2 points
      return convex_k(n, std::min(n, std::max<std::size_t>(2, n / 8)), seed);
    case Family2D::kCollinear:
      return collinear2(n, seed);
    case Family2D::kDuplicates:
      return with_duplicates(n, seed);
    case Family2D::kLattice:
      return lattice2(n, seed);
  }
  return {};
}

std::string family_name(Family2D f) {
  switch (f) {
    case Family2D::kCircle:
      return "circle";
    case Family2D::kDisk:
      return "disk";
    case Family2D::kSquare:
      return "square";
    case Family2D::kGaussian:
      return "gaussian";
    case Family2D::kConvexK:
      return "convex_k";
    case Family2D::kCollinear:
      return "collinear";
    case Family2D::kDuplicates:
      return "duplicates";
    case Family2D::kLattice:
      return "lattice";
  }
  return "unknown";
}

std::vector<Point3> make3d(Family3D f, std::size_t n, std::uint64_t seed) {
  switch (f) {
    case Family3D::kSphere:
      return on_sphere(n, seed);
    case Family3D::kBall:
      return in_ball(n, seed);
    case Family3D::kCube:
      return in_cube(n, seed);
    case Family3D::kExtremeK:
      return extreme_k3(n, std::max<std::size_t>(4, n / 8), seed);
    case Family3D::kParaboloid:
      return on_paraboloid(n, seed);
  }
  return {};
}

std::string family_name(Family3D f) {
  switch (f) {
    case Family3D::kSphere:
      return "sphere";
    case Family3D::kBall:
      return "ball";
    case Family3D::kCube:
      return "cube";
    case Family3D::kExtremeK:
      return "extreme_k";
    case Family3D::kParaboloid:
      return "paraboloid";
  }
  return "unknown";
}

void sort_lex(std::vector<Point2>& pts) {
  std::sort(pts.begin(), pts.end(),
            [](const Point2& a, const Point2& b) { return lex_less(a, b); });
}

void sort_lex(std::vector<Point3>& pts) {
  std::sort(pts.begin(), pts.end(),
            [](const Point3& a, const Point3& b) { return lex_less(a, b); });
}

}  // namespace iph::geom
