// Environment-variable configuration knobs shared by tests, benches and
// examples. All knobs have safe defaults so binaries run with no setup:
//   IPH_THREADS    — hardware threads backing the PRAM simulator (default:
//                    std::thread::hardware_concurrency()).
//   IPH_SEED       — master RNG seed (default 0x1991'07'22, the venue date).
//   IPH_PRAM_CHECK — "1"/"true"/"on" turns the step-race discipline
//                    checker (pram/shadow.h) on for every Machine;
//                    "0"/"false"/"off" forces it off even in builds
//                    configured with -DIPH_ENABLE_PRAM_CHECK=ON.
#pragma once

#include <cstdint>

namespace iph::support {

/// Number of hardware threads the simulator should use.
unsigned env_threads() noexcept;

/// Master seed for randomized algorithms unless a caller overrides it.
std::uint64_t env_seed() noexcept;

/// Boolean knob: unset -> fallback; "1"/"true"/"on"/"yes" -> true;
/// anything else -> false.
bool env_flag(const char* name, bool fallback) noexcept;

}  // namespace iph::support
