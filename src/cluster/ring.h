// Consistent-hash ring over N shards with virtual nodes.
//
// Each shard owns `vnodes` points on a u64 circle (point positions are
// support::mix3 of the ring seed, the shard index, and the vnode
// index — deterministic, so every router over the same fleet agrees on
// the mapping). A key routes to the first UP shard point clockwise
// from hash(key). Marking a shard down rebuilds the sorted point array
// without the downed shard's points: keys it owned redistribute to
// their clockwise successors while every other key keeps its shard —
// the consistent-hashing property that makes mark-down/mark-up cheap
// for session-affine traffic (only the affected shard's keys move).
//
// shard_for_attempt(key, a) yields the a-th DISTINCT up shard walking
// clockwise from the key's position: attempt 0 is the home shard, and
// higher attempts are the deterministic sibling order the router
// retries rejected stateless requests on.
//
// Not thread-safe; the router serializes access under its own mutex.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace iph::cluster {

class HashRing {
 public:
  HashRing(std::size_t shards, std::size_t vnodes, std::uint64_t seed);

  std::size_t shard_count() const { return up_.size(); }
  bool up(std::size_t shard) const { return up_[shard]; }
  std::size_t up_count() const { return up_count_; }
  /// How many times the point array was rebuilt (mark-down/mark-up
  /// churn — exported as a router counter).
  std::uint64_t rebuilds() const { return rebuilds_; }

  /// No-op when the shard is already in the requested state.
  void set_up(std::size_t shard, bool up);

  /// Home shard for `key`; false when every shard is down.
  bool shard_for(std::uint64_t key, std::size_t* shard) const;

  /// The `attempt`-th distinct up shard clockwise from `key` (attempt 0
  /// == shard_for). False when fewer than attempt+1 shards are up.
  bool shard_for_attempt(std::uint64_t key, std::size_t attempt,
                         std::size_t* shard) const;

 private:
  void rebuild();

  std::size_t vnodes_;
  std::uint64_t seed_;
  std::vector<bool> up_;
  std::size_t up_count_;
  std::uint64_t rebuilds_ = 0;
  /// Sorted (position, shard) points of the UP shards only.
  std::vector<std::pair<std::uint64_t, std::size_t>> points_;
};

}  // namespace iph::cluster
