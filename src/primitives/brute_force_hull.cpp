#include "primitives/brute_force_hull.h"

#include <algorithm>
#include <vector>

#include "geom/predicates.h"
#include "pram/cells.h"
#include "primitives/lockstep_search.h"
#include "support/check.h"
#include "support/mathutil.h"

namespace iph::primitives {

using geom::Index;
using geom::Point2;

namespace {

/// Assemble the ordered vertex chain and edge pointers from successor
/// links + left-cover marks (host-side presentation; the per-point
/// pointers the algorithms consume are already computed on the PRAM).
geom::HullResult2D assemble(std::size_t lo, std::size_t hi, Index first,
                            std::span<const Index> succ,
                            std::span<const Index> left_cover) {
  geom::HullResult2D r;
  const std::size_t q = hi - lo;
  // Chain walk.
  std::vector<Index> pos_in_chain(q, geom::kNone);
  Index v = first;
  while (v != geom::kNone) {
    pos_in_chain[v - lo] = static_cast<Index>(r.upper.vertices.size());
    r.upper.vertices.push_back(v);
    v = succ[v - lo];
  }
  // Edge pointers: left_cover[p] is the hull vertex covering p from the
  // left; its chain position is the edge index (clamped at the last
  // edge for points in the rightmost column).
  r.edge_above.assign(q, geom::kNone);
  const std::size_t edges = r.upper.edge_count();
  if (edges == 0) return r;
  for (std::size_t p = 0; p < q; ++p) {
    Index cover = left_cover[p];
    IPH_CHECK(cover != geom::kNone);
    Index e = pos_in_chain[cover - lo];
    IPH_CHECK(e != geom::kNone);
    if (e == edges) --e;  // rightmost vertex: use the edge ending there
    r.edge_above[p] = e;
  }
  return r;
}

}  // namespace

geom::HullResult2D brute_hull_presorted(pram::Machine& m,
                                        std::span<const Point2> pts,
                                        std::size_t lo, std::size_t hi) {
  IPH_CHECK(lo <= hi && hi <= pts.size());
  const std::size_t q = hi - lo;
  geom::HullResult2D r;
  if (q == 0) return r;
  pram::Machine::Phase phase(m, "prim/brute-hull");

  // Degenerate single-column input: hull is the topmost point.
  if (pts[lo].x == pts[hi - 1].x) {
    r.upper.vertices.push_back(static_cast<Index>(hi - 1));
    r.edge_above.assign(q, geom::kNone);
    return r;
  }

  // Candidate edge (i,j), local i < j, is invalidated by tester t when:
  //  * the pair is vertical (xi == xj),
  //  * t is strictly above line(i,j),
  //  * t is on the line but outside [xi, xj] (the pair is not maximal),
  //  * t duplicates an endpoint with a smaller index (dedupe ties).
  pram::FlagArray bad(q * q);
  m.step(q * q * q, [&](std::uint64_t pid) {
    const std::uint64_t i = pid / (q * q);
    const std::uint64_t j = (pid / q) % q;
    const std::uint64_t t = pid % q;
    if (i >= j) return;
    const Point2& a = pts[lo + i];
    const Point2& b = pts[lo + j];
    if (a.x == b.x) {
      if (t == 0) bad.set(i * q + j);
      return;
    }
    if (t == i || t == j) return;
    const Point2& c = pts[lo + t];
    const int o = geom::orient2d(a, b, c);
    if (o > 0) {
      bad.set(i * q + j);
      return;
    }
    if (o == 0) {
      if (c.x < a.x || c.x > b.x) {
        bad.set(i * q + j);
      } else if ((c == a && t < i) || (c == b && t < j)) {
        bad.set(i * q + j);
      }
    }
  });
  // Surviving edges: record successor links and flag hull vertices.
  std::vector<pram::MinCell> succ_cell(q);
  pram::FlagArray is_vertex(q);
  m.step(q * q, [&](std::uint64_t pid) {
    const std::uint64_t i = pid / q;
    const std::uint64_t j = pid % q;
    if (i >= j || bad.get(i * q + j)) return;
    succ_cell[i].write(j);
    is_vertex.set(i);
    is_vertex.set(j);
  });
  // Left cover per point: the max-index hull vertex with x <= point's x.
  // (Presorted input: index order == x order.)
  std::vector<pram::MaxCell> cover(q);
  m.step(q * q, [&](std::uint64_t pid) {
    const std::uint64_t i = pid / q;  // hull vertex candidate
    const std::uint64_t p = pid % q;  // point
    if (!is_vertex.get(i)) return;
    if (pts[lo + i].x <= pts[lo + p].x) {
      cover[p].write(i + 1);  // +1: MaxCell's empty value is 0
    }
  });
  // Extract owned copies (one step).
  std::vector<Index> succ(q, geom::kNone);
  std::vector<Index> left_cover(q, geom::kNone);
  pram::MinCell first_cell;
  m.step(q, [&](std::uint64_t i) {
    if (succ_cell[i].read() != pram::MinCell::kEmpty) {
      succ[i] = static_cast<Index>(lo + succ_cell[i].read());
    }
    if (cover[i].read() != pram::MaxCell::kEmpty) {
      left_cover[i] = static_cast<Index>(lo + cover[i].read() - 1);
    }
    if (is_vertex.get(i) && succ_cell[i].read() != pram::MinCell::kEmpty) {
      // The chain head is the hull vertex that is nobody's successor;
      // equivalently the smallest-index vertex (presorted, leftmost).
      first_cell.write(i);
    }
  });
  IPH_CHECK(!first_cell.empty());
  return assemble(lo, hi, static_cast<Index>(lo + first_cell.read()),
                  std::span<const Index>(succ),
                  std::span<const Index>(left_cover));
}

}  // namespace iph::primitives
