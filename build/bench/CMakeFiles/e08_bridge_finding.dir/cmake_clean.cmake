file(REMOVE_RECURSE
  "CMakeFiles/e08_bridge_finding.dir/e08_bridge_finding.cpp.o"
  "CMakeFiles/e08_bridge_finding.dir/e08_bridge_finding.cpp.o.d"
  "e08_bridge_finding"
  "e08_bridge_finding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e08_bridge_finding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
