// Batched lockstep g-ary search on the PRAM simulator.
//
// Runs B independent partition-point searches simultaneously, one g-ary
// round per PRAM step, so that B searches over ranges of length L finish
// in ceil(log_g L) + 1 steps with B*(g-1) processors per step. This is
// the workhorse behind the O(1)-time hull primitives of Atallah-Goodrich
// (common tangents, line/hull intersection — Section 2.4 of the paper)
// and the merge phase of the folklore Lemma 2.4 hull: choosing
// g = L^(1/c) gives c+1 steps.
//
// Each search s owns a range [lo_s, hi_s) and a monotone predicate
// pred(s, i) that is true on a prefix of the range and false on the
// suffix; the result is the partition point (first false index, == hi_s
// when pred is true everywhere).
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "pram/machine.h"
#include "support/check.h"

namespace iph::primitives {

/// Monotone predicate for search s at index i. Must be pure and safe to
/// evaluate concurrently.
using PartitionPred = std::function<bool(std::uint64_t s, std::uint64_t i)>;

/// Returns, for each search s, the first index in [lo[s], hi[s]) where
/// pred(s, .) is false (== hi[s] if none). g >= 2 probes per round.
std::vector<std::uint64_t> lockstep_partition_point(
    pram::Machine& m, std::span<const std::uint64_t> lo,
    std::span<const std::uint64_t> hi, std::uint64_t g,
    const PartitionPred& pred);

}  // namespace iph::primitives
