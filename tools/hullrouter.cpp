// hullrouter — cluster front end for hullserved backends.
//
//   hullrouter --endpoints H:P[,H:P...] [options]
//       serve stdin -> stdout, exit at EOF
//   hullrouter --port P --endpoints H:P[,H:P...] [options]
//       serve TCP on 127.0.0.1:P, one thread per connection
//
// Speaks the same NDJSON protocol as the backends it fronts
// (tools/serve_wire.h): hull requests consistent-hash across the
// fleet, sessions pin to their opening shard, statz/tracez answer for
// the whole fleet, and {"cmd": "markdown"|"markup", "shard": K}
// drains / undrains one backend. Routing lives in src/cluster; this
// file is only flag parsing, the accept loop, and the mark-down/up
// schedule used by benchmarks and CI to exercise churn
// deterministically.
//
// --port 0 binds a kernel-picked free port; TCP mode always prints a
// machine-readable "listening <port>" line to stdout (same contract
// as hullserved).
//
// SIGINT/SIGTERM stop accepting, drain in-flight connections, dump
// --statz-out / --tracez-out snapshots and print a router summary to
// stderr. Exit codes: 0 clean, 2 usage error, 3 socket setup failure.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/endpoint.h"
#include "cluster/router.h"
#include "cluster/stats.h"
#include "stats/stats.h"
#include "support/linechan.h"
#include "trace/json.h"

namespace {

using iph::cluster::Router;
using iph::cluster::RouterConfig;
using iph::support::LineChannel;
using iph::trace::Json;

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --endpoints H:P[,H:P...] [--port P] [--vnodes N]\n"
      "          [--retries N] [--probe-ms M]\n"
      "          [--markdown-at-ms T:SHARD]... [--markup-at-ms T:SHARD]...\n"
      "          [--statz-out FILE] [--tracez-out FILE] [--quiet]\n"
      "Routes NDJSON hull requests (tools/serve_wire.h) across the\n"
      "hullserved backends in --endpoints: requests consistent-hash on\n"
      "their id, sessions pin to the shard that opened them, and statz /\n"
      "tracez lines answer with an exactly-reconciled fleet roll-up.\n"
      "--retries bounds sibling re-routes of a rejected stateless\n"
      "request (never session traffic); --probe-ms is the health-prober\n"
      "period (0 disables it). --markdown-at-ms/--markup-at-ms schedule\n"
      "administrative drain/undrain of one shard T ms after startup —\n"
      "deterministic churn for benchmarks and CI smoke.\n",
      argv0);
  return 2;
}

// Signal handling: flip a flag and close the listening socket so the
// blocking accept() returns (both are async-signal-safe).
std::atomic<bool> g_stop{false};
int g_listen_fd = -1;

void on_signal(int) {
  g_stop.store(true);
  if (g_listen_fd >= 0) ::close(g_listen_fd);
}

/// One scheduled administrative drain/undrain (--markdown-at-ms /
/// --markup-at-ms), applied `at_ms` after startup.
struct AdminEvent {
  int at_ms = 0;
  std::size_t shard = 0;
  bool up = false;
};

bool parse_admin_event(const char* spec, bool up, std::vector<AdminEvent>* out) {
  const char* colon = std::strchr(spec, ':');
  if (colon == nullptr) return false;
  char* end = nullptr;
  const long at = std::strtol(spec, &end, 10);
  if (end != colon || at < 0) return false;
  const long shard = std::strtol(colon + 1, &end, 10);
  if (*end != '\0' || shard < 0) return false;
  out->push_back(AdminEvent{static_cast<int>(at),
                            static_cast<std::size_t>(shard), up});
  return true;
}

/// Applies the admin schedule on its own thread; stoppable early so a
/// short run exits promptly.
class AdminScheduler {
 public:
  AdminScheduler(Router& router, std::vector<AdminEvent> events, bool quiet)
      : router_(router), events_(std::move(events)), quiet_(quiet) {
    std::stable_sort(events_.begin(), events_.end(),
                     [](const AdminEvent& a, const AdminEvent& b) {
                       return a.at_ms < b.at_ms;
                     });
    thread_ = std::thread([this] { run(); });
  }

  ~AdminScheduler() {
    {
      std::lock_guard<std::mutex> lk(mu_);
      stop_ = true;
    }
    cv_.notify_one();
    thread_.join();
  }

 private:
  void run() {
    const auto start = std::chrono::steady_clock::now();
    std::unique_lock<std::mutex> lk(mu_);
    for (const AdminEvent& e : events_) {
      if (cv_.wait_until(lk, start + std::chrono::milliseconds(e.at_ms),
                         [this] { return stop_; })) {
        return;
      }
      const bool ok = e.up ? router_.mark_up_admin(e.shard)
                           : router_.mark_down_admin(e.shard);
      if (!quiet_) {
        std::fprintf(stderr, "hullrouter: %s shard %zu at +%dms%s\n",
                     e.up ? "markup" : "markdown", e.shard, e.at_ms,
                     ok ? "" : " (bad shard index)");
      }
    }
  }

  Router& router_;
  std::vector<AdminEvent> events_;
  const bool quiet_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

void serve_conn(Router& router, int in_fd, int out_fd) {
  Router::Conn conn(router);
  LineChannel chan(in_fd, out_fd);
  std::string line;
  while (chan.read_line(&line)) {
    if (line.empty()) continue;
    if (!chan.write_line(conn.handle_line(line))) return;
  }
}

int serve_tcp(Router& router, int port, bool quiet) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("hullrouter: socket");
    return 3;
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(fd, 64) < 0) {
    std::perror("hullrouter: bind/listen");
    ::close(fd);
    return 3;
  }
  socklen_t alen = sizeof addr;  // report the real port when P was 0
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &alen);
  std::printf("listening %d\n", ntohs(addr.sin_port));
  std::fflush(stdout);
  if (!quiet) {
    std::fprintf(stderr, "hullrouter: listening on 127.0.0.1:%d (%zu backends)\n",
                 ntohs(addr.sin_port), router.shard_count());
  }
  g_listen_fd = fd;
  struct sigaction sa {};
  sa.sa_handler = on_signal;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);

  std::vector<std::thread> conns;
  std::mutex conns_mu;
  while (!g_stop.load()) {
    const int conn = ::accept(fd, nullptr, nullptr);
    if (conn < 0) {
      if (g_stop.load()) break;
      if (errno == EINTR) continue;
      std::perror("hullrouter: accept");
      break;
    }
    std::lock_guard<std::mutex> lk(conns_mu);
    conns.emplace_back([&router, conn] {
      serve_conn(router, conn, conn);
      ::close(conn);
    });
  }
  if (!g_stop.load()) ::close(fd);
  for (auto& t : conns) t.join();
  return 0;
}

void print_summary(Router& router) {
  namespace sn = iph::cluster::statnames;
  const iph::stats::RegistrySnapshot s = router.registry().snapshot();
  std::uint64_t retries = 0;
  std::uint64_t rejected = 0;
  std::uint64_t markdowns = 0;
  for (const auto& [name, v] : s.counters) {
    if (name.rfind(sn::kRetriesBase, 0) == 0) retries += v;
    if (name.rfind(sn::kRejectedBase, 0) == 0) rejected += v;
    if (name.rfind(sn::kMarkdownsBase, 0) == 0) markdowns += v;
  }
  std::fprintf(stderr,
               "hullrouter: forwards %llu  retries %llu  rejected %llu  "
               "markdowns %llu  ring rebuilds %llu\n",
               static_cast<unsigned long long>(
                   s.counter_or0(sn::kForwards)),
               static_cast<unsigned long long>(retries),
               static_cast<unsigned long long>(rejected),
               static_cast<unsigned long long>(markdowns),
               static_cast<unsigned long long>(
                   s.counter_or0(sn::kRingRebuilds)));
}

void write_doc(const std::string& path, const Json& doc) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "hullrouter: cannot write %s\n", path.c_str());
    return;
  }
  const std::string text = doc.dump(1);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
}

}  // namespace

int main(int argc, char** argv) {
  int port = -1;
  bool quiet = false;
  std::string endpoints_csv;
  std::string statz_out;
  std::string tracez_out;
  std::vector<AdminEvent> schedule;
  RouterConfig cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (a == "--port" && (v = next())) {
      port = std::atoi(v);
    } else if (a == "--endpoints" && (v = next())) {
      endpoints_csv = v;
    } else if (a == "--vnodes" && (v = next())) {
      cfg.vnodes = static_cast<std::size_t>(std::atoll(v));
    } else if (a == "--retries" && (v = next())) {
      cfg.retry_limit = std::atoi(v);
    } else if (a == "--probe-ms" && (v = next())) {
      cfg.probe_period_ms = std::atoi(v);
    } else if (a == "--markdown-at-ms" && (v = next())) {
      if (!parse_admin_event(v, /*up=*/false, &schedule)) {
        return usage(argv[0]);
      }
    } else if (a == "--markup-at-ms" && (v = next())) {
      if (!parse_admin_event(v, /*up=*/true, &schedule)) {
        return usage(argv[0]);
      }
    } else if (a == "--statz-out" && (v = next())) {
      statz_out = v;
    } else if (a == "--tracez-out" && (v = next())) {
      tracez_out = v;
    } else if (a == "--quiet") {
      quiet = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (endpoints_csv.empty() || port > 65535) return usage(argv[0]);
  if (!iph::cluster::parse_endpoint_list(endpoints_csv, &cfg.endpoints)) {
    std::fprintf(stderr, "hullrouter: bad --endpoints \"%s\"\n",
                 endpoints_csv.c_str());
    return usage(argv[0]);
  }
  if (cfg.vnodes == 0) return usage(argv[0]);

  Router router(cfg);
  AdminScheduler scheduler(router, std::move(schedule), quiet);
  int rc = 0;
  if (port < 0) {
    serve_conn(router, STDIN_FILENO, STDOUT_FILENO);
  } else {
    rc = serve_tcp(router, port, quiet);
  }
  // Final fleet snapshots after the drain, so every answered line's
  // counters are included (CI uploads both as artifacts).
  if (!statz_out.empty()) {
    write_doc(statz_out, router.fleet_statz(/*prometheus=*/false));
  }
  if (!tracez_out.empty()) {
    write_doc(tracez_out, router.fleet_tracez(/*limit=*/0, /*slowest=*/true));
  }
  if (!quiet) print_summary(router);
  return rc;
}
