#include "session/stats.h"

#include <string>

namespace iph::session {

namespace {

using stats::labeled;

}  // namespace

std::vector<double> space_cells_bounds() {
  std::vector<double> b;
  for (double v = 16; v <= 64.0 * 1024 * 1024; v *= 4) b.push_back(v);
  return b;
}

SessionStats::SessionStats(stats::Registry& registry)
    : opened(registry.counter(statnames::kOpened)),
      closed(registry.counter(statnames::kClosed)),
      rejected_cap(registry.counter(
          labeled(statnames::kRejectedBase, "reason", "cap"))),
      rejected_unknown(registry.counter(
          labeled(statnames::kRejectedBase, "reason", "unknown"))),
      rejected_closed(registry.counter(
          labeled(statnames::kRejectedBase, "reason", "closed"))),
      rejected_oversized(registry.counter(
          labeled(statnames::kRejectedBase, "reason", "oversized"))),
      appends(registry.counter(statnames::kAppends)),
      append_points(registry.counter(statnames::kAppendPoints)),
      rebuilds(registry.counter(statnames::kRebuilds)),
      rebuild_mismatch(registry.counter(statnames::kRebuildMismatch)),
      rebuild_pram(registry.counter(
          labeled(statnames::kRebuildBackendBase, "backend", "pram"))),
      rebuild_native(registry.counter(
          labeled(statnames::kRebuildBackendBase, "backend", "native"))),
      live_sessions(registry.gauge(statnames::kLiveSessions)),
      aux_cells(registry.gauge(statnames::kAuxCells)),
      delta_ops(registry.histogram(statnames::kDeltaOps,
                                   stats::batch_size_bounds())),
      append_ms(registry.histogram(statnames::kAppendMs,
                                   stats::latency_bounds_ms())),
      rebuild_ms(registry.histogram(statnames::kRebuildMs,
                                    stats::latency_bounds_ms())),
      peak_aux_cells(registry.histogram(statnames::kPeakAuxCells,
                                        space_cells_bounds())) {
  // One counter per summable pram::Metrics counter, in the visitor's
  // fixed order; fold_pram walks the same order by index.
  pram::for_each_summable_counter(
      pram::Metrics{}, [&](const char* name, std::uint64_t) {
        pram_counters_.push_back(&registry.counter(
            std::string(statnames::kPramPrefix) + name + "_total"));
      });
}

void SessionStats::fold_pram(const pram::Metrics& m) noexcept {
  std::size_t i = 0;
  pram::for_each_summable_counter(m, [&](const char*, std::uint64_t v) {
    pram_counters_[i++]->inc(v);
  });
}

}  // namespace iph::session
