// Failure sweeping (Section 2.3).
//
// A randomized sub-procedure run on many subproblems leaves, with
// probability close to 1, only a handful of unsolved "failures". The
// technique: compact the failure ids into a tiny area (Ragde, Lemma 2.1)
// — which also verifies there are few enough of them — then grant each
// failure a super-linear processor budget and finish it by brute force
// (Observation 2.2 / Lemma 2.4), all in O(1) extra PRAM time. This turns
// a per-subproblem confidence p(m) into the global p(n).
//
// This header provides the compaction half as a reusable utility; the
// "brute force the failures" half is dimension- and caller-specific
// (presorted tree nodes brute-force their contiguous ranges; the
// unsorted algorithms re-run in-place bridge finding with k = n^(1/4)).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pram/machine.h"

namespace iph::primitives {

struct SweepResult {
  /// Dense list of failed subproblem ids (deterministic order).
  std::vector<std::uint32_t> failed;
  /// False when there were more failures than the sweep budget allows
  /// (the almost-never branch; callers fall back to their O(n log n)
  /// algorithm, as the paper does when l >= n^(1/32)).
  bool ok = true;
  /// True if Ragde's modulus search resorted to its fallback.
  bool used_fallback = false;
};

/// Compact the set bits of `failed_flags` (one per subproblem) into a
/// dense id list using Ragde's approximate compaction. `bound` is the
/// expected-failure budget (the paper uses n^(1/16) failures compacted
/// into an n^(1/4) area). O(1) PRAM steps.
SweepResult sweep_failures(pram::Machine& m,
                           std::span<const std::uint8_t> failed_flags,
                           std::uint64_t bound);

}  // namespace iph::primitives
