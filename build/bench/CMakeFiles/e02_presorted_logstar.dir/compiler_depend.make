# Empty compiler generated dependencies file for e02_presorted_logstar.
# This may be replaced when dependencies are built.
