// The unsorted output-sensitive 3-d hull (Section 4.3, Theorem 6):
// O(log^2 n) PRAM time, O(min{n log^2 h, n log n}) work, w.h.p.
//
// Structure (the paper's, after Edelsbrunner-Shi but splitting about a
// random point instead of the ham-sandwich cut):
//   1. each subproblem votes a random splitter and finds the hull facet
//      above it with 3-d in-place bridge finding (Lemma 4.2, k=s^(1/4));
//      failures are swept with the n^(1/4) budget;
//   2. points whose xy-projection falls inside the facet's triangle are
//      dead, pointing at it;
//   3. all points are projected onto the xz- and yz-planes along
//      directions PARALLEL TO THE FACET; the 2-d algorithm (Theorem 5)
//      finds the upper hulls of both projections — these "ridge" chains
//      are 3-d hull edge paths, and the facet itself projects to an edge
//      of each chain;
//   4. each point's position relative to the two ridges (which side of
//      the vertical plane through its covering ridge edge) selects one
//      of 4 child subproblems. Ridge vertices are the fences: they join
//      every child they border (multi-membership — this is what keeps
//      each child's hull identical to the global hull over its region).
// Depth/size budgets and the l >= threshold test switch to the fallback
// (Reif-Sen substitute: QuickHull charged at the published O(log n) time,
// n processors — see DESIGN.md), as does a fallback request from the
// inner 2-d calls, exactly as the paper's step 3 prescribes.
#pragma once

#include <span>

#include "geom/hull_types.h"
#include "geom/point.h"
#include "pram/machine.h"

namespace iph::core {

struct Unsorted3DStats {
  std::uint64_t levels = 0;
  std::uint64_t probes = 0;           ///< facet probes attempted
  std::uint64_t failures_swept = 0;
  std::uint64_t inner2d_levels = 0;   ///< recursion depth spent in 2-d calls
  std::uint64_t facets_found = 0;     ///< before any fallback
  std::uint64_t max_units = 0;        ///< peak membership count (fences)
  bool used_fallback = false;
  /// Why the fallback fired: 0 none, 1 level cap, 2 facet threshold,
  /// 3 unit blowup, 4 inner-2d request, 5 surface verification failed.
  int fallback_reason = 0;
  /// When fallback_reason == 5: 1 uncovered point, 2 bad coverage,
  /// 3 broken tiling, 4 non-convex shared edge, 5 bad boundary edge.
  int verify_fail_kind = 0;
};

/// Upper hull facets + per-point facet pointers of UNSORTED 3-d points.
geom::HullResult3D unsorted_hull_3d(pram::Machine& m,
                                    std::span<const geom::Point3> pts,
                                    Unsorted3DStats* stats = nullptr,
                                    int alpha = 8);

/// The fallback (Reif-Sen substitute): QuickHull run host-side, charged
/// at the published O(log n)-time, n-processor cost.
geom::HullResult3D fallback_hull_3d(pram::Machine& m,
                                    std::span<const geom::Point3> pts);

}  // namespace iph::core
