// Minimal JSON value: ordered objects, arrays, numbers, strings, bools,
// null, with a writer and a recursive-descent parser. This exists so the
// trace/report/claim-fit stack stays dependency-free (the container bakes
// no JSON library); it supports exactly the subset the subsystem emits —
// finite numbers, UTF-8 strings passed through byte-wise with control
// characters escaped.
//
// Objects preserve insertion order (reports are diffed as text; key order
// churn would make every diff noise) and key lookup is linear — fine for
// the small objects traces produce.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace iph::trace {

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;  // null
  Json(bool b) : kind_(Kind::kBool), bool_(b) {}
  Json(double d) : kind_(Kind::kNumber), num_(d) {}
  Json(std::uint64_t u) : kind_(Kind::kNumber), num_(static_cast<double>(u)) {}
  Json(int i) : kind_(Kind::kNumber), num_(i) {}
  Json(unsigned u) : kind_(Kind::kNumber), num_(u) {}
  Json(long l) : kind_(Kind::kNumber), num_(static_cast<double>(l)) {}
  Json(const char* s) : kind_(Kind::kString), str_(s) {}
  Json(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  Json(std::string_view s) : kind_(Kind::kString), str_(s) {}

  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }
  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }

  double as_double() const noexcept { return num_; }
  std::uint64_t as_u64() const noexcept {
    return num_ <= 0 ? 0 : static_cast<std::uint64_t>(num_ + 0.5);
  }
  bool as_bool() const noexcept { return bool_; }
  const std::string& as_string() const noexcept { return str_; }

  // --- array ---
  std::size_t size() const noexcept {
    return is_array() ? arr_.size() : (is_object() ? obj_.size() : 0);
  }
  Json& push_back(Json v) {
    kind_ = Kind::kArray;
    arr_.push_back(std::move(v));
    return arr_.back();
  }
  const Json& at(std::size_t i) const { return arr_[i]; }
  const std::vector<Json>& items() const noexcept { return arr_; }

  // --- object ---
  /// Insert-or-find; switches a null value to an object.
  Json& operator[](std::string_view key);
  /// Null-object sentinel when absent (never inserts).
  const Json* find(std::string_view key) const noexcept;
  /// Typed lookups with defaults.
  double get_num(std::string_view key, double dflt = 0) const noexcept;
  std::string get_str(std::string_view key, std::string dflt = "") const;
  const std::vector<std::pair<std::string, Json>>& members() const noexcept {
    return obj_;
  }

  /// Serialize. indent > 0 pretty-prints with that many spaces per level.
  std::string dump(int indent = 0) const;

  /// Parse `text`; on failure returns false and sets *err (if non-null)
  /// to a message with the byte offset.
  static bool parse(std::string_view text, Json* out, std::string* err);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;
};

}  // namespace iph::trace
