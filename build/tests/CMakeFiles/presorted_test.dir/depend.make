# Empty dependencies file for presorted_test.
# This may be replaced when dependencies are built.
