// SessionManager — the concurrent front door to streaming hull
// sessions.
//
// Owns the live-session table (monotonic ids so "never existed" and
// "already closed" stay distinguishable for the wire layer), the
// admission cap, the rebuild engines, and the SessionStats bundle.
// hullserved keeps exactly one of these next to its HullService and
// routes session_open/append/close wire commands here; batch requests
// keep flowing through the service untouched.
//
// Concurrency model: the table mutex covers only id allocation and
// lookup; each session carries its own mutex, so appends on different
// sessions run in parallel. Rebuilds on native-backend sessions share
// the manager's one NativeBackend (its upper_hull is thread-safe);
// pram-backend sessions serialize on the manager's single owned
// pram::Machine — the simulator demands exclusive access, and rebuild
// audits are rare by construction (pending_limit / staleness_limit),
// so one machine is plenty.
//
// Close-vs-append race: close() removes the entry from the table, then
// takes the session mutex and marks the entry closed; an append that
// already held a table reference re-checks the closed flag under the
// session mutex and reports kSessionClosed. The aux-cells gauge is
// therefore exact: each entry's ledger delta is published under its
// session mutex, and close subtracts the final level once.
//
// Stats discipline: every counter/gauge/histogram update for an
// operation lands BEFORE the call returns, so the wire layer replies
// strictly after the registry has settled (scrape reconciliation).
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>

#include "exec/backend.h"
#include "exec/native_backend.h"
#include "obs/flight_recorder.h"
#include "pram/machine.h"
#include "session/session.h"
#include "session/stats.h"
#include "stats/stats.h"

namespace iph::session {

struct ManagerConfig {
  /// Admission cap on concurrently live sessions.
  std::size_t max_sessions = 64;
  /// Per-append point cap (oversized appends are rejected whole).
  std::size_t max_append_points = std::size_t{1} << 16;
  /// Per-session policy (pending_limit / staleness_limit / alpha; the
  /// manager fills `seed` per session from `master_seed`).
  SessionConfig session;
  /// Rebuild engine for sessions that open with kDefault.
  exec::BackendKind default_backend = exec::BackendKind::kNative;
  unsigned native_threads = 0;  ///< 0 = support::env_threads()
  unsigned pram_threads = 0;
  std::uint64_t master_seed = 0x19910722ULL;
};

enum class SessionStatus : std::uint8_t {
  kOk = 0,
  kRejectedCap,     ///< open: live-session cap reached
  kUnknownSession,  ///< append/close: id was never issued
  kSessionClosed,   ///< append/close: id was issued and already closed
  kOversizedAppend, ///< append: batch exceeds max_append_points
};

const char* session_status_name(SessionStatus s) noexcept;

struct OpenInfo {
  std::uint64_t sid = 0;
  exec::BackendKind backend = exec::BackendKind::kDefault;  ///< resolved
};

/// End-of-life accounting returned by close (and surfaced on the wire).
struct CloseSummary {
  std::uint64_t points_seen = 0;
  std::uint64_t appends = 0;
  std::uint64_t rebuilds = 0;
  std::uint64_t rebuild_mismatches = 0;
  std::uint64_t peak_aux_cells = 0;  ///< session ledger watermark
  std::uint64_t upper_size = 0;
  std::uint64_t lower_size = 0;
};

class SessionManager {
 public:
  /// `flight` (optional, non-owning, must outlive the manager) receives
  /// a kind="session" trace per append — a session_append root plus a
  /// rebuild child iff the append rebuilt, so
  /// iph_obs_spans_recorded_total{kind=session} == appends + rebuilds
  /// (the scrape-reconciliation identity hullload --stream checks).
  /// hullserved passes its service's flight recorder so request and
  /// session traces share one tracez ring.
  SessionManager(const ManagerConfig& cfg, stats::Registry& registry,
                 obs::FlightRecorder* flight = nullptr);

  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  /// Open a session whose rebuilds run on `want` (kDefault resolves to
  /// cfg.default_backend). kOk fills `out`; kRejectedCap otherwise.
  SessionStatus open(exec::BackendKind want, OpenInfo* out);

  /// Append a batch; on kOk fills `out` with the delta. Rejections
  /// (unknown/closed/oversized) leave the session untouched.
  SessionStatus append(std::uint64_t sid, std::span<const geom::Point2> pts,
                       AppendResult* out);

  SessionStatus close(std::uint64_t sid, CloseSummary* out);

  std::size_t live() const;
  SessionStats& stats() noexcept { return stats_; }
  const ManagerConfig& config() const noexcept { return cfg_; }

 private:
  struct Entry {
    explicit Entry(const SessionConfig& sc) : session(sc) {}
    std::mutex mu;
    HullSession session;
    exec::BackendKind backend = exec::BackendKind::kNative;
    bool closed = false;
  };

  ManagerConfig cfg_;
  SessionStats stats_;
  obs::FlightRecorder* flight_ = nullptr;  ///< May be null (no tracing).
  exec::NativeBackend native_;
  pram::Machine machine_;
  std::mutex machine_mu_;

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Entry>> live_;
  std::uint64_t next_sid_ = 1;
};

}  // namespace iph::session
