// Run-report building blocks shared by the bench harness (bench/report.h)
// and the tools/benchreport aggregator CLI:
//
//   * collect_provenance() — git sha / build type / sanitizer spec baked
//     in at configure time, plus the effective seed and thread count and
//     a UTC timestamp, so every BENCH_*.json is self-describing;
//   * phase_tree_json() / phase_table_json() — render a Recorder's
//     aggregated phase tree as nested JSON or as flat path-keyed rows;
//   * compare_counter_rows() — diff the deterministic counters of two
//     reports' row tables (measured vs committed baseline). Only rows
//     present in BOTH reports are compared, so a short CI sweep checks
//     cleanly against a full-sweep baseline, and only schedule-
//     independent counters participate (wall-clock never does).
#pragma once

#include <string>
#include <vector>

#include "trace/json.h"
#include "trace/recorder.h"

namespace iph::trace {

/// Counters that are pure functions of (input, seed) — safe to compare
/// bit-exactly across hosts, thread counts, and build types.
bool is_deterministic_counter(std::string_view name) noexcept;

/// Build info + run knobs; every field is a string or number.
Json collect_provenance();

/// Nested render of a phase tree (children under "phases").
Json phase_tree_json(const PhaseStats& node);

/// Flat render: one row per node, keyed by slash-joined path.
Json phase_table_json(const PhaseStats& root);

struct CompareResult {
  bool ok = true;
  std::size_t rows_compared = 0;
  std::vector<std::string> diffs;  ///< One message per mismatch.
};

/// Compare the "rows" tables of `report` and `baseline`. Rows match by
/// their "name" field; within matched rows, deterministic counters must
/// agree within `rel_tol` relative error (0 = bit-exact). Rows present
/// in only one report are skipped, not errors.
CompareResult compare_counter_rows(const Json& report, const Json& baseline,
                                   double rel_tol);

}  // namespace iph::trace
