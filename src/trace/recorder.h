// Per-phase trace recorder for the PRAM simulator.
//
// A Recorder implements pram::PhaseObserver: attach one to a Machine
// (attach(), or Machine::set_observer) and every Machine::Phase
// open/close, every synchronous step, and every analytic charge() is
// folded into
//
//   * an AGGREGATED PHASE TREE — nodes keyed by (parent, name), merged
//     across re-entries, carrying PRAM steps, work, peak active
//     processors, combining-write conflicts, direct (own, non-child)
//     steps, invocation counts, and accumulated wall-clock; and
//   * a BOUNDED EVENT LOG — the first kMaxEvents raw open/close events
//     with wall and PRAM-step stamps, from which chrome_trace.h renders
//     a timeline (events past the cap are counted, not stored).
//
// All callbacks run on the host thread between steps, so the recorder
// needs no locking, and everything it records except the wall_ns /
// wall_us fields is a pure function of (input, seed) — bit-identical
// across hardware thread counts (trace_test locks this in).
//
// The implicit root node aggregates the whole run; steps issued while no
// phase is open land in root.direct_steps — `anonymous_steps()` — which
// the phase-coverage audit asserts to be zero for the core algorithms.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "pram/machine.h"

namespace iph::trace {

/// One node of the aggregated phase tree.
struct PhaseStats {
  std::string name;               ///< "" for the root.
  std::uint64_t invocations = 0;  ///< Times this (parent, name) opened.
  std::uint64_t steps = 0;        ///< PRAM steps, children included.
  std::uint64_t work = 0;         ///< PRAM work, children included.
  std::uint64_t max_active = 0;   ///< Peak active processors in any step.
  std::uint64_t cw_conflicts = 0; ///< Combining-write conflicts.
  std::uint64_t direct_steps = 0; ///< Steps while this node was innermost.
  std::uint64_t peak_live = 0;    ///< Peak live cells (input + aux) while open.
  std::uint64_t peak_aux = 0;     ///< Peak auxiliary cells while open.
  std::uint64_t first_open_step = 0;  ///< Machine step index at first open.
  double wall_ns = 0;             ///< Accumulated host wall-clock.
  std::vector<std::unique_ptr<PhaseStats>> children;  // insertion order

  /// Child by name, or nullptr. Path lookup: child("a")->child("b").
  const PhaseStats* child(std::string_view child_name) const noexcept;
};

/// One bucket of the downsampled per-step utilization/space timeline.
/// Each bucket covers `timeline_stride()` consecutive PRAM steps starting
/// at step_begin; `steps` of them actually executed (the open tail bucket
/// may be partial). Every field is a pure function of (input, seed).
struct UtilSample {
  std::uint64_t step_begin = 0;  ///< First PRAM step the bucket covers.
  std::uint64_t steps = 0;       ///< Steps recorded into the bucket.
  std::uint64_t active_max = 0;  ///< Peak active processors in the bucket.
  std::uint64_t active_sum = 0;  ///< Work in the bucket (mean = sum/steps).
  std::uint64_t live_max = 0;    ///< Peak live ledger cells in the bucket.
  std::uint64_t aux_max = 0;     ///< Peak auxiliary ledger cells.
};

/// One raw phase event, for timeline export.
struct TraceEvent {
  enum class Kind : std::uint8_t { kOpen, kClose };
  Kind kind = Kind::kOpen;
  std::string name;        ///< Set for kOpen only.
  std::uint64_t step = 0;  ///< Machine step index at the event.
  double wall_us = 0;      ///< Microseconds since the recorder's epoch.
};

class Recorder final : public pram::PhaseObserver {
 public:
  /// Event-log cap; the aggregated tree is never truncated.
  static constexpr std::size_t kMaxEvents = 1u << 16;
  /// Utilization-timeline bucket cap: when full, adjacent buckets are
  /// pair-merged and the stride doubles, so memory stays bounded while
  /// the whole run remains covered (downsampling, not truncation).
  static constexpr std::size_t kMaxTimeline = 2048;
  /// Active-processor histogram buckets: [0] counts idle steps
  /// (active == 0), bucket b >= 1 counts steps with
  /// 2^(b-1) <= active < 2^b.
  static constexpr std::size_t kHistBuckets = 66;

  Recorder();
  ~Recorder() override;
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  /// Attach to a machine: set_observer(this) + conflict counting on.
  void attach(pram::Machine& m) { m.set_observer(this); }

  // pram::PhaseObserver
  void on_phase_open(const std::string& name,
                     std::uint64_t step_index) override;
  void on_phase_close(std::uint64_t step_index) override;
  void on_step(std::uint64_t active, std::uint64_t conflicts) override;
  void on_charge(std::uint64_t steps, std::uint64_t work_per_step) override;
  void on_space(std::uint64_t input_cells, std::uint64_t aux_cells) override;

  const PhaseStats& root() const noexcept { return root_; }
  /// Steps (incl. charges) recorded while no named phase was open.
  std::uint64_t anonymous_steps() const noexcept {
    return root_.direct_steps;
  }
  /// Deepest phase nesting seen.
  std::size_t max_depth() const noexcept { return max_depth_; }

  const std::vector<TraceEvent>& events() const noexcept { return events_; }
  /// Events beyond kMaxEvents that were counted but not stored.
  std::uint64_t dropped_events() const noexcept { return dropped_events_; }
  /// steady_clock::time_since_epoch at construction, in ns. Lets
  /// consumers (iph::obs phase-span linkage) convert an event's
  /// wall_us offset back to the absolute steady-clock timeline:
  /// absolute_ns = epoch_ns() + wall_us * 1000.
  std::uint64_t epoch_ns() const noexcept { return epoch_ns_; }
  /// True iff every open has been matched by a close (i.e. between runs).
  bool quiescent() const noexcept { return open_.size() == 1; }

  // --- per-step utilization / space timeline ---
  /// Downsampled series covering every PRAM step recorded so far (the
  /// last bucket may still be filling). At most kMaxTimeline buckets.
  const std::vector<UtilSample>& timeline() const noexcept {
    return timeline_;
  }
  /// PRAM steps per timeline bucket (doubles on each pair-merge).
  std::uint64_t timeline_stride() const noexcept { return stride_; }
  /// Log2 histogram of active-processor counts over all recorded steps
  /// (see kHistBuckets for the bucketing).
  const std::array<std::uint64_t, kHistBuckets>& active_histogram()
      const noexcept {
    return active_hist_;
  }
  /// Current space-ledger gauges as mirrored from on_space.
  std::uint64_t cur_input_cells() const noexcept { return cur_input_; }
  std::uint64_t cur_aux_cells() const noexcept { return cur_aux_; }

 private:
  struct Frame {
    PhaseStats* node;
    double wall_open_ns;
  };

  void push_event(TraceEvent::Kind kind, const std::string& name,
                  std::uint64_t step);
  double now_ns() const;
  /// Record `count` uniform steps of `active` processors into the
  /// timeline + histogram (count > 1 only from on_charge).
  void bump_timeline(std::uint64_t count, std::uint64_t active);
  /// Make timeline_.back() the bucket covering pram_step_, pair-merging
  /// when the cap is hit.
  void ensure_bucket();

  PhaseStats root_;
  std::vector<Frame> open_;  ///< Innermost last; [0] is the root.
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_events_ = 0;
  std::size_t max_depth_ = 0;
  std::uint64_t epoch_ns_ = 0;  ///< steady_clock at construction.

  std::vector<UtilSample> timeline_;
  std::uint64_t stride_ = 1;     ///< PRAM steps per timeline bucket.
  std::uint64_t pram_step_ = 0;  ///< Steps recorded (timeline cursor).
  std::array<std::uint64_t, kHistBuckets> active_hist_{};
  std::uint64_t cur_input_ = 0;  ///< Ledger gauge mirror (on_space).
  std::uint64_t cur_aux_ = 0;    ///< Ledger gauge mirror (on_space).
};

}  // namespace iph::trace
