// NativeBackend — the direct thread-parallel 2-d upper-hull engine.
//
// The fast path behind iph::serve: no PRAM simulation, no per-step
// barrier, just a flat SoA pipeline over the caller's point span —
//
//   1. radix presort of the float coordinates into the lexicographic
//      index permutation (exec/radix.h; linear, not comparison-bound),
//   2. fork-join divide-and-conquer: each pool slice monotone-scans its
//      contiguous x-range into a chunk chain (pbbsbench-hull style
//      leaf parallelism), then one linear scan over the concatenated
//      chunk chains merges them into the global strict upper hull —
//      a point on the global hull is on its chunk's hull, and the
//      concatenation is still lex-sorted, so the merge is just the
//      same scan over an n-shrunk sequence,
//   3. parallel per-point binary search fills the paper's edge-above
//      output convention.
//
// All turn decisions go through geom/predicates' exact orient2d — the
// native engine and the PRAM simulator brace the same geometry, which
// is what makes the differential harness (tests/exec_diff_test) a
// meaningful oracle check and not a float-noise comparison.
//
// Small inputs (below a cutoff) run fully inline on the calling thread:
// the serving batcher's bread-and-butter queries never touch the pool.
// upper_hull is safe to call concurrently from many threads; results
// are deterministic and independent of thread count and of which calls
// run concurrently.
#pragma once

#include "exec/backend.h"
#include "exec/pool.h"

namespace iph::exec {

class NativeBackend final : public Backend {
 public:
  /// `threads` = total fork-join width (0 = support::env_threads()).
  /// The pool is spawned once here and shared by every upper_hull call.
  explicit NativeBackend(unsigned threads = 0);

  BackendKind kind() const noexcept override { return BackendKind::kNative; }
  unsigned threads() const noexcept { return pool_.threads(); }

  /// Strict upper hull + edge-above pointers (backend.h contract).
  /// `seed` and `alpha` are simulator knobs the deterministic native
  /// engine ignores; its cost metrics report zero (see backend.h).
  HullRun upper_hull(std::span<const geom::Point2> pts, std::uint64_t seed,
                     int alpha) override;

  /// Presorted fast path (backend.h): the radix sort is skipped and the
  /// chunked scan runs over the identity permutation. Same concurrency
  /// and determinism contracts as upper_hull.
  HullRun upper_hull_presorted(std::span<const geom::Point2> pts,
                               std::uint64_t seed, int alpha) override;

 private:
  HullRun finish(std::span<const geom::Point2> pts,
                 const std::vector<std::uint32_t>& order, bool par);

  ThreadPool pool_;
};

}  // namespace iph::exec
