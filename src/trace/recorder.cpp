#include "trace/recorder.h"

#include <algorithm>
#include <chrono>

namespace iph::trace {

namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Histogram bucket for an active-processor count (see kHistBuckets).
std::size_t hist_bucket(std::uint64_t active) {
  if (active == 0) return 0;
  std::size_t b = 1;
  while (active >>= 1) ++b;
  return b;  // 1 + floor(log2(active)), <= 65 for uint64
}

}  // namespace

const PhaseStats* PhaseStats::child(std::string_view child_name) const noexcept {
  for (const auto& c : children) {
    if (c->name == child_name) return c.get();
  }
  return nullptr;
}

Recorder::Recorder() : epoch_ns_(steady_now_ns()) {
  open_.push_back(Frame{&root_, 0});
  root_.invocations = 1;
}

Recorder::~Recorder() = default;

double Recorder::now_ns() const {
  return static_cast<double>(steady_now_ns() - epoch_ns_);
}

void Recorder::push_event(TraceEvent::Kind kind, const std::string& name,
                          std::uint64_t step) {
  if (events_.size() >= kMaxEvents) {
    ++dropped_events_;
    return;
  }
  TraceEvent e;
  e.kind = kind;
  e.name = name;
  e.step = step;
  e.wall_us = now_ns() / 1e3;
  events_.push_back(std::move(e));
}

void Recorder::on_phase_open(const std::string& name,
                             std::uint64_t step_index) {
  PhaseStats* parent = open_.back().node;
  PhaseStats* node = nullptr;
  for (const auto& c : parent->children) {
    if (c->name == name) {
      node = c.get();
      break;
    }
  }
  if (node == nullptr) {
    parent->children.push_back(std::make_unique<PhaseStats>());
    node = parent->children.back().get();
    node->name = name;
    node->first_open_step = step_index;
  }
  ++node->invocations;
  // Cells already live at open are live during the phase: seed its peaks.
  if (cur_input_ + cur_aux_ > node->peak_live) {
    node->peak_live = cur_input_ + cur_aux_;
  }
  if (cur_aux_ > node->peak_aux) node->peak_aux = cur_aux_;
  open_.push_back(Frame{node, now_ns()});
  if (open_.size() - 1 > max_depth_) max_depth_ = open_.size() - 1;
  push_event(TraceEvent::Kind::kOpen, name, step_index);
}

void Recorder::on_phase_close(std::uint64_t step_index) {
  if (open_.size() <= 1) return;  // unmatched close: ignore, keep the root
  Frame f = open_.back();
  open_.pop_back();
  f.node->wall_ns += now_ns() - f.wall_open_ns;
  push_event(TraceEvent::Kind::kClose, std::string(), step_index);
}

// A node can never appear twice in open_ (a node's identity is its
// (parent, name) path, and the stack is exactly one path), so charging
// every open frame never double-counts.
void Recorder::on_step(std::uint64_t active, std::uint64_t conflicts) {
  for (const Frame& f : open_) {
    f.node->steps += 1;
    f.node->work += active;
    f.node->cw_conflicts += conflicts;
    if (active > f.node->max_active) f.node->max_active = active;
  }
  open_.back().node->direct_steps += 1;
  bump_timeline(1, active);
}

void Recorder::on_charge(std::uint64_t steps, std::uint64_t work_per_step) {
  for (const Frame& f : open_) {
    f.node->steps += steps;
    f.node->work += steps * work_per_step;
    if (work_per_step > f.node->max_active) {
      f.node->max_active = work_per_step;
    }
  }
  open_.back().node->direct_steps += steps;
  bump_timeline(steps, work_per_step);
}

void Recorder::on_space(std::uint64_t input_cells, std::uint64_t aux_cells) {
  cur_input_ = input_cells;
  cur_aux_ = aux_cells;
  const std::uint64_t live = input_cells + aux_cells;
  for (const Frame& f : open_) {
    if (live > f.node->peak_live) f.node->peak_live = live;
    if (aux_cells > f.node->peak_aux) f.node->peak_aux = aux_cells;
  }
  // Fold a between-steps spike into the bucket the next step lands in,
  // so the exported series never understates a watermark.
  ensure_bucket();
  UtilSample& b = timeline_.back();
  if (live > b.live_max) b.live_max = live;
  if (aux_cells > b.aux_max) b.aux_max = aux_cells;
}

void Recorder::ensure_bucket() {
  if (!timeline_.empty() &&
      pram_step_ < timeline_.back().step_begin + stride_) {
    return;
  }
  if (timeline_.size() >= kMaxTimeline) {
    // Pair-merge: buckets are contiguous from step 0, so (2i, 2i+1)
    // always form one aligned bucket of the doubled stride.
    for (std::size_t i = 0; i + 1 < timeline_.size(); i += 2) {
      UtilSample& a = timeline_[i];
      const UtilSample& c = timeline_[i + 1];
      a.steps += c.steps;
      a.active_sum += c.active_sum;
      a.active_max = std::max(a.active_max, c.active_max);
      a.live_max = std::max(a.live_max, c.live_max);
      a.aux_max = std::max(a.aux_max, c.aux_max);
      timeline_[i / 2] = a;
    }
    timeline_.resize(timeline_.size() / 2);
    stride_ *= 2;
  }
  UtilSample b;
  b.step_begin = (pram_step_ / stride_) * stride_;
  b.live_max = cur_input_ + cur_aux_;
  b.aux_max = cur_aux_;
  timeline_.push_back(b);
}

void Recorder::bump_timeline(std::uint64_t count, std::uint64_t active) {
  if (count > 0) active_hist_[hist_bucket(active)] += count;
  while (count > 0) {
    ensure_bucket();
    UtilSample& b = timeline_.back();
    const std::uint64_t room = b.step_begin + stride_ - pram_step_;
    const std::uint64_t take = std::min(count, room);
    b.steps += take;
    b.active_sum += take * active;
    if (active > b.active_max) b.active_max = active;
    const std::uint64_t live = cur_input_ + cur_aux_;
    if (live > b.live_max) b.live_max = live;
    if (cur_aux_ > b.aux_max) b.aux_max = cur_aux_;
    pram_step_ += take;
    count -= take;
  }
}

}  // namespace iph::trace
