# Empty dependencies file for e11_split_decay.
# This may be replaced when dependencies are built.
