// E16 — cluster serving: aggregate small-query throughput scaling
// 1 -> N hullserved backend processes behind the iph::cluster Router,
// p99 behavior under hot-shard skew, and exact fleet-stats
// reconciliation under admin mark-down/mark-up churn.
//
// Each row spawns REAL hullserved subprocesses (--port 0, ports read
// from their "listening <port>" stdout line) and drives them through
// an in-process Router — the very code tools/hullrouter wraps — with
// closed-loop client threads, each owning one Router::Conn.
//
// Scaling claim, normalized for the machine it runs on: with B
// backends the ideal aggregate speedup is min(B, P) where P is the
// host's hardware concurrency (a 1-core machine cannot scale
// 4 CPU-bound processes; CI's multi-core runners can). The gated
// counter is
//     scaling_inefficiency = qps_1 * min(B, P) / qps_B
// i.e. ideal-normalized slowdown: 1.0 is perfect scaling, and the
// claim scaling_inefficiency <= 1.6 demands >= 62.5% parallel
// efficiency at every fleet size — at B = 4 on a >= 4-core box that is
// exactly the ">= 2.5x aggregate throughput vs one backend"
// acceptance bar (4 / 1.6 = 2.5). Raw qps / speedup / p99_ms ride
// along for the report tables (wall-clock counters are never
// baseline-compared; only deterministic ones are).
//
// The skew row routes every request at ONE hot key (all ids equal), so
// the whole load lands on a single shard: hot_shard_share documents
// the concentration and p99_ms prices the hot-shard queueing tax
// against the uniform row at the same fleet size.
//
// The churn row runs three load phases with an admin mark-down of one
// shard between phases 1-2 and its mark-up between 2-3 (deterministic
// phase barriers, not timers), then diffs the router's fleet statz
// roll-up across the run and requires EXACT reconciliation:
//     fleet submitted == client requests + router retries
//     router forwards == fleet submitted
//     fleet completed == client oks
// A drained backend keeps answering its scrape, so the merged
// before/after diff loses nothing — any mismatch fails the bench via
// SkipWithError.
#include <benchmark/benchmark.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "report.h"
#include "cluster/endpoint.h"
#include "cluster/protocol.h"
#include "cluster/router.h"
#include "cluster/stats.h"
#include "stats/export.h"
#include "stats/stats.h"
#include "support/linechan.h"
#include "trace/json.h"

namespace {

using iph::cluster::Router;
using iph::cluster::RouterConfig;
using iph::trace::Json;

constexpr int kClientThreads = 8;
constexpr int kRequestsPerThread = 32;
constexpr std::size_t kPointsPerRequest = 256;

/// One hullserved subprocess, port learned from its stdout contract.
class Backend {
 public:
  Backend() {
    int out[2];
    if (::pipe(out) != 0) return;
    pid_ = ::fork();
    if (pid_ == 0) {
      ::dup2(out[1], STDOUT_FILENO);
      ::close(out[0]);
      ::close(out[1]);
      ::execl(IPH_HULLSERVED_BIN, "hullserved", "--port", "0", "--shards",
              "1", "--workers", "1", "--threads", "4", "--backend", "pram",
              "--seed", "42", "--quiet", static_cast<char*>(nullptr));
      _exit(127);
    }
    ::close(out[1]);
    out_fd_ = out[0];
    iph::support::LineChannel ch(out_fd_, -1);
    std::string line;
    while (ch.read_line(&line)) {
      int p = 0;
      if (std::sscanf(line.c_str(), "listening %d", &p) == 1) {
        port_ = p;
        break;
      }
    }
  }

  ~Backend() {
    if (pid_ > 0) {
      ::kill(pid_, SIGTERM);
      ::waitpid(pid_, nullptr, 0);
    }
    if (out_fd_ >= 0) ::close(out_fd_);
  }

  int port() const { return port_; }

 private:
  pid_t pid_ = -1;
  int port_ = 0;
  int out_fd_ = -1;
};

RouterConfig router_config(const std::vector<std::unique_ptr<Backend>>& fleet) {
  RouterConfig cfg;
  for (const auto& b : fleet) {
    cfg.endpoints.push_back(iph::cluster::Endpoint{"127.0.0.1", b->port()});
  }
  cfg.retry_limit = 2;
  cfg.probe_period_ms = 0;  // deterministic: request path only
  return cfg;
}

std::string request_line(std::uint64_t id) {
  Json j = Json::object();
  j["id"] = Json(id);
  j["n"] = Json(static_cast<std::uint64_t>(kPointsPerRequest));
  j["workload"] = Json("disk");
  j["seed"] = Json(id);
  return j.dump();
}

struct LoadResult {
  std::uint64_t ok = 0;
  std::uint64_t total = 0;
  std::vector<double> latencies_ms;
};

/// Closed-loop load: kClientThreads threads, each with its own
/// Router::Conn, `per_thread` requests each. `hot_id` != 0 pins every
/// request to one key (skew); otherwise ids are unique per request.
LoadResult run_load(Router& router, int per_thread, std::uint64_t id_base,
                    std::uint64_t hot_id = 0) {
  std::vector<LoadResult> per(kClientThreads);
  std::vector<std::thread> threads;
  threads.reserve(kClientThreads);
  for (int t = 0; t < kClientThreads; ++t) {
    threads.emplace_back([&router, &per, per_thread, id_base, hot_id, t] {
      Router::Conn conn(router);
      LoadResult& r = per[t];
      r.latencies_ms.reserve(static_cast<std::size_t>(per_thread));
      for (int i = 0; i < per_thread; ++i) {
        const std::uint64_t id =
            hot_id != 0
                ? hot_id
                : id_base + static_cast<std::uint64_t>(t) * 100000 +
                      static_cast<std::uint64_t>(i);
        const auto t0 = std::chrono::steady_clock::now();
        const std::string reply = conn.handle_line(request_line(id));
        const auto t1 = std::chrono::steady_clock::now();
        ++r.total;
        Json rj;
        std::string err;
        if (Json::parse(reply, &rj, &err) && rj.get_str("status") == "ok") {
          ++r.ok;
        }
        r.latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    });
  }
  for (auto& t : threads) t.join();
  LoadResult all;
  for (auto& r : per) {
    all.ok += r.ok;
    all.total += r.total;
    all.latencies_ms.insert(all.latencies_ms.end(), r.latencies_ms.begin(),
                            r.latencies_ms.end());
  }
  return all;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

/// Parse the merged snapshot out of a fleet_statz answer.
bool fleet_snapshot(Router& router, iph::stats::RegistrySnapshot* out,
                    std::string* err) {
  const Json doc = router.fleet_statz(/*prometheus=*/false);
  const Json* s = doc.find("statz");
  if (s == nullptr) {
    *err = "fleet_statz answered without a \"statz\" member";
    return false;
  }
  return iph::stats::from_json(*s, *out, err);
}

double ideal_speedup(int backends) {
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  return static_cast<double>(
      std::min<unsigned>(static_cast<unsigned>(backends), hw));
}

double g_qps_1 = 0;  ///< B = 1 row's throughput (rows run in order)

void e16_scaling(benchmark::State& state) {
  const int backends = static_cast<int>(state.range(0));
  double qps = 0, p99 = 0;
  std::uint64_t forwards = 0, fleet_submitted = 0, fleet_completed = 0;
  for (auto _ : state) {
    std::vector<std::unique_ptr<Backend>> fleet;
    for (int b = 0; b < backends; ++b) {
      fleet.push_back(std::make_unique<Backend>());
      if (fleet.back()->port() == 0) {
        state.SkipWithError("backend failed to start");
        return;
      }
    }
    Router router(router_config(fleet));
    run_load(router, /*per_thread=*/2, /*id_base=*/900000);  // warm dials
    const auto t0 = std::chrono::steady_clock::now();
    const LoadResult r = run_load(router, kRequestsPerThread, 1);
    const auto t1 = std::chrono::steady_clock::now();
    if (r.ok != r.total) {
      state.SkipWithError("not every clustered request answered ok");
      return;
    }
    qps = static_cast<double>(r.total) /
          std::chrono::duration<double>(t1 - t0).count();
    p99 = percentile(r.latencies_ms, 0.99);

    iph::stats::RegistrySnapshot snap;
    std::string err;
    if (!fleet_snapshot(router, &snap, &err)) {
      state.SkipWithError(("fleet statz: " + err).c_str());
      return;
    }
    namespace rn = iph::cluster::statnames;
    forwards = snap.counter_or0(rn::kForwards);
    fleet_submitted = snap.counter_or0("iph_serve_submitted_total");
    fleet_completed = snap.counter_or0("iph_serve_completed_total");
    if (forwards != fleet_submitted) {
      state.SkipWithError("router forwards != fleet submitted");
      return;
    }
    iph::bench::attach_stats("scaling/B=" + std::to_string(backends),
                             iph::stats::to_json(snap));
  }
  if (backends == 1) g_qps_1 = qps;
  const double base = g_qps_1 > 0 ? g_qps_1 : qps;
  state.SetLabel("scale");
  state.counters["backends"] = backends;
  state.counters["qps"] = qps;
  state.counters["speedup"] = qps / base;
  state.counters["ideal"] = ideal_speedup(backends);
  state.counters["scaling_inefficiency"] = base * ideal_speedup(backends) / qps;
  state.counters["p99_ms"] = p99;
  state.counters["forwards"] = static_cast<double>(forwards);
  state.counters["fleet_completed"] = static_cast<double>(fleet_completed);
}
BENCHMARK(e16_scaling)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void e16_skew(benchmark::State& state) {
  const int backends = static_cast<int>(state.range(0));
  double qps = 0, p99 = 0, hot_share = 0;
  for (auto _ : state) {
    std::vector<std::unique_ptr<Backend>> fleet;
    for (int b = 0; b < backends; ++b) {
      fleet.push_back(std::make_unique<Backend>());
      if (fleet.back()->port() == 0) {
        state.SkipWithError("backend failed to start");
        return;
      }
    }
    Router router(router_config(fleet));
    run_load(router, /*per_thread=*/2, /*id_base=*/900000);
    const auto t0 = std::chrono::steady_clock::now();
    // Every request carries the same id: one hot key, one hot shard.
    const LoadResult r =
        run_load(router, kRequestsPerThread, 1, /*hot_id=*/7);
    const auto t1 = std::chrono::steady_clock::now();
    if (r.ok != r.total) {
      state.SkipWithError("not every skewed request answered ok");
      return;
    }
    qps = static_cast<double>(r.total) /
          std::chrono::duration<double>(t1 - t0).count();
    p99 = percentile(r.latencies_ms, 0.99);

    namespace rn = iph::cluster::statnames;
    const iph::stats::RegistrySnapshot s = router.registry().snapshot();
    std::uint64_t hot = 0, routed = 0;
    for (int k = 0; k < backends; ++k) {
      const std::uint64_t c = s.counter_or0(iph::stats::labeled(
          rn::kRoutesBase, "shard", std::to_string(k)));
      hot = std::max(hot, c);
      routed += c;
    }
    hot_share = routed > 0
                    ? static_cast<double>(hot) / static_cast<double>(routed)
                    : 0;
  }
  state.SetLabel("skew");
  state.counters["backends"] = backends;
  state.counters["qps"] = qps;
  state.counters["p99_ms"] = p99;
  state.counters["hot_shard_share"] = hot_share;
}
BENCHMARK(e16_skew)->Arg(4)->Iterations(1)->Unit(benchmark::kMillisecond);

void e16_churn(benchmark::State& state) {
  const int backends = static_cast<int>(state.range(0));
  double qps = 0;
  std::uint64_t markdowns = 0, markups = 0, rebuilds = 0;
  for (auto _ : state) {
    std::vector<std::unique_ptr<Backend>> fleet;
    for (int b = 0; b < backends; ++b) {
      fleet.push_back(std::make_unique<Backend>());
      if (fleet.back()->port() == 0) {
        state.SkipWithError("backend failed to start");
        return;
      }
    }
    Router router(router_config(fleet));
    run_load(router, /*per_thread=*/2, /*id_base=*/900000);

    iph::stats::RegistrySnapshot before;
    std::string err;
    if (!fleet_snapshot(router, &before, &err)) {
      state.SkipWithError(("fleet statz: " + err).c_str());
      return;
    }
    // Three phases with deterministic admin churn at the barriers: the
    // drained shard keeps serving its in-flight lines and its scrape,
    // so the roll-up must lose NOTHING.
    const auto t0 = std::chrono::steady_clock::now();
    LoadResult all = run_load(router, kRequestsPerThread / 2, 1);
    router.mark_down_admin(backends - 1);
    const LoadResult mid = run_load(router, kRequestsPerThread / 2, 20000);
    router.mark_up_admin(backends - 1);
    const LoadResult tail = run_load(router, kRequestsPerThread / 2, 40000);
    const auto t1 = std::chrono::steady_clock::now();
    all.ok += mid.ok + tail.ok;
    all.total += mid.total + tail.total;
    if (all.ok != all.total) {
      state.SkipWithError("not every request answered ok under churn");
      return;
    }
    qps = static_cast<double>(all.total) /
          std::chrono::duration<double>(t1 - t0).count();

    iph::stats::RegistrySnapshot after;
    if (!fleet_snapshot(router, &after, &err)) {
      state.SkipWithError(("fleet statz: " + err).c_str());
      return;
    }
    const iph::stats::RegistrySnapshot d = after.diff(before);
    namespace rn = iph::cluster::statnames;
    const std::uint64_t retries =
        d.counter_or0(iph::stats::labeled(rn::kRetriesBase, "reason",
                                          "rejected_full")) +
        d.counter_or0(iph::stats::labeled(rn::kRetriesBase, "reason",
                                          "rejected_shutdown"));
    const std::uint64_t submitted =
        d.counter_or0("iph_serve_submitted_total");
    const std::uint64_t completed =
        d.counter_or0("iph_serve_completed_total");
    // The exactness gate: churn may move traffic, never lose counts.
    if (submitted != all.total + retries) {
      state.SkipWithError("fleet submitted != client requests + retries");
      return;
    }
    if (d.counter_or0(rn::kForwards) != submitted) {
      state.SkipWithError("router forwards != fleet submitted");
      return;
    }
    if (completed != all.ok) {
      state.SkipWithError("fleet completed != client oks");
      return;
    }
    markdowns = d.counter_or0(
        iph::stats::labeled(rn::kMarkdownsBase, "cause", "admin"));
    markups = d.counter_or0(
        iph::stats::labeled(rn::kMarkupsBase, "cause", "admin"));
    rebuilds = d.counter_or0(rn::kRingRebuilds);
    if (markdowns != 1 || markups != 1) {
      state.SkipWithError("admin churn counters did not record the schedule");
      return;
    }
    iph::bench::attach_stats("churn/B=" + std::to_string(backends),
                             iph::stats::to_json(d));
  }
  state.SetLabel("churn");
  state.counters["backends"] = backends;
  state.counters["qps"] = qps;
  state.counters["reconciled"] = 1;
  state.counters["markdowns"] = static_cast<double>(markdowns);
  state.counters["markups"] = static_cast<double>(markups);
  state.counters["ring_rebuilds"] = static_cast<double>(rebuilds);
}
BENCHMARK(e16_churn)->Arg(4)->Iterations(1)->Unit(benchmark::kMillisecond);

}  // namespace

// The cluster scaling claim (EXPERIMENTS.md E16): ideal-normalized
// inefficiency <= 1.6 at every fleet size — on a >= 4-core host the
// B = 4 row then requires >= 2.5x aggregate throughput vs B = 1
// (4 / 1.6), while a 1-core host is held to the same 62.5% efficiency
// against its ideal of min(B, P) = 1.
IPH_BENCH_MAIN("e16",
               {"cluster-scaling", "scaling_inefficiency", "below_const",
                1.6, "", "scale"})
