// Bounded MPMC request queue with admission control.
//
// The queue is the service's only backpressure point: push() never
// blocks — a full queue rejects immediately (Admit::kFull) so callers
// get a loaded-shed answer instead of unbounded latency, and a closed
// queue rejects with Admit::kClosed. Consumers block in pop()/
// pop_batch(); close() wakes them all, after which pops DRAIN the
// backlog (graceful shutdown: every admitted request is still handed to
// a worker) and then return empty.
//
// pop_batch implements the batching window: it blocks for the first
// item, then keeps taking already-queued items — waiting up to `window`
// for stragglers — until the request or point budget is reached. The
// window prices latency against coalescing; the budgets bound the
// arena one PRAM run touches.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <vector>

#include "serve/request.h"

namespace iph::serve {

/// A queued request plus its completion channel and arrival stamp.
struct Pending {
  Request request;
  std::promise<Response> promise;
  Clock::time_point enqueued_at{};
};

class BoundedQueue {
 public:
  enum class Admit : std::uint8_t { kOk, kFull, kClosed };

  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {}
  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking admission: kFull at capacity, kClosed after close().
  /// On kOk the queue owns `p`; otherwise `p` is untouched (the caller
  /// still holds the promise to answer the rejection on).
  Admit push(Pending& p);

  /// One item, blocking until something arrives or the queue closes.
  /// Empty optional = closed and fully drained.
  std::optional<Pending> pop();

  /// Up to max_requests items totalling at most max_points input points
  /// (the first item is taken regardless of its size, so oversized
  /// requests cannot wedge the queue). Blocks for the first item; then
  /// waits up to `window` past the first take for stragglers. Empty
  /// vector = closed and fully drained.
  std::vector<Pending> pop_batch(std::size_t max_requests,
                                 std::size_t max_points,
                                 std::chrono::microseconds window);

  /// No further admissions; blocked consumers wake and drain.
  void close();

  std::size_t size() const;
  bool closed() const;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> q_;
  bool closed_ = false;
};

}  // namespace iph::serve
