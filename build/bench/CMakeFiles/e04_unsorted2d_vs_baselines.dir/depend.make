# Empty dependencies file for e04_unsorted2d_vs_baselines.
# This may be replaced when dependencies are built.
