// Deterministic, schedule-independent randomness for the PRAM simulator.
//
// Virtual processors must draw random bits that do not depend on how they
// are multiplexed onto hardware threads, or runs would not be reproducible.
// We therefore use counter-based generation: every draw is a pure function
// of (seed, stream, counter). SplitMix64 is used as the bijective mixer; it
// passes BigCrush as a mixer of distinct counters and is more than adequate
// for the Bernoulli/vote/sample draws the algorithms make.
#pragma once

#include <cstdint>

namespace iph::support {

/// SplitMix64 finalizer: a bijective mixing of a 64-bit value.
constexpr std::uint64_t splitmix64(std::uint64_t z) noexcept {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d4a2fcf31db1f9ULL;
  return z ^ (z >> 31);
}

/// Mix three 64-bit values (seed, stream id, counter) into one random word.
constexpr std::uint64_t mix3(std::uint64_t seed, std::uint64_t stream,
                             std::uint64_t counter) noexcept {
  std::uint64_t h = splitmix64(seed ^ 0x2545f4914f6cdd1dULL);
  h = splitmix64(h ^ stream);
  h = splitmix64(h ^ counter);
  return h;
}

/// A tiny counter-based RNG handle for one virtual processor in one PRAM
/// step. Cheap to construct; draws are independent across (seed, stream,
/// counter) triples.
class Rng {
 public:
  constexpr Rng(std::uint64_t seed, std::uint64_t stream,
                std::uint64_t counter = 0) noexcept
      : seed_(seed), stream_(stream), counter_(counter) {}

  /// Next raw 64 random bits.
  constexpr std::uint64_t next_u64() noexcept {
    return mix3(seed_, stream_, counter_++);
  }

  /// Uniform integer in [0, bound). bound must be > 0. Uses the widening
  /// multiply trick (Lemire); the modulo bias is < 2^-32 for bound < 2^32,
  /// which is far below the failure probabilities we measure.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    using u128 = unsigned __int128;
    return static_cast<std::uint64_t>(
        (static_cast<u128>(next_u64()) * static_cast<u128>(bound)) >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  constexpr bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return next_double() < p;
  }

 private:
  std::uint64_t seed_;
  std::uint64_t stream_;
  std::uint64_t counter_;
};

}  // namespace iph::support
