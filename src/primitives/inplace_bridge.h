// In-place bridge finding (Section 3.3 of the paper, Lemmas 4.1-4.2).
//
// The bridge problem: among the points of problem j (scattered through
// the input array, identified only by problem_of[i] == j — never
// compacted or reordered), find the upper-hull edge (2-d) or facet (3-d)
// vertically above problem j's splitter point.
//
// The procedure per problem, all problems advancing in the SAME PRAM
// steps (this is the point of being in-place):
//   1. survivors (initially: all of the problem's points) sample
//      themselves into the problem's 16k-cell workspace with escalating
//      probability p_1 = 2k/m, p_t = min(1, 2k * p_{t-1}) — so p_t = 1
//      from the 4th round on, realizing the paper's "then perform
//      compaction of the survivors into the base problem": once p = 1
//      every survivor attempts every round and, with the survivor count
//      down to ~k^(1/5) (Lemma 4.1), all of them land in the workspace;
//   2. the base problem (sample + previous basis + splitter) is solved
//      deterministically by the O(1)-time brute force (Observation 2.2);
//   3. every point of the problem tests the new solution; violators are
//      the next round's survivors. No survivors => the base solution is
//      supported by the whole problem: it IS the bridge.
// A problem that still has survivors after `alpha` rounds is reported
// failed (ok = false) — the caller failure-sweeps it (Section 2.3).
//
// Confidence: Lemma 4.2 — failure probability e^{-Omega(k^r)}; bench e08
// measures the iteration histogram and failure rate.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "geom/hull_types.h"
#include "geom/point.h"
#include "pram/machine.h"

namespace iph::primitives {

/// problem_of value for points not participating in any problem.
inline constexpr std::uint32_t kNoProblem = 0xffffffffu;

struct BridgeProblem {
  geom::Index splitter = geom::kNone;  ///< global point index
  std::uint64_t size_est = 0;          ///< ~ number of the problem's points
  std::uint64_t k = 0;                 ///< base-problem size parameter
  /// 2-d gap semantics (see batched_brute_bridge_2d): the bridge must
  /// satisfy a.x <= pts[splitter_left].x and pts[splitter].x <= b.x.
  /// kNone (default) means splitter_left == splitter, i.e. the plain
  /// "edge above one point" problem. The presorted tree algorithm sets
  /// splitter_left = mid-1 and splitter = mid so bridges span the tree
  /// boundary even when a hull vertex sits exactly on it.
  geom::Index splitter_left = geom::kNone;

  geom::Index left() const noexcept {
    return splitter_left == geom::kNone ? splitter : splitter_left;
  }
};

struct BridgeOutcome {
  geom::Index a = geom::kNone;  ///< bridge left endpoint (2-d)
  geom::Index b = geom::kNone;  ///< bridge right endpoint (2-d)
  geom::Facet3 facet;           ///< bridge facet (3-d)
  bool ok = false;              ///< solved within alpha rounds
  int iterations = 0;           ///< rounds used (== alpha when !ok)
};

inline constexpr int kDefaultAlpha = 8;  // the paper's constant (ours, e08)

/// Solve all 2-d bridge problems simultaneously. O(alpha) PRAM steps.
std::vector<BridgeOutcome> inplace_bridges_2d(
    pram::Machine& m, std::span<const geom::Point2> pts,
    std::span<const std::uint32_t> problem_of,
    std::span<const BridgeProblem> problems, int alpha = kDefaultAlpha);

/// Multi-membership form: a point may belong to SEVERAL problems at once
/// (in the presorted tree algorithm every point participates in one
/// bridge problem per ancestor, which is where the O(n log n) processor
/// bound of Lemma 2.5 comes from). The caller enumerates `n_units`
/// virtual processors; unit u stands by point unit_point(u) inside
/// problem unit_problem(u) (kNoProblem units are idle).
using UnitPointFn = std::function<std::uint64_t(std::uint64_t)>;
using UnitProblemFn = std::function<std::uint32_t(std::uint64_t)>;

std::vector<BridgeOutcome> inplace_bridges_2d_units(
    pram::Machine& m, std::span<const geom::Point2> pts,
    std::uint64_t n_units, const UnitPointFn& unit_point,
    const UnitProblemFn& unit_problem,
    std::span<const BridgeProblem> problems, int alpha = kDefaultAlpha);

std::vector<BridgeOutcome> inplace_bridges_3d_units(
    pram::Machine& m, std::span<const geom::Point3> pts,
    std::uint64_t n_units, const UnitPointFn& unit_point,
    const UnitProblemFn& unit_problem,
    std::span<const BridgeProblem> problems, int alpha = kDefaultAlpha);

/// 3-d analogue (facet through the splitter, Lemma 4.2's 3-d case with
/// k = p^(1/4)).
std::vector<BridgeOutcome> inplace_bridges_3d(
    pram::Machine& m, std::span<const geom::Point3> pts,
    std::span<const std::uint32_t> problem_of,
    std::span<const BridgeProblem> problems, int alpha = kDefaultAlpha);

}  // namespace iph::primitives
