// Session-level metric bundle for iph::session.
//
// Same shape as serve/stats.h: SessionStats registers the streaming
// stack's instruments in a caller-provided stats::Registry and hands
// out typed references. hullserved registers it in the HullService's
// registry so one `statz` scrape covers batch and streaming traffic.
//
// Reconciliation invariants (asserted by session_test, hullload
// --stream --scrape and the CI serve-smoke job):
//   opened == closed + live_sessions
//   appends == delta_ops.count == append_ms.count
//   closed  == peak_aux_cells.count     (one watermark per session)
//   rebuilds == rebuild_ms.count
//           == rebuild_backend{pram} + rebuild_backend{native}
//   aux_cells == sum over LIVE sessions of their ledger level
//               (drops to 0 when every session is closed)
// All counters are bumped BEFORE the corresponding wire response is
// written, so a client that has collected its responses reads
// fully-settled counters.
#pragma once

#include <cstdint>
#include <vector>

#include "pram/metrics.h"
#include "stats/stats.h"

namespace iph::session {

namespace statnames {
inline constexpr const char* kOpened = "iph_session_opened_total";
inline constexpr const char* kClosed = "iph_session_closed_total";
/// Admission/validation rejects, labeled reason=cap|unknown|closed|oversized.
inline constexpr const char* kRejectedBase = "iph_session_rejected_total";
inline constexpr const char* kAppends = "iph_session_appends_total";
inline constexpr const char* kAppendPoints = "iph_session_append_points_total";
inline constexpr const char* kRebuilds = "iph_session_rebuilds_total";
inline constexpr const char* kRebuildMismatch =
    "iph_session_rebuild_mismatch_total";
/// Which engine ran each rebuild, labeled backend=pram|native.
inline constexpr const char* kRebuildBackendBase =
    "iph_session_rebuild_backend_total";
inline constexpr const char* kLiveSessions = "iph_session_live_sessions";
/// Live session workspace, in ledger cells, summed over open sessions.
inline constexpr const char* kAuxCells = "iph_session_aux_cells";
inline constexpr const char* kDeltaOps = "iph_session_delta_ops";
inline constexpr const char* kAppendMs = "iph_session_append_ms";
inline constexpr const char* kRebuildMs = "iph_session_rebuild_ms";
/// Per-session peak workspace (ledger peak_aux), recorded at close.
inline constexpr const char* kPeakAuxCells = "iph_session_peak_aux_cells";
inline constexpr const char* kPramPrefix = "iph_session_pram_";
}  // namespace statnames

/// Bucket ladder for workspace-cell histograms (powers of four up to
/// 64M cells — sessions are small by design; the ladder shows it).
std::vector<double> space_cells_bounds();

class SessionStats {
 public:
  explicit SessionStats(stats::Registry& registry);

  stats::Counter& opened;
  stats::Counter& closed;
  stats::Counter& rejected_cap;
  stats::Counter& rejected_unknown;
  stats::Counter& rejected_closed;
  stats::Counter& rejected_oversized;
  stats::Counter& appends;
  stats::Counter& append_points;
  stats::Counter& rebuilds;
  stats::Counter& rebuild_mismatch;
  stats::Counter& rebuild_pram;
  stats::Counter& rebuild_native;

  stats::Gauge& live_sessions;
  stats::Gauge& aux_cells;

  stats::Histogram& delta_ops;
  stats::Histogram& append_ms;
  stats::Histogram& rebuild_ms;
  stats::Histogram& peak_aux_cells;

  /// Fold a rebuild's PRAM counters into iph_session_pram_*_total
  /// (same visitor-order scheme as serve::ServeStats::fold_pram).
  void fold_pram(const pram::Metrics& m) noexcept;

 private:
  std::vector<stats::Counter*> pram_counters_;
};

}  // namespace iph::session
