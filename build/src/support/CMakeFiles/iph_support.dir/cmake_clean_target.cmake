file(REMOVE_RECURSE
  "libiph_support.a"
)
