#include "exec/pram_backend.h"

#include "core/api.h"
#include "pram/machine.h"

namespace iph::exec {

HullRun PramBackend::upper_hull(std::span<const geom::Point2> pts,
                                std::uint64_t seed, int alpha) {
  m_.reset(seed);
  Options opts;
  opts.alpha = alpha;
  HullRun run;
  {
    pram::Machine::Phase phase(m_, "serve/request");
    Hull2D h = iph::upper_hull_2d(m_, pts, opts);
    run.hull = std::move(h.result);
    run.metrics = h.metrics;
  }
  return run;
}

HullRun PramBackend::upper_hull_presorted(std::span<const geom::Point2> pts,
                                          std::uint64_t seed, int alpha) {
  m_.reset(seed);
  Options opts;
  opts.alpha = alpha;
  HullRun run;
  {
    pram::Machine::Phase phase(m_, "serve/presorted");
    Hull2D h = iph::upper_hull_2d_presorted(m_, pts, opts);
    run.hull = std::move(h.result);
    run.metrics = h.metrics;
  }
  return run;
}

}  // namespace iph::exec
