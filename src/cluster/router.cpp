#include "cluster/router.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "cluster/merge.h"
#include "cluster/protocol.h"
#include "stats/export.h"
#include "support/rng.h"

namespace iph::cluster {

namespace {

using trace::Json;
using ClockT = std::chrono::steady_clock;

/// Hash-stream separators so request keys and session-open keys never
/// collide even under identical salts.
constexpr std::uint64_t kRequestStream = 0x72657175657374ULL;
constexpr std::uint64_t kSessionStream = 0x73657373696f6eULL;

double ms_since(ClockT::time_point t0) {
  return std::chrono::duration<double, std::milli>(ClockT::now() - t0)
      .count();
}

/// One command round trip on a fresh connection (scrapes and tracez
/// fans use throwaway connections so they never interleave with a
/// client conn's request/answer ordering).
bool oneshot(const Endpoint& ep, const std::string& line,
             std::string* reply) {
  const int fd = dial(ep);
  if (fd < 0) return false;
  support::LineChannel ch(fd, fd);
  const bool ok = ch.write_line(line) && ch.read_line(reply);
  ::close(fd);
  return ok;
}

}  // namespace

Router::Router(RouterConfig cfg)
    : cfg_(std::move(cfg)),
      stats_(registry_, cfg_.endpoints.size()),
      ring_(cfg_.endpoints.size(), cfg_.vnodes, cfg_.seed),
      shards_(cfg_.endpoints.size()) {
  stats_.backends_up.set(static_cast<std::int64_t>(shards_.size()));
  if (cfg_.probe_period_ms > 0) {
    probe_thread_ = std::thread([this] { probe_loop(); });
  }
}

Router::~Router() {
  if (probe_thread_.joinable()) {
    {
      std::lock_guard<std::mutex> lk(probe_mu_);
      probe_stop_ = true;
    }
    probe_cv_.notify_one();
    probe_thread_.join();
  }
}

bool Router::shard_up(std::size_t shard) const {
  std::lock_guard<std::mutex> lk(mu_);
  return shard < shards_.size() && ring_.up(shard);
}

bool Router::mark_down_admin(std::size_t shard) {
  std::lock_guard<std::mutex> lk(mu_);
  if (shard >= shards_.size()) return false;
  if (shards_[shard].down == Down::kAdmin) return true;
  const bool was_up = shards_[shard].down == Down::kNo;
  shards_[shard].down = Down::kAdmin;
  if (was_up) {
    ring_.set_up(shard, false);
    stats_.ring_rebuilds.inc();
    stats_.backends_up.add(-1);
  }
  // An io-down shard being drained still counts as an admin action;
  // cause tells WHY the shard left the ring, so only a real
  // up->down transition bumps it.
  if (was_up) stats_.markdowns_admin.inc();
  return true;
}

bool Router::mark_up_admin(std::size_t shard) {
  std::lock_guard<std::mutex> lk(mu_);
  if (shard >= shards_.size()) return false;
  if (shards_[shard].down == Down::kNo) return true;
  shards_[shard].down = Down::kNo;
  ring_.set_up(shard, true);
  stats_.ring_rebuilds.inc();
  stats_.backends_up.add(1);
  stats_.markups_admin.inc();
  return true;
}

bool Router::mark_down_io(std::size_t shard) {
  std::lock_guard<std::mutex> lk(mu_);
  if (shard >= shards_.size() || shards_[shard].down != Down::kNo) {
    return false;
  }
  shards_[shard].down = Down::kIo;
  ring_.set_up(shard, false);
  stats_.ring_rebuilds.inc();
  stats_.backends_up.add(-1);
  stats_.markdowns_io.inc();
  return true;
}

bool Router::scrape_shard(std::size_t shard,
                          stats::RegistrySnapshot* out) {
  Json cmd = Json::object();
  cmd["cmd"] = Json("statz");
  std::string reply;
  if (!oneshot(cfg_.endpoints[shard], cmd.dump(), &reply)) return false;
  Json j;
  std::string err;
  if (!Json::parse(reply, &j, &err) || !j.is_object()) return false;
  const Json* s = j.find("statz");
  return s != nullptr && stats::from_json(*s, *out, &err);
}

void Router::probe_loop() {
  std::unique_lock<std::mutex> lk(probe_mu_);
  while (!probe_cv_.wait_for(
      lk, std::chrono::milliseconds(cfg_.probe_period_ms),
      [this] { return probe_stop_; })) {
    lk.unlock();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      stats::RegistrySnapshot snap;
      const bool live = scrape_shard(s, &snap);
      std::lock_guard<std::mutex> g(mu_);
      if (live) {
        shards_[s].cached = std::move(snap);
        shards_[s].have_cached = true;
        if (shards_[s].down == Down::kIo) {
          shards_[s].down = Down::kNo;
          ring_.set_up(s, true);
          stats_.ring_rebuilds.inc();
          stats_.backends_up.add(1);
          stats_.markups_probe.inc();
        }
      } else if (shards_[s].down == Down::kNo) {
        shards_[s].down = Down::kIo;
        ring_.set_up(s, false);
        stats_.ring_rebuilds.inc();
        stats_.backends_up.add(-1);
        stats_.markdowns_probe.inc();
      }
    }
    lk.lock();
  }
}

Json Router::fleet_statz(bool prometheus) {
  std::vector<stats::RegistrySnapshot> parts;
  parts.reserve(shards_.size() + 1);
  parts.push_back(registry_.snapshot());
  std::size_t live = 0;
  std::size_t cached = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    stats::RegistrySnapshot snap;
    if (scrape_shard(s, &snap)) {
      ++live;
      std::lock_guard<std::mutex> g(mu_);
      shards_[s].cached = snap;
      shards_[s].have_cached = true;
      parts.push_back(std::move(snap));
    } else {
      std::lock_guard<std::mutex> g(mu_);
      if (shards_[s].have_cached) {
        ++cached;
        parts.push_back(shards_[s].cached);
      }
    }
  }
  stats::RegistrySnapshot merged;
  std::string err;
  if (!merge_snapshots(parts, &merged, &err)) {
    return make_error(reject::kBadRequest, "fleet statz merge: " + err);
  }
  Json o = Json::object();
  if (prometheus) {
    o["statz_text"] = Json(stats::to_prometheus(merged));
  } else {
    o["statz"] = stats::to_json(merged);
  }
  Json fleet = Json::object();
  fleet["backends"] = Json(static_cast<std::uint64_t>(shards_.size()));
  {
    std::lock_guard<std::mutex> g(mu_);
    fleet["up"] = Json(static_cast<std::uint64_t>(ring_.up_count()));
  }
  fleet["scraped_live"] = Json(static_cast<std::uint64_t>(live));
  fleet["scraped_cached"] = Json(static_cast<std::uint64_t>(cached));
  o["fleet"] = std::move(fleet);
  stamp_version(&o);
  return o;
}

Json Router::fleet_tracez(std::size_t limit, bool slowest) {
  Json cmd = Json::object();
  cmd["cmd"] = Json("tracez");
  cmd["limit"] = Json(static_cast<std::uint64_t>(limit));
  cmd["order"] = Json(slowest ? "slowest" : "recent");
  const std::string cmd_line = cmd.dump();

  double retained = 0;
  double published = 0;
  double dropped = 0;
  std::size_t answered = 0;
  std::vector<Json> traces;
  std::vector<Json> exemplars;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    std::string reply;
    if (!oneshot(cfg_.endpoints[s], cmd_line, &reply)) continue;
    Json j;
    std::string err;
    if (!Json::parse(reply, &j, &err) || !j.is_object()) continue;
    const Json* doc = j.find("tracez");
    if (doc == nullptr || !doc->is_object()) continue;
    ++answered;
    retained += doc->get_num("retained", 0);
    published += doc->get_num("published", 0);
    dropped += doc->get_num("dropped_spans", 0);
    const Json* ts = doc->find("traces");
    if (ts != nullptr && ts->is_array()) {
      for (const Json& t : ts->items()) {
        Json tagged = t;
        tagged["shard"] = Json(static_cast<std::uint64_t>(s));
        traces.push_back(std::move(tagged));
      }
    }
    const Json* ex = doc->find("exemplars");
    if (ex != nullptr && ex->is_array()) {
      for (const Json& e : ex->items()) {
        Json tagged = e;
        tagged["shard"] = Json(static_cast<std::uint64_t>(s));
        exemplars.push_back(std::move(tagged));
      }
    }
  }
  if (slowest) {
    std::stable_sort(traces.begin(), traces.end(),
                     [](const Json& a, const Json& b) {
                       return a.get_num("e2e_ms", 0) > b.get_num("e2e_ms", 0);
                     });
  }
  // limit 0 means unlimited, matching obs::tracez_json.
  if (limit != 0 && traces.size() > limit) traces.resize(limit);

  Json doc = Json::object();
  doc["shards_answering"] = Json(static_cast<std::uint64_t>(answered));
  doc["retained"] = Json(retained);
  doc["published"] = Json(published);
  doc["dropped_spans"] = Json(dropped);
  Json tarr = Json::array();
  for (Json& t : traces) tarr.push_back(std::move(t));
  doc["traces"] = std::move(tarr);
  Json earr = Json::array();
  for (Json& e : exemplars) earr.push_back(std::move(e));
  doc["exemplars"] = std::move(earr);
  Json o = Json::object();
  o["tracez"] = std::move(doc);
  stamp_version(&o);
  return o;
}

void Router::mark_session_closed(std::uint64_t router_sid) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = sessions_.find(router_sid);
  if (it != sessions_.end() && !it->second.closed) {
    it->second.closed = true;
    stats_.sessions_open.add(-1);
  }
}

Router::Conn::Conn(Router& r)
    : r_(r), chans_(r.cfg_.endpoints.size()) {
  std::lock_guard<std::mutex> lk(r_.mu_);
  salt_ = r_.next_salt_++;
}

Router::Conn::~Conn() {
  for (Chan& c : chans_) {
    if (c.fd >= 0) ::close(c.fd);
  }
  // The backend drops sessions opened over a connection when that
  // connection closes; mirror that in the router's sid map so later
  // appends answer "closed" instead of forwarding into a dead sid.
  for (std::uint64_t sid : my_sids_) r_.mark_session_closed(sid);
}

bool Router::Conn::round_trip(std::size_t shard, const std::string& line,
                              std::string* reply) {
  Chan& c = chans_[shard];
  if (c.fd < 0) {
    c.fd = dial(r_.cfg_.endpoints[shard]);
    if (c.fd < 0) return false;
    c.ch = std::make_unique<support::LineChannel>(c.fd, c.fd);
  }
  if (c.ch->write_line(line) && c.ch->read_line(reply)) return true;
  ::close(c.fd);
  c.fd = -1;
  c.ch.reset();
  return false;
}

std::string Router::Conn::handle_line(const std::string& line) {
  Json j;
  std::string err;
  if (!Json::parse(line, &j, &err)) {
    return make_error(reject::kBadJson, "bad JSON: " + err).dump();
  }
  if (!j.is_object()) {
    return make_error(reject::kBadRequest, "request is not a JSON object")
        .dump();
  }
  if (!version_ok(j)) {
    return make_error(reject::kVersion,
                      "request pins protocol version " +
                          std::to_string(static_cast<long long>(
                              j.get_num("v", 0))) +
                          "; this router speaks " +
                          std::to_string(kProtocolVersion))
        .dump();
  }
  const Json* c = j.find("cmd");
  if (c == nullptr) return handle_request(j, line);
  if (!c->is_string()) {
    return make_error(reject::kBadRequest, "\"cmd\" must be a string")
        .dump();
  }
  const std::string& cmd = c->as_string();
  if (cmd == "statz") {
    return r_.fleet_statz(j.get_str("format") == "prometheus").dump();
  }
  if (cmd == "tracez") {
    std::size_t limit = 16;
    bool slowest = false;
    const Json* l = j.find("limit");
    if (l != nullptr) {
      if (!l->is_number() || l->as_double() < 0) {
        return make_error(reject::kBadRequest,
                          "\"limit\" must be a non-negative number")
            .dump();
      }
      limit = static_cast<std::size_t>(l->as_double());
    }
    const Json* o = j.find("order");
    if (o != nullptr) {
      if (!o->is_string() ||
          (o->as_string() != "recent" && o->as_string() != "slowest")) {
        return make_error(reject::kBadRequest,
                          "\"order\" must be \"recent\" or \"slowest\"")
            .dump();
      }
      slowest = o->as_string() == "slowest";
    }
    return r_.fleet_tracez(limit, slowest).dump();
  }
  if (cmd == "markdown" || cmd == "markup") {
    const Json* s = j.find("shard");
    if (s == nullptr || !s->is_number() || s->as_double() < 0 ||
        static_cast<std::size_t>(s->as_double()) >= r_.shard_count()) {
      return make_error(reject::kBadRequest,
                        "\"shard\" must index a configured backend")
          .dump();
    }
    const auto shard = static_cast<std::size_t>(s->as_double());
    if (cmd == "markdown") {
      r_.mark_down_admin(shard);
    } else {
      r_.mark_up_admin(shard);
    }
    Json reply = Json::object();
    reply["status"] = Json("ok");
    reply["shard"] = Json(static_cast<std::uint64_t>(shard));
    reply["up"] = Json(r_.shard_up(shard));
    stamp_version(&reply);
    return reply.dump();
  }
  if (cmd == "session_open") return handle_session_open(line);
  if (cmd == "session_append" || cmd == "session_close") {
    return handle_session_cmd(cmd, std::move(j));
  }
  return make_error(reject::kUnknownCmd, "unknown cmd \"" + cmd + "\"")
      .dump();
}

std::string Router::Conn::handle_request(const Json& j,
                                         const std::string& line) {
  const auto id = static_cast<std::uint64_t>(j.get_num("id", 0));
  const std::uint64_t key =
      id != 0 ? support::mix3(r_.cfg_.seed, kRequestStream, id)
              : support::mix3(r_.cfg_.seed ^ kRequestStream, salt_, ++seq_);
  const double deadline_ms = j.get_num("deadline_ms", 0);
  const auto start = ClockT::now();
  const int attempts = 1 + std::max(0, r_.cfg_.retry_limit);

  std::string last_reply;
  bool have_reply = false;
  bool routed_any = false;
  stats::Counter* pending_retry = nullptr;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0 && deadline_ms > 0 && ms_since(start) >= deadline_ms) {
      break;
    }
    std::size_t shard = 0;
    bool found;
    {
      std::lock_guard<std::mutex> lk(r_.mu_);
      found = r_.ring_.shard_for_attempt(
          key, static_cast<std::size_t>(attempt), &shard);
    }
    if (!found) break;
    routed_any = true;
    // The retry counter names the reason the PREVIOUS attempt failed,
    // and only counts when the retry actually executes.
    if (pending_retry != nullptr) {
      pending_retry->inc();
      pending_retry = nullptr;
    }
    const auto t0 = ClockT::now();
    std::string reply;
    if (!round_trip(shard, line, &reply)) {
      r_.mark_down_io(shard);
      pending_retry = &r_.stats_.retries_io;
      continue;
    }
    r_.stats_.forward_ms.record(ms_since(t0));
    r_.stats_.forwards.inc();
    r_.stats_.routes[shard]->inc();
    last_reply = std::move(reply);
    have_reply = true;
    Json rj;
    std::string perr;
    if (!Json::parse(last_reply, &rj, &perr) || !rj.is_object()) {
      return last_reply;
    }
    const std::string status = rj.get_str("status", "");
    if (status == "rejected_full") {
      pending_retry = &r_.stats_.retries_rejected_full;
    } else if (status == "rejected_shutdown") {
      pending_retry = &r_.stats_.retries_rejected_shutdown;
    } else {
      return last_reply;
    }
  }
  // Budget exhausted. A backend's own reject is surfaced verbatim —
  // the client sees WHY the fleet pushed back; only when no backend
  // ever answered does the router mint its own reject.
  if (have_reply) return last_reply;
  if (!routed_any) {
    r_.stats_.rejected_no_backend.inc();
    return make_error(reject::kNoBackend, "no backend shard is up").dump();
  }
  r_.stats_.rejected_retry_budget.inc();
  return make_error(reject::kRetryBudget,
                    "no backend answered within the retry/deadline budget")
      .dump();
}

std::string Router::Conn::handle_session_open(const std::string& line) {
  const std::uint64_t key =
      support::mix3(r_.cfg_.seed ^ kSessionStream, salt_, ++seq_);
  const int attempts = 1 + std::max(0, r_.cfg_.retry_limit);
  bool routed_any = false;
  stats::Counter* pending_retry = nullptr;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    std::size_t shard = 0;
    bool found;
    {
      std::lock_guard<std::mutex> lk(r_.mu_);
      found = r_.ring_.shard_for_attempt(
          key, static_cast<std::size_t>(attempt), &shard);
    }
    if (!found) break;
    routed_any = true;
    if (pending_retry != nullptr) {
      pending_retry->inc();
      pending_retry = nullptr;
    }
    const auto t0 = ClockT::now();
    std::string reply;
    // Opening is stateless until it succeeds: an io failure here never
    // strands backend state, so sibling retry is safe.
    if (!round_trip(shard, line, &reply)) {
      r_.mark_down_io(shard);
      pending_retry = &r_.stats_.retries_io;
      continue;
    }
    // routes{} counts every forwarded line; forwards stays a pure
    // hull-request counter so it reconciles against backend submitted.
    r_.stats_.forward_ms.record(ms_since(t0));
    r_.stats_.routes[shard]->inc();
    Json rj;
    std::string perr;
    if (!Json::parse(reply, &rj, &perr) || !rj.is_object() ||
        rj.get_str("status", "") != "ok") {
      return reply;  // backend reject (session cap etc) — surfaced
    }
    const auto backend_sid = static_cast<std::uint64_t>(rj.get_num("sid"));
    std::uint64_t router_sid;
    {
      std::lock_guard<std::mutex> lk(r_.mu_);
      router_sid = r_.next_sid_++;
      r_.sessions_.emplace(router_sid,
                           SessionEntry{shard, backend_sid, false});
    }
    r_.stats_.sessions_open.add(1);
    my_sids_.push_back(router_sid);
    rj["sid"] = Json(router_sid);
    return rj.dump();
  }
  if (!routed_any) {
    r_.stats_.rejected_no_backend.inc();
    return make_error(reject::kNoBackend, "no backend shard is up").dump();
  }
  r_.stats_.rejected_retry_budget.inc();
  return make_error(reject::kRetryBudget,
                    "no backend accepted the session open")
      .dump();
}

std::string Router::Conn::handle_session_cmd(const std::string& cmd,
                                             Json j) {
  const Json* s = j.find("sid");
  if (s == nullptr || !s->is_number() || s->as_double() < 1) {
    return make_error(reject::kBadRequest,
                      "session command needs a positive \"sid\"")
        .dump();
  }
  const auto router_sid = static_cast<std::uint64_t>(s->as_double());
  std::size_t shard = 0;
  std::uint64_t backend_sid = 0;
  enum { kRoute, kUnknown, kClosed, kDown } state = kRoute;
  {
    std::lock_guard<std::mutex> lk(r_.mu_);
    auto it = r_.sessions_.find(router_sid);
    if (it == r_.sessions_.end()) {
      state = kUnknown;
    } else if (it->second.closed) {
      state = kClosed;
    } else {
      shard = it->second.shard;
      backend_sid = it->second.backend_sid;
      if (!r_.ring_.up(shard)) state = kDown;
    }
  }
  if (state == kUnknown || state == kClosed) {
    // Same vocabulary the backend uses for a stale sid, so clients
    // handle router and single-server deployments identically.
    Json reply = Json::object();
    reply["sid"] = Json(router_sid);
    reply["status"] = Json(state == kUnknown ? "unknown" : "closed");
    stamp_version(&reply);
    return reply.dump();
  }
  if (state == kDown) {
    r_.stats_.rejected_shard_down.inc();
    return make_error(reject::kShardDown,
                      "session shard " + std::to_string(shard) +
                          " is marked down; session traffic is never "
                          "re-routed")
        .dump();
  }
  j["sid"] = Json(backend_sid);
  const auto t0 = ClockT::now();
  std::string reply;
  if (!round_trip(shard, j.dump(), &reply)) {
    r_.mark_down_io(shard);
    r_.stats_.rejected_shard_down.inc();
    return make_error(reject::kShardDown,
                      "session shard " + std::to_string(shard) +
                          " failed mid-stream; session traffic is never "
                          "re-routed")
        .dump();
  }
  r_.stats_.forward_ms.record(ms_since(t0));
  r_.stats_.routes[shard]->inc();
  Json rj;
  std::string perr;
  if (!Json::parse(reply, &rj, &perr) || !rj.is_object()) return reply;
  if (rj.find("sid") != nullptr) rj["sid"] = Json(router_sid);
  if (cmd == "session_close" && rj.get_str("status", "") == "ok") {
    r_.mark_session_closed(router_sid);
  }
  return rj.dump();
}

}  // namespace iph::cluster
