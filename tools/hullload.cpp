// hullload — closed/open-loop load generator for the hull service.
//
//   hullload [options]                     drive an in-process HullService
//   hullload --connect HOST:PORT [...]     drive a running hullserved
//
// --clients C threads each issue --requests R queries of workload
// --workload/--n (per-request generator seed = --seed + request id, so
// every query is distinct but the run is reproducible). Closed loop by
// default: each client waits for its answer before sending the next.
// --qps Q switches to open loop: clients send at a combined target rate
// of Q regardless of completions (over TCP a per-client reader thread
// matches responses to send times in FIFO order — hullserved answers
// each connection in submission order).
//
// Prints counts per terminal status, achieved qps, and p50/p95/p99
// end-to-end latency over the ok responses; --json appends one
// machine-readable summary line to stdout.
//
// --backend pram|native pins every request to one execution engine
// (exec/backend.h); default lets the server's own --backend decide.
//
// --scrape fetches the server's metrics registry (statz) before and
// after the run, diffs the snapshots, and cross-checks the server-side
// accounting against this client's own tally: every per-status counter
// must reconcile EXACTLY (the run must be the server's only traffic),
// including the backend-labeled served counters (pram + native ==
// completed; with --backend pinned, that engine's counter == ok), and
// server-side ok-e2e p99 must be within --scrape-tol (a ratio;
// default 8, floored at 0.05 ms to ignore sub-bucket noise; 0 disables)
// of the client-observed p99. Violations print loudly and exit 1.
// --scrape-out FILE writes the diffed snapshot as iph-stats-v1 JSON
// plus a "served_backend" key ("pram" | "native" | "mixed") naming the
// engine(s) that absorbed the run (the CI serve-smoke job uploads it
// as an artifact).
//
// Exit codes: 0 done, 1 with --expect-all-ok if any request was
// rejected/expired/errored or with --scrape on reconcile/tolerance
// failure, 2 usage error, 3 connect failure.
#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "exec/backend.h"
#include "geom/workloads.h"
#include "serve/request.h"
#include "serve/service.h"
#include "serve_wire.h"
#include "trace/json.h"

namespace {

using Clock = std::chrono::steady_clock;
using iph::serve::HullService;
using iph::serve::Response;
using iph::serve::ServiceConfig;
using iph::serve::Status;
using iph::tools::LineChannel;
using iph::trace::Json;

struct Options {
  int clients = 4;
  int requests = 64;  // per client
  double qps = 0;     // total offered rate; 0 = closed loop
  std::size_t n = 256;
  std::string workload = "disk";
  std::uint64_t seed = 1;
  double deadline_ms = 0;
  std::string connect;  // empty = in-process
  /// Engine every request asks for ("default" lets the server pick —
  /// tagged on the wire / Request so the scrape reconciliation knows
  /// which backend-labeled counter must absorb the run).
  iph::exec::BackendKind backend = iph::exec::BackendKind::kDefault;
  bool expect_all_ok = false;
  bool json = false;
  bool scrape = false;
  double scrape_tol = 8.0;   // p99 ratio tolerance; 0 disables
  std::string scrape_out;    // write diffed snapshot JSON here
  ServiceConfig cfg;  // in-process service shape
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--clients C] [--requests R] [--qps Q] [--n N]\n"
      "          [--workload W] [--seed S] [--deadline-ms D]\n"
      "          [--connect HOST:PORT | --shards N --workers N --threads N\n"
      "           --capacity N --window-us U --no-large]\n"
      "          [--backend pram|native|default]\n"
      "          [--expect-all-ok] [--json]\n"
      "          [--scrape] [--scrape-tol R] [--scrape-out FILE]\n",
      argv0);
  return 2;
}

/// Per-request outcome, merged across clients after the run.
struct Tally {
  std::uint64_t ok = 0, rejected_full = 0, rejected_shutdown = 0,
                expired = 0, errors = 0;
  std::vector<double> ok_e2e_ms;

  void count(std::string_view status, double e2e_ms) {
    if (status == "ok") {
      ++ok;
      ok_e2e_ms.push_back(e2e_ms);
    } else if (status == "rejected_full") {
      ++rejected_full;
    } else if (status == "rejected_shutdown") {
      ++rejected_shutdown;
    } else if (status == "expired") {
      ++expired;
    } else {
      ++errors;
    }
  }
  void merge(Tally&& o) {
    ok += o.ok;
    rejected_full += o.rejected_full;
    rejected_shutdown += o.rejected_shutdown;
    expired += o.expired;
    errors += o.errors;
    ok_e2e_ms.insert(ok_e2e_ms.end(), o.ok_e2e_ms.begin(),
                     o.ok_e2e_ms.end());
  }
};

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// Open-loop pacing: the instant client c should send its i-th request,
/// with the C clients' streams interleaved to hit `qps` combined.
Clock::time_point send_at(Clock::time_point start, const Options& opt,
                          int client, int i) {
  const double interval_s = static_cast<double>(opt.clients) / opt.qps;
  const double offset_s =
      interval_s * (static_cast<double>(i) +
                    static_cast<double>(client) / opt.clients);
  return start + std::chrono::microseconds(
                     static_cast<std::int64_t>(offset_s * 1e6));
}

Tally run_client_inproc(HullService& svc, const Options& opt, int client,
                        Clock::time_point start) {
  // Points are generated up front so the measured loop is pure serving.
  std::vector<std::vector<iph::geom::Point2>> pts(
      static_cast<std::size_t>(opt.requests));
  std::vector<iph::serve::RequestId> ids(
      static_cast<std::size_t>(opt.requests));
  for (int i = 0; i < opt.requests; ++i) {
    ids[i] = static_cast<iph::serve::RequestId>(client) * opt.requests + i +
             1;
    if (!iph::tools::make_workload(opt.workload, opt.n, opt.seed + ids[i],
                                   &pts[i])) {
      std::abort();  // workload validated in main()
    }
  }
  Tally t;
  auto make_req = [&](int i) {
    iph::serve::Request r;
    r.id = ids[i];
    r.points = pts[i];
    r.backend = opt.backend;
    if (opt.deadline_ms > 0) {
      r.deadline = Clock::now() + std::chrono::microseconds(static_cast<
                       std::int64_t>(opt.deadline_ms * 1000.0));
    }
    return r;
  };
  if (opt.qps <= 0) {  // closed loop: send, wait, repeat
    for (int i = 0; i < opt.requests; ++i) {
      const auto t0 = Clock::now();
      const Response resp = svc.submit(make_req(i)).get();
      const double ms = iph::serve::ms_between(t0, Clock::now());
      t.count(iph::serve::status_name(resp.status), ms);
    }
  } else {  // open loop: pace sends, collect afterwards
    std::vector<std::future<Response>> futs;
    futs.reserve(static_cast<std::size_t>(opt.requests));
    for (int i = 0; i < opt.requests; ++i) {
      std::this_thread::sleep_until(send_at(start, opt, client, i));
      futs.push_back(svc.submit(make_req(i)));
    }
    for (auto& f : futs) {
      const Response resp = f.get();
      // The service stamps submit -> response-ready; that IS the
      // open-loop latency (the client never waited in between).
      t.count(iph::serve::status_name(resp.status), resp.metrics.e2e_ms);
    }
  }
  return t;
}

int connect_to(const std::string& hostport) {
  const auto colon = hostport.rfind(':');
  if (colon == std::string::npos) return -1;
  const std::string host = hostport.substr(0, colon);
  const std::string port = hostport.substr(colon + 1);
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &res) != 0) {
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  return fd;
}

Tally run_client_tcp(const Options& opt, int client,
                     Clock::time_point start, std::atomic<bool>* failed) {
  Tally t;
  const int fd = connect_to(opt.connect);
  if (fd < 0) {
    failed->store(true);
    return t;
  }
  LineChannel chan(fd, fd);
  auto request_line = [&](int i) {
    const auto id = static_cast<iph::serve::RequestId>(client) *
                        opt.requests + i + 1;
    Json j = Json::object();
    j["id"] = Json(id);
    j["n"] = Json(static_cast<std::uint64_t>(opt.n));
    j["workload"] = Json(opt.workload);
    j["seed"] = Json(opt.seed + id);
    if (opt.backend != iph::exec::BackendKind::kDefault) {
      j["backend"] = Json(iph::exec::backend_name(opt.backend));
    }
    if (opt.deadline_ms > 0) j["deadline_ms"] = Json(opt.deadline_ms);
    return j.dump();
  };
  auto status_of = [](const std::string& line) -> std::string {
    Json j;
    std::string err;
    if (!Json::parse(line, &j, &err)) return "error";
    if (j.find("error") != nullptr) return "error";
    return j.get_str("status", "error");
  };
  if (opt.qps <= 0) {  // closed loop
    std::string line;
    for (int i = 0; i < opt.requests; ++i) {
      const auto t0 = Clock::now();
      if (!chan.write_line(request_line(i)) || !chan.read_line(&line)) {
        failed->store(true);
        break;
      }
      const double ms = iph::serve::ms_between(t0, Clock::now());
      t.count(status_of(line), ms);
    }
  } else {
    // Open loop over TCP: the sender paces writes while a reader thread
    // pairs each response with the oldest outstanding send time —
    // positional FIFO matching, guaranteed by hullserved's in-order
    // responder.
    std::deque<Clock::time_point> sent;
    std::mutex mu;
    std::thread reader([&] {
      std::string line;
      for (int i = 0; i < opt.requests; ++i) {
        if (!chan.read_line(&line)) {
          failed->store(true);
          return;
        }
        Clock::time_point t0;
        {
          std::lock_guard<std::mutex> lk(mu);
          t0 = sent.front();
          sent.pop_front();
        }
        const double ms = iph::serve::ms_between(t0, Clock::now());
        t.count(status_of(line), ms);
      }
    });
    for (int i = 0; i < opt.requests; ++i) {
      std::this_thread::sleep_until(send_at(start, opt, client, i));
      const std::string line = request_line(i);
      {
        std::lock_guard<std::mutex> lk(mu);
        sent.push_back(Clock::now());
      }
      if (!chan.write_line(line)) {
        failed->store(true);
        break;
      }
    }
    reader.join();
  }
  ::close(fd);
  return t;
}

/// One statz round trip on a fresh connection (JSON format).
bool scrape_tcp(const std::string& hostport,
                iph::stats::RegistrySnapshot* out, std::string* err) {
  const int fd = connect_to(hostport);
  if (fd < 0) {
    *err = "connect failed";
    return false;
  }
  LineChannel chan(fd, fd);
  Json cmd = Json::object();
  cmd["cmd"] = Json("statz");
  std::string line;
  const bool io_ok = chan.write_line(cmd.dump()) && chan.read_line(&line);
  ::close(fd);
  if (!io_ok) {
    *err = "statz round trip failed";
    return false;
  }
  Json j;
  if (!Json::parse(line, &j, err)) return false;
  return iph::tools::statz_from_json(j, out, err);
}

/// Cross-check the server-side snapshot diff against the client tally
/// and print the side-by-side summary. Returns false (after printing
/// why) when the accounting does not reconcile or p99s diverge beyond
/// `tol`. `server_p99` is left with the server-side ok-e2e p99;
/// `served_backend` with which engine(s) absorbed the run's completed
/// requests per the backend-labeled counters ("pram", "native" or
/// "mixed"). When `want` names an engine, that engine's counter must
/// equal the client's ok count exactly; either way pram + native must
/// equal completed (every completed request was served by exactly one
/// engine).
bool check_scrape(const iph::stats::RegistrySnapshot& d, const Tally& total,
                  double client_p99, double tol,
                  iph::exec::BackendKind want, double* server_p99,
                  std::string* served_backend) {
  namespace sn = iph::serve::statnames;
  const std::uint64_t srv_submitted = d.counter_or0(sn::kSubmitted);
  const std::uint64_t srv_completed = d.counter_or0(sn::kCompleted);
  const std::uint64_t srv_expired = d.counter_or0(sn::kExpired);
  const std::uint64_t srv_rej_full = d.counter_or0(
      iph::stats::labeled(sn::kRejectedBase, "reason", "full"));
  const std::uint64_t srv_rej_shutdown = d.counter_or0(
      iph::stats::labeled(sn::kRejectedBase, "reason", "shutdown"));
  const std::uint64_t srv_bk_pram = d.counter_or0(
      iph::stats::labeled(sn::kBackendBase, "backend", "pram"));
  const std::uint64_t srv_bk_native = d.counter_or0(
      iph::stats::labeled(sn::kBackendBase, "backend", "native"));
  const iph::stats::HistogramSnapshot* e2e = d.histogram(sn::kE2eMs);
  *server_p99 = e2e != nullptr ? e2e->quantile(0.99) : 0.0;
  *served_backend = srv_bk_native > 0
                        ? (srv_bk_pram > 0 ? "mixed" : "native")
                        : "pram";

  std::fprintf(stderr,
               "hullload scrape: server submitted %llu  completed %llu  "
               "rejected_full %llu  rejected_shutdown %llu  expired %llu\n",
               static_cast<unsigned long long>(srv_submitted),
               static_cast<unsigned long long>(srv_completed),
               static_cast<unsigned long long>(srv_rej_full),
               static_cast<unsigned long long>(srv_rej_shutdown),
               static_cast<unsigned long long>(srv_expired));
  std::fprintf(stderr,
               "hullload scrape: served by backend pram %llu  native %llu\n",
               static_cast<unsigned long long>(srv_bk_pram),
               static_cast<unsigned long long>(srv_bk_native));
  std::fprintf(stderr,
               "hullload scrape: e2e p99 server %.3f ms vs client %.3f ms\n",
               *server_p99, client_p99);

  bool ok = true;
  auto must_equal = [&](const char* what, std::uint64_t server,
                        std::uint64_t client) {
    if (server != client) {
      std::fprintf(stderr,
                   "hullload scrape: RECONCILE FAIL: %s server %llu != "
                   "client %llu\n",
                   what, static_cast<unsigned long long>(server),
                   static_cast<unsigned long long>(client));
      ok = false;
    }
  };
  if (total.errors != 0) {
    std::fprintf(stderr,
                 "hullload scrape: RECONCILE FAIL: %llu client-side "
                 "errors\n",
                 static_cast<unsigned long long>(total.errors));
    ok = false;
  }
  must_equal("submitted", srv_submitted,
             total.ok + total.rejected_full + total.rejected_shutdown +
                 total.expired);
  must_equal("completed", srv_completed, total.ok);
  must_equal("rejected_full", srv_rej_full, total.rejected_full);
  must_equal("rejected_shutdown", srv_rej_shutdown, total.rejected_shutdown);
  must_equal("expired", srv_expired, total.expired);
  // Server-internal conservation: everything submitted terminated.
  must_equal("submitted vs terminal states", srv_submitted,
             srv_completed + srv_expired + srv_rej_full + srv_rej_shutdown);
  // Backend conservation: every completed request was served by exactly
  // one engine — and when the client pinned one, by THAT engine.
  must_equal("backend pram+native vs completed",
             srv_bk_pram + srv_bk_native, srv_completed);
  if (want == iph::exec::BackendKind::kPram) {
    must_equal("backend=pram requests", srv_bk_pram, total.ok);
  } else if (want == iph::exec::BackendKind::kNative) {
    must_equal("backend=native requests", srv_bk_native, total.ok);
  }

  if (tol > 0 && total.ok > 0 && e2e != nullptr && e2e->count > 0) {
    const double lo = std::max(std::min(*server_p99, client_p99), 0.05);
    const double ratio = std::max(*server_p99, client_p99) / lo;
    if (ratio > tol) {
      std::fprintf(stderr,
                   "hullload scrape: P99 DIVERGENCE: server %.3f ms vs "
                   "client %.3f ms (ratio %.2f > tol %.2f)\n",
                   *server_p99, client_p99, ratio, tol);
      ok = false;
    }
  }
  return ok;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(content.data(), 1, content.size(), f) ==
                  content.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (a == "--clients" && (v = next())) {
      opt.clients = std::atoi(v);
    } else if (a == "--requests" && (v = next())) {
      opt.requests = std::atoi(v);
    } else if (a == "--qps" && (v = next())) {
      opt.qps = std::atof(v);
    } else if (a == "--n" && (v = next())) {
      opt.n = static_cast<std::size_t>(std::atoll(v));
    } else if (a == "--workload" && (v = next())) {
      opt.workload = v;
    } else if (a == "--seed" && (v = next())) {
      opt.seed = std::strtoull(v, nullptr, 0);
    } else if (a == "--deadline-ms" && (v = next())) {
      opt.deadline_ms = std::atof(v);
    } else if (a == "--connect" && (v = next())) {
      opt.connect = v;
    } else if (a == "--backend" && (v = next())) {
      if (!iph::exec::parse_backend(v, &opt.backend)) return usage(argv[0]);
    } else if (a == "--shards" && (v = next())) {
      opt.cfg.shards = static_cast<std::size_t>(std::atoll(v));
    } else if (a == "--workers" && (v = next())) {
      opt.cfg.workers = static_cast<std::size_t>(std::atoll(v));
    } else if (a == "--threads" && (v = next())) {
      opt.cfg.threads_per_shard = static_cast<unsigned>(std::atoi(v));
    } else if (a == "--capacity" && (v = next())) {
      opt.cfg.queue_capacity = static_cast<std::size_t>(std::atoll(v));
    } else if (a == "--window-us" && (v = next())) {
      opt.cfg.batch.window = std::chrono::microseconds(std::atoll(v));
    } else if (a == "--no-large") {
      opt.cfg.large_shard = false;
    } else if (a == "--expect-all-ok") {
      opt.expect_all_ok = true;
    } else if (a == "--json") {
      opt.json = true;
    } else if (a == "--scrape") {
      opt.scrape = true;
    } else if (a == "--scrape-tol" && (v = next())) {
      opt.scrape_tol = std::atof(v);
    } else if (a == "--scrape-out" && (v = next())) {
      opt.scrape_out = v;
      opt.scrape = true;
    } else {
      return usage(argv[0]);
    }
  }
  if (opt.clients < 1 || opt.requests < 1 || opt.n == 0) {
    return usage(argv[0]);
  }
  {
    std::vector<iph::geom::Point2> probe;
    if (!iph::tools::make_workload(opt.workload, 4, 0, &probe)) {
      std::fprintf(stderr, "hullload: unknown workload \"%s\"\n",
                   opt.workload.c_str());
      return 2;
    }
  }

  const bool inproc = opt.connect.empty();
  std::unique_ptr<HullService> svc;
  if (inproc) svc = std::make_unique<HullService>(opt.cfg);

  // --scrape brackets the run with registry snapshots; the diff makes
  // the cross-check robust to traffic the server saw before us (but the
  // run itself must be the server's only traffic).
  iph::stats::RegistrySnapshot scrape_before;
  if (opt.scrape && !inproc) {
    std::string err;
    if (!scrape_tcp(opt.connect, &scrape_before, &err)) {
      std::fprintf(stderr, "hullload: statz scrape of %s failed: %s\n",
                   opt.connect.c_str(), err.c_str());
      return 3;
    }
  } else if (opt.scrape) {
    scrape_before = svc->stats_registry().snapshot();
  }

  std::atomic<bool> conn_failed{false};
  std::vector<Tally> tallies(static_cast<std::size_t>(opt.clients));
  std::vector<std::thread> threads;
  const auto start = Clock::now() + std::chrono::milliseconds(5);
  for (int c = 0; c < opt.clients; ++c) {
    threads.emplace_back([&, c] {
      tallies[c] = inproc
                       ? run_client_inproc(*svc, opt, c, start)
                       : run_client_tcp(opt, c, start, &conn_failed);
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (conn_failed.load()) {
    std::fprintf(stderr, "hullload: connection to %s failed\n",
                 opt.connect.c_str());
    return 3;
  }

  Tally total;
  for (auto& t : tallies) total.merge(std::move(t));
  std::sort(total.ok_e2e_ms.begin(), total.ok_e2e_ms.end());
  const double qps = static_cast<double>(total.ok) / wall_s;
  const double p50 = percentile(total.ok_e2e_ms, 0.50);
  const double p95 = percentile(total.ok_e2e_ms, 0.95);
  const double p99 = percentile(total.ok_e2e_ms, 0.99);

  std::fprintf(stderr,
               "hullload: %d clients x %d requests, %s loop, %s, "
               "workload %s n=%zu\n",
               opt.clients, opt.requests, opt.qps > 0 ? "open" : "closed",
               inproc ? "in-process" : opt.connect.c_str(),
               opt.workload.c_str(), opt.n);
  std::fprintf(stderr,
               "  ok %llu  rejected_full %llu  rejected_shutdown %llu  "
               "expired %llu  errors %llu\n",
               static_cast<unsigned long long>(total.ok),
               static_cast<unsigned long long>(total.rejected_full),
               static_cast<unsigned long long>(total.rejected_shutdown),
               static_cast<unsigned long long>(total.expired),
               static_cast<unsigned long long>(total.errors));
  std::fprintf(stderr, "  wall %.3f s  qps %.1f\n", wall_s, qps);
  std::fprintf(stderr, "  e2e ms (ok): p50 %.2f  p95 %.2f  p99 %.2f\n",
               p50, p95, p99);
  double mean_batch = 0;
  std::uint64_t large = 0;
  if (inproc) {
    svc->shutdown(/*drain=*/true);
    const iph::serve::StatsSnapshot s = svc->stats();
    mean_batch = s.mean_batch();
    large = s.large_requests;
    std::fprintf(stderr, "  service: mean batch %.2f  max batch %llu  "
                         "large %llu\n",
                 mean_batch, static_cast<unsigned long long>(s.max_batch),
                 static_cast<unsigned long long>(large));
  }

  bool scrape_failed = false;
  double server_p99 = 0;
  std::string served_backend;
  if (opt.scrape) {
    iph::stats::RegistrySnapshot after;
    if (!inproc) {
      std::string err;
      if (!scrape_tcp(opt.connect, &after, &err)) {
        std::fprintf(stderr, "hullload: statz scrape of %s failed: %s\n",
                     opt.connect.c_str(), err.c_str());
        return 3;
      }
    } else {
      after = svc->stats_registry().snapshot();
    }
    const iph::stats::RegistrySnapshot d = after.diff(scrape_before);
    scrape_failed = !check_scrape(d, total, p99, opt.scrape_tol,
                                  opt.backend, &server_p99,
                                  &served_backend);
    if (!opt.scrape_out.empty()) {
      // The diffed snapshot plus which engine(s) served the run —
      // stats::from_json ignores the extra key, so the file still
      // parses as iph-stats-v1.
      Json scrape_json = iph::stats::to_json(d);
      scrape_json["served_backend"] = Json(served_backend);
      if (!write_file(opt.scrape_out, scrape_json.dump(2) + "\n")) {
        std::fprintf(stderr, "hullload: cannot write %s\n",
                     opt.scrape_out.c_str());
        scrape_failed = true;
      }
    }
  }

  if (opt.json) {
    Json j = Json::object();
    j["clients"] = Json(opt.clients);
    j["requests_per_client"] = Json(opt.requests);
    j["mode"] = Json(opt.qps > 0 ? "open" : "closed");
    j["target"] = Json(inproc ? "in-process" : opt.connect);
    j["workload"] = Json(opt.workload);
    j["n"] = Json(static_cast<std::uint64_t>(opt.n));
    j["backend"] = Json(iph::exec::backend_name(opt.backend));
    j["ok"] = Json(total.ok);
    j["rejected_full"] = Json(total.rejected_full);
    j["rejected_shutdown"] = Json(total.rejected_shutdown);
    j["expired"] = Json(total.expired);
    j["errors"] = Json(total.errors);
    j["wall_s"] = Json(wall_s);
    j["qps"] = Json(qps);
    j["p50_ms"] = Json(p50);
    j["p95_ms"] = Json(p95);
    j["p99_ms"] = Json(p99);
    if (inproc) j["mean_batch"] = Json(mean_batch);
    if (opt.scrape) {
      j["server_p99_ms"] = Json(server_p99);
      j["scrape_ok"] = Json(!scrape_failed);
      j["served_backend"] = Json(served_backend);
    }
    std::printf("%s\n", j.dump().c_str());
  }

  if (scrape_failed) return 1;
  const std::uint64_t not_ok = total.rejected_full +
                               total.rejected_shutdown + total.expired +
                               total.errors;
  return opt.expect_all_ok && not_ok != 0 ? 1 : 0;
}
