#include "primitives/prefix_sum.h"

#include "pram/shadow.h"
#include "support/check.h"
#include "support/mathutil.h"

namespace iph::primitives {

std::uint64_t prefix_sum_exclusive(pram::Machine& m,
                                   std::span<std::uint64_t> data) {
  const std::uint64_t n = data.size();
  if (n == 0) return 0;
  pram::Machine::Phase phase(m, "prim/prefix-sum");
  // Work on a power-of-two padded scratch buffer (textbook Blelloch
  // up/down sweep): O(log n) steps, O(n) work, all writes owned.
  const std::uint64_t np = support::ceil_pow2(n);
  const unsigned levels = support::ceil_log2(np);
  std::vector<std::uint64_t> buf(np, 0);
  m.step(n, [&](std::uint64_t pid) {
    pram::tracked_write(pid, buf[pid], data[pid]);
  });
  for (unsigned d = 0; d < levels; ++d) {
    const std::uint64_t stride = std::uint64_t{1} << (d + 1);
    const std::uint64_t half = std::uint64_t{1} << d;
    m.step(np / stride, [&, stride, half](std::uint64_t pid) {
      std::uint64_t& dst = buf[pid * stride + stride - 1];
      pram::tracked_write(pid, dst, dst + buf[pid * stride + half - 1]);
    });
  }
  std::uint64_t total = 0;
  m.step(1, [&](std::uint64_t pid) {
    pram::tracked_write(pid, total, buf[np - 1]);
    pram::tracked_write(pid, buf[np - 1], 0);
  });
  for (unsigned d = levels; d-- > 0;) {
    const std::uint64_t stride = std::uint64_t{1} << (d + 1);
    const std::uint64_t half = std::uint64_t{1} << d;
    m.step(np / stride, [&, stride, half](std::uint64_t pid) {
      const std::uint64_t lo = pid * stride + half - 1;
      const std::uint64_t hi = pid * stride + stride - 1;
      const std::uint64_t t = buf[lo];
      pram::tracked_write(pid, buf[lo], buf[hi]);
      pram::tracked_write(pid, buf[hi], buf[hi] + t);
    });
  }
  m.step(n, [&](std::uint64_t pid) {
    pram::tracked_write(pid, data[pid], buf[pid]);
  });
  return total;
}

std::uint64_t compact_indices(pram::Machine& m,
                              std::span<const std::uint8_t> keep,
                              std::span<std::uint32_t> out) {
  const std::uint64_t n = keep.size();
  if (n == 0) return 0;
  pram::Machine::Phase phase(m, "prim/compact-idx");
  std::vector<std::uint64_t> rank(n);
  m.step(n, [&](std::uint64_t pid) {
    pram::tracked_write(pid, rank[pid], keep[pid] ? 1 : 0);
  });
  const std::uint64_t count = prefix_sum_exclusive(m, rank);
  IPH_CHECK(out.size() >= count);
  m.step(n, [&](std::uint64_t pid) {
    // The checker verifies the ranks are unique: distinct keepers get
    // distinct exclusive-prefix ranks.
    if (keep[pid]) {
      pram::tracked_write(pid, out[rank[pid]],
                          static_cast<std::uint32_t>(pid));
    }
  });
  return count;
}

}  // namespace iph::primitives
