// The fallback parallel 2-d hull (Section 4.1 step 3): when the
// output-sensitive recursion has discovered l >= n^(1/32) hull edges, the
// total work is already Omega(n log n), so the paper switches to "any
// O(log n) time, n processor algorithm, e.g. Atallah-Goodrich [6]".
//
// Realization (documented substitution, DESIGN.md §1): sorting is done
// host-side and charged at Cole's published cost (O(log n) steps, O(n)
// work per step) — implementing Cole's pipelined merge sort is out of
// scope and bitonic sort would inflate the work envelope by a log
// factor, distorting the Theorem 5 shape the benches measure. The hull
// itself is computed genuinely in parallel: a binary tournament of
// tangent merges over the sorted points (chain_ops), O(log n) lockstep
// rounds, O(n) work per round, then a batched covering-edge search.
#pragma once

#include <span>

#include "geom/hull_types.h"
#include "geom/point.h"
#include "pram/machine.h"

namespace iph::core {

/// Upper hull + per-point edge pointers of UNSORTED points.
/// O(log n) PRAM step-rounds, O(n log n) work.
geom::HullResult2D fallback_hull_2d(pram::Machine& m,
                                    std::span<const geom::Point2> pts);

/// The presorted inner part (sorted index order given): used by the
/// fallback itself and by tests.
geom::HullResult2D fallback_hull_2d_presorted(
    pram::Machine& m, std::span<const geom::Point2> pts,
    std::span<const geom::Index> order);

}  // namespace iph::core
