// collision3d — upper-hull based height-field collision between two
// 3-d point clouds.
//
//   build/examples/collision3d [n]
//
// Two rigid point clouds approach vertically. Their contact height is
// where the upper hull of the lower cloud meets the LOWER hull of the
// upper cloud (computed as the upper hull of the negated points — the
// same reduction the paper uses for full 2-d hulls). The per-point facet
// pointers let every query column find its supporting facet in O(1),
// which is exactly the output convention Theorem 6 maintains.
#include <cstdio>
#include <cstdlib>

#include "core/api.h"
#include "geom/predicates.h"
#include "geom/workloads.h"

namespace {

/// Height of the facet's plane above (x, y) — doubles suffice for the
/// demo printout; the collision decision below re-checks with exact
/// predicates.
double plane_height(const iph::geom::Point3& a, const iph::geom::Point3& b,
                    const iph::geom::Point3& c, double x, double y) {
  const double ux = b.x - a.x, uy = b.y - a.y, uz = b.z - a.z;
  const double vx = c.x - a.x, vy = c.y - a.y, vz = c.z - a.z;
  const double nx = uy * vz - uz * vy;
  const double ny = uz * vx - ux * vz;
  const double nz = ux * vy - uy * vx;
  return a.z - (nx * (x - a.x) + ny * (y - a.y)) / nz;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace iph;
  const std::size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 20000;

  // Lower body: a bumpy mound. Upper body: a ball descending from above.
  auto ground = geom::in_ball(n, 11);
  for (auto& p : ground) p.z = p.z * 0.2 - 2.0e6;
  auto body = geom::in_ball(n, 13);
  for (auto& p : body) p.z = p.z * 0.2 + 2.0e6;

  const Hull3D gh = upper_hull_3d(ground);
  // Lower hull of the body == upper hull of the z-negated body.
  auto neg = body;
  for (auto& p : neg) p.z = -p.z;
  const Hull3D bh = upper_hull_3d(neg);

  std::printf("ground upper hull: %zu facets (steps=%llu)\n",
              gh.result.facets.size(),
              static_cast<unsigned long long>(gh.metrics.steps));
  std::printf("body lower hull  : %zu facets (steps=%llu)\n",
              bh.result.facets.size(),
              static_cast<unsigned long long>(bh.metrics.steps));

  // Clearance: for each body point's column, ground height below it via
  // its facet pointer vs the body's own lower surface.
  double min_gap = 1e300;
  std::size_t checked = 0;
  for (std::size_t i = 0; i < body.size(); ++i) {
    // Query the ground surface under the body point: scan the (small)
    // facet list for the covering triangle.
    for (const auto& f : gh.result.facets) {
      const geom::Point3 q{body[i].x, body[i].y, 0.0};
      if (!geom::xy_in_triangle(ground[f.a], ground[f.b], ground[f.c], q)) {
        continue;
      }
      const double gz = plane_height(ground[f.a], ground[f.b], ground[f.c],
                                     body[i].x, body[i].y);
      min_gap = std::min(min_gap, body[i].z - gz);
      ++checked;
      break;
    }
  }
  std::printf("columns checked  : %zu\n", checked);
  if (min_gap < 1e300) {
    std::printf("minimum clearance: %.1f  ->  %s\n", min_gap,
                min_gap > 0 ? "no collision" : "COLLISION");
  } else {
    std::printf("bodies do not overlap in xy: no collision possible\n");
  }
  return 0;
}
