#include "pram/machine.h"

#include "support/check.h"
#include "support/env.h"

namespace iph::pram {

namespace {

std::uint64_t pick_chunk(std::uint64_t n, unsigned threads) {
  // Aim for ~8 chunks per thread for dynamic balance, but never tiny
  // chunks: the per-chunk dispatch cost must stay negligible.
  const std::uint64_t target = n / (std::uint64_t{threads} * 8 + 1) + 1;
  return target < 256 ? 256 : target;
}

}  // namespace

Machine::Machine(unsigned threads, std::uint64_t seed)
    : seed_(seed),
      threads_(threads == 0 ? support::env_threads() : threads) {
#if defined(IPH_PRAM_CHECK_DEFAULT_ON)
  constexpr bool check_default = true;
#else
  constexpr bool check_default = false;
#endif
  if (support::env_flag("IPH_PRAM_CHECK", check_default)) enable_check();
  if (support::env_flag("IPH_CW_CONFLICTS", false)) count_conflicts_ = true;
  // Worker 0 is the calling thread; spawn threads_-1 helpers.
  for (unsigned i = 1; i < threads_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

Machine::~Machine() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_job_.notify_all();
  for (auto& t : workers_) t.join();
}

void Machine::enable_check() {
  if (!shadow_) shadow_ = std::make_unique<ShadowTracker>();
}

void Machine::disable_check() { shadow_.reset(); }

void Machine::checked_step_prologue() {
  shadow_->begin_step(step_index_,
                      phase_stack_.empty() ? std::string() : phase_stack_.back());
  shadow_detail::g_active.store(shadow_.get(), std::memory_order_release);
}

void Machine::checked_step_epilogue() {
  shadow_detail::g_active.store(nullptr, std::memory_order_release);
  shadow_->end_step();
}

void Machine::counted_step_prologue() {
  // step_index_ + 1 so a freshly-zeroed cell stamp never matches.
  conflict_sink_.stamp = step_index_ + 1;
  conflict_sink_.count.store(0, std::memory_order_relaxed);
  conflict_detail::g_sink.store(&conflict_sink_, std::memory_order_release);
}

std::uint64_t Machine::counted_step_epilogue() {
  conflict_detail::g_sink.store(nullptr, std::memory_order_release);
  return conflict_sink_.count.load(std::memory_order_relaxed);
}

void Machine::run_range(std::uint64_t n, RangeFn fn, void* ctx) {
  IPH_CHECK(fn != nullptr);
  if (threads_ <= 1 || n < 2048 || workers_.empty()) {
    fn(ctx, 0, n);
    return;
  }
  const std::uint64_t chunk = pick_chunk(n, threads_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_fn_ = fn;
    job_ctx_ = ctx;
    job_n_ = n;
    job_chunk_ = chunk;
    job_next_.store(0, std::memory_order_relaxed);
    workers_remaining_ = static_cast<unsigned>(workers_.size());
    ++job_generation_;
  }
  cv_job_.notify_all();
  // The calling thread participates.
  std::uint64_t lo;
  while ((lo = job_next_.fetch_add(chunk, std::memory_order_relaxed)) < n) {
    const std::uint64_t hi = lo + chunk < n ? lo + chunk : n;
    fn(ctx, lo, hi);
  }
  // Barrier: wait for helpers to drain.
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [this] { return workers_remaining_ == 0; });
}

void Machine::worker_loop(unsigned /*worker_id*/) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    RangeFn fn;
    void* ctx;
    std::uint64_t n, chunk;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_job_.wait(lk, [&] {
        return shutdown_ || job_generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = job_generation_;
      fn = job_fn_;
      ctx = job_ctx_;
      n = job_n_;
      chunk = job_chunk_;
    }
    std::uint64_t lo;
    while ((lo = job_next_.fetch_add(chunk, std::memory_order_relaxed)) < n) {
      const std::uint64_t hi = lo + chunk < n ? lo + chunk : n;
      fn(ctx, lo, hi);
    }
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--workers_remaining_ == 0) cv_done_.notify_one();
    }
  }
}

}  // namespace iph::pram
