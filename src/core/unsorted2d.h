// The unsorted output-sensitive 2-d hull (Section 4.1, Theorem 5):
// O(log n) PRAM time, O(n log h) work, with very high probability.
//
// Quicksort-like marriage-before-conquest (after Kirkpatrick-Seidel),
// but fully in-place: subproblems are never compacted — each point keeps
// a problem id and a standing-by virtual processor. One level of
// recursion:
//   1. every active subproblem picks a splitter by in-place random vote
//      (Corollary 3.1),
//   2. finds the hull edge above it by in-place bridge finding
//      (Lemma 4.2) with base size k = s^(1/3),
//   3. failed subproblems are failure-swept: re-run with the full
//      k = n^(1/4) workspace and n^(3/4)-processor budget (Section 2.3),
//   4. every point classifies itself against the edge: strictly left /
//      strictly right of the edge's x-span -> child subproblem; under
//      the edge -> dead, pointing at the edge.
// Phases of (log n)/32 levels: at each phase end the remaining problems
// are counted with a parallel prefix sum; if the lower bound l on h has
// reached n^(1/32), total work is already Theta(n log n) and the
// algorithm switches to the fallback parallel hull on the FULL input
// (Section 4.1 step 3).
#pragma once

#include <span>

#include "geom/hull_types.h"
#include "geom/point.h"
#include "pram/machine.h"

namespace iph::core {

struct Unsorted2DStats {
  std::uint64_t levels = 0;          ///< recursion levels executed
  std::uint64_t phases = 0;          ///< phase resets
  std::uint64_t bridge_problems = 0; ///< total bridge problems solved
  std::uint64_t failures_swept = 0;  ///< problems re-run by failure sweep
  std::uint64_t vote_retries = 0;    ///< random votes that needed retry
  bool used_fallback = false;        ///< switched to the O(n log n) path
  std::uint64_t edges_found = 0;     ///< hull edges discovered in-place
};

/// Upper hull + per-point edge pointers of UNSORTED points. O(log n)
/// PRAM time, O(n log h) work w.h.p. `alpha` is the in-place-bridge
/// round budget.
geom::HullResult2D unsorted_hull_2d(pram::Machine& m,
                                    std::span<const geom::Point2> pts,
                                    Unsorted2DStats* stats = nullptr,
                                    int alpha = 8);

/// Scoped multi-problem core, used by the 3-d algorithm's inner 2-d
/// calls (Section 4.3 step 3): solve MANY independent upper-hull
/// problems over one point array (problem_of gives the initial
/// partition; kNoProblem points idle). Returns the per-point hull-edge
/// endpoint pairs within each problem's scope. When the work budget
/// that would trigger the 2-d fallback is hit, the scoped core STOPS and
/// sets wants_fallback instead (the 3-d caller must then fall back
/// globally, exactly as the paper prescribes).
struct Scoped2DResult {
  std::vector<geom::Index> pair_a;
  std::vector<geom::Index> pair_b;
  bool wants_fallback = false;
};

/// fallback_threshold: report wants_fallback once the discovered-edge
/// lower bound reaches it; 0 disables (the 3-d caller budgets depth
/// itself, per Section 4.3 step 4).
Scoped2DResult unsorted_2d_scoped(pram::Machine& m,
                                  std::span<const geom::Point2> pts,
                                  std::span<const std::uint32_t> problem_of,
                                  std::size_t n_problems,
                                  Unsorted2DStats* stats = nullptr,
                                  int alpha = 8,
                                  std::uint64_t fallback_threshold = 0);

}  // namespace iph::core
