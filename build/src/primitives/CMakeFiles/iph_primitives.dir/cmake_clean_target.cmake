file(REMOVE_RECURSE
  "libiph_primitives.a"
)
