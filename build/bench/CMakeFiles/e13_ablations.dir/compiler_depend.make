# Empty compiler generated dependencies file for e13_ablations.
# This may be replaced when dependencies are built.
