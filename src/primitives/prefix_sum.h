// Parallel prefix sum (Ladner-Fischer) on the PRAM simulator.
//
// Used by the paper in step 3 of the unsorted algorithms: "use parallel
// prefix sum to compact the remaining points and find the number of
// subproblems remaining". O(log n) steps, O(n) work per step (the
// classic non-work-optimal up/down-sweep; work-optimality is irrelevant
// here because the paper charges O(n log n)-work fallbacks at the points
// where prefix sums are taken).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pram/machine.h"

namespace iph::primitives {

/// In-place EXCLUSIVE prefix sum over data (Blelloch up/down sweep).
/// Returns the total sum. 2*ceil(log2 n) + O(1) PRAM steps.
std::uint64_t prefix_sum_exclusive(pram::Machine& m,
                                   std::span<std::uint64_t> data);

/// Stable parallel compaction built on the scan: writes the indices i with
/// keep[i] != 0, in increasing order, to the front of `out` and returns
/// how many there are. out.size() must be >= the number of kept items.
std::uint64_t compact_indices(pram::Machine& m,
                              std::span<const std::uint8_t> keep,
                              std::span<std::uint32_t> out);

}  // namespace iph::primitives
