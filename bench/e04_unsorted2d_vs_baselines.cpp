// E4 — Theorem 5 against the baselines of the paper's Section 1:
//   * the parallel non-output-sensitive O(n log n) path (our fallback,
//     the Atallah-Goodrich substitute),
//   * the sequential O(n log h) algorithms it matches in work
//     (Kirkpatrick-Seidel, Chan), and QuickHull.
// Fixed n, sweeping the true hull size h (convex_k workload):
// reproduction target — Theorem 5's work tracks n log h (grows with h)
// while the fallback's stays at n log n (flat), with the crossover at
// moderate h; sequential baselines give wall-clock context.
#include <benchmark/benchmark.h>

#include <chrono>

#include "report.h"
#include "core/fallback2d.h"
#include "core/unsorted2d.h"
#include "geom/workloads.h"
#include "pram/machine.h"
#include "seq/chan2d.h"
#include "seq/kirkpatrick_seidel.h"
#include "seq/quickhull2d.h"

namespace {

constexpr std::size_t kN = 1 << 15;

void e04(benchmark::State& state) {
  const auto k = static_cast<std::size_t>(state.range(0));
  const auto pts = iph::geom::convex_k(kN, k, 7);
  iph::pram::Metrics t5, fb;
  for (auto _ : state) {
    {
      iph::pram::Machine m(1, 3);
      benchmark::DoNotOptimize(iph::core::unsorted_hull_2d(m, pts));
      t5 = m.metrics();
    }
    {
      iph::pram::Machine m(1, 3);
      benchmark::DoNotOptimize(iph::core::fallback_hull_2d(m, pts));
      fb = m.metrics();
    }
  }
  auto wall = [&](auto&& fn) {
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(fn());
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(t1 - t0).count();
  };
  state.counters["T5_work"] = static_cast<double>(t5.work);
  state.counters["T5_steps"] = static_cast<double>(t5.steps);
  state.counters["AG_work"] = static_cast<double>(fb.work);
  state.counters["work_ratio"] =
      static_cast<double>(t5.work) / static_cast<double>(fb.work);
  state.counters["ks_us"] = wall([&] { return iph::seq::ks_upper_hull(pts); });
  state.counters["chan_us"] =
      wall([&] { return iph::seq::chan_upper_hull(pts); });
  state.counters["qh_us"] =
      wall([&] { return iph::seq::quickhull_upper(pts); });
}

}  // namespace

BENCHMARK(e04)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Arg(8192)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Theorem 5 vs the O(n log n) substitute at fixed n, h swept: T5's work
// tracks n log h (measured T5_work/log h band ~2.3x over a 2048x h
// sweep), its step count tracks log h (levels found per phase scale
// with the recursion depth, which is the log of the output size at
// fixed n), and the fallback's work stays flat-ish (EXPERIMENTS.md E4
// — the fallback's 2.8x drift is output marshalling). x is h here, so
// "log_n" reads as log h.
IPH_BENCH_MAIN("e04",
               {"t5-work-nlogh", "T5_work", "log_n", 4.5},
               {"t5-steps-logh", "T5_steps", "log_n", 3.0},
               {"ag-work-flat", "AG_work", "flat", 4.5})
