// iph::obs — request-scoped tracing identity.
//
// A TraceContext names one request's causal thread through the serving
// stack: a 64-bit trace id (the request's identity across processes —
// wire-propagatable, see tools/serve_wire.h) plus the span id of the
// caller's enclosing span (0 = none; a client-supplied span id becomes
// the parent of the server-side root span, so a future hullrouter hop
// chains naturally).
//
// Ids are opaque: the only requirements are nonzero-when-set and
// uniqueness within one server's retention window. hullserved stamps
// (connection << 32 | sequence) so ids are unique AND monotonic per
// connection; HullService stamps from a plain counter for in-process
// callers that did not bring their own. Zero means "unset" everywhere.
//
// The wire encoding is fixed-width lowercase hex (no 0x), because JSON
// numbers are doubles and cannot carry a full 64-bit id.
#pragma once

#include <cstdint>
#include <string>

namespace iph::obs {

struct TraceContext {
  std::uint64_t trace_id = 0;   ///< 0 = unset (server will stamp one).
  std::uint64_t parent_span = 0;///< Caller's span id; 0 = no parent.

  bool has_id() const noexcept { return trace_id != 0; }
};

/// Lowercase hex, no prefix, no padding ("1a2b"). Zero encodes as "0".
inline std::string to_hex(std::uint64_t v) {
  char buf[17];
  int i = 16;
  buf[16] = '\0';
  do {
    buf[--i] = "0123456789abcdef"[v & 0xF];
    v >>= 4;
  } while (v != 0);
  return std::string(buf + i);
}

/// Parse to_hex output (1-16 lowercase/uppercase hex digits). Returns
/// false — leaving *out untouched — on empty, overlong or non-hex
/// input; the wire layer turns that into a per-message error.
inline bool from_hex(const std::string& s, std::uint64_t* out) {
  if (s.empty() || s.size() > 16) return false;
  std::uint64_t v = 0;
  for (const char c : s) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else if (c >= 'A' && c <= 'F') {
      v |= static_cast<std::uint64_t>(c - 'A' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}

}  // namespace iph::obs
