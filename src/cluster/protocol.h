// Protocol-level constants shared by the backend server (hullserved,
// via tools/serve_wire.h) and the cluster router (src/cluster).
//
// Versioning: every response line carries {"v": 1}. Requests MAY carry
// "v"; an absent "v" means "any version" (pre-versioning peers keep
// working), while a request whose "v" exceeds kProtocolVersion is
// answered with a structured reject — the peer asked for semantics this
// server does not speak.
//
// Structured rejects: an {"error": ...} line additionally carries a
// machine-readable {"reject": "<reason>"} so clients (and the router,
// which must decide whether a failure is retryable) can distinguish an
// unknown command or a cross-version peer from a genuinely malformed
// line without parsing prose:
//   bad_json      the line was not a JSON object
//   bad_request   well-formed JSON, but not a valid request/command
//   unknown_cmd   {"cmd": ...} named a command this server lacks
//   version       the request's "v" exceeds kProtocolVersion
//   no_backend    (router) every shard is marked down
//   shard_down    (router) the session's pinned shard is marked down —
//                 session traffic is never re-routed (affinity)
//   retry_budget  (router) retries/deadline exhausted without an answer
#pragma once

#include <string>

#include "trace/json.h"

namespace iph::cluster {

inline constexpr int kProtocolVersion = 1;

namespace reject {
inline constexpr const char* kBadJson = "bad_json";
inline constexpr const char* kBadRequest = "bad_request";
inline constexpr const char* kUnknownCmd = "unknown_cmd";
inline constexpr const char* kVersion = "version";
inline constexpr const char* kNoBackend = "no_backend";
inline constexpr const char* kShardDown = "shard_down";
inline constexpr const char* kRetryBudget = "retry_budget";
}  // namespace reject

/// Stamp the protocol version on a response object (all response
/// encoders call this so every line a server emits is versioned).
inline void stamp_version(trace::Json* o) {
  (*o)["v"] = trace::Json(kProtocolVersion);
}

/// Build a structured error reply: {"error": msg, "reject": reason,
/// "v": kProtocolVersion}.
inline trace::Json make_error(const std::string& reason,
                              const std::string& msg) {
  trace::Json o = trace::Json::object();
  o["error"] = trace::Json(msg);
  o["reject"] = trace::Json(reason);
  stamp_version(&o);
  return o;
}

/// The "reject" reason of an error reply, or "" when the reply is not
/// an error / carries no structured reason (pre-versioning server).
inline std::string error_reject_reason(const trace::Json& reply) {
  if (!reply.is_object() || reply.find("error") == nullptr) return "";
  return reply.get_str("reject", "");
}

/// False when the request object pins a protocol version this build
/// does not speak. Absent "v" is accepted (see file comment).
inline bool version_ok(const trace::Json& request) {
  const trace::Json* v = request.is_object() ? request.find("v") : nullptr;
  if (v == nullptr || !v->is_number()) return true;
  return v->as_double() <= static_cast<double>(kProtocolVersion);
}

}  // namespace iph::cluster
