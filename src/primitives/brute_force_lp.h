// Constant-time brute-force linear programming (Observation 2.2), in the
// geometric form the paper actually uses it in (Observation 2.4): bridge
// finding. Given k constraints (points) the 2-d LP is solved with k^3
// processors by checking every candidate pair against every tester; the
// 3-d LP with k^4 processors over triples. O(1) PRAM steps.
//
// These are the "base problem" solvers inside Alon-Megiddo / in-place
// bridge finding, and the brute-force half of failure sweeping.
#pragma once

#include <cstdint>
#include <span>
#include <utility>

#include "geom/hull_types.h"
#include "geom/point.h"
#include "pram/machine.h"

namespace iph::primitives {

/// The upper-hull edge of the points listed in `subset` (global indices
/// into pts) that lies vertically above the splitter point: returns
/// (a, b), global, with pts[a].x <= pts[splitter].x <= pts[b].x and every
/// subset point on or below line(a, b). Among collinear candidates the
/// longest edge wins (so collinear interior points end up ON the edge,
/// keeping hulls strict); remaining ties break to the smallest local pair
/// id, deterministically. Returns (kNone, kNone) when no valid pair
/// exists (all subset points share the splitter's x-column).
/// The splitter must be listed in `subset`. O(1) steps, |subset|^3 procs.
std::pair<geom::Index, geom::Index> brute_bridge_2d(
    pram::Machine& m, std::span<const geom::Point2> pts,
    std::span<const geom::Index> subset, geom::Index splitter);

/// 3-d analogue: the upper-hull facet of the subset whose xy-projection
/// contains the splitter's xy-projection, with every subset point on or
/// below its plane. Ties break to the smallest local triple id. Returns
/// a facet with a == kNone when no valid triple exists (xy-degenerate
/// subset). O(1) steps, |subset|^4 processors.
geom::Facet3 brute_facet_3d(pram::Machine& m,
                            std::span<const geom::Point3> pts,
                            std::span<const geom::Index> subset,
                            geom::Index splitter);

/// Batched forms: solve many independent base problems in the SAME PRAM
/// steps (the paper's simultaneous subproblems; the step count must not
/// grow with the number of problems). Processor count is the sum of the
/// per-problem k^3 / k^4 costs.
///
/// The 2-d splitter is a GAP (left, right): a valid edge must satisfy
/// pts[a].x <= pts[left].x and pts[right].x <= pts[b].x. Passing
/// left == right recovers the "edge above one point" problem; the
/// presorted tree algorithm passes (mid-1, mid) so that bridges span the
/// tree boundary even when a hull vertex sits exactly on it.
std::vector<std::pair<geom::Index, geom::Index>> batched_brute_bridge_2d(
    pram::Machine& m, std::span<const geom::Point2> pts,
    std::span<const std::vector<geom::Index>> subsets,
    std::span<const std::pair<geom::Index, geom::Index>> gaps);

std::vector<geom::Facet3> batched_brute_facet_3d(
    pram::Machine& m, std::span<const geom::Point3> pts,
    std::span<const std::vector<geom::Index>> subsets,
    std::span<const geom::Index> splitters);

}  // namespace iph::primitives
