#include "primitives/failure_sweep.h"

#include "pram/shadow.h"
#include "primitives/ragde.h"

namespace iph::primitives {

SweepResult sweep_failures(pram::Machine& m,
                           std::span<const std::uint8_t> failed_flags,
                           std::uint64_t bound) {
  SweepResult r;
  pram::Machine::Phase phase(m, "prim/failure-sweep");
  const RagdeResult rr = ragde_compact(m, failed_flags, bound);
  r.used_fallback = rr.used_fallback;
  if (!rr.ok) {
    r.ok = false;
    return r;
  }
  // Dense order = slot order (deterministic). This collection runs
  // host-side between steps (single writer by construction); the racing
  // writes inside the sweep all live in ragde_compact, whose scatter
  // cells and slot stores are shadow-tracked.
  for (const std::uint32_t v : rr.slots) {
    if (v != kRagdeEmpty) r.failed.push_back(v);
  }
  return r;
}

}  // namespace iph::primitives
