// NDJSON wire protocol shared by hullserved (server) and hullload
// (load generator). One JSON object per line, in both directions.
//
// Request line — either inline points or a named workload:
//   {"id": 7, "points": [[x0,y0],[x1,y1],...]}
//   {"id": 7, "n": 512, "workload": "disk", "seed": 42}
// Optional fields: "alpha" (in-place-bridge round budget, default 8),
// "deadline_ms" (relative deadline from receipt; expired-in-queue
// requests are answered "expired"), "edge_above" (bool; include the
// per-point edge-above array in the response — it is n entries, so off
// by default), "backend" ("pram" | "native" | "default"; which
// execution engine runs the request — "default", the default, defers
// to the server's --backend; unknown names are a parse error).
//
// Response line:
//   {"id": 7, "status": "ok", "hull": [3,17,...], "edge_count": 5,
//    "metrics": {"queue_wait_ms": ..., "exec_ms": ..., "e2e_ms": ...,
//                "batch_size": ..., "shard": ..., "steps": ...,
//                "work": ..., "max_active": ..., "seed": "<u64>",
//                "backend": "pram" | "native"}}
// The metrics "backend" is the engine that actually ran the request
// (always resolved — never "default"); native runs report zero PRAM
// steps/work/max_active (exec/backend.h cost-metric contract).
// Non-ok statuses ("rejected_full", "rejected_shutdown", "expired")
// omit "hull"/"edge_count". A line the server cannot parse is answered
// {"error": "..."} and the stream continues — the protocol never goes
// silent mid-stream.
//
// The metrics "seed" is serialized as a decimal string: it is a full
// 64-bit splitmix value and Json numbers are doubles.
//
// Introspection: a line carrying {"cmd": "statz"} is not a hull request
// — the server answers it with a snapshot of its service-level metrics
// registry (src/serve/stats.h), in stream order (the statz answer is
// written after every previously submitted request's response):
//   {"cmd": "statz"}                         -> {"statz": <iph-stats-v1>}
//   {"cmd": "statz", "format": "prometheus"} -> {"statz_text": "<text>"}
// An unknown "cmd" is answered {"error": ...} like any bad line.
#pragma once

#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "exec/backend.h"
#include "geom/workloads.h"
#include "serve/request.h"
#include "stats/export.h"
#include "trace/json.h"

namespace iph::tools {

/// Generate a named 2-d workload (geom/workloads.h family names:
/// "circle", "disk", "square", ...). Returns false for unknown names.
inline bool make_workload(const std::string& name, std::size_t n,
                          std::uint64_t seed,
                          std::vector<geom::Point2>* out) {
  for (const geom::Family2D f : geom::kAllFamilies2D) {
    if (geom::family_name(f) == name) {
      *out = geom::make2d(f, n, seed);
      return true;
    }
  }
  return false;
}

/// Decode one request line. On success fills `out` (deadline resolved
/// against Clock::now()) and `want_edge_above`; on failure returns
/// false with a message in *err.
inline bool request_from_json(const trace::Json& j, serve::Request* out,
                              bool* want_edge_above, std::string* err) {
  if (!j.is_object()) {
    *err = "request is not a JSON object";
    return false;
  }
  *out = serve::Request{};
  out->id = static_cast<serve::RequestId>(j.get_num("id", 0));
  out->alpha = static_cast<int>(j.get_num("alpha", 8));
  if (const trace::Json* pts = j.find("points"); pts && pts->is_array()) {
    out->points.reserve(pts->size());
    for (const trace::Json& p : pts->items()) {
      if (!p.is_array() || p.size() != 2 || !p.at(0).is_number() ||
          !p.at(1).is_number()) {
        *err = "\"points\" entries must be [x, y] number pairs";
        return false;
      }
      out->points.push_back({p.at(0).as_double(), p.at(1).as_double()});
    }
  } else {
    const auto n = static_cast<std::size_t>(j.get_num("n", 0));
    const std::string workload = j.get_str("workload", "disk");
    const auto seed = static_cast<std::uint64_t>(j.get_num("seed", 0));
    if (n == 0) {
      *err = "request needs \"points\" or a positive \"n\"";
      return false;
    }
    if (!make_workload(workload, n, seed, &out->points)) {
      *err = "unknown workload \"" + workload + "\"";
      return false;
    }
  }
  if (const trace::Json* b = j.find("backend"); b != nullptr) {
    if (!b->is_string() ||
        !exec::parse_backend(b->as_string(), &out->backend)) {
      *err = "\"backend\" must be \"pram\", \"native\" or \"default\"";
      return false;
    }
  }
  if (const double ms = j.get_num("deadline_ms", 0); ms > 0) {
    out->deadline = serve::Clock::now() +
                    std::chrono::microseconds(
                        static_cast<std::int64_t>(ms * 1000.0));
  }
  const trace::Json* ea = j.find("edge_above");
  *want_edge_above = ea != nullptr && ea->as_bool();
  return true;
}

/// Encode one response line (see file comment for the shape).
inline trace::Json response_to_json(const serve::Response& r,
                                    bool edge_above) {
  trace::Json o = trace::Json::object();
  o["id"] = trace::Json(r.id);
  o["status"] = trace::Json(serve::status_name(r.status));
  if (r.status == serve::Status::kOk) {
    trace::Json hull = trace::Json::array();
    for (const geom::Index v : r.hull.upper.vertices) {
      hull.push_back(trace::Json(static_cast<std::uint64_t>(v)));
    }
    o["hull"] = std::move(hull);
    o["edge_count"] =
        trace::Json(static_cast<std::uint64_t>(r.hull.upper.edge_count()));
    if (edge_above) {
      trace::Json above = trace::Json::array();
      for (const geom::Index e : r.hull.edge_above) {
        above.push_back(trace::Json(static_cast<std::uint64_t>(e)));
      }
      o["edge_above"] = std::move(above);
    }
  }
  trace::Json m = trace::Json::object();
  m["queue_wait_ms"] = trace::Json(r.metrics.queue_wait_ms);
  m["exec_ms"] = trace::Json(r.metrics.exec_ms);
  m["e2e_ms"] = trace::Json(r.metrics.e2e_ms);
  m["batch_size"] = trace::Json(r.metrics.batch_size);
  m["shard"] = trace::Json(r.metrics.shard);
  m["steps"] = trace::Json(r.metrics.steps);
  m["work"] = trace::Json(r.metrics.work);
  m["max_active"] = trace::Json(r.metrics.max_active);
  m["seed"] = trace::Json(std::to_string(r.metrics.seed));
  m["backend"] = trace::Json(exec::backend_name(r.metrics.backend));
  o["metrics"] = std::move(m);
  return o;
}

/// True when `j` is a command line rather than a hull request; the
/// command name (e.g. "statz") is left in *cmd.
inline bool wire_command(const trace::Json& j, std::string* cmd) {
  if (!j.is_object()) return false;
  const trace::Json* c = j.find("cmd");
  if (c == nullptr || !c->is_string()) return false;
  *cmd = c->as_string();
  return true;
}

/// Encode a statz answer (see file comment for both shapes).
inline trace::Json statz_response(const stats::RegistrySnapshot& snap,
                                  bool prometheus) {
  trace::Json o = trace::Json::object();
  if (prometheus) {
    o["statz_text"] = trace::Json(stats::to_prometheus(snap));
  } else {
    o["statz"] = stats::to_json(snap);
  }
  return o;
}

/// Decode a statz answer produced by statz_response (JSON format only —
/// the prometheus text shape is for humans/scrapers, not this parser).
inline bool statz_from_json(const trace::Json& j,
                            stats::RegistrySnapshot* out, std::string* err) {
  const trace::Json* s = j.is_object() ? j.find("statz") : nullptr;
  if (s == nullptr) {
    if (err != nullptr) *err = "no \"statz\" member in reply";
    return false;
  }
  return stats::from_json(*s, *out, err);
}

/// Buffered line-at-a-time IO over a file descriptor (stdin/stdout or
/// a connected socket — both sides of the protocol speak through this).
class LineChannel {
 public:
  explicit LineChannel(int in_fd, int out_fd) : in_(in_fd), out_(out_fd) {}

  /// Next '\n'-terminated line (terminator stripped). At EOF a final
  /// unterminated line is yielded once. False on EOF/error.
  bool read_line(std::string* line) {
    for (;;) {
      if (const auto nl = buf_.find('\n'); nl != std::string::npos) {
        line->assign(buf_, 0, nl);
        buf_.erase(0, nl + 1);
        return true;
      }
      char chunk[4096];
      ssize_t got;
      do {
        got = ::read(in_, chunk, sizeof chunk);
      } while (got < 0 && errno == EINTR);
      if (got <= 0) {
        if (buf_.empty()) return false;
        line->swap(buf_);
        buf_.clear();
        return true;
      }
      buf_.append(chunk, static_cast<std::size_t>(got));
    }
  }

  /// Write `s` plus '\n', riding out partial writes. False on error.
  bool write_line(std::string_view s) {
    std::string msg(s);
    msg.push_back('\n');
    std::size_t off = 0;
    while (off < msg.size()) {
      ssize_t put;
      do {
        put = ::write(out_, msg.data() + off, msg.size() - off);
      } while (put < 0 && errno == EINTR);
      if (put <= 0) return false;
      off += static_cast<std::size_t>(put);
    }
    return true;
  }

 private:
  int in_;
  int out_;
  std::string buf_;
};

}  // namespace iph::tools
