#include "obs/chrome_export.h"

#include <algorithm>
#include <limits>
#include <string>
#include <utility>

#include "obs/context.h"

namespace iph::obs {

namespace {

using trace::Json;

Json span_json(const Span& s, std::uint64_t base_ns) {
  Json j = Json::object();
  j["name"] = s.name;
  j["span"] = static_cast<std::uint64_t>(s.span_id);
  j["parent"] = static_cast<std::uint64_t>(s.parent_id);
  j["start_us"] =
      s.start_ns >= base_ns
          ? static_cast<double>(s.start_ns - base_ns) / 1e3
          : -static_cast<double>(base_ns - s.start_ns) / 1e3;
  j["dur_us"] = s.duration_us();
  return j;
}

Json trace_json(const CompletedTrace& t) {
  Json j = Json::object();
  j["trace"] = to_hex(t.trace_id);
  if (t.parent_span != 0) j["client_span"] = to_hex(t.parent_span);
  j["id"] = t.request_id;
  j["kind"] = t.kind;
  j["status"] = t.status;
  if (t.backend[0] != '\0') j["backend"] = t.backend;
  if (t.tag[0] != '\0') j["tag"] = t.tag;
  if (t.batch_size != 0) j["batch"] = t.batch_size;
  j["e2e_ms"] = t.e2e_ms;
  if (!t.repro.empty()) j["repro"] = t.repro;
  const std::uint64_t base = t.root_start_ns();
  Json spans = Json::array();
  for (const Span& s : t.spans) spans.push_back(span_json(s, base));
  for (const Span& s : t.phase_spans) spans.push_back(span_json(s, base));
  j["spans"] = std::move(spans);
  if (t.phase_spans_truncated) j["phase_spans_truncated"] = true;
  return j;
}

}  // namespace

Json tracez_json(const FlightRecorder& rec, std::size_t limit,
                 bool slowest) {
  std::vector<CompletedTrace> traces = rec.snapshot();
  if (slowest) {
    std::stable_sort(traces.begin(), traces.end(),
                     [](const CompletedTrace& a, const CompletedTrace& b) {
                       return a.e2e_ms > b.e2e_ms;
                     });
  }
  if (limit != 0 && traces.size() > limit) traces.resize(limit);

  Json doc = Json::object();
  doc["retained"] = static_cast<std::uint64_t>(
      rec.retained() < 0 ? 0 : rec.retained());
  doc["published"] = rec.published_total();
  doc["dropped_spans"] = rec.spans_dropped_total();
  Json exemplars = Json::array();
  for (const Exemplar& e : rec.exemplars()) {
    Json j = Json::object();
    j["bucket_le_ms"] =
        e.bucket_le_ms == std::numeric_limits<double>::infinity()
            ? Json("+Inf")
            : Json(e.bucket_le_ms);
    j["trace"] = trace_json(e.trace);
    exemplars.push_back(std::move(j));
  }
  doc["exemplars"] = std::move(exemplars);
  Json list = Json::array();
  for (const CompletedTrace& t : traces) list.push_back(trace_json(t));
  doc["traces"] = std::move(list);
  return doc;
}

Json chrome_trace_json(const std::vector<CompletedTrace>& traces) {
  Json events = Json::array();
  {
    Json e = Json::object();
    e["ph"] = "M";
    e["pid"] = 1;
    e["tid"] = 0;
    e["name"] = "process_name";
    Json args = Json::object();
    args["name"] = "iph flight recorder";
    e["args"] = std::move(args);
    events.push_back(std::move(e));
  }
  std::uint64_t base = std::numeric_limits<std::uint64_t>::max();
  for (const CompletedTrace& t : traces) {
    const std::uint64_t r = t.root_start_ns();
    if (r != 0 && r < base) base = r;
  }
  if (base == std::numeric_limits<std::uint64_t>::max()) base = 0;

  int tid = 0;
  for (const CompletedTrace& t : traces) {
    ++tid;
    {
      Json e = Json::object();
      e["ph"] = "M";
      e["pid"] = 1;
      e["tid"] = tid;
      e["name"] = "thread_name";
      Json args = Json::object();
      args["name"] = std::string(t.kind) + " " + to_hex(t.trace_id) +
                     " #" + std::to_string(t.request_id);
      e["args"] = std::move(args);
      events.push_back(std::move(e));
    }
    auto emit = [&](const Span& s, bool phase) {
      Json e = Json::object();
      e["ph"] = "X";
      e["pid"] = 1;
      e["tid"] = tid;
      e["name"] = s.name;
      e["ts"] = s.start_ns >= base
                    ? static_cast<double>(s.start_ns - base) / 1e3
                    : 0.0;
      e["dur"] = s.duration_us();
      Json args = Json::object();
      args["trace"] = to_hex(t.trace_id);
      args["span"] = static_cast<std::uint64_t>(s.span_id);
      args["parent"] = static_cast<std::uint64_t>(s.parent_id);
      if (phase) args["source"] = "pram_phase";
      if (s.span_id == kRootSpanId) {
        args["status"] = t.status;
        if (t.backend[0] != '\0') args["backend"] = t.backend;
        args["e2e_ms"] = t.e2e_ms;
        if (!t.repro.empty()) args["repro"] = t.repro;
      }
      e["args"] = std::move(args);
      events.push_back(std::move(e));
    };
    for (const Span& s : t.spans) emit(s, false);
    for (const Span& s : t.phase_spans) emit(s, true);
  }

  Json doc = Json::object();
  doc["traceEvents"] = std::move(events);
  doc["displayTimeUnit"] = "ms";
  return doc;
}

}  // namespace iph::obs
