file(REMOVE_RECURSE
  "libiph_geom.a"
)
