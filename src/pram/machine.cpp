#include "pram/machine.h"

#include "support/check.h"
#include "support/env.h"

namespace iph::pram {

namespace {

std::uint64_t pick_chunk(std::uint64_t n, unsigned threads) {
  // Aim for ~8 chunks per thread for dynamic balance, but never tiny
  // chunks: the per-chunk dispatch cost must stay negligible.
  const std::uint64_t target = n / (std::uint64_t{threads} * 8 + 1) + 1;
  return target < 256 ? 256 : target;
}

}  // namespace

Machine::Machine(unsigned threads, std::uint64_t seed)
    : seed_(seed),
      grain_(support::env_pram_grain()),
      threads_(threads == 0 ? support::env_threads() : threads) {
#if defined(IPH_PRAM_CHECK_DEFAULT_ON)
  constexpr bool check_default = true;
#else
  constexpr bool check_default = false;
#endif
  if (support::env_flag("IPH_PRAM_CHECK", check_default)) enable_check();
  if (support::env_flag("IPH_CW_CONFLICTS", false)) count_conflicts_ = true;
  // Worker 0 is the calling thread; spawn threads_-1 helpers.
  for (unsigned i = 1; i < threads_; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

Machine::~Machine() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    shutdown_ = true;
  }
  cv_job_.notify_all();
  for (auto& t : workers_) t.join();
}

void Machine::reset(std::uint64_t seed) {
  // Between programs only: an open Phase would fold this program's
  // counters into the next one's.
  IPH_CHECK(phase_stack_.empty());
  IPH_CHECK(peak_stack_.empty());
  seed_ = seed;
  step_index_ = 0;
  metrics_ = Metrics{};
  phases_.clear();
  // A fresh shadow map: entries are stamped with step indices, and the
  // restarted numbering would otherwise alias the previous program's
  // same-numbered steps into false races on reused cells.
  if (shadow_) shadow_ = std::make_unique<ShadowTracker>();
}

void Machine::enable_check() {
  if (!shadow_) shadow_ = std::make_unique<ShadowTracker>();
}

void Machine::disable_check() { shadow_.reset(); }

void Machine::checked_step_prologue() {
  shadow_->begin_step(step_index_,
                      phase_stack_.empty() ? std::string() : phase_stack_.back());
  shadow_detail::t_active = shadow_.get();  // host thread (worker 0)
  step_shadow_ = shadow_.get();             // pool workers, at job pickup
}

void Machine::checked_step_epilogue() {
  shadow_detail::t_active = nullptr;
  step_shadow_ = nullptr;
  shadow_->end_step();
}

void Machine::counted_step_prologue() {
  // step_index_ + 1 so a freshly-zeroed cell stamp never matches.
  conflict_sink_.stamp = step_index_ + 1;
  conflict_sink_.count.store(0, std::memory_order_relaxed);
  conflict_detail::t_sink = &conflict_sink_;  // host thread (worker 0)
  step_sink_ = &conflict_sink_;               // pool workers, at job pickup
}

std::uint64_t Machine::counted_step_epilogue() {
  conflict_detail::t_sink = nullptr;
  step_sink_ = nullptr;
  return conflict_sink_.count.load(std::memory_order_relaxed);
}

void Machine::run_range(std::uint64_t n, RangeFn fn, void* ctx) {
  IPH_CHECK(fn != nullptr);
  if (threads_ <= 1 || n < grain_ || workers_.empty()) {
    fn(ctx, 0, n);
    return;
  }
  const std::uint64_t chunk = pick_chunk(n, threads_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_fn_ = fn;
    job_ctx_ = ctx;
    job_n_ = n;
    job_chunk_ = chunk;
    job_next_.store(0, std::memory_order_relaxed);
    workers_remaining_ = static_cast<unsigned>(workers_.size());
    ++job_generation_;
  }
  cv_job_.notify_all();
  // The calling thread participates.
  std::uint64_t lo;
  while ((lo = job_next_.fetch_add(chunk, std::memory_order_relaxed)) < n) {
    const std::uint64_t hi = lo + chunk < n ? lo + chunk : n;
    fn(ctx, lo, hi);
  }
  // Barrier: wait for helpers to drain.
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [this] { return workers_remaining_ == 0; });
}

void Machine::worker_loop(unsigned /*worker_id*/) {
  std::uint64_t seen_generation = 0;
  for (;;) {
    RangeFn fn;
    void* ctx;
    std::uint64_t n, chunk;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_job_.wait(lk, [&] {
        return shutdown_ || job_generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = job_generation_;
      fn = job_fn_;
      ctx = job_ctx_;
      n = job_n_;
      chunk = job_chunk_;
      // Bind THIS machine's step context to the thread before running
      // chunks: the checker/conflict probes consult thread-locals (see
      // shadow.h/conflict.h), so writes by this worker can never land in
      // a concurrently-stepping machine's tracker or sink.
      shadow_detail::t_active = step_shadow_;
      conflict_detail::t_sink = step_sink_;
    }
    std::uint64_t lo;
    while ((lo = job_next_.fetch_add(chunk, std::memory_order_relaxed)) < n) {
      const std::uint64_t hi = lo + chunk < n ? lo + chunk : n;
      fn(ctx, lo, hi);
    }
    shadow_detail::t_active = nullptr;
    conflict_detail::t_sink = nullptr;
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--workers_remaining_ == 0) cv_done_.notify_one();
    }
  }
}

}  // namespace iph::pram
