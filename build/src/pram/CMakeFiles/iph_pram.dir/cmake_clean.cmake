file(REMOVE_RECURSE
  "CMakeFiles/iph_pram.dir/allocation.cpp.o"
  "CMakeFiles/iph_pram.dir/allocation.cpp.o.d"
  "CMakeFiles/iph_pram.dir/machine.cpp.o"
  "CMakeFiles/iph_pram.dir/machine.cpp.o.d"
  "libiph_pram.a"
  "libiph_pram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iph_pram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
