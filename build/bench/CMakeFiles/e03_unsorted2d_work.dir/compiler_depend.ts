# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for e03_unsorted2d_work.
