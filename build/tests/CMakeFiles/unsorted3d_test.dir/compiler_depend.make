# Empty compiler generated dependencies file for unsorted3d_test.
# This may be replaced when dependencies are built.
