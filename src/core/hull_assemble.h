// Shared output assembly: the paper's algorithms produce, for every
// point, the hull edge above it as an endpoint pair (a, b). Every pair
// is a global hull edge and every hull vertex appears as an endpoint of
// its own pair (covering argument, presorted_constant.h), so the sorted
// unique endpoint set IS the hull chain. Host-side presentation.
#pragma once

#include <span>

#include "geom/hull_types.h"
#include "geom/point.h"

namespace iph::core {

/// Build HullResult2D from per-point edge endpoint pairs. Entries with
/// pair_a[i] == kNone keep edge_above[i] == kNone (legal only for
/// degenerate inputs). Duplicate coordinates are canonicalized.
geom::HullResult2D assemble_from_pairs(std::span<const geom::Point2> pts,
                                       std::span<const geom::Index> pair_a,
                                       std::span<const geom::Index> pair_b);

}  // namespace iph::core
