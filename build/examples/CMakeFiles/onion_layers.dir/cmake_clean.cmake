file(REMOVE_RECURSE
  "CMakeFiles/onion_layers.dir/onion_layers.cpp.o"
  "CMakeFiles/onion_layers.dir/onion_layers.cpp.o.d"
  "onion_layers"
  "onion_layers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/onion_layers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
