// Span <-> phase-tree linkage: convert a [begin, end) slice of a
// trace::Recorder's PRAM phase-event log into obs::Span children of a
// request's exec span, on the absolute steady-clock timeline
// (Recorder::epoch_ns() + wall_us offset).
//
// Ownership caveat the serving layer must respect: the event slice
// aliases the recorder's internal vector, and a pooled shard's recorder
// is appended to by whichever worker holds the shard's lease — so the
// conversion must happen BEFORE the lease is released (service.cpp
// does; the resulting Spans carry interned names and own nothing).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "obs/span.h"
#include "trace/recorder.h"

namespace iph::obs {

/// Convert events [range.first, range.second) of `rec` to closed spans
/// parented under `parent_id` (nested phases nest; an unmatched open is
/// closed at the slice end, an unmatched close is skipped). Span ids
/// are assigned from kFirstPhaseSpanId. At most kMaxPhaseSpans spans
/// are returned; *truncated is set (never cleared) when the cap or the
/// recorder's own event cap cut the tree short. Returns empty when rec
/// is null or the range is empty/invalid.
std::vector<Span> phase_spans_from_events(
    const trace::Recorder* rec, std::pair<std::size_t, std::size_t> range,
    std::uint32_t parent_id, bool* truncated);

}  // namespace iph::obs
