#include "serve/machine_pool.h"

#include "support/check.h"

namespace iph::serve {

MachinePool::MachinePool(std::size_t shards, unsigned threads_per_shard,
                         std::uint64_t seed) {
  IPH_CHECK(shards > 0);
  machines_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    machines_.push_back(
        std::make_unique<pram::Machine>(threads_per_shard, seed));
  }
  leased_.assign(shards, false);
  lease_t0_.assign(shards, std::chrono::steady_clock::time_point{});
}

MachinePool::Lease MachinePool::acquire() {
  std::unique_lock<std::mutex> lk(mu_);
  std::size_t idx = 0;
  cv_.wait(lk, [&] {
    for (std::size_t i = 0; i < leased_.size(); ++i) {
      if (!leased_[i]) {
        idx = i;
        return true;
      }
    }
    return false;
  });
  leased_[idx] = true;
  ++leased_count_;
  lease_t0_[idx] = std::chrono::steady_clock::now();
  if (leased_gauge_ != nullptr) {
    leased_gauge_->set(static_cast<std::int64_t>(leased_count_));
  }
  return Lease(this, idx);
}

std::optional<MachinePool::Lease> MachinePool::try_acquire() {
  std::lock_guard<std::mutex> lk(mu_);
  for (std::size_t i = 0; i < leased_.size(); ++i) {
    if (!leased_[i]) {
      leased_[i] = true;
      ++leased_count_;
      lease_t0_[i] = std::chrono::steady_clock::now();
      if (leased_gauge_ != nullptr) {
        leased_gauge_->set(static_cast<std::int64_t>(leased_count_));
      }
      return Lease(this, i);
    }
  }
  return std::nullopt;
}

std::size_t MachinePool::available() const {
  std::lock_guard<std::mutex> lk(mu_);
  std::size_t n = 0;
  for (const bool b : leased_) n += b ? 0 : 1;
  return n;
}

void MachinePool::bind_stats(stats::Gauge* leased,
                             std::vector<stats::Counter*> busy_us) {
  std::lock_guard<std::mutex> lk(mu_);
  leased_gauge_ = leased;
  busy_us_ = std::move(busy_us);
  if (leased_gauge_ != nullptr) {
    leased_gauge_->set(static_cast<std::int64_t>(leased_count_));
  }
}

void MachinePool::Lease::release() {
  if (pool_ == nullptr) return;
  pool_->release_shard(index_);
  pool_ = nullptr;
}

void MachinePool::release_shard(std::size_t index) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    leased_[index] = false;
    --leased_count_;
    if (leased_gauge_ != nullptr) {
      leased_gauge_->set(static_cast<std::int64_t>(leased_count_));
    }
    if (index < busy_us_.size() && busy_us_[index] != nullptr) {
      const auto held = std::chrono::steady_clock::now() - lease_t0_[index];
      busy_us_[index]->inc(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(held)
              .count()));
    }
  }
  cv_.notify_one();
}

}  // namespace iph::serve
