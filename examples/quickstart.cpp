// quickstart — the 60-second tour of the iph public API.
//
//   build/examples/quickstart
//
// Computes 2-d and 3-d hulls of random point sets with every algorithm
// the paper contributes, and prints the PRAM cost next to each.
#include <cstdio>

#include "core/api.h"
#include "geom/workloads.h"

int main() {
  using namespace iph;

  // --- 2-d, unsorted input (Theorem 5) -------------------------------
  const auto pts = geom::in_disk(100000, /*seed=*/42);
  const Hull2D h = upper_hull_2d(pts);
  std::printf("Theorem 5 (unsorted 2-d), n=%zu:\n", pts.size());
  std::printf("  upper hull vertices : %zu\n",
              h.result.upper.vertices.size());
  std::printf("  PRAM time (steps)   : %llu\n",
              static_cast<unsigned long long>(h.metrics.steps));
  std::printf("  PRAM work           : %llu\n",
              static_cast<unsigned long long>(h.metrics.work));
  // Every point knows the hull edge above it (the paper's convention):
  const geom::Index e = h.result.edge_above[0];
  std::printf("  point 0 lies under hull edge %u -> %u\n",
              h.result.upper.vertices[e], h.result.upper.vertices[e + 1]);

  // --- 2-d, presorted input (Lemma 2.5, then Theorem 2) ---------------
  auto sorted = pts;
  geom::sort_lex(sorted);
  Options o;
  o.algo = Algo2D::kPresortedConstant;
  const Hull2D hc = upper_hull_2d_presorted(sorted, o);
  std::printf("\nLemma 2.5 (presorted, constant time): steps=%llu work=%llu\n",
              static_cast<unsigned long long>(hc.metrics.steps),
              static_cast<unsigned long long>(hc.metrics.work));
  o.algo = Algo2D::kPresortedLogstar;
  const Hull2D hl = upper_hull_2d_presorted(sorted, o);
  std::printf("Theorem 2 (presorted, log* time):     steps=%llu work=%llu\n",
              static_cast<unsigned long long>(hl.metrics.steps),
              static_cast<unsigned long long>(hl.metrics.work));

  // --- full hull -------------------------------------------------------
  const FullHull2D full = convex_hull_2d(pts);
  std::printf("\nfull convex hull: %zu vertices (CCW)\n",
              full.vertices.size());

  // --- 3-d (Theorem 6) -------------------------------------------------
  const auto pts3 = geom::in_ball(20000, 7);
  const Hull3D h3 = upper_hull_3d(pts3);
  std::printf("\nTheorem 6 (unsorted 3-d), n=%zu: %zu facets, steps=%llu%s\n",
              pts3.size(), h3.result.facets.size(),
              static_cast<unsigned long long>(h3.metrics.steps),
              h3.used_fallback ? " (repaired via fallback)" : "");
  return 0;
}
