// Bit-reproducibility across hardware thread counts: the simulator's
// contract is that a run is a pure function of (input, seed), never of
// the pool scheduling. Every randomized algorithm is swept over 1, 2, 4,
// 8 and hardware_concurrency threads and must produce identical outputs
// AND identical PRAM metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <tuple>
#include <vector>

#include "core/fallback2d.h"
#include "core/presorted_constant.h"
#include "core/presorted_logstar.h"
#include "core/unsorted2d.h"
#include "core/unsorted3d.h"
#include "geom/workloads.h"
#include "pram/machine.h"

namespace iph {
namespace {

using geom::Point2;

struct Fingerprint {
  std::vector<geom::Index> vertices;
  std::vector<geom::Index> pointers;
  std::uint64_t steps = 0;
  std::uint64_t work = 0;

  bool operator==(const Fingerprint&) const = default;
};

class ThreadDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(ThreadDeterminism, AllAlgorithmsBitIdentical) {
  const int algo = GetParam();
  auto run = [&](unsigned threads) {
    Fingerprint f;
    switch (algo) {
      case 0: {
        const auto pts = geom::in_disk(3000, 5);
        pram::Machine m(threads, 99);
        const auto r = core::unsorted_hull_2d(m, pts);
        f = {r.upper.vertices, r.edge_above, m.metrics().steps,
             m.metrics().work};
        break;
      }
      case 1: {
        auto pts = geom::gaussian2(4000, 5);
        geom::sort_lex(pts);
        pram::Machine m(threads, 99);
        const auto r = core::presorted_constant_hull(m, pts);
        f = {r.upper.vertices, r.edge_above, m.metrics().steps,
             m.metrics().work};
        break;
      }
      case 2: {
        auto pts = geom::in_square(8000, 5);
        geom::sort_lex(pts);
        pram::Machine m(threads, 99);
        const auto r = core::presorted_logstar_hull(m, pts);
        f = {r.upper.vertices, r.edge_above, m.metrics().steps,
             m.metrics().work};
        break;
      }
      case 3: {
        const auto pts = geom::with_duplicates(2500, 5);
        pram::Machine m(threads, 99);
        const auto r = core::fallback_hull_2d(m, pts);
        f = {r.upper.vertices, r.edge_above, m.metrics().steps,
             m.metrics().work};
        break;
      }
      default: {
        const auto pts = geom::in_cube(900, 5);
        pram::Machine m(threads, 99);
        const auto r = core::unsorted_hull_3d(m, pts);
        std::vector<geom::Index> verts;
        for (const auto& t : r.facets) {
          verts.push_back(t.a);
          verts.push_back(t.b);
          verts.push_back(t.c);
        }
        f = {verts, r.facet_above, m.metrics().steps, m.metrics().work};
        break;
      }
    }
    return f;
  };
  const Fingerprint base = run(1);
  std::vector<unsigned> sweep{2u, 4u, 8u};
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  if (std::find(sweep.begin(), sweep.end(), hw) == sweep.end() && hw != 1) {
    sweep.push_back(hw);
  }
  for (unsigned threads : sweep) {
    EXPECT_EQ(run(threads), base) << "threads=" << threads;
  }
}

std::string algo_name(const ::testing::TestParamInfo<int>& info) {
  static const char* const names[] = {"unsorted2d", "presorted_constant",
                                      "presorted_logstar", "fallback2d",
                                      "unsorted3d"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, ThreadDeterminism,
                         ::testing::Values(0, 1, 2, 3, 4), algo_name);

}  // namespace
}  // namespace iph
