file(REMOVE_RECURSE
  "libiph_hulltools.a"
)
