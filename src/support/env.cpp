#include "support/env.h"

#include <cstdlib>
#include <thread>

namespace iph::support {

unsigned env_threads() noexcept {
  if (const char* s = std::getenv("IPH_THREADS")) {
    const long v = std::strtol(s, nullptr, 10);
    if (v >= 1 && v <= 4096) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::uint64_t env_seed() noexcept {
  if (const char* s = std::getenv("IPH_SEED")) {
    return std::strtoull(s, nullptr, 0);
  }
  return 0x19910722ULL;  // SPAA'91
}

}  // namespace iph::support
