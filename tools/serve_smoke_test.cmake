# ctest script: end-to-end smoke of the serving tools.
#   1. hullserved in stdin mode must answer every NDJSON line — good
#      requests with "ok" hulls, malformed lines with "error" — and
#      exit 0 at EOF. A trailing {"cmd":"statz"} line must be answered
#      with the service registry, whose counters (answered in stream
#      order, after every earlier response) reconcile exactly with the
#      session: 3 valid submissions out of 5 lines.
#   2. hullload driving an in-process service must complete a small
#      closed-loop burst with every request ok (exit 0 under
#      --expect-all-ok) and emit a parseable --json summary; with
#      --scrape it must reconcile the server registry against its own
#      tally and write the diffed snapshot to --scrape-out.
#   3-4. The streaming-session protocol, stdin and in-process.
#   5-7. Request tracing: wire trace contexts round-trip (server ids
#      deterministic and monotonic per connection, client ids adopted
#      verbatim, malformed contexts answered per-message without
#      killing the stream), tracez serves span trees, the shutdown
#      exporters dump valid JSON, --obs-capacity 0 disables cleanly,
#      and a TCP burst reconciles the obs span identities and prints
#      the slowest span trees via hullload --trace-slowest.
#
# Invoked as:
#   cmake -DHULLSERVED=<bin> -DHULLLOAD=<bin> -DWORK_DIR=<scratch>
#         -P serve_smoke_test.cmake
#   8. Cluster: hullrouter fronting 3 hullserved backends (--port 0,
#      ports read from the "listening <port>" stdout contract). Wire
#      admin drain/undrain + fleet statz over stdin mode; then over
#      TCP a batch burst and a streaming-session burst through the
#      router (both with exact router-aware scrape reconciliation), a
#      backend killed mid-fleet with the next burst still all-ok
#      (io retries + markdown visible in the router's shutdown statz
#      dump), and a direct multi-target hullload --endpoints run.
if(NOT HULLSERVED OR NOT HULLLOAD OR NOT HULLROUTER OR NOT WORK_DIR)
  message(FATAL_ERROR
          "need -DHULLSERVED=... -DHULLLOAD=... -DHULLROUTER=... "
          "-DWORK_DIR=...")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# --- Case 1: stdin session with good, inline, and broken lines --------
file(WRITE "${WORK_DIR}/requests.ndjson"
"{\"id\":1,\"n\":64,\"workload\":\"disk\",\"seed\":7}
{\"id\":2,\"points\":[[0,0],[1,2],[2,0],[3,3]]}
this is not json
{\"id\":4,\"n\":0}
{\"id\":5,\"n\":128,\"workload\":\"circle\",\"seed\":3,\"edge_above\":true}
{\"cmd\":\"statz\"}
")
execute_process(
  COMMAND "${HULLSERVED}" --quiet --shards 1 --workers 1 --threads 2
  INPUT_FILE "${WORK_DIR}/requests.ndjson"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "hullserved: expected exit 0, got ${rc}\n${err}")
endif()
string(REGEX MATCHALL "\"status\":\"ok\"" oks "${out}")
list(LENGTH oks n_ok)
if(NOT n_ok EQUAL 3)
  message(FATAL_ERROR "hullserved: expected 3 ok responses, got ${n_ok}:\n${out}")
endif()
string(REGEX MATCHALL "\"error\":" errs "${out}")
list(LENGTH errs n_err)
if(NOT n_err EQUAL 2)
  message(FATAL_ERROR "hullserved: expected 2 error lines, got ${n_err}:\n${out}")
endif()
# The circle request asked for the per-point edge-above array; the full
# n=64 disk request did not (response stays small by default).
if(NOT out MATCHES "\"edge_above\":\\[")
  message(FATAL_ERROR "hullserved: edge_above array missing:\n${out}")
endif()
# The statz line is answered in stream order, so its counters include
# exactly this session: 3 valid submissions (the 2 broken lines never
# reach the service).
if(NOT out MATCHES "\"statz\":")
  message(FATAL_ERROR "hullserved: statz answer missing:\n${out}")
endif()
if(NOT out MATCHES "\"iph_serve_submitted_total\":3")
  message(FATAL_ERROR
          "hullserved: statz submitted counter should be exactly 3:\n${out}")
endif()
if(NOT out MATCHES "\"iph_serve_completed_total\":3")
  message(FATAL_ERROR
          "hullserved: statz completed counter should be exactly 3:\n${out}")
endif()

# --- Case 2: hullload closed-loop burst, in-process -------------------
execute_process(
  COMMAND "${HULLLOAD}" --clients 2 --requests 8 --n 64
          --shards 1 --workers 1 --threads 2
          --expect-all-ok --json
          --scrape --scrape-out "${WORK_DIR}/statz.json"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "hullload: expected exit 0, got ${rc}\n${err}")
endif()
if(NOT out MATCHES "\"ok\":16")
  message(FATAL_ERROR "hullload: json summary lacks ok:16\n${out}")
endif()
if(NOT err MATCHES "e2e ms")
  message(FATAL_ERROR "hullload: human summary missing\n${err}")
endif()
# --scrape reconciled (exit 0 already proves it) and recorded the
# server-side view in the summary and the snapshot file.
if(NOT out MATCHES "\"scrape_ok\":true")
  message(FATAL_ERROR "hullload: json summary lacks scrape_ok:true\n${out}")
endif()
if(NOT EXISTS "${WORK_DIR}/statz.json")
  message(FATAL_ERROR "hullload: --scrape-out wrote no snapshot file")
endif()
file(READ "${WORK_DIR}/statz.json" statz)
if(NOT statz MATCHES "iph-stats-v1")
  message(FATAL_ERROR "hullload: snapshot lacks iph-stats-v1 schema:\n${statz}")
endif()

# --- Case 3: stdin streaming session: open -> append -> delta -> close
# Good appends (inline and generated), an unknown sid, and a malformed
# session line must all be answered in stream order without killing the
# stream; the trailing statz must carry fully-settled session counters.
file(WRITE "${WORK_DIR}/session.ndjson"
"{\"cmd\":\"session_open\",\"backend\":\"native\"}
{\"cmd\":\"session_append\",\"sid\":1,\"points\":[[0,0],[1,2],[2,0]]}
{\"cmd\":\"session_append\",\"sid\":1,\"n\":16,\"workload\":\"disk\",\"seed\":5}
{\"cmd\":\"session_append\",\"sid\":99,\"points\":[[0,0]]}
{\"cmd\":\"session_append\",\"points\":[[0,0]]}
{\"cmd\":\"session_close\",\"sid\":1}
{\"cmd\":\"statz\"}
")
execute_process(
  COMMAND "${HULLSERVED}" --quiet --shards 1 --workers 1 --threads 2
  INPUT_FILE "${WORK_DIR}/session.ndjson"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "session smoke: expected exit 0, got ${rc}\n${err}")
endif()
# open + two appends + close answer ok; the deltas carry inserted
# vertices; the close answer carries the end-of-life summary.
string(REGEX MATCHALL "\"status\":\"ok\"" oks "${out}")
list(LENGTH oks n_ok)
if(NOT n_ok EQUAL 4)
  message(FATAL_ERROR
          "session smoke: expected 4 ok responses, got ${n_ok}:\n${out}")
endif()
if(NOT out MATCHES "\"sid\":1")
  message(FATAL_ERROR "session smoke: open did not issue sid 1:\n${out}")
endif()
if(NOT out MATCHES "\"delta\":\\[\\[")
  message(FATAL_ERROR "session smoke: no non-empty delta:\n${out}")
endif()
if(NOT out MATCHES "\"status\":\"unknown\"")
  message(FATAL_ERROR
          "session smoke: unknown-sid append not flagged:\n${out}")
endif()
string(REGEX MATCHALL "\"error\":" errs "${out}")
list(LENGTH errs n_err)
if(NOT n_err EQUAL 1)
  message(FATAL_ERROR
          "session smoke: expected 1 error line (missing sid), got "
          "${n_err}:\n${out}")
endif()
if(NOT out MATCHES "\"summary\":")
  message(FATAL_ERROR "session smoke: close summary missing:\n${out}")
endif()
# statz answers in stream order: exactly this session's counters.
if(NOT out MATCHES "\"iph_session_opened_total\":1")
  message(FATAL_ERROR "session smoke: statz opened != 1:\n${out}")
endif()
if(NOT out MATCHES "\"iph_session_closed_total\":1")
  message(FATAL_ERROR "session smoke: statz closed != 1:\n${out}")
endif()
if(NOT out MATCHES "\"iph_session_appends_total\":2")
  message(FATAL_ERROR "session smoke: statz appends != 2:\n${out}")
endif()
if(NOT out MATCHES "\"iph_session_live_sessions\":0")
  message(FATAL_ERROR "session smoke: live-sessions gauge not 0:\n${out}")
endif()
if(NOT out MATCHES "\"iph_session_aux_cells\":0")
  message(FATAL_ERROR "session smoke: aux-cells gauge not 0:\n${out}")
endif()

# --- Case 4: hullload --stream in-process with scrape reconciliation --
execute_process(
  COMMAND "${HULLLOAD}" --stream --clients 2 --requests 6
          --append-points 8 --n 64
          --expect-all-ok --json
          --scrape --scrape-out "${WORK_DIR}/stream_statz.json"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "hullload --stream: expected exit 0, got ${rc}\n${err}")
endif()
if(NOT out MATCHES "\"stream\":true")
  message(FATAL_ERROR "hullload --stream: json lacks stream:true\n${out}")
endif()
if(NOT out MATCHES "\"ok\":12")
  message(FATAL_ERROR "hullload --stream: json lacks ok:12\n${out}")
endif()
if(NOT out MATCHES "\"scrape_ok\":true")
  message(FATAL_ERROR
          "hullload --stream: json lacks scrape_ok:true\n${out}")
endif()
if(NOT err MATCHES "delta ms")
  message(FATAL_ERROR
          "hullload --stream: human summary missing delta latency\n${err}")
endif()
if(NOT EXISTS "${WORK_DIR}/stream_statz.json")
  message(FATAL_ERROR "hullload --stream: --scrape-out wrote no snapshot")
endif()
file(READ "${WORK_DIR}/stream_statz.json" statz)
if(NOT statz MATCHES "iph_session_appends_total")
  message(FATAL_ERROR
          "hullload --stream: snapshot lacks session counters:\n${statz}")
endif()

# --- Case 5: trace round trip over stdin + tracez + exporter dumps ----
# Request 1 has no trace: the server stamps (conn 1) << 32 | 1 =
# "100000001". Request 2 brings its own context, adopted VERBATIM.
# Request 3's trace is malformed: answered per-message with an error,
# stream survives. Request 4 is stamped with the NEXT server id
# ("100000002" — errors never consume a sequence number). The tracez
# command then serves the retained span trees, and --trace-out /
# --tracez-out dump the flight recorder on shutdown.
file(WRITE "${WORK_DIR}/trace.ndjson"
"{\"id\":1,\"n\":64,\"workload\":\"disk\",\"seed\":7}
{\"id\":2,\"n\":64,\"workload\":\"disk\",\"seed\":8,\"trace\":{\"id\":\"abc123\",\"span\":\"7\"}}
{\"id\":3,\"n\":64,\"workload\":\"disk\",\"seed\":9,\"trace\":{\"id\":\"zzz\"}}
{\"id\":4,\"n\":64,\"workload\":\"disk\",\"seed\":10}
{\"cmd\":\"tracez\",\"order\":\"slowest\"}
")
execute_process(
  COMMAND "${HULLSERVED}" --quiet --shards 1 --workers 1 --threads 2
          --trace-out "${WORK_DIR}/chrome_trace.json"
          --tracez-out "${WORK_DIR}/tracez.json"
  INPUT_FILE "${WORK_DIR}/trace.ndjson"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "trace smoke: expected exit 0, got ${rc}\n${err}")
endif()
if(NOT out MATCHES "\"trace\":{\"id\":\"100000001\"}")
  message(FATAL_ERROR
          "trace smoke: first server-stamped id not 100000001:\n${out}")
endif()
if(NOT out MATCHES "\"trace\":{\"id\":\"abc123\",\"span\":\"7\"}")
  message(FATAL_ERROR
          "trace smoke: client trace context not adopted verbatim:\n${out}")
endif()
if(NOT out MATCHES "must be a 1-16 digit hex string")
  message(FATAL_ERROR
          "trace smoke: malformed trace not answered per-message:\n${out}")
endif()
if(NOT out MATCHES "\"trace\":{\"id\":\"100000002\"}")
  message(FATAL_ERROR
          "trace smoke: ids not monotonic after mid-stream error:\n${out}")
endif()
# Count ok RESPONSES by their hull payload — the tracez answer repeats
# "status":"ok" inside every retained span tree, so that string
# over-counts here.
string(REGEX MATCHALL "\"hull\":" oks "${out}")
list(LENGTH oks n_ok)
if(NOT n_ok EQUAL 3)
  message(FATAL_ERROR "trace smoke: expected 3 ok responses, got ${n_ok}:\n${out}")
endif()
# tracez answers in stream order with the three completed span trees.
if(NOT out MATCHES "\"tracez\":{")
  message(FATAL_ERROR "trace smoke: tracez answer missing:\n${out}")
endif()
if(NOT out MATCHES "\"published\":3")
  message(FATAL_ERROR "trace smoke: tracez published != 3:\n${out}")
endif()
if(NOT out MATCHES "\"name\":\"queue_wait\"")
  message(FATAL_ERROR "trace smoke: span tree lacks queue_wait:\n${out}")
endif()
# Shutdown dumps: the Chrome export and the machine-readable tracez doc.
if(NOT EXISTS "${WORK_DIR}/chrome_trace.json")
  message(FATAL_ERROR "trace smoke: --trace-out wrote nothing")
endif()
file(READ "${WORK_DIR}/chrome_trace.json" chrome)
if(NOT chrome MATCHES "\"traceEvents\": ?\\[" OR
   NOT chrome MATCHES "\"ph\": ?\"X\"")
  message(FATAL_ERROR "trace smoke: Chrome trace malformed:\n${chrome}")
endif()
if(NOT EXISTS "${WORK_DIR}/tracez.json")
  message(FATAL_ERROR "trace smoke: --tracez-out wrote nothing")
endif()
file(READ "${WORK_DIR}/tracez.json" tracez)
if(NOT tracez MATCHES "\"traces\": ?\\[" OR
   NOT tracez MATCHES "\"exemplars\": ?\\[")
  message(FATAL_ERROR "trace smoke: tracez dump malformed:\n${tracez}")
endif()

# --- Case 6: tracing disabled answers tracez with an error ------------
file(WRITE "${WORK_DIR}/notrace.ndjson"
"{\"id\":1,\"n\":64,\"workload\":\"disk\",\"seed\":7}
{\"cmd\":\"tracez\"}
")
execute_process(
  COMMAND "${HULLSERVED}" --quiet --shards 1 --workers 1 --threads 2
          --obs-capacity 0
  INPUT_FILE "${WORK_DIR}/notrace.ndjson"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "notrace smoke: expected exit 0, got ${rc}\n${err}")
endif()
if(out MATCHES "\"trace\":{")
  message(FATAL_ERROR
          "notrace smoke: responses carry trace ids with obs off:\n${out}")
endif()
if(NOT out MATCHES "tracing disabled")
  message(FATAL_ERROR
          "notrace smoke: tracez should error when disabled:\n${out}")
endif()

# --- Case 7: TCP round trip: hullload --scrape --trace-slowest --------
# A backgrounded server takes a small burst over TCP; hullload then
# scrapes (reconciling the obs span identities along the serve
# counters) and fetches the slowest span trees over the wire.
set(SMOKE_PORT 19917)
execute_process(
  COMMAND sh -c "'${HULLSERVED}' --quiet --port ${SMOKE_PORT} \
                 --shards 1 --workers 1 --threads 2 \
                 </dev/null >/dev/null 2>&1 \
                 & echo $! > '${WORK_DIR}/srv.pid'"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tcp trace smoke: failed to launch server")
endif()
execute_process(COMMAND sh -c "sleep 1")
execute_process(
  COMMAND "${HULLLOAD}" --connect "127.0.0.1:${SMOKE_PORT}"
          --clients 2 --requests 10 --n 64
          --expect-all-ok --scrape --trace-slowest 3
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
execute_process(
  COMMAND sh -c "kill -INT $(cat '${WORK_DIR}/srv.pid') 2>/dev/null; true")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "tcp trace smoke: hullload expected exit 0, got ${rc}\n${err}")
endif()
# The scrape reconciled (exit 0) WITH the obs identities in play, and
# the slowest span trees printed with the fixed span names.
if(NOT err MATCHES "hullload tracez: ")
  message(FATAL_ERROR "tcp trace smoke: no tracez summary\n${err}")
endif()
if(NOT err MATCHES "3 slowest")
  message(FATAL_ERROR "tcp trace smoke: wrong slowest count\n${err}")
endif()
if(NOT err MATCHES "queue_wait" OR NOT err MATCHES "exec")
  message(FATAL_ERROR "tcp trace smoke: span tree incomplete\n${err}")
endif()

# --- Case 8: cluster — hullrouter fronting three hullserved backends --
# Three real backends on ephemeral ports, exercising the "listening
# <port>" stdout contract end to end, then the router in both modes.
function(iph_wait_listening outfile what resultvar)
  set(port "")
  foreach(try RANGE 0 100)
    if(EXISTS "${outfile}")
      file(READ "${outfile}" _out)
      if(_out MATCHES "listening ([0-9]+)")
        set(port "${CMAKE_MATCH_1}")
        break()
      endif()
    endif()
    execute_process(COMMAND sh -c "sleep 0.1")
  endforeach()
  if(port STREQUAL "")
    message(FATAL_ERROR "cluster smoke: ${what} never printed its port")
  endif()
  set(${resultvar} "${port}" PARENT_SCOPE)
endfunction()

foreach(i RANGE 0 2)
  execute_process(
    COMMAND sh -c "'${HULLSERVED}' --quiet --port 0 \
                   --shards 1 --workers 1 --threads 2 \
                   </dev/null >'${WORK_DIR}/be${i}.out' 2>/dev/null \
                   & echo $! > '${WORK_DIR}/be${i}.pid'"
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "cluster smoke: failed to launch backend ${i}")
  endif()
endforeach()
iph_wait_listening("${WORK_DIR}/be0.out" "backend 0" BE0_PORT)
iph_wait_listening("${WORK_DIR}/be1.out" "backend 1" BE1_PORT)
iph_wait_listening("${WORK_DIR}/be2.out" "backend 2" BE2_PORT)
set(ENDPOINTS
    "127.0.0.1:${BE0_PORT},127.0.0.1:${BE1_PORT},127.0.0.1:${BE2_PORT}")

# 8a. stdin mode: requests forward to the fleet, wire admin drain /
# undrain answers inline, and the trailing statz is the merged fleet
# roll-up in stream order — exactly this session's 3 forwards.
file(WRITE "${WORK_DIR}/router.ndjson"
"{\"id\":1,\"n\":64,\"workload\":\"disk\",\"seed\":7}
{\"cmd\":\"markdown\",\"shard\":1}
{\"id\":2,\"n\":64,\"workload\":\"disk\",\"seed\":8}
{\"id\":3,\"n\":64,\"workload\":\"circle\",\"seed\":9}
{\"cmd\":\"markup\",\"shard\":1}
{\"cmd\":\"statz\"}
")
execute_process(
  COMMAND "${HULLROUTER}" --quiet --endpoints "${ENDPOINTS}" --probe-ms 0
  INPUT_FILE "${WORK_DIR}/router.ndjson"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cluster smoke: router stdin expected exit 0, got "
                      "${rc}\n${err}")
endif()
string(REGEX MATCHALL "\"hull\":" hulls "${out}")
list(LENGTH hulls n_hull)
if(NOT n_hull EQUAL 3)
  message(FATAL_ERROR
          "cluster smoke: expected 3 forwarded hulls, got ${n_hull}:\n${out}")
endif()
if(NOT out MATCHES "\"up\":false" OR NOT out MATCHES "\"up\":true")
  message(FATAL_ERROR
          "cluster smoke: admin drain/undrain replies missing:\n${out}")
endif()
if(NOT out MATCHES "\"statz\":")
  message(FATAL_ERROR "cluster smoke: fleet statz answer missing:\n${out}")
endif()
# Exact roll-up: the router forwarded 3 requests and the MERGED backend
# registries agree — fleet submitted == completed == router forwards.
if(NOT out MATCHES "\"iph_router_forwards_total\":3")
  message(FATAL_ERROR "cluster smoke: router forwards != 3:\n${out}")
endif()
if(NOT out MATCHES "\"iph_serve_submitted_total\":3" OR
   NOT out MATCHES "\"iph_serve_completed_total\":3")
  message(FATAL_ERROR
          "cluster smoke: merged fleet counters not exact:\n${out}")
endif()
# Counter keys embed their label sets with escaped quotes; the dotted
# regex segments stand for {cause=\" ... \"}":
if(NOT out MATCHES "iph_router_markdowns_total.cause=..admin....:1")
  message(FATAL_ERROR "cluster smoke: admin markdown not counted:\n${out}")
endif()
if(NOT out MATCHES "iph_router_markups_total.cause=..admin....:1")
  message(FATAL_ERROR "cluster smoke: admin markup not counted:\n${out}")
endif()
if(NOT out MATCHES "\"backends\":3")
  message(FATAL_ERROR "cluster smoke: fleet summary missing:\n${out}")
endif()

# 8b. TCP: router on an ephemeral port fronting the same fleet.
execute_process(
  COMMAND sh -c "'${HULLROUTER}' --port 0 --endpoints '${ENDPOINTS}' \
                 --retries 2 --probe-ms 0 \
                 --statz-out '${WORK_DIR}/router_statz.json' \
                 --tracez-out '${WORK_DIR}/router_tracez.json' \
                 </dev/null >'${WORK_DIR}/router.out' \
                 2>'${WORK_DIR}/router.err' \
                 & echo $! > '${WORK_DIR}/router.pid'"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "cluster smoke: failed to launch router")
endif()
iph_wait_listening("${WORK_DIR}/router.out" "router" ROUTER_PORT)

# Batch burst through the router: every request ok and the router-aware
# scrape reconciles router forwards against the merged fleet exactly.
execute_process(
  COMMAND "${HULLLOAD}" --connect "127.0.0.1:${ROUTER_PORT}"
          --clients 2 --requests 10 --n 64
          --expect-all-ok --json --scrape
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "cluster smoke: batch via router expected exit 0, got ${rc}\n"
          "${out}\n${err}")
endif()
if(NOT out MATCHES "\"ok\":20" OR NOT out MATCHES "\"scrape_ok\":true")
  message(FATAL_ERROR "cluster smoke: batch summary wrong:\n${out}")
endif()
if(NOT err MATCHES "router forwards")
  message(FATAL_ERROR
          "cluster smoke: scrape not router-aware:\n${err}")
endif()

# Streaming sessions through the router: affinity pins each session,
# sids are router-minted, and the fleet scrape still reconciles the
# session identities exactly. Tail latency via two hops is not a
# protocol property — disable the p99 sanity ratio, keep exactness.
execute_process(
  COMMAND "${HULLLOAD}" --stream --connect "127.0.0.1:${ROUTER_PORT}"
          --clients 2 --requests 6 --append-points 8 --n 64
          --expect-all-ok --json --scrape --scrape-tol 0
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "cluster smoke: stream via router expected exit 0, got ${rc}\n"
          "${out}\n${err}")
endif()
if(NOT out MATCHES "\"ok\":12" OR NOT out MATCHES "\"scrape_ok\":true")
  message(FATAL_ERROR "cluster smoke: stream summary wrong:\n${out}")
endif()

# Kill backend 0 outright (no drain). The next burst must still come
# back all-ok — requests that home on the dead shard are retried on
# siblings — and the fleet scrape stays exact because the router serves
# its cached snapshot of the dead backend.
execute_process(
  COMMAND sh -c "kill -9 $(cat '${WORK_DIR}/be0.pid') 2>/dev/null; true")
execute_process(COMMAND sh -c "sleep 0.3")
execute_process(
  COMMAND "${HULLLOAD}" --connect "127.0.0.1:${ROUTER_PORT}"
          --clients 2 --requests 10 --n 64
          --expect-all-ok --json --scrape
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "cluster smoke: burst after backend kill expected exit 0, got "
          "${rc}\n${out}\n${err}")
endif()
if(NOT out MATCHES "\"ok\":20" OR NOT out MATCHES "\"scrape_ok\":true")
  message(FATAL_ERROR
          "cluster smoke: post-kill summary wrong:\n${out}")
endif()

# Direct multi-target mode: hullload fans its clients over the two
# surviving backends without the router and reconciles the summed diff.
execute_process(
  COMMAND "${HULLLOAD}"
          --endpoints "127.0.0.1:${BE1_PORT},127.0.0.1:${BE2_PORT}"
          --clients 2 --requests 6 --n 64
          --expect-all-ok --json --scrape
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "cluster smoke: --endpoints run expected exit 0, got ${rc}\n"
          "${out}\n${err}")
endif()
if(NOT out MATCHES "\"ok\":12" OR NOT out MATCHES "\"scrape_ok\":true")
  message(FATAL_ERROR
          "cluster smoke: --endpoints summary wrong:\n${out}")
endif()

# Graceful router shutdown dumps statz/tracez; the io retries and the
# io markdown from the killed backend must be on the counters.
execute_process(
  COMMAND sh -c "kill -INT $(cat '${WORK_DIR}/router.pid') 2>/dev/null; true")
# The router writes statz first, tracez second — wait for both.
set(router_statz "")
set(router_tracez "")
foreach(try RANGE 0 100)
  if(EXISTS "${WORK_DIR}/router_statz.json" AND
     EXISTS "${WORK_DIR}/router_tracez.json")
    file(READ "${WORK_DIR}/router_statz.json" router_statz)
    file(READ "${WORK_DIR}/router_tracez.json" router_tracez)
    if(router_statz MATCHES "iph_router_forwards_total" AND
       router_tracez MATCHES "tracez")
      break()
    endif()
  endif()
  execute_process(COMMAND sh -c "sleep 0.1")
endforeach()
if(NOT router_statz MATCHES "iph_router_forwards_total")
  message(FATAL_ERROR
          "cluster smoke: router --statz-out dump missing or empty")
endif()
if(NOT router_statz MATCHES "iph_router_retries_total.reason=..io....: ?[1-9]")
  message(FATAL_ERROR
          "cluster smoke: io retries not counted:\n${router_statz}")
endif()
if(NOT router_statz MATCHES
   "iph_router_markdowns_total.cause=..io....: ?[1-9]")
  message(FATAL_ERROR
          "cluster smoke: io markdown not counted:\n${router_statz}")
endif()
if(NOT router_tracez MATCHES "\"traces\": ?\\[")
  message(FATAL_ERROR
          "cluster smoke: router tracez dump malformed:\n${router_tracez}")
endif()
foreach(i RANGE 0 2)
  execute_process(
    COMMAND sh -c "kill -INT $(cat '${WORK_DIR}/be${i}.pid') 2>/dev/null; true")
endforeach()

message(STATUS "serve tools smoke ok")
