file(REMOVE_RECURSE
  "CMakeFiles/seq_hull2d_test.dir/seq_hull2d_test.cpp.o"
  "CMakeFiles/seq_hull2d_test.dir/seq_hull2d_test.cpp.o.d"
  "seq_hull2d_test"
  "seq_hull2d_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_hull2d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
