// A pool of pre-warmed pram::Machine shards.
//
// Constructing a Machine spawns threads-1 pool threads; destroying it
// joins them. Per-request that spin-up dominates small hull queries, so
// the service constructs its shards ONCE here and workers lease them.
// A Lease is exclusive RAII access to one shard: while held, the holder
// is the machine's only driver (steps, reset, observer callbacks), so
// everything downstream — including an attached trace::Recorder — needs
// no locking of its own. Lease hand-off goes through the pool mutex,
// which establishes the happens-before edge between consecutive
// holders of the same shard.
//
// acquire() blocks until a shard frees; try_acquire() reports
// exhaustion instead (the serve stress test drives both).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "pram/machine.h"
#include "stats/stats.h"

namespace iph::serve {

class MachinePool {
 public:
  /// `shards` pre-warmed machines of `threads_per_shard` threads each
  /// (0 = support::env_threads()), seeded with `seed` — leaseholders
  /// reseed per program via Machine::reset anyway.
  MachinePool(std::size_t shards, unsigned threads_per_shard,
              std::uint64_t seed);

  MachinePool(const MachinePool&) = delete;
  MachinePool& operator=(const MachinePool&) = delete;

  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& o) noexcept : pool_(o.pool_), index_(o.index_) {
      o.pool_ = nullptr;
    }
    Lease& operator=(Lease&& o) noexcept {
      if (this != &o) {
        release();
        pool_ = o.pool_;
        index_ = o.index_;
        o.pool_ = nullptr;
      }
      return *this;
    }
    ~Lease() { release(); }

    explicit operator bool() const noexcept { return pool_ != nullptr; }
    pram::Machine& machine() const { return *pool_->machines_[index_]; }
    std::size_t shard() const noexcept { return index_; }
    void release();

   private:
    friend class MachinePool;
    Lease(MachinePool* pool, std::size_t index)
        : pool_(pool), index_(index) {}
    MachinePool* pool_ = nullptr;
    std::size_t index_ = 0;
  };

  /// Blocks until a shard frees.
  Lease acquire();
  /// Empty optional when every shard is leased (exhaustion).
  std::optional<Lease> try_acquire();

  std::size_t size() const noexcept { return machines_.size(); }
  std::size_t available() const;

  /// Host-side access to shard `i`'s machine for pre-worker setup
  /// (attaching observers, tuning the grain). Not synchronized against
  /// leases — call before handing the pool to workers.
  pram::Machine& machine(std::size_t i) { return *machines_[i]; }

  /// Optional occupancy instruments (like the queue's depth gauge:
  /// bind before handing the pool to workers; instruments must outlive
  /// the pool). `leased` tracks the number of shards currently leased;
  /// `busy_us[i]` accumulates shard i's lease-held wall time in
  /// microseconds, charged at release. `busy_us` may be shorter than
  /// size() (extra shards just go unmetered) or empty.
  void bind_stats(stats::Gauge* leased,
                  std::vector<stats::Counter*> busy_us);

 private:
  friend class Lease;
  void release_shard(std::size_t index);

  std::vector<std::unique_ptr<pram::Machine>> machines_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<bool> leased_;
  std::vector<std::chrono::steady_clock::time_point> lease_t0_;
  std::size_t leased_count_ = 0;
  stats::Gauge* leased_gauge_ = nullptr;
  std::vector<stats::Counter*> busy_us_;
};

}  // namespace iph::serve
