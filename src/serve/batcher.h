// The adaptive batcher: policy + batched hull execution.
//
// Small hull queries are dominated by per-run fixed costs, so the
// service coalesces the small requests that arrive within a window into
// ONE leased execution run: their point sets are packed into a single
// contiguous arena (request r owns the disjoint cell range
// [offset_r, offset_r + n_r)), the batch's backend executes the
// requests back-to-back — each request under its derived seed so every
// request replays exactly its solo execution — and the per-request
// hulls are split back out of the arena's index space. Requests at or
// above BatchPolicy::small_threshold points bypass the batcher and are
// routed to the dedicated large shard (service.h).
//
// Why back-to-back inside one lease rather than one merged simulation:
// the service promises batched results bit-identical to solo runs
// (request.h determinism contract), and a merged simulation would key
// every random draw on the batch composition. The throughput win of
// batching here is amortizing the machine lease, the thread-pool warmth
// and the arena over many tiny queries — measured in bench/e14.
//
// Execution is routed through the iph::exec::Backend seam: each request
// names a BackendKind (kDefault defers to the service default) and the
// batch dispatches per request to the matching engine in the BackendSet.
// The PRAM simulator remains the metered oracle; the native engine is
// the fast path and reports zero PRAM counters (exec/backend.h).
#pragma once

#include <chrono>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "exec/backend.h"
#include "pram/machine.h"
#include "pram/metrics.h"
#include "serve/request.h"
#include "trace/recorder.h"

namespace iph::serve {

struct BatchPolicy {
  /// Requests with >= this many points skip batching (large path).
  std::size_t small_threshold = 2048;
  /// Budget per batch: requests and total arena points.
  std::size_t max_batch_requests = 64;
  std::size_t max_batch_points = std::size_t{1} << 16;
  /// How long a dequeued batch waits for stragglers.
  std::chrono::microseconds window{200};
  /// Serial-dispatch grain applied to leased shards (0 = leave the
  /// machine's IPH_PRAM_GRAIN-derived default).
  std::uint64_t grain = 0;
};

/// The engines one batch may dispatch to, plus the service-level
/// default that resolves a request's kDefault. Non-owning: the service
/// provides a leased PRAM adapter per batch and one long-lived native
/// engine. `native` may be null (PRAM-only deployments); a kNative
/// request then falls back to the PRAM engine rather than failing —
/// the resolved kind in RequestMetrics::backend records what actually
/// ran.
struct BackendSet {
  exec::Backend* pram = nullptr;    ///< Required.
  exec::Backend* native = nullptr;  ///< Optional fast path.
  exec::BackendKind service_default = exec::BackendKind::kPram;
  /// When set, execute_batch records which [begin, end) range of this
  /// recorder's event log each PRAM-resolved request produced
  /// (BatchExecInfo::pram_events) — the span <-> phase-tree linkage the
  /// flight recorder turns into child spans. Must be the recorder
  /// observing the leased machine behind `pram`.
  const trace::Recorder* recorder = nullptr;

  /// Resolve a request's requested kind to the engine that will run it.
  exec::Backend* resolve(exec::BackendKind want) const noexcept {
    exec::BackendKind k =
        want == exec::BackendKind::kDefault ? service_default : want;
    if (k == exec::BackendKind::kNative && native != nullptr) return native;
    return pram;
  }
};

/// Host-side accounting of one execute_batch call, for the caller's
/// latency/stats bookkeeping (none of it affects results).
struct BatchExecInfo {
  /// When request i's hull finished computing — parallel to the
  /// returned responses. The service derives each request's OWN e2e
  /// from this (batch-mates that ran earlier in the arena complete
  /// earlier); before this existed every batch-mate was stamped with
  /// the batch tail's end time.
  std::vector<Clock::time_point> completed_at;
  /// When request i's execution started on the backend — parallel to
  /// completed_at. [started_at[i], completed_at[i]) is request i's own
  /// exec span; the gap back to started_at[0] is its wait for earlier
  /// batch-mates in the shared arena.
  std::vector<Clock::time_point> started_at;
  /// Per-request [begin, end) index range into BackendSet::recorder's
  /// event log (all zeros when no recorder was supplied, and empty
  /// ranges for native-resolved requests, which bypass the simulator).
  std::vector<std::pair<std::size_t, std::size_t>> pram_events;
  /// Per-request pram::Metrics counters summed over the batch
  /// (Metrics::add_counters) — the machine itself is reset per request,
  /// so its own metrics afterwards are only the last request's. Native
  /// runs contribute zeros, keeping the simulator's exact reconciliation
  /// intact.
  pram::Metrics pram_total;
  /// How many of the batch's requests each engine served (sums to the
  /// batch size) — feeds the backend-labeled serve counters.
  std::uint64_t pram_requests = 0;
  std::uint64_t native_requests = 0;
};

/// Execute `requests` as one batch through `backends` (see file
/// comment) and return one Response per request, in order. Fills the
/// deterministic RequestMetrics fields plus exec_ms, batch_size and the
/// resolved backend; queue/e2e timing and shard id belong to the caller
/// (per-request completion stamps for that are in `info` when
/// non-null).
std::vector<Response> execute_batch(const BackendSet& backends,
                                    std::span<const Request> requests,
                                    std::uint64_t master_seed,
                                    BatchExecInfo* info = nullptr);

/// Legacy PRAM-only entry point: wraps `m` in a stack PramBackend and
/// runs the batch with no native engine. Kept because the determinism
/// and serving tests drive batches against a bare machine.
std::vector<Response> execute_batch(pram::Machine& m,
                                    std::span<const Request> requests,
                                    std::uint64_t master_seed,
                                    BatchExecInfo* info = nullptr);

}  // namespace iph::serve
