# Empty compiler generated dependencies file for collision3d.
# This may be replaced when dependencies are built.
