#include "primitives/inplace_compaction.h"

#include <algorithm>

#include "pram/allocation.h"
#include "pram/cells.h"
#include "pram/shadow.h"
#include "primitives/ragde.h"
#include "support/check.h"
#include "support/mathutil.h"

namespace iph::primitives {

InplaceCompactionResult inplace_compact(pram::Machine& m,
                                        std::span<const std::uint8_t> flags,
                                        std::uint64_t bound, double delta) {
  InplaceCompactionResult res;
  const std::uint64_t n = flags.size();
  if (n == 0) {
    res.ok = true;
    return res;
  }
  IPH_CHECK(delta > 0.0 && delta < 1.0);
  pram::Machine::Phase phase(m, "prim/inplace-compact");
  if (bound < 2) bound = 2;
  constexpr std::uint32_t kEmpty = kRagdeEmpty;

  // Group geometry: ~bound^4 * S level-0 groups (the lemma's m^(4e+d)
  // with m^e = bound), refined by S = m^delta per iteration.
  const std::uint64_t S =
      std::max<std::uint64_t>(2, support::ipow_frac(n, delta));
  const std::uint64_t g0 = std::min(
      n, std::max<std::uint64_t>(1, support::ipow_sat(bound, 4) / 2) * S);

  // Per-element state (owned writes only):
  //   len     — current group length (uniform per level),
  //   within  — element's offset inside its current group,
  //   pslot   — compact slot of the element's group (kEmpty before
  //             level 0 runs, where the group id itself addresses the
  //             bit array).
  std::uint64_t len = (n + g0 - 1) / g0;
  std::uint64_t domain = (n + len - 1) / len;  // bit-array size this level
  std::vector<std::uint64_t> within(n);
  std::vector<std::uint32_t> pslot(n, kEmpty);
  // within/pslot/cell_of are per-element standing-by registers: input
  // footprint, not the workspace Lemma 3.2 bounds.
  pram::SpaceLease regs(m, pram::SpaceKind::kInput, 3 * n);
  bool level0 = true;

  for (int iter = 0; iter < 64; ++iter) {
    res.iterations = iter + 1;
    pram::FlagArray bits(domain);
    std::vector<std::uint32_t> cell_of(n, kEmpty);
    // The level's auxiliary workspace: the domain-sized bit array, its
    // byte view for Ragde, and the cell->slot reverse map — 3 * domain
    // cells, domain <= ~bound^4 * S = m^(4e+d).
    pram::SpaceLease level_aux(m, pram::SpaceKind::kAux, 3 * domain);
    const std::uint64_t cur_len = len;
    m.step(n, [&](std::uint64_t pid) {
      if (!flags[pid]) return;
      std::uint32_t cell;
      if (level0) {
        cell = static_cast<std::uint32_t>(pid / cur_len);
        pram::tracked_write(pid, within[pid], pid % cur_len);
      } else {
        if (pslot[pid] == kEmpty) return;
        cell = static_cast<std::uint32_t>(pslot[pid] * S +
                                          within[pid] / cur_len);
        pram::tracked_write(pid, within[pid], within[pid] % cur_len);
      }
      pram::tracked_write(pid, cell_of[pid], cell);
      bits.set(cell);
    });
    // Ragde wants a byte view; one owned-write step converts.
    std::vector<std::uint8_t> bytes(domain);
    m.step(domain, [&](std::uint64_t c) {
      pram::tracked_write(c, bytes[c], bits.get(c) ? 1 : 0);
    });
    const RagdeResult rr = ragde_compact(m, bytes, bound);
    res.used_fallback |= rr.used_fallback;
    if (!rr.ok) {
      res.ok = false;
      return res;
    }
    // Reverse map cell -> slot, then update each element's group slot.
    std::vector<std::uint32_t> slot_of_cell(domain, kEmpty);
    m.step(rr.slots.size(), [&](std::uint64_t s) {
      // Unique writer per cell id (the checker validates that ragde's
      // slot array never repeats a cell).
      if (rr.slots[s] != kRagdeEmpty) {
        pram::tracked_write(s, slot_of_cell[rr.slots[s]],
                            static_cast<std::uint32_t>(s));
      }
    });
    m.step(n, [&](std::uint64_t pid) {
      pram::tracked_write(
          pid, pslot[pid],
          cell_of[pid] == kEmpty ? kEmpty : slot_of_cell[cell_of[pid]]);
    });
    level0 = false;
    if (cur_len <= 1) {
      // Singleton groups: pslot is the final placement.
      res.slots.assign(rr.slots.size(), kEmpty);
      pram::SpaceLease out(m, pram::SpaceKind::kAux, res.slots.size());
      m.step(n, [&](std::uint64_t pid) {
        // pslot uniqueness IS the compaction invariant; the checker
        // turns any violation into a step-race diagnostic.
        if (flags[pid] && pslot[pid] != kEmpty) {
          pram::tracked_write(pid, res.slots[pslot[pid]],
                              static_cast<std::uint32_t>(pid));
        }
      });
      res.ok = true;
      return res;
    }
    len = (cur_len + S - 1) / S;
    domain = rr.slots.size() * S;
  }
  IPH_CHECK(false && "inplace_compact failed to converge");
  return res;
}

}  // namespace iph::primitives
