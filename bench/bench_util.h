// Shared helpers for the experiment benches (e01..e12). Each bench
// prints, via google-benchmark counters, the measured PRAM quantities
// next to the paper's predicted shape so EXPERIMENTS.md can record
// paper-vs-measured per claim.
#pragma once

#include <benchmark/benchmark.h>

#include <cmath>

#include "pram/metrics.h"

namespace iph::bench {

inline double log2d(double x) { return x > 1 ? std::log2(x) : 1.0; }

/// Attach the core PRAM metrics to a benchmark state.
inline void report_metrics(benchmark::State& state,
                           const pram::Metrics& m) {
  state.counters["steps"] = static_cast<double>(m.steps);
  state.counters["work"] = static_cast<double>(m.work);
  state.counters["max_procs"] = static_cast<double>(m.max_active);
}

}  // namespace iph::bench
