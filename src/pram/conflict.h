// Combining-write conflict accounting for the CRCW PRAM simulator.
//
// DESIGN.md §4 promises a `cw_conflicts` metric: how many same-step
// writes to one combining cell arrived *after* the first one. The count
// is a property of the PRAM program, not of the host schedule — for a
// cell written by w processors in one step it is exactly w-1 — so it is
// bit-reproducible across hardware thread counts and is safe to check
// against committed baselines.
//
// Mechanism (same discipline as the shadow.h step-race checker): while a
// counting Machine is mid-step it publishes a ConflictSink holding the
// current step stamp and a relaxed counter. Every combining-cell write
// calls conflict_probe() on the cell's private stamp word: exchanging in
// the step stamp and seeing it already there means another writer beat
// us this step, so the sink counter bumps. When no sink is published
// (counting off, the default) a probe is one relaxed load and an
// untaken branch — the same cost model as shadow_sanctioned_write — and
// the step/work metrics are identical either way.
#pragma once

#include <atomic>
#include <cstdint>

namespace iph::pram {

/// Published by a counting Machine for the duration of one step.
struct ConflictSink {
  /// step_index + 1 of the step being executed (never 0, so a
  /// freshly-zeroed cell stamp can never alias it).
  std::uint64_t stamp = 0;
  std::atomic<std::uint64_t> count{0};
};

namespace conflict_detail {
/// Sink the CURRENT THREAD is counting into, or null. Thread-local, not
/// process-global, because machines step concurrently (serve's
/// MachinePool runs one per shard): the host thread binds its machine's
/// sink around each counted step, and a machine's pool workers bind it
/// at job pickup under the pool mutex (machine.cpp worker_loop), so no
/// thread can ever observe another machine's sink.
inline thread_local ConflictSink* t_sink = nullptr;
}  // namespace conflict_detail

/// Called by every combining-cell write with the cell's stamp word.
/// No-op unless the current thread is executing a counted step.
inline void conflict_probe(std::atomic<std::uint64_t>& cell_stamp) noexcept {
  ConflictSink* s = conflict_detail::t_sink;
  if (s == nullptr) return;
  if (cell_stamp.exchange(s->stamp, std::memory_order_relaxed) == s->stamp) {
    s->count.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace iph::pram
