# Empty dependencies file for gis_footprint.
# This may be replaced when dependencies are built.
