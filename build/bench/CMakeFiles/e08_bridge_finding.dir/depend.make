# Empty dependencies file for e08_bridge_finding.
# This may be replaced when dependencies are built.
