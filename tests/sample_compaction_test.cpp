// Tests for the paper's Section 3.1-3.2 primitives: in-place random
// sample / random vote (Lemma 3.1, Corollary 3.1) and in-place
// approximate compaction (Lemma 3.2).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "pram/machine.h"
#include "primitives/inplace_compaction.h"
#include "primitives/ragde.h"
#include "primitives/random_sample.h"

namespace iph::primitives {
namespace {

TEST(RandomSample, SizeWithinLemmaBounds) {
  pram::Machine m(1, 1234);
  const std::uint64_t n = 20000;
  int ok_count = 0;
  for (int trial = 0; trial < 20; ++trial) {
    const auto s = random_sample(
        m, n, [](std::uint64_t) { return true; }, n, 64);
    EXPECT_LE(s.members.size(), 4 * 64u);
    ok_count += s.ok;
  }
  // Lemma 3.1: failure prob <= 2(e/2)^-64 ~ 0; all trials must succeed.
  EXPECT_EQ(ok_count, 20);
}

TEST(RandomSample, OnlyActiveElementsSampled) {
  pram::Machine m(1, 5);
  const std::uint64_t n = 10000;
  const auto s = random_sample(
      m, n, [](std::uint64_t i) { return i % 3 == 1; }, n / 3, 32);
  ASSERT_TRUE(s.ok);
  for (auto idx : s.members) EXPECT_EQ(idx % 3, 1u);
}

TEST(RandomSample, NoDuplicateMembers) {
  pram::Machine m(1, 6);
  const auto s = random_sample(
      m, 5000, [](std::uint64_t) { return true; }, 5000, 48);
  std::set<std::uint32_t> uniq(s.members.begin(), s.members.end());
  EXPECT_EQ(uniq.size(), s.members.size());
}

TEST(RandomSample, ConstantSteps) {
  pram::Machine m(1, 7);
  const auto before = m.metrics().steps;
  random_sample(m, 1 << 15, [](std::uint64_t) { return true; },
                1 << 15, 64);
  EXPECT_LE(m.metrics().steps - before, 3u * kSampleRounds + 3u);
}

TEST(RandomSample, DeterministicGivenSeed) {
  auto run = [&](unsigned threads) {
    pram::Machine m(threads, 4242);
    return random_sample(m, 8192, [](std::uint64_t) { return true; },
                         8192, 32)
        .members;
  };
  EXPECT_EQ(run(1), run(4));
}

TEST(RandomVote, UniformOverActiveSet) {
  // Chi-square over which active element wins the vote.
  const std::uint64_t n = 64;  // all active
  constexpr int kTrials = 6400;
  std::vector<int> wins(n, 0);
  for (int t = 0; t < kTrials; ++t) {
    pram::Machine m(1, 1000 + t);
    const auto v = random_vote(m, n, [](std::uint64_t) { return true; },
                               n, 16);
    ASSERT_NE(v, kNoVote);
    ++wins[v];
  }
  double chi2 = 0;
  const double expect = static_cast<double>(kTrials) / n;
  for (int w : wins) chi2 += (w - expect) * (w - expect) / expect;
  // 63 dof, 99.99th percentile ~ 117.
  EXPECT_LT(chi2, 117.0);
}

TEST(RandomVote, RespectsActivePredicate) {
  for (int t = 0; t < 50; ++t) {
    pram::Machine m(1, 77 + t);
    const auto v = random_vote(
        m, 1000, [](std::uint64_t i) { return i >= 900; }, 100, 16);
    ASSERT_NE(v, kNoVote);
    EXPECT_GE(v, 900u);
  }
}

TEST(InplaceCompaction, PlacesAllFlagged) {
  pram::Machine m(2);
  std::vector<std::uint8_t> flags(12345, 0);
  std::vector<std::uint32_t> expect;
  for (std::uint32_t i : {0u, 1u, 777u, 5000u, 12344u}) {
    flags[i] = 1;
    expect.push_back(i);
  }
  const auto r = inplace_compact(m, flags, 8);
  ASSERT_TRUE(r.ok);
  std::vector<std::uint32_t> got;
  for (auto v : r.slots) {
    if (v != kRagdeEmpty) got.push_back(v);
  }
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expect);
  EXPECT_LE(r.slots.size(), 2u * 8 * 8 + 32);
}

TEST(InplaceCompaction, EmptyAndFullEdges) {
  pram::Machine m(1);
  std::vector<std::uint8_t> flags(100, 0);
  EXPECT_TRUE(inplace_compact(m, flags, 4).ok);
  std::vector<std::uint8_t> none;
  EXPECT_TRUE(inplace_compact(m, none, 4).ok);
}

TEST(InplaceCompaction, ConstantIterations) {
  pram::Machine m(1);
  std::vector<std::uint8_t> flags(1 << 16, 0);
  for (int i = 0; i < 10; ++i) flags[i * 5003] = 1;
  const auto r = inplace_compact(m, flags, 16);
  ASSERT_TRUE(r.ok);
  // 1/delta iterations with delta = 0.25: at most ~5 plus slack.
  EXPECT_LE(r.iterations, 8);
}

TEST(InplaceCompaction, DetectsOverfull) {
  pram::Machine m(1);
  std::vector<std::uint8_t> flags(2048, 1);
  const auto r = inplace_compact(m, flags, 2);
  EXPECT_FALSE(r.ok);
}

TEST(InplaceCompaction, DeterministicAcrossThreads) {
  std::vector<std::uint8_t> flags(9999, 0);
  for (int i = 0; i < 14; ++i) flags[i * 713 + 1] = 1;
  auto run = [&](unsigned threads) {
    pram::Machine m(threads, 3);
    return inplace_compact(m, flags, 16).slots;
  };
  EXPECT_EQ(run(1), run(4));
}

}  // namespace
}  // namespace iph::primitives
