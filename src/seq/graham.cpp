#include "seq/graham.h"

#include <algorithm>
#include <numeric>

#include "geom/predicates.h"

namespace iph::seq {

using geom::Index;
using geom::Point2;

std::vector<Index> graham_hull(std::span<const Point2> pts) {
  const std::size_t n = pts.size();
  std::vector<Index> order(n);
  std::iota(order.begin(), order.end(), Index{0});
  std::sort(order.begin(), order.end(), [&](Index a, Index b) {
    return geom::lex_less(pts[a], pts[b]);
  });
  order.erase(std::unique(order.begin(), order.end(),
                          [&](Index a, Index b) { return pts[a] == pts[b]; }),
              order.end());
  const std::size_t m = order.size();
  if (m <= 2) return order;

  // Andrew's variant of Graham scan: lower chain then upper chain.
  std::vector<Index> h(2 * m);
  std::size_t k = 0;
  for (std::size_t i = 0; i < m; ++i) {  // lower hull (CCW start)
    while (k >= 2 &&
           geom::orient2d(pts[h[k - 2]], pts[h[k - 1]], pts[order[i]]) <= 0) {
      --k;
    }
    h[k++] = order[i];
  }
  const std::size_t lower_end = k + 1;
  for (std::size_t i = m - 1; i-- > 0;) {  // upper hull
    while (k >= lower_end &&
           geom::orient2d(pts[h[k - 2]], pts[h[k - 1]], pts[order[i]]) <= 0) {
      --k;
    }
    h[k++] = order[i];
  }
  h.resize(k - 1);  // last point equals the first
  return h;
}

}  // namespace iph::seq
