file(REMOVE_RECURSE
  "CMakeFiles/iph_core.dir/api.cpp.o"
  "CMakeFiles/iph_core.dir/api.cpp.o.d"
  "CMakeFiles/iph_core.dir/fallback2d.cpp.o"
  "CMakeFiles/iph_core.dir/fallback2d.cpp.o.d"
  "CMakeFiles/iph_core.dir/hull_assemble.cpp.o"
  "CMakeFiles/iph_core.dir/hull_assemble.cpp.o.d"
  "CMakeFiles/iph_core.dir/presorted_constant.cpp.o"
  "CMakeFiles/iph_core.dir/presorted_constant.cpp.o.d"
  "CMakeFiles/iph_core.dir/presorted_logstar.cpp.o"
  "CMakeFiles/iph_core.dir/presorted_logstar.cpp.o.d"
  "CMakeFiles/iph_core.dir/unsorted2d.cpp.o"
  "CMakeFiles/iph_core.dir/unsorted2d.cpp.o.d"
  "CMakeFiles/iph_core.dir/unsorted3d.cpp.o"
  "CMakeFiles/iph_core.dir/unsorted3d.cpp.o.d"
  "libiph_core.a"
  "libiph_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iph_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
