#include "support/env.h"

#include <cstdlib>
#include <cstring>
#include <thread>

namespace iph::support {

bool env_flag(const char* name, bool fallback) noexcept {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  return std::strcmp(s, "1") == 0 || std::strcmp(s, "true") == 0 ||
         std::strcmp(s, "on") == 0 || std::strcmp(s, "yes") == 0;
}

unsigned env_threads() noexcept {
  if (const char* s = std::getenv("IPH_THREADS")) {
    const long v = std::strtol(s, nullptr, 10);
    if (v >= 1 && v <= 4096) return static_cast<unsigned>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::uint64_t env_seed() noexcept {
  if (const char* s = std::getenv("IPH_SEED")) {
    return std::strtoull(s, nullptr, 0);
  }
  return 0x19910722ULL;  // SPAA'91
}

std::uint64_t env_pram_grain() noexcept {
  const std::uint64_t g = env_u64("IPH_PRAM_GRAIN", 2048);
  return g < 1 ? 1 : g;
}

std::string env_string(const char* name, std::string fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  return s;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) noexcept {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const std::uint64_t v = std::strtoull(s, &end, 0);
  return end == s ? fallback : v;
}

double env_double(const char* name, double fallback) noexcept {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') return fallback;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  return end == s ? fallback : v;
}

}  // namespace iph::support
