# Empty compiler generated dependencies file for e01_presorted_constant.
# This may be replaced when dependencies are built.
