// E1 — Lemma 2.5: presorted 2-d hull in O(1) PRAM time with O(n log n)
// processors, failure probability <= 2^{-n^(1/16)}.
//
// Reproduction target: `steps` stays flat as n grows 16x; work/(n log n)
// stays bounded; observed sweep activity (the failure-sweeping safety
// net) stays near zero at the default alpha.
#include <benchmark/benchmark.h>

#include "report.h"
#include "core/presorted_constant.h"
#include "geom/workloads.h"
#include "pram/machine.h"

namespace {

void e01(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto family = static_cast<iph::geom::Family2D>(state.range(1));
  auto pts = iph::geom::make2d(family, n, 42);
  iph::geom::sort_lex(pts);
  iph::pram::Metrics last;
  iph::core::PresortedConstantStats stats;
  for (auto _ : state) {
    iph::pram::Machine m(1, 7);
    stats = {};
    benchmark::DoNotOptimize(
        iph::core::presorted_constant_hull(m, pts, &stats));
    last = m.metrics();
  }
  iph::bench::report_metrics(state, last);
  state.counters["work/nlogn"] =
      static_cast<double>(last.work) /
      (static_cast<double>(n) * iph::bench::log2d(static_cast<double>(n)));
  state.counters["swept"] = static_cast<double>(stats.failures_swept);
  state.SetLabel(iph::geom::family_name(family));
}

}  // namespace

BENCHMARK(e01)
    ->ArgsProduct({iph::bench::n_sweep({1 << 12, 1 << 14, 1 << 16}),
                   {static_cast<long>(iph::geom::Family2D::kDisk),
                    static_cast<long>(iph::geom::Family2D::kSquare),
                    static_cast<long>(iph::geom::Family2D::kCircle)}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Lemma 2.5: constant time, O(n log n) work, failures unobservable at
// the default alpha. Tolerances: measured steps drift <= 1.35x over the
// 16x sweep (block-size rounding), work/(n log n) sits in a ~2.3x
// constant band per family (EXPERIMENTS.md E1) — both get ~2x headroom.
IPH_BENCH_MAIN("e01",
               {"steps-constant", "steps", "flat", 2.5},
               {"work-nlogn", "work", "n_log_n", 4.0},
               {"sweeps-rare", "swept", "below_const", 0.5})
