#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "support/mathutil.h"
#include "support/rng.h"

namespace iph::support {
namespace {

TEST(MathUtil, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(1023), 9u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(floor_log2(std::uint64_t{1} << 63), 63u);
}

TEST(MathUtil, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2((std::uint64_t{1} << 40) + 1), 41u);
}

TEST(MathUtil, CeilPow2) {
  EXPECT_EQ(ceil_pow2(1), 1u);
  EXPECT_EQ(ceil_pow2(2), 2u);
  EXPECT_EQ(ceil_pow2(3), 4u);
  EXPECT_EQ(ceil_pow2(1000), 1024u);
}

TEST(MathUtil, LogStar) {
  EXPECT_EQ(log_star(1), 0u);
  EXPECT_EQ(log_star(2), 1u);
  EXPECT_EQ(log_star(4), 2u);
  EXPECT_EQ(log_star(16), 3u);
  EXPECT_EQ(log_star(65536), 4u);
  EXPECT_EQ(log_star(std::uint64_t{1} << 20), 5u);  // 2^20 > 2^16
  EXPECT_EQ(log_star(~std::uint64_t{0}), 5u);       // < 2^65536
}

TEST(MathUtil, IPowSat) {
  EXPECT_EQ(ipow_sat(2, 10), 1024u);
  EXPECT_EQ(ipow_sat(10, 0), 1u);
  EXPECT_EQ(ipow_sat(0, 5), 0u);
  EXPECT_EQ(ipow_sat(2, 70), ~std::uint64_t{0});  // saturates
}

TEST(MathUtil, IPowFrac) {
  EXPECT_EQ(ipow_frac(16, 0.5), 4u);
  EXPECT_EQ(ipow_frac(27, 1.0 / 3.0), 3u);
  EXPECT_EQ(ipow_frac(0, 0.5), 0u);
  EXPECT_GE(ipow_frac(5, 0.0001), 1u);  // never returns 0 for x>0
}

TEST(Chernoff, UpperTailMatchesClosedForm) {
  // mu=10, delta=1: bound = (e/4)^10.
  const double b = chernoff_upper(10.0, 1.0);
  EXPECT_NEAR(b, std::pow(std::exp(1.0) / 4.0, 10.0), 1e-12);
}

TEST(Chernoff, LowerTailAtDeltaOne) {
  EXPECT_NEAR(chernoff_lower(10.0, 1.0), std::exp(-10.0), 1e-12);
}

TEST(Chernoff, BoundsAreProbabilities) {
  for (double mu : {0.5, 1.0, 10.0, 1000.0}) {
    for (double d : {0.01, 0.1, 0.5, 1.0, 2.0}) {
      // Extreme (mu, delta) pairs may underflow to exactly 0, which is a
      // valid (if conservative) probability.
      EXPECT_GE(chernoff_upper(mu, d), 0.0);
      EXPECT_LE(chernoff_upper(mu, d), 1.0);
      if (d <= 1.0) {
        EXPECT_GE(chernoff_lower(mu, d), 0.0);
        EXPECT_LE(chernoff_lower(mu, d), 1.0);
      }
    }
  }
}

TEST(Chernoff, TightensWithMu) {
  EXPECT_LT(chernoff_upper(100.0, 0.5), chernoff_upper(10.0, 0.5));
  EXPECT_LT(chernoff_lower(100.0, 0.5), chernoff_lower(10.0, 0.5));
}

TEST(Rng, DeterministicGivenTriple) {
  Rng a(42, 7, 0), b(42, 7, 0);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, StreamsDiffer) {
  Rng a(42, 7), b(42, 8);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, NextBelowInRange) {
  Rng r(1, 2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
  Rng r2(1, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r2.next_below(1), 0u);
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng r(99, 5);
  constexpr int kBuckets = 16;
  constexpr int kDraws = 160000;
  int count[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++count[r.next_below(kBuckets)];
  // Chi-square with 15 dof: 99.99th percentile ~ 44.3.
  double chi2 = 0;
  const double expect = static_cast<double>(kDraws) / kBuckets;
  for (int c : count) chi2 += (c - expect) * (c - expect) / expect;
  EXPECT_LT(chi2, 44.3);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(3, 4);
  double mn = 1.0, mx = 0.0, sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double d = r.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    mn = std::min(mn, d);
    mx = std::max(mx, d);
    sum += d;
  }
  EXPECT_LT(mn, 0.01);
  EXPECT_GT(mx, 0.99);
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r(5, 6);
  for (int i = 0; i < 32; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
    EXPECT_FALSE(r.bernoulli(-1.0));
    EXPECT_TRUE(r.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng r(5, 7);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += r.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.3, 0.01);
}

TEST(Mix3, AvalancheOnCounter) {
  // Flipping one counter bit should flip ~half the output bits.
  int total = 0;
  for (std::uint64_t c = 0; c < 64; ++c) {
    const std::uint64_t d = mix3(1, 2, c) ^ mix3(1, 2, c ^ 1);
    total += __builtin_popcountll(d);
  }
  EXPECT_GT(total, 64 * 20);
  EXPECT_LT(total, 64 * 44);
}

}  // namespace
}  // namespace iph::support
