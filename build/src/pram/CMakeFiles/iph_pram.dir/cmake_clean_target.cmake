file(REMOVE_RECURSE
  "libiph_pram.a"
)
