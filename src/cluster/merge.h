// Fleet roll-up of stats registry snapshots.
//
// merge_snapshots sums per-backend RegistrySnapshots (each typically
// parsed from a backend's statz answer) into one fleet view:
//   counters     add — the fleet served the sum of what its shards
//                served, so the exact-reconciliation identities from
//                PR 5 (submitted == terminal states, backend pram +
//                native == completed, obs span/trace identities) hold
//                on the merged snapshot whenever they hold per shard.
//   gauges       add — occupancy levels (queue depth, live sessions,
//                leased shards) are extensive quantities.
//   histograms   bucket-wise add under Prometheus `le` semantics,
//                which is only sound when every source histogram uses
//                the SAME bound ladder. All iph registries do
//                (stats/export.h shared ladders); a bounds mismatch is
//                reported as an error, never silently resampled —
//                quantile() on the merged histogram then answers for
//                the whole fleet.
//
// A malformed source is the caller's problem (stats::from_json already
// rejects it); merge_snapshots itself only rejects structural
// disagreement between well-formed snapshots.
#pragma once

#include <string>
#include <vector>

#include "stats/stats.h"

namespace iph::cluster {

/// Sum `parts` into *out (previous contents discarded). Instrument
/// order is first-seen order across parts, so merging a router's own
/// snapshot first keeps its counters at the top of exports. False on
/// histogram-bounds mismatch (err names the instrument).
bool merge_snapshots(const std::vector<stats::RegistrySnapshot>& parts,
                     stats::RegistrySnapshot* out, std::string* err);

}  // namespace iph::cluster
