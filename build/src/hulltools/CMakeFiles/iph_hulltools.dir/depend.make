# Empty dependencies file for iph_hulltools.
# This may be replaced when dependencies are built.
