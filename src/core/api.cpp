#include "core/api.h"

#include "core/fallback2d.h"
#include "core/presorted_constant.h"
#include "core/presorted_logstar.h"
#include "core/unsorted2d.h"
#include "core/unsorted3d.h"
#include "geom/validate.h"
#include "pram/machine.h"
#include "support/check.h"

namespace iph {

namespace {

pram::Machine make_machine(const Options& o) {
  return pram::Machine(o.threads, o.seed);
}

}  // namespace

Hull2D upper_hull_2d(pram::Machine& m, std::span<const geom::Point2> pts,
                     const Options& opts) {
  Hull2D out;
  switch (opts.algo) {
    case Algo2D::kFallback:
      out.result = core::fallback_hull_2d(m, pts);
      break;
    case Algo2D::kPresortedConstant:
    case Algo2D::kPresortedLogstar:
      IPH_CHECK(false && "presorted algorithm requested on unsorted entry "
                         "point; use upper_hull_2d_presorted");
      break;
    case Algo2D::kAuto:
    case Algo2D::kUnsorted:
      out.result = core::unsorted_hull_2d(m, pts, nullptr, opts.alpha);
      break;
  }
  out.metrics = m.metrics();
  return out;
}

Hull2D upper_hull_2d(std::span<const geom::Point2> pts,
                     const Options& opts) {
  pram::Machine m = make_machine(opts);
  return upper_hull_2d(m, pts, opts);
}

Hull2D upper_hull_2d_presorted(pram::Machine& m,
                               std::span<const geom::Point2> pts,
                               const Options& opts) {
  Hull2D out;
  switch (opts.algo) {
    case Algo2D::kPresortedLogstar:
      out.result = core::presorted_logstar_hull(m, pts);
      break;
    case Algo2D::kUnsorted:
      out.result = core::unsorted_hull_2d(m, pts, nullptr, opts.alpha);
      break;
    case Algo2D::kFallback:
      out.result = core::fallback_hull_2d(m, pts);
      break;
    case Algo2D::kAuto:
    case Algo2D::kPresortedConstant:
      out.result = core::presorted_constant_hull(m, pts, nullptr, opts.alpha);
      break;
  }
  out.metrics = m.metrics();
  return out;
}

Hull2D upper_hull_2d_presorted(std::span<const geom::Point2> pts,
                               const Options& opts) {
  pram::Machine m = make_machine(opts);
  return upper_hull_2d_presorted(m, pts, opts);
}

FullHull2D convex_hull_2d(pram::Machine& m,
                          std::span<const geom::Point2> pts,
                          const Options& opts) {
  FullHull2D out;
  const auto upper = core::unsorted_hull_2d(m, pts, nullptr, opts.alpha);
  std::vector<geom::Point2> neg(pts.size());
  {
    pram::Machine::Phase phase(m, "api/reflect");
    m.step(pts.size(), [&](std::uint64_t i) {
      neg[i] = {pts[i].x, -pts[i].y};
    });
  }
  const auto lower = core::unsorted_hull_2d(m, neg, nullptr, opts.alpha);
  out.vertices = geom::full_hull_from_upper(upper.upper, lower.upper);
  out.metrics = m.metrics();
  return out;
}

FullHull2D convex_hull_2d(std::span<const geom::Point2> pts,
                          const Options& opts) {
  pram::Machine m = make_machine(opts);
  return convex_hull_2d(m, pts, opts);
}

Hull3D upper_hull_3d(pram::Machine& m, std::span<const geom::Point3> pts,
                     const Options& opts) {
  Hull3D out;
  core::Unsorted3DStats stats;
  out.result = core::unsorted_hull_3d(m, pts, &stats, opts.alpha);
  out.metrics = m.metrics();
  out.used_fallback = stats.used_fallback;
  return out;
}

Hull3D upper_hull_3d(std::span<const geom::Point3> pts,
                     const Options& opts) {
  pram::Machine m = make_machine(opts);
  return upper_hull_3d(m, pts, opts);
}

}  // namespace iph
