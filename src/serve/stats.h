// Service-level metric bundle for iph::serve.
//
// ServeStats owns nothing: it registers the serving stack's instruments
// in a caller-provided stats::Registry (so a process embedding several
// services could share or separate registries) and hands out typed
// references. HullService constructs one over its own registry and
// wires the pieces: the queues' depth gauges, the pool's occupancy
// instruments, and its own admission/latency recording.
//
// Metric names are exported verbatim (Prometheus-style, labels baked in
// via stats::labeled) — statnames:: has the constants so the server,
// hullload --scrape, benchreport and the CI reconciliation checks never
// drift on spelling.
//
// Reconciliation invariants (asserted by tests, hullload --scrape and
// the CI serve-smoke job): every submit increments `submitted` exactly
// once, and exactly one of accepted/rejected{full|shutdown} — so
//   submitted == accepted + sum(rejected)
// and every accepted request terminates exactly once as completed,
// expired, or rejected{shutdown} (abandoned at shutdown):
//   accepted == completed + expired + rejected_at_shutdown_drain
// All counters are bumped BEFORE the corresponding promise is
// fulfilled; a client that has collected all its responses therefore
// always reads fully-settled counters.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pram/metrics.h"
#include "stats/stats.h"

namespace iph::serve {

namespace statnames {
inline constexpr const char* kSubmitted = "iph_serve_submitted_total";
inline constexpr const char* kAccepted = "iph_serve_accepted_total";
inline constexpr const char* kRejectedBase = "iph_serve_rejected_total";
inline constexpr const char* kExpired = "iph_serve_expired_total";
inline constexpr const char* kCompleted = "iph_serve_completed_total";
inline constexpr const char* kBatches = "iph_serve_batches_total";
inline constexpr const char* kBatchCloseBase = "iph_serve_batch_close_total";
inline constexpr const char* kLargeRequests = "iph_serve_large_requests_total";
inline constexpr const char* kQueueDepthBase = "iph_serve_queue_depth";
inline constexpr const char* kShardsLeased = "iph_serve_shards_leased";
inline constexpr const char* kShardBusyBase = "iph_serve_shard_busy_us_total";
inline constexpr const char* kBatchSize = "iph_serve_batch_size";
inline constexpr const char* kQueueWaitMs = "iph_serve_queue_wait_ms";
inline constexpr const char* kExecMs = "iph_serve_exec_ms";
inline constexpr const char* kE2eMs = "iph_serve_e2e_ms";
inline constexpr const char* kPramPrefix = "iph_serve_pram_";
/// Per-backend served-request counters, labeled backend=pram|native
/// (exec/backend.h names). pram + native == completed: every completed
/// request was served by exactly one engine.
inline constexpr const char* kBackendBase = "iph_serve_backend_requests_total";
}  // namespace statnames

/// Typed handles into a Registry for every serving instrument (see
/// statnames for the exported spellings). `pool_shards` sizes the
/// per-shard busy counters (labeled "0".."n-1"); when `large_shard` is
/// true one more counter labeled "large" is appended (index
/// pool_shards) for the dedicated large-query machine.
class ServeStats {
 public:
  ServeStats(stats::Registry& registry, std::size_t pool_shards,
             bool large_shard);

  // Admission and terminal-state counters.
  stats::Counter& submitted;
  stats::Counter& accepted;
  stats::Counter& rejected_full;
  stats::Counter& rejected_shutdown;
  stats::Counter& expired;
  stats::Counter& completed;

  // Batch shaping.
  stats::Counter& batches;
  stats::Counter& close_window;
  stats::Counter& close_requests;
  stats::Counter& close_points;
  stats::Counter& close_closed;
  stats::Counter& large_requests;
  stats::Histogram& batch_size;

  // Which execution engine served each completed request
  // (statnames::kBackendBase, labeled by backend name).
  stats::Counter& backend_pram;
  stats::Counter& backend_native;

  // Occupancy.
  stats::Gauge& small_depth;
  stats::Gauge& large_depth;
  stats::Gauge& shards_leased;

  // Latency.
  stats::Histogram& queue_wait_ms;
  stats::Histogram& exec_ms;
  stats::Histogram& e2e_ms;

  /// busy-time counters, one per shard index ("large" is the last when
  /// the service runs a dedicated large shard).
  std::vector<stats::Counter*> shard_busy_us;

  /// Fold a finished run's PRAM counters into the registry's
  /// iph_serve_pram_*_total counters (pram::for_each_summable_counter
  /// defines the set — the registry tracks whatever Metrics exports,
  /// without this file naming each field).
  void fold_pram(const pram::Metrics& m) noexcept;

 private:
  std::vector<stats::Counter*> pram_counters_;
};

}  // namespace iph::serve
