# ctest script: benchreport must fail with its distinct input-error exit
# code (3) and a readable message when fed a truncated or malformed
# BENCH_*.json, and must not let a broken artifact read as "claims ok".
#
# Invoked as:
#   cmake -DBENCHREPORT=<path-to-binary> -DWORK_DIR=<scratch>
#         -P benchreport_badinput_test.cmake
if(NOT BENCHREPORT OR NOT WORK_DIR)
  message(FATAL_ERROR "need -DBENCHREPORT=... and -DWORK_DIR=...")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

# Case 1: truncated JSON (an interrupted bench run or partial upload).
file(WRITE "${WORK_DIR}/BENCH_trunc.json"
     "{\"schema\": \"iph-bench-report-v1\", \"bench\": \"tr")
execute_process(
  COMMAND "${BENCHREPORT}" "${WORK_DIR}/BENCH_trunc.json"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 3)
  message(FATAL_ERROR
          "truncated report: expected exit 3, got ${rc}\nstderr: ${err}")
endif()
if(NOT err MATCHES "not a valid bench report")
  message(FATAL_ERROR
          "truncated report: stderr lacks readable diagnosis: ${err}")
endif()

# Case 2: valid JSON that is not a bench report (wrong schema).
file(WRITE "${WORK_DIR}/BENCH_alien.json" "{\"schema\": \"something-else\"}")
execute_process(
  COMMAND "${BENCHREPORT}" "${WORK_DIR}/BENCH_alien.json"
  RESULT_VARIABLE rc
  ERROR_VARIABLE err)
if(NOT rc EQUAL 3)
  message(FATAL_ERROR
          "alien schema: expected exit 3, got ${rc}\nstderr: ${err}")
endif()
if(NOT err MATCHES "iph-bench-report-v1")
  message(FATAL_ERROR "alien schema: stderr lacks expected schema: ${err}")
endif()

# Case 3: one broken file next to a good one — still exit 3 (the broken
# artifact must not be masked), but the good report still renders.
file(WRITE "${WORK_DIR}/BENCH_good.json"
"{\"schema\": \"iph-bench-report-v1\", \"bench\": \"good\",
  \"claims_enforced\": true, \"rows\": [
    {\"name\": \"g/1\", \"function\": \"g\", \"args\": \"1\", \"label\": \"\",
     \"x\": 1, \"wall_ms\": 0.5, \"counters\": {\"peak_aux\": 2048}}],
  \"claims\": [{\"name\": \"c\", \"counter\": \"steps\", \"shape\": \"flat\",
                \"tol\": 1.5, \"ok\": true}]}")
execute_process(
  COMMAND "${BENCHREPORT}" "${WORK_DIR}"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 3)
  message(FATAL_ERROR
          "mixed dir: expected exit 3, got ${rc}\nstderr: ${err}")
endif()
if(NOT out MATCHES "good")
  message(FATAL_ERROR "mixed dir: good report missing from summary: ${out}")
endif()
if(NOT out MATCHES "2.05k")
  message(FATAL_ERROR "mixed dir: peak aux column missing/wrong: ${out}")
endif()

# Case 4: the good report alone exits 0 (control).
execute_process(
  COMMAND "${BENCHREPORT}" --check "${WORK_DIR}/BENCH_good.json"
  RESULT_VARIABLE rc
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "good report: expected exit 0, got ${rc}\nstderr: ${err}")
endif()

# Case 5: a malformed "stats" block (not an iph-stats-v1 snapshot) is
# broken input too — exit 3 with a diagnosis naming the bad tag.
file(WRITE "${WORK_DIR}/badstats/BENCH_badstats.json"
"{\"schema\": \"iph-bench-report-v1\", \"bench\": \"badstats\",
  \"claims_enforced\": true, \"rows\": [
    {\"name\": \"g/1\", \"function\": \"g\", \"args\": \"1\", \"label\": \"\",
     \"x\": 1, \"wall_ms\": 0.5, \"counters\": {}}],
  \"claims\": [],
  \"stats\": {\"n=64\": {\"schema\": \"wrong\", \"counters\": 12}}}")
execute_process(
  COMMAND "${BENCHREPORT}" "${WORK_DIR}/badstats/BENCH_badstats.json"
  RESULT_VARIABLE rc
  ERROR_VARIABLE err)
if(NOT rc EQUAL 3)
  message(FATAL_ERROR
          "malformed stats block: expected exit 3, got ${rc}\nstderr: ${err}")
endif()
if(NOT err MATCHES "n=64")
  message(FATAL_ERROR
          "malformed stats block: stderr does not name the bad tag: ${err}")
endif()

# Case 6: a streaming (e15-style) report renders the streaming table —
# and the same report with a malformed session stats block is broken
# input (exit 3), not a silently skipped table.
file(WRITE "${WORK_DIR}/stream/BENCH_stream.json"
"{\"schema\": \"iph-bench-report-v1\", \"bench\": \"stream\",
  \"claims_enforced\": true, \"rows\": [
    {\"name\": \"s/4096\", \"function\": \"s\", \"args\": \"4096\",
     \"label\": \"\", \"x\": 4096, \"wall_ms\": 5.0,
     \"counters\": {\"append_ms\": 0.02, \"scratch_ms\": 1.0,
                    \"delta_vs_scratch\": 0.02, \"delta_ops\": 151,
                    \"rebuilds\": 4, \"peak_aux\": 4262}}],
  \"claims\": [],
  \"stats\": {\"n=4096\": {\"schema\": \"iph-stats-v1\",
    \"counters\": {\"iph_session_opened_total\": 1,
                   \"iph_session_closed_total\": 1,
                   \"iph_session_appends_total\": 64,
                   \"iph_session_append_points_total\": 4096,
                   \"iph_session_rebuilds_total\": 4},
    \"gauges\": {}, \"histograms\": {}}}}")
execute_process(
  COMMAND "${BENCHREPORT}" --check "${WORK_DIR}/stream/BENCH_stream.json"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "streaming report: expected exit 0, got ${rc}\nstderr: ${err}")
endif()
if(NOT out MATCHES "Streaming appends")
  message(FATAL_ERROR "streaming report: streaming table missing:\n${out}")
endif()
if(NOT out MATCHES "Streaming stats")
  message(FATAL_ERROR
          "streaming report: session stats table missing:\n${out}")
endif()
if(NOT out MATCHES "4.26k")
  message(FATAL_ERROR
          "streaming report: peak aux cell missing/wrong:\n${out}")
endif()

file(WRITE "${WORK_DIR}/badstream/BENCH_badstream.json"
"{\"schema\": \"iph-bench-report-v1\", \"bench\": \"badstream\",
  \"claims_enforced\": true, \"rows\": [
    {\"name\": \"s/4096\", \"function\": \"s\", \"args\": \"4096\",
     \"label\": \"\", \"x\": 4096, \"wall_ms\": 5.0,
     \"counters\": {\"delta_vs_scratch\": 0.02}}],
  \"claims\": [],
  \"stats\": {\"stream\": {\"schema\": \"iph-stats-v1\",
    \"counters\": {\"iph_session_opened_total\": 1},
    \"gauges\": {},
    \"histograms\": {\"iph_session_append_ms\": \"not-a-histogram\"}}}}")
execute_process(
  COMMAND "${BENCHREPORT}" "${WORK_DIR}/badstream/BENCH_badstream.json"
  RESULT_VARIABLE rc
  ERROR_VARIABLE err)
if(NOT rc EQUAL 3)
  message(FATAL_ERROR
          "malformed streaming stats: expected exit 3, got ${rc}\n"
          "stderr: ${err}")
endif()
if(NOT err MATCHES "stream")
  message(FATAL_ERROR
          "malformed streaming stats: stderr does not name the bad tag: "
          "${err}")
endif()

# Case 6b: a cluster (e16-style) report renders the scaling table and
# the fleet-stats roll-up columns — and cluster rows must NOT bleed
# into the single-server serving table despite carrying `qps`.
file(WRITE "${WORK_DIR}/cluster/BENCH_cluster.json"
"{\"schema\": \"iph-bench-report-v1\", \"bench\": \"cluster\",
  \"claims_enforced\": true, \"rows\": [
    {\"name\": \"c/4\", \"function\": \"c\", \"args\": \"4\",
     \"label\": \"scale\", \"x\": 4, \"wall_ms\": 400.0,
     \"counters\": {\"backends\": 4, \"qps\": 2200, \"speedup\": 3.1,
                    \"ideal\": 4, \"scaling_inefficiency\": 1.29,
                    \"p99_ms\": 12.5}}],
  \"claims\": [],
  \"stats\": {\"scaling/B=4\": {\"schema\": \"iph-stats-v1\",
    \"counters\": {\"iph_router_forwards_total\": 256,
                   \"iph_router_retries_total{reason=\\\"io\\\"}\": 3,
                   \"iph_router_markdowns_total{cause=\\\"io\\\"}\": 1,
                   \"iph_router_ring_rebuilds_total\": 2,
                   \"iph_serve_submitted_total\": 256,
                   \"iph_serve_completed_total\": 253},
    \"gauges\": {}, \"histograms\": {}}}}")
execute_process(
  COMMAND "${BENCHREPORT}" --check "${WORK_DIR}/cluster/BENCH_cluster.json"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "cluster report: expected exit 0, got ${rc}\nstderr: ${err}")
endif()
if(NOT out MATCHES "Cluster scaling")
  message(FATAL_ERROR "cluster report: scaling table missing:\n${out}")
endif()
if(NOT out MATCHES "Fleet stats")
  message(FATAL_ERROR "cluster report: fleet stats table missing:\n${out}")
endif()
if(out MATCHES "Serving latency/throughput")
  message(FATAL_ERROR
          "cluster report: cluster rows bled into the serving table:\n${out}")
endif()
if(NOT out MATCHES "1.29")
  message(FATAL_ERROR
          "cluster report: inefficiency column missing/wrong:\n${out}")
endif()

# Case 7: a malformed flight-recorder dump (tracez*.json missing its
# "traces"/"exemplars" arrays) is broken input — exit 3, not a silently
# skipped table.
file(WRITE "${WORK_DIR}/badtracez/tracez.json" "{\"retained\": 1}")
execute_process(
  COMMAND "${BENCHREPORT}" "${WORK_DIR}/badtracez"
  RESULT_VARIABLE rc
  ERROR_VARIABLE err)
if(NOT rc EQUAL 3)
  message(FATAL_ERROR
          "malformed tracez dump: expected exit 3, got ${rc}\nstderr: ${err}")
endif()
if(NOT err MATCHES "not a tracez dump")
  message(FATAL_ERROR
          "malformed tracez dump: stderr lacks readable diagnosis: ${err}")
endif()

# Case 8: a well-formed dump renders the trace-exemplar table — bucket
# bound, e2e, trace id, and the repro pointer for the pinned outlier.
file(WRITE "${WORK_DIR}/tracez/tracez_19911.json"
"{\"retained\": 2, \"published\": 5, \"dropped_spans\": 0,
  \"exemplars\": [
    {\"bucket_le_ms\": 0.25,
     \"trace\": {\"trace\": \"abc123\", \"id\": 4, \"kind\": \"request\",
       \"status\": \"ok\", \"backend\": \"native\", \"batch\": 2,
       \"e2e_ms\": 0.21, \"repro\": \"repro/req-4.json\",
       \"spans\": [{\"name\": \"request\", \"span\": 1, \"parent\": 0,
                    \"start_us\": 0, \"dur_us\": 210}]}},
    {\"bucket_le_ms\": \"+Inf\",
     \"trace\": {\"trace\": \"f00d\", \"id\": 9, \"kind\": \"request\",
       \"status\": \"ok\", \"e2e_ms\": 1200.0, \"spans\": []}}],
  \"traces\": []}")
execute_process(
  COMMAND "${BENCHREPORT}" --check "${WORK_DIR}/tracez"
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR
          "tracez dump: expected exit 0, got ${rc}\nstderr: ${err}")
endif()
if(NOT out MATCHES "Trace exemplars")
  message(FATAL_ERROR "tracez dump: exemplar table missing:\n${out}")
endif()
if(NOT out MATCHES "abc123")
  message(FATAL_ERROR "tracez dump: exemplar trace id missing:\n${out}")
endif()
if(NOT out MATCHES "\\+Inf")
  message(FATAL_ERROR "tracez dump: overflow bucket missing:\n${out}")
endif()
if(NOT out MATCHES "repro/req-4.json")
  message(FATAL_ERROR "tracez dump: repro pointer missing:\n${out}")
endif()

message(STATUS "benchreport bad-input behavior ok")
