// Lightweight runtime checking macros.
//
// IPH_CHECK is always on (used for API contract violations and internal
// invariants whose failure would silently corrupt results). IPH_DCHECK
// compiles out in NDEBUG builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace iph::support {

[[noreturn]] inline void check_failed(const char* file, int line,
                                      const char* expr) {
  std::fprintf(stderr, "IPH_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace iph::support

#define IPH_CHECK(expr)                                        \
  do {                                                         \
    if (!(expr)) {                                             \
      ::iph::support::check_failed(__FILE__, __LINE__, #expr); \
    }                                                          \
  } while (0)

#ifdef NDEBUG
#define IPH_DCHECK(expr) \
  do {                   \
  } while (0)
#else
#define IPH_DCHECK(expr) IPH_CHECK(expr)
#endif
