# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for seq_hull2d_test.
