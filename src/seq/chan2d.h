// Chan's output-sensitive upper hull — the second sequential O(n log h)
// baseline (group-and-wrap with guessed hull size m = 2^(2^t)). Included
// alongside Kirkpatrick-Seidel so e04 can show both sequential
// output-sensitive shapes next to the paper's parallel one.
#pragma once

#include <span>

#include "geom/hull_types.h"
#include "geom/point.h"

namespace iph::seq {

/// Upper hull of arbitrary-order points in O(n log h) time.
geom::UpperHull2D chan_upper_hull(std::span<const geom::Point2> pts);

/// Rightward upper tangent from p to a strict convex chain (x-increasing,
/// right-turning): returns the index WITHIN `chain` of the vertex v
/// maximizing the slope of p->v among vertices with x > p.x, preferring
/// the largest x on ties; returns geom::kNone if no vertex lies right of
/// p. O(log |chain|). Exposed for tests and reused by hulltools.
geom::Index chan_tangent(std::span<const geom::Point2> pts,
                         std::span<const geom::Index> chain,
                         const geom::Point2& p);

}  // namespace iph::seq
