#include "primitives/bitonic_sort.h"

#include <vector>

#include "support/mathutil.h"

namespace iph::primitives {

namespace {

/// Generic bitonic network over np (power-of-two) elements; less(a, b)
/// defines the order, swap(a, b) exchanges them. Each compare-exchange
/// pair is owned by exactly one processor per step.
template <typename LessFn, typename SwapFn>
void bitonic(pram::Machine& m, std::uint64_t np, const LessFn& less,
             const SwapFn& swap) {
  for (std::uint64_t k = 2; k <= np; k <<= 1) {
    for (std::uint64_t j = k >> 1; j > 0; j >>= 1) {
      m.step(np / 2, [&, k, j](std::uint64_t pid) {
        // Enumerate the np/2 disjoint (i, i^j) pairs with i's j-bit zero.
        const std::uint64_t low = pid & (j - 1);
        const std::uint64_t i = ((pid & ~(j - 1)) << 1) | low;
        const std::uint64_t partner = i | j;
        const bool ascending = (i & k) == 0;
        if (less(partner, i) == ascending) swap(i, partner);
      });
    }
  }
}

}  // namespace

void bitonic_sort_points(pram::Machine& m,
                         std::span<const geom::Point2> pts,
                         std::span<geom::Index> idx) {
  const std::uint64_t n = idx.size();
  if (n < 2) return;
  pram::Machine::Phase phase(m, "prim/bitonic-sort");
  const std::uint64_t np = support::ceil_pow2(n);
  std::vector<geom::Index> buf(np, geom::kNone);  // kNone sorts last
  m.step(n, [&](std::uint64_t pid) { buf[pid] = idx[pid]; });
  bitonic(
      m, np,
      [&](std::uint64_t a, std::uint64_t b) {
        if (buf[a] == geom::kNone) return false;
        if (buf[b] == geom::kNone) return true;
        if (geom::lex_less(pts[buf[a]], pts[buf[b]])) return true;
        if (geom::lex_less(pts[buf[b]], pts[buf[a]])) return false;
        return buf[a] < buf[b];  // duplicate points: stable by index
      },
      [&](std::uint64_t a, std::uint64_t b) { std::swap(buf[a], buf[b]); });
  m.step(n, [&](std::uint64_t pid) { idx[pid] = buf[pid]; });
}

void bitonic_sort_keys(pram::Machine& m, std::span<std::uint64_t> keys) {
  const std::uint64_t n = keys.size();
  if (n < 2) return;
  pram::Machine::Phase phase(m, "prim/bitonic-sort");
  const std::uint64_t np = support::ceil_pow2(n);
  std::vector<std::uint64_t> buf(np, ~std::uint64_t{0});
  m.step(n, [&](std::uint64_t pid) { buf[pid] = keys[pid]; });
  bitonic(
      m, np,
      [&](std::uint64_t a, std::uint64_t b) { return buf[a] < buf[b]; },
      [&](std::uint64_t a, std::uint64_t b) { std::swap(buf[a], buf[b]); });
  m.step(n, [&](std::uint64_t pid) { keys[pid] = buf[pid]; });
}

}  // namespace iph::primitives
