// Tests for the 3-d gift-wrapping oracle.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "geom/predicates.h"
#include "geom/validate.h"
#include "geom/workloads.h"
#include "seq/giftwrap3d.h"
#include "seq/quickhull3d.h"

namespace iph::seq {
namespace {

using geom::Family3D;
using geom::Index;
using geom::Point3;

TEST(GiftWrap3D, Tetrahedron) {
  // One upward facet: the top three points; the bottom point beneath it.
  std::vector<Point3> pts{
      {0, 0, 10}, {10, 0, 10}, {0, 10, 10}, {3, 3, 0}};
  const auto r = giftwrap_upper_hull3(pts);
  ASSERT_EQ(r.facets.size(), 1u);
  std::set<Index> verts{r.facets[0].a, r.facets[0].b, r.facets[0].c};
  EXPECT_EQ(verts, (std::set<Index>{0, 1, 2}));
  EXPECT_EQ(r.facet_above[3], 0u);
  std::string err;
  EXPECT_TRUE(geom::validate_hull3d(pts, r, true, &err)) << err;
}

TEST(GiftWrap3D, PyramidHasFourUpperFacets) {
  std::vector<Point3> pts{
      {0, 0, 0}, {10, 0, 0}, {10, 10, 0}, {0, 10, 0}, {5, 5, 8}};
  const auto r = giftwrap_upper_hull3(pts);
  EXPECT_EQ(r.facets.size(), 4u);  // apex joined to each base edge
  std::string err;
  EXPECT_TRUE(geom::validate_hull3d(pts, r, true, &err)) << err;
}

TEST(GiftWrap3D, DegenerateInputsYieldNoFacets) {
  EXPECT_TRUE(giftwrap_upper_hull3(std::vector<Point3>{}).facets.empty());
  std::vector<Point3> two{{0, 0, 0}, {1, 1, 1}};
  EXPECT_TRUE(giftwrap_upper_hull3(two).facets.empty());
  // xy-collinear: vertical slab, no upward facet.
  std::vector<Point3> line{{0, 0, 0}, {1, 1, 5}, {2, 2, 1}, {3, 3, 9}};
  const auto r = giftwrap_upper_hull3(line);
  EXPECT_TRUE(r.facets.empty());
  std::string err;
  EXPECT_TRUE(geom::validate_hull3d(line, r, false, &err)) << err;
}

TEST(GiftWrap3D, ExtremeKBoundsVertexCount) {
  const std::size_t k = 24;
  const auto pts = geom::extreme_k3(300, k, 5);
  const auto r = giftwrap_upper_hull3(pts);
  const auto verts = geom::hull3d_vertex_set(r);
  // Upper-hull vertices are a subset of the k sphere points.
  EXPECT_LE(verts.size(), k);
  EXPECT_GE(verts.size(), 4u);
  std::string err;
  EXPECT_TRUE(geom::validate_hull3d(pts, r, true, &err)) << err;
}

TEST(GiftWrap3D, ParaboloidAllPointsOnHull) {
  const auto pts = geom::on_paraboloid(80, 7);
  const auto r = giftwrap_upper_hull3(pts);
  // The lift makes every point an upper-hull vertex (general position).
  EXPECT_EQ(geom::hull3d_vertex_set(r).size(), pts.size());
}

TEST(GiftWrap3D, EulerBoundOnFacetCount) {
  // For a triangulated upper hull with v vertices, facets <= 2v - 4.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto pts = geom::in_ball(256, seed);
    const auto r = giftwrap_upper_hull3(pts);
    const auto v = geom::hull3d_vertex_set(r).size();
    EXPECT_LE(r.facets.size(), 2 * v);
    EXPECT_GE(r.facets.size(), 1u);
  }
}


TEST(QuickHull3D, MatchesGiftWrapVertexSet) {
  for (geom::Family3D f : geom::kAllFamilies3D) {
    for (std::size_t n : {4u, 60u, 250u}) {
      const auto pts = geom::make3d(f, n, 77);
      const auto qh = quickhull_upper_hull3(pts);
      const auto gw = giftwrap_upper_hull3(pts);
      EXPECT_EQ(geom::hull3d_vertex_set(qh), geom::hull3d_vertex_set(gw))
          << geom::family_name(f) << " n=" << n;
      std::string err;
      EXPECT_TRUE(geom::validate_hull3d(pts, qh, false, &err))
          << geom::family_name(f) << " n=" << n << ": " << err;
    }
  }
}

TEST(QuickHull3D, AssignsEveryPointOnGeneralPosition) {
  const auto pts = geom::in_ball(800, 3);
  const auto qh = quickhull_upper_hull3(pts);
  std::string err;
  EXPECT_TRUE(geom::validate_hull3d(pts, qh, true, &err)) << err;
}

TEST(QuickHull3D, DegenerateInputs) {
  EXPECT_TRUE(quickhull3(std::vector<Point3>{}).empty());
  std::vector<Point3> flat{{0, 0, 0}, {1, 0, 0}, {0, 1, 0}, {1, 1, 0}};
  EXPECT_TRUE(quickhull3(flat).empty());  // coplanar
  std::vector<Point3> line{{0, 0, 0}, {1, 1, 1}, {2, 2, 2}, {3, 3, 3}};
  EXPECT_TRUE(quickhull3(line).empty());
  std::vector<Point3> dup(10, Point3{5, 5, 5});
  EXPECT_TRUE(quickhull3(dup).empty());
}

TEST(QuickHull3D, ScalesToLargeN) {
  const auto pts = geom::in_cube(20000, 9);
  const auto qh = quickhull_upper_hull3(pts);
  EXPECT_GT(qh.facets.size(), 4u);
  // Spot-validate: every facet dominates a sample of points.
  for (std::size_t i = 0; i < pts.size(); i += 997) {
    for (std::size_t f = 0; f < qh.facets.size(); f += 7) {
      const auto& t = qh.facets[f];
      EXPECT_TRUE(
          geom::on_or_below_plane(pts[t.a], pts[t.b], pts[t.c], pts[i]));
    }
  }
}

class GiftWrapSweep
    : public ::testing::TestWithParam<std::tuple<Family3D, int, int>> {};

TEST_P(GiftWrapSweep, ValidUpperHull) {
  const auto [family, size, seed] = GetParam();
  const auto pts = geom::make3d(family, static_cast<std::size_t>(size),
                                static_cast<std::uint64_t>(seed) * 104729 + 3);
  const auto r = giftwrap_upper_hull3(pts);
  std::string err;
  EXPECT_TRUE(geom::validate_hull3d(pts, r, true, &err))
      << geom::family_name(family) << " n=" << size << ": " << err;
}

std::string sweep_name(
    const ::testing::TestParamInfo<std::tuple<Family3D, int, int>>& info) {
  const auto [family, size, seed] = info.param;
  return geom::family_name(family) + "_n" + std::to_string(size) + "_s" +
         std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GiftWrapSweep,
    ::testing::Combine(::testing::ValuesIn(geom::kAllFamilies3D),
                       ::testing::Values(4, 16, 100, 400),
                       ::testing::Values(1, 2)),
    sweep_name);

}  // namespace
}  // namespace iph::seq
