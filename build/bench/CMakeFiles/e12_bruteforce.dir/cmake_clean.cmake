file(REMOVE_RECURSE
  "CMakeFiles/e12_bruteforce.dir/e12_bruteforce.cpp.o"
  "CMakeFiles/e12_bruteforce.dir/e12_bruteforce.cpp.o.d"
  "e12_bruteforce"
  "e12_bruteforce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e12_bruteforce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
