#include "serve/queue.h"

namespace iph::serve {

BoundedQueue::Admit BoundedQueue::push(Pending& p) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_) return Admit::kClosed;
    if (q_.size() >= capacity_) return Admit::kFull;
    q_.push_back(std::move(p));
    update_depth_locked();
  }
  cv_.notify_one();
  return Admit::kOk;
}

std::optional<Pending> BoundedQueue::pop() {
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [this] { return closed_ || !q_.empty(); });
  if (q_.empty()) return std::nullopt;
  Pending p = std::move(q_.front());
  q_.pop_front();
  update_depth_locked();
  return p;
}

std::vector<Pending> BoundedQueue::pop_batch(
    std::size_t max_requests, std::size_t max_points,
    std::chrono::microseconds window, BatchClose* close_reason) {
  std::vector<Pending> out;
  BatchClose reason = BatchClose::kWindow;
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [this] { return closed_ || !q_.empty(); });
  if (q_.empty()) return out;

  std::size_t points = 0;
  auto take_available = [&] {
    while (!q_.empty() && out.size() < max_requests) {
      const std::size_t sz = q_.front().request.points.size();
      // First take is unconditional so an oversized request can't wedge.
      if (!out.empty() && points + sz > max_points) break;
      out.push_back(std::move(q_.front()));
      q_.pop_front();
      points += sz;
    }
    update_depth_locked();
  };
  take_available();
  const auto batch_deadline = Clock::now() + window;
  while (out.size() < max_requests && !closed_) {
    if (!q_.empty()) {
      const std::size_t sz = q_.front().request.points.size();
      if (points + sz > max_points) {
        reason = BatchClose::kPoints;
        break;
      }
      take_available();
      continue;
    }
    if (cv_.wait_until(lk, batch_deadline) == std::cv_status::timeout) {
      take_available();  // whatever raced the timeout
      reason = BatchClose::kWindow;
      break;
    }
  }
  if (out.size() >= max_requests) {
    reason = BatchClose::kRequests;
  } else if (closed_ && reason == BatchClose::kWindow) {
    // Fell out of the loop because close() woke us mid-window (the
    // points/timeout breaks already stamped their own reason).
    reason = BatchClose::kClosed;
  }
  if (close_reason != nullptr && !out.empty()) *close_reason = reason;
  return out;
}

void BoundedQueue::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

void BoundedQueue::bind_depth_gauge(stats::Gauge* g) {
  std::lock_guard<std::mutex> lk(mu_);
  depth_ = g;
  update_depth_locked();
}

std::size_t BoundedQueue::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return q_.size();
}

bool BoundedQueue::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

}  // namespace iph::serve
