#include "serve/service.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "exec/pram_backend.h"
#include "obs/phase_link.h"
#include "support/check.h"
#include "support/env.h"

namespace iph::serve {

namespace {

ServiceConfig sanitize(ServiceConfig cfg) {
  cfg.queue_capacity = std::max<std::size_t>(cfg.queue_capacity, 1);
  cfg.shards = std::max<std::size_t>(cfg.shards, 1);
  cfg.workers = std::max<std::size_t>(cfg.workers, 1);
  cfg.batch.max_batch_requests =
      std::max<std::size_t>(cfg.batch.max_batch_requests, 1);
  cfg.batch.max_batch_points =
      std::max<std::size_t>(cfg.batch.max_batch_points, 1);
  if (cfg.backend == exec::BackendKind::kDefault) {
    cfg.backend = exec::BackendKind::kPram;
  }
  if (cfg.obs.repro_dir.empty()) {
    cfg.obs.repro_dir = support::env_string("IPH_EXEC_REPRO_DIR", "");
  }
  return cfg;
}

std::uint64_t steady_ns(Clock::time_point tp) noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          tp.time_since_epoch())
          .count());
}

/// Write a tail-exemplar repro JSON in the exec_diff artifact shape
/// (family/n/seed/points, %.17g — tests/exec_diff_test.cpp replays any
/// .json in IPH_EXEC_REPRO_DIR through the full differential check, so
/// a pinned serving exemplar becomes a standing regression for free).
/// Returns the path, or empty on I/O failure.
std::string write_exemplar_repro(const std::string& dir,
                                 std::uint64_t trace_id,
                                 std::uint64_t seed,
                                 std::span<const geom::Point2> pts) {
  const std::string path =
      dir + "/serve_exemplar_" + obs::to_hex(trace_id) + ".json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return std::string();
  std::fprintf(out,
               "{\"family\": \"serve\", \"n\": %zu, \"seed\": %llu,\n"
               " \"points\": [",
               pts.size(), static_cast<unsigned long long>(seed));
  for (std::size_t i = 0; i < pts.size(); ++i) {
    std::fprintf(out, "%s[%.17g, %.17g]", i == 0 ? "" : ", ", pts[i].x,
                 pts[i].y);
  }
  std::fprintf(out, "]}\n");
  std::fclose(out);
  return path;
}

}  // namespace

HullService::HullService(const ServiceConfig& cfg)
    : cfg_(sanitize(cfg)),
      sstats_(stats_registry_, cfg_.shards, cfg_.large_shard),
      native_(cfg_.threads_per_shard),
      pool_(cfg_.shards, cfg_.threads_per_shard, cfg_.master_seed),
      small_queue_(cfg_.queue_capacity),
      large_queue_(cfg_.queue_capacity) {
  if (cfg_.obs.enabled) {
    flight_ =
        std::make_unique<obs::FlightRecorder>(cfg_.obs, stats_registry_);
  }
  small_queue_.bind_depth_gauge(&sstats_.small_depth);
  large_queue_.bind_depth_gauge(&sstats_.large_depth);
  // The pool meters the batch shards; the dedicated large shard (index
  // pool_.size()) is metered by large_worker directly.
  pool_.bind_stats(&sstats_.shards_leased,
                   {sstats_.shard_busy_us.begin(),
                    sstats_.shard_busy_us.begin() +
                        static_cast<std::ptrdiff_t>(cfg_.shards)});
  if (cfg_.large_shard) {
    large_machine_ = std::make_unique<pram::Machine>(
        cfg_.threads_per_shard, cfg_.master_seed);
  }
  if (cfg_.batch.grain != 0) {
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      pool_.machine(i).set_grain(cfg_.batch.grain);
    }
    if (large_machine_) large_machine_->set_grain(cfg_.batch.grain);
  }
  if (cfg_.trace) {
    const std::size_t n = pool_.size() + (large_machine_ ? 1 : 0);
    recorders_.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      recorders_.push_back(std::make_unique<trace::Recorder>());
    }
    for (std::size_t i = 0; i < pool_.size(); ++i) {
      recorders_[i]->attach(pool_.machine(i));
    }
    if (large_machine_) recorders_.back()->attach(*large_machine_);
  }
  workers_.reserve(cfg_.workers + (large_machine_ ? 1 : 0));
  for (std::size_t w = 0; w < cfg_.workers; ++w) {
    workers_.emplace_back([this] { batch_worker(); });
  }
  if (large_machine_) {
    workers_.emplace_back([this] { large_worker(); });
  }
}

HullService::~HullService() { shutdown(/*drain=*/true); }

std::future<Response> HullService::ready_response(Response r) {
  std::promise<Response> p;
  std::future<Response> f = p.get_future();
  p.set_value(std::move(r));
  return f;
}

std::future<Response> HullService::submit(Request req) {
  stats_.submitted.fetch_add(1, std::memory_order_relaxed);
  sstats_.submitted.inc();
  if (req.id == 0) {
    req.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  }
  // Adopt a caller-supplied trace id verbatim; stamp one otherwise so
  // every admitted request is traceable (context.h id semantics).
  if (flight_ != nullptr && !req.trace.has_id()) {
    req.trace.trace_id = flight_->stamp_trace_id();
  }
  const RequestId id = req.id;
  if (closed_.load(std::memory_order_acquire)) {
    stats_.rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
    sstats_.rejected_shutdown.inc();
    Response r;
    r.id = id;
    r.status = Status::kRejectedShutdown;
    r.trace = req.trace;
    return ready_response(std::move(r));
  }
  const bool large = large_machine_ != nullptr &&
                     req.points.size() >= cfg_.batch.small_threshold;
  BoundedQueue& q = large ? large_queue_ : small_queue_;

  Pending p;
  p.request = std::move(req);
  p.enqueued_at = Clock::now();
  std::future<Response> fut = p.promise.get_future();
  switch (q.push(p)) {
    case BoundedQueue::Admit::kOk:
      sstats_.accepted.inc();
      if (large) {
        stats_.large_requests.fetch_add(1, std::memory_order_relaxed);
        sstats_.large_requests.inc();
      }
      return fut;
    case BoundedQueue::Admit::kFull: {
      stats_.rejected_full.fetch_add(1, std::memory_order_relaxed);
      sstats_.rejected_full.inc();
      answer_rejection(p, Status::kRejectedFull);
      return fut;
    }
    case BoundedQueue::Admit::kClosed: {
      stats_.rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
      sstats_.rejected_shutdown.inc();
      answer_rejection(p, Status::kRejectedShutdown);
      return fut;
    }
  }
  IPH_CHECK(false);  // unreachable
  return fut;
}

void HullService::answer_rejection(Pending& p, Status status) {
  Response r;
  r.id = p.request.id;
  r.status = status;
  r.trace = p.request.trace;
  p.promise.set_value(std::move(r));
}

void HullService::batch_worker() {
  for (;;) {
    BatchClose close = BatchClose::kWindow;
    std::vector<Pending> batch =
        small_queue_.pop_batch(cfg_.batch.max_batch_requests,
                               cfg_.batch.max_batch_points,
                               cfg_.batch.window, &close);
    if (batch.empty()) return;  // closed and drained
    // Popped vs leased: the queue_wait span ends here, the lease span
    // covers the pool acquire below (metrics keep the original
    // submit -> post-lease definition of queue_wait_ms; the spans give
    // the finer attribution).
    const Clock::time_point popped = Clock::now();
    if (abandon_.load(std::memory_order_acquire)) {
      for (Pending& p : batch) {
        stats_.rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
        sstats_.rejected_shutdown.inc();
        answer_rejection(p, Status::kRejectedShutdown);
      }
      continue;
    }
    switch (close) {
      case BatchClose::kWindow:
        sstats_.close_window.inc();
        break;
      case BatchClose::kRequests:
        sstats_.close_requests.inc();
        break;
      case BatchClose::kPoints:
        sstats_.close_points.inc();
        break;
      case BatchClose::kClosed:
        sstats_.close_closed.inc();
        break;
    }
    finish_batch(std::move(batch), pool_.acquire(), popped,
                 batch_close_name(close));
  }
}

void HullService::finish_batch(std::vector<Pending> batch,
                               MachinePool::Lease lease,
                               Clock::time_point popped,
                               const char* close_tag) {
  const Clock::time_point dequeued = Clock::now();  // lease granted

  // Deadline expiry is detected here, at dequeue: anything past its
  // deadline is answered kExpired without spending PRAM time on it.
  std::vector<Pending> live;
  live.reserve(batch.size());
  for (Pending& p : batch) {
    if (p.request.has_deadline() && p.request.deadline < dequeued) {
      stats_.expired.fetch_add(1, std::memory_order_relaxed);
      sstats_.expired.inc();
      Response r;
      r.id = p.request.id;
      r.status = Status::kExpired;
      r.trace = p.request.trace;
      r.metrics.queue_wait_ms = ms_between(p.enqueued_at, dequeued);
      r.metrics.e2e_ms = r.metrics.queue_wait_ms;
      p.promise.set_value(std::move(r));
    } else {
      live.push_back(std::move(p));
    }
  }
  if (live.empty()) return;

  std::vector<Request> reqs;
  reqs.reserve(live.size());
  for (Pending& p : live) reqs.push_back(std::move(p.request));

  exec::PramBackend pram_backend(lease.machine());
  BackendSet backends;
  backends.pram = &pram_backend;
  backends.native = &native_;
  backends.service_default = cfg_.backend;
  const trace::Recorder* rec =
      cfg_.trace && flight_ != nullptr && lease.shard() < recorders_.size()
          ? recorders_[lease.shard()].get()
          : nullptr;
  backends.recorder = rec;
  BatchExecInfo info;
  std::vector<Response> responses =
      execute_batch(backends, reqs, cfg_.master_seed, &info);
  const std::size_t shard = lease.shard();
  // Phase-tree linkage must be read out while the lease is held: the
  // shard's recorder is appended to by whoever leases the shard next.
  std::vector<std::vector<obs::Span>> phase_spans(live.size());
  std::vector<char> phase_truncated(live.size(), 0);
  if (rec != nullptr) {
    for (std::size_t i = 0; i < info.pram_events.size(); ++i) {
      bool trunc = false;
      phase_spans[i] = obs::phase_spans_from_events(
          rec, info.pram_events[i], obs::kExecSpanId, &trunc);
      phase_truncated[i] = trunc ? 1 : 0;
    }
  }
  lease.release();  // free the shard before the promise fan-out

  IPH_CHECK(responses.size() == live.size());
  IPH_CHECK(info.completed_at.size() == live.size());
  IPH_CHECK(info.started_at.size() == live.size());
  IPH_CHECK(info.pram_events.size() == live.size());
  // Stats strictly before the promise fan-out: a caller that has seen
  // its Response observes counters that already include it.
  stats_.batches.fetch_add(1, std::memory_order_relaxed);
  stats_.batched_requests.fetch_add(live.size(), std::memory_order_relaxed);
  stats_.completed.fetch_add(live.size(), std::memory_order_relaxed);
  std::uint64_t prev = stats_.max_batch.load(std::memory_order_relaxed);
  while (prev < live.size() &&
         !stats_.max_batch.compare_exchange_weak(
             prev, live.size(), std::memory_order_relaxed)) {
  }
  sstats_.batches.inc();
  sstats_.completed.inc(live.size());
  sstats_.batch_size.record(static_cast<double>(live.size()));
  sstats_.fold_pram(info.pram_total);
  sstats_.backend_pram.inc(info.pram_requests);
  sstats_.backend_native.inc(info.native_requests);
  for (std::size_t i = 0; i < live.size(); ++i) {
    responses[i].metrics.shard = shard;
    responses[i].metrics.queue_wait_ms =
        ms_between(live[i].enqueued_at, dequeued);
    // Each request's OWN completion stamp, not the batch tail's: the
    // requests ran back-to-back in the arena, so e2e grows along the
    // batch and (e2e - queue_wait) is per-request (satellite fix,
    // regression-tested in serve_test).
    responses[i].metrics.e2e_ms =
        ms_between(live[i].enqueued_at, info.completed_at[i]);
    responses[i].trace = reqs[i].trace;
    sstats_.queue_wait_ms.record(responses[i].metrics.queue_wait_ms);
    sstats_.exec_ms.record(responses[i].metrics.exec_ms);
    sstats_.e2e_ms.record(responses[i].metrics.e2e_ms);
    publish_request_trace(reqs[i], responses[i], close_tag,
                          live[i].enqueued_at, popped, dequeued,
                          info.started_at[i], info.completed_at[i],
                          live.size(), std::move(phase_spans[i]),
                          phase_truncated[i] != 0);
    live[i].promise.set_value(std::move(responses[i]));
  }
}

void HullService::publish_request_trace(
    const Request& req, const Response& resp, const char* close_tag,
    Clock::time_point enqueued, Clock::time_point popped,
    Clock::time_point leased, Clock::time_point started,
    Clock::time_point completed, std::uint64_t batch_size,
    std::vector<obs::Span> phase_spans, bool phase_truncated) {
  if (flight_ == nullptr) return;
  obs::CompletedTrace t;
  t.trace_id = req.trace.trace_id;
  t.parent_span = req.trace.parent_span;
  t.request_id = req.id;
  t.status = status_name(resp.status);
  t.backend = exec::backend_name(resp.metrics.backend);
  t.tag = close_tag;
  t.batch_size = batch_size;
  t.e2e_ms = resp.metrics.e2e_ms;
  // The fixed 4-span tree (span.h reconciliation contract). The root's
  // parent is the caller's span when the wire supplied one.
  t.spans.reserve(obs::kSpansPerRequest);
  t.spans.push_back({"request", obs::kRootSpanId, 0, steady_ns(enqueued),
                     steady_ns(completed)});
  t.spans.push_back({"queue_wait", obs::kQueueWaitSpanId, obs::kRootSpanId,
                     steady_ns(enqueued), steady_ns(popped)});
  t.spans.push_back({"lease", obs::kLeaseSpanId, obs::kRootSpanId,
                     steady_ns(popped), steady_ns(leased)});
  t.spans.push_back({"exec", obs::kExecSpanId, obs::kRootSpanId,
                     steady_ns(started), steady_ns(completed)});
  t.phase_spans = std::move(phase_spans);
  t.phase_spans_truncated = phase_truncated;
  // Tail exemplar about to be pinned: give it a standalone repro file
  // (native runs only — PRAM tails are explained by their linked phase
  // tree instead). Advisory check; the pin itself happens in publish.
  if (resp.metrics.backend == exec::BackendKind::kNative &&
      !cfg_.obs.repro_dir.empty() &&
      flight_->exemplar_bucket(t.e2e_ms) >= 0) {
    t.repro = write_exemplar_repro(cfg_.obs.repro_dir, t.trace_id,
                                   resp.metrics.seed, req.points);
  }
  flight_->publish(std::move(t));
}

void HullService::large_worker() {
  for (;;) {
    std::optional<Pending> p = large_queue_.pop();
    if (!p) return;  // closed and drained
    if (abandon_.load(std::memory_order_acquire)) {
      stats_.rejected_shutdown.fetch_add(1, std::memory_order_relaxed);
      sstats_.rejected_shutdown.inc();
      answer_rejection(*p, Status::kRejectedShutdown);
      continue;
    }
    const Clock::time_point dequeued = Clock::now();
    if (p->request.has_deadline() && p->request.deadline < dequeued) {
      stats_.expired.fetch_add(1, std::memory_order_relaxed);
      sstats_.expired.inc();
      Response r;
      r.id = p->request.id;
      r.status = Status::kExpired;
      r.trace = p->request.trace;
      r.metrics.queue_wait_ms = ms_between(p->enqueued_at, dequeued);
      r.metrics.e2e_ms = r.metrics.queue_wait_ms;
      p->promise.set_value(std::move(r));
      continue;
    }
    const Request req = std::move(p->request);
    exec::PramBackend pram_backend(*large_machine_);
    BackendSet backends;
    backends.pram = &pram_backend;
    backends.native = &native_;
    backends.service_default = cfg_.backend;
    // The large shard's recorder is only ever driven by this worker, so
    // reading it after the run needs no lease discipline.
    const trace::Recorder* rec = cfg_.trace && flight_ != nullptr &&
                                         !recorders_.empty()
                                     ? recorders_.back().get()
                                     : nullptr;
    backends.recorder = rec;
    BatchExecInfo info;
    std::vector<Response> resp =
        execute_batch(backends, {&req, 1}, cfg_.master_seed, &info);
    IPH_CHECK(resp.size() == 1 && info.completed_at.size() == 1 &&
              info.started_at.size() == 1 && info.pram_events.size() == 1);
    const Clock::time_point done = info.completed_at[0];
    resp[0].metrics.shard = pool_.size();  // the dedicated large shard
    resp[0].metrics.queue_wait_ms = ms_between(p->enqueued_at, dequeued);
    resp[0].metrics.e2e_ms = ms_between(p->enqueued_at, done);
    resp[0].trace = req.trace;
    stats_.completed.fetch_add(1, std::memory_order_relaxed);
    sstats_.completed.inc();
    sstats_.fold_pram(info.pram_total);
    sstats_.backend_pram.inc(info.pram_requests);
    sstats_.backend_native.inc(info.native_requests);
    sstats_.queue_wait_ms.record(resp[0].metrics.queue_wait_ms);
    sstats_.exec_ms.record(resp[0].metrics.exec_ms);
    sstats_.e2e_ms.record(resp[0].metrics.e2e_ms);
    // The dedicated large shard is not pooled; meter its busy time here
    // (the pool meters the batch shards at lease release).
    if (!sstats_.shard_busy_us.empty()) {
      sstats_.shard_busy_us.back()->inc(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(done -
                                                                dequeued)
              .count()));
    }
    bool trunc = false;
    std::vector<obs::Span> phases = obs::phase_spans_from_events(
        rec, info.pram_events[0], obs::kExecSpanId, &trunc);
    // Large path: no batcher pop and no pool lease, so queue_wait runs
    // to dequeue and the lease span is zero-length at that stamp —
    // keeping the 4-span shape (and the span-count reconciliation)
    // uniform across paths.
    publish_request_trace(req, resp[0], "large", p->enqueued_at, dequeued,
                          dequeued, info.started_at[0], done,
                          /*batch_size=*/1, std::move(phases), trunc);
    p->promise.set_value(std::move(resp[0]));
  }
}

void HullService::shutdown(bool drain) {
  std::lock_guard<std::mutex> lk(shutdown_mu_);
  if (!joined_) {
    if (!drain) abandon_.store(true, std::memory_order_release);
    closed_.store(true, std::memory_order_release);
    small_queue_.close();
    large_queue_.close();
    for (std::thread& t : workers_) {
      if (t.joinable()) t.join();
    }
    joined_ = true;
  }
}

StatsSnapshot HullService::stats() const {
  StatsSnapshot s;
  s.submitted = stats_.submitted.load(std::memory_order_relaxed);
  s.rejected_full = stats_.rejected_full.load(std::memory_order_relaxed);
  s.rejected_shutdown =
      stats_.rejected_shutdown.load(std::memory_order_relaxed);
  s.expired = stats_.expired.load(std::memory_order_relaxed);
  s.completed = stats_.completed.load(std::memory_order_relaxed);
  s.batches = stats_.batches.load(std::memory_order_relaxed);
  s.batched_requests =
      stats_.batched_requests.load(std::memory_order_relaxed);
  s.max_batch = stats_.max_batch.load(std::memory_order_relaxed);
  s.large_requests = stats_.large_requests.load(std::memory_order_relaxed);
  return s;
}

const trace::Recorder* HullService::recorder(std::size_t i) const {
  return i < recorders_.size() ? recorders_[i].get() : nullptr;
}

}  // namespace iph::serve
