file(REMOVE_RECURSE
  "CMakeFiles/e11_split_decay.dir/e11_split_decay.cpp.o"
  "CMakeFiles/e11_split_decay.dir/e11_split_decay.cpp.o.d"
  "e11_split_decay"
  "e11_split_decay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e11_split_decay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
