// Tests for the chain operations (Atallah-Goodrich primitives, Section
// 2.4) and the folklore Lemma 2.4 hull built on them.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "geom/predicates.h"
#include "geom/validate.h"
#include "geom/workloads.h"
#include "hulltools/chain_ops.h"
#include "hulltools/folklore_hull.h"
#include "pram/machine.h"
#include "primitives/lockstep_search.h"
#include "seq/upper_hull.h"

namespace iph::hulltools {
namespace {

using geom::Index;
using geom::Point2;

TEST(LockstepSearch, MatchesStdPartitionPoint) {
  pram::Machine m(1);
  // 40 searches over a sorted array with varied thresholds and ranges.
  std::vector<int> data(1000);
  std::iota(data.begin(), data.end(), 0);
  std::vector<std::uint64_t> lo(40), hi(40);
  std::vector<int> threshold(40);
  for (std::size_t s = 0; s < 40; ++s) {
    lo[s] = s * 3;
    hi[s] = 1000 - s * 5;
    threshold[s] = static_cast<int>(s * 29 % 1100);
  }
  for (std::uint64_t g : {2u, 3u, 8u, 64u}) {
    const auto got = primitives::lockstep_partition_point(
        m, lo, hi, g, [&](std::uint64_t s, std::uint64_t i) {
          return data[i] < threshold[s];
        });
    for (std::size_t s = 0; s < 40; ++s) {
      const auto want = static_cast<std::uint64_t>(
          std::partition_point(data.begin() + lo[s], data.begin() + hi[s],
                               [&](int v) { return v < threshold[s]; }) -
          data.begin());
      EXPECT_EQ(got[s], want) << "g=" << g << " s=" << s;
    }
  }
}

TEST(LockstepSearch, EmptyRangesAndNoSearches) {
  pram::Machine m(1);
  std::vector<std::uint64_t> lo{5}, hi{5};
  const auto got = primitives::lockstep_partition_point(
      m, lo, hi, 4, [](std::uint64_t, std::uint64_t) { return true; });
  EXPECT_EQ(got[0], 5u);
  std::vector<std::uint64_t> none;
  EXPECT_TRUE(primitives::lockstep_partition_point(
                  m, none, none, 4,
                  [](std::uint64_t, std::uint64_t) { return true; })
                  .empty());
}

TEST(LockstepSearch, StepCountScalesWithRadix) {
  pram::Machine m(1);
  std::vector<std::uint64_t> lo{0}, hi{1 << 16};
  const auto pred = [](std::uint64_t, std::uint64_t i) {
    return i < 40000;
  };
  const auto s0 = m.metrics().steps;
  primitives::lockstep_partition_point(m, lo, hi, 2, pred);
  const auto binary_steps = m.metrics().steps - s0;
  const auto s1 = m.metrics().steps;
  primitives::lockstep_partition_point(m, lo, hi, 256, pred);
  const auto g256_steps = m.metrics().steps - s1;
  EXPECT_GT(binary_steps, 2 * g256_steps);
  EXPECT_LE(g256_steps, 6u);  // log_256(2^16) = 2 rounds, 2 steps each
}

/// Build block chains over a presorted copy of pts and return them with
/// the sorted points.
std::pair<std::vector<Point2>, std::vector<Chain>> block_chains(
    std::vector<Point2> pts, std::size_t block) {
  geom::sort_lex(pts);
  std::vector<Chain> chains;
  for (std::size_t lo = 0; lo < pts.size(); lo += block) {
    const std::size_t hi = std::min(pts.size(), lo + block);
    std::span<const Point2> sub(pts.data() + lo, hi - lo);
    auto h = seq::upper_hull_presorted(sub);
    Chain c;
    for (Index v : h.vertices) c.push_back(static_cast<Index>(v + lo));
    chains.push_back(std::move(c));
  }
  return {std::move(pts), std::move(chains)};
}

class MergeSweep : public ::testing::TestWithParam<
                       std::tuple<geom::Family2D, int, int, int>> {};

TEST_P(MergeSweep, MergedChainEqualsOracleHull) {
  const auto [family, n, block, seed] = GetParam();
  auto [pts, chains] = block_chains(
      geom::make2d(family, static_cast<std::size_t>(n),
                   static_cast<std::uint64_t>(seed) * 31 + 5),
      static_cast<std::size_t>(block));
  pram::Machine m(1);
  std::vector<std::uint32_t> group_of(chains.size(), 0);
  const auto merged =
      merge_chain_groups(m, pts, chains, group_of, 1, 4);
  const auto want = seq::upper_hull_presorted(pts);
  ASSERT_EQ(merged[0].size(), want.vertices.size())
      << geom::family_name(family) << " n=" << n << " block=" << block;
  for (std::size_t i = 0; i < merged[0].size(); ++i) {
    EXPECT_EQ(pts[merged[0][i]], pts[want.vertices[i]]);
  }
}

std::string merge_name(
    const ::testing::TestParamInfo<std::tuple<geom::Family2D, int, int, int>>&
        info) {
  const auto [family, n, block, seed] = info.param;
  return geom::family_name(family) + "_n" + std::to_string(n) + "_b" +
         std::to_string(block) + "_s" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MergeSweep,
    ::testing::Combine(::testing::ValuesIn(geom::kAllFamilies2D),
                       ::testing::Values(64, 300, 1024),
                       ::testing::Values(5, 32, 150),
                       ::testing::Values(1, 2)),
    merge_name);

TEST(MergeChainGroups, MultipleGroupsIndependent) {
  auto [pts, chains] = block_chains(geom::in_disk(600, 3), 50);
  pram::Machine m(1);
  // Two groups: first half of blocks, second half.
  std::vector<std::uint32_t> group_of(chains.size());
  const std::size_t half = chains.size() / 2;
  for (std::size_t c = 0; c < chains.size(); ++c) {
    group_of[c] = c < half ? 0 : 1;
  }
  const auto merged = merge_chain_groups(m, pts, chains, group_of, 2, 4);
  // Each group's merge equals the oracle hull of its block range.
  const std::size_t split = half * 50;
  const auto w0 = seq::upper_hull_presorted(
      std::span<const Point2>(pts.data(), split));
  ASSERT_EQ(merged[0].size(), w0.vertices.size());
  std::span<const Point2> rest(pts.data() + split, pts.size() - split);
  const auto w1 = seq::upper_hull_presorted(rest);
  ASSERT_EQ(merged[1].size(), w1.vertices.size());
  for (std::size_t i = 0; i < merged[1].size(); ++i) {
    EXPECT_EQ(pts[merged[1][i]], rest[w1.vertices[i]]);
  }
}

TEST(CommonTangent, DominatesBothChains) {
  auto pts = geom::in_disk(400, 7);
  geom::sort_lex(pts);
  // Chains over [0,200) and [200,400) — x-separated (ties unlikely; skip
  // the boundary column if present).
  std::span<const Point2> left(pts.data(), 200);
  std::span<const Point2> right(pts.data() + 200, 200);
  if (pts[199].x == pts[200].x) GTEST_SKIP();
  auto hl = seq::upper_hull_presorted(left);
  auto hr = seq::upper_hull_presorted(right);
  Chain a(hl.vertices.begin(), hl.vertices.end());
  Chain b;
  for (Index v : hr.vertices) b.push_back(static_cast<Index>(v + 200));
  pram::Machine m(1);
  const auto [ta, tb] = common_tangent(m, pts, a, b, 4);
  EXPECT_LT(pts[ta].x, pts[tb].x);
  for (Index v : a) EXPECT_LE(geom::orient2d(pts[ta], pts[tb], pts[v]), 0);
  for (Index v : b) EXPECT_LE(geom::orient2d(pts[ta], pts[tb], pts[v]), 0);
}

TEST(ExtremeVsLines, FindsMaxDistanceVertex) {
  auto pts = geom::on_circle(300, 9);
  geom::sort_lex(pts);
  const auto h = seq::upper_hull_presorted(pts);
  Chain chain(h.vertices.begin(), h.vertices.end());
  pram::Machine m(1);
  // Lines through pairs of non-hull... use arbitrary input point pairs.
  std::vector<std::pair<Index, Index>> lines{{0, 299}, {10, 200}, {50, 250}};
  std::vector<const Chain*> cofs{&chain, &chain, &chain};
  const auto ext = extreme_vs_lines(
      m, pts, std::span<const Chain* const>(cofs.data(), cofs.size()),
      lines, 4);
  for (std::size_t s = 0; s < lines.size(); ++s) {
    Index la = lines[s].first, lb = lines[s].second;
    if (geom::lex_less(pts[lb], pts[la])) std::swap(la, lb);
    ASSERT_NE(ext[s], geom::kNone);
    // No chain vertex is strictly more extreme: cross(la->lb, ext->v)<=0
    for (Index v : chain) {
      EXPECT_LE(geom::cross_diff_sign(pts[la], pts[lb], pts[ext[s]], pts[v]),
                0);
    }
  }
}

TEST(EdgesAboveChain, CoversEveryQuery) {
  auto pts = geom::in_square(500, 11);
  geom::sort_lex(pts);
  const auto h = seq::upper_hull_presorted(pts);
  Chain chain(h.vertices.begin(), h.vertices.end());
  pram::Machine m(1);
  std::vector<Index> queries(pts.size());
  std::iota(queries.begin(), queries.end(), Index{0});
  const auto edges = edges_above_chain(m, pts, queries, chain, 8);
  geom::HullResult2D r;
  r.upper.vertices = h.vertices;
  r.edge_above = edges;
  std::string err;
  EXPECT_TRUE(geom::validate_edge_above(pts, r, &err)) << err;
}

class FolkloreSweep
    : public ::testing::TestWithParam<std::tuple<geom::Family2D, int, int>> {
};

TEST_P(FolkloreSweep, MatchesOracle) {
  const auto [family, n, levels] = GetParam();
  auto pts = geom::make2d(family, static_cast<std::size_t>(n), 77);
  geom::sort_lex(pts);
  pram::Machine m(1);
  const auto r = folklore_hull_presorted(m, pts, 0, pts.size(),
                                         static_cast<unsigned>(levels));
  std::string err;
  EXPECT_TRUE(geom::validate_upper_hull(pts, r.upper, &err))
      << geom::family_name(family) << ": " << err;
  EXPECT_TRUE(geom::validate_edge_above(pts, r, &err))
      << geom::family_name(family) << ": " << err;
}

std::string folklore_name(
    const ::testing::TestParamInfo<std::tuple<geom::Family2D, int, int>>&
        info) {
  const auto [family, n, levels] = info.param;
  return geom::family_name(family) + "_n" + std::to_string(n) + "_k" +
         std::to_string(levels);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FolkloreSweep,
    ::testing::Combine(::testing::ValuesIn(geom::kAllFamilies2D),
                       ::testing::Values(10, 100, 600, 2000),
                       ::testing::Values(2, 3)),
    folklore_name);

TEST(FolkloreHull, BoundedSteps) {
  auto pts = geom::in_disk(4096, 3);
  geom::sort_lex(pts);
  pram::Machine m(1);
  const auto before = m.metrics().steps;
  folklore_hull_presorted(m, pts, 0, pts.size(), 3);
  // O(k^2)-ish constant: generous bound, the point is "far below log n
  // rounds of anything linear".
  EXPECT_LE(m.metrics().steps - before, 220u);
}

}  // namespace
}  // namespace iph::hulltools
