// Constant-time operations on upper-hull chains (Section 2.4 of the
// paper; Atallah-Goodrich [6]): the primitives that make algorithms
// "point-hull invariant". Each operation runs in O(c) PRAM steps using
// the lockstep g-ary search engine with g ~ L^(1/c):
//
//   * extreme_vs_line  — the chain vertex extreme in a line's normal
//     direction, i.e. "does the hull cross above this line, and where"
//     (the hull analogue of point/line sidedness);
//   * merge_chain_groups — merge groups of x-disjoint chains into their
//     joint upper hulls (the hull analogue of 'hull of a point set');
//   * common_tangent   — upper common tangent of two x-separated chains
//     (the hull analogue of 'line through two points');
//   * edges_above_chain — covering edge per query point (output step).
//
// All operations are BATCHED: many instances advance in the same PRAM
// steps, because the host algorithms run one instance per tree node /
// subproblem simultaneously.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "geom/hull_types.h"
#include "geom/point.h"
#include "pram/machine.h"

namespace iph::hulltools {

/// A chain: global point indices, strictly increasing x, strictly convex
/// (right turns), as produced by every upper-hull routine in this repo.
using Chain = std::vector<geom::Index>;

/// Merge chains into per-group upper hulls. chains[i] belongs to group
/// group_of[i]; within a group, chains must be x-disjoint and listed in
/// increasing x order (contiguous blocks of a presorted array satisfy
/// this). Survivor rule: vertex v lives iff
///     min slope(u, v) over vertices u left of v
///   > max slope(v, w) over vertices w right of v
/// and no vertex shares v's x with a larger y (or equal y and smaller
/// chain id). Each bound is found with one lockstep tangent search per
/// (vertex, other chain) pair. O(c) PRAM steps with g = L^(1/c).
std::vector<Chain> merge_chain_groups(pram::Machine& m,
                                      std::span<const geom::Point2> pts,
                                      std::span<const Chain> chains,
                                      std::span<const std::uint32_t> group_of,
                                      std::size_t num_groups,
                                      std::uint64_t g);

/// Upper common tangent (a, b) of two x-separated chains (A entirely
/// left of B): the unique pair with every vertex of both chains on or
/// below line(a, b). Implemented as a 2-chain merge; the tangent is the
/// edge spanning the gap.
std::pair<geom::Index, geom::Index> common_tangent(
    pram::Machine& m, std::span<const geom::Point2> pts, const Chain& a,
    const Chain& b, std::uint64_t g);

/// Batched "hull vs line" extreme-point queries: for query q, the vertex
/// of chain_of(q) with maximum signed distance above the directed line
/// through (lines[q].first -> lines[q].second) — the first point-hull
/// invariant primitive (side-of-line lifted to hulls). Returns the
/// vertex index per query; the caller tests its orientation against the
/// line to learn crossed/not-crossed.
std::vector<geom::Index> extreme_vs_lines(
    pram::Machine& m, std::span<const geom::Point2> pts,
    std::span<const Chain* const> chain_of,
    std::span<const std::pair<geom::Index, geom::Index>> lines,
    std::uint64_t g);

/// Covering hull edge per query point: for each query point index q,
/// the edge of `chain` whose x-span contains pts[q].x (clamped to the
/// last edge for the rightmost column), or kNone when the chain has no
/// edges. Batched lockstep search, O(c) steps.
std::vector<geom::Index> edges_above_chain(pram::Machine& m,
                                           std::span<const geom::Point2> pts,
                                           std::span<const geom::Index> queries,
                                           const Chain& chain,
                                           std::uint64_t g);

}  // namespace iph::hulltools
