#include "seq/chan2d.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "geom/predicates.h"
#include "seq/upper_hull.h"
#include "support/check.h"

namespace iph::seq {

using geom::Index;
using geom::Point2;

Index chan_tangent(std::span<const Point2> pts,
                   std::span<const Index> chain, const Point2& p) {
  // Suffix of chain vertices strictly right of p.
  auto first = std::upper_bound(
      chain.begin(), chain.end(), p.x,
      [&](double x, Index idx) { return x < pts[idx].x; });
  if (first == chain.end()) return geom::kNone;
  const std::size_t lo0 = static_cast<std::size_t>(first - chain.begin());
  std::size_t lo = lo0, hi = chain.size() - 1;
  // Slope of p->w_t is unimodal over the convex suffix; find its peak:
  // advance while the next vertex is strictly above line(p, current).
  while (lo < hi) {
    const std::size_t mid = (lo + hi) / 2;
    if (geom::orient2d(p, pts[chain[mid]], pts[chain[mid + 1]]) > 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  // Prefer the farthest collinear vertex (strict hulls skip the nearer).
  while (lo + 1 < chain.size() &&
         geom::orient2d(p, pts[chain[lo]], pts[chain[lo + 1]]) == 0) {
    ++lo;
  }
  return static_cast<Index>(lo);
}

geom::UpperHull2D chan_upper_hull(std::span<const Point2> pts) {
  geom::UpperHull2D hull;
  const std::size_t n = pts.size();
  if (n == 0) return hull;
  Index l = 0, r = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (pts[i].x < pts[l].x || (pts[i].x == pts[l].x && pts[i].y > pts[l].y)) {
      l = static_cast<Index>(i);
    }
    if (pts[i].x > pts[r].x || (pts[i].x == pts[r].x && pts[i].y > pts[r].y)) {
      r = static_cast<Index>(i);
    }
  }
  if (pts[l].x == pts[r].x) {
    hull.vertices.push_back(l);
    return hull;
  }
  for (std::uint64_t m = 8;; m = std::min<std::uint64_t>(
                                n, m * m > m ? m * m : n)) {
    if (m > n) m = n;
    // Group the points and hull each group.
    const std::size_t groups = (n + m - 1) / m;
    std::vector<std::vector<Index>> chains(groups);
    for (std::size_t g = 0; g < groups; ++g) {
      const std::size_t lo = g * m, hi = std::min<std::size_t>(n, lo + m);
      std::vector<Index> idx(hi - lo);
      std::iota(idx.begin(), idx.end(), static_cast<Index>(lo));
      std::sort(idx.begin(), idx.end(), [&](Index a, Index b) {
        return geom::lex_less(pts[a], pts[b]);
      });
      // Monotone-chain scan over the sorted group.
      std::vector<Index>& v = chains[g];
      std::size_t start = 0;
      while (start + 1 < idx.size() &&
             pts[idx[start + 1]].x == pts[idx[0]].x) {
        ++start;
      }
      v.push_back(idx[start]);
      for (std::size_t i = start + 1; i < idx.size(); ++i) {
        const Point2& p = pts[idx[i]];
        if (p == pts[v.back()]) continue;
        while (v.size() >= 2 &&
               geom::orient2d(pts[v[v.size() - 2]], pts[v.back()], p) >= 0) {
          v.pop_back();
        }
        if (pts[v.back()].x == p.x) {
          v.back() = idx[i];
        } else {
          v.push_back(idx[i]);
        }
      }
    }
    // Wrap: at most m steps of gift wrapping over group tangents.
    std::vector<Index> chain{l};
    bool ok = false;
    for (std::uint64_t step = 0; step < m; ++step) {
      const Index cur = chain.back();
      if (cur == r) {
        ok = true;
        break;
      }
      Index best = geom::kNone;
      for (const auto& gch : chains) {
        const Index t = chan_tangent(pts, gch, pts[cur]);
        if (t == geom::kNone) continue;
        const Index cand = gch[t];
        if (best == geom::kNone) {
          best = cand;
          continue;
        }
        const int o = geom::orient2d(pts[cur], pts[best], pts[cand]);
        if (o > 0 || (o == 0 && pts[cand].x > pts[best].x)) best = cand;
      }
      IPH_CHECK(best != geom::kNone);
      chain.push_back(best);
    }
    if (ok || chain.back() == r) {
      hull.vertices = std::move(chain);
      return hull;
    }
    IPH_CHECK(m < n);  // m == n must always succeed
  }
}

}  // namespace iph::seq
