// Workload generators with controlled output size h.
//
// The paper's output-sensitive bounds (Theorems 5 and 6) are claims about
// how work scales with the hull size h, so the benches need point
// distributions whose hull size is known:
//   2-d:  on_circle    h = n            (every point extreme)
//         in_disk      h ~ n^(1/3)
//         in_square    h ~ log n
//         convex_k     upper hull size exactly k
//         gaussian     h ~ sqrt(log n)
//   3-d:  on_sphere    h ~ n
//         in_ball      h ~ sqrt(n)
//         in_cube      h ~ log^2 n
//         extreme_k3   hull vertices ~ k
//         on_paraboloid  every point on the upper hull's boundary
// plus degenerate torture inputs (collinear, duplicates, lattice) for the
// robustness tests. Coordinates are integer-valued doubles (|c| <= 2^26)
// wherever degeneracies matter so that zero orientations are exact.
//
// All generators are deterministic in (n, seed).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "geom/point.h"

namespace iph::geom {

// --- 2-d families ------------------------------------------------------

std::vector<Point2> on_circle(std::size_t n, std::uint64_t seed);
std::vector<Point2> in_disk(std::size_t n, std::uint64_t seed);
std::vector<Point2> in_square(std::size_t n, std::uint64_t seed);
std::vector<Point2> gaussian2(std::size_t n, std::uint64_t seed);

/// Exactly k points on a concave-down arc (the upper hull) plus n-k points
/// strictly inside their convex hull: the upper hull has exactly k
/// vertices. Requires 2 <= k <= n.
std::vector<Point2> convex_k(std::size_t n, std::size_t k,
                             std::uint64_t seed);

/// All points on one non-vertical line (upper hull = 2 endpoints).
std::vector<Point2> collinear2(std::size_t n, std::uint64_t seed);

/// Points drawn from only ~sqrt(n) distinct locations (many duplicates).
std::vector<Point2> with_duplicates(std::size_t n, std::uint64_t seed);

/// Integer lattice points (many collinear triples).
std::vector<Point2> lattice2(std::size_t n, std::uint64_t seed);

// --- 3-d families ------------------------------------------------------

std::vector<Point3> on_sphere(std::size_t n, std::uint64_t seed);
std::vector<Point3> in_ball(std::size_t n, std::uint64_t seed);
std::vector<Point3> in_cube(std::size_t n, std::uint64_t seed);

/// ~k points on a sphere plus n-k points well inside.
std::vector<Point3> extreme_k3(std::size_t n, std::size_t k,
                               std::uint64_t seed);

/// Points on the downward paraboloid z = -(x^2+y^2)/s: their upper hull
/// is the 3-d Delaunay lift, every point is a hull vertex.
std::vector<Point3> on_paraboloid(std::size_t n, std::uint64_t seed);

// --- family registries for parameterized tests -------------------------

enum class Family2D {
  kCircle,
  kDisk,
  kSquare,
  kGaussian,
  kConvexK,   // k = max(2, n/8)
  kCollinear,
  kDuplicates,
  kLattice,
};

inline constexpr Family2D kAllFamilies2D[] = {
    Family2D::kCircle,    Family2D::kDisk,       Family2D::kSquare,
    Family2D::kGaussian,  Family2D::kConvexK,    Family2D::kCollinear,
    Family2D::kDuplicates, Family2D::kLattice,
};

std::vector<Point2> make2d(Family2D f, std::size_t n, std::uint64_t seed);
std::string family_name(Family2D f);

enum class Family3D {
  kSphere,
  kBall,
  kCube,
  kExtremeK,  // k = max(4, n/8)
  kParaboloid,
};

inline constexpr Family3D kAllFamilies3D[] = {
    Family3D::kSphere, Family3D::kBall, Family3D::kCube,
    Family3D::kExtremeK, Family3D::kParaboloid,
};

std::vector<Point3> make3d(Family3D f, std::size_t n, std::uint64_t seed);
std::string family_name(Family3D f);

/// Sort points lexicographically (the precondition of the presorted
/// algorithms).
void sort_lex(std::vector<Point2>& pts);
void sort_lex(std::vector<Point3>& pts);

}  // namespace iph::geom
