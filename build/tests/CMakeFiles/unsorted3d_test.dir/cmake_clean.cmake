file(REMOVE_RECURSE
  "CMakeFiles/unsorted3d_test.dir/unsorted3d_test.cpp.o"
  "CMakeFiles/unsorted3d_test.dir/unsorted3d_test.cpp.o.d"
  "unsorted3d_test"
  "unsorted3d_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unsorted3d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
