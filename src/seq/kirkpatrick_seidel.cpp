#include "seq/kirkpatrick_seidel.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "geom/predicates.h"
#include "support/check.h"

namespace iph::seq {

using geom::Index;
using geom::Point2;

namespace {

/// sign(slope(p1->q1) - slope(p2->q2)); requires q.x > p.x in both pairs.
int slope_cmp(std::span<const Point2> pts, std::pair<Index, Index> a,
              std::pair<Index, Index> b) {
  return -geom::cross_diff_sign(pts[a.first], pts[a.second], pts[b.first],
                                pts[b.second]);
}

/// sign((u.y - K u.x) - (v.y - K v.x)) where K = slope(c->d), d.x > c.x.
int support_cmp(std::span<const Point2> pts, Index u, Index v, Index c,
                Index d) {
  return -geom::cross_diff_sign(pts[v], pts[u], pts[c], pts[d]);
}

}  // namespace

std::pair<Index, Index> ks_bridge(std::span<const Point2> pts,
                                  std::span<const Index> cand_in, double a) {
  std::vector<Index> cand(cand_in.begin(), cand_in.end());
  for (int guard = 0; guard < 128; ++guard) {
    IPH_CHECK(cand.size() >= 2);
    if (cand.size() == 2) {
      Index i = cand[0], j = cand[1];
      if (pts[i].x > pts[j].x) std::swap(i, j);
      IPH_CHECK(pts[i].x <= a && pts[j].x > a);
      return {i, j};
    }
    // Pair up. Equal-x pairs: the lower point can be neither bridge
    // endpoint (endpoints are topmost in their column), discard it.
    std::vector<std::pair<Index, Index>> pairs;
    std::vector<Index> next;
    pairs.reserve(cand.size() / 2);
    std::size_t t = 0;
    for (; t + 1 < cand.size(); t += 2) {
      Index u = cand[t], v = cand[t + 1];
      if (pts[u].x == pts[v].x) {
        next.push_back(pts[u].y >= pts[v].y ? u : v);
      } else {
        if (pts[u].x > pts[v].x) std::swap(u, v);
        pairs.emplace_back(u, v);
      }
    }
    if (t < cand.size()) next.push_back(cand[t]);  // odd leftover
    if (pairs.empty()) {
      // Only equal-x pairs this round; they already shrank the set.
      cand = std::move(next);
      continue;
    }
    // Median slope pair (c, d).
    const std::size_t mid = pairs.size() / 2;
    std::nth_element(pairs.begin(), pairs.begin() + mid, pairs.end(),
                     [&](const auto& x, const auto& y) {
                       return slope_cmp(pts, x, y) < 0;
                     });
    const Index c = pairs[mid].first, d = pairs[mid].second;
    // Extreme points of direction K = slope(c,d): among all maximizers of
    // y - Kx, pk has min x and pm has max x.
    Index best = cand[0];
    for (Index u : cand) {
      if (support_cmp(pts, u, best, c, d) > 0) best = u;
    }
    Index pk = best, pm = best;
    for (Index u : cand) {
      if (support_cmp(pts, u, best, c, d) == 0) {
        if (pts[u].x < pts[pk].x) pk = u;
        if (pts[u].x > pts[pm].x) pm = u;
      }
    }
    if (pts[pk].x <= a && pts[pm].x > a) {
      return {pk, pm};
    }
    if (pts[pm].x <= a) {
      // Support lies left of the line: bridge slope s* < K. In any pair
      // with slope >= K the left point can be neither endpoint.
      for (const auto& [p, q] : pairs) {
        if (slope_cmp(pts, {p, q}, {c, d}) >= 0) {
          next.push_back(q);
        } else {
          next.push_back(p);
          next.push_back(q);
        }
      }
    } else {
      // Support right of the line: s* > K; in pairs with slope <= K the
      // right point can be neither endpoint.
      for (const auto& [p, q] : pairs) {
        if (slope_cmp(pts, {p, q}, {c, d}) <= 0) {
          next.push_back(p);
        } else {
          next.push_back(p);
          next.push_back(q);
        }
      }
    }
    cand = std::move(next);
  }
  IPH_CHECK(false && "ks_bridge failed to converge");
  return {geom::kNone, geom::kNone};
}

namespace {

void connect(std::span<const Point2> pts, Index l, Index r,
             std::vector<Index>& s, std::vector<Index>& out) {
  // Median x of the candidate set, adjusted so that at least one
  // candidate lies strictly right of it (r does: pts[r].x > a).
  std::vector<Index> byx = s;
  const std::size_t mid = (byx.size() - 1) / 2;
  std::nth_element(byx.begin(), byx.begin() + mid, byx.end(),
                   [&](Index u, Index v) { return pts[u].x < pts[v].x; });
  double a = pts[byx[mid]].x;
  if (a >= pts[r].x) {
    // Median column is the right endpoint's: pick the largest x below it.
    a = pts[l].x;
    for (Index u : s) {
      if (pts[u].x < pts[r].x && pts[u].x > a) a = pts[u].x;
    }
  }
  const auto [i, j] = ks_bridge(pts, s, a);
  if (i != l) {
    std::vector<Index> left;
    for (Index u : s) {
      if (pts[u].x < pts[i].x || u == i) left.push_back(u);
    }
    connect(pts, l, i, left, out);
  }
  out.push_back(j);
  if (j != r) {
    std::vector<Index> right;
    for (Index u : s) {
      if (pts[u].x > pts[j].x || u == j) right.push_back(u);
    }
    connect(pts, j, r, right, out);
  }
}

}  // namespace

geom::UpperHull2D ks_upper_hull(std::span<const Point2> pts) {
  geom::UpperHull2D hull;
  const std::size_t n = pts.size();
  if (n == 0) return hull;
  Index l = 0, r = 0;
  for (std::size_t i = 1; i < n; ++i) {
    if (pts[i].x < pts[l].x || (pts[i].x == pts[l].x && pts[i].y > pts[l].y)) {
      l = static_cast<Index>(i);
    }
    if (pts[i].x > pts[r].x || (pts[i].x == pts[r].x && pts[i].y > pts[r].y)) {
      r = static_cast<Index>(i);
    }
  }
  hull.vertices.push_back(l);
  if (pts[l].x == pts[r].x) return hull;  // all points in one column
  std::vector<Index> s;
  s.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Keep one candidate per duplicate coordinate pair is unnecessary;
    // the bridge handles duplicates. Exclude only points sharing a column
    // with an endpoint but lying lower (they cannot be hull vertices and
    // the endpoints already represent those columns).
    const auto idx = static_cast<Index>(i);
    if (idx == l || idx == r) continue;
    if (pts[i].x == pts[l].x || pts[i].x == pts[r].x) continue;
    s.push_back(idx);
  }
  s.push_back(l);
  s.push_back(r);
  connect(pts, l, r, s, hull.vertices);
  return hull;
}

}  // namespace iph::seq
