file(REMOVE_RECURSE
  "CMakeFiles/e10_allocation.dir/e10_allocation.cpp.o"
  "CMakeFiles/e10_allocation.dir/e10_allocation.cpp.o.d"
  "e10_allocation"
  "e10_allocation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e10_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
