# Empty dependencies file for sample_compaction_test.
# This may be replaced when dependencies are built.
