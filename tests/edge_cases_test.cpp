// Edge-case and property coverage that the per-module suites do not
// reach: adversarial near-degenerate predicates, lockstep search
// properties, chain-op corner cases, machine accounting identities, and
// failure injection of the Ragde modulus fallback.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "geom/predicates.h"
#include "geom/validate.h"
#include "geom/workloads.h"
#include "hulltools/chain_ops.h"
#include "pram/allocation.h"
#include "pram/machine.h"
#include "primitives/lockstep_search.h"
#include "primitives/prefix_sum.h"
#include "primitives/ragde.h"
#include "primitives/random_sample.h"
#include "seq/chan2d.h"
#include "seq/kirkpatrick_seidel.h"
#include "seq/upper_hull.h"
#include "support/rng.h"

namespace iph {
namespace {

using geom::Index;
using geom::Point2;
using geom::Point3;

// --- predicates under adversarial perturbation --------------------------

TEST(EdgePredicates, NearCollinearUlpLadder) {
  // Walk c through 9 ulps around exact collinearity; the sign sequence
  // must be monotone -1...0...+1 with exactly one zero.
  const Point2 a{-1.0e6, -1.0e6}, b{1.0e6, 1.0e6};
  const double y0 = 123456.0;
  double y = y0;
  for (int i = 0; i < 4; ++i) y = std::nextafter(y, -1e9);
  int prev = -2;
  int zeros = 0;
  for (int i = 0; i < 9; ++i) {
    const int s = geom::orient2d(a, b, {y0, y});
    EXPECT_GE(s, prev);
    zeros += (s == 0);
    prev = s;
    y = std::nextafter(y, 1e9);
  }
  EXPECT_EQ(zeros, 1);
}

TEST(EdgePredicates, CrossDiffSignAntisymmetries) {
  support::Rng rng(5, 5);
  for (int t = 0; t < 500; ++t) {
    auto rp = [&] {
      return Point2{rng.next_double() * 2e6 - 1e6,
                    rng.next_double() * 2e6 - 1e6};
    };
    const Point2 a = rp(), b = rp(), c = rp(), d = rp();
    EXPECT_EQ(geom::cross_diff_sign(a, b, c, d),
              -geom::cross_diff_sign(b, a, c, d));
    EXPECT_EQ(geom::cross_diff_sign(a, b, c, d),
              -geom::cross_diff_sign(c, d, a, b));
  }
}

TEST(EdgePredicates, Orient3DTranslationInvariance) {
  support::Rng rng(7, 9);
  for (int t = 0; t < 200; ++t) {
    auto rp = [&] {
      return Point3{std::floor(rng.next_double() * 1000),
                    std::floor(rng.next_double() * 1000),
                    std::floor(rng.next_double() * 1000)};
    };
    Point3 a = rp(), b = rp(), c = rp(), d = rp();
    const int s = geom::orient3d(a, b, c, d);
    const double dx = std::floor(rng.next_double() * 100);
    for (Point3* p : {&a, &b, &c, &d}) {
      p->x += dx;
      p->y -= dx;
    }
    EXPECT_EQ(geom::orient3d(a, b, c, d), s);
  }
}

// --- lockstep search properties -----------------------------------------

TEST(EdgeLockstep, RandomMonotonePredicatesEveryRadix) {
  pram::Machine m(1);
  support::Rng rng(11, 3);
  for (int t = 0; t < 30; ++t) {
    const std::uint64_t len = 1 + rng.next_below(5000);
    const std::uint64_t split = rng.next_below(len + 1);
    std::vector<std::uint64_t> lo{0}, hi{len};
    for (std::uint64_t g : {2ull, 5ull, 17ull, 1000ull}) {
      const auto got = primitives::lockstep_partition_point(
          m, lo, hi, g,
          [&](std::uint64_t, std::uint64_t i) { return i < split; });
      EXPECT_EQ(got[0], split) << "len=" << len << " g=" << g;
    }
  }
}

// --- chain ops corner cases ----------------------------------------------

TEST(EdgeChainOps, MergeSingletonChains) {
  // Every chain holds one vertex: the merge is a pure hull-of-points.
  auto pts = geom::in_disk(40, 3);
  geom::sort_lex(pts);
  std::vector<hulltools::Chain> chains;
  std::vector<std::uint32_t> group_of;
  for (Index i = 0; i < pts.size(); ++i) {
    chains.push_back({i});
    group_of.push_back(0);
  }
  pram::Machine m(1);
  const auto merged =
      hulltools::merge_chain_groups(m, pts, chains, group_of, 1, 4);
  const auto want = seq::upper_hull_presorted(pts);
  ASSERT_EQ(merged[0].size(), want.vertices.size());
}

TEST(EdgeChainOps, MergeWithEmptyAndTinyChains) {
  std::vector<Point2> pts{{0, 0}, {1, 4}, {2, 1}, {3, 3}, {4, 0}};
  std::vector<hulltools::Chain> chains{{0, 1}, {}, {2}, {3, 4}};
  std::vector<std::uint32_t> group_of{0, 0, 0, 0};
  pram::Machine m(1);
  const auto merged =
      hulltools::merge_chain_groups(m, pts, chains, group_of, 1, 2);
  const auto want = seq::upper_hull_presorted(pts);
  ASSERT_EQ(merged[0].size(), want.vertices.size());
  for (std::size_t i = 0; i < merged[0].size(); ++i) {
    EXPECT_EQ(merged[0][i], want.vertices[i]);
  }
}

TEST(EdgeChainOps, CommonTangentCollinearChains) {
  // Two collinear segments: the tangent must join the outer endpoints.
  std::vector<Point2> pts{{0, 0}, {1, 1}, {4, 4}, {5, 5}};
  hulltools::Chain a{0, 1}, b{2, 3};
  pram::Machine m(1);
  const auto [ta, tb] = hulltools::common_tangent(m, pts, a, b, 2);
  EXPECT_EQ(ta, 0u);
  EXPECT_EQ(tb, 3u);
}

// --- sequential baseline corners ----------------------------------------

TEST(EdgeSeq, KSBridgeAllDuplicatePoints) {
  std::vector<Point2> pts(6, Point2{3, 3});
  pts.push_back({5, 1});
  std::vector<Index> cand(pts.size());
  std::iota(cand.begin(), cand.end(), Index{0});
  const auto [i, j] = seq::ks_bridge(pts, cand, 3.0);
  EXPECT_EQ(pts[i].x, 3);
  EXPECT_EQ(pts[j].x, 5);
}

TEST(EdgeSeq, ChanTangentCollinearPlateau) {
  // Chain with collinear stretch: tangent from a left point must pick
  // the FARTHEST collinear vertex.
  std::vector<Point2> pts{{0, 10}, {1, 8}, {2, 6}, {3, 4}, {4, 0}};
  // Upper hull of these is the full chain (concave-down? check: it's
  // actually convex) — build an explicit chain: vertices 0..3 are
  // collinear (slope -2), vertex 4 breaks off steeper.
  std::vector<Index> chain{0, 3, 4};  // strict hull of the set
  const Index t = seq::chan_tangent(pts, chain, Point2{-2, 16});
  // From (-2,16), slope to (0,10) is -3, to (3,4) is -2.4, to (4,0) is
  // -2.67: the max slope is vertex 3.
  EXPECT_EQ(chain[t], 3u);
}

// --- machine accounting identities ---------------------------------------

TEST(EdgeMachine, ChargeMatchesExplicitSteps) {
  pram::Machine a(1), b(1);
  a.charge(5, 100);
  for (int i = 0; i < 5; ++i) b.step(100, [](std::uint64_t) {});
  EXPECT_EQ(a.metrics().steps, b.metrics().steps);
  EXPECT_EQ(a.metrics().work, b.metrics().work);
  EXPECT_EQ(a.metrics().time_at_p, b.metrics().time_at_p);
}

TEST(EdgeMachine, TimeAtPMonotoneInP) {
  pram::Machine m(1);
  support::Rng rng(3, 3);
  for (int i = 0; i < 50; ++i) {
    m.step(rng.next_below(5000) + 1, [](std::uint64_t) {});
  }
  const auto& tm = m.metrics();
  for (std::size_t i = 1; i < pram::kTrackedProcCounts.size(); ++i) {
    EXPECT_LE(tm.time_at_p[i], tm.time_at_p[i - 1]);
    // T(p) >= max(steps, ceil(work/p)).
    const auto p = pram::kTrackedProcCounts[i];
    EXPECT_GE(tm.time_at_p[i], tm.steps);
    EXPECT_GE(tm.time_at_p[i] * p, tm.work);
  }
}

// --- Ragde fallback injection --------------------------------------------

TEST(EdgeRagde, AdversarialIndicesStillCompact) {
  // Indices in arithmetic progression with a stride sharing factors
  // with small primes — stresses the modulus search.
  pram::Machine m(1);
  for (std::uint64_t stride : {6ull, 30ull, 210ull, 2310ull}) {
    std::vector<std::uint8_t> flags(1 << 15, 0);
    std::vector<std::uint32_t> expect;
    for (std::uint64_t i = 1; i * stride < flags.size() && expect.size() < 12;
         ++i) {
      flags[i * stride] = 1;
      expect.push_back(static_cast<std::uint32_t>(i * stride));
    }
    const auto r = primitives::ragde_compact(m, flags, 16);
    ASSERT_TRUE(r.ok) << "stride " << stride;
    std::vector<std::uint32_t> got;
    for (auto v : r.slots) {
      if (v != primitives::kRagdeEmpty) got.push_back(v);
    }
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expect) << "stride " << stride;
  }
}

// --- sample with wrong size estimates -------------------------------------

TEST(EdgeSample, SurvivesBadSizeEstimates) {
  // m_est off by 4x in both directions: the sample may miss the lemma's
  // size window but must stay a valid subset and never crash.
  pram::Machine m(1, 5);
  for (const std::uint64_t est : {1000ull, 4000ull, 16000ull}) {
    const auto s = primitives::random_sample(
        m, 4000, [](std::uint64_t i) { return i % 2 == 0; }, est, 32);
    for (const auto idx : s.members) {
      EXPECT_EQ(idx % 2, 0u);
      EXPECT_LT(idx, 4000u);
    }
  }
}

// --- prefix sum property ---------------------------------------------------

TEST(EdgePrefix, RandomLengthsAndValues) {
  pram::Machine m(1);
  support::Rng rng(9, 9);
  for (int t = 0; t < 25; ++t) {
    const std::size_t n = rng.next_below(3000);
    std::vector<std::uint64_t> data(n);
    for (auto& v : data) v = rng.next_below(1 << 20);
    auto expect = data;
    std::uint64_t acc = 0;
    for (auto& v : expect) {
      const auto old = v;
      v = acc;
      acc += old;
    }
    EXPECT_EQ(primitives::prefix_sum_exclusive(m, data), acc);
    EXPECT_EQ(data, expect);
  }
}

}  // namespace
}  // namespace iph
