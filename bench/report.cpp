#include "report.h"

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <utility>

#include "support/env.h"
#include "trace/chrome_trace.h"
#include "trace/fit.h"
#include "trace/json.h"
#include "trace/report.h"

namespace iph::bench {

namespace {

struct Row {
  std::string name;      // full run name, e.g. "e03/65536/2/iterations:1"
  std::string function;  // "e03"
  std::string args;      // "65536/2"
  std::string label;     // SetLabel() value
  double x = 0;          // first argument (the sweep variable)
  double wall_ms = 0;
  std::vector<std::pair<std::string, double>> counters;
};

double first_arg(const std::string& args) {
  return args.empty() ? 0.0 : std::strtod(args.c_str(), nullptr);
}

std::string series_key(const Row& r) {
  const auto slash = r.args.find('/');
  const std::string rest = slash == std::string::npos
                               ? std::string()
                               : r.args.substr(slash + 1);
  return r.function + "/" + rest + "|" + r.label;
}

const double* row_counter(const Row& r, std::string_view name) {
  for (const auto& [k, v] : r.counters) {
    if (k == name) return &v;
  }
  return nullptr;
}

std::vector<std::string> split_csv(std::string_view s) {
  std::vector<std::string> out;
  while (!s.empty()) {
    const auto comma = s.find(',');
    out.emplace_back(s.substr(0, comma));
    if (comma == std::string_view::npos) break;
    s.remove_prefix(comma + 1);
  }
  return out;
}

/// Console passthrough + row capture.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      Row row;
      row.name = run.benchmark_name();
      row.function = run.run_name.function_name;
      row.args = run.run_name.args;
      row.label = run.report_label;
      row.x = first_arg(row.args);
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      row.wall_ms = run.real_accumulated_time / iters * 1e3;
      for (const auto& [k, c] : run.counters) {
        row.counters.emplace_back(k, static_cast<double>(c.value));
      }
      rows.push_back(std::move(row));
    }
  }

  std::vector<Row> rows;
};

struct TaggedRecorder {
  std::string tag;
  std::unique_ptr<trace::Recorder> rec;
};

// Benchmarks here run single-threaded (Iterations(1), threads=1), so a
// plain vector is safe.
std::vector<TaggedRecorder>& recorders() {
  static std::vector<TaggedRecorder> v;
  return v;
}

std::vector<std::pair<std::string, trace::Json>>& stats_blocks() {
  static std::vector<std::pair<std::string, trace::Json>> v;
  return v;
}

trace::Json row_json(const Row& r) {
  trace::Json j = trace::Json::object();
  j["name"] = r.name;
  j["function"] = r.function;
  j["args"] = r.args;
  j["label"] = r.label;
  j["x"] = r.x;
  j["wall_ms"] = r.wall_ms;
  trace::Json counters = trace::Json::object();
  for (const auto& [k, v] : r.counters) counters[k] = v;
  j["counters"] = std::move(counters);
  return j;
}

/// Evaluate one claim over the captured rows; returns its JSON record
/// and sets *ok.
trace::Json eval_claim(const Claim& c, const std::vector<Row>& rows,
                       bool* ok) {
  trace::Json out = trace::Json::object();
  out["name"] = c.name;
  out["counter"] = c.counter;
  out["shape"] = c.shape;
  out["tol"] = c.tol;
  if (c.aux_counter[0] != '\0') out["aux_counter"] = c.aux_counter;
  if (c.labels[0] != '\0') out["labels"] = c.labels;
  if (c.function[0] != '\0') out["function"] = c.function;

  trace::Shape shape;
  if (!trace::shape_from_name(c.shape, &shape)) {
    *ok = false;
    out["ok"] = false;
    out["error"] = std::string("unknown shape \"") + c.shape + "\"";
    return out;
  }
  const std::vector<std::string> wanted = split_csv(c.labels);

  // Group matching rows into series.
  std::vector<std::pair<std::string, std::vector<trace::SeriesPoint>>> series;
  for (const Row& r : rows) {
    if (c.function[0] != '\0' && r.function != c.function) continue;
    if (!wanted.empty()) {
      bool match = false;
      for (const std::string& l : wanted) match = match || l == r.label;
      if (!match) continue;
    }
    const double* y = row_counter(r, c.counter);
    if (y == nullptr) continue;
    const double* aux =
        c.aux_counter[0] != '\0' ? row_counter(r, c.aux_counter) : nullptr;
    const std::string key = series_key(r);
    std::vector<trace::SeriesPoint>* pts = nullptr;
    for (auto& [k, v] : series) {
      if (k == key) pts = &v;
    }
    if (pts == nullptr) {
      series.emplace_back(key, std::vector<trace::SeriesPoint>{});
      pts = &series.back().second;
    }
    pts->push_back({r.x, *y, aux != nullptr ? *aux : 0.0});
  }

  bool all_ok = !series.empty();
  trace::Json fits = trace::Json::array();
  for (const auto& [key, pts] : series) {
    const trace::FitResult f = trace::fit_series(shape, pts, c.tol);
    all_ok = all_ok && f.ok;
    trace::Json fj = trace::Json::object();
    fj["series"] = key;
    fj["points"] = static_cast<std::uint64_t>(pts.size());
    fj["ok"] = f.ok;
    fj["stat"] = f.stat;
    fj["detail"] = f.detail;
    fits.push_back(std::move(fj));
  }
  if (series.empty()) out["error"] = "no rows matched this claim";
  out["ok"] = all_ok;
  out["series"] = std::move(fits);
  *ok = all_ok;
  return out;
}

}  // namespace

std::vector<std::int64_t> n_sweep(std::initializer_list<std::int64_t> full) {
  const auto cap = static_cast<std::int64_t>(
      support::env_u64("IPH_BENCH_MAX_N", 0));
  std::vector<std::int64_t> out;
  for (std::int64_t n : full) {
    if (cap == 0 || n <= cap || out.empty()) out.push_back(n);
  }
  return out;
}

void attach_stats(const std::string& tag, trace::Json stats_json) {
  for (auto& [t, j] : stats_blocks()) {
    if (t == tag) {
      j = std::move(stats_json);
      return;
    }
  }
  stats_blocks().emplace_back(tag, std::move(stats_json));
}

trace::Recorder& instrument(pram::Machine& m, const std::string& tag) {
  static const bool enabled =
      !support::env_string("IPH_TRACE_DIR", "").empty() ||
      support::env_flag("IPH_BENCH_TRACE", false);
  if (!enabled) {
    static trace::Recorder detached;
    return detached;
  }
  for (auto& tr : recorders()) {
    if (tr.tag == tag) {
      tr.rec = std::make_unique<trace::Recorder>();
      tr.rec->attach(m);
      return *tr.rec;
    }
  }
  recorders().push_back({tag, std::make_unique<trace::Recorder>()});
  recorders().back().rec->attach(m);
  return *recorders().back().rec;
}

int run_bench_main(int argc, char** argv, const char* bench_id,
                   std::vector<Claim> claims) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  int exit_code = 0;
  trace::Json report = trace::Json::object();
  report["schema"] = "iph-bench-report-v1";
  report["bench"] = bench_id;
  report["provenance"] = trace::collect_provenance();

  if (reporter.rows.empty()) {
    std::fprintf(stderr, "[%s] no benchmark rows captured\n", bench_id);
    exit_code = 1;
  }
  trace::Json rows = trace::Json::array();
  for (const Row& r : reporter.rows) rows.push_back(row_json(r));
  report["rows"] = std::move(rows);

  // Claims.
  const bool skip_claims = support::env_flag("IPH_BENCH_SKIP_CLAIMS", false);
  trace::Json claims_json = trace::Json::array();
  for (const Claim& c : claims) {
    bool ok = true;
    trace::Json cj = eval_claim(c, reporter.rows, &ok);
    std::fprintf(stderr, "[%s] claim %-24s %s\n", bench_id, c.name,
                 ok ? "ok" : "MISFIT");
    if (!ok) {
      for (const auto& [k, v] : cj.members()) {
        if (k == "series") {
          for (const trace::Json& f : v.items()) {
            std::fprintf(stderr, "    %s: %s\n",
                         f.get_str("series").c_str(),
                         f.get_str("detail").c_str());
          }
        }
      }
      if (!skip_claims) exit_code = 1;
    }
    claims_json.push_back(std::move(cj));
  }
  report["claims"] = std::move(claims_json);
  report["claims_enforced"] = !skip_claims;

  // Baseline comparison on deterministic counters.
  const std::string baseline_dir =
      support::env_string("IPH_BENCH_BASELINE_DIR", "");
  if (!baseline_dir.empty()) {
    const std::string path =
        baseline_dir + "/BENCH_" + bench_id + ".json";
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "[%s] no baseline at %s (skipping compare)\n",
                   bench_id, path.c_str());
    } else {
      std::stringstream ss;
      ss << in.rdbuf();
      trace::Json baseline;
      std::string err;
      if (!trace::Json::parse(ss.str(), &baseline, &err)) {
        std::fprintf(stderr, "[%s] unparsable baseline %s: %s\n", bench_id,
                     path.c_str(), err.c_str());
        exit_code = 1;
      } else {
        const double tol = support::env_double("IPH_BENCH_TOL", 0.0);
        const trace::CompareResult cmp =
            trace::compare_counter_rows(report, baseline, tol);
        std::fprintf(stderr,
                     "[%s] baseline compare: %zu rows, %zu diffs%s\n",
                     bench_id, cmp.rows_compared, cmp.diffs.size(),
                     cmp.ok ? "" : " — FAIL");
        for (const std::string& d : cmp.diffs) {
          std::fprintf(stderr, "    %s\n", d.c_str());
        }
        if (!cmp.ok) exit_code = 1;
      }
    }
  }

  // Traces captured via instrument().
  const std::string trace_dir = support::env_string("IPH_TRACE_DIR", "");
  trace::Json traces = trace::Json::array();
  for (const TaggedRecorder& tr : recorders()) {
    trace::Json t = trace::Json::object();
    t["tag"] = tr.tag;
    t["anonymous_steps"] = tr.rec->anonymous_steps();
    t["phases"] = trace::phase_table_json(tr.rec->root());
    traces.push_back(std::move(t));
    if (!trace_dir.empty()) {
      std::string tag_safe = tr.tag;
      for (char& c : tag_safe) {
        if (c == '/' || c == ' ') c = '_';
      }
      const std::string tpath = trace_dir + "/" + bench_id + "." +
                                tag_safe + ".trace.json";
      std::ofstream out(tpath);
      if (out) {
        trace::write_chrome_trace(*tr.rec, out);
        std::fprintf(stderr, "[%s] chrome trace: %s\n", bench_id,
                     tpath.c_str());
      }
    }
  }
  if (traces.size() > 0) report["traces"] = std::move(traces);
  recorders().clear();

  // Service-level stats snapshots attached via attach_stats().
  if (!stats_blocks().empty()) {
    trace::Json stats = trace::Json::object();
    for (auto& [tag, j] : stats_blocks()) stats[tag] = std::move(j);
    report["stats"] = std::move(stats);
    stats_blocks().clear();
  }

  const std::string out_dir = support::env_string("IPH_BENCH_OUT_DIR", ".");
  const std::string out_path =
      out_dir + "/BENCH_" + std::string(bench_id) + ".json";
  std::ofstream out(out_path);
  if (!out) {
    std::fprintf(stderr, "[%s] cannot write %s\n", bench_id,
                 out_path.c_str());
    return 1;
  }
  out << report.dump(1) << '\n';
  std::fprintf(stderr, "[%s] report: %s (exit %d)\n", bench_id,
               out_path.c_str(), exit_code);
  return exit_code;
}

}  // namespace iph::bench
