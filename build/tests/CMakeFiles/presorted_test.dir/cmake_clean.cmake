file(REMOVE_RECURSE
  "CMakeFiles/presorted_test.dir/presorted_test.cpp.o"
  "CMakeFiles/presorted_test.dir/presorted_test.cpp.o.d"
  "presorted_test"
  "presorted_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/presorted_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
