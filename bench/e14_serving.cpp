// E14 — serving: batched small-query throughput vs one-Machine-per-
// request, at the same thread count. A serving deployment provisions
// its shards wide enough for the largest queries it accepts (here
// 32 threads — the n >= 2048 rows genuinely fan out, grain 2048), so a
// small query served naively pays the full threads-1 thread spawn +
// join per request. That fixed cost dominates small hulls: measured on
// the reference box, Machine(32) construction ~0.7 ms vs ~0.2 ms for
// the n = 64 hull run itself. The service's pre-warmed MachinePool +
// adaptive batcher amortize exactly that away — the PRAM execution is
// bit-identical by construction (checked every run below) — so for
// "small"-labelled rows the served configuration must clear at least
// 2x the solo throughput: inv_speedup = qps_solo / qps_served <= 0.5.
// "medium" and "large" rows document the crossover where the hull run
// itself takes over and the two configurations converge.
//
// Counters: the wall-clock serving axis (qps, qps_solo, inv_speedup,
// p50/p95/p99 e2e latency, mean coalesced batch size) plus the
// deterministic PRAM axis (steps/work summed over the request set,
// which the committed baseline pins bit-exactly — per-request PRAM cost
// is a pure function of (points, id, master seed), never of batching).
//
// A third column serves the same requests through the NATIVE execution
// engine (iph::exec, ServiceConfig::backend = kNative): no PRAM
// simulation at all, so it prices what the per-step synchronization tax
// costs the simulator path. Every native response is oracle-validated
// (geom/validate) and the backend-labeled serve counters must show the
// whole run on the native engine. The native claim: on small queries
// the native-served configuration is at least as fast as the
// simulator-served one (native_inv = qps / qps_native <= 1).
//
// A fourth pair of arms prices the tracing tax: the native engine
// behind a deliberately narrow service shape (1 shard, 1 worker, 2
// threads — nowhere for a per-request recorder cost to hide), run
// recorder-armed (the iph::obs flight recorder, on by default) and
// recorder-off, interleaved, best-of-5 each, 10 passes over the
// request set per timed rep. The gate:
// obs_inv = qps_native_noobs / qps_native_obs <= 1.05 on small rows —
// the always-on recorder may cost at most 5% of small-query
// throughput (EXPERIMENTS.md "Tracing overhead").
//
// Each row also cross-checks the service's own metrics registry
// (src/serve/stats.h) against the client tally — submitted/completed
// counts and the folded PRAM step/work totals must reconcile exactly —
// and attaches the registry snapshot to the run report under
// "stats"["n=<n>"], where benchreport renders it as a serving table.
// server_p99_ms is the server-recorded e2e p99 (histogram estimate)
// alongside the client-sampled p99_ms.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <future>
#include <string>
#include <vector>

#include "report.h"
#include "core/api.h"
#include "exec/backend.h"
#include "geom/validate.h"
#include "geom/workloads.h"
#include "obs/flight_recorder.h"
#include "pram/machine.h"
#include "serve/request.h"
#include "serve/service.h"
#include "serve/stats.h"
#include "stats/export.h"
#include "stats/stats.h"

namespace {

constexpr std::uint64_t kMasterSeed = 0x19910722ULL;
constexpr int kRequests = 40;
constexpr unsigned kThreads = 32;  ///< Shard width; see file comment.

std::vector<std::vector<iph::geom::Point2>> request_points(std::size_t n) {
  std::vector<std::vector<iph::geom::Point2>> pts;
  pts.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    pts.push_back(iph::geom::in_disk(n, 1000 + i));
  }
  return pts;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

void e14(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pts = request_points(n);

  iph::serve::ServiceConfig cfg;
  cfg.shards = 2;
  cfg.workers = 2;
  cfg.threads_per_shard = kThreads;
  cfg.queue_capacity = kRequests * 2;
  cfg.master_seed = kMasterSeed;
  cfg.batch.window = std::chrono::microseconds(200);

  double qps = 0, qps_solo = 0, qps_native = 0;
  double qps_native_obs = 0, qps_native_noobs = 0;
  double p50 = 0, p95 = 0, p99 = 0, mean_batch = 0;
  double native_p99 = 0;
  double server_p99 = 0;
  std::uint64_t steps = 0, work = 0, large = 0;
  for (auto _ : state) {
    // Solo: one Machine per request — the per-request spawn/join cost
    // the service exists to amortize — same thread count, same seeds.
    steps = work = 0;
    const auto s0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kRequests; ++i) {
      iph::Options opts;
      opts.threads = kThreads;
      opts.seed = iph::serve::derive_request_seed(
          kMasterSeed, static_cast<iph::serve::RequestId>(i + 1));
      const iph::Hull2D h = iph::upper_hull_2d(pts[i], opts);
      benchmark::DoNotOptimize(h.result.upper.vertices.data());
      steps += h.metrics.steps;
      work += h.metrics.work;
    }
    const auto s1 = std::chrono::steady_clock::now();
    const double solo_s = std::chrono::duration<double>(s1 - s0).count();
    qps_solo = kRequests / solo_s;

    // Served: same requests (same ids, so bit-identical PRAM runs)
    // through the batching service.
    iph::serve::HullService svc(cfg);
    std::vector<std::future<iph::serve::Response>> futs;
    futs.reserve(kRequests);
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kRequests; ++i) {
      iph::serve::Request r;
      r.id = static_cast<iph::serve::RequestId>(i + 1);
      r.points = pts[i];
      futs.push_back(svc.submit(std::move(r)));
    }
    std::vector<double> e2e;
    e2e.reserve(kRequests);
    std::uint64_t served_steps = 0, served_work = 0;
    for (auto& f : futs) {
      const iph::serve::Response resp = f.get();
      e2e.push_back(resp.metrics.e2e_ms);
      served_steps += resp.metrics.steps;
      served_work += resp.metrics.work;
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double served_s = std::chrono::duration<double>(t1 - t0).count();
    qps = kRequests / served_s;
    // The bit-identity acceptance check, enforced on every bench run:
    // batched PRAM cost must equal the solo runs' exactly.
    if (served_steps != steps || served_work != work) {
      state.SkipWithError("served PRAM metrics diverge from solo runs");
      return;
    }
    std::sort(e2e.begin(), e2e.end());
    p50 = percentile(e2e, 0.50);
    p95 = percentile(e2e, 0.95);
    p99 = percentile(e2e, 0.99);
    const iph::serve::StatsSnapshot stats = svc.stats();
    mean_batch = stats.mean_batch();
    large = stats.large_requests;

    // Native: same requests, same service shape, but every request
    // runs on the thread-parallel engine (no simulator). Responses are
    // validated against the independent oracle — this bench is also a
    // differential check — and the backend-labeled counters must show
    // the entire run as native-served.
    {
      iph::serve::ServiceConfig ncfg = cfg;
      ncfg.backend = iph::exec::BackendKind::kNative;
      iph::serve::HullService nsvc(ncfg);
      std::vector<std::future<iph::serve::Response>> nfuts;
      nfuts.reserve(kRequests);
      const auto u0 = std::chrono::steady_clock::now();
      for (int i = 0; i < kRequests; ++i) {
        iph::serve::Request r;
        r.id = static_cast<iph::serve::RequestId>(i + 1);
        r.points = pts[i];
        nfuts.push_back(nsvc.submit(std::move(r)));
      }
      std::vector<double> native_e2e;
      native_e2e.reserve(kRequests);
      for (int i = 0; i < kRequests; ++i) {
        const iph::serve::Response resp = nfuts[i].get();
        std::string err;
        if (resp.status != iph::serve::Status::kOk ||
            resp.metrics.backend != iph::exec::BackendKind::kNative ||
            !iph::geom::validate_upper_hull(pts[i], resp.hull.upper,
                                            &err) ||
            !iph::geom::validate_edge_above(pts[i], resp.hull, &err)) {
          state.SkipWithError("native-served response invalid");
          return;
        }
        native_e2e.push_back(resp.metrics.e2e_ms);
      }
      const auto u1 = std::chrono::steady_clock::now();
      qps_native =
          kRequests / std::chrono::duration<double>(u1 - u0).count();
      std::sort(native_e2e.begin(), native_e2e.end());
      native_p99 = percentile(native_e2e, 0.99);
      if constexpr (iph::stats::kEnabled) {
        namespace sn = iph::serve::statnames;
        const iph::stats::RegistrySnapshot nsnap =
            nsvc.stats_registry().snapshot();
        if (nsnap.counter_or0(iph::stats::labeled(
                sn::kBackendBase, "backend", "native")) !=
                static_cast<std::uint64_t>(kRequests) ||
            nsnap.counter_or0(iph::stats::labeled(
                sn::kBackendBase, "backend", "pram")) != 0) {
          state.SkipWithError("native run not fully native-served");
          return;
        }
      }
    }

    // Tracing overhead: the native engine again, but behind a
    // minimal-noise service shape — one shard, one worker, two
    // threads — recorder-armed (iph::obs, the default) vs recorder-off
    // (ServiceConfig::obs.enabled = false). The narrow shape is the
    // HARSHER configuration for this claim: no thread-spawn storm or
    // batching slack for a per-request recorder cost to hide behind,
    // and far less scheduler noise than the 32-wide serving shape.
    // Each rep times several passes over the request set so the
    // measured section is long enough to resolve a 5% bound; arms
    // interleave and each side keeps its best rep (best-of-best is
    // the standard way to compare two configurations under noise).
    // Small rows — the only ones the claim gates — get the most
    // passes and reps; medium/large rows document the ratio cheaply.
    {
      const bool small_row = n < 256;
      const int obs_reps = small_row ? 12 : 3;
      const int obs_passes = small_row ? 25 : 5;
      const auto obs_total =
          static_cast<std::uint64_t>(obs_passes) * kRequests;
      iph::serve::ServiceConfig ocfg = cfg;
      ocfg.backend = iph::exec::BackendKind::kNative;
      ocfg.shards = 1;
      ocfg.workers = 1;
      ocfg.threads_per_shard = 2;
      std::string arm_err;
      const auto overhead_arm = [&](bool obs_on) -> double {
        iph::serve::ServiceConfig acfg = ocfg;
        acfg.obs.enabled = obs_on;
        iph::serve::HullService osvc(acfg);
        const auto u0 = std::chrono::steady_clock::now();
        for (int pass = 0; pass < obs_passes; ++pass) {
          std::vector<std::future<iph::serve::Response>> fs;
          fs.reserve(kRequests);
          for (int i = 0; i < kRequests; ++i) {
            iph::serve::Request r;
            r.id = static_cast<iph::serve::RequestId>(
                pass * kRequests + i + 1);
            r.points = pts[i];
            fs.push_back(osvc.submit(std::move(r)));
          }
          for (auto& f : fs) {
            if (f.get().status != iph::serve::Status::kOk) {
              arm_err = "overhead arm response not ok";
              return -1;
            }
          }
        }
        const auto u1 = std::chrono::steady_clock::now();
        if constexpr (iph::stats::kEnabled) {
          // The armed arm must actually trace — one published request
          // trace per completion — or the overhead claim is vacuous
          // (a recorder that drops everything is trivially cheap).
          namespace on = iph::obs::statnames;
          const std::uint64_t published =
              osvc.stats_registry().snapshot().counter_or0(
                  iph::stats::labeled(on::kTracesPublishedBase, "kind",
                                      "request"));
          if (published != (obs_on ? obs_total : 0)) {
            arm_err = obs_on
                          ? "recorder did not publish every request"
                          : "obs-off arm still published traces";
            return -1;
          }
        }
        return static_cast<double>(obs_total) /
               std::chrono::duration<double>(u1 - u0).count();
      };
      qps_native_obs = qps_native_noobs = 0;
      for (int rep = 0; rep < obs_reps; ++rep) {
        const double q_on = overhead_arm(true);
        const double q_off = overhead_arm(false);
        if (q_on < 0 || q_off < 0) {
          state.SkipWithError(arm_err.c_str());
          return;
        }
        qps_native_obs = std::max(qps_native_obs, q_on);
        qps_native_noobs = std::max(qps_native_noobs, q_off);
      }
    }

    // Server-side cross-check: the service's own metrics registry must
    // agree with what the client observed — every request submitted,
    // accepted and completed, nothing rejected or expired, and the
    // server-recorded PRAM step/work totals equal to the client tally.
    // Compiled-out builds (IPH_STATS_COMPILED_OUT, the overhead-
    // measurement knob) read all-zero by design, so the check is
    // skipped there and no stats block is attached.
    if constexpr (!iph::stats::kEnabled) continue;
    namespace sn = iph::serve::statnames;
    const iph::stats::RegistrySnapshot snap = svc.stats_registry().snapshot();
    const auto want = static_cast<std::uint64_t>(kRequests);
    const std::uint64_t rejected =
        snap.counter_or0(iph::stats::labeled(sn::kRejectedBase, "reason",
                                             "full")) +
        snap.counter_or0(iph::stats::labeled(sn::kRejectedBase, "reason",
                                             "shutdown"));
    if (snap.counter_or0(sn::kSubmitted) != want ||
        snap.counter_or0(sn::kCompleted) != want || rejected != 0 ||
        snap.counter_or0(sn::kExpired) != 0) {
      state.SkipWithError("server stats registry does not reconcile");
      return;
    }
    if (snap.counter_or0(std::string(sn::kPramPrefix) + "steps_total") !=
            served_steps ||
        snap.counter_or0(std::string(sn::kPramPrefix) + "work_total") !=
            served_work) {
      state.SkipWithError("server pram counters diverge from responses");
      return;
    }
    if (const iph::stats::HistogramSnapshot* h =
            snap.histogram(sn::kE2eMs)) {
      server_p99 = h->quantile(0.99);
    }
    iph::bench::attach_stats("n=" + std::to_string(n),
                             iph::stats::to_json(snap));
  }

  state.counters["qps"] = qps;
  state.counters["qps_solo"] = qps_solo;
  state.counters["inv_speedup"] = qps_solo / qps;
  state.counters["qps_native"] = qps_native;
  state.counters["native_inv"] = qps / qps_native;
  state.counters["qps_native_obs"] = qps_native_obs;
  state.counters["qps_native_noobs"] = qps_native_noobs;
  state.counters["obs_inv"] = qps_native_noobs / qps_native_obs;
  state.counters["native_p99_ms"] = native_p99;
  state.counters["p50_ms"] = p50;
  state.counters["p95_ms"] = p95;
  state.counters["p99_ms"] = p99;
  state.counters["server_p99_ms"] = server_p99;
  state.counters["mean_batch"] = mean_batch;
  state.counters["large_requests"] = static_cast<double>(large);
  state.counters["steps"] = static_cast<double>(steps);
  state.counters["work"] = static_cast<double>(work);
  state.SetLabel(n < 256 ? "small" : (n < 2048 ? "medium" : "large"));
}

}  // namespace

BENCHMARK(e14)
    ->ArgsProduct({iph::bench::n_sweep({64, 128, 256, 1024, 4096})})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// The serving claims, on small-query rows:
//  * batch-speedup — batched throughput is at least 2x one-Machine-
//    per-request at the same thread count (inv_speedup <= 0.5). Large
//    rows are excluded — there the hull run itself dominates and the
//    two configurations converge (EXPERIMENTS.md E14).
//  * native-speedup — the native engine serves small queries at least
//    as fast as the simulator path (native_inv = qps/qps_native <= 1):
//    the in-place claim gating would be meaningless if the "fast path"
//    lost to the metered oracle it bypasses.
//  * obs-overhead — the always-on flight recorder (iph::obs) costs at
//    most 5% of small-query native throughput versus the same service
//    with the recorder off (obs_inv = qps_native_noobs /
//    qps_native_obs <= 1.05), measured behind the narrow 1×1×2 shape
//    where a per-request tracing tax is most visible. The armed arm is
//    cross-checked to have published one trace per request, so the
//    claim prices real tracing, not a recorder that drops everything.
IPH_BENCH_MAIN("e14",
               {"batch-speedup", "inv_speedup", "below_const", 0.5, "",
                "small"},
               {"native-speedup", "native_inv", "below_const", 1.0, "",
                "small"},
               {"obs-overhead", "obs_inv", "below_const", 1.05, "",
                "small"})
