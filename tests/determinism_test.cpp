// Bit-reproducibility across hardware thread counts: the simulator's
// contract is that a run is a pure function of (input, seed), never of
// the pool scheduling. Every randomized algorithm is swept over 1, 2, 4,
// 8 and hardware_concurrency threads and must produce identical outputs
// AND identical PRAM metrics.
#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <tuple>
#include <vector>

#include "core/api.h"
#include "core/fallback2d.h"
#include "core/presorted_constant.h"
#include "core/presorted_logstar.h"
#include "core/unsorted2d.h"
#include "core/unsorted3d.h"
#include "geom/workloads.h"
#include "pram/machine.h"
#include "serve/batcher.h"
#include "serve/request.h"

namespace iph {
namespace {

using geom::Point2;

struct Fingerprint {
  std::vector<geom::Index> vertices;
  std::vector<geom::Index> pointers;
  std::uint64_t steps = 0;
  std::uint64_t work = 0;

  bool operator==(const Fingerprint&) const = default;
};

class ThreadDeterminism : public ::testing::TestWithParam<int> {};

TEST_P(ThreadDeterminism, AllAlgorithmsBitIdentical) {
  const int algo = GetParam();
  auto run = [&](unsigned threads) {
    Fingerprint f;
    switch (algo) {
      case 0: {
        const auto pts = geom::in_disk(3000, 5);
        pram::Machine m(threads, 99);
        const auto r = core::unsorted_hull_2d(m, pts);
        f = {r.upper.vertices, r.edge_above, m.metrics().steps,
             m.metrics().work};
        break;
      }
      case 1: {
        auto pts = geom::gaussian2(4000, 5);
        geom::sort_lex(pts);
        pram::Machine m(threads, 99);
        const auto r = core::presorted_constant_hull(m, pts);
        f = {r.upper.vertices, r.edge_above, m.metrics().steps,
             m.metrics().work};
        break;
      }
      case 2: {
        auto pts = geom::in_square(8000, 5);
        geom::sort_lex(pts);
        pram::Machine m(threads, 99);
        const auto r = core::presorted_logstar_hull(m, pts);
        f = {r.upper.vertices, r.edge_above, m.metrics().steps,
             m.metrics().work};
        break;
      }
      case 3: {
        const auto pts = geom::with_duplicates(2500, 5);
        pram::Machine m(threads, 99);
        const auto r = core::fallback_hull_2d(m, pts);
        f = {r.upper.vertices, r.edge_above, m.metrics().steps,
             m.metrics().work};
        break;
      }
      default: {
        const auto pts = geom::in_cube(900, 5);
        pram::Machine m(threads, 99);
        const auto r = core::unsorted_hull_3d(m, pts);
        std::vector<geom::Index> verts;
        for (const auto& t : r.facets) {
          verts.push_back(t.a);
          verts.push_back(t.b);
          verts.push_back(t.c);
        }
        f = {verts, r.facet_above, m.metrics().steps, m.metrics().work};
        break;
      }
    }
    return f;
  };
  const Fingerprint base = run(1);
  std::vector<unsigned> sweep{2u, 4u, 8u};
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  if (std::find(sweep.begin(), sweep.end(), hw) == sweep.end() && hw != 1) {
    sweep.push_back(hw);
  }
  for (unsigned threads : sweep) {
    EXPECT_EQ(run(threads), base) << "threads=" << threads;
  }
}

std::string algo_name(const ::testing::TestParamInfo<int>& info) {
  static const char* const names[] = {"unsorted2d", "presorted_constant",
                                      "presorted_logstar", "fallback2d",
                                      "unsorted3d"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, ThreadDeterminism,
                         ::testing::Values(0, 1, 2, 3, 4), algo_name);

// --- serving layer: batched == solo -----------------------------------
//
// The serve determinism contract (serve/request.h): a request executes
// under derive_request_seed(master, id), so its result is a pure
// function of (points, id, alpha, master seed) — NOT of which other
// requests were coalesced into the same batch, of arrival order, or of
// the shard's thread count. Batched runs must be bit-identical to solo
// runs of each request.
TEST(ServeDeterminism, BatchedEqualsSoloBitIdentical) {
  constexpr std::uint64_t kMaster = 0xfeedULL;
  std::vector<serve::Request> reqs;
  for (serve::RequestId id = 1; id <= 6; ++id) {
    serve::Request r;
    r.id = id;
    r.points = geom::in_disk(200 + 37 * id, id);
    reqs.push_back(std::move(r));
  }

  pram::Machine batch_machine(2, kMaster);
  const auto batched =
      serve::execute_batch(batch_machine, reqs, kMaster);
  ASSERT_EQ(batched.size(), reqs.size());

  for (std::size_t i = 0; i < reqs.size(); ++i) {
    // Solo reference: own machine, different thread count on purpose.
    pram::Machine solo(4,
                       serve::derive_request_seed(kMaster, reqs[i].id));
    Options opts;
    opts.alpha = reqs[i].alpha;
    const Hull2D h = upper_hull_2d(solo, reqs[i].points, opts);
    EXPECT_EQ(batched[i].hull.upper.vertices, h.result.upper.vertices)
        << "request " << reqs[i].id;
    EXPECT_EQ(batched[i].hull.edge_above, h.result.edge_above);
    EXPECT_EQ(batched[i].metrics.steps, h.metrics.steps);
    EXPECT_EQ(batched[i].metrics.work, h.metrics.work);
    EXPECT_EQ(batched[i].metrics.max_active, h.metrics.max_active);
  }

  // Batch composition must not matter: reversed order, one machine.
  std::vector<serve::Request> reversed(reqs.rbegin(), reqs.rend());
  pram::Machine other(1, 0xdeadULL);  // pool seed is irrelevant too
  const auto rebatched = serve::execute_batch(other, reversed, kMaster);
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const auto& fwd = batched[i];
    const auto& rev = rebatched[reqs.size() - 1 - i];
    ASSERT_EQ(fwd.id, rev.id);
    EXPECT_EQ(fwd.hull.upper.vertices, rev.hull.upper.vertices);
    EXPECT_EQ(fwd.hull.edge_above, rev.hull.edge_above);
    EXPECT_EQ(fwd.metrics.steps, rev.metrics.steps);
    EXPECT_EQ(fwd.metrics.work, rev.metrics.work);
    EXPECT_EQ(fwd.metrics.seed, rev.metrics.seed);
  }
}

}  // namespace
}  // namespace iph
