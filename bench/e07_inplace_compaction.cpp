// E7 — Lemma 3.2: in-place approximate compaction runs in O(1) PRAM
// steps (1/delta group-refinement iterations) with o(m) workspace and
// never moves an input element.
//
// Reproduction target: steps and iterations flat across a 256x sweep of
// the array size m; slot-table area stays O(bound^2); the Ragde modulus
// search never resorts to its fallback on these inputs.
#include <benchmark/benchmark.h>

#include "report.h"
#include "pram/machine.h"
#include "primitives/inplace_compaction.h"
#include "support/rng.h"

namespace {

void e07(benchmark::State& state) {
  const auto m_size = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::uint64_t>(state.range(1));
  std::vector<std::uint8_t> flags(m_size, 0);
  iph::support::Rng rng(m_size ^ k, 3);
  for (std::uint64_t i = 0; i < k; ++i) {
    flags[rng.next_below(m_size)] = 1;
  }
  iph::primitives::InplaceCompactionResult r;
  std::uint64_t steps = 0;
  std::uint64_t peak_aux = 0;
  for (auto _ : state) {
    iph::pram::Machine m(1, 9);
    r = iph::primitives::inplace_compact(m, flags, k);
    steps = m.metrics().steps;
    peak_aux = m.metrics().peak_aux;
  }
  state.counters["steps"] = static_cast<double>(steps);
  state.counters["iterations"] = r.iterations;
  state.counters["ok"] = r.ok ? 1 : 0;
  state.counters["area"] = static_cast<double>(r.slots.size());
  state.counters["area/k^2"] =
      static_cast<double>(r.slots.size()) / static_cast<double>(k * k);
  state.counters["ragde_fallback"] = r.used_fallback ? 1 : 0;
  state.counters["peak_aux"] = static_cast<double>(peak_aux);
  state.counters["k"] = static_cast<double>(k);
}

}  // namespace

BENCHMARK(e07)
    ->ArgsProduct({iph::bench::n_sweep({1 << 10, 1 << 14, 1 << 18}),
                   {4, 16, 64}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Lemma 3.2: O(1) time — steps flat across a 256x sweep of m (measured
// 8-22, driven by the 1-3 refinement iterations), slot-table area within
// the lemma's budget (measured area/k^2 <= 1.06), Ragde fallback idle,
// and the measured auxiliary workspace stays under the lemma's
// m^(4e+d) budget: peak_aux <= tol * k^4 * m^(1/4), with k = m^e the
// compaction bound and delta = 1/4 matching inplace_compact's default
// (EXPERIMENTS.md E7).
IPH_BENCH_MAIN("e07",
               {"steps-constant", "steps", "flat", 3.5},
               {"area-bounded", "area/k^2", "below_const", 2.0},
               {"ragde-idle", "ragde_fallback", "below_const", 0.5},
               {"aux-below-m4eps-delta", "peak_aux", "m_4eps_delta", 2.5,
                "k"})
