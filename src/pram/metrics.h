// PRAM cost accounting.
//
// Every bound in the paper is phrased in the PRAM cost model:
//   time  = number of synchronous steps,
//   procs = number of (virtual) processors alive in a step,
//   work  = sum over steps of active processors,
//   space = shared memory cells alive at any instant.
// Metrics records exactly these. In addition, for Lemma 7 (Matias-Vishkin
// processor allocation, Section 5 of the paper) we track, online, the
// simulated time T(p) = sum over steps of ceil(active/p) for a fixed
// ladder of p values, so bench e10 can report the T = t + w/p trade-off
// without storing a per-step trace.
//
// The space axis is a cell-lifetime ledger: allocations are registered
// with the machine (Machine::space_alloc / pram::SpaceLease) under one of
// two kinds, and the ledger keeps the current gauges plus high-water
// marks. The split makes "in-place" directly measurable: the paper's
// model gives every element a virtual processor with O(1) private
// registers, so per-element state scaling with the input is FOOTPRINT,
// while the shared scratch the in-place lemmas bound (Theta(k) sample
// cells, the m^(4e+d) compaction area) is AUXILIARY workspace — the
// number the claims gate on.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>

namespace iph::pram {

/// Processor counts for which simulated time T(p) is tracked online.
inline constexpr std::array<std::uint64_t, 12> kTrackedProcCounts = {
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096};

/// Ledger category of a space registration (see file comment).
enum class SpaceKind : std::uint8_t {
  kInput,  ///< Input cells + per-element standing-by registers.
  kAux,    ///< Shared auxiliary workspace — what "in-place" bounds.
};

struct Metrics {
  std::uint64_t steps = 0;       ///< PRAM time (synchronous steps).
  std::uint64_t work = 0;        ///< Sum of active processors over steps.
  std::uint64_t max_active = 0;  ///< Processor requirement (peak).
  /// Combining-cell write conflicts: same-step writes to one cell beyond
  /// the first (pram/conflict.h). 0 unless the Machine counts conflicts;
  /// when counted, a pure function of the program, never of the host
  /// schedule.
  std::uint64_t cw_conflicts = 0;
  /// T(p) = sum_steps ceil(active/p) for p in kTrackedProcCounts.
  std::array<std::uint64_t, kTrackedProcCounts.size()> time_at_p{};

  // --- space ledger (gauges + watermarks; host-side, deterministic) ---
  std::uint64_t input_cells = 0;    ///< Currently registered input cells.
  std::uint64_t aux_cells = 0;      ///< Currently live auxiliary cells.
  std::uint64_t peak_live = 0;      ///< max over time of input + aux.
  std::uint64_t peak_aux = 0;       ///< max over time of aux alone.
  std::uint64_t peak_input = 0;     ///< max over time of input footprint.
  std::uint64_t space_allocs = 0;   ///< Ledger allocate events.
  std::uint64_t space_releases = 0; ///< Ledger release events.

  std::uint64_t live_cells() const noexcept {
    return input_cells + aux_cells;
  }

  void record_step(std::uint64_t active, std::uint64_t conflicts = 0) noexcept {
    steps += 1;
    work += active;
    if (active > max_active) max_active = active;
    cw_conflicts += conflicts;
    for (std::size_t i = 0; i < kTrackedProcCounts.size(); ++i) {
      const std::uint64_t p = kTrackedProcCounts[i];
      time_at_p[i] += (active + p - 1) / p;
    }
  }

  /// `count` uniform steps of `active` processors each, in O(1): the
  /// per-step ceil(active/p) terms are all equal, so they batch. Used by
  /// Machine::charge for analytically-accounted sub-procedures.
  void record_steps(std::uint64_t count, std::uint64_t active) noexcept {
    if (count == 0) return;
    steps += count;
    work += count * active;
    if (active > max_active) max_active = active;
    for (std::size_t i = 0; i < kTrackedProcCounts.size(); ++i) {
      const std::uint64_t p = kTrackedProcCounts[i];
      time_at_p[i] += count * ((active + p - 1) / p);
    }
  }

  void record_space_alloc(std::uint64_t cells, SpaceKind kind) noexcept {
    (kind == SpaceKind::kAux ? aux_cells : input_cells) += cells;
    ++space_allocs;
    if (aux_cells > peak_aux) peak_aux = aux_cells;
    if (input_cells > peak_input) peak_input = input_cells;
    if (live_cells() > peak_live) peak_live = live_cells();
  }

  void record_space_release(std::uint64_t cells, SpaceKind kind) noexcept {
    std::uint64_t& gauge =
        kind == SpaceKind::kAux ? aux_cells : input_cells;
    gauge -= cells <= gauge ? cells : gauge;  // saturating: ledger bug,
                                              // not UB, on a double free
    ++space_releases;
  }

  /// Accumulate another run's counters into this one: counters sum,
  /// peaks max, gauges are left alone (they describe *this* machine's
  /// live state, not the other run's). The serving batcher uses this to
  /// fold per-request runs (Machine::reset clears metrics per request)
  /// into a batch total for the service-level stats registry.
  void add_counters(const Metrics& o) noexcept {
    steps += o.steps;
    work += o.work;
    cw_conflicts += o.cw_conflicts;
    for (std::size_t i = 0; i < time_at_p.size(); ++i) {
      time_at_p[i] += o.time_at_p[i];
    }
    space_allocs += o.space_allocs;
    space_releases += o.space_releases;
    if (o.max_active > max_active) max_active = o.max_active;
    if (o.peak_live > peak_live) peak_live = o.peak_live;
    if (o.peak_aux > peak_aux) peak_aux = o.peak_aux;
    if (o.peak_input > peak_input) peak_input = o.peak_input;
  }
};

/// Visit the summable (monotonic across add_counters) counters of a
/// Metrics as (name, value) pairs, in a fixed order. External
/// aggregators — the serving stats registry folds PRAM totals into its
/// counters this way — stay decoupled from the Metrics field list:
/// build name-keyed sinks once with a default Metrics, then fold by the
/// same fixed order. Peaks and live gauges are excluded; they are not
/// summable.
template <class Fn>
void for_each_summable_counter(const Metrics& m, Fn&& fn) {
  fn("steps", m.steps);
  fn("work", m.work);
  fn("cw_conflicts", m.cw_conflicts);
  fn("space_allocs", m.space_allocs);
  fn("space_releases", m.space_releases);
}

/// Per-phase accounting: the counter fields are deltas over the phase's
/// lifetime; the peak fields are PHASE-LOCAL maxima, observed only while
/// the phase was open (a quiet phase nested in a busy run reports its own
/// small peaks, not the run's carried globals). Built by Machine::Phase;
/// peaks come from the machine's phase-peak stack, never from differencing
/// Metrics (peaks are not differencable).
struct PhaseDelta {
  std::uint64_t invocations = 0;
  std::uint64_t steps = 0;
  std::uint64_t work = 0;
  std::uint64_t cw_conflicts = 0;
  std::array<std::uint64_t, kTrackedProcCounts.size()> time_at_p{};
  std::uint64_t max_active = 0;  ///< Peak active procs while open.
  std::uint64_t peak_live = 0;   ///< Peak input + aux cells while open.
  std::uint64_t peak_aux = 0;    ///< Peak aux cells while open.

  /// Accumulate a re-entry: counters sum, peaks max.
  void add(const PhaseDelta& o) noexcept {
    invocations += o.invocations;
    steps += o.steps;
    work += o.work;
    cw_conflicts += o.cw_conflicts;
    for (std::size_t i = 0; i < time_at_p.size(); ++i) {
      time_at_p[i] += o.time_at_p[i];
    }
    if (o.max_active > max_active) max_active = o.max_active;
    if (o.peak_live > peak_live) peak_live = o.peak_live;
    if (o.peak_aux > peak_aux) peak_aux = o.peak_aux;
  }
};

/// Counter deltas between two Metrics snapshots (peak fields of the
/// result stay 0 — supply phase-local peaks separately, see PhaseDelta).
inline PhaseDelta counter_delta(const Metrics& now,
                                const Metrics& earlier) noexcept {
  PhaseDelta d;
  d.steps = now.steps - earlier.steps;
  d.work = now.work - earlier.work;
  d.cw_conflicts = now.cw_conflicts - earlier.cw_conflicts;
  for (std::size_t i = 0; i < d.time_at_p.size(); ++i) {
    d.time_at_p[i] = now.time_at_p[i] - earlier.time_at_p[i];
  }
  return d;
}

/// Named per-phase roll-up (e.g. "sample", "base-solve", "sweep").
using PhaseMetrics = std::map<std::string, PhaseDelta>;

}  // namespace iph::pram
