// Approximate compaction (Lemma 2.1, after Ragde ICALP'90).
//
// Contract of the lemma: given an array of size n containing at most k
// non-zero elements, determine whether k < n^(1/4), and if so compress
// the non-zero elements into an area of size k^4, in O(1) time with n
// processors, deterministically, on a CRCW PRAM.
//
// Realization (documented substitution, see DESIGN.md §8): Ragde's
// deterministic construction searches for an injective modulus; we keep
// the modulus-search structure but test a FIXED constant number (8) of
// prime moduli p >= bound^2 in parallel CRCW rounds — each round is one
// scatter + one collision check. If every candidate collides (provably
// impossible for k <= bound when the candidate set contains an injective
// prime; merely unlikely otherwise) we fall back to an exact rank-based
// placement using a Sum-CRCW tally, still O(1) steps, and report it via
// used_fallback so the benches can count how often the primary scheme
// suffices (e07/e09 observe: always, on every workload they generate).
// The area is the chosen prime < 2*bound^2 <= bound^4 for bound >= 2,
// within the lemma's k^4 budget.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pram/machine.h"

namespace iph::primitives {

inline constexpr std::uint32_t kRagdeEmpty = 0xffffffffu;

struct RagdeResult {
  /// True iff every flagged element was placed into `slots`.
  bool ok = false;
  /// True iff the tally fallback produced the placement.
  bool used_fallback = false;
  /// Compact area: slots[j] is an input index or kRagdeEmpty. Size is the
  /// chosen modulus (< 2*bound^2), or exactly the element count when the
  /// fallback placed them densely.
  std::vector<std::uint32_t> slots;
};

/// Compact the indices i with flags[i] != 0 into a small area.
/// `bound`: the k of the lemma (callers pass ~n^(1/4) or the failure
/// budget); ok=false means more than `bound`^2-ish elements were present
/// (the "determine whether k < n^(1/4)" half of the lemma).
RagdeResult ragde_compact(pram::Machine& m,
                          std::span<const std::uint8_t> flags,
                          std::uint64_t bound);

}  // namespace iph::primitives
