// E12 — Observations 2.2-2.3 and Lemma 2.4: the constant-time brute
// force building blocks.
//
// Reproduction target: brute hull and brute bridge run in O(1) PRAM
// steps with ~q^3 processor-work; the folklore Lemma 2.4 hull runs in
// O(k)-flavoured steps with work ~q^(1+1/k) — our realization's measured
// exponent (reported as the `exponent` counter: log_q(work)) sits
// between 1 + 1/k and 1 + 2/k, the documented gap of DESIGN.md §8.
#include <benchmark/benchmark.h>

#include <cmath>
#include <numeric>

#include "report.h"
#include "geom/workloads.h"
#include "hulltools/folklore_hull.h"
#include "pram/machine.h"
#include "primitives/brute_force_hull.h"
#include "primitives/brute_force_lp.h"

namespace {

void e12_brute_hull(benchmark::State& state) {
  const auto q = static_cast<std::size_t>(state.range(0));
  auto pts = iph::geom::in_disk(q, 5);
  iph::geom::sort_lex(pts);
  iph::pram::Metrics last;
  for (auto _ : state) {
    iph::pram::Machine m(1, 3);
    benchmark::DoNotOptimize(
        iph::primitives::brute_hull_presorted(m, pts, 0, q));
    last = m.metrics();
  }
  iph::bench::report_metrics(state, last);
  state.counters["work/q^3"] =
      static_cast<double>(last.work) / std::pow(static_cast<double>(q), 3);
}

void e12_brute_bridge(benchmark::State& state) {
  const auto q = static_cast<std::size_t>(state.range(0));
  const auto pts = iph::geom::in_disk(q, 7);
  std::vector<iph::geom::Index> idx(q);
  std::iota(idx.begin(), idx.end(), iph::geom::Index{0});
  iph::pram::Metrics last;
  for (auto _ : state) {
    iph::pram::Machine m(1, 3);
    benchmark::DoNotOptimize(
        iph::primitives::brute_bridge_2d(m, pts, idx, 0));
    last = m.metrics();
  }
  iph::bench::report_metrics(state, last);
  state.counters["work/q^3"] =
      static_cast<double>(last.work) / std::pow(static_cast<double>(q), 3);
}

void e12_folklore(benchmark::State& state) {
  const auto q = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<unsigned>(state.range(1));
  auto pts = iph::geom::in_disk(q, 9);
  iph::geom::sort_lex(pts);
  iph::pram::Metrics last;
  for (auto _ : state) {
    iph::pram::Machine m(1, 3);
    benchmark::DoNotOptimize(
        iph::hulltools::folklore_hull_presorted(m, pts, 0, q, k));
    last = m.metrics();
  }
  iph::bench::report_metrics(state, last);
  state.counters["exponent"] =
      std::log(static_cast<double>(last.work)) /
      std::log(static_cast<double>(q));
  state.counters["claimed_1+1/k"] = 1.0 + 1.0 / k;
}

}  // namespace

BENCHMARK(e12_brute_hull)->Arg(32)->Arg(64)->Arg(128)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(e12_brute_bridge)->Arg(32)->Arg(64)->Arg(128)->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(e12_folklore)
    ->ArgsProduct({iph::bench::n_sweep({1 << 10, 1 << 13, 1 << 16}),
                   {2, 3, 4}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Obs. 2.2/2.3: brute hull and bridge take exactly 4 steps with
// work/q^3 = 1.02-1.06. Lemma 2.4 (folklore): steps flat per k, and the
// measured work exponent log_q(work) stays below 1.75 — between the
// claimed 1 + 1/k and our realization's 1 + 2/k gap (EXPERIMENTS.md
// E12, DESIGN.md §8).
IPH_BENCH_MAIN("e12",
               {"brute-hull-steps", "steps", "flat", 1.5, "", "",
                "e12_brute_hull"},
               {"brute-bridge-steps", "steps", "flat", 1.5, "", "",
                "e12_brute_bridge"},
               {"brute-work-q3", "work/q^3", "below_const", 2.0},
               {"folklore-steps", "steps", "flat", 2.5, "", "",
                "e12_folklore"},
               {"folklore-exponent", "exponent", "below_const", 2.5, "",
                "", "e12_folklore"})
