// The CRCW PRAM simulator.
//
// A Machine executes synchronous PRAM steps: step(n, fn) runs fn(pid) for
// every virtual processor pid in [0, n), then barriers. One call = one unit
// of PRAM time; the work charged is the number of active processors. The
// virtual processors are multiplexed onto a persistent pool of hardware
// threads (this is exactly the Matias-Vishkin simulation of Lemma 7 in the
// paper; Metrics tracks both the ideal PRAM time and T(p) for a ladder of
// p values).
//
// Concurrency discipline inside a step (enforced mechanically by the
// shadow.h step-race checker when IPH_PRAM_CHECK=1 / IPH_ENABLE_PRAM_CHECK
// is set, and validated by the test suite):
//   * a processor may freely read shared memory written in *earlier* steps;
//   * racing writes in the *same* step must go through the combining cells
//     of cells.h (Or/Tally/Min/Max/ClaimSlot/FlagArray);
//   * a plain write is legal only to locations owned by exactly one pid —
//     write sites assert this by routing through pram::tracked_write().
//
// Randomness: rng(pid) returns a counter-based generator keyed on
// (seed, current step, pid), so results are bit-reproducible regardless of
// how the pool schedules chunks.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "pram/conflict.h"
#include "pram/metrics.h"
#include "pram/shadow.h"
#include "support/rng.h"

namespace iph::pram {

/// Host-side observation hooks for structured tracing (trace::Recorder
/// implements this). All callbacks run on the host thread between or
/// around steps — never inside fn(pid) — so implementations need no
/// locking, and everything they see except wall-clock is deterministic
/// given (input, seed). The observer must outlive the Machine (or be
/// detached with set_observer(nullptr) first).
class PhaseObserver {
 public:
  virtual ~PhaseObserver() = default;
  /// A Machine::Phase opened/closed; step_index is the machine's step
  /// counter at that instant. Calls nest properly.
  virtual void on_phase_open(const std::string& name,
                             std::uint64_t step_index) = 0;
  virtual void on_phase_close(std::uint64_t step_index) = 0;
  /// One synchronous step completed with `active` charged processors and
  /// `conflicts` combining-write conflicts (0 unless counting is on).
  virtual void on_step(std::uint64_t active, std::uint64_t conflicts) = 0;
  /// Machine::charge accounted `steps` analytic steps of `work_per_step`.
  virtual void on_charge(std::uint64_t steps,
                         std::uint64_t work_per_step) = 0;
  /// The space ledger changed: `input_cells`/`aux_cells` are the new
  /// gauges after a Machine::space_alloc/space_release (pram/metrics.h,
  /// SpaceKind). Defaulted so observers that only care about time/work
  /// need not override.
  virtual void on_space(std::uint64_t input_cells,
                        std::uint64_t aux_cells) {
    (void)input_cells;
    (void)aux_cells;
  }
};

class Machine {
 public:
  /// threads == 0 selects support::env_threads().
  explicit Machine(unsigned threads = 0,
                   std::uint64_t seed = 0x19910722ULL);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Return the machine to its just-constructed state under a new seed,
  /// KEEPING the warm thread pool: step index, metrics, and per-phase
  /// accounting restart from zero, so a subsequent program is
  /// bit-identical to running it on a fresh Machine(threads(), seed).
  /// This is the reuse hook the serving layer's MachinePool leases are
  /// built on (a Machine spin-up costs threads()-1 thread spawns; a
  /// reset costs none). Host-side only, and only between programs: no
  /// Phase may be open. An attached observer stays attached (its
  /// recording simply continues); the step-race checker, if armed, gets
  /// a fresh shadow map so stale same-step stamps from the previous
  /// program cannot alias the restarted step numbering.
  void reset(std::uint64_t seed);

  /// Serial-dispatch grain: step bodies with n < grain() run inline on
  /// the calling thread instead of being fanned out to the pool (the
  /// per-chunk dispatch cost dwarfs tiny bodies). Default 2048,
  /// overridable per-process with IPH_PRAM_GRAIN (support/env.h) and
  /// per-machine here — the serving batcher tunes it per shard.
  /// Scheduling only: results and PRAM metrics are grain-independent.
  std::uint64_t grain() const noexcept { return grain_; }
  void set_grain(std::uint64_t g) noexcept { grain_ = g < 1 ? 1 : g; }

  /// One synchronous CRCW step with n active virtual processors.
  /// fn must be callable as fn(std::uint64_t pid).
  template <typename Fn>
  void step(std::uint64_t n, Fn&& fn) {
    step_active(n, n, std::forward<Fn>(fn));
  }

  /// One step that iterates pid over [0, n) but charges only `active` work.
  /// Used when processors attached to dead elements stand by: the paper's
  /// output-sensitive work bounds count only operations of live processors,
  /// so callers pass the live count. (The iteration over dead pids costs
  /// real wall-clock but not PRAM work.)
  ///
  /// Checked epilogue: with the race checker on, the step body runs with
  /// the shadow tracker published and each fn(pid) wrapped in a pid scope,
  /// and the epilogue advances the tracker's epoch; the PRAM metrics are
  /// bit-identical either way (the tracker only observes).
  template <typename Fn>
  void step_active(std::uint64_t n, std::uint64_t active, Fn&& fn) {
    if (count_conflicts_) counted_step_prologue();
    if (shadow_) {
      checked_step_prologue();
      if (n > 0) {
        auto wrapped = [&fn](std::uint64_t pid) {
          ShadowPidScope scope(pid);
          fn(pid);
        };
        run_fn(n, wrapped);
      }
      checked_step_epilogue();
    } else if (n > 0) {
      run_fn(n, fn);
    }
    const std::uint64_t conflicts =
        count_conflicts_ ? counted_step_epilogue() : 0;
    ++step_index_;
    metrics_.record_step(active, conflicts);
    note_active(active);
    if (observer_) observer_->on_step(active, conflicts);
  }

  /// Account abstract PRAM cost without executing anything (used when a
  /// sub-procedure's cost is charged analytically, e.g. a documented
  /// substitution whose concrete implementation is sequential). Constant
  /// time in `steps`; the resulting metrics equal `steps` individual
  /// record_step(work_per_step) calls.
  void charge(std::uint64_t steps, std::uint64_t work_per_step) {
    metrics_.record_steps(steps, work_per_step);
    step_index_ += steps;
    if (steps > 0) note_active(work_per_step);
    if (observer_) observer_->on_charge(steps, work_per_step);
  }

  // --- space ledger (pram/metrics.h; see also pram::SpaceLease) ---
  /// Register `cells` shared-memory cells coming alive under `kind`.
  /// Host-side only (call between steps, like Phase open/close): the
  /// ledger is deterministic bookkeeping, not simulated memory.
  void space_alloc(std::uint64_t cells, SpaceKind kind) {
    metrics_.record_space_alloc(cells, kind);
    note_space();
    if (observer_) {
      observer_->on_space(metrics_.input_cells, metrics_.aux_cells);
    }
  }
  /// Register `cells` cells of `kind` going dead.
  void space_release(std::uint64_t cells, SpaceKind kind) {
    metrics_.record_space_release(cells, kind);
    if (observer_) {
      observer_->on_space(metrics_.input_cells, metrics_.aux_cells);
    }
  }

  /// Counter-based RNG for processor pid at the current step.
  support::Rng rng(std::uint64_t pid) const noexcept {
    return support::Rng(support::mix3(seed_, 0xabcdef, step_index_), pid);
  }

  std::uint64_t seed() const noexcept { return seed_; }
  std::uint64_t step_index() const noexcept { return step_index_; }
  unsigned threads() const noexcept { return threads_; }

  Metrics& metrics() noexcept { return metrics_; }
  const Metrics& metrics() const noexcept { return metrics_; }
  PhaseMetrics& phases() noexcept { return phases_; }

  // --- step-race checker (shadow.h) ---
  /// Non-null when the discipline checker is on (IPH_PRAM_CHECK=1, the
  /// IPH_ENABLE_PRAM_CHECK build option, or enable_check()).
  ShadowTracker* shadow() noexcept { return shadow_.get(); }
  bool check_enabled() const noexcept { return shadow_ != nullptr; }
  /// Turn the checker on/off programmatically (tests, targeted debugging).
  void enable_check();
  void disable_check();

  // --- structured tracing (pram/conflict.h, trace::Recorder) ---
  /// Attach a phase/step observer (or detach with nullptr). The observer
  /// must outlive this Machine or be detached before the machine issues
  /// another step. Attaching also turns combining-write conflict counting
  /// on (a trace without conflicts is the uninteresting half).
  void set_observer(PhaseObserver* o) noexcept {
    observer_ = o;
    if (o != nullptr) count_conflicts_ = true;
  }
  PhaseObserver* observer() const noexcept { return observer_; }
  /// Combining-write conflict counting, independent of any observer
  /// (also on when IPH_CW_CONFLICTS=1). Off by default: when off,
  /// Metrics::cw_conflicts stays 0 and every cell write costs one extra
  /// untaken branch, and steps/work/T(p) are bit-identical either way.
  void set_conflict_counting(bool on) noexcept { count_conflicts_ = on; }
  bool conflict_counting() const noexcept { return count_conflicts_; }

  /// Scoped phase marker: accumulates a PhaseDelta over its lifetime
  /// into phases()[name], and names the phase in any step-race diagnostic
  /// raised while it is open. Counters (steps/work/...) are snapshot
  /// deltas; the peak fields (max_active/peak_live/peak_aux) are
  /// phase-LOCAL maxima kept on the machine's peak stack — a peak is not
  /// differencable, so it is observed per open frame and folded outward
  /// on close (a child's peak is also a maximum its parent saw).
  class Phase {
   public:
    Phase(Machine& m, std::string name)
        : m_(m), name_(std::move(name)), start_(m.metrics()) {
      m_.phase_stack_.push_back(name_);
      // Seed the frame's space peaks with the gauges at open: cells
      // already live when the phase starts are live during it too.
      m_.peak_stack_.push_back(PhasePeaks{0, m_.metrics_.live_cells(),
                                          m_.metrics_.aux_cells});
      if (m_.observer_) m_.observer_->on_phase_open(name_, m_.step_index_);
    }
    ~Phase() {
      m_.phase_stack_.pop_back();
      const PhasePeaks local = m_.peak_stack_.back();
      m_.peak_stack_.pop_back();
      if (!m_.peak_stack_.empty()) {
        PhasePeaks& parent = m_.peak_stack_.back();
        if (local.max_active > parent.max_active) {
          parent.max_active = local.max_active;
        }
        if (local.peak_live > parent.peak_live) {
          parent.peak_live = local.peak_live;
        }
        if (local.peak_aux > parent.peak_aux) {
          parent.peak_aux = local.peak_aux;
        }
      }
      PhaseDelta d = counter_delta(m_.metrics(), start_);
      d.invocations = 1;
      d.max_active = local.max_active;
      d.peak_live = local.peak_live;
      d.peak_aux = local.peak_aux;
      m_.phases()[name_].add(d);
      if (m_.observer_) m_.observer_->on_phase_close(m_.step_index_);
    }
    Phase(const Phase&) = delete;
    Phase& operator=(const Phase&) = delete;

   private:
    Machine& m_;
    std::string name_;
    Metrics start_;
  };

 private:
  /// Phase-local maxima for the innermost open Phase. Only the stack top
  /// is updated per event; close folds a child's maxima into its parent
  /// (the child's open interval is contained in the parent's).
  struct PhasePeaks {
    std::uint64_t max_active = 0;
    std::uint64_t peak_live = 0;
    std::uint64_t peak_aux = 0;
  };

  void note_active(std::uint64_t active) noexcept {
    if (!peak_stack_.empty() && active > peak_stack_.back().max_active) {
      peak_stack_.back().max_active = active;
    }
  }
  void note_space() noexcept {
    if (peak_stack_.empty()) return;
    PhasePeaks& top = peak_stack_.back();
    if (metrics_.live_cells() > top.peak_live) {
      top.peak_live = metrics_.live_cells();
    }
    if (metrics_.aux_cells > top.peak_aux) {
      top.peak_aux = metrics_.aux_cells;
    }
  }

  using RangeFn = void (*)(void*, std::uint64_t, std::uint64_t);
  void run_range(std::uint64_t n, RangeFn fn, void* ctx);
  void worker_loop(unsigned worker_id);

  /// Dispatch a callable over [0, n) through the pool (type-erased once).
  template <typename Fn>
  void run_fn(std::uint64_t n, Fn& fn) {
    using F = std::remove_reference_t<Fn>;
    auto thunk = [](void* ctx, std::uint64_t lo, std::uint64_t hi) {
      F& f = *static_cast<F*>(ctx);
      for (std::uint64_t i = lo; i < hi; ++i) f(i);
    };
    run_range(n, thunk, &fn);
  }

  void checked_step_prologue();
  void checked_step_epilogue();
  void counted_step_prologue();
  std::uint64_t counted_step_epilogue();

  std::uint64_t seed_;
  std::uint64_t grain_;
  std::uint64_t step_index_ = 0;
  Metrics metrics_;
  PhaseMetrics phases_;
  std::unique_ptr<ShadowTracker> shadow_;
  PhaseObserver* observer_ = nullptr;
  bool count_conflicts_ = false;
  ConflictSink conflict_sink_;
  /// Open Phase names, innermost last (host-side only; steps are issued
  /// between pushes/pops, never during).
  std::vector<std::string> phase_stack_;
  /// Phase-local peaks, parallel to phase_stack_ (same push/pop sites).
  std::vector<PhasePeaks> peak_stack_;

  // --- thread pool ---
  unsigned threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_job_;
  std::condition_variable cv_done_;
  std::uint64_t job_generation_ = 0;
  unsigned workers_remaining_ = 0;
  bool shutdown_ = false;
  // Current job (valid while workers_remaining_ > 0).
  RangeFn job_fn_ = nullptr;
  void* job_ctx_ = nullptr;
  std::uint64_t job_n_ = 0;
  std::uint64_t job_chunk_ = 0;
  std::atomic<std::uint64_t> job_next_{0};
  // This machine's checker/conflict context for the step in flight.
  // Written by the host in the step prologues (before the job is
  // published under mu_), read by workers at job pickup (under mu_) to
  // bind their thread-local tracker/sink — see shadow.h/conflict.h on
  // why these are per-thread, not process-global.
  ShadowTracker* step_shadow_ = nullptr;
  ConflictSink* step_sink_ = nullptr;
};

}  // namespace iph::pram
