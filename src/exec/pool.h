// A small persistent fork-join pool for the native hull engine.
//
// pram::Machine owns its own lockstep thread pool, but that pool is
// built around barrier-synchronized PRAM steps — exactly the per-step
// tax the native backend exists to avoid. This one is plain fork-join:
// parallel_for splits [0, n) into contiguous slices, the calling thread
// executes slice 0 inline (so a 1-thread pool degenerates to a plain
// loop with zero scheduling), workers pull the rest from a shared
// queue, and a latch joins the fork.
//
// Concurrency contract: parallel_for may be called from MANY threads at
// once (the serving layer shares one NativeBackend across all batch
// workers). Concurrent forks interleave in the task queue; each fork
// waits only on its own latch. Tasks never block on other tasks, so
// interleaving cannot deadlock. Nested parallel_for from inside a task
// is NOT supported (a task waiting on workers could starve the queue).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace iph::exec {

class ThreadPool {
 public:
  /// Total parallelism `threads` (0 = support::env_threads()): the pool
  /// spawns threads-1 workers, the caller of parallel_for is the rest.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned threads() const noexcept { return threads_; }

  /// Number of slices parallel_for(n, grain, ...) would fork: enough
  /// threads that every slice has at least `grain` items, capped at
  /// threads(). Callers sizing per-slice scratch use this.
  std::size_t slice_count(std::size_t n, std::size_t grain) const noexcept;

  /// Run fn(begin, end, slice) over a partition of [0, n) into
  /// slice_count(n, grain) contiguous slices, concurrently; blocks
  /// until every slice finished. Slice 0 runs on the calling thread.
  /// fn must not call back into parallel_for (see file comment).
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t,
                                             std::size_t)>& fn);

 private:
  void worker();

  unsigned threads_;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stop_ = false;
};

}  // namespace iph::exec
