# Empty compiler generated dependencies file for unsorted2d_test.
# This may be replaced when dependencies are built.
