#include "seq/giftwrap3d.h"

#include <deque>
#include <unordered_set>
#include <vector>

#include "geom/predicates.h"
#include "seq/graham.h"
#include "support/check.h"

namespace iph::seq {

using geom::Facet3;
using geom::Index;
using geom::Point3;

namespace {

std::uint64_t edge_key(Index a, Index b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

geom::HullResult3D giftwrap_upper_hull3(std::span<const Point3> pts) {
  geom::HullResult3D r;
  const std::size_t n = pts.size();
  r.facet_above.assign(n, geom::kNone);
  if (n < 3) return r;

  // Silhouette: the upper hull's boundary projects onto the 2-d convex
  // hull of the xy-projections. For each projected hull location the
  // boundary vertex is the max-z point of that column.
  std::vector<geom::Point2> proj(n);
  for (std::size_t i = 0; i < n; ++i) proj[i] = {pts[i].x, pts[i].y};
  std::vector<Index> hull2 = graham_hull(proj);
  if (hull2.size() < 3) return r;  // xy-degenerate: no facets
  for (Index& v : hull2) {
    // Lift to the top point of the column (exact xy match).
    for (std::size_t i = 0; i < n; ++i) {
      if (pts[i].x == pts[v].x && pts[i].y == pts[v].y &&
          pts[i].z > pts[v].z) {
        v = static_cast<Index>(i);
      }
    }
  }

  // BFS over directed edges wanting their left facet (left in the
  // xy-projection, hull2 being counterclockwise).
  std::unordered_set<std::uint64_t> done;
  std::deque<std::pair<Index, Index>> queue;
  for (std::size_t k = 0; k < hull2.size(); ++k) {
    const Index u = hull2[k];
    const Index v = hull2[(k + 1) % hull2.size()];
    queue.emplace_back(u, v);
    // The reverse silhouette edge has nothing on its left: pre-mark it.
    done.insert(edge_key(v, u));
  }
  while (!queue.empty()) {
    const auto [u, v] = queue.front();
    queue.pop_front();
    if (!done.insert(edge_key(u, v)).second) continue;
    // Pivot: among points strictly left of u->v in xy, the one whose
    // plane(u,v,w) dominates all others ("above" is a total preorder in
    // the rotation angle about the edge, so one pass suffices).
    Index w = geom::kNone;
    for (std::size_t t = 0; t < n; ++t) {
      const auto it = static_cast<Index>(t);
      if (it == u || it == v) continue;
      if (geom::orient2d_xy(pts[u], pts[v], pts[t]) <= 0) continue;
      if (w == geom::kNone ||
          !geom::on_or_below_plane(pts[u], pts[v], pts[w], pts[t])) {
        w = it;
      }
    }
    if (w == geom::kNone) continue;  // silhouette edge reached
    r.facets.push_back(Facet3{u, v, w});
    done.insert(edge_key(v, w));
    done.insert(edge_key(w, u));
    if (done.find(edge_key(w, v)) == done.end()) queue.emplace_back(w, v);
    if (done.find(edge_key(u, w)) == done.end()) queue.emplace_back(u, w);
    IPH_CHECK(r.facets.size() <= 4 * n);  // wrap runaway guard
  }

  // Per-point facet pointers (oracle brute force).
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t f = 0; f < r.facets.size(); ++f) {
      const Facet3& t = r.facets[f];
      if (geom::xy_in_triangle(pts[t.a], pts[t.b], pts[t.c], pts[i]) &&
          geom::on_or_below_plane(pts[t.a], pts[t.b], pts[t.c], pts[i])) {
        r.facet_above[i] = static_cast<Index>(f);
        break;
      }
    }
  }
  return r;
}

}  // namespace iph::seq
