// Constant-time brute-force upper hull (Observation 2.3) and the
// "folklore" O(k)-time n^(1+1/k)-processor hull (Lemma 2.4).
//
// Observation 2.3 scheme, O(1) PRAM steps with q^3 processors on a
// presorted contiguous range of q points:
//   * processor (i,j,t) invalidates candidate edge (i,j) if tester t is
//     strictly above its line, or is collinear outside its x-span
//     (maximality), or exposes a duplicate-endpoint tie;
//   * each surviving edge is maximal and unique per left endpoint: the
//     left endpoint records its successor (priority CRCW);
//   * each point finds the hull vertex covering it from the left with one
//     max-combining write (q^2 processors).
// The ordered vertex chain is then assembled host-side by walking the
// successor list (presentation only — the per-point edge pointers, the
// paper's actual output, are already in place).
#pragma once

#include <cstdint>
#include <span>

#include "geom/hull_types.h"
#include "geom/point.h"
#include "pram/machine.h"

namespace iph::primitives {

/// Upper hull + per-point edge pointers for the presorted contiguous
/// range pts[lo, hi). All indices in the result are GLOBAL (refer to
/// pts). O(1) PRAM steps; (hi-lo)^3 processors.
/// (The folklore Lemma 2.4 variant lives in hulltools/folklore_hull.h —
/// it is built on the chain-merge machinery there.)
geom::HullResult2D brute_hull_presorted(pram::Machine& m,
                                        std::span<const geom::Point2> pts,
                                        std::size_t lo, std::size_t hi);

}  // namespace iph::primitives
