#include "pram/shadow.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace iph::pram {

namespace {

std::size_t shard_of(std::uintptr_t a, std::size_t n_shards) noexcept {
  // Cells of interest are >= 1 byte apart; fold the high bits so
  // adjacent array elements land on different shards.
  a ^= a >> 17;
  a *= 0x9E3779B97F4A7C15ULL;
  return static_cast<std::size_t>(a >> 48) & (n_shards - 1);
}

}  // namespace

void ShadowTracker::begin_step(std::uint64_t step, std::string phase) {
  step_.store(step, std::memory_order_relaxed);
  phase_ = std::move(phase);
}

void ShadowTracker::end_step() {
  if (++steps_since_flush_ < kFlushPeriod) return;
  steps_since_flush_ = 0;
  for (auto& sh : shards_) {
    std::lock_guard<std::mutex> lk(sh.mu);
    sh.map.clear();
  }
}

void ShadowTracker::on_plain_write(const volatile void* addr,
                                   std::uint64_t pid) {
  record(addr, pid, /*sanctioned=*/false);
}

void ShadowTracker::on_sanctioned_write(const volatile void* addr,
                                        std::uint64_t pid) {
  record(addr, pid, /*sanctioned=*/true);
}

void ShadowTracker::record(const volatile void* addr, std::uint64_t pid,
                           bool sanctioned) {
  const auto a = reinterpret_cast<std::uintptr_t>(addr);
  const std::uint64_t step = step_.load(std::memory_order_relaxed);
  n_tracked_.fetch_add(1, std::memory_order_relaxed);
  Shard& sh = shards_[shard_of(a, kShards)];
  std::lock_guard<std::mutex> lk(sh.mu);
  auto [it, inserted] = sh.map.try_emplace(a, Entry{step, pid, sanctioned});
  if (inserted) return;
  Entry& e = it->second;
  if (e.step == step) {
    // Same-step rewrite. Legal iff it is the same pid (a processor may
    // rewrite its own cells) or both writes combine through cells.
    if (e.pid != pid && !(e.sanctioned && sanctioned)) {
      report(a, e, pid, sanctioned);
    }
    // A plain claim is the stronger assertion; keep it so a later
    // combining write by another pid still trips.
    if (e.sanctioned && !sanctioned) {
      e.pid = pid;
      e.sanctioned = false;
    }
    return;
  }
  // Stale entry from an earlier step: this write opens the cell's epoch.
  e = Entry{step, pid, sanctioned};
}

void ShadowTracker::report(std::uintptr_t addr, const Entry& prev,
                           std::uint64_t pid, bool sanctioned) {
  ShadowViolation v;
  v.step = step_.load(std::memory_order_relaxed);
  v.pid_first = prev.pid;
  v.pid_second = pid;
  v.addr = addr;
  v.first_sanctioned = prev.sanctioned;
  v.second_sanctioned = sanctioned;
  {
    std::lock_guard<std::mutex> lk(vio_mu_);
    v.phase = phase_;
    // Cap retained diagnostics; a genuinely racy step can trip thousands
    // of times and the first few carry all the signal.
    if (violations_.size() < 64) violations_.push_back(v);
  }
  if (abort_on_race_.load(std::memory_order_relaxed)) {
    std::fprintf(
        stderr,
        "PRAM step-race: %s write by pid %" PRIu64 " races %s write by pid "
        "%" PRIu64 " on cell %p at step %" PRIu64 " (phase \"%s\")\n"
        "Same-step racing writes must go through the combining cells of "
        "pram/cells.h; plain writes require a unique owner per step.\n",
        sanctioned ? "combining" : "plain", pid,
        prev.sanctioned ? "combining" : "plain", prev.pid,
        reinterpret_cast<void*>(addr), v.step, v.phase.c_str());
    std::abort();
  }
}

std::vector<ShadowViolation> ShadowTracker::violations() const {
  std::lock_guard<std::mutex> lk(vio_mu_);
  return violations_;
}

void ShadowTracker::clear_violations() {
  std::lock_guard<std::mutex> lk(vio_mu_);
  violations_.clear();
}

}  // namespace iph::pram
