file(REMOVE_RECURSE
  "CMakeFiles/e05_unsorted3d_work.dir/e05_unsorted3d_work.cpp.o"
  "CMakeFiles/e05_unsorted3d_work.dir/e05_unsorted3d_work.cpp.o.d"
  "e05_unsorted3d_work"
  "e05_unsorted3d_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e05_unsorted3d_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
