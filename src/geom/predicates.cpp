#include "geom/predicates.h"

#include <cmath>

namespace iph::geom {
namespace {

// --- Error-free transformations (Dekker/Knuth/Shewchuk) ---------------

struct TwoDouble {
  double hi;  // leading component
  double lo;  // roundoff
};

inline TwoDouble two_sum(double a, double b) noexcept {
  const double s = a + b;
  const double bb = s - a;
  const double err = (a - (s - bb)) + (b - bb);
  return {s, err};
}

inline TwoDouble two_diff(double a, double b) noexcept {
  const double s = a - b;
  const double bb = s - a;
  const double err = (a - (s - bb)) - (b + bb);
  return {s, err};
}

inline TwoDouble two_product(double a, double b) noexcept {
  const double p = a * b;
  const double err = std::fma(a, b, -p);
  return {p, err};
}

// A small floating-point expansion: components in increasing order of
// magnitude, pairwise nonoverlapping (Shewchuk's invariant). Built only
// via grow() so the invariant holds; sign() is then the sign of the
// largest-magnitude (last nonzero) component.
struct Expansion {
  double c[24];
  int n = 0;

  void grow(double b) noexcept {
    // grow_expansion: add scalar b, preserving nonoverlap.
    double q = b;
    int out = 0;
    for (int i = 0; i < n; ++i) {
      const TwoDouble s = two_sum(q, c[i]);
      q = s.hi;
      c[out] = s.lo;
      // Keep zero components: dropping them is also fine, but keeping the
      // loop branch-free is simpler and n stays <= 24 for our uses.
      ++out;
    }
    c[out++] = q;
    n = out;
  }

  int sign() const noexcept {
    for (int i = n - 1; i >= 0; --i) {
      if (c[i] > 0.0) return 1;
      if (c[i] < 0.0) return -1;
    }
    return 0;
  }
};

// Exact sign of (b.x-a.x)(d.y-c.y) - (b.y-a.y)(d.x-c.x). The coordinate
// differences are computed exactly as 2-expansions, the two products of
// 2-expansions contribute 8 exact partial products each, and the final
// expansion sum is exact; hence the sign is exact for all double inputs.
int cross_diff_exact(const Point2& a, const Point2& b, const Point2& c,
                     const Point2& d) noexcept {
  const TwoDouble l1 = two_diff(b.x, a.x);
  const TwoDouble l2 = two_diff(d.y, c.y);
  const TwoDouble r1 = two_diff(b.y, a.y);
  const TwoDouble r2 = two_diff(d.x, c.x);

  Expansion e;
  const double ls[2] = {l1.lo, l1.hi};
  const double lt[2] = {l2.lo, l2.hi};
  const double rs[2] = {r1.lo, r1.hi};
  const double rt[2] = {r2.lo, r2.hi};
  for (double u : ls) {
    for (double v : lt) {
      const TwoDouble p = two_product(u, v);
      e.grow(p.lo);
      e.grow(p.hi);
    }
  }
  for (double u : rs) {
    for (double v : rt) {
      const TwoDouble p = two_product(u, v);
      e.grow(-p.lo);
      e.grow(-p.hi);
    }
  }
  return e.sign();
}

// Static filter constants (Shewchuk): the double evaluation of the 2x2
// determinant of differences has relative error < kO2Err * (|detleft| +
// |detright|); a magnitude above that certifies the sign.
constexpr double kEps = 1.1102230246251565e-16;  // 2^-53
constexpr double kO2Err = (3.0 + 16.0 * kEps) * kEps;

}  // namespace

int cross_diff_sign(const Point2& a, const Point2& b, const Point2& c,
                    const Point2& d) noexcept {
  const double detleft = (b.x - a.x) * (d.y - c.y);
  const double detright = (b.y - a.y) * (d.x - c.x);
  const double det = detleft - detright;
  const double detsum = std::fabs(detleft) + std::fabs(detright);
  if (std::fabs(det) > kO2Err * detsum) {
    return det > 0.0 ? 1 : -1;
  }
  return cross_diff_exact(a, b, c, d);
}

int orient2d(const Point2& a, const Point2& b, const Point2& c) noexcept {
  return cross_diff_sign(a, b, a, c);
}

namespace {

// Long-double then __float128 evaluation of the 3x3 determinant. The
// double filter certifies almost every call; the __float128 fallback has
// 113-bit mantissa, exact for determinants of integer coordinates below
// ~2^37 per difference product chain, which covers the degenerate
// (integer-lattice) inputs the test suite uses.
int orient3d_slow(const Point3& a, const Point3& b, const Point3& c,
                  const Point3& d) noexcept {
  using Q = __float128;
  const Q adx = Q(a.x) - Q(d.x), ady = Q(a.y) - Q(d.y), adz = Q(a.z) - Q(d.z);
  const Q bdx = Q(b.x) - Q(d.x), bdy = Q(b.y) - Q(d.y), bdz = Q(b.z) - Q(d.z);
  const Q cdx = Q(c.x) - Q(d.x), cdy = Q(c.y) - Q(d.y), cdz = Q(c.z) - Q(d.z);
  const Q det = adx * (bdy * cdz - bdz * cdy) -
                ady * (bdx * cdz - bdz * cdx) +
                adz * (bdx * cdy - bdy * cdx);
  if (det > Q(0)) return 1;
  if (det < Q(0)) return -1;
  return 0;
}

constexpr double kO3Err = (7.0 + 56.0 * kEps) * kEps;

}  // namespace

int orient3d(const Point3& a, const Point3& b, const Point3& c,
             const Point3& d) noexcept {
  const double adx = a.x - d.x, ady = a.y - d.y, adz = a.z - d.z;
  const double bdx = b.x - d.x, bdy = b.y - d.y, bdz = b.z - d.z;
  const double cdx = c.x - d.x, cdy = c.y - d.y, cdz = c.z - d.z;

  const double bdxcdy = bdx * cdy, cdxbdy = cdx * bdy;
  const double cdxady = cdx * ady, adxcdy = adx * cdy;
  const double adxbdy = adx * bdy, bdxady = bdx * ady;

  const double det = adz * (bdxcdy - cdxbdy) + bdz * (cdxady - adxcdy) +
                     cdz * (adxbdy - bdxady);
  const double permanent = (std::fabs(bdxcdy) + std::fabs(cdxbdy)) * std::fabs(adz) +
                           (std::fabs(cdxady) + std::fabs(adxcdy)) * std::fabs(bdz) +
                           (std::fabs(adxbdy) + std::fabs(bdxady)) * std::fabs(cdz);
  if (std::fabs(det) > kO3Err * permanent) {
    return det > 0.0 ? 1 : -1;
  }
  return orient3d_slow(a, b, c, d);
}

bool strictly_below_plane(const Point3& a, const Point3& b, const Point3& c,
                          const Point3& d) noexcept {
  // Make (a,b,c) counterclockwise in xy-projection, then "below" is
  // orient3d > 0 under our sign convention.
  const int ccw = orient2d_xy(a, b, c);
  if (ccw == 0) return false;  // vertical plane: nothing is below it
  const int s = orient3d(a, b, c, d);
  return ccw > 0 ? s > 0 : s < 0;
}

bool on_or_below_plane(const Point3& a, const Point3& b, const Point3& c,
                       const Point3& d) noexcept {
  const int ccw = orient2d_xy(a, b, c);
  if (ccw == 0) return false;
  const int s = orient3d(a, b, c, d);
  return ccw > 0 ? s >= 0 : s <= 0;
}

int orient2d_xy(const Point3& a, const Point3& b, const Point3& c) noexcept {
  return orient2d(Point2{a.x, a.y}, Point2{b.x, b.y}, Point2{c.x, c.y});
}

bool xy_in_triangle(const Point3& a, const Point3& b, const Point3& c,
                    const Point3& q) noexcept {
  const int ccw = orient2d_xy(a, b, c);
  if (ccw == 0) return false;  // degenerate projection
  const Point2 pa{a.x, a.y}, pb{b.x, b.y}, pc{c.x, c.y}, pq{q.x, q.y};
  if (ccw > 0) {
    return orient2d(pa, pb, pq) >= 0 && orient2d(pb, pc, pq) >= 0 &&
           orient2d(pc, pa, pq) >= 0;
  }
  return orient2d(pa, pb, pq) <= 0 && orient2d(pb, pc, pq) <= 0 &&
         orient2d(pc, pa, pq) <= 0;
}

}  // namespace iph::geom
