#include "trace/report.h"

#include <cmath>
#include <cstdio>
#include <ctime>

#include "support/env.h"

#ifndef IPH_GIT_SHA
#define IPH_GIT_SHA "unknown"
#endif
#ifndef IPH_BUILD_TYPE
#define IPH_BUILD_TYPE "unknown"
#endif
#ifndef IPH_SANITIZE_SPEC
#define IPH_SANITIZE_SPEC "none"
#endif

namespace iph::trace {

namespace {

std::string utc_timestamp() {
  std::time_t now = std::time(nullptr);
  std::tm tm{};
  gmtime_r(&now, &tm);
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

void fill_node(Json& out, const PhaseStats& node) {
  out["invocations"] = node.invocations;
  out["steps"] = node.steps;
  out["direct_steps"] = node.direct_steps;
  out["work"] = node.work;
  out["max_active"] = node.max_active;
  out["cw_conflicts"] = node.cw_conflicts;
  out["peak_live"] = node.peak_live;
  out["peak_aux"] = node.peak_aux;
  out["wall_ms"] = node.wall_ns / 1e6;
}

void flatten(const PhaseStats& node, const std::string& path, Json& rows) {
  Json row = Json::object();
  row["phase"] = path.empty() ? std::string("<root>") : path;
  fill_node(row, node);
  rows.push_back(std::move(row));
  for (const auto& c : node.children) {
    flatten(*c, path.empty() ? c->name : path + "/" + c->name, rows);
  }
}

}  // namespace

bool is_deterministic_counter(std::string_view name) noexcept {
  return name == "steps" || name == "work" || name == "max_active" ||
         name == "cw_conflicts" || name == "t_ideal" ||
         name == "peak_live" || name == "peak_aux" ||
         name == "peak_input";
}

Json collect_provenance() {
  Json p = Json::object();
  p["git_sha"] = IPH_GIT_SHA;
  p["build_type"] = IPH_BUILD_TYPE;
  p["sanitize"] = IPH_SANITIZE_SPEC;
  p["seed"] = support::env_seed();
  p["threads"] = static_cast<std::uint64_t>(support::env_threads());
  p["timestamp_utc"] = utc_timestamp();
  return p;
}

Json phase_tree_json(const PhaseStats& node) {
  Json out = Json::object();
  out["name"] = node.name.empty() ? std::string("<root>") : node.name;
  fill_node(out, node);
  if (!node.children.empty()) {
    Json kids = Json::array();
    for (const auto& c : node.children) kids.push_back(phase_tree_json(*c));
    out["phases"] = std::move(kids);
  }
  return out;
}

Json phase_table_json(const PhaseStats& root) {
  Json rows = Json::array();
  flatten(root, "", rows);
  return rows;
}

CompareResult compare_counter_rows(const Json& report, const Json& baseline,
                                   double rel_tol) {
  CompareResult res;
  const Json* rows = report.find("rows");
  const Json* base_rows = baseline.find("rows");
  if (rows == nullptr || base_rows == nullptr) {
    res.ok = false;
    res.diffs.push_back("missing \"rows\" table in report or baseline");
    return res;
  }
  for (const Json& row : rows->items()) {
    const std::string name = row.get_str("name");
    const Json* base = nullptr;
    for (const Json& b : base_rows->items()) {
      if (b.get_str("name") == name) {
        base = &b;
        break;
      }
    }
    if (base == nullptr) continue;  // short sweep vs full baseline
    const Json* counters = row.find("counters");
    const Json* base_counters = base->find("counters");
    if (counters == nullptr || base_counters == nullptr) continue;
    ++res.rows_compared;
    for (const auto& [key, value] : counters->members()) {
      if (!is_deterministic_counter(key) || !value.is_number()) continue;
      const Json* bv = base_counters->find(key);
      if (bv == nullptr || !bv->is_number()) continue;
      const double got = value.as_double();
      const double want = bv->as_double();
      const double scale = std::max(std::fabs(want), 1.0);
      if (std::fabs(got - want) > rel_tol * scale) {
        res.ok = false;
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "%s: %s = %.17g, baseline %.17g (rel_tol %.3g)",
                      name.c_str(), key.c_str(), got, want, rel_tol);
        res.diffs.push_back(buf);
      }
    }
  }
  return res;
}

}  // namespace iph::trace
