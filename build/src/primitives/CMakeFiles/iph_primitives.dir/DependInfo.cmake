
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/primitives/bitonic_sort.cpp" "src/primitives/CMakeFiles/iph_primitives.dir/bitonic_sort.cpp.o" "gcc" "src/primitives/CMakeFiles/iph_primitives.dir/bitonic_sort.cpp.o.d"
  "/root/repo/src/primitives/brute_force_hull.cpp" "src/primitives/CMakeFiles/iph_primitives.dir/brute_force_hull.cpp.o" "gcc" "src/primitives/CMakeFiles/iph_primitives.dir/brute_force_hull.cpp.o.d"
  "/root/repo/src/primitives/brute_force_lp.cpp" "src/primitives/CMakeFiles/iph_primitives.dir/brute_force_lp.cpp.o" "gcc" "src/primitives/CMakeFiles/iph_primitives.dir/brute_force_lp.cpp.o.d"
  "/root/repo/src/primitives/failure_sweep.cpp" "src/primitives/CMakeFiles/iph_primitives.dir/failure_sweep.cpp.o" "gcc" "src/primitives/CMakeFiles/iph_primitives.dir/failure_sweep.cpp.o.d"
  "/root/repo/src/primitives/first_nonzero.cpp" "src/primitives/CMakeFiles/iph_primitives.dir/first_nonzero.cpp.o" "gcc" "src/primitives/CMakeFiles/iph_primitives.dir/first_nonzero.cpp.o.d"
  "/root/repo/src/primitives/inplace_bridge.cpp" "src/primitives/CMakeFiles/iph_primitives.dir/inplace_bridge.cpp.o" "gcc" "src/primitives/CMakeFiles/iph_primitives.dir/inplace_bridge.cpp.o.d"
  "/root/repo/src/primitives/inplace_compaction.cpp" "src/primitives/CMakeFiles/iph_primitives.dir/inplace_compaction.cpp.o" "gcc" "src/primitives/CMakeFiles/iph_primitives.dir/inplace_compaction.cpp.o.d"
  "/root/repo/src/primitives/lockstep_search.cpp" "src/primitives/CMakeFiles/iph_primitives.dir/lockstep_search.cpp.o" "gcc" "src/primitives/CMakeFiles/iph_primitives.dir/lockstep_search.cpp.o.d"
  "/root/repo/src/primitives/prefix_sum.cpp" "src/primitives/CMakeFiles/iph_primitives.dir/prefix_sum.cpp.o" "gcc" "src/primitives/CMakeFiles/iph_primitives.dir/prefix_sum.cpp.o.d"
  "/root/repo/src/primitives/primes.cpp" "src/primitives/CMakeFiles/iph_primitives.dir/primes.cpp.o" "gcc" "src/primitives/CMakeFiles/iph_primitives.dir/primes.cpp.o.d"
  "/root/repo/src/primitives/ragde.cpp" "src/primitives/CMakeFiles/iph_primitives.dir/ragde.cpp.o" "gcc" "src/primitives/CMakeFiles/iph_primitives.dir/ragde.cpp.o.d"
  "/root/repo/src/primitives/random_sample.cpp" "src/primitives/CMakeFiles/iph_primitives.dir/random_sample.cpp.o" "gcc" "src/primitives/CMakeFiles/iph_primitives.dir/random_sample.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pram/CMakeFiles/iph_pram.dir/DependInfo.cmake"
  "/root/repo/build/src/geom/CMakeFiles/iph_geom.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/iph_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
