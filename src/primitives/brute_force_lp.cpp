#include "primitives/brute_force_lp.h"

#include <algorithm>
#include <bit>
#include <vector>

#include "geom/predicates.h"
#include "pram/allocation.h"
#include "pram/cells.h"
#include "support/check.h"

namespace iph::primitives {

using geom::Index;
using geom::Point2;
using geom::Point3;

namespace {

/// Locate pid's problem given cumulative pid budgets (exclusive prefix).
std::size_t locate(std::span<const std::uint64_t> cum, std::uint64_t pid) {
  const auto it = std::upper_bound(cum.begin(), cum.end(), pid);
  return static_cast<std::size_t>(it - cum.begin()) - 1;
}

std::uint64_t key_of_span(double span) {
  // Non-negative doubles order like their bit patterns; +1 so a zero
  // span still differs from MaxCell's empty value.
  return std::bit_cast<std::uint64_t>(span) + 1;
}

}  // namespace

std::vector<std::pair<Index, Index>> batched_brute_bridge_2d(
    pram::Machine& m, std::span<const Point2> pts,
    std::span<const std::vector<Index>> subsets,
    std::span<const std::pair<Index, Index>> gaps) {
  const std::size_t np = subsets.size();
  IPH_CHECK(gaps.size() == np);
  std::vector<std::pair<Index, Index>> out(
      np, {geom::kNone, geom::kNone});
  // Pid budgets: k^3 for the tester sweep, k^2 for the reductions.
  std::vector<std::uint64_t> cum3{0}, cum2{0};
  for (const auto& s : subsets) {
    const std::uint64_t k = s.size();
    cum3.push_back(cum3.back() + k * k * k);
    cum2.push_back(cum2.back() + k * k);
  }
  if (cum3.back() == 0) return out;
  pram::Machine::Phase phase(m, "prim/brute-bridge");

  // Scratch: one validity bit per candidate pair (sum of k^2 over the
  // batch) plus two reduction cells per problem. With k = O(1) per
  // Lemma 4.1 this is O(1) cells per problem.
  pram::FlagArray bad(cum2.back());
  pram::SpaceLease aux(m, pram::SpaceKind::kAux, cum2.back() + 2 * np);
  m.step(cum3.back(), [&](std::uint64_t pid) {
    const std::size_t p = locate(cum3, pid);
    const auto& sub = subsets[p];
    const std::uint64_t k = sub.size();
    const std::uint64_t local = pid - cum3[p];
    const std::uint64_t i = local / (k * k);
    const std::uint64_t j = (local / k) % k;
    const std::uint64_t t = local % k;
    if (i >= j) return;
    Point2 a = pts[sub[i]];
    Point2 b = pts[sub[j]];
    if (a.x > b.x) std::swap(a, b);
    const double gl = pts[gaps[p].first].x;
    const double gr = pts[gaps[p].second].x;
    if (a.x == b.x || !(a.x <= gl && gr <= b.x)) {
      if (t == 0) bad.set(cum2[p] + i * k + j);
      return;
    }
    if (t == i || t == j) return;
    if (geom::orient2d(a, b, pts[sub[t]]) > 0) {
      bad.set(cum2[p] + i * k + j);
    }
  });
  // Longest valid span per problem, then smallest pair id.
  std::vector<pram::MaxCell> best_span(np);
  m.step(cum2.back(), [&](std::uint64_t pid) {
    const std::size_t p = locate(cum2, pid);
    const auto& sub = subsets[p];
    const std::uint64_t k = sub.size();
    const std::uint64_t local = pid - cum2[p];
    const std::uint64_t i = local / k;
    const std::uint64_t j = local % k;
    if (i >= j || bad.get(pid)) return;
    best_span[p].write(
        key_of_span(std::abs(pts[sub[i]].x - pts[sub[j]].x)));
  });
  std::vector<pram::MinCell> best_pair(np);
  m.step(cum2.back(), [&](std::uint64_t pid) {
    const std::size_t p = locate(cum2, pid);
    const auto& sub = subsets[p];
    const std::uint64_t k = sub.size();
    const std::uint64_t local = pid - cum2[p];
    const std::uint64_t i = local / k;
    const std::uint64_t j = local % k;
    if (i >= j || bad.get(pid)) return;
    if (key_of_span(std::abs(pts[sub[i]].x - pts[sub[j]].x)) ==
        best_span[p].read()) {
      best_pair[p].write(local);
    }
  });
  m.step(np, [&](std::uint64_t p) {
    if (best_pair[p].empty()) return;
    const auto& sub = subsets[p];
    const std::uint64_t k = sub.size();
    const std::uint64_t id = best_pair[p].read();
    Index a = sub[id / k];
    Index b = sub[id % k];
    if (pts[a].x > pts[b].x) std::swap(a, b);
    out[p] = {a, b};
  });
  return out;
}

std::pair<Index, Index> brute_bridge_2d(pram::Machine& m,
                                        std::span<const Point2> pts,
                                        std::span<const Index> subset,
                                        Index splitter) {
  std::vector<std::vector<Index>> subsets{
      std::vector<Index>(subset.begin(), subset.end())};
  const std::pair<Index, Index> gaps[1] = {{splitter, splitter}};
  return batched_brute_bridge_2d(m, pts, subsets, gaps)[0];
}

std::vector<geom::Facet3> batched_brute_facet_3d(
    pram::Machine& m, std::span<const Point3> pts,
    std::span<const std::vector<Index>> subsets,
    std::span<const Index> splitters) {
  const std::size_t np = subsets.size();
  IPH_CHECK(splitters.size() == np);
  std::vector<geom::Facet3> out(np);
  std::vector<std::uint64_t> cum4{0}, cum3{0};
  for (const auto& s : subsets) {
    const std::uint64_t k = s.size();
    cum4.push_back(cum4.back() + k * k * k * k);
    cum3.push_back(cum3.back() + k * k * k);
  }
  if (cum4.back() == 0) return out;
  pram::Machine::Phase phase(m, "prim/brute-facet");

  // Scratch: one validity bit per candidate triple (sum of k^3) plus a
  // reduction cell per problem.
  pram::FlagArray bad(cum3.back());
  pram::SpaceLease aux(m, pram::SpaceKind::kAux, cum3.back() + np);
  m.step(cum4.back(), [&](std::uint64_t pid) {
    const std::size_t p = locate(cum4, pid);
    const auto& sub = subsets[p];
    const std::uint64_t k = sub.size();
    const std::uint64_t local = pid - cum4[p];
    const std::uint64_t i = local / (k * k * k);
    const std::uint64_t j = (local / (k * k)) % k;
    const std::uint64_t l = (local / k) % k;
    const std::uint64_t t = local % k;
    if (!(i < j && j < l)) return;
    const std::uint64_t cell = cum3[p] + (i * k + j) * k + l;
    const Point3 &a = pts[sub[i]], &b = pts[sub[j]], &c = pts[sub[l]];
    const bool degenerate = geom::orient2d_xy(a, b, c) == 0;
    if (t == 0 &&
        (degenerate || !geom::xy_in_triangle(a, b, c, pts[splitters[p]]))) {
      bad.set(cell);
    }
    if (degenerate || t == i || t == j || t == l) return;
    if (!geom::on_or_below_plane(a, b, c, pts[sub[t]])) bad.set(cell);
  });
  std::vector<pram::MinCell> best(np);
  m.step(cum3.back(), [&](std::uint64_t pid) {
    const std::size_t p = locate(cum3, pid);
    const std::uint64_t k = subsets[p].size();
    const std::uint64_t local = pid - cum3[p];
    const std::uint64_t i = local / (k * k);
    const std::uint64_t j = (local / k) % k;
    const std::uint64_t l = local % k;
    if (!(i < j && j < l)) return;
    if (!bad.get(pid)) best[p].write(local);
  });
  m.step(np, [&](std::uint64_t p) {
    if (best[p].empty()) return;
    const auto& sub = subsets[p];
    const std::uint64_t k = sub.size();
    const std::uint64_t id = best[p].read();
    out[p] = geom::Facet3{sub[id / (k * k)], sub[(id / k) % k],
                          sub[id % k]};
  });
  return out;
}

geom::Facet3 brute_facet_3d(pram::Machine& m, std::span<const Point3> pts,
                            std::span<const Index> subset, Index splitter) {
  std::vector<std::vector<Index>> subsets{
      std::vector<Index>(subset.begin(), subset.end())};
  const Index splitters[1] = {splitter};
  return batched_brute_facet_3d(m, pts, subsets, splitters)[0];
}

}  // namespace iph::primitives
