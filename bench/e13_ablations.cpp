// E13 — ablations of the design choices DESIGN.md calls out:
//   (a) alpha, the in-place-bridge round budget: too small starves the
//       sampler and shifts cost into failure sweeping; too large wastes
//       idle rounds. The paper leaves alpha as "a constant set in the
//       analysis" — this sweep locates the knee.
//   (b) k, the base-problem size exponent (the paper fixes k = s^(1/3)
//       in 2-d so the k^3-processor brute force stays linear): the sweep
//       shows s^(1/4) under-samples (more rounds) and s^(1/2) blows up
//       base-solve work.
//   (c) the fallback threshold l >= n^c of Section 4.1 step 3: smaller c
//       abandons output-sensitivity early; larger c keeps splitting past
//       the point where the O(n log n) algorithm is cheaper.
#include <benchmark/benchmark.h>

#include "report.h"
#include "core/unsorted2d.h"
#include "geom/workloads.h"
#include "pram/machine.h"
#include "primitives/inplace_bridge.h"
#include "support/mathutil.h"

namespace {

void e13_alpha(benchmark::State& state) {
  const int alpha = static_cast<int>(state.range(0));
  const auto pts = iph::geom::in_disk(1 << 14, 5);
  iph::pram::Metrics last;
  iph::core::Unsorted2DStats stats;
  for (auto _ : state) {
    iph::pram::Machine m(1, 7);
    stats = {};
    benchmark::DoNotOptimize(
        iph::core::unsorted_hull_2d(m, pts, &stats, alpha));
    last = m.metrics();
  }
  iph::bench::report_metrics(state, last);
  state.counters["swept"] = static_cast<double>(stats.failures_swept);
}

void e13_base_k(benchmark::State& state) {
  // Exponent e in k = m^e for a single whole-array bridge problem.
  const double e = static_cast<double>(state.range(0)) / 100.0;
  const std::size_t n = 1 << 15;
  const auto pts = iph::geom::in_disk(n, 9);
  iph::pram::Metrics last;
  int iters = 0;
  for (auto _ : state) {
    iph::pram::Machine m(1, 11);
    std::vector<std::uint32_t> problem_of(n, 0);
    iph::primitives::BridgeProblem pr;
    pr.splitter = 1234;
    pr.size_est = n;
    pr.k = std::max<std::uint64_t>(2, iph::support::ipow_frac(n, e));
    const auto out =
        iph::primitives::inplace_bridges_2d(m, pts, problem_of, {&pr, 1});
    iters = out[0].iterations;
    last = m.metrics();
  }
  iph::bench::report_metrics(state, last);
  state.counters["k"] = static_cast<double>(
      iph::support::ipow_frac(1 << 15, e));
  state.counters["iters"] = iters;
}

void e13_threshold(benchmark::State& state) {
  // Fallback threshold exponent c in l >= n^c (0 disables; the scoped
  // entry point exposes the knob).
  const double c = static_cast<double>(state.range(0)) / 100.0;
  const std::size_t n = 1 << 14;
  const auto pts = iph::geom::in_disk(n, 13);
  const std::uint64_t threshold =
      c == 0 ? 0 : iph::support::ipow_frac(n, c);
  iph::pram::Metrics last;
  for (auto _ : state) {
    iph::pram::Machine m(1, 3);
    std::vector<std::uint32_t> problem_of(n, 0);
    benchmark::DoNotOptimize(iph::core::unsorted_2d_scoped(
        m, pts, problem_of, 1, nullptr, 8, threshold));
    last = m.metrics();
  }
  iph::bench::report_metrics(state, last);
  state.counters["threshold"] = static_cast<double>(threshold);
}

}  // namespace

BENCHMARK(e13_alpha)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(e13_base_k)->Arg(25)->Arg(33)->Arg(50)
    ->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(e13_threshold)->Arg(0)->Arg(13)->Arg(25)->Arg(50)
    ->Iterations(1)->Unit(benchmark::kMillisecond);

// Ablations swing by design (that's the point of the sweep), so the
// claims here are loose envelopes that only catch gross blowups: steps
// vary ~1.45x over the alpha knee, ~2.5x over the base exponent, and
// ~6.7x over the threshold U-shape (EXPERIMENTS.md E13).
IPH_BENCH_MAIN("e13",
               {"alpha-steps", "steps", "flat", 3.0, "", "",
                "e13_alpha"},
               {"base-k-steps", "steps", "flat", 5.0, "", "",
                "e13_base_k"},
               {"threshold-steps", "steps", "flat", 10.0, "", "",
                "e13_threshold"})
