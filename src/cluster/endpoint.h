// Backend endpoint addressing for the cluster router: parse
// "host:port[,host:port...]" lists and dial one endpoint with plain
// POSIX sockets (no dependencies beyond libc — same constraint as the
// serving tools).
#pragma once

#include <string>
#include <vector>

namespace iph::cluster {

struct Endpoint {
  std::string host;
  int port = 0;

  std::string str() const { return host + ":" + std::to_string(port); }
};

/// Parse "host:port". False on a missing colon or non-numeric /
/// out-of-range port.
bool parse_endpoint(const std::string& s, Endpoint* out);

/// Parse a comma-separated endpoint list; empty elements are an error.
bool parse_endpoint_list(const std::string& csv, std::vector<Endpoint>* out);

/// Blocking TCP connect. Returns the connected fd, or -1 on failure.
int dial(const Endpoint& ep);

}  // namespace iph::cluster
