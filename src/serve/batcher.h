// The adaptive batcher: policy + batched PRAM execution.
//
// Small hull queries are dominated by per-run fixed costs, so the
// service coalesces the small requests that arrive within a window into
// ONE leased PRAM run: their point sets are packed into a single
// contiguous arena (request r owns the disjoint cell range
// [offset_r, offset_r + n_r)), the leased machine executes the requests
// back-to-back — reset to each request's derived seed so every request
// replays exactly its solo execution — and the per-request hulls are
// split back out of the arena's index space. Requests at or above
// BatchPolicy::small_threshold points bypass the batcher and are routed
// to the dedicated large shard (service.h).
//
// Why back-to-back inside one lease rather than one merged simulation:
// the service promises batched results bit-identical to solo runs
// (request.h determinism contract), and a merged simulation would key
// every random draw on the batch composition. The throughput win of
// batching here is amortizing the machine lease, the thread-pool warmth
// and the arena over many tiny queries — measured in bench/e14.
#pragma once

#include <chrono>
#include <cstddef>
#include <span>
#include <vector>

#include "pram/machine.h"
#include "pram/metrics.h"
#include "serve/request.h"

namespace iph::serve {

struct BatchPolicy {
  /// Requests with >= this many points skip batching (large path).
  std::size_t small_threshold = 2048;
  /// Budget per batch: requests and total arena points.
  std::size_t max_batch_requests = 64;
  std::size_t max_batch_points = std::size_t{1} << 16;
  /// How long a dequeued batch waits for stragglers.
  std::chrono::microseconds window{200};
  /// Serial-dispatch grain applied to leased shards (0 = leave the
  /// machine's IPH_PRAM_GRAIN-derived default).
  std::uint64_t grain = 0;
};

/// Host-side accounting of one execute_batch call, for the caller's
/// latency/stats bookkeeping (none of it affects results).
struct BatchExecInfo {
  /// When request i's hull finished computing — parallel to the
  /// returned responses. The service derives each request's OWN e2e
  /// from this (batch-mates that ran earlier in the arena complete
  /// earlier); before this existed every batch-mate was stamped with
  /// the batch tail's end time.
  std::vector<Clock::time_point> completed_at;
  /// Per-request pram::Metrics counters summed over the batch
  /// (Metrics::add_counters) — the machine itself is reset per request,
  /// so its own metrics afterwards are only the last request's.
  pram::Metrics pram_total;
};

/// Execute `requests` as one batch on `m` (see file comment) and return
/// one Response per request, in order. Fills the deterministic
/// RequestMetrics fields plus exec_ms and batch_size; queue/e2e timing
/// and shard id belong to the caller (per-request completion stamps for
/// that are in `info` when non-null).
std::vector<Response> execute_batch(pram::Machine& m,
                                    std::span<const Request> requests,
                                    std::uint64_t master_seed,
                                    BatchExecInfo* info = nullptr);

}  // namespace iph::serve
