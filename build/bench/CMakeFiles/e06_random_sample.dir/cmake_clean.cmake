file(REMOVE_RECURSE
  "CMakeFiles/e06_random_sample.dir/e06_random_sample.cpp.o"
  "CMakeFiles/e06_random_sample.dir/e06_random_sample.cpp.o.d"
  "e06_random_sample"
  "e06_random_sample.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e06_random_sample.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
