// QuickHull (upper-hull variant) — the classic divide-and-conquer
// baseline: O(n log n) expected on random inputs, O(n^2) worst case.
// Included because the paper's unsorted algorithm is quicksort-like
// (Section 4.1 compares its structure to randomized quicksort /
// marriage-before-conquest); e04 reports QuickHull next to it.
#pragma once

#include <span>

#include "geom/hull_types.h"
#include "geom/point.h"

namespace iph::seq {

/// Upper hull of arbitrary-order points; indices refer to the input array.
geom::UpperHull2D quickhull_upper(std::span<const geom::Point2> pts);

}  // namespace iph::seq
