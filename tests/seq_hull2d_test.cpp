// Oracle and cross-algorithm tests for the sequential 2-d baselines.
// The monotone chain is validated structurally; every other algorithm
// (QuickHull, Kirkpatrick-Seidel, Chan) must reproduce its hull exactly,
// across all workload families, sizes and seeds (parameterized sweep).
#include <gtest/gtest.h>

#include <tuple>

#include "geom/predicates.h"
#include "geom/validate.h"
#include "geom/workloads.h"
#include "seq/chan2d.h"
#include "seq/graham.h"
#include "seq/kirkpatrick_seidel.h"
#include "seq/quickhull2d.h"
#include "seq/upper_hull.h"

namespace iph::seq {
namespace {

using geom::Family2D;
using geom::Index;
using geom::Point2;

TEST(MonotoneChain, TinyInputs) {
  EXPECT_TRUE(upper_hull(std::vector<Point2>{}).vertices.empty());

  std::vector<Point2> one{{3, 4}};
  EXPECT_EQ(upper_hull(one).vertices, (std::vector<Index>{0}));

  std::vector<Point2> two{{5, 1}, {0, 2}};
  EXPECT_EQ(upper_hull(two).vertices, (std::vector<Index>{1, 0}));

  std::vector<Point2> dup{{1, 1}, {1, 1}, {1, 1}};
  EXPECT_EQ(upper_hull(dup).vertices.size(), 1u);
}

TEST(MonotoneChain, CollinearMidpointsExcluded) {
  std::vector<Point2> pts{{0, 0}, {1, 1}, {2, 2}, {3, 3}};
  const auto h = upper_hull(pts);
  EXPECT_EQ(h.vertices, (std::vector<Index>{0, 3}));
}

TEST(MonotoneChain, VerticalColumns) {
  std::vector<Point2> pts{{0, 0}, {0, 5}, {0, -2}, {4, 1}, {4, 7}};
  const auto h = upper_hull(pts);
  EXPECT_EQ(h.vertices, (std::vector<Index>{1, 4}));
}

TEST(MonotoneChain, PresortedMatchesUnsorted) {
  auto pts = geom::in_disk(800, 2);
  auto sorted = pts;
  geom::sort_lex(sorted);
  const auto a = upper_hull_presorted(sorted);
  const auto b = upper_hull(sorted);
  EXPECT_EQ(a.vertices, b.vertices);
}

TEST(AssignEdges, OracleValid) {
  auto pts = geom::gaussian2(500, 3);
  const auto r = hull_result_2d(pts);
  std::string err;
  EXPECT_TRUE(geom::validate_edge_above(pts, r, &err)) << err;
}

TEST(AssignEdges, NoEdgesCase) {
  std::vector<Point2> col{{2, 1}, {2, 5}, {2, 3}};
  const auto r = hull_result_2d(col);
  for (Index e : r.edge_above) EXPECT_EQ(e, geom::kNone);
}

TEST(KSBridge, SimpleRoof) {
  // Roof over x=1: bridge must be the top edge (1)-(2).
  std::vector<Point2> pts{{0, 0}, {1, 5}, {3, 4}, {2, 0}, {1.5, 2}};
  std::vector<Index> cand{0, 1, 2, 3, 4};
  const auto [i, j] = ks_bridge(pts, cand, 1.2);
  EXPECT_EQ(i, 1u);
  EXPECT_EQ(j, 2u);
}

TEST(KSBridge, TwoPoints) {
  std::vector<Point2> pts{{0, 0}, {4, 1}};
  std::vector<Index> cand{1, 0};
  const auto [i, j] = ks_bridge(pts, cand, 2.0);
  EXPECT_EQ(i, 0u);
  EXPECT_EQ(j, 1u);
}

TEST(KSBridge, EqualXCandidates) {
  std::vector<Point2> pts{{0, 0}, {0, 3}, {5, 2}, {5, 8}, {2, 1}};
  std::vector<Index> cand{0, 1, 2, 3, 4};
  const auto [i, j] = ks_bridge(pts, cand, 1.0);
  EXPECT_EQ(i, 1u);
  EXPECT_EQ(j, 3u);
}

TEST(KSBridge, MatchesOracleOnRandom) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    auto pts = geom::in_disk(200, seed + 100);
    const auto oracle = upper_hull(pts);
    ASSERT_GE(oracle.vertices.size(), 2u);
    // Probe the bridge over the x of each oracle edge midpoint.
    std::vector<Index> cand(pts.size());
    for (std::size_t i = 0; i < pts.size(); ++i) {
      cand[i] = static_cast<Index>(i);
    }
    for (std::size_t e = 0; e + 1 < oracle.vertices.size(); ++e) {
      const double a = (pts[oracle.vertices[e]].x +
                        pts[oracle.vertices[e + 1]].x) / 2.0;
      const auto [i, j] = ks_bridge(pts, cand, a);
      EXPECT_EQ(i, oracle.vertices[e]);
      EXPECT_EQ(j, oracle.vertices[e + 1]);
    }
  }
}

TEST(ChanTangent, BinarySearchMatchesLinearScan) {
  auto pts = geom::in_disk(300, 9);
  const auto chain = upper_hull(pts).vertices;
  ASSERT_GE(chain.size(), 3u);
  for (std::uint64_t s = 0; s < 50; ++s) {
    // Query points to the left and below.
    const Point2 q{-2e6 + static_cast<double>(s) * 1e4,
                   -1e6 + static_cast<double>(s * 37 % 100) * 1e4};
    const Index t = chan_tangent(pts, chain, q);
    ASSERT_NE(t, geom::kNone);
    for (Index v : chain) {
      if (pts[v].x <= q.x) continue;
      EXPECT_LE(geom::orient2d(q, pts[chain[t]], pts[v]), 0)
          << "vertex " << v << " above tangent line";
    }
  }
}

TEST(ChanTangent, NoVertexRightOfQuery) {
  std::vector<Point2> pts{{0, 0}, {1, 1}, {2, 0}};
  const auto chain = upper_hull(pts).vertices;
  EXPECT_EQ(chan_tangent(pts, chain, {5, 0}), geom::kNone);
}

TEST(Graham, SquareCCW) {
  std::vector<Point2> pts{{0, 0}, {10, 0}, {10, 10}, {0, 10}, {5, 5}};
  const auto h = graham_hull(pts);
  ASSERT_EQ(h.size(), 4u);
  EXPECT_EQ(h[0], 0u);  // lex-min first
  // Counterclockwise orientation.
  EXPECT_GT(geom::orient2d(pts[h[0]], pts[h[1]], pts[h[2]]), 0);
}

TEST(Graham, DegenerateInputs) {
  EXPECT_TRUE(graham_hull(std::vector<Point2>{}).empty());
  std::vector<Point2> line{{0, 0}, {2, 2}, {4, 4}, {1, 1}};
  const auto h = graham_hull(line);
  EXPECT_EQ(h.size(), 2u);
  std::vector<Point2> dup{{3, 3}, {3, 3}};
  EXPECT_EQ(graham_hull(dup).size(), 1u);
}

// --- Parameterized oracle sweep ----------------------------------------

enum class Algo { kQuickHull, kKS, kChan };

std::string algo_name(Algo a) {
  switch (a) {
    case Algo::kQuickHull:
      return "quickhull";
    case Algo::kKS:
      return "kirkpatrick_seidel";
    case Algo::kChan:
      return "chan";
  }
  return "?";
}

class Hull2DOracle
    : public ::testing::TestWithParam<std::tuple<Algo, Family2D, int, int>> {};

TEST_P(Hull2DOracle, MatchesMonotoneChain) {
  const auto [algo, family, size, seed] = GetParam();
  const auto pts = geom::make2d(family, static_cast<std::size_t>(size),
                                static_cast<std::uint64_t>(seed) * 7919 + 1);
  const auto want = upper_hull(pts);
  geom::UpperHull2D got;
  switch (algo) {
    case Algo::kQuickHull:
      got = quickhull_upper(pts);
      break;
    case Algo::kKS:
      got = ks_upper_hull(pts);
      break;
    case Algo::kChan:
      got = chan_upper_hull(pts);
      break;
  }
  // Hulls must agree as point sequences (indices may differ when
  // duplicate points exist; compare coordinates).
  ASSERT_EQ(got.vertices.size(), want.vertices.size())
      << algo_name(algo) << " on " << family_name(family);
  for (std::size_t i = 0; i < got.vertices.size(); ++i) {
    EXPECT_EQ(pts[got.vertices[i]], pts[want.vertices[i]]) << "vertex " << i;
  }
  std::string err;
  EXPECT_TRUE(validate_upper_hull(pts, got, &err)) << err;
}

std::string sweep_name(
    const ::testing::TestParamInfo<std::tuple<Algo, Family2D, int, int>>&
        info) {
  const auto [algo, family, size, seed] = info.param;
  return algo_name(algo) + "_" + geom::family_name(family) + "_n" +
         std::to_string(size) + "_s" + std::to_string(seed);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, Hull2DOracle,
    ::testing::Combine(::testing::Values(Algo::kQuickHull, Algo::kKS,
                                         Algo::kChan),
                       ::testing::ValuesIn(geom::kAllFamilies2D),
                       ::testing::Values(1, 2, 3, 7, 64, 257, 1024),
                       ::testing::Values(1, 2, 3)),
    sweep_name);

}  // namespace
}  // namespace iph::seq
