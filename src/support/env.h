// Environment-variable configuration knobs shared by tests, benches and
// examples. All knobs have safe defaults so binaries run with no setup:
//   IPH_THREADS    — hardware threads backing the PRAM simulator (default:
//                    std::thread::hardware_concurrency()).
//   IPH_SEED       — master RNG seed (default 0x1991'07'22, the venue date).
//   IPH_PRAM_CHECK — "1"/"true"/"on" turns the step-race discipline
//                    checker (pram/shadow.h) on for every Machine;
//                    "0"/"false"/"off" forces it off even in builds
//                    configured with -DIPH_ENABLE_PRAM_CHECK=ON.
//   IPH_CW_CONFLICTS — "1" turns combining-write conflict counting on
//                    for every Machine (writes beyond the first into the
//                    same combining cell within one step). Attaching a
//                    trace::Recorder enables it regardless of this knob.
//   IPH_PRAM_GRAIN — serial-dispatch cutover of the PRAM simulator
//                    (default 2048): a step body with fewer virtual
//                    processors than this runs inline on the calling
//                    thread instead of through the pool. Scheduling
//                    only — results and PRAM metrics never depend on it.
//                    Clamped to >= 1; the serving batcher tunes it per
//                    shard via Machine::set_grain.
//
// The bench/report harness reads further knobs (IPH_BENCH_OUT_DIR,
// IPH_BENCH_MAX_N, IPH_BENCH_BASELINE_DIR, IPH_BENCH_TOL,
// IPH_BENCH_SKIP_CLAIMS, IPH_TRACE_DIR) via env_string/env_u64 below;
// they are documented in bench/report.h and README.md.
#pragma once

#include <cstdint>
#include <string>

namespace iph::support {

/// Number of hardware threads the simulator should use.
unsigned env_threads() noexcept;

/// Master seed for randomized algorithms unless a caller overrides it.
std::uint64_t env_seed() noexcept;

/// Serial-dispatch grain for pram::Machine (IPH_PRAM_GRAIN, default
/// 2048, clamped to >= 1; unparsable values fall back to the default).
std::uint64_t env_pram_grain() noexcept;

/// Boolean knob: unset -> fallback; "1"/"true"/"on"/"yes" -> true;
/// anything else -> false.
bool env_flag(const char* name, bool fallback) noexcept;

/// String knob: unset or empty -> fallback.
std::string env_string(const char* name, std::string fallback);

/// Unsigned knob: unset or unparsable -> fallback. Accepts 0x prefixes.
std::uint64_t env_u64(const char* name, std::uint64_t fallback) noexcept;

/// Double knob: unset or unparsable -> fallback.
double env_double(const char* name, double fallback) noexcept;

}  // namespace iph::support
