#include "serve/batcher.h"

#include "exec/pram_backend.h"

namespace iph::serve {

std::vector<Response> execute_batch(const BackendSet& backends,
                                    std::span<const Request> requests,
                                    std::uint64_t master_seed,
                                    BatchExecInfo* info) {
  // Pack the batch into one contiguous arena; request r's points live in
  // the disjoint cell range [offsets[r], offsets[r] + n_r).
  std::vector<std::size_t> offsets;
  offsets.reserve(requests.size());
  std::size_t total = 0;
  for (const Request& r : requests) {
    offsets.push_back(total);
    total += r.points.size();
  }
  std::vector<geom::Point2> arena;
  arena.reserve(total);
  for (const Request& r : requests) {
    arena.insert(arena.end(), r.points.begin(), r.points.end());
  }

  std::vector<Response> out;
  out.reserve(requests.size());
  if (info != nullptr) {
    info->completed_at.clear();
    info->completed_at.reserve(requests.size());
    info->started_at.clear();
    info->started_at.reserve(requests.size());
    info->pram_events.clear();
    info->pram_events.reserve(requests.size());
    info->pram_total = pram::Metrics{};
    info->pram_requests = 0;
    info->native_requests = 0;
  }
  for (std::size_t i = 0; i < requests.size(); ++i) {
    const Request& r = requests[i];
    const std::uint64_t seed = derive_request_seed(master_seed, r.id);
    exec::Backend* backend = backends.resolve(r.backend);
    const bool on_pram = backend->kind() != exec::BackendKind::kNative;
    const std::size_t ev_begin =
        backends.recorder != nullptr && on_pram
            ? backends.recorder->events().size()
            : 0;
    const auto t0 = Clock::now();
    exec::HullRun run = backend->upper_hull(
        std::span<const geom::Point2>(arena).subspan(offsets[i],
                                                     r.points.size()),
        seed, r.alpha);
    const auto t1 = Clock::now();
    Response resp;
    resp.id = r.id;
    resp.status = Status::kOk;
    resp.hull = std::move(run.hull);
    resp.metrics.seed = seed;
    resp.metrics.steps = run.metrics.steps;
    resp.metrics.work = run.metrics.work;
    resp.metrics.max_active = run.metrics.max_active;
    resp.metrics.batch_size = requests.size();
    resp.metrics.exec_ms = ms_between(t0, t1);
    resp.metrics.backend = backend->kind();
    if (info != nullptr) {
      info->completed_at.push_back(t1);
      info->started_at.push_back(t0);
      const std::size_t ev_end =
          backends.recorder != nullptr && on_pram
              ? backends.recorder->events().size()
              : 0;
      info->pram_events.emplace_back(ev_begin, ev_end);
      info->pram_total.add_counters(run.metrics);
      if (backend->kind() == exec::BackendKind::kNative) {
        ++info->native_requests;
      } else {
        ++info->pram_requests;
      }
    }
    out.push_back(std::move(resp));
  }
  return out;
}

std::vector<Response> execute_batch(pram::Machine& m,
                                    std::span<const Request> requests,
                                    std::uint64_t master_seed,
                                    BatchExecInfo* info) {
  exec::PramBackend pram_backend(m);
  BackendSet backends;
  backends.pram = &pram_backend;
  return execute_batch(backends, requests, master_seed, info);
}

}  // namespace iph::serve
