#include "stats/export.h"

#include <cmath>
#include <cstdio>

namespace iph::stats {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  // %.17g round-trips doubles; trim the common integer case for
  // readability ("3" not "3.0000000000000000").
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

// Split `name{label="v"}` into base and the inner label list ("" when
// unlabeled) so `le` can be spliced in next to existing labels.
void split_labels(const std::string& name, std::string& base,
                  std::string& labels) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    base = name;
    labels.clear();
    return;
  }
  base = name.substr(0, brace);
  labels = name.substr(brace + 1, name.size() - brace - 2);
}

void emit_type_line(std::string& out, std::string& last_base,
                    const std::string& base, const char* type) {
  if (base == last_base) return;  // labeled siblings share one TYPE line
  last_base = base;
  out += "# TYPE ";
  out += base;
  out += ' ';
  out += type;
  out += '\n';
}

}  // namespace

std::string to_prometheus(const RegistrySnapshot& snap) {
  std::string out;
  std::string base, labels, last_base;
  for (const auto& [name, v] : snap.counters) {
    split_labels(name, base, labels);
    emit_type_line(out, last_base, base, "counter");
    out += name;
    out += ' ';
    out += fmt_double(static_cast<double>(v));
    out += '\n';
  }
  for (const auto& [name, v] : snap.gauges) {
    split_labels(name, base, labels);
    emit_type_line(out, last_base, base, "gauge");
    out += name;
    out += ' ';
    out += fmt_double(static_cast<double>(v));
    out += '\n';
  }
  for (const auto& [name, h] : snap.histograms) {
    split_labels(name, base, labels);
    emit_type_line(out, last_base, base, "histogram");
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      cum += h.buckets[i];
      const std::string le =
          i < h.bounds.size() ? fmt_double(h.bounds[i]) : std::string("+Inf");
      out += base;
      out += "_bucket{";
      if (!labels.empty()) {
        out += labels;
        out += ',';
      }
      out += "le=\"";
      out += le;
      out += "\"} ";
      out += fmt_double(static_cast<double>(cum));
      out += '\n';
    }
    const std::string suffix = labels.empty() ? "" : "{" + labels + "}";
    out += base + "_sum" + suffix + ' ' + fmt_double(h.sum) + '\n';
    out += base + "_count" + suffix + ' ' +
           fmt_double(static_cast<double>(h.count)) + '\n';
  }
  return out;
}

trace::Json to_json(const RegistrySnapshot& snap) {
  trace::Json j = trace::Json::object();
  j["schema"] = trace::Json("iph-stats-v1");
  trace::Json& counters = (j["counters"] = trace::Json::object());
  for (const auto& [name, v] : snap.counters) counters[name] = trace::Json(v);
  trace::Json& gauges = (j["gauges"] = trace::Json::object());
  for (const auto& [name, v] : snap.gauges) gauges[name] = trace::Json(v);
  trace::Json& hists = (j["histograms"] = trace::Json::object());
  for (const auto& [name, h] : snap.histograms) {
    trace::Json& hj = (hists[name] = trace::Json::object());
    trace::Json& bounds = (hj["bounds"] = trace::Json::array());
    for (double b : h.bounds) bounds.push_back(trace::Json(b));
    trace::Json& buckets = (hj["buckets"] = trace::Json::array());
    for (std::uint64_t b : h.buckets) buckets.push_back(trace::Json(b));
    hj["count"] = trace::Json(h.count);
    hj["sum"] = trace::Json(h.sum);
  }
  return j;
}

namespace {

bool fail(std::string* err, const std::string& msg) {
  if (err != nullptr) *err = msg;
  return false;
}

}  // namespace

bool from_json(const trace::Json& j, RegistrySnapshot& out, std::string* err) {
  out = RegistrySnapshot{};
  if (!j.is_object()) return fail(err, "stats: not an object");
  if (j.get_str("schema") != "iph-stats-v1") {
    return fail(err, "stats: schema is not iph-stats-v1");
  }
  const trace::Json* counters = j.find("counters");
  const trace::Json* gauges = j.find("gauges");
  const trace::Json* hists = j.find("histograms");
  if (counters == nullptr || !counters->is_object() || gauges == nullptr ||
      !gauges->is_object() || hists == nullptr || !hists->is_object()) {
    return fail(err, "stats: counters/gauges/histograms must be objects");
  }
  for (const auto& [name, v] : counters->members()) {
    if (!v.is_number()) return fail(err, "stats: counter " + name + " not a number");
    out.counters.emplace_back(name, v.as_u64());
  }
  for (const auto& [name, v] : gauges->members()) {
    if (!v.is_number()) return fail(err, "stats: gauge " + name + " not a number");
    out.gauges.emplace_back(name, static_cast<std::int64_t>(v.as_double()));
  }
  for (const auto& [name, hv] : hists->members()) {
    if (!hv.is_object()) return fail(err, "stats: histogram " + name + " not an object");
    const trace::Json* bounds = hv.find("bounds");
    const trace::Json* buckets = hv.find("buckets");
    const trace::Json* count = hv.find("count");
    const trace::Json* sum = hv.find("sum");
    if (bounds == nullptr || !bounds->is_array() || buckets == nullptr ||
        !buckets->is_array() || count == nullptr || !count->is_number() ||
        sum == nullptr || !sum->is_number()) {
      return fail(err, "stats: histogram " + name + " missing fields");
    }
    if (buckets->size() != bounds->size() + 1) {
      return fail(err, "stats: histogram " + name +
                           " buckets must be bounds+1 (overflow)");
    }
    HistogramSnapshot h;
    for (const trace::Json& b : bounds->items()) {
      if (!b.is_number()) return fail(err, "stats: histogram " + name + " bad bound");
      h.bounds.push_back(b.as_double());
    }
    for (const trace::Json& b : buckets->items()) {
      if (!b.is_number()) return fail(err, "stats: histogram " + name + " bad bucket");
      h.buckets.push_back(b.as_u64());
    }
    h.count = count->as_u64();
    h.sum = sum->as_double();
    out.histograms.emplace_back(name, std::move(h));
  }
  return true;
}

}  // namespace iph::stats
