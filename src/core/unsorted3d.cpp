#include "core/unsorted3d.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

#include "core/unsorted2d.h"
#include "geom/predicates.h"
#include "pram/cells.h"
#include "pram/shadow.h"
#include "primitives/inplace_bridge.h"
#include "seq/quickhull3d.h"
#include "support/check.h"
#include "support/mathutil.h"

namespace iph::core {

using geom::Facet3;
using geom::Index;
using geom::Point3;

namespace {

/// Upward-oriented facet normal (doubles; used only to build the
/// facet-parallel projection directions, never for predicates).
struct Normal {
  double nx, ny, nz;
};

Normal facet_normal(const Point3& a, const Point3& b, const Point3& c) {
  const double ux = b.x - a.x, uy = b.y - a.y, uz = b.z - a.z;
  const double vx = c.x - a.x, vy = c.y - a.y, vz = c.z - a.z;
  Normal n{uy * vz - uz * vy, uz * vx - ux * vz, ux * vy - uy * vx};
  if (n.nz < 0) {
    n.nx = -n.nx;
    n.ny = -n.ny;
    n.nz = -n.nz;
  }
  return n;
}

/// Certify the assembled facet surface (host check, charged one step of
/// n + h work by the caller):
///  1. every point is covered by its pointer facet (containment + below),
///  2. the surface is locally convex across every shared edge,
///  3. all points lie xy-inside every boundary (silhouette) edge.
/// Local convexity of a covering piecewise-linear upper surface implies
/// global convexity, so these checks certify the exact upper hull — any
/// failure sends the caller to the fallback (Las Vegas repair).
bool verify_surface(std::span<const Point3> pts,
                    std::span<const Facet3> facets,
                    std::span<const Index> pointer, int* fail_kind) {
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (pointer[i] == geom::kNone) {
      *fail_kind = 1;
      return false;
    }
    const Facet3& f = facets[pointer[i]];
    if (!geom::xy_in_triangle(pts[f.a], pts[f.b], pts[f.c], pts[i]) ||
        !geom::on_or_below_plane(pts[f.a], pts[f.b], pts[f.c], pts[i])) {
      *fail_kind = 2;
      return false;
    }
  }
  // Edge -> (facet, opposite vertex) map.
  std::map<std::pair<Index, Index>, std::vector<std::pair<Index, Index>>>
      edges;
  for (std::size_t t = 0; t < facets.size(); ++t) {
    const Facet3& f = facets[t];
    const Index v[3] = {f.a, f.b, f.c};
    for (int e = 0; e < 3; ++e) {
      Index x = v[e], y = v[(e + 1) % 3];
      const Index opp = v[(e + 2) % 3];
      if (x > y) std::swap(x, y);
      edges[{x, y}].push_back({static_cast<Index>(t), opp});
    }
  }
  for (const auto& [edge, adj] : edges) {
    if (adj.size() > 2) {
      *fail_kind = 3;
      return false;  // broken tiling
    }
    if (adj.size() == 2) {
      const Facet3& f0 = facets[adj[0].first];
      const Facet3& f1 = facets[adj[1].first];
      if (!geom::on_or_below_plane(pts[f0.a], pts[f0.b], pts[f0.c],
                                   pts[adj[1].second]) ||
          !geom::on_or_below_plane(pts[f1.a], pts[f1.b], pts[f1.c],
                                   pts[adj[0].second])) {
        *fail_kind = 4;
        return false;
      }
    } else {
      // Boundary (silhouette) edge: every point must be on the inner
      // side in xy (inner = the side of the facet's opposite vertex).
      const auto [x, y] = edge;
      const int inner = geom::orient2d_xy(
          pts[x], pts[y], pts[adj[0].second]);
      if (inner == 0) {
        *fail_kind = 5;
        return false;
      }
      for (const auto& q : pts) {
        const int s = geom::orient2d_xy(pts[x], pts[y], q);
        if (s != 0 && s != inner) {
          *fail_kind = 5;
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace

geom::HullResult3D fallback_hull_3d(pram::Machine& m,
                                    std::span<const Point3> pts) {
  const std::size_t n = pts.size();
  const unsigned logn = n > 1 ? support::ceil_log2(n) : 1;
  // Reif-Sen "polling" runs in O(log n) time with n processors w.h.p.;
  // our substitute computes the same output host-side and charges that
  // published cost (DESIGN.md substitution table).
  pram::Machine::Phase phase(m, "u3/fallback");
  m.charge(logn, n);
  return seq::quickhull_upper_hull3(pts);
}

geom::HullResult3D unsorted_hull_3d(pram::Machine& m,
                                    std::span<const Point3> pts,
                                    Unsorted3DStats* stats, int alpha) {
  Unsorted3DStats local;
  if (stats == nullptr) stats = &local;
  geom::HullResult3D r;
  const std::size_t n = pts.size();
  r.facet_above.assign(n, geom::kNone);
  if (n < 4) {
    return seq::quickhull_upper_hull3(pts);  // trivial sizes
  }

  // Unit lists (multi-membership): unit u = point up[u] inside problem
  // uq[u]. Initially one problem holding every point once.
  std::vector<Index> up(n);
  std::vector<std::uint32_t> uq(n, 0);
  // A point with several memberships (fences) votes only through its
  // PRIMARY one, so adjacent regions do not probe the same area twice.
  std::vector<std::uint8_t> uprimary(n, 1);
  for (std::size_t i = 0; i < n; ++i) up[i] = static_cast<Index>(i);
  std::vector<std::uint64_t> psize{n};

  // Output facets; pointer[i] indexes into it.
  std::vector<Facet3> facets;
  std::vector<Index>& pointer = r.facet_above;

  const unsigned logn = support::ceil_log2(n);
  const std::uint64_t fallback_threshold =
      std::max<std::uint64_t>(32, support::ipow_frac(n, 0.25));
  const std::uint64_t level_cap = 4 * logn + 16;
  const std::uint64_t unit_cap = 8 * static_cast<std::uint64_t>(n);

  while (!psize.empty()) {
    if (stats->levels >= level_cap || facets.size() >= fallback_threshold ||
        up.size() > unit_cap) {
      stats->used_fallback = true;
      stats->fallback_reason = stats->levels >= level_cap          ? 1
                               : facets.size() >= fallback_threshold ? 2
                                                                     : 3;
      stats->facets_found = facets.size();
      return fallback_hull_3d(m, pts);
    }
    ++stats->levels;
    const std::size_t np = psize.size();
    const std::uint64_t nu = up.size();
    stats->max_units = std::max<std::uint64_t>(stats->max_units, nu);

    // --- 1. splitters: in-place random vote among unpointered units ---
    std::vector<Index> splitters(np, geom::kNone);
    {
      pram::Machine::Phase phase(m, "u3/votes");
      constexpr std::uint64_t kCells = 16;
      std::vector<pram::TallyCell> attempts(np * kCells);
      std::vector<pram::MinCell> winner(np * kCells);
      for (int round = 0; round < 3; ++round) {
        m.step(np * kCells, [&](std::uint64_t w) {
          attempts[w].reset();
          winner[w].reset();
        });
        m.step(nu, [&](std::uint64_t u) {
          const std::uint32_t p = uq[u];
          if (p == primitives::kNoProblem || splitters[p] != geom::kNone ||
              pointer[up[u]] != geom::kNone || !uprimary[u]) {
            return;
          }
          auto rng = m.rng(u);
          const double pw = std::min(
              1.0, 8.0 / std::max<double>(1.0,
                                          static_cast<double>(psize[p])));
          if (!rng.bernoulli(pw)) return;
          const std::uint64_t w = p * kCells + rng.next_below(kCells);
          attempts[w].write();
          winner[w].write(up[u]);
        });
        m.step_active(np, np * kCells, [&](std::uint64_t p) {
          if (splitters[p] != geom::kNone) return;
          for (std::uint64_t c = 0; c < kCells; ++c) {
            if (attempts[p * kCells + c].read() == 1) {
              pram::tracked_write(
                  p, splitters[p],
                  static_cast<Index>(winner[p * kCells + c].read()));
              return;
            }
          }
        });
      }
      // Deterministic stragglers / retirement of all-pointered problems.
      std::vector<pram::MinCell> det(np);
      m.step(nu, [&](std::uint64_t u) {
        const std::uint32_t p = uq[u];
        if (p != primitives::kNoProblem && splitters[p] == geom::kNone &&
            pointer[up[u]] == geom::kNone && uprimary[u]) {
          det[p].write(up[u]);
        }
      });
      for (std::size_t p = 0; p < np; ++p) {
        if (splitters[p] == geom::kNone && !det[p].empty()) {
          splitters[p] = static_cast<Index>(det[p].read());
        }
      }
    }
    // Problems with no unpointered point retire now (splitter == kNone).

    // --- 2. facet probes (Lemma 4.2, 3-d) ------------------------------
    std::vector<primitives::BridgeProblem> problems(np);
    for (std::size_t p = 0; p < np; ++p) {
      problems[p].splitter = splitters[p] == geom::kNone
                                 ? 0  // idle placeholder; masked below
                                 : splitters[p];
      problems[p].size_est = psize[p];
      problems[p].k = std::max<std::uint64_t>(
          2, support::ipow_frac(psize[p], 0.25));
    }
    const auto unit_point = [&](std::uint64_t u) {
      return static_cast<std::uint64_t>(up[u]);
    };
    const auto unit_problem = [&](std::uint64_t u) -> std::uint32_t {
      const std::uint32_t p = uq[u];
      if (p == primitives::kNoProblem || splitters[p] == geom::kNone) {
        return primitives::kNoProblem;
      }
      return p;
    };
    stats->probes += np;
    auto outcomes = primitives::inplace_bridges_3d_units(
        m, pts, nu, unit_point, unit_problem, problems, alpha);
    // Failure sweeping: the n^(1/4) budget, retried with growing alpha.
    {
      pram::Machine::Phase phase(m, "u3/sweep");
      std::vector<std::uint32_t> failed;
      for (std::uint32_t p = 0; p < np; ++p) {
        if (splitters[p] != geom::kNone && !outcomes[p].ok) {
          failed.push_back(p);
        }
      }
      for (int tries = 0; !failed.empty() && tries < 8; ++tries) {
        stats->failures_swept += failed.size();
        std::vector<primitives::BridgeProblem> retry(failed.size());
        std::vector<std::uint32_t> remap(np, primitives::kNoProblem);
        for (std::size_t t = 0; t < failed.size(); ++t) {
          retry[t] = problems[failed[t]];
          retry[t].k = std::max<std::uint64_t>(
              retry[t].k, support::ipow_frac(n, 0.25));
          remap[failed[t]] = static_cast<std::uint32_t>(t);
        }
        const auto rr = primitives::inplace_bridges_3d_units(
            m, pts, nu, unit_point,
            [&](std::uint64_t u) -> std::uint32_t {
              const std::uint32_t p = unit_problem(u);
              return p == primitives::kNoProblem ? p : remap[p];
            },
            retry, alpha * (1 << tries));
        std::vector<std::uint32_t> still;
        for (std::size_t t = 0; t < failed.size(); ++t) {
          if (rr[t].ok) {
            outcomes[failed[t]] = rr[t];
          } else {
            still.push_back(failed[t]);
          }
        }
        failed = std::move(still);
      }
      // Problems that remain unsolved are xy-degenerate: retire them.
      for (std::uint32_t p : failed) splitters[p] = geom::kNone;
    }
    // Record facets; assign pointers to covered points.
    std::vector<Index> facet_id(np, geom::kNone);
    for (std::size_t p = 0; p < np; ++p) {
      if (splitters[p] == geom::kNone || !outcomes[p].ok ||
          outcomes[p].facet.a == geom::kNone) {
        splitters[p] = geom::kNone;  // retired
        continue;
      }
      facet_id[p] = static_cast<Index>(facets.size());
      facets.push_back(outcomes[p].facet);
    }
    stats->facets_found = facets.size();
    // Fence points on a shared ridge can be covered by facets of BOTH
    // adjacent problems in the same step: resolve with a priority cell.
    std::vector<pram::MinCell> assign(n);
    {
      pram::Machine::Phase assign_phase(m, "u3/assign");
      m.step(nu, [&](std::uint64_t u) {
        const std::uint32_t p = uq[u];
        if (p == primitives::kNoProblem || facet_id[p] == geom::kNone) {
          return;
        }
        const Index i = up[u];
        if (pointer[i] != geom::kNone) return;
        const Facet3& f = facets[facet_id[p]];
        if (geom::xy_in_triangle(pts[f.a], pts[f.b], pts[f.c], pts[i])) {
          assign[i].write(facet_id[p]);
        }
      });
      m.step(n, [&](std::uint64_t i) {
        if (pointer[i] == geom::kNone && !assign[i].empty()) {
          pram::tracked_write(i, pointer[i],
                              static_cast<Index>(assign[i].read()));
        }
      });
    }

    // --- 3. projections + the two inner 2-d runs ----------------------
    pram::Machine::Phase project_phase(m, "u3/project");
    std::vector<geom::Point2> proj1(nu), proj2(nu);
    std::vector<std::uint32_t> live_of(nu, primitives::kNoProblem);
    m.step(nu, [&](std::uint64_t u) {
      const std::uint32_t p = uq[u];
      if (p == primitives::kNoProblem || facet_id[p] == geom::kNone) return;
      const Facet3& f = facets[facet_id[p]];
      const Normal nm =
          facet_normal(pts[f.a], pts[f.b], pts[f.c]);
      const Point3& q = pts[up[u]];
      pram::tracked_write(u, proj1[u],
                          geom::Point2{q.x, q.z + q.y * nm.ny / nm.nz});
      pram::tracked_write(u, proj2[u],
                          geom::Point2{q.y, q.z + q.x * nm.nx / nm.nz});
      pram::tracked_write(u, live_of[u], p);
    });
    Unsorted2DStats inner_stats;
    const auto ridge1 =
        unsorted_2d_scoped(m, proj1, live_of, np, &inner_stats, alpha);
    const auto ridge2 =
        unsorted_2d_scoped(m, proj2, live_of, np, &inner_stats, alpha);
    stats->inner2d_levels += inner_stats.levels;
    if (ridge1.wants_fallback || ridge2.wants_fallback) {
      stats->used_fallback = true;
      stats->fallback_reason = 4;
      return fallback_hull_3d(m, pts);
    }

    // --- 4. classification: ridge sides -> up to 4 memberships --------
    // side < 0 / > 0 pick one child; side == 0 or fence vertex joins
    // both (the multi-membership fences).
    std::vector<std::uint8_t> side_mask(nu, 0);  // bit0..3 = children
    m.step(nu, [&](std::uint64_t u) {
      const std::uint32_t p = live_of[u];
      if (p == primitives::kNoProblem) return;
      const Facet3& f = facets[facet_id[p]];
      // The facet's own vertices border every child region: they are
      // unconditional fences (the float-rounded projection directions do
      // not guarantee they land exactly on the ridge chains).
      if (up[u] == f.a || up[u] == f.b || up[u] == f.c) {
        pram::tracked_write(u, side_mask[u], std::uint8_t{0b1111});
        return;
      }
      // Pointered units stay in their region as TESTERS: they no longer
      // vote or sample, but they keep constraining the probes, so every
      // facet dominates all points spatially assigned to its region.
      const bool fence1 = ridge1.pair_a[u] == static_cast<Index>(u) ||
                          ridge1.pair_b[u] == static_cast<Index>(u);
      const bool fence2 = ridge2.pair_a[u] == static_cast<Index>(u) ||
                          ridge2.pair_b[u] == static_cast<Index>(u);
      const Point3& q = pts[up[u]];
      int s1 = 0, s2 = 0;  // 0 = both sides (on the ridge's xy-path)
      // The facets' xy-projections tile the plane and the ridge chains'
      // xy-projections bound the regions: the side tests are exact 2-d
      // orientations against the covering ridge edge's xy-projection.
      if (!fence1 && ridge1.pair_a[u] != geom::kNone) {
        const Point3& ua = pts[up[ridge1.pair_a[u]]];
        const Point3& ub = pts[up[ridge1.pair_b[u]]];
        s1 = geom::orient2d_xy(ua, ub, q);
      }
      if (!fence2 && ridge2.pair_a[u] != geom::kNone) {
        const Point3& ua = pts[up[ridge2.pair_a[u]]];
        const Point3& ub = pts[up[ridge2.pair_b[u]]];
        s2 = geom::orient2d_xy(ua, ub, q);
      }
      std::uint8_t mask = 0;
      for (int b1 = 0; b1 < 2; ++b1) {
        if (s1 != 0 && b1 != (s1 > 0)) continue;
        for (int b2 = 0; b2 < 2; ++b2) {
          if (s2 != 0 && b2 != (s2 > 0)) continue;
          mask |= static_cast<std::uint8_t>(1u << (2 * b1 + b2));
        }
      }
      pram::tracked_write(u, side_mask[u], mask);
    });
    // Child bookkeeping: count unpointered members per child; children
    // with none retire (their fences are done).
    std::vector<pram::TallyCell> child_alive(4 * np);
    std::vector<pram::TallyCell> child_total(4 * np);
    m.step(nu, [&](std::uint64_t u) {
      const std::uint32_t p = live_of[u];
      if (p == primitives::kNoProblem || side_mask[u] == 0) return;
      for (int c = 0; c < 4; ++c) {
        if (side_mask[u] & (1u << c)) {
          child_total[4 * p + c].write();
          if (pointer[up[u]] == geom::kNone) child_alive[4 * p + c].write();
        }
      }
    });
    std::vector<std::uint32_t> child_id(4 * np, primitives::kNoProblem);
    std::vector<std::uint64_t> next_sizes;
    for (std::size_t s = 0; s < 4 * np; ++s) {
      if (child_alive[s].read() > 0) {
        child_id[s] = static_cast<std::uint32_t>(next_sizes.size());
        next_sizes.push_back(child_total[s].read());
      }
    }
    // Emit next-level units (host gather; charged one step, nu work).
    std::vector<Index> next_up;
    std::vector<std::uint32_t> next_uq;
    std::vector<std::uint8_t> next_primary;
    m.step_active(1, nu, [&](std::uint64_t) {
      for (std::uint64_t u = 0; u < nu; ++u) {
        const std::uint32_t p = live_of[u];
        if (p == primitives::kNoProblem || side_mask[u] == 0) continue;
        bool first = uprimary[u] != 0;
        for (int c = 0; c < 4; ++c) {
          if ((side_mask[u] & (1u << c)) &&
              child_id[4 * p + c] != primitives::kNoProblem) {
            next_up.push_back(up[u]);
            next_uq.push_back(child_id[4 * p + c]);
            next_primary.push_back(first ? 1 : 0);
            first = false;
          }
        }
      }
    });
    up = std::move(next_up);
    uq = std::move(next_uq);
    uprimary = std::move(next_primary);
    psize = std::move(next_sizes);
  }

  // Deduplicate facets (adjacent problems can rediscover a shared one)
  // and remap pointers. Host presentation.
  std::map<std::tuple<Index, Index, Index>, Index> canon;
  std::vector<Index> remap(facets.size());
  std::vector<Facet3> unique_facets;
  for (std::size_t f = 0; f < facets.size(); ++f) {
    Index v[3] = {facets[f].a, facets[f].b, facets[f].c};
    std::sort(v, v + 3);
    const auto key = std::make_tuple(v[0], v[1], v[2]);
    const auto it = canon.find(key);
    if (it == canon.end()) {
      canon.emplace(key, static_cast<Index>(unique_facets.size()));
      remap[f] = static_cast<Index>(unique_facets.size());
      unique_facets.push_back(facets[f]);
    } else {
      remap[f] = it->second;
    }
  }
  for (auto& ptr : pointer) {
    if (ptr != geom::kNone) ptr = remap[ptr];
  }
  r.facets = std::move(unique_facets);
  // Certify the surface (one step, n + h work); on failure, repair with
  // the fallback — the algorithm is Las Vegas: its output is always the
  // exact upper hull.
  {
    pram::Machine::Phase certify_phase(m, "u3/certify");
    m.step_active(1, n + r.facets.size(), [](std::uint64_t) {});
  }
  int fail_kind = 0;
  if (!verify_surface(pts, r.facets, pointer, &fail_kind)) {
    stats->used_fallback = true;
    stats->fallback_reason = 5;
    stats->verify_fail_kind = fail_kind;
    return fallback_hull_3d(m, pts);
  }
  return r;
}

}  // namespace iph::core
