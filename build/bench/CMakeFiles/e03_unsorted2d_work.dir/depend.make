# Empty dependencies file for e03_unsorted2d_work.
# This may be replaced when dependencies are built.
