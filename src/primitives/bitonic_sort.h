// Bitonic sort on the PRAM simulator: O(log^2 n) steps, n/2 processors
// per step, deterministic. Substrate for the fallback paths that need
// sorted input (the Atallah-Goodrich-style parallel hull used when the
// output-sensitive recursion gives up, Section 4.1 step 3): the paper
// charges those paths O(n log n) work, which bitonic sort respects up to
// the extra log factor in depth (documented in DESIGN.md).
#pragma once

#include <span>

#include "geom/hull_types.h"
#include "geom/point.h"
#include "pram/machine.h"

namespace iph::primitives {

/// Sort `idx` (indices into pts) into lexicographic point order.
void bitonic_sort_points(pram::Machine& m,
                         std::span<const geom::Point2> pts,
                         std::span<geom::Index> idx);

/// Sort raw 64-bit keys ascending (used by tests and the allocation
/// bench).
void bitonic_sort_keys(pram::Machine& m, std::span<std::uint64_t> keys);

}  // namespace iph::primitives
