// hullload — closed/open-loop load generator for the hull service.
//
//   hullload [options]                     drive an in-process HullService
//   hullload --connect HOST:PORT [...]     drive a running hullserved
//   hullload --endpoints H:P[,H:P...]      drive several targets at once
//                                          (clients round-robin across
//                                          them; --scrape merges)
//
// --clients C threads each issue --requests R queries of workload
// --workload/--n (per-request generator seed = --seed + request id, so
// every query is distinct but the run is reproducible). Closed loop by
// default: each client waits for its answer before sending the next.
// --qps Q switches to open loop: clients send at a combined target rate
// of Q regardless of completions (over TCP a per-client reader thread
// matches responses to send times in FIFO order — hullserved answers
// each connection in submission order).
//
// Prints counts per terminal status, achieved qps, and p50/p95/p99
// end-to-end latency over the ok responses; --json appends one
// machine-readable summary line to stdout.
//
// --backend pram|native pins every request to one execution engine
// (exec/backend.h); default lets the server's own --backend decide.
//
// --scrape fetches the server's metrics registry (statz) before and
// after the run, diffs the snapshots, and cross-checks the server-side
// accounting against this client's own tally: every per-status counter
// must reconcile EXACTLY (the run must be the server's only traffic),
// including the backend-labeled served counters (pram + native ==
// completed; with --backend pinned, that engine's counter == ok), and
// server-side ok-e2e p99 must be within --scrape-tol (a ratio;
// default 8, floored at 0.05 ms to ignore sub-bucket noise; 0 disables)
// of the client-observed p99. Violations print loudly and exit 1.
// --scrape-out FILE writes the diffed snapshot as iph-stats-v1 JSON
// plus a "served_backend" key ("pram" | "native" | "mixed") naming the
// engine(s) that absorbed the run (the CI serve-smoke job uploads it
// as an artifact).
//
// With --endpoints, --scrape scrapes EVERY target before and after,
// diffs each pairwise and sums the diffs (src/cluster/merge.h) into
// one fleet view the same identities run against. When the scraped
// diff carries router counters (iph_router_forwards_total — the
// target is a hullrouter, whose statz already rolls up its backends),
// the identities account for re-routing: fleet submitted == client
// requests + executed retries{rejected_*} (a retried request submits
// once per attempt), per-reason backend rejects == surfaced client
// rejects + retries with that reason, and router forwards == fleet
// submitted (the load run is the fleet's only request traffic).
// Completed == client ok either way: a retried request completes
// exactly once.
//
// When the server runs a flight recorder (src/obs), --scrape also
// reconciles the tracing counters: every completed request published
// exactly one kind="request" trace of exactly kSpansPerRequest spans
// (--stream: one kind="session" trace per append, spans == appends +
// rebuilds). The checks key off counter PRESENCE in the diffed
// snapshot, so servers running --obs-capacity 0 still reconcile.
//
// --trace-slowest N fetches the server's flight recorder after the run
// (tracez order=slowest) and prints the span trees of the N
// worst-latency retained requests — queue_wait/lease/exec plus, on the
// PRAM path, the linked per-phase simulator spans.
//
// --stream switches to the streaming-session protocol (src/session):
// each client opens ONE session, issues --requests appends of
// --append-points points each (closed loop, or paced by --qps), then
// closes it. The latency percentiles are per-append DELTA latencies
// (send append -> delta applied), and the summary adds delta-op,
// rebuild and peak-workspace accounting from the close summaries.
// --scrape reconciles the iph_session_* registry counters instead:
// opened/closed == clients, appends == client ok count, append_points
// == appends x --append-points, zero rejects, zero rebuild
// mismatches, and both session gauges (live_sessions, aux_cells) back
// at zero after the run.
//
// Exit codes: 0 done, 1 with --expect-all-ok if any request was
// rejected/expired/errored or with --scrape on reconcile/tolerance
// failure, 2 usage error, 3 connect failure.
#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/merge.h"
#include "cluster/stats.h"
#include "exec/backend.h"
#include "geom/workloads.h"
#include "obs/flight_recorder.h"
#include "serve/request.h"
#include "serve/service.h"
#include "serve_wire.h"
#include "session/manager.h"
#include "trace/json.h"

namespace {

using Clock = std::chrono::steady_clock;
using iph::serve::HullService;
using iph::serve::Response;
using iph::serve::ServiceConfig;
using iph::serve::Status;
using iph::tools::LineChannel;
using iph::trace::Json;

struct Options {
  int clients = 4;
  int requests = 64;  // per client
  double qps = 0;     // total offered rate; 0 = closed loop
  std::size_t n = 256;
  std::string workload = "disk";
  std::uint64_t seed = 1;
  double deadline_ms = 0;
  std::string connect;  // empty = in-process
  /// Multi-target mode (--endpoints): client c drives
  /// targets[c % size]; --scrape scrapes and merges all of them.
  /// --connect is the one-element special case.
  std::vector<std::string> endpoints;
  /// Engine every request asks for ("default" lets the server pick —
  /// tagged on the wire / Request so the scrape reconciliation knows
  /// which backend-labeled counter must absorb the run).
  iph::exec::BackendKind backend = iph::exec::BackendKind::kDefault;
  bool expect_all_ok = false;
  bool json = false;
  bool scrape = false;
  double scrape_tol = 8.0;   // p99 ratio tolerance; 0 disables
  std::string scrape_out;    // write diffed snapshot JSON here
  ServiceConfig cfg;  // in-process service shape
  /// Streaming-session mode: one session per client, --requests
  /// appends of `append_points` points each.
  bool stream = false;
  std::size_t append_points = 16;
  /// Print span trees of the N slowest retained traces after the run.
  int trace_slowest = 0;
};

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--clients C] [--requests R] [--qps Q] [--n N]\n"
      "          [--workload W] [--seed S] [--deadline-ms D]\n"
      "          [--connect HOST:PORT | --endpoints H:P[,H:P...] |\n"
      "           --shards N --workers N --threads N\n"
      "           --capacity N --window-us U --no-large]\n"
      "          [--backend pram|native|default]\n"
      "          [--stream] [--append-points K]\n"
      "          [--expect-all-ok] [--json]\n"
      "          [--scrape] [--scrape-tol R] [--scrape-out FILE]\n"
      "          [--trace-slowest N]\n",
      argv0);
  return 2;
}

/// Per-request outcome, merged across clients after the run.
struct Tally {
  std::uint64_t ok = 0, rejected_full = 0, rejected_shutdown = 0,
                expired = 0, errors = 0;
  std::vector<double> ok_e2e_ms;
  // --stream extras (zero in batch mode): delta-op count across ok
  // appends, rebuild audits observed, the close summaries' totals.
  std::uint64_t delta_ops = 0, rebuilds = 0, mismatches = 0, points = 0;
  std::uint64_t peak_aux_max = 0;

  void count(std::string_view status, double e2e_ms) {
    if (status == "ok") {
      ++ok;
      ok_e2e_ms.push_back(e2e_ms);
    } else if (status == "rejected_full") {
      ++rejected_full;
    } else if (status == "rejected_shutdown") {
      ++rejected_shutdown;
    } else if (status == "expired") {
      ++expired;
    } else {
      ++errors;
    }
  }
  void merge(Tally&& o) {
    ok += o.ok;
    rejected_full += o.rejected_full;
    rejected_shutdown += o.rejected_shutdown;
    expired += o.expired;
    errors += o.errors;
    ok_e2e_ms.insert(ok_e2e_ms.end(), o.ok_e2e_ms.begin(),
                     o.ok_e2e_ms.end());
    delta_ops += o.delta_ops;
    rebuilds += o.rebuilds;
    mismatches += o.mismatches;
    points += o.points;
    peak_aux_max = std::max(peak_aux_max, o.peak_aux_max);
  }
};

double percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

/// Open-loop pacing: the instant client c should send its i-th request,
/// with the C clients' streams interleaved to hit `qps` combined.
Clock::time_point send_at(Clock::time_point start, const Options& opt,
                          int client, int i) {
  const double interval_s = static_cast<double>(opt.clients) / opt.qps;
  const double offset_s =
      interval_s * (static_cast<double>(i) +
                    static_cast<double>(client) / opt.clients);
  return start + std::chrono::microseconds(
                     static_cast<std::int64_t>(offset_s * 1e6));
}

Tally run_client_inproc(HullService& svc, const Options& opt, int client,
                        Clock::time_point start) {
  // Points are generated up front so the measured loop is pure serving.
  std::vector<std::vector<iph::geom::Point2>> pts(
      static_cast<std::size_t>(opt.requests));
  std::vector<iph::serve::RequestId> ids(
      static_cast<std::size_t>(opt.requests));
  for (int i = 0; i < opt.requests; ++i) {
    ids[i] = static_cast<iph::serve::RequestId>(client) * opt.requests + i +
             1;
    if (!iph::tools::make_workload(opt.workload, opt.n, opt.seed + ids[i],
                                   &pts[i])) {
      std::abort();  // workload validated in main()
    }
  }
  Tally t;
  auto make_req = [&](int i) {
    iph::serve::Request r;
    r.id = ids[i];
    r.points = pts[i];
    r.backend = opt.backend;
    if (opt.deadline_ms > 0) {
      r.deadline = Clock::now() + std::chrono::microseconds(static_cast<
                       std::int64_t>(opt.deadline_ms * 1000.0));
    }
    return r;
  };
  if (opt.qps <= 0) {  // closed loop: send, wait, repeat
    for (int i = 0; i < opt.requests; ++i) {
      const auto t0 = Clock::now();
      const Response resp = svc.submit(make_req(i)).get();
      const double ms = iph::serve::ms_between(t0, Clock::now());
      t.count(iph::serve::status_name(resp.status), ms);
    }
  } else {  // open loop: pace sends, collect afterwards
    std::vector<std::future<Response>> futs;
    futs.reserve(static_cast<std::size_t>(opt.requests));
    for (int i = 0; i < opt.requests; ++i) {
      std::this_thread::sleep_until(send_at(start, opt, client, i));
      futs.push_back(svc.submit(make_req(i)));
    }
    for (auto& f : futs) {
      const Response resp = f.get();
      // The service stamps submit -> response-ready; that IS the
      // open-loop latency (the client never waited in between).
      t.count(iph::serve::status_name(resp.status), resp.metrics.e2e_ms);
    }
  }
  return t;
}

int connect_to(const std::string& hostport) {
  const auto colon = hostport.rfind(':');
  if (colon == std::string::npos) return -1;
  const std::string host = hostport.substr(0, colon);
  const std::string port = hostport.substr(colon + 1);
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(host.c_str(), port.c_str(), &hints, &res) != 0) {
    return -1;
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  return fd;
}

Tally run_client_tcp(const Options& opt, const std::string& target,
                     int client, Clock::time_point start,
                     std::atomic<bool>* failed) {
  Tally t;
  const int fd = connect_to(target);
  if (fd < 0) {
    failed->store(true);
    return t;
  }
  LineChannel chan(fd, fd);
  auto request_line = [&](int i) {
    const auto id = static_cast<iph::serve::RequestId>(client) *
                        opt.requests + i + 1;
    Json j = Json::object();
    j["id"] = Json(id);
    j["n"] = Json(static_cast<std::uint64_t>(opt.n));
    j["workload"] = Json(opt.workload);
    j["seed"] = Json(opt.seed + id);
    if (opt.backend != iph::exec::BackendKind::kDefault) {
      j["backend"] = Json(iph::exec::backend_name(opt.backend));
    }
    if (opt.deadline_ms > 0) j["deadline_ms"] = Json(opt.deadline_ms);
    return j.dump();
  };
  auto status_of = [](const std::string& line) -> std::string {
    Json j;
    std::string err;
    if (!Json::parse(line, &j, &err)) return "error";
    if (j.find("error") != nullptr) return "error";
    return j.get_str("status", "error");
  };
  if (opt.qps <= 0) {  // closed loop
    std::string line;
    for (int i = 0; i < opt.requests; ++i) {
      const auto t0 = Clock::now();
      if (!chan.write_line(request_line(i)) || !chan.read_line(&line)) {
        failed->store(true);
        break;
      }
      const double ms = iph::serve::ms_between(t0, Clock::now());
      t.count(status_of(line), ms);
    }
  } else {
    // Open loop over TCP: the sender paces writes while a reader thread
    // pairs each response with the oldest outstanding send time —
    // positional FIFO matching, guaranteed by hullserved's in-order
    // responder.
    std::deque<Clock::time_point> sent;
    std::mutex mu;
    std::thread reader([&] {
      std::string line;
      for (int i = 0; i < opt.requests; ++i) {
        if (!chan.read_line(&line)) {
          failed->store(true);
          return;
        }
        Clock::time_point t0;
        {
          std::lock_guard<std::mutex> lk(mu);
          t0 = sent.front();
          sent.pop_front();
        }
        const double ms = iph::serve::ms_between(t0, Clock::now());
        t.count(status_of(line), ms);
      }
    });
    for (int i = 0; i < opt.requests; ++i) {
      std::this_thread::sleep_until(send_at(start, opt, client, i));
      const std::string line = request_line(i);
      {
        std::lock_guard<std::mutex> lk(mu);
        sent.push_back(Clock::now());
      }
      if (!chan.write_line(line)) {
        failed->store(true);
        break;
      }
    }
    reader.join();
  }
  ::close(fd);
  return t;
}

/// One streaming client against an in-process SessionManager: open,
/// --requests appends (paced when --qps is set), close. ok/latency
/// tally entries are per-append delta latencies.
Tally run_stream_inproc(iph::session::SessionManager& mgr,
                        const Options& opt, int client,
                        Clock::time_point start) {
  Tally t;
  iph::session::OpenInfo info;
  if (mgr.open(opt.backend, &info) != iph::session::SessionStatus::kOk) {
    ++t.errors;
    return t;
  }
  for (int i = 0; i < opt.requests; ++i) {
    const std::uint64_t append_seed =
        opt.seed + static_cast<std::uint64_t>(client) *
                       static_cast<std::uint64_t>(opt.requests) +
        static_cast<std::uint64_t>(i) + 1;
    std::vector<iph::geom::Point2> pts;
    if (!iph::tools::make_workload(opt.workload, opt.append_points,
                                   append_seed, &pts)) {
      std::abort();  // workload validated in main()
    }
    if (opt.qps > 0) {
      std::this_thread::sleep_until(send_at(start, opt, client, i));
    }
    const auto t0 = Clock::now();
    iph::session::AppendResult res;
    if (mgr.append(info.sid, pts, &res) !=
        iph::session::SessionStatus::kOk) {
      ++t.errors;
      continue;
    }
    t.count("ok", iph::serve::ms_between(t0, Clock::now()));
    t.delta_ops += res.ops.size();
    if (res.rebuilt) ++t.rebuilds;
    if (res.rebuild_mismatch) ++t.mismatches;
  }
  iph::session::CloseSummary sum;
  if (mgr.close(info.sid, &sum) != iph::session::SessionStatus::kOk) {
    ++t.errors;
    return t;
  }
  t.points += sum.points_seen;
  t.peak_aux_max = std::max(t.peak_aux_max, sum.peak_aux_cells);
  return t;
}

/// One streaming client over TCP. The session handshake (open, close)
/// is synchronous; the append phase is closed loop or, with --qps,
/// open loop with the same FIFO reader-thread pairing as batch mode.
Tally run_stream_tcp(const Options& opt, const std::string& target,
                     int client, Clock::time_point start,
                     std::atomic<bool>* failed) {
  Tally t;
  const int fd = connect_to(target);
  if (fd < 0) {
    failed->store(true);
    return t;
  }
  LineChannel chan(fd, fd);
  std::string line;
  auto round_trip = [&](const Json& j) -> bool {
    return chan.write_line(j.dump()) && chan.read_line(&line);
  };

  Json open = Json::object();
  open["cmd"] = Json("session_open");
  if (opt.backend != iph::exec::BackendKind::kDefault) {
    open["backend"] = Json(iph::exec::backend_name(opt.backend));
  }
  Json reply;
  std::string err;
  if (!round_trip(open) || !Json::parse(line, &reply, &err) ||
      reply.get_str("status") != "ok") {
    ++t.errors;
    ::close(fd);
    return t;
  }
  const auto sid = static_cast<std::uint64_t>(reply.get_num("sid", 0));

  auto append_line = [&](int i) {
    const std::uint64_t append_seed =
        opt.seed + static_cast<std::uint64_t>(client) *
                       static_cast<std::uint64_t>(opt.requests) +
        static_cast<std::uint64_t>(i) + 1;
    Json j = Json::object();
    j["cmd"] = Json("session_append");
    j["sid"] = Json(sid);
    j["n"] = Json(static_cast<std::uint64_t>(opt.append_points));
    j["workload"] = Json(opt.workload);
    j["seed"] = Json(append_seed);
    return j.dump();
  };
  auto tally_append = [&](const std::string& resp_line, double ms) {
    Json j;
    std::string perr;
    if (!Json::parse(resp_line, &j, &perr) ||
        j.get_str("status") != "ok") {
      ++t.errors;
      return;
    }
    t.count("ok", ms);
    if (const Json* d = j.find("delta"); d != nullptr && d->is_array()) {
      t.delta_ops += d->size();
    }
    const Json* rb = j.find("rebuilt");
    if (rb != nullptr && rb->as_bool()) ++t.rebuilds;
  };

  if (opt.qps <= 0) {  // closed loop
    for (int i = 0; i < opt.requests; ++i) {
      const auto t0 = Clock::now();
      if (!chan.write_line(append_line(i)) || !chan.read_line(&line)) {
        failed->store(true);
        break;
      }
      tally_append(line, iph::serve::ms_between(t0, Clock::now()));
    }
  } else {  // open loop, FIFO positional matching
    std::deque<Clock::time_point> sent;
    std::mutex mu;
    std::thread reader([&] {
      std::string rline;
      for (int i = 0; i < opt.requests; ++i) {
        if (!chan.read_line(&rline)) {
          failed->store(true);
          return;
        }
        Clock::time_point t0;
        {
          std::lock_guard<std::mutex> lk(mu);
          t0 = sent.front();
          sent.pop_front();
        }
        tally_append(rline, iph::serve::ms_between(t0, Clock::now()));
      }
    });
    for (int i = 0; i < opt.requests; ++i) {
      std::this_thread::sleep_until(send_at(start, opt, client, i));
      const std::string out = append_line(i);
      {
        std::lock_guard<std::mutex> lk(mu);
        sent.push_back(Clock::now());
      }
      if (!chan.write_line(out)) {
        failed->store(true);
        break;
      }
    }
    reader.join();
  }

  Json close_cmd = Json::object();
  close_cmd["cmd"] = Json("session_close");
  close_cmd["sid"] = Json(sid);
  if (!round_trip(close_cmd) || !Json::parse(line, &reply, &err) ||
      reply.get_str("status") != "ok") {
    ++t.errors;
    ::close(fd);
    return t;
  }
  if (const Json* s = reply.find("summary"); s != nullptr) {
    t.points += static_cast<std::uint64_t>(s->get_num("points", 0));
    t.mismatches +=
        static_cast<std::uint64_t>(s->get_num("mismatches", 0));
    t.peak_aux_max = std::max(
        t.peak_aux_max,
        static_cast<std::uint64_t>(s->get_num("peak_aux_cells", 0)));
  }
  ::close(fd);
  return t;
}

/// One statz round trip on a fresh connection (JSON format).
bool scrape_tcp(const std::string& hostport,
                iph::stats::RegistrySnapshot* out, std::string* err) {
  const int fd = connect_to(hostport);
  if (fd < 0) {
    *err = "connect failed";
    return false;
  }
  LineChannel chan(fd, fd);
  Json cmd = Json::object();
  cmd["cmd"] = Json("statz");
  std::string line;
  const bool io_ok = chan.write_line(cmd.dump()) && chan.read_line(&line);
  ::close(fd);
  if (!io_ok) {
    *err = "statz round trip failed";
    return false;
  }
  Json j;
  if (!Json::parse(line, &j, err)) return false;
  return iph::tools::statz_from_json(j, out, err);
}

/// Scrape every target into `out` (one snapshot per target, in
/// order). False (with the failing target named in *err) on any miss.
bool scrape_targets(const std::vector<std::string>& targets,
                    std::vector<iph::stats::RegistrySnapshot>* out,
                    std::string* err) {
  out->assign(targets.size(), {});
  for (std::size_t i = 0; i < targets.size(); ++i) {
    std::string why;
    if (!scrape_tcp(targets[i], &(*out)[i], &why)) {
      *err = targets[i] + ": " + why;
      return false;
    }
  }
  return true;
}

/// Cross-check the server-side snapshot diff against the client tally
/// and print the side-by-side summary. Returns false (after printing
/// why) when the accounting does not reconcile or p99s diverge beyond
/// `tol`. `server_p99` is left with the server-side ok-e2e p99;
/// `served_backend` with which engine(s) absorbed the run's completed
/// requests per the backend-labeled counters ("pram", "native" or
/// "mixed"). When `want` names an engine, that engine's counter must
/// equal the client's ok count exactly; either way pram + native must
/// equal completed (every completed request was served by exactly one
/// engine).
bool check_scrape(const iph::stats::RegistrySnapshot& d, const Tally& total,
                  double client_p99, double tol,
                  iph::exec::BackendKind want, double* server_p99,
                  std::string* served_backend) {
  namespace sn = iph::serve::statnames;
  const std::uint64_t srv_submitted = d.counter_or0(sn::kSubmitted);
  const std::uint64_t srv_completed = d.counter_or0(sn::kCompleted);
  const std::uint64_t srv_expired = d.counter_or0(sn::kExpired);
  const std::uint64_t srv_rej_full = d.counter_or0(
      iph::stats::labeled(sn::kRejectedBase, "reason", "full"));
  const std::uint64_t srv_rej_shutdown = d.counter_or0(
      iph::stats::labeled(sn::kRejectedBase, "reason", "shutdown"));
  const std::uint64_t srv_bk_pram = d.counter_or0(
      iph::stats::labeled(sn::kBackendBase, "backend", "pram"));
  const std::uint64_t srv_bk_native = d.counter_or0(
      iph::stats::labeled(sn::kBackendBase, "backend", "native"));
  const iph::stats::HistogramSnapshot* e2e = d.histogram(sn::kE2eMs);
  *server_p99 = e2e != nullptr ? e2e->quantile(0.99) : 0.0;
  *served_backend = srv_bk_native > 0
                        ? (srv_bk_pram > 0 ? "mixed" : "native")
                        : "pram";
  // Router-aware mode, keyed off counter presence: a hullrouter's
  // statz rolls its backends up with its own routing counters, and
  // re-routing changes the submission identities (file comment).
  namespace rn = iph::cluster::statnames;
  const std::uint64_t* forwards = d.counter(rn::kForwards);
  const std::uint64_t rt_full = d.counter_or0(
      iph::stats::labeled(rn::kRetriesBase, "reason", "rejected_full"));
  const std::uint64_t rt_shutdown = d.counter_or0(
      iph::stats::labeled(rn::kRetriesBase, "reason", "rejected_shutdown"));
  const std::uint64_t rt_io = d.counter_or0(
      iph::stats::labeled(rn::kRetriesBase, "reason", "io"));

  std::fprintf(stderr,
               "hullload scrape: server submitted %llu  completed %llu  "
               "rejected_full %llu  rejected_shutdown %llu  expired %llu\n",
               static_cast<unsigned long long>(srv_submitted),
               static_cast<unsigned long long>(srv_completed),
               static_cast<unsigned long long>(srv_rej_full),
               static_cast<unsigned long long>(srv_rej_shutdown),
               static_cast<unsigned long long>(srv_expired));
  std::fprintf(stderr,
               "hullload scrape: served by backend pram %llu  native %llu\n",
               static_cast<unsigned long long>(srv_bk_pram),
               static_cast<unsigned long long>(srv_bk_native));
  std::fprintf(stderr,
               "hullload scrape: e2e p99 server %.3f ms vs client %.3f ms\n",
               *server_p99, client_p99);
  if (forwards != nullptr) {
    std::fprintf(stderr,
                 "hullload scrape: router forwards %llu  retries full %llu "
                 "shutdown %llu io %llu\n",
                 static_cast<unsigned long long>(*forwards),
                 static_cast<unsigned long long>(rt_full),
                 static_cast<unsigned long long>(rt_shutdown),
                 static_cast<unsigned long long>(rt_io));
  }

  bool ok = true;
  auto must_equal = [&](const char* what, std::uint64_t server,
                        std::uint64_t client) {
    if (server != client) {
      std::fprintf(stderr,
                   "hullload scrape: RECONCILE FAIL: %s server %llu != "
                   "client %llu\n",
                   what, static_cast<unsigned long long>(server),
                   static_cast<unsigned long long>(client));
      ok = false;
    }
  };
  if (total.errors != 0) {
    std::fprintf(stderr,
                 "hullload scrape: RECONCILE FAIL: %llu client-side "
                 "errors\n",
                 static_cast<unsigned long long>(total.errors));
    ok = false;
  }
  const std::uint64_t client_total = total.ok + total.rejected_full +
                                     total.rejected_shutdown + total.expired;
  if (forwards == nullptr) {
    must_equal("submitted", srv_submitted, client_total);
    must_equal("rejected_full", srv_rej_full, total.rejected_full);
    must_equal("rejected_shutdown", srv_rej_shutdown,
               total.rejected_shutdown);
  } else {
    // A retried request submits once per executed attempt but the
    // client tallies exactly one answer; a rejected attempt is either
    // retried (counted in retries{reason}) or surfaced (counted by the
    // client). io retries forwarded nothing, so they appear in neither
    // submitted nor the per-reason identities.
    must_equal("fleet submitted vs client + retries", srv_submitted,
               client_total + rt_full + rt_shutdown);
    must_equal("router forwards vs fleet submitted", *forwards,
               srv_submitted);
    must_equal("rejected_full vs surfaced + retried", srv_rej_full,
               total.rejected_full + rt_full);
    must_equal("rejected_shutdown vs surfaced + retried", srv_rej_shutdown,
               total.rejected_shutdown + rt_shutdown);
  }
  must_equal("completed", srv_completed, total.ok);
  must_equal("expired", srv_expired, total.expired);
  // Server-internal conservation: everything submitted terminated.
  must_equal("submitted vs terminal states", srv_submitted,
             srv_completed + srv_expired + srv_rej_full + srv_rej_shutdown);
  // Backend conservation: every completed request was served by exactly
  // one engine — and when the client pinned one, by THAT engine.
  must_equal("backend pram+native vs completed",
             srv_bk_pram + srv_bk_native, srv_completed);
  if (want == iph::exec::BackendKind::kPram) {
    must_equal("backend=pram requests", srv_bk_pram, total.ok);
  } else if (want == iph::exec::BackendKind::kNative) {
    must_equal("backend=native requests", srv_bk_native, total.ok);
  }
  // Tracing conservation: with a flight recorder armed, every completed
  // request published exactly one kind=request trace of exactly
  // kSpansPerRequest spans (publish counts at attempt time, so ring
  // drops do not leak traces out of this identity). Keyed off counter
  // PRESENCE: an --obs-capacity 0 server never mints these counters and
  // skips the check.
  namespace on = iph::obs::statnames;
  if (const std::uint64_t* pub = d.counter(iph::stats::labeled(
          on::kTracesPublishedBase, "kind", "request"))) {
    must_equal("obs traces published{kind=request}", *pub, srv_completed);
  }
  if (const std::uint64_t* spans = d.counter(iph::stats::labeled(
          on::kSpansRecordedBase, "kind", "request"))) {
    must_equal("obs spans recorded{kind=request}", *spans,
               srv_completed * iph::obs::kSpansPerRequest);
  }

  if (tol > 0 && total.ok > 0 && e2e != nullptr && e2e->count > 0) {
    const double lo = std::max(std::min(*server_p99, client_p99), 0.05);
    const double ratio = std::max(*server_p99, client_p99) / lo;
    if (ratio > tol) {
      std::fprintf(stderr,
                   "hullload scrape: P99 DIVERGENCE: server %.3f ms vs "
                   "client %.3f ms (ratio %.2f > tol %.2f)\n",
                   *server_p99, client_p99, ratio, tol);
      ok = false;
    }
  }
  return ok;
}

/// --stream counterpart of check_scrape: reconcile the iph_session_*
/// registry against this client's tally. The run must be the server's
/// only session traffic; `after` supplies the post-run gauge LEVELS
/// (diffs keep gauges at their current value, so the levels double as
/// the "everything closed, all cells released" check).
bool check_scrape_stream(const iph::stats::RegistrySnapshot& d,
                         const Tally& total, const Options& opt,
                         double client_p99, double* server_p99) {
  namespace ssn = iph::session::statnames;
  const std::uint64_t opened = d.counter_or0(ssn::kOpened);
  const std::uint64_t closed = d.counter_or0(ssn::kClosed);
  const std::uint64_t appends = d.counter_or0(ssn::kAppends);
  const std::uint64_t append_points = d.counter_or0(ssn::kAppendPoints);
  const std::uint64_t rebuilds = d.counter_or0(ssn::kRebuilds);
  const std::uint64_t mismatches = d.counter_or0(ssn::kRebuildMismatch);
  std::uint64_t rejects = 0;
  for (const char* reason : {"cap", "unknown", "closed", "oversized"}) {
    rejects +=
        d.counter_or0(iph::stats::labeled(ssn::kRejectedBase, "reason",
                                          reason));
  }
  const std::uint64_t rb_pram = d.counter_or0(
      iph::stats::labeled(ssn::kRebuildBackendBase, "backend", "pram"));
  const std::uint64_t rb_native = d.counter_or0(
      iph::stats::labeled(ssn::kRebuildBackendBase, "backend", "native"));
  const iph::stats::HistogramSnapshot* append_ms =
      d.histogram(ssn::kAppendMs);
  const iph::stats::HistogramSnapshot* delta_ops =
      d.histogram(ssn::kDeltaOps);
  const std::int64_t* live = d.gauge(ssn::kLiveSessions);
  const std::int64_t* aux = d.gauge(ssn::kAuxCells);
  *server_p99 = append_ms != nullptr ? append_ms->quantile(0.99) : 0.0;

  std::fprintf(stderr,
               "hullload scrape: sessions opened %llu closed %llu  "
               "appends %llu  points %llu  rebuilds %llu (pram %llu "
               "native %llu)  mismatches %llu  rejects %llu\n",
               static_cast<unsigned long long>(opened),
               static_cast<unsigned long long>(closed),
               static_cast<unsigned long long>(appends),
               static_cast<unsigned long long>(append_points),
               static_cast<unsigned long long>(rebuilds),
               static_cast<unsigned long long>(rb_pram),
               static_cast<unsigned long long>(rb_native),
               static_cast<unsigned long long>(mismatches),
               static_cast<unsigned long long>(rejects));
  std::fprintf(stderr,
               "hullload scrape: append p99 server %.3f ms vs client "
               "%.3f ms\n",
               *server_p99, client_p99);

  bool ok = true;
  auto must_equal = [&](const char* what, std::uint64_t server,
                        std::uint64_t client) {
    if (server != client) {
      std::fprintf(stderr,
                   "hullload scrape: RECONCILE FAIL: %s server %llu != "
                   "client %llu\n",
                   what, static_cast<unsigned long long>(server),
                   static_cast<unsigned long long>(client));
      ok = false;
    }
  };
  if (total.errors != 0) {
    std::fprintf(stderr,
                 "hullload scrape: RECONCILE FAIL: %llu client-side "
                 "errors\n",
                 static_cast<unsigned long long>(total.errors));
    ok = false;
  }
  const auto clients = static_cast<std::uint64_t>(opt.clients);
  must_equal("sessions opened", opened, clients);
  must_equal("sessions closed", closed, clients);
  must_equal("appends", appends, total.ok);
  must_equal("append_points", append_points,
             total.ok * static_cast<std::uint64_t>(opt.append_points));
  must_equal("rebuilds", rebuilds, total.rebuilds);
  must_equal("rebuild backends pram+native", rb_pram + rb_native, rebuilds);
  must_equal("rebuild mismatches", mismatches, 0);
  must_equal("session rejects", rejects, 0);
  must_equal("append_ms count", append_ms != nullptr ? append_ms->count : 0,
             appends);
  must_equal("delta_ops count", delta_ops != nullptr ? delta_ops->count : 0,
             appends);
  must_equal("live_sessions gauge",
             live != nullptr ? static_cast<std::uint64_t>(*live) : 1, 0);
  must_equal("aux_cells gauge",
             aux != nullptr ? static_cast<std::uint64_t>(*aux) : 1, 0);
  // Behind a router (gauge presence-keyed like the obs checks): its
  // sid map must agree that every session this run opened is closed.
  namespace rn = iph::cluster::statnames;
  if (const std::int64_t* rso = d.gauge(rn::kSessionsOpen)) {
    must_equal("router sessions_open gauge",
               static_cast<std::uint64_t>(*rso), 0);
  }
  // Tracing conservation (manager.h contract): one kind=session trace
  // per append, with a rebuild child span iff that append rebuilt.
  // Presence-gated like the batch-mode obs checks.
  namespace on = iph::obs::statnames;
  if (const std::uint64_t* pub = d.counter(iph::stats::labeled(
          on::kTracesPublishedBase, "kind", "session"))) {
    must_equal("obs traces published{kind=session}", *pub, appends);
  }
  if (const std::uint64_t* spans = d.counter(iph::stats::labeled(
          on::kSpansRecordedBase, "kind", "session"))) {
    must_equal("obs spans recorded{kind=session}", *spans,
               appends + rebuilds);
  }

  if (opt.scrape_tol > 0 && total.ok > 0 && append_ms != nullptr &&
      append_ms->count > 0) {
    const double lo = std::max(std::min(*server_p99, client_p99), 0.05);
    const double ratio = std::max(*server_p99, client_p99) / lo;
    if (ratio > opt.scrape_tol) {
      std::fprintf(stderr,
                   "hullload scrape: P99 DIVERGENCE: server %.3f ms vs "
                   "client %.3f ms (ratio %.2f > tol %.2f)\n",
                   *server_p99, client_p99, ratio, opt.scrape_tol);
      ok = false;
    }
  }
  return ok;
}

/// One tracez round trip on a fresh connection; leaves the inner
/// tracez document (retained/published/exemplars/traces) in `out`.
bool tracez_fetch_tcp(const std::string& hostport, int limit, Json* out,
                      std::string* err) {
  const int fd = connect_to(hostport);
  if (fd < 0) {
    *err = "connect failed";
    return false;
  }
  LineChannel chan(fd, fd);
  Json cmd = Json::object();
  cmd["cmd"] = Json("tracez");
  cmd["limit"] = Json(limit);
  cmd["order"] = Json("slowest");
  std::string line;
  const bool io_ok = chan.write_line(cmd.dump()) && chan.read_line(&line);
  ::close(fd);
  if (!io_ok) {
    *err = "tracez round trip failed";
    return false;
  }
  Json reply;
  if (!Json::parse(line, &reply, err)) return false;
  if (reply.find("error") != nullptr) {
    *err = reply.get_str("error", "server refused tracez");
    return false;
  }
  const Json* doc = reply.find("tracez");
  if (doc == nullptr) {
    *err = "reply has no \"tracez\" key";
    return false;
  }
  *out = *doc;
  return true;
}

/// Recursively print the spans whose parent id is `parent`, indented
/// one level per tree depth. Span ids are unique within a trace and
/// the arrays are tiny, so the quadratic walk is fine.
void print_span_children(const Json& spans, std::uint64_t parent,
                         int depth) {
  for (std::size_t i = 0; i < spans.size(); ++i) {
    const Json& s = spans.at(i);
    if (static_cast<std::uint64_t>(s.get_num("parent", 0)) != parent) {
      continue;
    }
    const auto id = static_cast<std::uint64_t>(s.get_num("span", 0));
    std::fprintf(stderr, "    %*s%-*s +%9.1f us  %9.1f us\n", depth * 2,
                 "", 24 - depth * 2, s.get_str("name", "?").c_str(),
                 s.get_num("start_us", 0), s.get_num("dur_us", 0));
    if (id != parent) print_span_children(spans, id, depth + 1);
  }
}

/// Render the tracez document's slowest-first trace list as indented
/// span trees (the human half of --trace-slowest; the machine half is
/// the tracez JSON itself, which --tracez-out on the server dumps).
void print_trace_trees(const Json& doc) {
  const Json* traces = doc.find("traces");
  const std::size_t count =
      traces != nullptr && traces->is_array() ? traces->size() : 0;
  std::fprintf(stderr,
               "hullload tracez: %llu retained, %llu published, %llu "
               "spans dropped; %zu slowest:\n",
               static_cast<unsigned long long>(doc.get_num("retained", 0)),
               static_cast<unsigned long long>(doc.get_num("published", 0)),
               static_cast<unsigned long long>(
                   doc.get_num("dropped_spans", 0)),
               count);
  for (std::size_t i = 0; i < count; ++i) {
    const Json& t = traces->at(i);
    std::fprintf(stderr,
                 "  trace %s  id %llu  kind %s  status %s  backend %s  "
                 "batch %llu  e2e %.3f ms\n",
                 t.get_str("trace", "?").c_str(),
                 static_cast<unsigned long long>(t.get_num("id", 0)),
                 t.get_str("kind", "?").c_str(),
                 t.get_str("status", "?").c_str(),
                 t.get_str("backend", "-").c_str(),
                 static_cast<unsigned long long>(t.get_num("batch", 0)),
                 t.get_num("e2e_ms", 0));
    if (const Json* repro = t.find("repro"); repro != nullptr) {
      std::fprintf(stderr, "    repro: %s\n",
                   t.get_str("repro", "").c_str());
    }
    if (const Json* spans = t.find("spans");
        spans != nullptr && spans->is_array()) {
      print_span_children(*spans, 0, 0);
    }
    if (const Json* tr = t.find("phase_spans_truncated");
        tr != nullptr && tr->as_bool()) {
      std::fprintf(stderr, "    (phase spans truncated)\n");
    }
  }
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(content.data(), 1, content.size(), f) ==
                  content.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (a == "--clients" && (v = next())) {
      opt.clients = std::atoi(v);
    } else if (a == "--requests" && (v = next())) {
      opt.requests = std::atoi(v);
    } else if (a == "--qps" && (v = next())) {
      opt.qps = std::atof(v);
    } else if (a == "--n" && (v = next())) {
      opt.n = static_cast<std::size_t>(std::atoll(v));
    } else if (a == "--workload" && (v = next())) {
      opt.workload = v;
    } else if (a == "--seed" && (v = next())) {
      opt.seed = std::strtoull(v, nullptr, 0);
    } else if (a == "--deadline-ms" && (v = next())) {
      opt.deadline_ms = std::atof(v);
    } else if (a == "--connect" && (v = next())) {
      opt.connect = v;
    } else if (a == "--endpoints" && (v = next())) {
      opt.endpoints.clear();
      std::string item;
      for (const char* p = v;; ++p) {
        if (*p == ',' || *p == '\0') {
          if (item.empty()) return usage(argv[0]);
          opt.endpoints.push_back(item);
          item.clear();
          if (*p == '\0') break;
        } else {
          item.push_back(*p);
        }
      }
    } else if (a == "--backend" && (v = next())) {
      if (!iph::exec::parse_backend(v, &opt.backend)) return usage(argv[0]);
    } else if (a == "--shards" && (v = next())) {
      opt.cfg.shards = static_cast<std::size_t>(std::atoll(v));
    } else if (a == "--workers" && (v = next())) {
      opt.cfg.workers = static_cast<std::size_t>(std::atoll(v));
    } else if (a == "--threads" && (v = next())) {
      opt.cfg.threads_per_shard = static_cast<unsigned>(std::atoi(v));
    } else if (a == "--capacity" && (v = next())) {
      opt.cfg.queue_capacity = static_cast<std::size_t>(std::atoll(v));
    } else if (a == "--window-us" && (v = next())) {
      opt.cfg.batch.window = std::chrono::microseconds(std::atoll(v));
    } else if (a == "--no-large") {
      opt.cfg.large_shard = false;
    } else if (a == "--stream") {
      opt.stream = true;
    } else if (a == "--append-points" && (v = next())) {
      opt.append_points = static_cast<std::size_t>(std::atoll(v));
    } else if (a == "--expect-all-ok") {
      opt.expect_all_ok = true;
    } else if (a == "--json") {
      opt.json = true;
    } else if (a == "--scrape") {
      opt.scrape = true;
    } else if (a == "--scrape-tol" && (v = next())) {
      opt.scrape_tol = std::atof(v);
    } else if (a == "--scrape-out" && (v = next())) {
      opt.scrape_out = v;
      opt.scrape = true;
    } else if (a == "--trace-slowest" && (v = next())) {
      opt.trace_slowest = std::atoi(v);
      if (opt.trace_slowest < 1) return usage(argv[0]);
    } else {
      return usage(argv[0]);
    }
  }
  if (opt.clients < 1 || opt.requests < 1 || opt.n == 0 ||
      (opt.stream && opt.append_points == 0)) {
    return usage(argv[0]);
  }
  {
    std::vector<iph::geom::Point2> probe;
    if (!iph::tools::make_workload(opt.workload, 4, 0, &probe)) {
      std::fprintf(stderr, "hullload: unknown workload \"%s\"\n",
                   opt.workload.c_str());
      return 2;
    }
  }

  // Load targets, round-robined across clients; --connect is the
  // one-target case, and no target at all means in-process.
  std::vector<std::string> targets = opt.endpoints;
  if (targets.empty() && !opt.connect.empty()) {
    targets.push_back(opt.connect);
  }
  const bool inproc = targets.empty();
  std::string target_desc = inproc ? "in-process" : targets[0];
  for (std::size_t i = 1; i < targets.size(); ++i) {
    target_desc += "+" + targets[i];
  }
  std::unique_ptr<HullService> svc;
  std::unique_ptr<iph::stats::Registry> stream_registry;
  std::unique_ptr<iph::obs::FlightRecorder> stream_flight;
  std::unique_ptr<iph::session::SessionManager> mgr;
  if (inproc && opt.stream) {
    iph::session::ManagerConfig mc;
    mc.max_sessions = std::max<std::size_t>(
        mc.max_sessions, static_cast<std::size_t>(opt.clients));
    mc.default_backend = opt.backend;
    mc.master_seed = opt.seed;
    stream_registry = std::make_unique<iph::stats::Registry>();
    // Arm a flight recorder so in-process stream runs exercise the
    // session-trace path and the obs reconciliation identities too.
    stream_flight = std::make_unique<iph::obs::FlightRecorder>(
        iph::obs::ObsConfig{}, *stream_registry);
    mgr = std::make_unique<iph::session::SessionManager>(
        mc, *stream_registry, stream_flight.get());
  } else if (inproc) {
    svc = std::make_unique<HullService>(opt.cfg);
  }

  // --scrape brackets the run with registry snapshots; the diff makes
  // the cross-check robust to traffic the server saw before us (but the
  // run itself must be the server's only traffic).
  iph::stats::RegistrySnapshot scrape_before;
  std::vector<iph::stats::RegistrySnapshot> scrape_before_tcp;
  if (opt.scrape && !inproc) {
    std::string err;
    if (!scrape_targets(targets, &scrape_before_tcp, &err)) {
      std::fprintf(stderr, "hullload: statz scrape failed: %s\n",
                   err.c_str());
      return 3;
    }
  } else if (opt.scrape) {
    scrape_before = opt.stream ? stream_registry->snapshot()
                               : svc->stats_registry().snapshot();
  }

  std::atomic<bool> conn_failed{false};
  std::vector<Tally> tallies(static_cast<std::size_t>(opt.clients));
  std::vector<std::thread> threads;
  const auto start = Clock::now() + std::chrono::milliseconds(5);
  for (int c = 0; c < opt.clients; ++c) {
    threads.emplace_back([&, c] {
      const std::string target =
          inproc ? std::string()
                 : targets[static_cast<std::size_t>(c) % targets.size()];
      if (opt.stream) {
        tallies[c] = inproc
                         ? run_stream_inproc(*mgr, opt, c, start)
                         : run_stream_tcp(opt, target, c, start,
                                          &conn_failed);
      } else {
        tallies[c] = inproc
                         ? run_client_inproc(*svc, opt, c, start)
                         : run_client_tcp(opt, target, c, start,
                                          &conn_failed);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (conn_failed.load()) {
    std::fprintf(stderr, "hullload: connection to %s failed\n",
                 target_desc.c_str());
    return 3;
  }

  Tally total;
  for (auto& t : tallies) total.merge(std::move(t));
  std::sort(total.ok_e2e_ms.begin(), total.ok_e2e_ms.end());
  const double qps = static_cast<double>(total.ok) / wall_s;
  const double p50 = percentile(total.ok_e2e_ms, 0.50);
  const double p95 = percentile(total.ok_e2e_ms, 0.95);
  const double p99 = percentile(total.ok_e2e_ms, 0.99);

  if (opt.stream) {
    std::fprintf(stderr,
                 "hullload: %d sessions x %d appends of %zu points, %s "
                 "loop, %s, workload %s\n",
                 opt.clients, opt.requests, opt.append_points,
                 opt.qps > 0 ? "open" : "closed", target_desc.c_str(),
                 opt.workload.c_str());
    std::fprintf(stderr,
                 "  appends ok %llu  errors %llu  delta ops %llu  "
                 "rebuilds %llu  mismatches %llu\n",
                 static_cast<unsigned long long>(total.ok),
                 static_cast<unsigned long long>(total.errors),
                 static_cast<unsigned long long>(total.delta_ops),
                 static_cast<unsigned long long>(total.rebuilds),
                 static_cast<unsigned long long>(total.mismatches));
    std::fprintf(stderr,
                 "  points %llu  peak workspace %llu cells (max session)\n",
                 static_cast<unsigned long long>(total.points),
                 static_cast<unsigned long long>(total.peak_aux_max));
    std::fprintf(stderr, "  wall %.3f s  appends/s %.1f\n", wall_s, qps);
    std::fprintf(stderr, "  delta ms (ok): p50 %.2f  p95 %.2f  p99 %.2f\n",
                 p50, p95, p99);
  } else {
    std::fprintf(stderr,
                 "hullload: %d clients x %d requests, %s loop, %s, "
                 "workload %s n=%zu\n",
                 opt.clients, opt.requests, opt.qps > 0 ? "open" : "closed",
                 target_desc.c_str(), opt.workload.c_str(), opt.n);
    std::fprintf(stderr,
                 "  ok %llu  rejected_full %llu  rejected_shutdown %llu  "
                 "expired %llu  errors %llu\n",
                 static_cast<unsigned long long>(total.ok),
                 static_cast<unsigned long long>(total.rejected_full),
                 static_cast<unsigned long long>(total.rejected_shutdown),
                 static_cast<unsigned long long>(total.expired),
                 static_cast<unsigned long long>(total.errors));
    std::fprintf(stderr, "  wall %.3f s  qps %.1f\n", wall_s, qps);
    std::fprintf(stderr, "  e2e ms (ok): p50 %.2f  p95 %.2f  p99 %.2f\n",
                 p50, p95, p99);
  }
  double mean_batch = 0;
  std::uint64_t large = 0;
  if (inproc && !opt.stream) {
    svc->shutdown(/*drain=*/true);
    const iph::serve::StatsSnapshot s = svc->stats();
    mean_batch = s.mean_batch();
    large = s.large_requests;
    std::fprintf(stderr, "  service: mean batch %.2f  max batch %llu  "
                         "large %llu\n",
                 mean_batch, static_cast<unsigned long long>(s.max_batch),
                 static_cast<unsigned long long>(large));
  }

  bool scrape_failed = false;
  double server_p99 = 0;
  std::string served_backend;
  if (opt.scrape) {
    iph::stats::RegistrySnapshot d;
    if (!inproc) {
      std::vector<iph::stats::RegistrySnapshot> after;
      std::string err;
      if (!scrape_targets(targets, &after, &err)) {
        std::fprintf(stderr, "hullload: statz scrape failed: %s\n",
                     err.c_str());
        return 3;
      }
      // Per-target diffs first (each target's counters are its own
      // monotone series), then one fleet sum over the diffs.
      std::vector<iph::stats::RegistrySnapshot> diffs;
      diffs.reserve(targets.size());
      for (std::size_t i = 0; i < targets.size(); ++i) {
        diffs.push_back(after[i].diff(scrape_before_tcp[i]));
      }
      if (!iph::cluster::merge_snapshots(diffs, &d, &err)) {
        std::fprintf(stderr, "hullload: scrape merge failed: %s\n",
                     err.c_str());
        return 1;
      }
    } else {
      const iph::stats::RegistrySnapshot after =
          opt.stream ? stream_registry->snapshot()
                     : svc->stats_registry().snapshot();
      d = after.diff(scrape_before);
    }
    if (opt.stream) {
      scrape_failed = !check_scrape_stream(d, total, opt, p99, &server_p99);
    } else {
      scrape_failed = !check_scrape(d, total, p99, opt.scrape_tol,
                                    opt.backend, &server_p99,
                                    &served_backend);
    }
    if (!opt.scrape_out.empty()) {
      // The diffed snapshot plus which engine(s) served the run —
      // stats::from_json ignores the extra key, so the file still
      // parses as iph-stats-v1.
      Json scrape_json = iph::stats::to_json(d);
      if (!opt.stream) scrape_json["served_backend"] = Json(served_backend);
      if (!write_file(opt.scrape_out, scrape_json.dump(2) + "\n")) {
        std::fprintf(stderr, "hullload: cannot write %s\n",
                     opt.scrape_out.c_str());
        scrape_failed = true;
      }
    }
  }

  if (opt.trace_slowest > 0) {
    Json doc;
    bool have = false;
    if (!inproc) {
      // First target only — against a router that IS the whole fleet
      // (fleet_tracez), against plain backends it is a sample.
      std::string err;
      if (!tracez_fetch_tcp(targets[0], opt.trace_slowest, &doc, &err)) {
        std::fprintf(stderr, "hullload: tracez fetch of %s failed: %s\n",
                     targets[0].c_str(), err.c_str());
      } else {
        have = true;
      }
    } else {
      const iph::obs::FlightRecorder* fr =
          opt.stream ? stream_flight.get()
                     : (svc != nullptr ? svc->flight_recorder() : nullptr);
      if (fr == nullptr) {
        std::fprintf(stderr, "hullload: tracing disabled in-process\n");
      } else {
        doc = iph::obs::tracez_json(
            *fr, static_cast<std::size_t>(opt.trace_slowest),
            /*slowest=*/true);
        have = true;
      }
    }
    if (have) print_trace_trees(doc);
  }

  if (opt.json) {
    Json j = Json::object();
    j["clients"] = Json(opt.clients);
    j["requests_per_client"] = Json(opt.requests);
    j["mode"] = Json(opt.qps > 0 ? "open" : "closed");
    j["target"] = Json(target_desc);
    j["workload"] = Json(opt.workload);
    j["n"] = Json(static_cast<std::uint64_t>(opt.n));
    j["backend"] = Json(iph::exec::backend_name(opt.backend));
    j["ok"] = Json(total.ok);
    j["rejected_full"] = Json(total.rejected_full);
    j["rejected_shutdown"] = Json(total.rejected_shutdown);
    j["expired"] = Json(total.expired);
    j["errors"] = Json(total.errors);
    j["wall_s"] = Json(wall_s);
    j["qps"] = Json(qps);
    j["p50_ms"] = Json(p50);
    j["p95_ms"] = Json(p95);
    j["p99_ms"] = Json(p99);
    if (opt.stream) {
      j["stream"] = Json(true);
      j["append_points"] = Json(static_cast<std::uint64_t>(
          opt.append_points));
      j["delta_ops"] = Json(total.delta_ops);
      j["rebuilds"] = Json(total.rebuilds);
      j["rebuild_mismatches"] = Json(total.mismatches);
      j["points"] = Json(total.points);
      j["peak_aux_cells_max"] = Json(total.peak_aux_max);
    }
    if (inproc && !opt.stream) j["mean_batch"] = Json(mean_batch);
    if (opt.scrape) {
      j["server_p99_ms"] = Json(server_p99);
      j["scrape_ok"] = Json(!scrape_failed);
      if (!opt.stream) j["served_backend"] = Json(served_backend);
    }
    std::printf("%s\n", j.dump().c_str());
  }

  if (scrape_failed) return 1;
  const std::uint64_t not_ok = total.rejected_full +
                               total.rejected_shutdown + total.expired +
                               total.errors;
  return opt.expect_all_ok && not_ok != 0 ? 1 : 0;
}
