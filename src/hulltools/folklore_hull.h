// The "folklore" hull of Lemma 2.4: upper hull of n presorted points in
// O(k) time with ~n^(1+1/k) processors, deterministically.
//
// The paper cites this without proof ("part of the folklore ... details
// in the final version", which never appeared). Our realization — see
// DESIGN.md §8: blocks of size n^(1/(2k)) are hulled by the O(1)-time
// brute force (Observation 2.3, block^3 processors each), then 2k rounds
// of radix-way chain merging (chain_ops) with lockstep radix
// g = n^(1/(2k)) collapse the blocks into the hull. Bench e12 reports the
// measured steps/processors next to the lemma's claim.
#pragma once

#include <span>

#include "geom/hull_types.h"
#include "geom/point.h"
#include "pram/machine.h"

namespace iph::hulltools {

/// Upper hull + per-point covering-edge pointers of the presorted range
/// pts[lo, hi). Indices are global. `k_levels` is the lemma's k.
geom::HullResult2D folklore_hull_presorted(pram::Machine& m,
                                           std::span<const geom::Point2> pts,
                                           std::size_t lo, std::size_t hi,
                                           unsigned k_levels);

}  // namespace iph::hulltools
