#include "core/presorted_constant.h"

#include "core/hull_assemble.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "geom/predicates.h"
#include "hulltools/folklore_hull.h"
#include "pram/cells.h"
#include "pram/shadow.h"
#include "primitives/brute_force_lp.h"
#include "primitives/failure_sweep.h"
#include "primitives/inplace_bridge.h"
#include "support/check.h"
#include "support/mathutil.h"

namespace iph::core {

using geom::Index;
using geom::Point2;

namespace {

/// A tree bridge problem's node geometry.
struct Node {
  std::size_t lo, mid, hi;
};

}  // namespace

geom::HullResult2D presorted_constant_hull(pram::Machine& m,
                                           std::span<const Point2> pts,
                                           PresortedConstantStats* stats,
                                           int alpha) {
  PresortedConstantStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  geom::HullResult2D r;
  const std::size_t n = pts.size();
  if (n == 0) return r;
#ifndef NDEBUG
  for (std::size_t i = 1; i < n; ++i) {
    IPH_DCHECK(!geom::lex_less(pts[i], pts[i - 1]));
  }
#endif
  // Degenerate single-column input.
  if (pts.front().x == pts.back().x) {
    r.upper.vertices.push_back(static_cast<Index>(n - 1));
    r.edge_above.assign(n, geom::kNone);
    return r;
  }
  // Small inputs: the deterministic Lemma 2.4 hull alone suffices.
  if (n <= 64) {
    return hulltools::folklore_hull_presorted(m, pts, 0, n, 3);
  }

  // --- block layer: Lemma 2.4 hulls for ranges below log^3 n ----------
  const double log2n = std::log2(static_cast<double>(n));
  const std::uint64_t want_block = static_cast<std::uint64_t>(
      std::min<double>(static_cast<double>(n) / 2.0,
                       std::max(8.0, log2n * log2n * log2n)));
  const unsigned lb = support::floor_log2(want_block);
  const std::size_t block = std::size_t{1} << lb;
  const std::size_t nblocks = (n + block - 1) / block;

  std::vector<geom::HullResult2D> blocks;
  blocks.reserve(nblocks);
  {
    // Blocks run in the same logical PRAM steps; rebase time to the
    // deepest block (work accumulates correctly).
    pram::Machine::Phase phase(m, "pc/blocks");
    const std::uint64_t steps_before = m.metrics().steps;
    std::uint64_t max_steps = 0;
    for (std::size_t lo = 0; lo < n; lo += block) {
      const std::size_t hi = std::min(n, lo + block);
      const std::uint64_t at = m.metrics().steps;
      blocks.push_back(
          hulltools::folklore_hull_presorted(m, pts, lo, hi, 3));
      max_steps = std::max(max_steps, m.metrics().steps - at);
    }
    m.metrics().steps = steps_before + max_steps;
  }

  // --- tree layer: one bridge problem per node above the blocks -------
  const unsigned ltop = support::ceil_log2(n);
  const unsigned nlevels = ltop - lb;  // levels lb+1 .. ltop
  std::vector<primitives::BridgeProblem> problems;
  std::vector<Node> nodes;
  // prob_at[li][j]: problem id of node j at level lb+1+li.
  std::vector<std::vector<std::uint32_t>> prob_at(nlevels);
  for (unsigned li = 0; li < nlevels; ++li) {
    const unsigned lvl = lb + 1 + li;
    const std::size_t range = std::size_t{1} << lvl;
    const std::size_t count = (n + range - 1) / range;
    prob_at[li].assign(count, primitives::kNoProblem);
    for (std::size_t j = 0; j < count; ++j) {
      const std::size_t lo = j * range;
      const std::size_t mid = lo + range / 2;
      if (mid >= n) continue;  // no right child
      const std::size_t hi = std::min(n, lo + range);
      if (pts[lo].x == pts[hi - 1].x) continue;  // single column
      prob_at[li][j] = static_cast<std::uint32_t>(problems.size());
      primitives::BridgeProblem pr;
      pr.splitter = static_cast<Index>(mid);
      pr.splitter_left = static_cast<Index>(mid - 1);
      pr.size_est = hi - lo;
      pr.k = std::max<std::uint64_t>(
          2, support::ipow_frac(hi - lo, 1.0 / 3.0));
      problems.push_back(pr);
      nodes.push_back(Node{lo, mid, hi});
    }
  }
  stats->tree_problems = problems.size();

  // Units: point i at ancestor level li — the paper's n log n virtual
  // processors.
  const std::uint64_t nunits = static_cast<std::uint64_t>(n) * nlevels;
  const auto unit_point = [nlevels](std::uint64_t u) {
    return u / nlevels;
  };
  const auto unit_problem = [&](std::uint64_t u) -> std::uint32_t {
    const std::uint64_t i = u / nlevels;
    const unsigned li = static_cast<unsigned>(u % nlevels);
    return prob_at[li][i >> (lb + 1 + li)];
  };
  std::vector<primitives::BridgeOutcome> outcomes;
  {
    pram::Machine::Phase phase(m, "pc/tree-bridges");
    outcomes = primitives::inplace_bridges_2d_units(
        m, pts, nunits, unit_point, unit_problem, problems, alpha);
  }

  // --- failure sweeping (Section 2.3) ----------------------------------
  {
    pram::Machine::Phase phase(m, "pc/failure-sweep");
    std::vector<std::uint8_t> failed(problems.size(), 0);
    bool any = false;
    for (std::size_t p = 0; p < problems.size(); ++p) {
      if (!outcomes[p].ok) {
        failed[p] = 1;
        any = true;
      }
    }
    if (any) {
      const std::uint64_t bound = std::max<std::uint64_t>(
          8, support::ipow_frac(n, 1.0 / 16.0));
      auto sweep = primitives::sweep_failures(m, failed, bound);
      stats->sweep_ok = sweep.ok;
      if (!sweep.ok) {
        // Over-budget failure count (probability 2^-n^(1/16)): fall back
        // to sweeping everything still unsolved, sequentially batched.
        sweep.failed.clear();
        for (std::uint32_t p = 0; p < problems.size(); ++p) {
          if (failed[p]) sweep.failed.push_back(p);
        }
      }
      stats->failures_swept = sweep.failed.size();
      // Brute force each failed node over its FULL range (the paper's
      // n^(3/4) processors per failure; ranges above n^(1/4) points are
      // re-run through the sampling procedure instead, with retries).
      const std::uint64_t brute_cap = std::max<std::uint64_t>(
          64, support::ipow_frac(n, 0.25));
      std::vector<std::vector<Index>> subsets;
      std::vector<std::pair<Index, Index>> gaps;
      std::vector<std::uint32_t> subset_prob;
      std::vector<std::uint32_t> big_fails;
      for (std::uint32_t p : sweep.failed) {
        const Node& nd = nodes[p];
        if (nd.hi - nd.lo <= brute_cap) {
          std::vector<Index> sub(nd.hi - nd.lo);
          for (std::size_t i = nd.lo; i < nd.hi; ++i) {
            sub[i - nd.lo] = static_cast<Index>(i);
          }
          subsets.push_back(std::move(sub));
          gaps.emplace_back(problems[p].left(), problems[p].splitter);
          subset_prob.push_back(p);
        } else {
          big_fails.push_back(p);
        }
      }
      const auto brute =
          primitives::batched_brute_bridge_2d(m, pts, subsets, gaps);
      for (std::size_t t = 0; t < brute.size(); ++t) {
        auto& o = outcomes[subset_prob[t]];
        o.a = brute[t].first;
        o.b = brute[t].second;
        o.ok = true;  // kNone (single-column) counts as resolved: no edge
      }
      // Oversized failures: retry the randomized procedure with a larger
      // budget (exponentially unlikely to be needed at all).
      for (int tries = 0; !big_fails.empty() && tries < 8; ++tries) {
        ++stats->retries;
        std::vector<primitives::BridgeProblem> retry_probs;
        for (std::uint32_t p : big_fails) retry_probs.push_back(problems[p]);
        std::vector<std::uint32_t> retry_map(problems.size(),
                                             primitives::kNoProblem);
        for (std::size_t t = 0; t < big_fails.size(); ++t) {
          retry_map[big_fails[t]] = static_cast<std::uint32_t>(t);
        }
        const auto retry = primitives::inplace_bridges_2d_units(
            m, pts, nunits, unit_point,
            [&](std::uint64_t u) -> std::uint32_t {
              const std::uint32_t p = unit_problem(u);
              return p == primitives::kNoProblem ? p : retry_map[p];
            },
            retry_probs, alpha * (2 << tries));
        std::vector<std::uint32_t> still;
        for (std::size_t t = 0; t < big_fails.size(); ++t) {
          if (retry[t].ok) {
            outcomes[big_fails[t]] = retry[t];
          } else {
            still.push_back(big_fails[t]);
          }
        }
        big_fails = std::move(still);
      }
      IPH_CHECK(big_fails.empty());
    }
  }

  // --- cover resolution: highest ancestor whose bridge covers the point
  // (batched Eppstein-Galil first-one per point, O(1) steps, n*L procs).
  // Flag layout per point: t = 0 is the ROOT level (highest), so the
  // first set flag is the highest covering ancestor.
  pram::Machine::Phase cover_phase(m, "pc/cover-resolution");
  pram::FlagArray covered(nunits);
  m.step(nunits, [&](std::uint64_t u) {
    const std::uint32_t p = unit_problem(u);
    if (p == primitives::kNoProblem) return;
    const auto& o = outcomes[p];
    if (!o.ok || o.a == geom::kNone) return;
    const std::uint64_t i = u / nlevels;
    if (pts[o.a].x <= pts[i].x && pts[i].x <= pts[o.b].x) {
      const unsigned li = static_cast<unsigned>(u % nlevels);
      const unsigned t = nlevels - 1 - li;  // root first
      covered.set(i * nlevels + t);
    }
  });
  // NOTE: `covered` uses the same index space as units but re-keyed by t;
  // the set above writes into (i, t) cells — one writer per cell since
  // (i, li) <-> (i, t) is a bijection.
  const unsigned sb = static_cast<unsigned>(
      std::ceil(std::sqrt(static_cast<double>(nlevels))));
  const unsigned bsz = (nlevels + sb - 1) / sb;
  pram::FlagArray bne(static_cast<std::uint64_t>(n) * sb);
  m.step(nunits, [&](std::uint64_t u) {
    const std::uint64_t i = u / nlevels;
    const unsigned t = static_cast<unsigned>(u % nlevels);
    if (covered.get(i * nlevels + t)) bne.set(i * sb + t / bsz);
  });
  pram::FlagArray belim(static_cast<std::uint64_t>(n) * sb);
  m.step(static_cast<std::uint64_t>(n) * sb * sb, [&](std::uint64_t u) {
    const std::uint64_t i = u / (sb * sb);
    const unsigned b = static_cast<unsigned>((u / sb) % sb);
    const unsigned b2 = static_cast<unsigned>(u % sb);
    if (b2 < b && bne.get(i * sb + b2)) belim.set(i * sb + b);
  });
  std::vector<std::uint32_t> bwin(n, 0xffffffffu);
  m.step(static_cast<std::uint64_t>(n) * sb, [&](std::uint64_t u) {
    const std::uint64_t i = u / sb;
    const unsigned b = static_cast<unsigned>(u % sb);
    if (bne.get(i * sb + b) && !belim.get(i * sb + b)) {
      // Unique writer (the leftmost non-empty block); checker-verified.
      pram::tracked_write(u, bwin[i], b);
    }
  });
  pram::FlagArray eelim(static_cast<std::uint64_t>(n) * bsz);
  m.step(static_cast<std::uint64_t>(n) * bsz * bsz, [&](std::uint64_t u) {
    const std::uint64_t i = u / (bsz * bsz);
    if (bwin[i] == 0xffffffffu) return;
    const unsigned e = static_cast<unsigned>((u / bsz) % bsz);
    const unsigned e2 = static_cast<unsigned>(u % bsz);
    const unsigned base = bwin[i] * bsz;
    if (e2 < e && base + e2 < nlevels &&
        covered.get(i * nlevels + base + e2)) {
      eelim.set(i * bsz + e);
    }
  });
  std::vector<Index> pair_a(n, geom::kNone), pair_b(n, geom::kNone);
  m.step(static_cast<std::uint64_t>(n) * bsz, [&](std::uint64_t u) {
    const std::uint64_t i = u / bsz;
    if (bwin[i] == 0xffffffffu) return;
    const unsigned e = static_cast<unsigned>(u % bsz);
    const unsigned t = bwin[i] * bsz + e;
    if (t >= nlevels || !covered.get(i * nlevels + t) ||
        eelim.get(i * bsz + e)) {
      return;
    }
    // Unique writer: the highest covering ancestor (checker-verified).
    const unsigned li = nlevels - 1 - t;
    const std::uint32_t p = prob_at[li][i >> (lb + 1 + li)];
    pram::tracked_write(u, pair_a[i], outcomes[p].a);
    pram::tracked_write(u, pair_b[i], outcomes[p].b);
  });
  // Points with no covering tree ancestor fall back to their block edge.
  m.step(n, [&](std::uint64_t i) {
    if (pair_a[i] != geom::kNone) return;
    const std::size_t b = i / block;
    const Index e = blocks[b].edge_above[i - b * block];
    if (e == geom::kNone) return;  // single-column block, interior point
    pram::tracked_write(i, pair_a[i], blocks[b].upper.vertices[e]);
    pram::tracked_write(i, pair_b[i], blocks[b].upper.vertices[e + 1]);
  });
  // Single-column-block interior points with no tree cover cannot exist
  // for non-degenerate input (their column's top is covered and so are
  // they); guard anyway.
  for (std::size_t i = 0; i < n; ++i) {
    IPH_CHECK(pair_a[i] != geom::kNone);
  }
  return assemble_from_pairs(pts, pair_a, pair_b);
}

}  // namespace iph::core
