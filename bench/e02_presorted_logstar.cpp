// E2 — Theorem 2: presorted 2-d hull in O(log* n) time with ~n
// processors. Reproduction target: steps grow like log*(n) (i.e. stay
// within a small constant across a 64x size sweep), work/n stays modest,
// and the measured recursion depth equals the log* level count.
#include <benchmark/benchmark.h>

#include "report.h"
#include "core/presorted_logstar.h"
#include "geom/workloads.h"
#include "pram/machine.h"
#include "support/mathutil.h"

namespace {

void e02(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  auto pts = iph::geom::in_disk(n, 42);
  iph::geom::sort_lex(pts);
  iph::pram::Metrics last;
  iph::core::LogstarStats stats;
  for (auto _ : state) {
    iph::pram::Machine m(1, 7);
    stats = {};
    benchmark::DoNotOptimize(
        iph::core::presorted_logstar_hull(m, pts, &stats));
    last = m.metrics();
  }
  iph::bench::report_metrics(state, last);
  state.counters["depth"] = stats.recursion_depth;
  state.counters["logstar_n"] = iph::support::log_star(n);
  state.counters["steps/logstar"] =
      static_cast<double>(last.steps) /
      std::max(1u, iph::support::log_star(n));
  state.counters["work/n"] =
      static_cast<double>(last.work) / static_cast<double>(n);
  state.counters["procs/n"] =
      static_cast<double>(last.max_active) / static_cast<double>(n);
}

}  // namespace

BENCHMARK(e02)
    ->ArgsProduct(
        {iph::bench::n_sweep({1 << 12, 1 << 14, 1 << 16, 1 << 18})})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Theorem 2: steps track log*(n) (measured steps/log* band ~1.8x over a
// 64x sweep) and work/n stays in a ~1.5x band (EXPERIMENTS.md E2).
IPH_BENCH_MAIN("e02",
               {"steps-logstar", "steps", "log_star", 3.5},
               {"work-linear", "work", "linear", 3.0})
