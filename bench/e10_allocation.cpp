// E10 — Section 5 / Lemma 7 (Matias-Vishkin): an algorithm with PRAM
// time t and work w runs on p processors in T <= t + w/p + t_c log t.
//
// The simulator tracks the REALIZED simulated time T(p) = sum over steps
// of ceil(active/p) online; this bench prints it for the processor
// ladder next to the Lemma 7 bound for a Theorem 5 run. Reproduction
// target: realized T(p) <= bound for every p, with T(p) ~ w/p in the
// work-dominated range and ~t once p exceeds the parallelism.
#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "core/unsorted2d.h"
#include "geom/workloads.h"
#include "pram/allocation.h"
#include "pram/machine.h"

namespace {

void e10(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto pts = iph::geom::in_disk(n, 3);
  iph::pram::Metrics last;
  for (auto _ : state) {
    iph::pram::Machine m(1, 7);
    benchmark::DoNotOptimize(iph::core::unsorted_hull_2d(m, pts));
    last = m.metrics();
  }
  const auto rep = iph::pram::allocation_report(last);
  state.counters["t_ideal"] = static_cast<double>(rep.ideal_time);
  state.counters["work"] = static_cast<double>(rep.work);
  for (const auto& [p, tp] : rep.realized) {
    if (p > 4096) continue;
    state.counters["T(" + std::to_string(p) + ")"] =
        static_cast<double>(tp);
    state.counters["MVbound(" + std::to_string(p) + ")"] =
        iph::pram::matias_vishkin_time(rep.ideal_time, rep.work, p);
  }
}

}  // namespace

BENCHMARK(e10)
    ->Arg(1 << 14)
    ->Arg(1 << 16)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
