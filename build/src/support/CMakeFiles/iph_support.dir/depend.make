# Empty dependencies file for iph_support.
# This may be replaced when dependencies are built.
