// Tests for the public API (core/api.h) and the log* algorithm
// (Theorem 2).
#include <gtest/gtest.h>

#include "core/api.h"
#include "core/presorted_logstar.h"
#include "geom/validate.h"
#include "geom/workloads.h"
#include "pram/machine.h"
#include "seq/graham.h"
#include "seq/upper_hull.h"

namespace iph {
namespace {

using geom::Family2D;
using geom::Point2;

TEST(Api, UpperHull2DMatchesOracle) {
  const auto pts = geom::in_disk(2000, 3);
  const auto h = upper_hull_2d(pts);
  std::string err;
  EXPECT_TRUE(geom::validate_upper_hull(pts, h.result.upper, &err)) << err;
  EXPECT_TRUE(geom::validate_edge_above(pts, h.result, &err)) << err;
  EXPECT_GT(h.metrics.steps, 0u);
  EXPECT_GT(h.metrics.work, 0u);
}

TEST(Api, PresortedVariantsAgree) {
  auto pts = geom::gaussian2(3000, 7);
  geom::sort_lex(pts);
  const auto want = seq::upper_hull_presorted(pts);
  for (Algo2D a : {Algo2D::kPresortedConstant, Algo2D::kPresortedLogstar,
                   Algo2D::kFallback}) {
    Options o;
    o.algo = a;
    const auto h = upper_hull_2d_presorted(pts, o);
    ASSERT_EQ(h.result.upper.vertices.size(), want.vertices.size())
        << static_cast<int>(a);
    for (std::size_t i = 0; i < want.vertices.size(); ++i) {
      EXPECT_EQ(pts[h.result.upper.vertices[i]], pts[want.vertices[i]]);
    }
  }
}

TEST(Api, FullHullMatchesGraham) {
  const auto pts = geom::in_square(1500, 11);
  const auto full = convex_hull_2d(pts);
  const auto want = seq::graham_hull(pts);
  ASSERT_EQ(full.vertices.size(), want.size());
  // Same cyclic sequence (both CCW; rotations may differ).
  const auto rot = std::find(full.vertices.begin(), full.vertices.end(),
                             want[0]);
  ASSERT_NE(rot, full.vertices.end());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(full.vertices[(static_cast<std::size_t>(
                                 rot - full.vertices.begin()) +
                             i) %
                            full.vertices.size()],
              want[i]);
  }
}

TEST(Api, UpperHull3DValid) {
  const auto pts = geom::in_ball(1200, 13);
  const auto h = upper_hull_3d(pts);
  std::string err;
  EXPECT_TRUE(geom::validate_hull3d(pts, h.result, true, &err)) << err;
}

TEST(Api, SeedChangesRandomizedPath) {
  const auto pts = geom::in_disk(2000, 5);
  Options a, b;
  a.seed = 1;
  b.seed = 2;
  const auto ha = upper_hull_2d(pts, a);
  const auto hb = upper_hull_2d(pts, b);
  // Same hull, different random execution (metrics usually differ).
  EXPECT_EQ(ha.result.upper.vertices.size(),
            hb.result.upper.vertices.size());
}

// --- Theorem 2 (log*) ---------------------------------------------------

class LogstarSweep
    : public ::testing::TestWithParam<std::tuple<Family2D, int>> {};

TEST_P(LogstarSweep, MatchesOracle) {
  const auto [family, n] = GetParam();
  auto pts = geom::make2d(family, static_cast<std::size_t>(n), 31);
  geom::sort_lex(pts);
  pram::Machine m(1, 17);
  core::LogstarStats stats;
  const auto r = core::presorted_logstar_hull(m, pts, &stats);
  std::string err;
  ASSERT_TRUE(geom::validate_upper_hull(pts, r.upper, &err))
      << geom::family_name(family) << " n=" << n << ": " << err;
  ASSERT_TRUE(geom::validate_edge_above(pts, r, &err)) << err;
}

std::string logstar_name(
    const ::testing::TestParamInfo<std::tuple<Family2D, int>>& info) {
  const auto [family, n] = info.param;
  return geom::family_name(family) + "_n" + std::to_string(n);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LogstarSweep,
    ::testing::Combine(::testing::ValuesIn(geom::kAllFamilies2D),
                       ::testing::Values(1, 50, 3000, 20000)),
    logstar_name);

TEST(Logstar, RecursionDepthIsLogStar) {
  auto pts = geom::in_disk(1 << 16, 3);
  geom::sort_lex(pts);
  pram::Machine m(1, 5);
  core::LogstarStats stats;
  core::presorted_logstar_hull(m, pts, &stats);
  // log*(2^16) is 4; at this scale one grouping level reaches the
  // constant-time base case.
  EXPECT_LE(stats.recursion_depth, 4u);
  EXPECT_GE(stats.groups, 2u);
}

TEST(Logstar, StepsNearlyFlatAcrossSizes) {
  std::vector<std::uint64_t> steps;
  for (std::size_t n : {std::size_t{1} << 13, std::size_t{1} << 17}) {
    auto pts = geom::in_disk(n, 9);
    geom::sort_lex(pts);
    pram::Machine m(1, 7);
    core::presorted_logstar_hull(m, pts);
    steps.push_back(m.metrics().steps);
  }
  // A 16x larger input may take at most ~2x the steps (log* growth plus
  // constant-time noise) — nothing resembling log n scaling.
  EXPECT_LE(steps[1], steps[0] * 2 + 64);
}

}  // namespace
}  // namespace iph
