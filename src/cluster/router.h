// iph::cluster — sharded multi-process serving.
//
// Router fronts N hullserved backends with the same NDJSON protocol
// the backends speak (tools/serve_wire.h): a client cannot tell a
// router from a single server, except that statz/tracez answers cover
// the whole fleet. One Router::Conn per client stream answers one line
// at a time (handle_line), so tools/hullrouter (thread per TCP
// connection), bench/e16_cluster and tests/cluster_test all drive the
// exact same routing code.
//
// Routing (DESIGN.md §13):
//   * Batch requests consistent-hash on their request id (HashRing over
//     the configured endpoints; requests without an id spread by a
//     per-connection sequence). Same id -> same home shard, which is
//     what makes hot-key skew measurable in e16.
//   * Sessions pin: session_open picks a shard, the router mints its
//     own monotonic sid and maps it to (shard, backend sid); every
//     later append/close for that sid forwards to the pinned shard
//     with the sid rewritten both ways. Appends are NEVER re-routed —
//     a downed pinned shard answers a structured shard_down reject.
//   * Backpressure propagates: a backend's rejected_full /
//     rejected_shutdown answer is surfaced to the client verbatim
//     after the retry budget (bounded sibling retries for stateless
//     requests only, clipped by the request's deadline_ms) runs out.
//   * IO failures mark the shard down (cause=io) and retry siblings;
//     the health prober (probe_period_ms > 0) marks io-down shards
//     back up when their statz probe answers again. Administrative
//     mark_down (wire cmd "markdown", or mark_down_admin) is a drain:
//     new traffic routes around the shard, in-flight lines finish, and
//     the prober never overrides it — only mark_up_admin does.
//
// Fleet statz: fleet_statz() live-scrapes every backend, falls back to
// the last good snapshot for unreachable ones (so a crashed backend
// contributes a frozen view instead of vanishing mid-reconciliation),
// merges all parts plus the router's own registry (cluster/merge.h)
// and answers the standard statz shape. Exactness: under pure admin
// mark-down/mark-up churn every backend stays scrapeable and the
// fleet roll-up reconciles exactly against the client tally; after a
// crash, exactness holds provided the crash window had no in-flight
// requests (the cached snapshot then equals the backend's final
// counters). See RouterStats (cluster/stats.h) for the identities.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "cluster/endpoint.h"
#include "cluster/ring.h"
#include "cluster/stats.h"
#include "stats/stats.h"
#include "support/linechan.h"
#include "trace/json.h"

namespace iph::cluster {

struct RouterConfig {
  std::vector<Endpoint> endpoints;
  /// Ring virtual nodes per shard (placement smoothness).
  std::size_t vnodes = 64;
  /// Max sibling re-routes of one stateless request (0 = never retry).
  int retry_limit = 2;
  /// Health-prober period; 0 disables the prober thread entirely
  /// (io mark-down still happens on the request path).
  int probe_period_ms = 200;
  /// Ring placement seed — every router over the same fleet must agree.
  std::uint64_t seed = 0x726f757465726bULL;
};

class Router {
 public:
  explicit Router(RouterConfig cfg);
  ~Router();
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  const RouterConfig& config() const { return cfg_; }
  std::size_t shard_count() const { return cfg_.endpoints.size(); }
  stats::Registry& registry() { return registry_; }
  bool shard_up(std::size_t shard) const;

  /// Administrative drain / undrain (also reachable over the wire:
  /// {"cmd": "markdown"|"markup", "shard": K}). False on a bad index.
  bool mark_down_admin(std::size_t shard);
  bool mark_up_admin(std::size_t shard);

  /// Fleet statz answer ({"statz": ...} / {"statz_text": ...} plus a
  /// "fleet" summary object), merged per the file comment.
  trace::Json fleet_statz(bool prometheus);
  /// Fleet tracez answer: every reachable backend's flight-recorder
  /// view, traces tagged with their shard, slowest-first when asked.
  /// `limit` 0 means unlimited, matching obs::tracez_json.
  trace::Json fleet_tracez(std::size_t limit, bool slowest);

  /// One client stream's routing state: lazily-dialed backend channels
  /// plus the per-connection request sequence. handle_line() is the
  /// whole protocol — exactly one answer line per input line, in order.
  /// A Conn is single-threaded; different Conns share the Router.
  class Conn {
   public:
    explicit Conn(Router& r);
    ~Conn();
    Conn(const Conn&) = delete;
    Conn& operator=(const Conn&) = delete;

    std::string handle_line(const std::string& line);

   private:
    std::string handle_request(const trace::Json& j,
                               const std::string& line);
    std::string handle_session_open(const std::string& line);
    std::string handle_session_cmd(const std::string& cmd, trace::Json j);
    /// Forward `line` to `shard` on this conn's channel; false on IO
    /// failure (the channel is reset so the next use re-dials).
    bool round_trip(std::size_t shard, const std::string& line,
                    std::string* reply);

    Router& r_;
    std::uint64_t salt_;  ///< spreads id-less requests across shards
    std::uint64_t seq_ = 0;
    struct Chan {
      int fd = -1;
      std::unique_ptr<support::LineChannel> ch;
    };
    std::vector<Chan> chans_;
    std::vector<std::uint64_t> my_sids_;  ///< router sids opened here
  };

 private:
  friend class Conn;

  enum class Down { kNo, kIo, kAdmin };
  struct ShardState {
    Down down = Down::kNo;
    stats::RegistrySnapshot cached;  ///< last good statz snapshot
    bool have_cached = false;
  };
  struct SessionEntry {
    std::size_t shard = 0;
    std::uint64_t backend_sid = 0;
    bool closed = false;
  };

  /// Request-path io failure: mark the shard down unless admin-down
  /// already. Returns true when this call did the transition.
  bool mark_down_io(std::size_t shard);
  /// One statz round trip on a fresh connection to endpoint `shard`.
  bool scrape_shard(std::size_t shard, stats::RegistrySnapshot* out);
  void probe_loop();
  void mark_session_closed(std::uint64_t router_sid);

  const RouterConfig cfg_;
  stats::Registry registry_;
  RouterStats stats_;

  mutable std::mutex mu_;  ///< guards ring_, shards_, sessions_
  HashRing ring_;
  std::vector<ShardState> shards_;
  std::unordered_map<std::uint64_t, SessionEntry> sessions_;
  std::uint64_t next_sid_ = 1;
  std::uint64_t next_salt_ = 1;

  std::mutex probe_mu_;
  std::condition_variable probe_cv_;
  bool probe_stop_ = false;
  std::thread probe_thread_;
};

}  // namespace iph::cluster
