# Empty compiler generated dependencies file for e06_random_sample.
# This may be replaced when dependencies are built.
