// PramBackend — the paper's machinery behind the Backend seam.
//
// A thin adapter: reset the wrapped pram::Machine to the request's
// derived seed, run core/api's upper_hull_2d on it (Theorem 5 /
// Lemma 2.5 selection as usual), and hand back the hull plus the
// simulator's REAL cost metrics. This is byte-for-byte the execution
// path the serving batcher ran before the exec layer existed — the
// "serve/request" trace phase included — so bit-identity guarantees
// (batched == solo, determinism_test) carry over unchanged.
//
// Exclusivity: the backend drives the machine (reset, steps, observer
// callbacks), so the caller must hold exclusive access for the duration
// of every upper_hull call — in the serving layer that is the
// MachinePool lease; construct the PramBackend on the stack around the
// leased machine.
#pragma once

#include "exec/backend.h"

namespace iph::pram {
class Machine;
}  // namespace iph::pram

namespace iph::exec {

class PramBackend final : public Backend {
 public:
  explicit PramBackend(pram::Machine& m) : m_(m) {}

  BackendKind kind() const noexcept override { return BackendKind::kPram; }

  /// Resets the machine to `seed`, runs the simulator, returns hull +
  /// per-request PRAM metrics (the machine's cumulative metrics after
  /// the reset, i.e. this request's alone).
  HullRun upper_hull(std::span<const geom::Point2> pts, std::uint64_t seed,
                     int alpha) override;

  /// Presorted fast path (backend.h): runs the paper's presorted
  /// algorithms (core/api upper_hull_2d_presorted — Lemma 2.5 by
  /// default) instead of the Theorem 5 unsorted pipeline. Same reset /
  /// metrics semantics as upper_hull.
  HullRun upper_hull_presorted(std::span<const geom::Point2> pts,
                               std::uint64_t seed, int alpha) override;

 private:
  pram::Machine& m_;
};

}  // namespace iph::exec
