#include "hulltools/chain_ops.h"

#include <algorithm>

#include "geom/predicates.h"
#include "pram/cells.h"
#include "pram/shadow.h"
#include "primitives/lockstep_search.h"
#include "support/check.h"

namespace iph::hulltools {

using geom::Index;
using geom::Point2;

namespace {

/// slope(v->w) > slope(v->r)? (w, r strictly right of v)
bool steeper_right(std::span<const Point2> pts, Index v, Index w, Index r) {
  return geom::orient2d(pts[v], pts[w], pts[r]) < 0;  // r below line v->w
}

/// slope(u->v) < slope(l->v)? (u, l strictly left of v)
bool shallower_left(std::span<const Point2> pts, Index v, Index u, Index l) {
  return geom::orient2d(pts[l], pts[v], pts[u]) > 0;  // u above line l->v
}

}  // namespace

std::vector<Chain> merge_chain_groups(pram::Machine& m,
                                      std::span<const Point2> pts,
                                      std::span<const Chain> chains,
                                      std::span<const std::uint32_t> group_of,
                                      std::size_t num_groups,
                                      std::uint64_t g) {
  const std::size_t nc = chains.size();
  IPH_CHECK(group_of.size() == nc);
  IPH_CHECK(g >= 2);
  pram::Machine::Phase phase(m, "ht/merge-chains");
  std::vector<std::vector<std::uint32_t>> members(num_groups);
  for (std::size_t c = 0; c < nc; ++c) {
    IPH_CHECK(group_of[c] < num_groups);
    members[group_of[c]].push_back(static_cast<std::uint32_t>(c));
  }
#ifndef NDEBUG
  // Chains within a group must be x-disjoint and x-ordered.
  for (const auto& ms : members) {
    for (std::size_t t = 1; t < ms.size(); ++t) {
      const Chain& prev = chains[ms[t - 1]];
      const Chain& cur = chains[ms[t]];
      if (!prev.empty() && !cur.empty()) {
        IPH_DCHECK(pts[prev.back()].x <= pts[cur.front()].x);
      }
    }
  }
#endif

  // Enumerate searches: one per (vertex v, other chain j in v's group).
  struct Search {
    std::uint32_t chain_c;  // v's chain
    std::uint32_t pos;      // v's position in its chain
    std::uint32_t chain_j;  // the probed chain
  };
  std::vector<Search> searches;
  for (std::size_t gi = 0; gi < num_groups; ++gi) {
    for (std::uint32_t c : members[gi]) {
      for (std::uint32_t j : members[gi]) {
        if (j == c || chains[j].empty()) continue;
        for (std::uint32_t p = 0; p < chains[c].size(); ++p) {
          searches.push_back({c, p, j});
        }
      }
    }
  }
  const std::size_t ns = searches.size();

  // Batch 1: first index of chain_j with x >= v.x.
  std::vector<std::uint64_t> lo(ns, 0), hi(ns);
  for (std::size_t s = 0; s < ns; ++s) {
    hi[s] = chains[searches[s].chain_j].size();
  }
  const auto ge = primitives::lockstep_partition_point(
      m, lo, hi, g, [&](std::uint64_t s, std::uint64_t i) {
        const Search& q = searches[s];
        return pts[chains[q.chain_j][i]].x <
               pts[chains[q.chain_c][q.pos]].x;
      });
  // first index with x > v.x: strict chains have <= 1 vertex per x.
  std::vector<std::uint64_t> gt(ns);
  m.step(ns, [&](std::uint64_t s) {
    const Search& q = searches[s];
    const Chain& cj = chains[q.chain_j];
    pram::tracked_write(s, gt[s], ge[s]);
    if (ge[s] < cj.size() &&
        pts[cj[ge[s]]].x == pts[chains[q.chain_c][q.pos]].x) {
      pram::tracked_write(s, gt[s], ge[s] + 1);
    }
  });

  // Batch 2: right tangent peak over [gt, len) (searching the edge range
  // [gt, len-1); empty ranges return gt).
  std::vector<std::uint64_t> rlo(ns), rhi(ns);
  for (std::size_t s = 0; s < ns; ++s) {
    const std::uint64_t len = chains[searches[s].chain_j].size();
    rlo[s] = gt[s];
    rhi[s] = len > 0 && gt[s] < len - 1 ? len - 1 : gt[s];
  }
  const auto rpeak = primitives::lockstep_partition_point(
      m, rlo, rhi, g, [&](std::uint64_t s, std::uint64_t t) {
        const Search& q = searches[s];
        const Chain& cj = chains[q.chain_j];
        const Point2& v = pts[chains[q.chain_c][q.pos]];
        return geom::orient2d(v, pts[cj[t]], pts[cj[t + 1]]) > 0;
      });

  // Batch 3: left tangent valley over [0, ge) (edge range [0, ge-1)).
  std::vector<std::uint64_t> llo(ns, 0), lhi(ns);
  for (std::size_t s = 0; s < ns; ++s) {
    lhi[s] = ge[s] > 0 ? ge[s] - 1 : 0;
  }
  const auto lvalley = primitives::lockstep_partition_point(
      m, llo, lhi, g, [&](std::uint64_t s, std::uint64_t t) {
        const Search& q = searches[s];
        const Chain& cj = chains[q.chain_j];
        const Point2& v = pts[chains[q.chain_c][q.pos]];
        return geom::orient2d(pts[cj[t]], v, pts[cj[t + 1]]) > 0;
      });

  // Combine: per vertex, fold its own-chain neighbours and the per-chain
  // tangent candidates into L (min left slope) and R (max right slope),
  // apply the same-x kill rule, and test the strict right turn L-v-R.
  // One step; each search contributes O(1) work.
  std::vector<std::uint64_t> voff{0};
  for (const Chain& c : chains) voff.push_back(voff.back() + c.size());
  pram::FlagArray dead(voff.back());
  std::vector<Index> bestL(voff.back(), geom::kNone);
  std::vector<Index> bestR(voff.back(), geom::kNone);
  m.step_active(voff.back(), voff.back(), [&](std::uint64_t vid) {
    // Own-chain neighbours.
    std::size_t c = static_cast<std::size_t>(
        std::upper_bound(voff.begin(), voff.end(), vid) - voff.begin() - 1);
    const std::uint32_t p = static_cast<std::uint32_t>(vid - voff[c]);
    if (p > 0) pram::tracked_write(vid, bestL[vid], chains[c][p - 1]);
    if (p + 1 < chains[c].size()) {
      pram::tracked_write(vid, bestR[vid], chains[c][p + 1]);
    }
  });
  // Same-x kill rule (dead is an OR-flag array: racing sets are legal).
  m.step(ns, [&](std::uint64_t s) {
    const Search& q = searches[s];
    const Index v = chains[q.chain_c][q.pos];
    const Chain& cj = chains[q.chain_j];
    if (ge[s] < cj.size() && pts[cj[ge[s]]].x == pts[v].x) {
      const Index u = cj[ge[s]];
      if (pts[u].y > pts[v].y ||
          (pts[u].y == pts[v].y && q.chain_j < q.chain_c)) {
        dead.set(voff[q.chain_c] + q.pos);
      }
    }
  });

  // Candidate folding must be race-free: do it per VERTEX, looping over
  // that vertex's searches (each vertex owns its fold).
  std::vector<std::vector<std::uint32_t>> searches_of(voff.back());
  for (std::size_t s = 0; s < ns; ++s) {
    const Search& q = searches[s];
    searches_of[voff[q.chain_c] + q.pos].push_back(
        static_cast<std::uint32_t>(s));
  }
  m.step_active(voff.back(), std::max<std::uint64_t>(ns, 1),
                [&](std::uint64_t vid) {
    const Index v = [&] {
      std::size_t c = static_cast<std::size_t>(
          std::upper_bound(voff.begin(), voff.end(), vid) - voff.begin() -
          1);
      return chains[c][vid - voff[c]];
    }();
    for (const std::uint32_t s : searches_of[vid]) {
      const Search& q = searches[s];
      const Chain& cj = chains[q.chain_j];
      if (gt[s] < cj.size()) {
        const Index w = cj[rpeak[s]];
        if (bestR[vid] == geom::kNone ||
            steeper_right(pts, v, w, bestR[vid])) {
          pram::tracked_write(vid, bestR[vid], w);
        }
      }
      if (ge[s] > 0) {
        const Index u = cj[lvalley[s]];
        if (bestL[vid] == geom::kNone ||
            shallower_left(pts, v, u, bestL[vid])) {
          pram::tracked_write(vid, bestL[vid], u);
        }
      }
    }
  });
  // Survivor test.
  m.step(voff.back(), [&](std::uint64_t vid) {
    if (dead.get(vid)) return;
    const Index l = bestL[vid], r = bestR[vid];
    if (l == geom::kNone || r == geom::kNone) return;  // endpoint: lives
    const Index v = [&] {
      std::size_t c = static_cast<std::size_t>(
          std::upper_bound(voff.begin(), voff.end(), vid) - voff.begin() -
          1);
      return chains[c][vid - voff[c]];
    }();
    if (geom::orient2d(pts[l], pts[v], pts[r]) >= 0) dead.set(vid);
  });

  // Assemble per-group merged chains (x order == chain, pos order).
  std::vector<Chain> out(num_groups);
  m.step_active(num_groups, voff.back(), [&](std::uint64_t gi) {
    auto& merged = pram::tracked_ref(gi, out[gi]);
    for (const std::uint32_t c : members[gi]) {
      for (std::uint32_t p = 0; p < chains[c].size(); ++p) {
        if (!dead.get(voff[c] + p)) merged.push_back(chains[c][p]);
      }
    }
  });
  return out;
}

std::pair<Index, Index> common_tangent(pram::Machine& m,
                                       std::span<const Point2> pts,
                                       const Chain& a, const Chain& b,
                                       std::uint64_t g) {
  IPH_CHECK(!a.empty() && !b.empty());
  IPH_CHECK(pts[a.back()].x < pts[b.front()].x);
  const Chain cs[2] = {a, b};
  const std::uint32_t gof[2] = {0, 0};
  const auto merged = merge_chain_groups(
      m, pts, std::span<const Chain>(cs, 2),
      std::span<const std::uint32_t>(gof, 2), 1, g);
  const Chain& mc = merged[0];
  // The tangent joins the last survivor of a and the first of b.
  Index left = geom::kNone, right = geom::kNone;
  for (const Index v : mc) {
    bool in_a = false;
    // Chains are x-separated, so membership is an x test.
    in_a = pts[v].x <= pts[a.back()].x;
    if (in_a) {
      left = v;
    } else {
      right = v;
      break;
    }
  }
  IPH_CHECK(left != geom::kNone && right != geom::kNone);
  return {left, right};
}

std::vector<Index> extreme_vs_lines(
    pram::Machine& m, std::span<const Point2> pts,
    std::span<const Chain* const> chain_of,
    std::span<const std::pair<Index, Index>> lines, std::uint64_t g) {
  const std::size_t ns = lines.size();
  IPH_CHECK(chain_of.size() == ns);
  pram::Machine::Phase phase(m, "ht/extreme-vs-lines");
  std::vector<std::uint64_t> lo(ns, 0), hi(ns);
  for (std::size_t s = 0; s < ns; ++s) {
    const std::size_t len = chain_of[s]->size();
    hi[s] = len > 0 ? len - 1 : 0;
  }
  const auto peak = primitives::lockstep_partition_point(
      m, lo, hi, g, [&](std::uint64_t s, std::uint64_t t) {
        const Chain& c = *chain_of[s];
        const Point2& la = pts[lines[s].first];
        const Point2& lb = pts[lines[s].second];
        // Advance while the next vertex is more extreme in the line's
        // upward normal: cross(la->lb, c[t]->c[t+1]) > 0.
        return geom::cross_diff_sign(la, lb, pts[c[t]], pts[c[t + 1]]) > 0;
      });
  std::vector<Index> out(ns, geom::kNone);
  m.step(ns, [&](std::uint64_t s) {
    if (!chain_of[s]->empty()) {
      pram::tracked_write(s, out[s], (*chain_of[s])[peak[s]]);
    }
  });
  return out;
}

std::vector<Index> edges_above_chain(pram::Machine& m,
                                     std::span<const Point2> pts,
                                     std::span<const Index> queries,
                                     const Chain& chain, std::uint64_t g) {
  const std::size_t ns = queries.size();
  std::vector<Index> out(ns, geom::kNone);
  if (chain.size() < 2) return out;
  pram::Machine::Phase phase(m, "ht/edges-above");
  std::vector<std::uint64_t> lo(ns, 0), hi(ns, chain.size());
  const auto part = primitives::lockstep_partition_point(
      m, lo, hi, g, [&](std::uint64_t s, std::uint64_t i) {
        return pts[chain[i]].x <= pts[queries[s]].x;
      });
  const std::uint64_t edges = chain.size() - 1;
  m.step(ns, [&](std::uint64_t s) {
    if (part[s] == 0) return;  // query left of the chain: no cover
    std::uint64_t e = part[s] - 1;
    if (e == edges) --e;  // rightmost column
    pram::tracked_write(s, out[s], static_cast<Index>(e));
  });
  return out;
}

}  // namespace iph::hulltools
