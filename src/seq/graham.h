// Graham's scan — full convex hull baseline (CCW order), Graham 1972.
// Used as the oracle for the full-hull public API and in the e04 baseline
// table.
#pragma once

#include <span>
#include <vector>

#include "geom/hull_types.h"
#include "geom/point.h"

namespace iph::seq {

/// Indices of the convex hull vertices of pts in counterclockwise order,
/// starting from the lexicographically smallest vertex. Strict hull
/// (collinear boundary points excluded). Handles duplicates and fully
/// collinear inputs (hull degenerates to 1 or 2 vertices).
std::vector<geom::Index> graham_hull(std::span<const geom::Point2> pts);

}  // namespace iph::seq
