// Constant-time leftmost-nonzero (Observation 2.1, Eppstein-Galil).
//
// The paper uses this twice: to pick a representative from the random
// sample workspace (Corollary 3.1) and to find "the lowest ancestor of p
// that is not covered" in the presorted algorithm. The classic scheme:
// split the array into sqrt(n) blocks; in one CRCW step mark non-empty
// blocks; find the leftmost non-empty block with (sqrt n)^2 = n
// processors by pairwise elimination; find the leftmost element inside it
// the same way. 4 PRAM steps, n processors, deterministic.
#pragma once

#include <cstdint>
#include <span>

#include "pram/machine.h"

namespace iph::pram {
class Machine;
}

namespace iph::primitives {

inline constexpr std::uint64_t kNotFound = ~std::uint64_t{0};

/// Index of the first i with flags[i] != 0, or kNotFound. O(1) PRAM steps
/// with |flags| processors (pairwise elimination over sqrt-blocks).
std::uint64_t first_nonzero(pram::Machine& m,
                            std::span<const std::uint8_t> flags);

}  // namespace iph::primitives
