// E5 — Theorem 6: unsorted 3-d hull in O(log^2 n) time and
// O(min{n log^2 h, n log n}) work w.h.p.
//
// Reproduction target: work / min(n log^2 h, n log n) bounded across
// h-controlled workloads; steps / log^2 n flat. KNOWN DEVIATION (see
// EXPERIMENTS.md): our realization of the paper's 4-way division (whose
// correctness proof was deferred to the never-published full version)
// leaks on random inputs; the certified Las Vegas fallback repairs it at
// the O(n log n) half of the envelope — the `fallback` counter reports
// how often. QuickHull wall time gives sequential context.
#include <benchmark/benchmark.h>

#include <chrono>

#include "report.h"
#include "core/unsorted3d.h"
#include "geom/workloads.h"
#include "pram/machine.h"
#include "seq/quickhull3d.h"

namespace {

std::vector<iph::geom::Point3> workload(int kind, std::size_t n) {
  switch (kind) {
    case 0:
      return iph::geom::extreme_k3(n, 12, 5);  // h ~ 12
    case 1:
      return iph::geom::in_cube(n, 5);         // h ~ log^2 n
    default:
      return iph::geom::in_ball(n, 5);         // h ~ sqrt(n)
  }
}

const char* workload_name(int kind) {
  return kind == 0 ? "extreme12" : kind == 1 ? "cube" : "ball";
}

void e05(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const int kind = static_cast<int>(state.range(1));
  const auto pts = workload(kind, n);
  const auto oracle = iph::seq::quickhull_upper_hull3(pts);
  const double h = std::max<double>(4, oracle.facets.size());
  iph::pram::Metrics last;
  iph::core::Unsorted3DStats stats;
  for (auto _ : state) {
    iph::pram::Machine m(1, 11);
    stats = {};
    benchmark::DoNotOptimize(iph::core::unsorted_hull_3d(m, pts, &stats));
    last = m.metrics();
  }
  iph::bench::report_metrics(state, last);
  const double nn = static_cast<double>(n);
  const double lg = iph::bench::log2d(nn);
  const double lh = iph::bench::log2d(h);
  state.counters["h_facets"] = h;
  state.counters["work/bound"] =
      static_cast<double>(last.work) / std::min(nn * lh * lh, nn * lg);
  state.counters["steps/log2n"] =
      static_cast<double>(last.steps) / (lg * lg);
  state.counters["fallback"] = stats.used_fallback ? 1 : 0;
  state.counters["fb_reason"] = stats.fallback_reason;
  const auto t0 = std::chrono::steady_clock::now();
  benchmark::DoNotOptimize(iph::seq::quickhull_upper_hull3(pts));
  const auto t1 = std::chrono::steady_clock::now();
  state.counters["qh3_us"] =
      std::chrono::duration<double, std::micro>(t1 - t0).count();
  state.SetLabel(workload_name(kind));
}

}  // namespace

BENCHMARK(e05)
    ->ArgsProduct({iph::bench::n_sweep({1 << 10, 1 << 12, 1 << 14}),
                   {0, 1, 2}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

// Theorem 6 (envelope only — the n log^2 h half is the reproduction's
// documented negative finding, DESIGN.md §8(1)): steps/log^2 n and
// work/min(n log^2 h, n log n) both sit in bounded constant bands
// (measured 6.5-24 and 412-1272 across all series, EXPERIMENTS.md E5).
IPH_BENCH_MAIN("e05",
               {"steps-log2n", "steps", "log2_n", 4.5},
               {"work-envelope", "work/bound", "flat", 4.5})
