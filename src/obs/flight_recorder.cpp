#include "obs/flight_recorder.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <deque>
#include <limits>
#include <mutex>
#include <unordered_set>
#include <utility>

namespace iph::obs {

const char* intern_name(std::string_view name) {
  // Process-lifetime intern table; deque gives stable element addresses
  // and the set keys are views into those elements.
  static std::mutex mu;
  static std::deque<std::string>* storage = new std::deque<std::string>();
  static std::unordered_set<std::string_view>* names =
      new std::unordered_set<std::string_view>();
  std::lock_guard<std::mutex> lk(mu);
  auto it = names->find(name);
  if (it != names->end()) return it->data();
  storage->emplace_back(name);
  names->insert(std::string_view(storage->back()));
  return storage->back().c_str();
}

namespace {

std::size_t sanitize_capacity(std::size_t cap) {
  if (cap == 0) return 1;
  if (cap > (1u << 20)) return 1u << 20;
  return cap;
}

}  // namespace

FlightRecorder::FlightRecorder(const ObsConfig& cfg,
                               stats::Registry& registry)
    : capacity_(sanitize_capacity(cfg.capacity)),
      slots_(new Slot[capacity_]),
      bounds_(stats::latency_bounds_ms()),
      exemplar_slots_(new ExemplarSlot[bounds_.size() + 1]),
      published_request_(registry.counter(stats::labeled(
          statnames::kTracesPublishedBase, "kind", "request"))),
      published_session_(registry.counter(stats::labeled(
          statnames::kTracesPublishedBase, "kind", "session"))),
      spans_request_(registry.counter(stats::labeled(
          statnames::kSpansRecordedBase, "kind", "request"))),
      spans_session_(registry.counter(stats::labeled(
          statnames::kSpansRecordedBase, "kind", "session"))),
      spans_phase_(registry.counter(stats::labeled(
          statnames::kSpansRecordedBase, "kind", "phase"))),
      spans_dropped_(registry.counter(statnames::kSpansDropped)),
      exemplars_pinned_(registry.counter(statnames::kExemplarsPinned)),
      traces_retained_(registry.gauge(statnames::kTracesRetained)) {}

int FlightRecorder::exemplar_bucket(double e2e_ms) const noexcept {
  if (!(e2e_ms >= 0)) return -1;  // NaN / negative: never an exemplar.
  const auto it =
      std::lower_bound(bounds_.begin(), bounds_.end(), e2e_ms);
  const std::size_t idx =
      static_cast<std::size_t>(it - bounds_.begin());
  const std::uint64_t best = exemplar_slots_[idx].best_e2e_bits.load(
      std::memory_order_relaxed);
  if (best != 0 && std::bit_cast<double>(best) >= e2e_ms) return -1;
  return static_cast<int>(idx);
}

bool FlightRecorder::publish(CompletedTrace&& t) {
  // Attempt-time accounting: the published/spans counters include this
  // trace whether or not the ring retains it, so the
  // published == completed identity survives contention drops.
  const std::uint64_t span_count = t.spans.size();
  const std::uint64_t phase_count = t.phase_spans.size();
  const bool is_session = std::strcmp(t.kind, "session") == 0;
  (is_session ? published_session_ : published_request_).inc();
  (is_session ? spans_session_ : spans_request_).inc(span_count);
  if (phase_count != 0) spans_phase_.inc(phase_count);

  // Tail exemplar: pin (copy) when this e2e sets a bucket record. The
  // copy allocates, but only on a new record for the bucket — bounded
  // churn, and obs_test's no-alloc harness pre-pins records so steady
  // state is measurable.
  const int bucket = exemplar_bucket(t.e2e_ms);
  if (bucket >= 0) {
    ExemplarSlot& ex = exemplar_slots_[static_cast<std::size_t>(bucket)];
    std::uint64_t seq = ex.seq.load(std::memory_order_relaxed);
    if ((seq & 1) == 0 &&
        ex.seq.compare_exchange_strong(seq, seq + 1,
                                       std::memory_order_acquire,
                                       std::memory_order_relaxed)) {
      // Re-check the record under the claim; a racing pin may have
      // raised the bar between the advisory check and the claim.
      const std::uint64_t best =
          ex.best_e2e_bits.load(std::memory_order_relaxed);
      if (best == 0 || std::bit_cast<double>(best) < t.e2e_ms) {
        ex.trace = t;  // Copy: the move below still owns the payload.
        ex.best_e2e_bits.store(std::bit_cast<std::uint64_t>(t.e2e_ms),
                               std::memory_order_relaxed);
        exemplars_pinned_.inc();
      }
      ex.seq.store(seq + 2, std::memory_order_release);
    }
    // Claim lost: another pin is in flight for this bucket; skip.
  }

  const std::uint64_t ticket =
      cursor_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[ticket % capacity_];
  std::uint64_t seq = slot.seq.load(std::memory_order_relaxed);
  if ((seq & 1) != 0 ||
      !slot.seq.compare_exchange_strong(seq, seq + 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
    // Slot claimed by a concurrent reader/writer: drop, never wait.
    spans_dropped_.inc(span_count + phase_count);
    return false;
  }
  const bool was_empty = slot.ticket == 0;
  slot.ticket = ticket + 1;
  slot.trace = std::move(t);  // Move: no allocation (hot-path contract).
  slot.seq.store(seq + 2, std::memory_order_release);
  if (was_empty) traces_retained_.add(1);
  return true;
}

std::vector<CompletedTrace> FlightRecorder::snapshot() const {
  struct Taken {
    std::uint64_t ticket;
    CompletedTrace trace;
  };
  std::vector<Taken> taken;
  taken.reserve(capacity_);
  for (std::size_t i = 0; i < capacity_; ++i) {
    Slot& slot = slots_[i];
    std::uint64_t seq = slot.seq.load(std::memory_order_relaxed);
    if ((seq & 1) != 0 ||
        !slot.seq.compare_exchange_strong(seq, seq + 1,
                                          std::memory_order_acquire,
                                          std::memory_order_relaxed)) {
      continue;  // A writer owns it right now; its publish will land.
    }
    if (slot.ticket != 0) taken.push_back({slot.ticket, slot.trace});
    slot.seq.store(seq + 2, std::memory_order_release);
  }
  std::sort(taken.begin(), taken.end(),
            [](const Taken& a, const Taken& b) {
              return a.ticket > b.ticket;  // Most recent first.
            });
  std::vector<CompletedTrace> out;
  out.reserve(taken.size());
  for (auto& e : taken) out.push_back(std::move(e.trace));
  return out;
}

std::vector<Exemplar> FlightRecorder::exemplars() const {
  std::vector<Exemplar> out;
  const std::size_t n = bounds_.size() + 1;
  for (std::size_t i = 0; i < n; ++i) {
    ExemplarSlot& ex = exemplar_slots_[i];
    if (ex.best_e2e_bits.load(std::memory_order_relaxed) == 0) continue;
    std::uint64_t seq = ex.seq.load(std::memory_order_relaxed);
    if ((seq & 1) != 0 ||
        !ex.seq.compare_exchange_strong(seq, seq + 1,
                                        std::memory_order_acquire,
                                        std::memory_order_relaxed)) {
      continue;
    }
    if (ex.best_e2e_bits.load(std::memory_order_relaxed) != 0) {
      Exemplar e;
      e.bucket_le_ms = i < bounds_.size()
                           ? bounds_[i]
                           : std::numeric_limits<double>::infinity();
      e.trace = ex.trace;
      out.push_back(std::move(e));
    }
    ex.seq.store(seq + 2, std::memory_order_release);
  }
  return out;
}

}  // namespace iph::obs
