// iph — public API.
//
// Parallel convex hulls after Ghouse & Goodrich (SPAA 1991), executed on
// the library's CRCW PRAM simulator. Each call spins up a Machine (or
// uses a caller-provided one), runs the selected algorithm, and returns
// the hull in the paper's output convention — every input point learns
// the hull edge (2-d) / facet (3-d) vertically above it — together with
// the PRAM cost metrics (steps = parallel time, work, processor peak).
//
// Quick start:
//   std::vector<iph::geom::Point2> pts = ...;
//   const iph::Hull2D h = iph::upper_hull_2d(pts);
//   // h.result.upper.vertices, h.result.edge_above, h.metrics.steps ...
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "geom/hull_types.h"
#include "geom/point.h"
#include "pram/metrics.h"

namespace iph::pram {
class Machine;
}  // namespace iph::pram

namespace iph {

enum class Algo2D {
  kAuto,              ///< unsorted Theorem 5; presorted calls pick Lemma 2.5
  kUnsorted,          ///< Theorem 5: O(log n) time, O(n log h) work
  kPresortedConstant, ///< Lemma 2.5: O(1) time, O(n log n) processors
  kPresortedLogstar,  ///< Theorem 2: O(log* n) time, ~n processors
  kFallback,          ///< the O(n log n)-work parallel baseline
};

struct Options {
  std::uint64_t seed = 0x19910722ULL;  ///< randomized-CRCW seed
  unsigned threads = 0;                ///< 0 = IPH_THREADS / hardware
  int alpha = 8;                       ///< in-place-bridge round budget
  Algo2D algo = Algo2D::kAuto;
};

// Machine-lease entry points: every call below also exists in an
// overload taking a caller-provided pram::Machine&. These skip the
// per-call Machine spin-up (threads-1 thread spawns + joins) — the
// serving layer (src/serve) leases pre-warmed machines from a pool and
// calls these. With a provided machine, Options::seed and
// Options::threads are ignored (they are machine properties; reseed
// with Machine::reset), and the returned metrics are the machine's
// cumulative metrics — reset() the machine first for per-call numbers.

struct Hull2D {
  geom::HullResult2D result;
  pram::Metrics metrics;
};

struct Hull3D {
  geom::HullResult3D result;
  pram::Metrics metrics;
  bool used_fallback = false;
};

/// Upper hull of arbitrary-order 2-d points (Theorem 5 by default).
Hull2D upper_hull_2d(std::span<const geom::Point2> pts,
                     const Options& opts = {});
Hull2D upper_hull_2d(pram::Machine& m, std::span<const geom::Point2> pts,
                     const Options& opts = {});

/// Upper hull of lexicographically sorted points (Lemma 2.5 by default;
/// select Theorem 2 via Algo2D::kPresortedLogstar).
Hull2D upper_hull_2d_presorted(std::span<const geom::Point2> pts,
                               const Options& opts = {});
Hull2D upper_hull_2d_presorted(pram::Machine& m,
                               std::span<const geom::Point2> pts,
                               const Options& opts = {});

/// Full convex hull, counterclockwise vertex indices, via two upper-hull
/// runs (the standard reduction the paper assumes).
struct FullHull2D {
  std::vector<geom::Index> vertices;  ///< CCW
  pram::Metrics metrics;
};
FullHull2D convex_hull_2d(std::span<const geom::Point2> pts,
                          const Options& opts = {});
FullHull2D convex_hull_2d(pram::Machine& m,
                          std::span<const geom::Point2> pts,
                          const Options& opts = {});

/// Upper hull of arbitrary-order 3-d points (Theorem 6; Las Vegas — the
/// result is always exact, used_fallback reports the repair path).
Hull3D upper_hull_3d(std::span<const geom::Point3> pts,
                     const Options& opts = {});
Hull3D upper_hull_3d(pram::Machine& m, std::span<const geom::Point3> pts,
                     const Options& opts = {});

}  // namespace iph
