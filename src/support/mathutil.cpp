#include "support/mathutil.h"

#include <cmath>
#include <limits>

namespace iph::support {

unsigned log_star(std::uint64_t n) noexcept {
  unsigned r = 0;
  // Work in double once n drops below 2^53; exact for the integer part of
  // the tower since every intermediate value is tiny.
  double x = static_cast<double>(n);
  while (x > 1.0) {
    x = std::log2(x);
    ++r;
  }
  return r;
}

std::uint64_t ipow_sat(std::uint64_t base, unsigned exp) noexcept {
  std::uint64_t r = 1;
  for (unsigned i = 0; i < exp; ++i) {
    if (base != 0 && r > std::numeric_limits<std::uint64_t>::max() / base) {
      return std::numeric_limits<std::uint64_t>::max();
    }
    r *= base;
  }
  return r;
}

std::uint64_t ipow_frac(std::uint64_t x, double exponent) noexcept {
  if (x == 0) return 0;
  const double v = std::pow(static_cast<double>(x), exponent);
  if (v >= 9.0e18) return std::numeric_limits<std::uint64_t>::max();
  const auto r = static_cast<std::uint64_t>(v);
  return r == 0 ? 1 : r;
}

double chernoff_upper(double mu, double delta) noexcept {
  if (mu <= 0.0 || delta <= 0.0) return 1.0;
  // Compute in log space to avoid overflow for large mu.
  const double log_bound = mu * (delta - (1.0 + delta) * std::log1p(delta));
  return std::exp(log_bound);
}

double chernoff_lower(double mu, double delta) noexcept {
  if (mu <= 0.0 || delta <= 0.0) return 1.0;
  if (delta >= 1.0) delta = 1.0;
  double log_bound;
  if (delta == 1.0) {
    log_bound = -mu;  // limit of -delta - (1-delta)log(1-delta) at delta=1
  } else {
    log_bound = mu * (-delta - (1.0 - delta) * std::log1p(-delta));
  }
  return std::exp(log_bound);
}

}  // namespace iph::support
