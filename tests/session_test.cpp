// Oracle gate for iph::session (ISSUE: streaming incremental hull
// sessions).
//
// The load-bearing invariant: after ANY append sequence, the session's
// upper and lower chains must be coordinate-equal to a from-scratch
// strict hull of every point the session has ever seen — the
// incremental insert path, the delta stream, and the periodic
// presorted-rebuild audit all hang off that. The oracle is
// seq::upper_hull (the same pure-serial baseline exec_diff_test trusts),
// applied to the full point log this test keeps on the side (the
// session itself deliberately forgets interior points); the lower
// chain is checked through y-negation of the same oracle.
//
// On top of the gate:
//   * delta replay — a shadow client applying DeltaOps op by op stays
//     exactly in sync with the server-side chains,
//   * rebuild audits — tiny pending/staleness limits force many
//     rebuilds through both exec backends; zero mismatches allowed,
//     and the pram rebuild metrics must be real (work > 0),
//   * ledger determinism — same appends, same config => bit-identical
//     aux watermark; live cells reconcile with chain + pending sizes,
//   * SessionManager statuses (unknown vs closed vs oversized vs cap)
//     and exact stats reconciliation after mixed traffic,
//   * concurrent sessions through one manager (the TSan target),
//   * a time-bounded fuzz loop (IPH_SESSION_FUZZ_MS) over random
//     (family, n, seed, chunking) draws; failures dump a standalone
//     repro JSON under IPH_EXEC_REPRO_DIR in the exec_diff repro
//     shape, so the exec_diff loader can replay the same points.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "exec/native_backend.h"
#include "exec/pram_backend.h"
#include "geom/point.h"
#include "geom/workloads.h"
#include "obs/flight_recorder.h"
#include "pram/machine.h"
#include "seq/upper_hull.h"
#include "session/manager.h"
#include "session/session.h"
#include "session/stats.h"
#include "stats/stats.h"
#include "support/env.h"
#include "support/rng.h"

namespace iph::session {
namespace {

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

using geom::Point2;

/// One shared native engine for rebuild audits across the suite.
exec::NativeBackend& native() {
  static exec::NativeBackend backend;
  return backend;
}

std::vector<Point2> chain_coords(std::span<const Point2> pts,
                                 const geom::UpperHull2D& h) {
  std::vector<Point2> out;
  out.reserve(h.vertices.size());
  for (const geom::Index v : h.vertices) out.push_back(pts[v]);
  return out;
}

/// From-scratch strict upper hull of `pts`, as coordinates.
std::vector<Point2> oracle_upper(const std::vector<Point2>& pts) {
  return chain_coords(pts, seq::upper_hull(pts));
}

/// From-scratch strict lower hull via the y-negation trick the session
/// itself uses — but through the independent sequential oracle.
std::vector<Point2> oracle_lower(const std::vector<Point2>& pts) {
  std::vector<Point2> flipped;
  flipped.reserve(pts.size());
  for (const Point2& p : pts) flipped.push_back({p.x, -p.y});
  std::vector<Point2> chain = chain_coords(flipped, seq::upper_hull(flipped));
  for (Point2& p : chain) p.y = -p.y;
  return chain;
}

/// Assert both session chains equal the oracle hulls of the full log.
void expect_matches_oracle(const HullSession& s,
                           const std::vector<Point2>& log,
                           const std::string& what) {
  EXPECT_EQ(s.upper(), oracle_upper(log)) << what << " (upper)";
  EXPECT_EQ(s.lower(), oracle_lower(log)) << what << " (lower)";
}

/// Client-side delta replay: apply ops in order to shadow chains.
struct Shadow {
  std::vector<Point2> upper, lower;

  void apply(const std::vector<DeltaOp>& ops) {
    for (const DeltaOp& op : ops) {
      std::vector<Point2>& c = op.side == Side::kUpper ? upper : lower;
      ASSERT_LE(op.pos + op.removed, c.size()) << "op out of range";
      c.erase(c.begin() + op.pos, c.begin() + op.pos + op.removed);
      c.insert(c.begin() + op.pos, op.point);
    }
  }
};

SessionConfig tiny_config(std::uint64_t seed) {
  SessionConfig cfg;
  cfg.pending_limit = 8;    // rebuild constantly
  cfg.staleness_limit = 3;  // and on staleness too
  cfg.seed = seed;
  return cfg;
}

// --- oracle gate over workload families --------------------------------

TEST(Session, MatchesOracleAcrossFamiliesAndChunkings) {
  for (const geom::Family2D f : geom::kAllFamilies2D) {
    for (const std::size_t n : {std::size_t{1}, std::size_t{7},
                                std::size_t{64}, std::size_t{500}}) {
      const std::vector<Point2> pts = geom::make2d(f, n, 77);
      SessionConfig cfg;
      cfg.pending_limit = 64;
      cfg.staleness_limit = 16;
      cfg.seed = 99;
      HullSession s(cfg);
      std::vector<Point2> log;
      std::size_t i = 0;
      std::size_t chunk = 1;
      while (i < pts.size()) {
        const std::size_t take = std::min(chunk, pts.size() - i);
        const std::span<const Point2> batch(pts.data() + i, take);
        const AppendResult res = s.append(batch, native());
        EXPECT_FALSE(res.rebuild_mismatch)
            << geom::family_name(f) << " n=" << n << " at point " << i;
        log.insert(log.end(), batch.begin(), batch.end());
        i += take;
        chunk = chunk % 13 + 1;  // varied batch sizes, deterministic
      }
      expect_matches_oracle(
          s, log, geom::family_name(f) + " n=" + std::to_string(n));
      EXPECT_EQ(s.points_seen(), pts.size());
      EXPECT_EQ(s.rebuild_mismatches(), 0u);
    }
  }
}

TEST(Session, DegenerateInputs) {
  HullSession s(tiny_config(1));
  // Empty append is legal and emits nothing.
  EXPECT_TRUE(s.append({}, native()).ops.empty());
  EXPECT_EQ(s.upper_size(), 0u);
  // All-duplicate and all-collinear streams.
  std::vector<Point2> log;
  for (int i = 0; i < 20; ++i) {
    const Point2 p{1.0, 2.0};
    s.append(std::span<const Point2>(&p, 1), native());
    log.push_back(p);
  }
  expect_matches_oracle(s, log, "duplicates");
  for (int i = 0; i < 20; ++i) {
    const Point2 p{static_cast<double>(i % 7), static_cast<double>(i % 7)};
    s.append(std::span<const Point2>(&p, 1), native());
    log.push_back(p);
  }
  expect_matches_oracle(s, log, "collinear mix");
  EXPECT_EQ(s.rebuild_mismatches(), 0u);
}

// --- delta replay ------------------------------------------------------

TEST(Session, DeltaReplayTracksChains) {
  const std::vector<Point2> pts = geom::make2d(geom::Family2D::kDisk, 600, 5);
  HullSession s(tiny_config(2));
  Shadow shadow;
  std::size_t i = 0;
  std::size_t chunk = 1;
  while (i < pts.size()) {
    const std::size_t take = std::min(chunk, pts.size() - i);
    const AppendResult res =
        s.append(std::span<const Point2>(pts.data() + i, take), native());
    shadow.apply(res.ops);
    ASSERT_EQ(shadow.upper, s.upper()) << "after point " << i;
    ASSERT_EQ(shadow.lower, s.lower()) << "after point " << i;
    i += take;
    chunk = chunk % 7 + 1;
  }
}

// --- rebuild audits through both backends ------------------------------

TEST(Session, RebuildsAuditCleanOnNative) {
  const std::vector<Point2> pts =
      geom::make2d(geom::Family2D::kCircle, 400, 11);
  HullSession s(tiny_config(3));
  for (std::size_t i = 0; i < pts.size(); i += 5) {
    const std::size_t take = std::min<std::size_t>(5, pts.size() - i);
    s.append(std::span<const Point2>(pts.data() + i, take), native());
  }
  EXPECT_GT(s.rebuilds(), 10u);  // tiny limits must have tripped often
  EXPECT_EQ(s.rebuild_mismatches(), 0u);
  expect_matches_oracle(s, pts, "circle after rebuilds");
}

TEST(Session, RebuildsAuditCleanOnPramAndMeterWork) {
  pram::Machine m(2, 42);
  exec::PramBackend pram(m);
  const std::vector<Point2> pts =
      geom::make2d(geom::Family2D::kSquare, 200, 13);
  HullSession s(tiny_config(4));
  pram::Metrics folded;
  for (std::size_t i = 0; i < pts.size(); i += 4) {
    const std::size_t take = std::min<std::size_t>(4, pts.size() - i);
    const AppendResult res =
        s.append(std::span<const Point2>(pts.data() + i, take), pram);
    if (res.rebuilt) folded.add_counters(res.rebuild_metrics);
  }
  EXPECT_GT(s.rebuilds(), 5u);
  EXPECT_EQ(s.rebuild_mismatches(), 0u);
  // The simulator really ran: the folded audit metrics carry cost.
  EXPECT_GT(folded.work, 0u);
  EXPECT_GT(folded.steps, 0u);
  expect_matches_oracle(s, pts, "square after pram rebuilds");
}

TEST(Session, NativeAndPramSessionsAgree) {
  pram::Machine m(2, 43);
  exec::PramBackend pram(m);
  const std::vector<Point2> pts =
      geom::make2d(geom::Family2D::kGaussian, 300, 17);
  HullSession a(tiny_config(5));
  HullSession b(tiny_config(5));
  for (std::size_t i = 0; i < pts.size(); i += 3) {
    const std::size_t take = std::min<std::size_t>(3, pts.size() - i);
    const std::span<const Point2> batch(pts.data() + i, take);
    a.append(batch, native());
    b.append(batch, pram);
  }
  EXPECT_EQ(a.upper(), b.upper());
  EXPECT_EQ(a.lower(), b.lower());
  EXPECT_EQ(a.rebuild_mismatches() + b.rebuild_mismatches(), 0u);
}

// --- the space ledger --------------------------------------------------

TEST(Session, LedgerReconcilesAndIsDeterministic) {
  const std::vector<Point2> pts = geom::make2d(geom::Family2D::kDisk, 500, 23);
  auto run = [&]() {
    HullSession s(tiny_config(6));
    for (std::size_t i = 0; i < pts.size(); i += 9) {
      const std::size_t take = std::min<std::size_t>(9, pts.size() - i);
      s.append(std::span<const Point2>(pts.data() + i, take), native());
    }
    // Live cells == 2 per chain vertex + 2 per pending point, exactly.
    EXPECT_EQ(s.ledger().aux_cells,
              2 * (s.upper_size() + s.lower_size() + s.pending_size()));
    return s.ledger().peak_aux;
  };
  const std::uint64_t peak1 = run();
  const std::uint64_t peak2 = run();
  EXPECT_EQ(peak1, peak2) << "peak workspace must be deterministic";
  EXPECT_GT(peak1, 0u);
}

// --- SessionManager ----------------------------------------------------

TEST(SessionManager, StatusDiscrimination) {
  stats::Registry reg;
  ManagerConfig cfg;
  cfg.max_sessions = 2;
  cfg.max_append_points = 10;
  SessionManager mgr(cfg, reg);
  const std::vector<Point2> pts = geom::make2d(geom::Family2D::kDisk, 4, 1);
  AppendResult res;
  CloseSummary sum;

  // Never-issued ids are unknown — including 0 and far-future ones.
  EXPECT_EQ(mgr.append(0, pts, &res), SessionStatus::kUnknownSession);
  EXPECT_EQ(mgr.append(12345, pts, &res), SessionStatus::kUnknownSession);
  EXPECT_EQ(mgr.close(7, &sum), SessionStatus::kUnknownSession);

  OpenInfo s1, s2, s3;
  EXPECT_EQ(mgr.open(exec::BackendKind::kDefault, &s1), SessionStatus::kOk);
  EXPECT_EQ(s1.backend, exec::BackendKind::kNative);  // resolved
  EXPECT_EQ(mgr.open(exec::BackendKind::kNative, &s2), SessionStatus::kOk);
  EXPECT_EQ(mgr.open(exec::BackendKind::kNative, &s3),
            SessionStatus::kRejectedCap);
  EXPECT_EQ(mgr.live(), 2u);

  // Oversized appends are rejected whole, session untouched.
  const std::vector<Point2> big = geom::make2d(geom::Family2D::kDisk, 11, 2);
  EXPECT_EQ(mgr.append(s1.sid, big, &res), SessionStatus::kOversizedAppend);
  EXPECT_EQ(mgr.append(s1.sid, pts, &res), SessionStatus::kOk);

  // After close, the id flips from ok to closed — not unknown.
  EXPECT_EQ(mgr.close(s1.sid, &sum), SessionStatus::kOk);
  EXPECT_EQ(sum.points_seen, 4u);
  EXPECT_EQ(mgr.append(s1.sid, pts, &res), SessionStatus::kSessionClosed);
  EXPECT_EQ(mgr.close(s1.sid, &sum), SessionStatus::kSessionClosed);
  EXPECT_EQ(mgr.live(), 1u);

  // The freed slot admits a new session.
  EXPECT_EQ(mgr.open(exec::BackendKind::kNative, &s3), SessionStatus::kOk);
  EXPECT_EQ(mgr.close(s2.sid, &sum), SessionStatus::kOk);
  EXPECT_EQ(mgr.close(s3.sid, &sum), SessionStatus::kOk);
}

TEST(SessionManager, StatsReconcileAfterMixedTraffic) {
  stats::Registry reg;
  ManagerConfig cfg;
  cfg.max_sessions = 3;
  cfg.max_append_points = 100;
  cfg.session.pending_limit = 16;
  cfg.session.staleness_limit = 4;
  SessionManager mgr(cfg, reg);
  AppendResult res;
  CloseSummary sum;

  OpenInfo a, b, c, d;
  ASSERT_EQ(mgr.open(exec::BackendKind::kNative, &a), SessionStatus::kOk);
  ASSERT_EQ(mgr.open(exec::BackendKind::kPram, &b), SessionStatus::kOk);
  ASSERT_EQ(mgr.open(exec::BackendKind::kNative, &c), SessionStatus::kOk);
  EXPECT_EQ(mgr.open(exec::BackendKind::kNative, &d),
            SessionStatus::kRejectedCap);

  std::uint64_t ok_appends = 0;
  std::uint64_t ok_points = 0;
  std::uint64_t rebuilds_seen = 0;
  for (int i = 0; i < 12; ++i) {
    const std::vector<Point2> pts =
        geom::make2d(geom::Family2D::kDisk, 8, 100 + i);
    const std::uint64_t sid = i % 2 == 0 ? a.sid : b.sid;
    ASSERT_EQ(mgr.append(sid, pts, &res), SessionStatus::kOk);
    ++ok_appends;
    ok_points += pts.size();
    if (res.rebuilt) ++rebuilds_seen;
  }
  // Oversized is checked before the table lookup, so probe unknown and
  // closed with valid-size batches.
  const std::vector<Point2> big = geom::make2d(geom::Family2D::kDisk, 101, 9);
  const std::vector<Point2> ok = geom::make2d(geom::Family2D::kDisk, 5, 10);
  EXPECT_EQ(mgr.append(a.sid, big, &res), SessionStatus::kOversizedAppend);
  EXPECT_EQ(mgr.append(999, ok, &res), SessionStatus::kUnknownSession);
  ASSERT_EQ(mgr.close(c.sid, &sum), SessionStatus::kOk);
  EXPECT_EQ(mgr.append(c.sid, ok, &res), SessionStatus::kSessionClosed);

  namespace sn = statnames;
  const stats::RegistrySnapshot s = reg.snapshot();
  auto counter = [&](const std::string& name) {
    return s.counter_or0(name);
  };
  EXPECT_EQ(counter(sn::kOpened), 3u);
  EXPECT_EQ(counter(sn::kClosed), 1u);
  EXPECT_EQ(*s.gauge(sn::kLiveSessions), 2);
  // opened == closed + live
  EXPECT_EQ(counter(sn::kOpened),
            counter(sn::kClosed) +
                static_cast<std::uint64_t>(*s.gauge(sn::kLiveSessions)));
  EXPECT_EQ(counter(sn::kAppends), ok_appends);
  EXPECT_EQ(counter(sn::kAppendPoints), ok_points);
  EXPECT_EQ(counter(sn::kRebuilds), rebuilds_seen);
  EXPECT_EQ(counter(stats::labeled(sn::kRejectedBase, "reason", "cap")), 1u);
  EXPECT_EQ(
      counter(stats::labeled(sn::kRejectedBase, "reason", "oversized")), 1u);
  EXPECT_EQ(counter(stats::labeled(sn::kRejectedBase, "reason", "unknown")),
            1u);
  EXPECT_EQ(counter(stats::labeled(sn::kRejectedBase, "reason", "closed")),
            1u);
  EXPECT_EQ(counter(sn::kRebuildMismatch), 0u);
  // rebuilds == pram + native rebuild counters == rebuild_ms count
  EXPECT_EQ(
      counter(stats::labeled(sn::kRebuildBackendBase, "backend", "pram")) +
          counter(
              stats::labeled(sn::kRebuildBackendBase, "backend", "native")),
      counter(sn::kRebuilds));
  EXPECT_EQ(s.histogram(sn::kRebuildMs)->count, counter(sn::kRebuilds));
  EXPECT_EQ(s.histogram(sn::kAppendMs)->count, ok_appends);
  EXPECT_EQ(s.histogram(sn::kDeltaOps)->count, ok_appends);
  // One peak-aux sample per closed session.
  EXPECT_EQ(s.histogram(sn::kPeakAuxCells)->count, counter(sn::kClosed));
  // Live aux cells reconcile exactly against the two live sessions
  // once both are closed: the gauge must return to zero.
  EXPECT_GT(*s.gauge(sn::kAuxCells), 0);
  ASSERT_EQ(mgr.close(a.sid, &sum), SessionStatus::kOk);
  ASSERT_EQ(mgr.close(b.sid, &sum), SessionStatus::kOk);
  const stats::RegistrySnapshot end = reg.snapshot();
  EXPECT_EQ(*end.gauge(sn::kAuxCells), 0);
  EXPECT_EQ(*end.gauge(sn::kLiveSessions), 0);
  EXPECT_EQ(end.counter_or0(sn::kOpened), end.counter_or0(sn::kClosed));
}

// --- concurrency (the TSan target) -------------------------------------

TEST(SessionManager, ConcurrentSessionsStayOracleClean) {
  stats::Registry reg;
  ManagerConfig cfg;
  cfg.max_sessions = 16;
  cfg.session.pending_limit = 32;
  cfg.session.staleness_limit = 8;
  SessionManager mgr(cfg, reg);

  const int kThreads = 8;
  const int kAppends = kSanitized ? 20 : 60;
  std::vector<int> failures(kThreads, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Half the sessions rebuild on pram (serialized inside the
      // manager), half on native (shared engine) — concurrently.
      const exec::BackendKind kind = t % 2 == 0
                                         ? exec::BackendKind::kNative
                                         : exec::BackendKind::kPram;
      OpenInfo info;
      if (mgr.open(kind, &info) != SessionStatus::kOk) {
        failures[t] = 1;
        return;
      }
      std::vector<Point2> log;
      for (int i = 0; i < kAppends; ++i) {
        const std::vector<Point2> pts = geom::make2d(
            geom::Family2D::kDisk, 6,
            support::mix3(7, static_cast<std::uint64_t>(t),
                          static_cast<std::uint64_t>(i)));
        AppendResult res;
        if (mgr.append(info.sid, pts, &res) != SessionStatus::kOk ||
            res.rebuild_mismatch) {
          failures[t] = 2;
          return;
        }
        log.insert(log.end(), pts.begin(), pts.end());
      }
      CloseSummary sum;
      if (mgr.close(info.sid, &sum) != SessionStatus::kOk ||
          sum.rebuild_mismatches != 0 ||
          sum.points_seen != log.size()) {
        failures[t] = 3;
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(failures[t], 0) << "thread " << t;
  }
  // Everything closed: gauges back to zero, counters conserve.
  const stats::RegistrySnapshot s = reg.snapshot();
  EXPECT_EQ(*s.gauge(statnames::kLiveSessions), 0);
  EXPECT_EQ(*s.gauge(statnames::kAuxCells), 0);
  EXPECT_EQ(s.counter_or0(statnames::kOpened),
            s.counter_or0(statnames::kClosed));
  EXPECT_EQ(s.counter_or0(statnames::kRebuildMismatch), 0u);
}

// --- time-bounded fuzz -------------------------------------------------

void write_repro(const std::string& dir, std::uint64_t fuzz_seed,
                 const geom::Family2D f, std::size_t n, std::uint64_t seed,
                 std::span<const Point2> pts) {
  // Same shape as exec_diff_test's repro files, so the exec_diff
  // repro loader replays these points too.
  const std::string path =
      dir + "/session_repro_" + std::to_string(fuzz_seed) + ".json";
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return;
  std::fprintf(out,
               "{\"family\": \"%s\", \"n\": %zu, \"seed\": %llu,\n"
               " \"points\": [",
               geom::family_name(f).c_str(), n,
               static_cast<unsigned long long>(seed));
  for (std::size_t i = 0; i < pts.size(); ++i) {
    std::fprintf(out, "%s[%.17g, %.17g]", i == 0 ? "" : ", ", pts[i].x,
                 pts[i].y);
  }
  std::fprintf(out, "]}\n");
  std::fclose(out);
}

TEST(Session, FuzzTimeBounded) {
  const std::uint64_t budget_ms =
      support::env_u64("IPH_SESSION_FUZZ_MS", kSanitized ? 100 : 200);
  const std::string repro_dir =
      support::env_string("IPH_EXEC_REPRO_DIR", "");
  const std::uint64_t master = support::env_seed();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(budget_ms);
  std::uint64_t iters = 0;
  constexpr std::size_t kNumFamilies =
      sizeof(geom::kAllFamilies2D) / sizeof(geom::kAllFamilies2D[0]);
  while (std::chrono::steady_clock::now() < deadline) {
    const std::uint64_t fz = support::mix3(master, 0x5e5510f2, iters++);
    const geom::Family2D f = geom::kAllFamilies2D[fz % kNumFamilies];
    const std::size_t n =
        1 + static_cast<std::size_t>(support::splitmix64(fz) % 800);
    const std::uint64_t seed = support::splitmix64(fz ^ 0x5e55);
    const std::vector<Point2> pts = geom::make2d(f, n, seed);

    SessionConfig cfg;
    cfg.pending_limit = 1 + support::splitmix64(fz ^ 1) % 32;
    cfg.staleness_limit = 1 + support::splitmix64(fz ^ 2) % 16;
    cfg.seed = fz;
    HullSession s(cfg);
    Shadow shadow;
    std::size_t i = 0;
    std::uint64_t chunk_rng = support::splitmix64(fz ^ 3);
    bool bad = false;
    while (i < pts.size() && !bad) {
      chunk_rng = support::splitmix64(chunk_rng);
      const std::size_t take =
          std::min<std::size_t>(1 + chunk_rng % 17, pts.size() - i);
      const AppendResult res =
          s.append(std::span<const Point2>(pts.data() + i, take), native());
      shadow.apply(res.ops);
      bad = res.rebuild_mismatch || ::testing::Test::HasFailure();
      i += take;
    }
    const std::vector<Point2> log(pts.begin(), pts.begin() + i);
    if (bad || s.upper() != oracle_upper(log) ||
        s.lower() != oracle_lower(log) || shadow.upper != s.upper() ||
        shadow.lower != s.lower()) {
      if (!repro_dir.empty()) write_repro(repro_dir, fz, f, n, seed, pts);
      FAIL() << "session fuzz mismatch: family=" << geom::family_name(f)
             << " n=" << n << " seed=" << seed << " master=" << master
             << " pending_limit=" << cfg.pending_limit
             << " staleness=" << cfg.staleness_limit;
    }
  }
  std::printf("session fuzz: %llu iterations in %llu ms budget\n",
              static_cast<unsigned long long>(iters),
              static_cast<unsigned long long>(budget_ms));
}

// A manager wired to a flight recorder publishes one kind="session"
// trace per append — a session_append root plus a rebuild child iff
// that append rebuilt — so the obs counters reconcile EXACTLY against
// the session counters (the identity hullload --stream --scrape
// checks). A null recorder (the default) publishes nothing.
TEST(SessionManager, AppendsPublishSessionTraces) {
  stats::Registry reg;
  ManagerConfig cfg;
  cfg.session.pending_limit = 8;  // force some rebuilds
  cfg.session.staleness_limit = 2;
  obs::FlightRecorder flight(obs::ObsConfig{}, reg);
  SessionManager mgr(cfg, reg, &flight);

  OpenInfo info;
  ASSERT_EQ(mgr.open(exec::BackendKind::kNative, &info), SessionStatus::kOk);
  AppendResult res;
  std::uint64_t appends = 0, rebuilds = 0;
  for (int i = 0; i < 12; ++i) {
    const std::vector<Point2> pts =
        geom::make2d(geom::Family2D::kDisk, 16, 100 + i);
    ASSERT_EQ(mgr.append(info.sid, pts, &res), SessionStatus::kOk);
    ++appends;
    if (res.rebuilt) ++rebuilds;
  }
  ASSERT_GT(rebuilds, 0u) << "policy never triggered a rebuild";
  CloseSummary sum;
  ASSERT_EQ(mgr.close(info.sid, &sum), SessionStatus::kOk);

  namespace on = obs::statnames;
  const stats::RegistrySnapshot s = reg.snapshot();
  EXPECT_EQ(s.counter_or0(
                stats::labeled(on::kTracesPublishedBase, "kind", "session")),
            appends);
  EXPECT_EQ(s.counter_or0(
                stats::labeled(on::kSpansRecordedBase, "kind", "session")),
            appends + rebuilds);

  // The retained trees carry the rebuild child exactly when the append
  // rebuilt, nested under the session_append root.
  std::uint64_t traced_rebuilds = 0;
  for (const obs::CompletedTrace& t : flight.snapshot()) {
    ASSERT_STREQ(t.kind, "session");
    ASSERT_GE(t.spans.size(), 1u);
    EXPECT_STREQ(t.spans[0].name, "session_append");
    if (t.spans.size() == 2) {
      EXPECT_STREQ(t.spans[1].name, "rebuild");
      EXPECT_EQ(t.spans[1].parent_id, obs::kRootSpanId);
      EXPECT_GE(t.spans[1].start_ns, t.spans[0].start_ns);
      EXPECT_LE(t.spans[1].end_ns, t.spans[0].end_ns);
      ++traced_rebuilds;
    }
  }
  EXPECT_EQ(traced_rebuilds, rebuilds);
}

}  // namespace
}  // namespace iph::session
